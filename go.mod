module mccls

go 1.24
