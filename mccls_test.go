package mccls_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mccls"
	"mccls/manet"
)

// TestPublicAPIEndToEnd exercises the documented façade exactly as the
// README shows it, including persistence of the master key and secret
// value.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kgc, err := mccls.Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	ppk := kgc.ExtractPartialPrivateKey("node-17@plant")
	sk, err := mccls.GenerateKeyPair(kgc.Params(), ppk, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("msg")
	sig, err := mccls.Sign(kgc.Params(), sk, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := mccls.NewVerifier(kgc.Params())
	if err := vf.Verify(sk.Public(), msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(sk.Public(), []byte("other"), sig); !errors.Is(err, mccls.ErrVerifyFailed) {
		t.Fatalf("want ErrVerifyFailed, got %v", err)
	}

	// Serialization round trips through the exported helpers.
	params2, err := mccls.UnmarshalParams(kgc.Params().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := mccls.UnmarshalPublicKey(sk.Public().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := mccls.UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Marshal()) != mccls.SignatureSize {
		t.Fatal("SignatureSize constant wrong")
	}
	if err := mccls.NewVerifier(params2).Verify(pk2, msg, sig2); err != nil {
		t.Fatal(err)
	}

	// KGC and user key persistence.
	kgc2, err := mccls.NewKGCFromMaster(kgc.MasterKey())
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := mccls.NewPrivateKeyFromSecret(kgc2.Params(), ppk, sk.SecretValue())
	if err != nil {
		t.Fatal(err)
	}
	sig3, err := mccls.Sign(kgc2.Params(), sk2, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(sk.Public(), msg, sig3); err != nil {
		t.Fatal(err)
	}
}

// TestSignVerifyProperty is a property-based check over arbitrary message
// bytes and identities: every honestly-produced signature verifies, and no
// signature verifies under a flipped message.
func TestSignVerifyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kgc, err := mccls.Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := mccls.NewVerifier(kgc.Params())
	sk, err := mccls.GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("prop"), rng)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(msg []byte, flip byte) bool {
		sig, err := mccls.Sign(kgc.Params(), sk, msg, rng)
		if err != nil {
			return false
		}
		if vf.Verify(sk.Public(), msg, sig) != nil {
			return false
		}
		tampered := append([]byte{flip ^ 0xFF}, msg...)
		return vf.Verify(sk.Public(), tampered, sig) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestManetFacadeSmoke runs a short scenario through the public manet API.
func TestManetFacadeSmoke(t *testing.T) {
	res, err := manet.Scenario{
		Duration: 30 * time.Second,
		MaxSpeed: 5,
		Seed:     9,
		Security: manet.McCLS,
		Attack:   manet.Blackhole,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDropRatio() != 0 {
		t.Fatalf("McCLS drop ratio %.3f via facade", res.PacketDropRatio())
	}
	if res.DataSent == 0 || res.PacketDeliveryRatio() < 0.9 {
		t.Fatalf("unhealthy facade run: %s", res.Summary)
	}
}

// TestManetTable1Facade regenerates a one-iteration Table 1 through the
// public API.
func TestManetTable1Facade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four schemes with real pairings")
	}
	rows, err := manet.Table1(1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[3].Scheme != "McCLS" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if out := manet.RenderTable1(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}
