// Black hole demo: shows the paper's security result live. Two black hole
// nodes join a 20-node MANET; under plain AODV they attract and absorb a
// large share of the traffic, under McCLS-AODV their forged route replies
// fail hop-by-hop signature verification and the drop ratio goes to zero.
// The rushing attacker is shown alongside for comparison.
//
//	go run ./examples/blackhole
package main

import (
	"fmt"
	"log"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("20-node MANET @ 5 m/s, 2 attacker nodes, 200 s of CBR traffic")
	fmt.Println()
	fmt.Printf("%-10s %-12s %10s %12s %14s\n", "attack", "protocol", "PDR", "drop ratio", "auth rejects")

	for _, atk := range []manet.AttackMode{manet.Blackhole, manet.Rushing} {
		for _, sec := range []manet.SecurityMode{manet.AODV, manet.McCLS} {
			res, err := manet.Scenario{
				MaxSpeed: 5,
				Duration: 200 * time.Second,
				Seed:     7,
				Security: sec,
				Attack:   atk,
			}.Run()
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-12s %10.3f %12.3f %14d\n",
				atk, sec, res.PacketDeliveryRatio(), res.PacketDropRatio(), res.AuthRejected)
		}
		fmt.Println()
	}

	fmt.Println("Under McCLS the attackers hold no KGC-issued keys: their forged")
	fmt.Println("RREPs (black hole) and rushed RREQ forwards (rushing) are rejected")
	fmt.Println("at the first honest hop, so no route ever crosses them — the")
	fmt.Println("paper's Figures 4 and 5.")
	return nil
}
