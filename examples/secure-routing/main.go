// Secure routing: runs the paper's core comparison once — a 20-node mobile
// ad hoc network at 10 m/s, plain AODV vs McCLS-authenticated AODV — and
// prints the four evaluation metrics side by side. Without an attacker the
// two should be nearly identical except for McCLS's slightly higher
// end-to-end delay (the per-hop signature work).
//
//	go run ./examples/secure-routing
package main

import (
	"fmt"
	"log"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := manet.Scenario{
		MaxSpeed: 10,
		Duration: 200 * time.Second,
		Seed:     2026,
	}

	fmt.Println("20 nodes, 1500×300 m, random waypoint @ 10 m/s, 10 CBR flows, 200 s")
	fmt.Println()
	fmt.Printf("%-8s %10s %12s %14s %12s\n", "proto", "PDR", "RREQ ratio", "delay", "drop ratio")

	for _, mode := range []manet.SecurityMode{manet.AODV, manet.McCLS} {
		sc := base
		sc.Security = mode
		res, err := sc.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10.3f %12.3f %14v %12.3f\n",
			mode,
			res.PacketDeliveryRatio(),
			res.RREQRatio(),
			res.EndToEndDelay().Round(10*time.Microsecond),
			res.PacketDropRatio())
	}

	fmt.Println()
	fmt.Println("McCLS adds per-hop sign/verify latency on control packets, so its")
	fmt.Println("delay sits slightly above AODV while delivery stays equivalent —")
	fmt.Println("the paper's Figures 1–3 in one run.")
	return nil
}
