// KGC service: runs the Key Generation Center as a TCP service and enrolls
// a client over the wire — the deployment shape a real CPS fleet would use
// (KGC at the depot, nodes enrolling before going into the field).
//
// Protocol (length-prefixed frames over one connection per request):
//
//	client → server: identity string
//	server → client: system parameters ‖ partial private key
//
// The client validates the partial key against the received parameters
// (catching a tampered or misdirected response), completes its
// certificateless keypair locally — the KGC never sees x — then signs a
// message and verifies it as a third party would.
//
//	go run ./examples/kgc-service
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"

	"mccls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	kgc, err := mccls.Setup(nil)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("KGC listening on %s\n", ln.Addr())

	serverErr := make(chan error, 1)
	go func() { serverErr <- serveOne(ln, kgc) }()

	if err := enrollAndSign(ln.Addr().String()); err != nil {
		return err
	}
	return <-serverErr
}

// serveOne handles a single enrollment request and returns.
func serveOne(ln net.Listener, kgc *mccls.KGC) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	idBytes, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("kgc: read identity: %w", err)
	}
	id := string(idBytes)
	fmt.Printf("KGC: extracting partial private key for %q\n", id)
	ppk := kgc.ExtractPartialPrivateKey(id)
	if err := writeFrame(conn, kgc.Params().Marshal()); err != nil {
		return err
	}
	return writeFrame(conn, ppk.Marshal())
}

// enrollAndSign is the field node: enroll over TCP, complete the keypair,
// sign, verify.
func enrollAndSign(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	const id = "pump-station-9"
	if err := writeFrame(conn, []byte(id)); err != nil {
		return err
	}
	paramsRaw, err := readFrame(conn)
	if err != nil {
		return err
	}
	ppkRaw, err := readFrame(conn)
	if err != nil {
		return err
	}

	params, err := mccls.UnmarshalParams(paramsRaw)
	if err != nil {
		return fmt.Errorf("bad parameters from KGC: %w", err)
	}
	ppk, err := mccls.UnmarshalPartialPrivateKey(ppkRaw)
	if err != nil {
		return fmt.Errorf("bad partial key from KGC: %w", err)
	}
	// GenerateKeyPair validates the partial key against the parameters, so
	// a man-in-the-middle swapping either is caught right here.
	sk, err := mccls.GenerateKeyPair(params, ppk, nil)
	if err != nil {
		return fmt.Errorf("enrollment rejected: %w", err)
	}
	fmt.Printf("node: enrolled as %q; public key is %d bytes, certificate-free\n",
		id, len(sk.Public().Marshal()))

	msg := []byte("flow=120L/s pressure=2.8bar")
	sig, err := mccls.Sign(params, sk, msg, nil)
	if err != nil {
		return err
	}
	if err := mccls.NewVerifier(params).Verify(sk.Public(), msg, sig); err != nil {
		return err
	}
	fmt.Println("node: signed telemetry verified by a third party ✓")
	return nil
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, data []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(data)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readFrame receives one length-prefixed frame (1 MiB sanity cap).
func readFrame(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > 1<<20 {
		return nil, fmt.Errorf("frame too large: %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
