// KGC service: enrolls a field node over the network — the deployment
// shape a real CPS fleet uses (KGC at the depot, nodes enrolling before
// going into the field). Two generations of the service are shown:
//
//  1. The legacy single-master TCP protocol (length-prefixed frames),
//     hardened against malicious peers: per-connection deadlines so a
//     stalled peer cannot pin the server, and a frame-length cap checked
//     before any allocation so a huge length prefix cannot balloon memory.
//
//  2. The production path: a threshold 2-of-3 kgcd deployment
//     (internal/kgcd) where each signer replica holds one Shamir share of
//     the master secret, driven through the kgcd client library. No
//     single server can forge partial keys.
//
// In both cases the client validates the partial key against the received
// parameters (catching a tampered or misdirected response), completes its
// certificateless keypair locally — the KGC never sees x — then signs a
// message and verifies it as a third party would.
//
//	go run ./examples/kgc-service
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"mccls"
	"mccls/internal/kgcd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := legacyTCPDemo(); err != nil {
		return fmt.Errorf("legacy TCP service: %w", err)
	}
	return thresholdDemo()
}

// --- Part 1: hardened legacy single-master TCP service -------------------

// connDeadline bounds one enrollment exchange end to end; a peer that
// stalls mid-frame is cut off instead of holding the connection forever.
const connDeadline = 5 * time.Second

// maxFrame caps a frame before any allocation. Identities and key
// material are well under 4 KiB; anything larger is an attack or a bug.
const maxFrame = 4 << 10

func legacyTCPDemo() error {
	kgc, err := mccls.Setup(nil)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("legacy KGC listening on %s\n", ln.Addr())

	serverErr := make(chan error, 1)
	go func() { serverErr <- serveOne(ln, kgc) }()

	if err := enrollTCPAndSign(ln.Addr().String()); err != nil {
		return err
	}
	return <-serverErr
}

// serveOne handles a single enrollment request and returns.
func serveOne(ln net.Listener, kgc *mccls.KGC) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(connDeadline)); err != nil {
		return err
	}
	idBytes, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("kgc: read identity: %w", err)
	}
	id := string(idBytes)
	fmt.Printf("legacy KGC: extracting partial private key for %q\n", id)
	ppk := kgc.ExtractPartialPrivateKey(id)
	if err := writeFrame(conn, kgc.Params().Marshal()); err != nil {
		return err
	}
	return writeFrame(conn, ppk.Marshal())
}

// enrollTCPAndSign enrolls against the legacy framed-TCP server.
func enrollTCPAndSign(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(connDeadline)); err != nil {
		return err
	}

	const id = "pump-station-9"
	if err := writeFrame(conn, []byte(id)); err != nil {
		return err
	}
	paramsRaw, err := readFrame(conn)
	if err != nil {
		return err
	}
	ppkRaw, err := readFrame(conn)
	if err != nil {
		return err
	}

	params, err := mccls.UnmarshalParams(paramsRaw)
	if err != nil {
		return fmt.Errorf("bad parameters from KGC: %w", err)
	}
	ppk, err := mccls.UnmarshalPartialPrivateKey(ppkRaw)
	if err != nil {
		return fmt.Errorf("bad partial key from KGC: %w", err)
	}
	return completeAndSign(params, ppk, id)
}

// --- Part 2: threshold kgcd over HTTP, via the client library ------------

func thresholdDemo() error {
	// All-in-one 2-of-3 on loopback: three signer replicas (each holding
	// one Shamir share) plus the combiner, all real HTTP listeners.
	cluster, err := kgcd.StartCluster(kgcd.ClusterConfig{T: 2, N: 3})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("threshold KGC: 2-of-3 combiner on %s\n", cluster.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client := kgcd.NewClient(cluster.URL, nil)

	params, err := client.Params(ctx)
	if err != nil {
		return err
	}
	const id = "pump-station-10"
	res, err := client.Enroll(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("node: enrolled %q via threshold issuance (cached=%v)\n", id, res.Cached)
	return completeAndSign(params, res.PartialKey, id)
}

// completeAndSign is the field node's half: complete the keypair (which
// validates the partial key — a man-in-the-middle swapping parameters or
// key is caught right here), sign telemetry, verify as a third party.
func completeAndSign(params *mccls.Params, ppk *mccls.PartialPrivateKey, id string) error {
	sk, err := mccls.GenerateKeyPair(params, ppk, nil)
	if err != nil {
		return fmt.Errorf("enrollment rejected: %w", err)
	}
	fmt.Printf("node: enrolled as %q; public key is %d bytes, certificate-free\n",
		id, len(sk.Public().Marshal()))

	msg := []byte("flow=120L/s pressure=2.8bar")
	sig, err := mccls.Sign(params, sk, msg, nil)
	if err != nil {
		return err
	}
	if err := mccls.NewVerifier(params).Verify(sk.Public(), msg, sig); err != nil {
		return err
	}
	fmt.Println("node: signed telemetry verified by a third party ✓")
	return nil
}

// --- shared length-prefixed framing --------------------------------------

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, data []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(data)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readFrame receives one length-prefixed frame, rejecting oversized
// lengths before allocating anything.
func readFrame(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > maxFrame {
		return nil, fmt.Errorf("frame too large: %d > %d", size, maxFrame)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
