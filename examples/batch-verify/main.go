// Batch verification: a CPS gateway collects a burst of signed telemetry
// readings from one sensor and verifies them all with a single pairing.
// McCLS inherits this from the Yoon–Cheon–Kim batch IBS it adapts: the S
// component of a signature is message-independent, so n same-signer
// signatures satisfy one aggregated pairing equation.
//
//	go run ./examples/batch-verify
package main

import (
	"fmt"
	"log"
	"time"

	"mccls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	kgc, err := mccls.Setup(nil)
	if err != nil {
		return err
	}
	params := kgc.Params()
	sensor, err := mccls.GenerateKeyPair(params, kgc.ExtractPartialPrivateKey("sensor-42"), nil)
	if err != nil {
		return err
	}

	// The sensor signs a burst of readings (no pairings on the sensor).
	const n = 16
	msgs := make([][]byte, n)
	sigs := make([]*mccls.Signature, n)
	for i := range msgs {
		msgs[i] = fmt.Appendf(nil, "reading %02d: temp=%.1fC", i, 20.0+float64(i)/10)
		if sigs[i], err = mccls.Sign(params, sensor, msgs[i], nil); err != nil {
			return err
		}
	}

	vf := mccls.NewVerifier(params)

	// One-by-one: n pairings.
	start := time.Now()
	for i := range msgs {
		if err := vf.Verify(sensor.Public(), msgs[i], sigs[i]); err != nil {
			return err
		}
	}
	oneByOne := time.Since(start)

	// Batched: one pairing for the whole burst.
	start = time.Now()
	if err := vf.BatchVerify(sensor.Public(), msgs, sigs); err != nil {
		return err
	}
	batched := time.Since(start)

	fmt.Printf("%d readings verified\n", n)
	fmt.Printf("  one-by-one: %v (%d pairings)\n", oneByOne.Round(time.Millisecond), n)
	fmt.Printf("  batched:    %v (1 pairing)  → %.1fx faster\n",
		batched.Round(time.Millisecond), float64(oneByOne)/float64(batched))

	// A single corrupted reading poisons the whole batch — the gateway
	// then falls back to one-by-one verification to locate it.
	msgs[7] = []byte("reading 07: temp=999.9C")
	if err := vf.BatchVerify(sensor.Public(), msgs, sigs); err == nil {
		return fmt.Errorf("tampered batch passed")
	}
	fmt.Println("tampered batch rejected ✓")
	return nil
}
