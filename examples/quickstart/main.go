// Quickstart: the full McCLS lifecycle in one file — KGC setup, partial
// private key extraction, user key generation, signing, verification, and
// what happens on tampering.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"mccls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The Key Generation Center runs Setup once for the whole system
	//    and publishes its parameters (64 bytes: just P_pub).
	kgc, err := mccls.Setup(nil)
	if err != nil {
		return err
	}
	params := kgc.Params()
	fmt.Printf("system parameters published (%d bytes)\n", len(params.Marshal()))

	// 2. The KGC issues Alice a partial private key for her identity.
	//    Alice validates it against the public parameters — a corrupted or
	//    swapped partial key is caught here.
	ppk := kgc.ExtractPartialPrivateKey("alice@plant-7.example")
	if err := ppk.Validate(params); err != nil {
		return err
	}
	fmt.Println("partial private key for alice@plant-7.example validated")

	// 3. Alice completes the keypair with her own secret value. The KGC
	//    never sees it: no key escrow. Her public key needs no certificate.
	alice, err := mccls.GenerateKeyPair(params, ppk, nil)
	if err != nil {
		return err
	}
	fmt.Printf("alice's certificateless public key: %d bytes, no certificate\n",
		len(alice.Public().Marshal()))

	// 4. Sign. No pairing operations happen here — the paper's headline
	//    property for CPS nodes with tight timing budgets.
	msg := []byte("valve-17: pressure=3.2bar t=1719230000")
	sig, err := mccls.Sign(params, alice, msg, nil)
	if err != nil {
		return err
	}
	fmt.Printf("signature: %d bytes\n", len(sig.Marshal()))

	// 5. Verify: one pairing (plus a cached per-identity constant).
	vf := mccls.NewVerifier(params)
	if err := vf.Verify(alice.Public(), msg, sig); err != nil {
		return err
	}
	fmt.Println("signature verified")

	// 6. Any tampering is rejected.
	if err := vf.Verify(alice.Public(), []byte("valve-17: pressure=9.9bar"), sig); !errors.Is(err, mccls.ErrVerifyFailed) {
		return fmt.Errorf("tampered message was not rejected: %v", err)
	}
	fmt.Println("tampered message rejected ✓")
	return nil
}
