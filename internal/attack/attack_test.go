package attack

import (
	"testing"
	"time"

	"math/rand"

	"mccls/internal/aodv"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/secrouting"
	"mccls/internal/sim"
)

// diamond builds the topology
//
//	    1
//	  /   \
//	0       3 --- 4
//	  \   /
//	    2
//
// where node 0 reaches 3 via 1 or 2, and 4 hangs off 3. All hops are 200m
// (radio range 250m).
func diamond(t *testing.T, auth aodv.Authenticator) (*sim.Simulator, []*aodv.Node) {
	t.Helper()
	pts := &mobility.Static{Points: []mobility.Point{
		{X: 0, Y: 100},
		{X: 180, Y: 10},
		{X: 180, Y: 190},
		{X: 360, Y: 100},
		{X: 560, Y: 100},
	}}
	s := sim.New(3)
	m := radio.New(s, pts, radio.Config{})
	if auth == nil {
		auth = aodv.NullAuth{}
	}
	nodes := make([]*aodv.Node, pts.Nodes())
	for i := range nodes {
		nodes[i] = aodv.NewNode(i, s, m, aodv.Config{}, auth)
	}
	return s, nodes
}

// enrolledCostAuth returns a cost-model authenticator with every node but
// the listed attackers enrolled.
func enrolledCostAuth(n int, attackers ...int) *secrouting.CostModelAuth {
	a := secrouting.NewCostModelAuth()
	bad := map[int]bool{}
	for _, id := range attackers {
		bad[id] = true
	}
	for i := 0; i < n; i++ {
		if !bad[i] {
			a.Enroll(i)
		}
	}
	return a
}

func TestBlackholeAbsorbsDataUnderPlainAODV(t *testing.T) {
	s, nodes := diamond(t, nil)
	MakeBlackhole(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*aodv.DataPacket) { delivered++ }
	for i := 0; i < 20; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { nodes[0].Send(4, 256) })
	}
	s.Run(10 * time.Second)
	// The forged instant RREP must beat the real 3-hop route: traffic is
	// absorbed.
	if nodes[1].Stats.DropByAttacker == 0 {
		t.Fatalf("black hole absorbed nothing: delivered=%d", delivered)
	}
	if delivered == 20 {
		t.Fatal("attack had no effect on delivery")
	}
}

func TestBlackholeNeutralizedByMcCLS(t *testing.T) {
	auth := enrolledCostAuth(5, 1)
	s, nodes := diamond(t, auth)
	MakeBlackhole(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*aodv.DataPacket) { delivered++ }
	for i := 0; i < 20; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { nodes[0].Send(4, 256) })
	}
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker != 0 {
		t.Fatalf("black hole absorbed %d packets despite authentication", nodes[1].Stats.DropByAttacker)
	}
	if delivered != 20 {
		t.Fatalf("delivered %d/20 around the black hole", delivered)
	}
	// The forged RREPs were rejected somewhere.
	rejections := uint64(0)
	for _, n := range nodes {
		rejections += n.Stats.AuthRejected
	}
	if rejections == 0 {
		t.Fatal("no authentication rejections recorded")
	}
}

func TestRushingWinsRaceUnderPlainAODV(t *testing.T) {
	s, nodes := diamond(t, nil)
	MakeRushing(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*aodv.DataPacket) { delivered++ }
	for i := 0; i < 20; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { nodes[0].Send(4, 256) })
	}
	s.Run(10 * time.Second)
	// The attacker's zero-jitter forward wins the duplicate race at node 3,
	// so the reverse path (and the data) runs through node 1.
	if nodes[1].Stats.DropByAttacker == 0 {
		t.Fatalf("rushing attacker captured nothing: delivered=%d honest=%d",
			delivered, nodes[2].Stats.DataForwarded)
	}
	if delivered != 0 {
		t.Fatalf("expected total capture on this topology, delivered=%d", delivered)
	}
}

func TestRushingNeutralizedByMcCLS(t *testing.T) {
	auth := enrolledCostAuth(5, 1)
	s, nodes := diamond(t, auth)
	MakeRushing(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*aodv.DataPacket) { delivered++ }
	for i := 0; i < 20; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { nodes[0].Send(4, 256) })
	}
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker != 0 {
		t.Fatalf("rushing attacker absorbed %d packets despite authentication", nodes[1].Stats.DropByAttacker)
	}
	if delivered != 20 {
		t.Fatalf("delivered %d/20", delivered)
	}
	// Node 3 must have rejected the rushed (unauthenticated) forwards.
	if nodes[3].Stats.AuthRejected == 0 {
		t.Fatal("rushed RREQs were not rejected")
	}
}

func TestBlackholeRepliesEvenWithoutRoute(t *testing.T) {
	// Black hole forges replies for destinations it has never heard of.
	s, nodes := diamond(t, nil)
	MakeBlackhole(nodes[1])
	nodes[0].Send(4, 64)
	s.Run(2 * time.Second)
	if hop, ok := nodes[0].HasRoute(4); !ok || hop != 1 {
		t.Fatalf("source route = (%v,%v), want forged route via node 1", hop, ok)
	}
}

func TestGrayholeSelectiveDrop(t *testing.T) {
	s, nodes := diamond(t, nil)
	// Insider gray hole at node 1 dropping half the traffic it carries.
	MakeGrayhole(nodes[1], 0.5, rand.New(rand.NewSource(5)))
	// Force the path through node 1 by moving node 2 out of range.
	nodes[2].Hooks.OnRREQ = func(*aodv.Node, int, *aodv.RREQ) bool { return false }
	delivered := 0
	nodes[4].OnDeliver = func(*aodv.DataPacket) { delivered++ }
	const total = 60
	for i := 0; i < total; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { nodes[0].Send(4, 128) })
	}
	s.Run(20 * time.Second)
	dropped := int(nodes[1].Stats.DropByAttacker)
	if dropped == 0 || dropped == total {
		t.Fatalf("gray hole dropped %d/%d, want selective dropping", dropped, total)
	}
	if delivered == 0 {
		t.Fatal("gray hole absorbed everything; should forward a fraction")
	}
	// Roughly half should vanish (generous bounds; the route flaps as
	// RERRs fire on unrelated timeouts).
	ratio := float64(dropped) / float64(total)
	if ratio < 0.2 || ratio > 0.8 {
		t.Fatalf("drop fraction %.2f outside [0.2, 0.8]", ratio)
	}
}
