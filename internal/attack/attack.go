// Package attack implements the two adversaries of the paper's evaluation
// as behaviour overlays on AODV nodes.
//
// Black hole (Marti et al. [8]): the attacker answers every route request
// with a forged route reply advertising an artificially fresh sequence
// number and a one-hop path, attracting the flow, then silently absorbs all
// data routed through it.
//
// Rushing (Hu, Perrig & Johnson [6]): the attacker forwards the first copy
// of every route request immediately — skipping the randomized rebroadcast
// jitter and any verification work honest nodes perform — so that, because
// nodes only process the first copy of each request, discovered routes are
// forced through the attacker; it then drops the data.
//
// Neither attacker holds a KGC-issued key, so under McCLS-AODV its forged
// replies and rushed forwards fail hop-by-hop verification at honest
// neighbours and it never joins a route.
package attack

import (
	"math/rand"
	"slices"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/dsr"
)

// seqBoost is how far a black hole inflates the destination sequence number
// beyond the freshest value the requester knows. A boost of 1 is enough to
// beat any cached route while keeping the forgery in the race the real
// destination can still win on hop count (a huge boost would also be a
// trivially detectable anomaly); Marti et al.'s attacker "falsely claims a
// fresh route", not an absurd one.
const seqBoost = 1

// absorb is the FilterData hook shared by both attackers: silently drop
// every transiting data packet.
func absorb(*aodv.Node, *aodv.DataPacket) bool { return false }

// MakeBlackhole converts n into a black hole attacker.
func MakeBlackhole(n *aodv.Node) {
	n.Hooks.SkipVerify = true // attackers do not validate what they hear
	n.Hooks.FilterData = absorb
	n.Hooks.OnRREQ = func(n *aodv.Node, from int, req *aodv.RREQ) bool {
		// Forge a reply claiming a fresh one-hop route to the requested
		// destination, regardless of whether any such route exists.
		n.SendRREP(from, &aodv.RREP{
			Origin:   req.Origin,
			Dest:     req.Dest,
			DestSeq:  req.DestSeq + seqBoost,
			HopCount: 2, // a plausible short path, not a giveaway 1-hop claim
			Lifetime: n.Config().MyRouteTimeout,
		})
		return false // and do not participate in honest forwarding
	}
}

// MakeGrayhole converts n into a gray hole (selective-forwarding)
// attacker: it participates in routing honestly but silently drops a
// fraction dropProb of the data it carries, staying below naive detection
// thresholds. An extension beyond the paper's two attacks, included to
// delimit McCLS's protection: an *outsider* gray hole (no KGC key) never
// joins a route, but a compromised *insider* still signs valid control
// packets, so routing authentication alone does not stop it — a finding
// later misbehaviour-detection literature (watchdog/pathrater) addresses.
func MakeGrayhole(n *aodv.Node, dropProb float64, rng *rand.Rand) {
	n.Hooks.FilterData = func(*aodv.Node, *aodv.DataPacket) bool {
		return rng.Float64() >= dropProb
	}
}

// MakeRushing converts n into a rushing attacker.
func MakeRushing(n *aodv.Node) {
	n.Hooks.SkipVerify = true
	n.Hooks.FilterData = absorb
	// Zero jitter wins the duplicate-suppression race against honest
	// forwarders, which wait a uniform random delay plus (under McCLS)
	// the signature verification time.
	n.Hooks.RebroadcastJitter = func(*aodv.Node) time.Duration { return 0 }
}

// MakeDSRBlackhole converts a DSR node into a black hole: it answers every
// route request with a forged reply claiming a direct link to the target,
// then absorbs the attracted traffic.
func MakeDSRBlackhole(n *dsr.Node) {
	n.Hooks.SkipVerify = true
	n.Hooks.FilterData = func(*dsr.Node, *dsr.DataPacket) bool { return false }
	n.Hooks.OnRequest = func(n *dsr.Node, from int, req *dsr.RouteRequest) bool {
		forged := append(slices.Clone(req.Route), n.ID, req.Target)
		n.SendReply(from, &dsr.RouteReply{Route: forged})
		return false
	}
}

// MakeDSRRushing converts a DSR node into a rushing attacker: it forwards
// the first copy of every route request with zero jitter (winning the
// duplicate-suppression race and inserting itself into the discovered
// source route), then drops the data.
func MakeDSRRushing(n *dsr.Node) {
	n.Hooks.SkipVerify = true
	n.Hooks.FilterData = func(*dsr.Node, *dsr.DataPacket) bool { return false }
	n.Hooks.ForwardJitter = func(*dsr.Node) time.Duration { return 0 }
}
