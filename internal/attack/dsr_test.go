package attack

import (
	"testing"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/dsr"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// dsrDiamond mirrors the AODV diamond: 0 reaches 3 via 1 or 2, 4 behind 3.
func dsrDiamond(t *testing.T, auth aodv.Authenticator) (*sim.Simulator, []*dsr.Node) {
	t.Helper()
	pts := &mobility.Static{Points: []mobility.Point{
		{X: 0, Y: 100},
		{X: 180, Y: 10},
		{X: 180, Y: 190},
		{X: 360, Y: 100},
		{X: 560, Y: 100},
	}}
	s := sim.New(4)
	m := radio.New(s, pts, radio.Config{})
	if auth == nil {
		auth = aodv.NullAuth{}
	}
	nodes := make([]*dsr.Node, pts.Nodes())
	for i := range nodes {
		nodes[i] = dsr.NewNode(i, s, m, dsr.Config{}, auth)
	}
	return s, nodes
}

func sendBurst(s *sim.Simulator, src *dsr.Node, dst int, n int) {
	for i := 0; i < n; i++ {
		s.Schedule(time.Duration(i)*100*time.Millisecond, func() { src.Send(dst, 256) })
	}
}

func TestDSRBlackholePlain(t *testing.T) {
	s, nodes := dsrDiamond(t, nil)
	MakeDSRBlackhole(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*dsr.DataPacket) { delivered++ }
	sendBurst(s, nodes[0], 4, 20)
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker == 0 {
		t.Fatalf("DSR black hole absorbed nothing (delivered=%d)", delivered)
	}
}

func TestDSRBlackholeNeutralizedByMcCLS(t *testing.T) {
	auth := enrolledCostAuth(5, 1)
	s, nodes := dsrDiamond(t, auth)
	MakeDSRBlackhole(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*dsr.DataPacket) { delivered++ }
	sendBurst(s, nodes[0], 4, 20)
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker != 0 {
		t.Fatalf("DSR black hole absorbed %d despite authentication", nodes[1].Stats.DropByAttacker)
	}
	if delivered != 20 {
		t.Fatalf("delivered %d/20 around the black hole", delivered)
	}
}

func TestDSRRushingPlain(t *testing.T) {
	s, nodes := dsrDiamond(t, nil)
	MakeDSRRushing(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*dsr.DataPacket) { delivered++ }
	sendBurst(s, nodes[0], 4, 20)
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker == 0 {
		t.Fatalf("DSR rushing captured nothing (delivered=%d)", delivered)
	}
	if delivered != 0 {
		t.Fatalf("expected total capture on this topology, delivered=%d", delivered)
	}
}

func TestDSRRushingNeutralizedByMcCLS(t *testing.T) {
	auth := enrolledCostAuth(5, 1)
	s, nodes := dsrDiamond(t, auth)
	MakeDSRRushing(nodes[1])
	delivered := 0
	nodes[4].OnDeliver = func(*dsr.DataPacket) { delivered++ }
	sendBurst(s, nodes[0], 4, 20)
	s.Run(10 * time.Second)
	if nodes[1].Stats.DropByAttacker != 0 {
		t.Fatalf("DSR rushing absorbed %d despite authentication", nodes[1].Stats.DropByAttacker)
	}
	if delivered != 20 {
		t.Fatalf("delivered %d/20", delivered)
	}
}
