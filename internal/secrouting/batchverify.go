package secrouting

import (
	"crypto/sha256"
	"time"

	"mccls/internal/core"
)

// VerifyCostModel is the batch-size-dependent verification latency model.
// Verifying a window of n control-packet signatures through the lockstep
// multi-pairing engine costs
//
//	cost(n) = PerBatch + n·PerSig        (capped at n·Sequential)
//
// where PerBatch is the batch-shared work (the one final exponentiation and
// the lockstep accumulator squarings of the chunk's multi-pairing) and
// PerSig the marginal per-signature work (its Miller lines plus the
// weighted commitment arithmetic). At n = 1 the model charges Sequential,
// the plain cached-constant Verify cost — a one-element batch never pays
// the engine's weighting overhead.
//
// The default figures are a linear fit of the batch_verify sweep in
// BENCH_bn254.json (cmd/mcclsbench -batch on the reference x86 host:
// ~2.6 ms fixed + ~0.6 ms marginal per signature), rounded up with the
// same ~1.5× slower-hardware headroom convention as DefaultVerifyLatency;
// see EXPERIMENTS.md.
type VerifyCostModel struct {
	// Sequential is the per-signature cost of the non-batched Verify.
	Sequential time.Duration
	// PerBatch is the fixed cost shared by one batch window.
	PerBatch time.Duration
	// PerSig is the marginal cost per signature inside a batch.
	PerSig time.Duration
}

// DefaultVerifyCostModel returns the model calibrated against the
// reference-host batch sweep.
func DefaultVerifyCostModel() VerifyCostModel {
	return VerifyCostModel{
		Sequential: DefaultVerifyLatency,
		PerBatch:   3900 * time.Microsecond,
		PerSig:     900 * time.Microsecond,
	}
}

// Batch returns the total latency for a window of n signatures.
func (m VerifyCostModel) Batch(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return m.Sequential
	}
	cost := m.PerBatch + time.Duration(n)*m.PerSig
	if seq := time.Duration(n) * m.Sequential; cost > seq {
		return seq
	}
	return cost
}

// PerSignature returns the amortized per-signature latency at window size
// n — the figure sweeps feed this into the per-packet VerifyLatency when
// modelling receivers that drain their verification queue in batches.
func (m VerifyCostModel) PerSignature(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.Batch(n) / time.Duration(n)
}

// BatchAuthenticator is implemented by authenticators that can verify a
// window of control packets in one batch — the RREQ-flood fast path.
// Decisions must match per-packet Verify exactly; only the charged latency
// differs.
type BatchAuthenticator interface {
	// VerifyBatch checks auths[i] over payloads[i] claimed by senders[i],
	// returning one verdict per packet and the total processing delay for
	// the window.
	VerifyBatch(senders []int, payloads, auths [][]byte) (ok []bool, delay time.Duration)
}

var (
	_ BatchAuthenticator = (*McCLSAuth)(nil)
	_ BatchAuthenticator = (*CostModelAuth)(nil)
)

// VerifyBatch checks a window of control packets with one multi-signer
// batch verification (core.BatchVerifier.VerifyMulti): one lockstep
// multi-pairing per chunk, per-identity Q_ID grouping, bisection locating
// any offenders. Malformed tags are rejected at parse time for
// ParseLatency each; the parsed remainder is charged the BatchModel cost
// for its window size. Accept/reject matches per-packet Verify exactly.
func (a *McCLSAuth) VerifyBatch(senders []int, payloads, auths [][]byte) ([]bool, time.Duration) {
	n := len(senders)
	ok := make([]bool, n)
	var delay time.Duration
	idx := make([]int, 0, n) // positions that parsed and enter the batch
	pks := make([]*core.PublicKey, 0, n)
	msgs := make([][]byte, 0, n)
	sigs := make([]*core.Signature, 0, n)
	for i := 0; i < n; i++ {
		auth := auths[i]
		if len(auth) != 64+core.SignatureSize {
			delay += a.ParseLatency
			continue
		}
		pk, err := reassemblePublicKey(NodeIdentity(senders[i]), auth[:64])
		if err != nil {
			delay += a.ParseLatency
			continue
		}
		sig, err := core.UnmarshalSignature(auth[64:])
		if err != nil {
			delay += a.ParseLatency
			continue
		}
		idx = append(idx, i)
		pks = append(pks, pk)
		msgs = append(msgs, payloads[i])
		sigs = append(sigs, sig)
	}
	if len(idx) == 0 {
		return ok, delay
	}
	delay += a.BatchModel.Batch(len(idx))
	err := a.vf.Batch(core.BatchOptions{}).VerifyMulti(pks, msgs, sigs)
	switch {
	case err == nil:
		for _, i := range idx {
			ok[i] = true
		}
	default:
		bad := core.BatchOffenders(err)
		if bad == nil {
			// Structural rejection without an offender list (e.g. a
			// zero challenge hash): fall back to per-packet decisions.
			for j, i := range idx {
				ok[i] = a.vf.Verify(pks[j], msgs[j], sigs[j]) == nil
			}
			break
		}
		badSet := make(map[int]bool, len(bad))
		for _, j := range bad {
			badSet[j] = true
		}
		for j, i := range idx {
			ok[i] = !badSet[j]
		}
	}
	return ok, delay
}

// VerifyBatch mirrors McCLSAuth.VerifyBatch on the cost model: identical
// accept/reject to per-packet Verify, with the window charged
// BatchModel.Batch(n) instead of n times the sequential latency.
func (a *CostModelAuth) VerifyBatch(senders []int, payloads, auths [][]byte) ([]bool, time.Duration) {
	n := len(senders)
	ok := make([]bool, n)
	var delay time.Duration
	checked := 0
	for i := 0; i < n; i++ {
		if len(auths[i]) != sha256.Size {
			delay += a.ParseLatency
			continue
		}
		checked++
		verdict, _ := a.Verify(senders[i], payloads[i], auths[i])
		ok[i] = verdict
	}
	delay += a.BatchModel.Batch(checked)
	return ok, delay
}
