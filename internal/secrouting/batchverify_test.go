package secrouting

import (
	"math/rand"
	"testing"
	"time"
)

func TestVerifyCostModel(t *testing.T) {
	m := DefaultVerifyCostModel()
	if m.Batch(0) != 0 || m.PerSignature(0) != 0 {
		t.Fatal("empty window must cost nothing")
	}
	if m.Batch(1) != m.Sequential {
		t.Fatal("a one-element batch must cost the sequential verify")
	}
	// Amortization must be monotone: per-signature cost never increases
	// with window size, and a wide window beats sequential by ≥ 2×.
	prev := m.PerSignature(1)
	for _, n := range []int{2, 8, 64, 256} {
		per := m.PerSignature(n)
		if per > prev {
			t.Fatalf("per-signature cost rose from %v to %v at n=%d", prev, per, n)
		}
		prev = per
	}
	if per := m.PerSignature(64); per > m.Sequential/2 {
		t.Fatalf("batch-64 per-signature cost %v does not halve sequential %v", per, m.Sequential)
	}
	// The model never charges more than sequential verification would.
	for n := 1; n <= 300; n++ {
		if m.Batch(n) > time.Duration(n)*m.Sequential {
			t.Fatalf("batch(%d) exceeds sequential cost", n)
		}
	}
}

// TestMcCLSAuthVerifyBatchEquivalence pins the RREQ-flood fast path to the
// per-packet decisions: a window mixing honest signatures, an unenrolled
// attacker's garbage tag, a tampered payload and a truncated tag must get
// exactly the verdicts sequential Verify produces.
func TestMcCLSAuthVerifyBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, err := NewMcCLSAuth(rng)
	if err != nil {
		t.Fatal(err)
	}
	const honest = 6
	for n := 0; n < honest; n++ {
		if err := a.Enroll(n); err != nil {
			t.Fatal(err)
		}
	}
	var senders []int
	var payloads, auths [][]byte
	add := func(node int, payload, auth []byte) {
		senders = append(senders, node)
		payloads = append(payloads, payload)
		auths = append(auths, auth)
	}
	for n := 0; n < honest; n++ {
		payload := []byte{0x52, byte(n)} // RREQ-ish
		tag, _, err := a.Sign(n, payload)
		if err != nil {
			t.Fatal(err)
		}
		add(n, payload, tag)
	}
	// Unenrolled attacker: zero tag.
	attackerTag, _, _ := a.Sign(97, []byte("flood"))
	add(97, []byte("flood"), attackerTag)
	// Honest signature over a payload the attacker then flipped in flight.
	tampered, _, err := a.Sign(1, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	add(1, []byte("flipped"), tampered)
	// Truncated tag.
	add(2, []byte("short"), []byte{1, 2, 3})

	want := make([]bool, len(senders))
	parsed := 0
	var parseCost time.Duration
	for i := range senders {
		var d time.Duration
		want[i], d = a.Verify(senders[i], payloads[i], auths[i])
		if d == a.VerifyLatency {
			parsed++
		} else {
			parseCost += d
		}
	}
	got, delay := a.VerifyBatch(senders, payloads, auths)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: batch verdict %v, sequential verdict %v", i, got[i], want[i])
		}
	}
	if wantDelay := a.BatchModel.Batch(parsed) + parseCost; delay != wantDelay {
		t.Fatalf("delay %v, want %v", delay, wantDelay)
	}
}

func TestCostModelAuthVerifyBatchEquivalence(t *testing.T) {
	a := NewCostModelAuth()
	for n := 0; n < 3; n++ {
		if err := a.Enroll(n); err != nil {
			t.Fatal(err)
		}
	}
	senders := []int{0, 1, 2, 9, 1}
	payloads := [][]byte{{1}, {2}, {3}, {4}, {5}}
	auths := make([][]byte, len(senders))
	for i, n := range senders {
		auths[i], _, _ = a.Sign(n, payloads[i])
	}
	auths[4] = []byte("bogus") // malformed
	want := make([]bool, len(senders))
	for i := range senders {
		want[i], _ = a.Verify(senders[i], payloads[i], auths[i])
	}
	got, delay := a.VerifyBatch(senders, payloads, auths)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: batch verdict %v, sequential verdict %v", i, got[i], want[i])
		}
	}
	if wantDelay := a.BatchModel.Batch(4) + a.ParseLatency; delay != wantDelay {
		t.Fatalf("delay %v, want %v", delay, wantDelay)
	}
}
