package secrouting

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"mccls/internal/aodv"
)

func newRealAuth(t *testing.T) *McCLSAuth {
	t.Helper()
	a, err := NewMcCLSAuth(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMcCLSAuthRoundTrip(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(3); err != nil {
		t.Fatal(err)
	}
	payload := []byte("RREQ id=9 origin=3")
	tag, d, err := a.Sign(3, payload)
	if err != nil {
		t.Fatal(err)
	}
	if d != DefaultSignLatency {
		t.Fatalf("sign delay = %v", d)
	}
	if len(tag) != a.Overhead() {
		t.Fatalf("tag length %d != overhead %d", len(tag), a.Overhead())
	}
	ok, d := a.Verify(3, payload, tag)
	if !ok {
		t.Fatal("valid tag rejected")
	}
	if d != DefaultVerifyLatency {
		t.Fatalf("verify delay = %v", d)
	}
}

func TestMcCLSAuthRejectsTamperedPayload(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("RREP dest=4 seq=7 hops=2")
	tag, _, _ := a.Sign(1, payload)
	tampered := bytes.Clone(payload)
	tampered[5] ^= 0xFF // e.g. a rushed/modified hop count
	if ok, _ := a.Verify(1, tampered, tag); ok {
		t.Fatal("tampered payload accepted")
	}
}

func TestMcCLSAuthRejectsUnenrolled(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("forged RREP")
	// The attacker (node 9, never enrolled) emits a well-sized tag that
	// cannot verify.
	tag, d, err := a.Sign(9, payload)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatal("attacker charged crypto time for garbage tag")
	}
	if len(tag) != a.Overhead() {
		t.Fatal("attacker tag has wrong size")
	}
	if ok, _ := a.Verify(9, payload, tag); ok {
		t.Fatal("unenrolled node's tag accepted")
	}
	if a.Enrolled(9) || !a.Enrolled(1) {
		t.Fatal("enrollment bookkeeping wrong")
	}
}

func TestMcCLSAuthRejectsCrossNodeTag(t *testing.T) {
	a := newRealAuth(t)
	for _, n := range []int{1, 2} {
		if err := a.Enroll(n); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("hello")
	tag, _, _ := a.Sign(1, payload)
	// A valid tag from node 1 must not verify as node 2 (identity is bound
	// through H1 and H2).
	if ok, _ := a.Verify(2, payload, tag); ok {
		t.Fatal("node 1's tag verified as node 2")
	}
}

func TestMcCLSAuthMalformedTag(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	for _, tag := range [][]byte{nil, {1, 2, 3}, make([]byte, a.Overhead())} {
		if ok, _ := a.Verify(1, []byte("m"), tag); ok {
			t.Fatalf("malformed tag of len %d accepted", len(tag))
		}
	}
}

func TestCostModelAuthMirrorsRealBehaviour(t *testing.T) {
	real := newRealAuth(t)
	model := NewCostModelAuth()
	for _, n := range []int{0, 1} {
		if err := real.Enroll(n); err != nil {
			t.Fatal(err)
		}
		model.Enroll(n)
	}
	payloads := [][]byte{[]byte("a"), []byte("RREQ 1"), make([]byte, 100)}
	for _, p := range payloads {
		// enrolled nodes, intact payload → both accept
		for _, n := range []int{0, 1} {
			rt, _, _ := real.Sign(n, p)
			mt, _, _ := model.Sign(n, p)
			rok, _ := real.Verify(n, p, rt)
			mok, _ := model.Verify(n, p, mt)
			if !rok || !mok {
				t.Fatal("authenticators disagree on valid input")
			}
			// tampered payload → both reject
			bad := append(bytes.Clone(p), 0xFF)
			rok, _ = real.Verify(n, bad, rt)
			mok, _ = model.Verify(n, bad, mt)
			if rok || mok {
				t.Fatal("authenticators disagree on tampered input")
			}
		}
		// attacker (node 9) → both reject
		rt, _, _ := real.Sign(9, p)
		mt, _, _ := model.Sign(9, p)
		rok, _ := real.Verify(9, p, rt)
		mok, _ := model.Verify(9, p, mt)
		if rok || mok {
			t.Fatal("authenticators disagree on attacker input")
		}
	}
}

func TestCostModelLatencies(t *testing.T) {
	a := NewCostModelAuth()
	a.Enroll(0)
	if _, d, _ := a.Sign(0, []byte("x")); d != DefaultSignLatency {
		t.Fatalf("sign latency %v", d)
	}
	tag, _, _ := a.Sign(0, []byte("x"))
	if _, d := a.Verify(0, []byte("x"), tag); d != DefaultVerifyLatency {
		t.Fatalf("verify latency %v", d)
	}
	// Attackers pay nothing to emit garbage.
	if _, d, _ := a.Sign(5, []byte("x")); d != 0 {
		t.Fatal("attacker charged sign latency")
	}
	if a.Overhead() <= 0 {
		t.Fatal("overhead must be positive")
	}
}

func TestNodeIdentityStable(t *testing.T) {
	if NodeIdentity(7) != "node-7" || NodeIdentity(0) != "node-0" {
		t.Fatal("identity mapping changed; breaks key binding")
	}
}

// Interface compliance for both authenticators.
var (
	_ aodv.Authenticator = (*McCLSAuth)(nil)
	_ aodv.Authenticator = (*CostModelAuth)(nil)
)

// flakyReader is an RNG that can be switched into a failing state.
type flakyReader struct {
	fail bool
	r    io.Reader
}

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.fail {
		return 0, errors.New("entropy source wedged")
	}
	return f.r.Read(p)
}

func TestSignReportsRandomnessFailure(t *testing.T) {
	fr := &flakyReader{r: rand.New(rand.NewSource(1))}
	a, err := NewMcCLSAuth(fr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	fr.fail = true
	if _, _, err := a.Sign(1, []byte("RREQ")); err == nil {
		t.Fatal("sign with a failing RNG must return an error, not a garbage tag")
	}
	// Unenrolled senders never touch the RNG: still zero-cost garbage.
	if tag, d, err := a.Sign(9, []byte("RREQ")); err != nil || d != 0 || len(tag) != a.Overhead() {
		t.Fatal("unenrolled path must not depend on the RNG")
	}
	fr.fail = false
	if _, _, err := a.Sign(1, []byte("RREQ")); err != nil {
		t.Fatalf("recovered RNG still failing: %v", err)
	}
}

func TestMalformedTagChargesParseLatency(t *testing.T) {
	real := newRealAuth(t)
	if err := real.Enroll(1); err != nil {
		t.Fatal(err)
	}
	model := NewCostModelAuth()
	model.Enroll(1)
	// Wrong-length tags are rejected before any crypto, but the length
	// check plus decode attempt is not free: DefaultParseLatency, exactly.
	for _, tag := range [][]byte{nil, {1, 2, 3}, make([]byte, 200)} {
		if ok, d := real.Verify(1, []byte("m"), tag); ok || d != DefaultParseLatency {
			t.Fatalf("McCLSAuth malformed len %d: ok=%v delay=%v", len(tag), ok, d)
		}
		if ok, d := model.Verify(1, []byte("m"), tag); ok || d != DefaultParseLatency {
			t.Fatalf("CostModelAuth malformed len %d: ok=%v delay=%v", len(tag), ok, d)
		}
	}
	// A right-sized tag that fails point decode also costs only parse time.
	if ok, d := real.Verify(1, []byte("m"), make([]byte, real.Overhead())); ok || d != DefaultParseLatency {
		t.Fatalf("undecodable tag: ok=%v delay=%v", ok, d)
	}
}

// FuzzVerifyAuth throws arbitrary tag bytes at the real verifier: it must
// never panic, never accept a wrong-sized tag, and always charge a delay in
// [0, VerifyLatency].
func FuzzVerifyAuth(f *testing.F) {
	a, err := NewMcCLSAuth(rand.New(rand.NewSource(1)))
	if err != nil {
		f.Fatal(err)
	}
	if err := a.Enroll(1); err != nil {
		f.Fatal(err)
	}
	payload := []byte("RREQ id=9 origin=3")
	valid, _, _ := a.Sign(1, payload)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, a.Overhead()))
	f.Fuzz(func(t *testing.T, tag []byte) {
		ok, d := a.Verify(1, payload, tag)
		if d < 0 || d > a.VerifyLatency {
			t.Fatalf("delay %v outside [0, %v]", d, a.VerifyLatency)
		}
		if ok && len(tag) != a.Overhead() {
			t.Fatalf("accepted a tag of length %d", len(tag))
		}
	})
}
