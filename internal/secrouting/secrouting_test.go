package secrouting

import (
	"bytes"
	"math/rand"
	"testing"

	"mccls/internal/aodv"
)

func newRealAuth(t *testing.T) *McCLSAuth {
	t.Helper()
	a, err := NewMcCLSAuth(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMcCLSAuthRoundTrip(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(3); err != nil {
		t.Fatal(err)
	}
	payload := []byte("RREQ id=9 origin=3")
	tag, d := a.Sign(3, payload)
	if d != DefaultSignLatency {
		t.Fatalf("sign delay = %v", d)
	}
	if len(tag) != a.Overhead() {
		t.Fatalf("tag length %d != overhead %d", len(tag), a.Overhead())
	}
	ok, d := a.Verify(3, payload, tag)
	if !ok {
		t.Fatal("valid tag rejected")
	}
	if d != DefaultVerifyLatency {
		t.Fatalf("verify delay = %v", d)
	}
}

func TestMcCLSAuthRejectsTamperedPayload(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("RREP dest=4 seq=7 hops=2")
	tag, _ := a.Sign(1, payload)
	tampered := bytes.Clone(payload)
	tampered[5] ^= 0xFF // e.g. a rushed/modified hop count
	if ok, _ := a.Verify(1, tampered, tag); ok {
		t.Fatal("tampered payload accepted")
	}
}

func TestMcCLSAuthRejectsUnenrolled(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("forged RREP")
	// The attacker (node 9, never enrolled) emits a well-sized tag that
	// cannot verify.
	tag, d := a.Sign(9, payload)
	if d != 0 {
		t.Fatal("attacker charged crypto time for garbage tag")
	}
	if len(tag) != a.Overhead() {
		t.Fatal("attacker tag has wrong size")
	}
	if ok, _ := a.Verify(9, payload, tag); ok {
		t.Fatal("unenrolled node's tag accepted")
	}
	if a.Enrolled(9) || !a.Enrolled(1) {
		t.Fatal("enrollment bookkeeping wrong")
	}
}

func TestMcCLSAuthRejectsCrossNodeTag(t *testing.T) {
	a := newRealAuth(t)
	for _, n := range []int{1, 2} {
		if err := a.Enroll(n); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("hello")
	tag, _ := a.Sign(1, payload)
	// A valid tag from node 1 must not verify as node 2 (identity is bound
	// through H1 and H2).
	if ok, _ := a.Verify(2, payload, tag); ok {
		t.Fatal("node 1's tag verified as node 2")
	}
}

func TestMcCLSAuthMalformedTag(t *testing.T) {
	a := newRealAuth(t)
	if err := a.Enroll(1); err != nil {
		t.Fatal(err)
	}
	for _, tag := range [][]byte{nil, {1, 2, 3}, make([]byte, a.Overhead())} {
		if ok, _ := a.Verify(1, []byte("m"), tag); ok {
			t.Fatalf("malformed tag of len %d accepted", len(tag))
		}
	}
}

func TestCostModelAuthMirrorsRealBehaviour(t *testing.T) {
	real := newRealAuth(t)
	model := NewCostModelAuth()
	for _, n := range []int{0, 1} {
		if err := real.Enroll(n); err != nil {
			t.Fatal(err)
		}
		model.Enroll(n)
	}
	payloads := [][]byte{[]byte("a"), []byte("RREQ 1"), make([]byte, 100)}
	for _, p := range payloads {
		// enrolled nodes, intact payload → both accept
		for _, n := range []int{0, 1} {
			rt, _ := real.Sign(n, p)
			mt, _ := model.Sign(n, p)
			rok, _ := real.Verify(n, p, rt)
			mok, _ := model.Verify(n, p, mt)
			if !rok || !mok {
				t.Fatal("authenticators disagree on valid input")
			}
			// tampered payload → both reject
			bad := append(bytes.Clone(p), 0xFF)
			rok, _ = real.Verify(n, bad, rt)
			mok, _ = model.Verify(n, bad, mt)
			if rok || mok {
				t.Fatal("authenticators disagree on tampered input")
			}
		}
		// attacker (node 9) → both reject
		rt, _ := real.Sign(9, p)
		mt, _ := model.Sign(9, p)
		rok, _ := real.Verify(9, p, rt)
		mok, _ := model.Verify(9, p, mt)
		if rok || mok {
			t.Fatal("authenticators disagree on attacker input")
		}
	}
}

func TestCostModelLatencies(t *testing.T) {
	a := NewCostModelAuth()
	a.Enroll(0)
	if _, d := a.Sign(0, []byte("x")); d != DefaultSignLatency {
		t.Fatalf("sign latency %v", d)
	}
	tag, _ := a.Sign(0, []byte("x"))
	if _, d := a.Verify(0, []byte("x"), tag); d != DefaultVerifyLatency {
		t.Fatalf("verify latency %v", d)
	}
	// Attackers pay nothing to emit garbage.
	if _, d := a.Sign(5, []byte("x")); d != 0 {
		t.Fatal("attacker charged sign latency")
	}
	if a.Overhead() <= 0 {
		t.Fatal("overhead must be positive")
	}
}

func TestNodeIdentityStable(t *testing.T) {
	if NodeIdentity(7) != "node-7" || NodeIdentity(0) != "node-0" {
		t.Fatal("identity mapping changed; breaks key binding")
	}
}

// Interface compliance for both authenticators.
var (
	_ aodv.Authenticator = (*McCLSAuth)(nil)
	_ aodv.Authenticator = (*CostModelAuth)(nil)
)
