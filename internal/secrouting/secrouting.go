// Package secrouting implements the McCLS routing-authentication extension
// the paper evaluates: AODV control packets (RREQ/RREP/RERR) are signed
// hop-by-hop by their transmitter and verified before processing, so nodes
// without a KGC-issued key — the black hole and rushing attackers — cannot
// inject or relay routing state.
//
// Two interchangeable authenticators are provided:
//
//   - McCLSAuth runs the real scheme (internal/core) on every control
//     packet. Used in unit/integration tests and small scenarios.
//   - CostModelAuth reproduces the same accept/reject behaviour with
//     cheap tags and injects calibrated sign/verify latencies as virtual
//     processing delay. Used for the paper's parameter sweeps, where real
//     pairings would make the simulation wall-clock-bound without changing
//     any routing decision (equivalence is asserted by tests).
package secrouting

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/core"
)

// Default processing latencies injected per control-packet operation.
// Derivation (see EXPERIMENTS.md): the mccls_sign / mccls_verify rows of
// BENCH_bn254.json (cmd/mcclsbench on the reference x86 host) measure
// ~33 µs and ~1.35 ms after the GLV/fixed-base/sparse-pairing kernels
// landed — sign is one fixed-base G1 multiplication (S precomputed),
// verify one pairing plus one fixed-base multiplication with e(P_pub, Q_ID)
// cached. The defaults round those up by ~1.5× as headroom for slower
// in-class hardware. Override with the corresponding fields when
// calibrating against a different platform's cmd/mcclsbench run.
const (
	DefaultSignLatency   = 50 * time.Microsecond
	DefaultVerifyLatency = 2 * time.Millisecond

	// DefaultParseLatency is charged for rejecting a malformed tag:
	// the receiver still burns cycles on the length check and the two
	// deserialization attempts (P_ID point decode with on-curve check,
	// signature decode) before it can refuse. That work is ~1 µs on the
	// reference host — three orders of magnitude below a verification —
	// but modelling it as literally free would make a garbage-flood DoS
	// cost the victim nothing at all in the simulation. Rounded up with
	// the same ~1.5× headroom convention as the sign/verify figures.
	DefaultParseLatency = 2 * time.Microsecond
)

// NodeIdentity maps a simulator node index to its McCLS identity string.
func NodeIdentity(node int) string { return "node-" + strconv.Itoa(node) }

// McCLSAuth authenticates control packets with real McCLS signatures.
// Enrolled nodes hold full certificateless keys; everyone else (attackers)
// produces tags that cannot verify.
type McCLSAuth struct {
	kgc  *core.KGC
	vf   *core.Verifier
	keys map[int]*core.PrivateKey

	// SignLatency and VerifyLatency are the virtual-time processing
	// delays charged per operation; ParseLatency is charged for
	// rejecting a malformed tag before any curve arithmetic runs.
	// BatchModel prices VerifyBatch windows (amortized flood
	// verification); see VerifyCostModel.
	SignLatency   time.Duration
	VerifyLatency time.Duration
	ParseLatency  time.Duration
	BatchModel    VerifyCostModel

	rng io.Reader
}

var _ aodv.Authenticator = (*McCLSAuth)(nil)

// NewMcCLSAuth sets up a KGC for the network. rng seeds all key material
// (nil uses crypto/rand).
func NewMcCLSAuth(rng io.Reader) (*McCLSAuth, error) {
	kgc, err := core.Setup(rng)
	if err != nil {
		return nil, fmt.Errorf("secrouting: %w", err)
	}
	return &McCLSAuth{
		kgc:           kgc,
		vf:            core.NewVerifier(kgc.Params()),
		keys:          make(map[int]*core.PrivateKey),
		SignLatency:   DefaultSignLatency,
		VerifyLatency: DefaultVerifyLatency,
		ParseLatency:  DefaultParseLatency,
		BatchModel:    DefaultVerifyCostModel(),
		rng:           rng,
	}, nil
}

// Enroll issues node a partial private key and completes its keypair.
// Attackers are simply never enrolled.
func (a *McCLSAuth) Enroll(node int) error {
	ppk := a.kgc.ExtractPartialPrivateKey(NodeIdentity(node))
	sk, err := core.GenerateKeyPair(a.kgc.Params(), ppk, a.rng)
	if err != nil {
		return fmt.Errorf("secrouting: enroll node %d: %w", node, err)
	}
	a.keys[node] = sk
	return nil
}

// Unenroll discards node's key material. Crash injection uses this under
// online enrollment: keys live in volatile memory, so a restarted node
// comes back unenrolled and must re-enroll through the KGC.
func (a *McCLSAuth) Unenroll(node int) { delete(a.keys, node) }

// Enrolled reports whether node holds a key.
func (a *McCLSAuth) Enrolled(node int) bool { return a.keys[node] != nil }

// Sign produces pubkey‖signature over payload. Unenrolled nodes emit a
// syntactically valid but cryptographically worthless tag at zero cost
// (an attacker does no real work). A randomness failure is reported as an
// error — there is no tag worth transmitting — and the caller counts it.
func (a *McCLSAuth) Sign(node int, payload []byte) ([]byte, time.Duration, error) {
	sk, ok := a.keys[node]
	if !ok {
		return make([]byte, 64+core.SignatureSize), 0, nil
	}
	sig, err := core.Sign(a.kgc.Params(), sk, payload, a.rng)
	if err != nil {
		return nil, 0, fmt.Errorf("secrouting: sign as node %d: %w", node, err)
	}
	out := append(sk.Public().PID.Marshal(), sig.Marshal()...)
	return out, a.SignLatency, nil
}

// Verify checks the tag against the identity derived from the transmitting
// node's index. Malformed tags are rejected before any curve arithmetic,
// but the deserialization attempt itself is charged at ParseLatency.
func (a *McCLSAuth) Verify(node int, payload, auth []byte) (bool, time.Duration) {
	if len(auth) != 64+core.SignatureSize {
		return false, a.ParseLatency
	}
	pk, err := reassemblePublicKey(NodeIdentity(node), auth[:64])
	if err != nil {
		return false, a.ParseLatency
	}
	sig, err := core.UnmarshalSignature(auth[64:])
	if err != nil {
		return false, a.ParseLatency
	}
	return a.vf.Verify(pk, payload, sig) == nil, a.VerifyLatency
}

// reassemblePublicKey rebuilds a core.PublicKey from an identity and a bare
// P_ID encoding.
func reassemblePublicKey(id string, pid []byte) (*core.PublicKey, error) {
	buf := make([]byte, 0, 8+len(id)+len(pid))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(id)))
	buf = append(buf, n[:]...)
	buf = append(buf, id...)
	buf = append(buf, pid...)
	return core.UnmarshalPublicKey(buf)
}

// Overhead is the per-packet cost of carrying P_ID plus the signature.
func (a *McCLSAuth) Overhead() int { return 64 + core.SignatureSize }

// CostModelAuth mirrors McCLSAuth's accept/reject behaviour without the
// group arithmetic: enrolled nodes produce a keyed digest over the payload;
// everyone else produces garbage. Latencies and overhead default to the
// McCLS figures.
type CostModelAuth struct {
	SignLatency   time.Duration
	VerifyLatency time.Duration
	ParseLatency  time.Duration
	BatchModel    VerifyCostModel
	OverheadBytes int

	authorized map[int]bool
	secret     [16]byte
}

var _ aodv.Authenticator = (*CostModelAuth)(nil)

// NewCostModelAuth creates a cost-model authenticator with the default
// McCLS latencies and wire overhead.
func NewCostModelAuth() *CostModelAuth {
	return &CostModelAuth{
		SignLatency:   DefaultSignLatency,
		VerifyLatency: DefaultVerifyLatency,
		ParseLatency:  DefaultParseLatency,
		BatchModel:    DefaultVerifyCostModel(),
		OverheadBytes: 64 + core.SignatureSize,
		authorized:    make(map[int]bool),
		secret:        [16]byte{0x4d, 0x63, 0x43, 0x4c, 0x53}, // stand-in for the KGC trust root
	}
}

// Enroll authorizes a node. The error is always nil; the signature matches
// McCLSAuth.Enroll so both satisfy the enrollment Authority interface.
func (a *CostModelAuth) Enroll(node int) error {
	a.authorized[node] = true
	return nil
}

// Unenroll revokes a node's authorization (crash under online enrollment).
func (a *CostModelAuth) Unenroll(node int) { delete(a.authorized, node) }

// Enrolled reports whether node is authorized.
func (a *CostModelAuth) Enrolled(node int) bool { return a.authorized[node] }

func (a *CostModelAuth) tag(node int, payload []byte) []byte {
	h := sha256.New()
	h.Write(a.secret[:])
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], uint64(node))
	h.Write(nb[:])
	h.Write(payload)
	return h.Sum(nil)
}

// Sign emits the keyed digest for enrolled nodes and an all-zero tag for
// attackers (who cannot compute it and spend no time trying). The digest
// cannot fail, so the error is always nil.
func (a *CostModelAuth) Sign(node int, payload []byte) ([]byte, time.Duration, error) {
	if !a.authorized[node] {
		return make([]byte, sha256.Size), 0, nil
	}
	return a.tag(node, payload), a.SignLatency, nil
}

// Verify recomputes the digest. Malformed tags cost ParseLatency, mirroring
// McCLSAuth.
func (a *CostModelAuth) Verify(node int, payload, auth []byte) (bool, time.Duration) {
	if len(auth) != sha256.Size {
		return false, a.ParseLatency
	}
	want := a.tag(node, payload)
	for i := range want {
		if want[i] != auth[i] {
			return false, a.VerifyLatency
		}
	}
	return true, a.VerifyLatency
}

// Overhead reports the modelled per-packet byte cost.
func (a *CostModelAuth) Overhead() int { return a.OverheadBytes }
