package secrouting

import (
	"math/rand"
	"time"

	"mccls/internal/radio"
	"mccls/internal/sim"
)

// Online enrollment: instead of every node receiving its McCLS key out of
// band before t=0, the KGC is hosted at a node inside the network and key
// issuance is a request/response exchange over the simulated radio.
// Requests and replies are flooded with a TTL (the requester has no routes
// yet — it cannot have any until it can sign), deduplicated per relay by
// (node, attempt), and deliberately unauthenticated: this is the bootstrap
// channel, and its security rests on the KGC's identity whitelist plus the
// fact that a stolen reply is useless without the enrollee's secret value
// (the certificateless property). A request that goes unanswered — KGC
// down, partition, lost frames — is retried with capped exponential
// backoff and jitter drawn from a per-node seeded stream (so the retry
// schedule is deterministic per identity and never perturbs the shared
// simulation RNG); until a reply arrives the node simply
// signs with garbage and its control packets are rejected exactly as the
// paper's accept/reject rule dictates for any unenrolled sender. A node
// that crashes loses its volatile keys and re-enrolls through the same
// path on restart.

// Enrollment protocol defaults. Derivation (see EXPERIMENTS.md,
// "Resilience"): a TTL-12 flood crosses the default 1500×300 m field in
// ≤ 12 hops × (2 ms MAC jitter bound + sub-ms air time) per direction, so
// 500 ms bounds a request/reply round trip with an order of magnitude of
// headroom; the backoff base is 2× the timeout so the first retry cannot
// race its own outstanding reply; the cap bounds how stale a node's
// retry schedule can get, so after a long KGC outage every node re-enrolls
// within cap·(1+jitter) = 20 s of the KGC returning.
const (
	DefaultEnrollTimeout = 500 * time.Millisecond
	DefaultBackoffBase   = 1 * time.Second
	DefaultBackoffCap    = 16 * time.Second
	DefaultJitterFrac    = 0.25
	DefaultEnrollTTL     = 12

	// enrollRelayJitterMax damps the enrollment flood like the RREQ
	// rebroadcast jitter damps route discovery.
	enrollRelayJitterMax = 25 * time.Millisecond

	// Wire sizes: the request is bare framing plus identities; the reply
	// carries the partial private key D_ID, a G1 point (64 bytes
	// uncompressed).
	enrollReqWireSize = 44
	enrollRepWireSize = 44 + 64
)

// EnrollRequest asks the KGC for a partial private key. Flooded.
type EnrollRequest struct {
	Node    int // requesting identity
	Attempt int // retry counter; dedup key component
	TTL     int
	Sender  int // relaying transmitter
}

// EnrollReply carries the issued key material back. Flooded.
type EnrollReply struct {
	Node    int // enrollee the reply is addressed to
	Attempt int // echo of the request's attempt
	TTL     int
	Sender  int
}

// Authority is the key-issuing surface the enrollment protocol drives;
// McCLSAuth and CostModelAuth both implement it.
type Authority interface {
	Enroll(node int) error
	Unenroll(node int)
	Enrolled(node int) bool
}

// EnrollConfig parameterizes the online enrollment protocol. Zero values
// select the defaults above.
type EnrollConfig struct {
	// KGCNode is the node index hosting the KGC.
	KGCNode int
	// Timeout is how long one request waits for a reply before the
	// attempt is declared failed.
	Timeout time.Duration
	// BackoffBase and BackoffCap bound the retry delay
	// min(cap, base·2^k) after the k-th failed attempt.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterFrac spreads each retry delay uniformly over
	// [delay, delay·(1+JitterFrac)] so synchronized failures do not
	// retry in lockstep.
	JitterFrac float64
	// JitterSeed seeds the per-node backoff-jitter streams. Each client
	// derives its own RNG from this seed, so jitter draws never perturb
	// the shared simulation stream (waypoints, MAC delays) and a node's
	// backoff schedule depends only on its identity and attempt count —
	// not on global event interleaving. Zero draws a seed from the
	// simulator RNG at NewEnrollment (exactly one draw, keeping the
	// shared stream's advance fixed regardless of retry counts).
	JitterSeed int64
	// TTL bounds the enrollment flood.
	TTL int
	// StartJitterMax desynchronizes the initial requests at t=0
	// (default 200ms).
	StartJitterMax time.Duration
}

func (c EnrollConfig) withDefaults() EnrollConfig {
	if c.Timeout == 0 {
		c.Timeout = DefaultEnrollTimeout
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = DefaultJitterFrac
	}
	if c.TTL == 0 {
		c.TTL = DefaultEnrollTTL
	}
	if c.StartJitterMax == 0 {
		c.StartJitterMax = 200 * time.Millisecond
	}
	return c
}

// EnrollStats counts enrollment protocol events (per node, and summed by
// Enrollment.Totals).
type EnrollStats struct {
	Attempts        uint64 // requests originated
	Timeouts        uint64 // attempts that expired unanswered
	Successes       uint64 // enrollments completed (>1 after re-enrollment)
	RequestsRelayed uint64
	RepliesRelayed  uint64
	RepliesSent     uint64 // KGC only
	// MaxBackoff is the largest jittered retry delay this node ever
	// waited; bounded by BackoffCap·(1+JitterFrac).
	MaxBackoff time.Duration
}

type enrollKind uint8

const (
	enrollKindReq enrollKind = iota
	enrollKindRep
)

type enrollSeen struct {
	kind    enrollKind
	node    int
	attempt int
}

// enrollState is one client's retry machine.
type enrollState struct {
	gen     int // invalidates armed timers across crash/success
	attempt int
	// jrng is this node's private backoff-jitter stream (see
	// EnrollConfig.JitterSeed).
	jrng *rand.Rand
}

// Enrollment runs the online enrollment protocol over a medium. It
// interposes on each participating node's receive handler (install after
// the routing layer) and must be started before the simulation runs.
type Enrollment struct {
	sim    *sim.Simulator
	medium *radio.Medium
	auth   Authority
	cfg    EnrollConfig

	registered map[int]bool // KGC identity whitelist
	state      []*enrollState
	seen       []map[enrollSeen]bool
	stats      []EnrollStats
}

// NewEnrollment wires the protocol onto the medium for the given client
// nodes (the KGC host must not be listed; attackers are simply omitted —
// the KGC's whitelist is what keeps them out). Each client's current
// receive handler is wrapped, so call this after aodv.NewNode installed
// the routing handlers.
func NewEnrollment(s *sim.Simulator, medium *radio.Medium, auth Authority, clients []int, cfg EnrollConfig) *Enrollment {
	n := medium.Nodes()
	e := &Enrollment{
		sim:        s,
		medium:     medium,
		auth:       auth,
		cfg:        cfg.withDefaults(),
		registered: make(map[int]bool, len(clients)),
		state:      make([]*enrollState, n),
		seen:       make([]map[enrollSeen]bool, n),
		stats:      make([]EnrollStats, n),
	}
	jitterSeed := e.cfg.JitterSeed
	if jitterSeed == 0 {
		jitterSeed = s.Rand().Int63()
	}
	for _, c := range clients {
		e.registered[c] = true
		// Golden-ratio spacing decorrelates adjacent node indices under
		// the xor-with-seed derivation (same idiom as the experiment
		// harness's per-purpose streams).
		e.state[c] = &enrollState{
			jrng: rand.New(rand.NewSource(jitterSeed ^ int64(uint64(c+1)*0x9e3779b97f4a7c15))),
		}
	}
	for i := 0; i < n; i++ {
		e.seen[i] = make(map[enrollSeen]bool)
		prev := medium.Handler(i)
		i := i
		medium.SetHandler(i, func(from int, payload any) {
			switch msg := payload.(type) {
			case *EnrollRequest:
				e.onRequest(i, *msg)
			case *EnrollReply:
				e.onReply(i, *msg)
			default:
				if prev != nil {
					prev(from, payload)
				}
			}
		})
	}
	return e
}

// Start self-enrolls the KGC host (it holds the master key; no radio
// needed) and kicks off every client's first request with a small
// desynchronizing jitter.
func (e *Enrollment) Start() error {
	if err := e.auth.Enroll(e.cfg.KGCNode); err != nil {
		return err
	}
	for c := range e.state {
		if e.state[c] == nil {
			continue
		}
		c := c
		offset := time.Duration(e.sim.Rand().Int63n(int64(e.cfg.StartJitterMax)))
		e.sim.Schedule(offset, func() { e.begin(c) })
	}
	return nil
}

// begin (re)starts a client's retry machine from a fresh backoff.
func (e *Enrollment) begin(node int) {
	st := e.state[node]
	st.gen++
	st.attempt = 0
	e.sendRequest(node)
}

// sendRequest floods one enrollment request and arms its timeout.
func (e *Enrollment) sendRequest(node int) {
	if e.auth.Enrolled(node) || e.medium.NodeDown(node) {
		return
	}
	st := e.state[node]
	e.stats[node].Attempts++
	req := &EnrollRequest{Node: node, Attempt: st.attempt, TTL: e.cfg.TTL, Sender: node}
	e.seen[node][enrollSeen{enrollKindReq, node, st.attempt}] = true
	e.medium.Broadcast(node, enrollReqWireSize, req)

	gen, attempt := st.gen, st.attempt
	e.sim.Schedule(e.cfg.Timeout, func() {
		if st.gen != gen || e.auth.Enrolled(node) {
			return
		}
		e.stats[node].Timeouts++
		delay := e.backoff(node, attempt)
		st.attempt++
		e.sim.Schedule(delay, func() {
			if st.gen != gen {
				return
			}
			e.sendRequest(node)
		})
	})
}

// backoff computes the jittered retry delay after the k-th failed attempt:
// min(cap, base·2^k) stretched by a uniform factor in [1, 1+JitterFrac]
// drawn from the node's private jitter stream.
func (e *Enrollment) backoff(node, k int) time.Duration {
	d := e.cfg.BackoffCap
	if k < 62 {
		if exp := e.cfg.BackoffBase << uint(k); exp > 0 && exp < d {
			d = exp
		}
	}
	d = time.Duration(float64(d) * (1 + e.cfg.JitterFrac*e.state[node].jrng.Float64()))
	if d > e.stats[node].MaxBackoff {
		e.stats[node].MaxBackoff = d
	}
	return d
}

// onRequest handles an enrollment request arriving at node me: the KGC
// answers whitelisted identities; everyone else relays the flood.
func (e *Enrollment) onRequest(me int, req EnrollRequest) {
	if e.medium.NodeDown(me) {
		return
	}
	key := enrollSeen{enrollKindReq, req.Node, req.Attempt}
	if e.seen[me][key] {
		return
	}
	e.seen[me][key] = true

	if me == e.cfg.KGCNode {
		if !e.registered[req.Node] {
			return // unknown identity: attackers get nothing
		}
		e.stats[me].RepliesSent++
		rep := &EnrollReply{Node: req.Node, Attempt: req.Attempt, TTL: e.cfg.TTL, Sender: me}
		e.seen[me][enrollSeen{enrollKindRep, rep.Node, rep.Attempt}] = true
		e.medium.Broadcast(me, enrollRepWireSize, rep)
		return
	}
	if req.TTL <= 1 {
		return
	}
	fwd := req
	fwd.TTL--
	fwd.Sender = me
	e.stats[me].RequestsRelayed++
	e.relay(me, enrollReqWireSize, &fwd)
}

// onReply handles a reply arriving at node me: the addressee completes its
// keypair; everyone else relays.
func (e *Enrollment) onReply(me int, rep EnrollReply) {
	if e.medium.NodeDown(me) {
		return
	}
	key := enrollSeen{enrollKindRep, rep.Node, rep.Attempt}
	if e.seen[me][key] {
		return
	}
	e.seen[me][key] = true

	if rep.Node == me {
		if e.auth.Enrolled(me) {
			return // duplicate via another path
		}
		if err := e.auth.Enroll(me); err != nil {
			// Key generation failed (broken crypto RNG); the retry
			// machine is still armed and will try again.
			return
		}
		e.stats[me].Successes++
		e.state[me].gen++ // disarm the pending timeout
		return
	}
	if rep.TTL <= 1 {
		return
	}
	fwd := rep
	fwd.TTL--
	fwd.Sender = me
	e.stats[me].RepliesRelayed++
	e.relay(me, enrollRepWireSize, &fwd)
}

// relay rebroadcasts a flooded enrollment frame after a damping jitter.
func (e *Enrollment) relay(me int, size int, payload any) {
	jitter := time.Duration(e.sim.Rand().Int63n(int64(enrollRelayJitterMax)))
	e.sim.Schedule(jitter, func() {
		if e.medium.NodeDown(me) {
			return
		}
		e.medium.Broadcast(me, size, payload)
	})
}

// OnCrash reacts to a node going down: volatile key material is lost and
// the retry machine is disarmed. The KGC host loses only its own signing
// key — the master secret and the identity whitelist model persisted
// state.
func (e *Enrollment) OnCrash(node int) {
	e.auth.Unenroll(node)
	if st := e.state[node]; st != nil {
		st.gen++
	}
}

// OnRestart reacts to a node coming back up: the KGC re-derives its own
// key locally; a client starts enrollment over from a fresh backoff.
func (e *Enrollment) OnRestart(node int) {
	if node == e.cfg.KGCNode {
		// Ignoring the error mirrors Start: with a broken crypto RNG the
		// KGC host simply stays unenrolled and its packets are rejected.
		_ = e.auth.Enroll(node)
		return
	}
	if e.state[node] != nil {
		e.begin(node)
	}
}

// Stats returns node's enrollment counters.
func (e *Enrollment) Stats(node int) EnrollStats { return e.stats[node] }

// Totals sums the per-node counters; MaxBackoff is the maximum over nodes.
func (e *Enrollment) Totals() EnrollStats {
	var t EnrollStats
	for _, s := range e.stats {
		t.Attempts += s.Attempts
		t.Timeouts += s.Timeouts
		t.Successes += s.Successes
		t.RequestsRelayed += s.RequestsRelayed
		t.RepliesRelayed += s.RepliesRelayed
		t.RepliesSent += s.RepliesSent
		if s.MaxBackoff > t.MaxBackoff {
			t.MaxBackoff = s.MaxBackoff
		}
	}
	return t
}

// AllEnrolled reports whether every registered client (and the KGC host)
// currently holds a key.
func (e *Enrollment) AllEnrolled() bool {
	if !e.auth.Enrolled(e.cfg.KGCNode) {
		return false
	}
	for c := range e.registered {
		if !e.auth.Enrolled(c) {
			return false
		}
	}
	return true
}
