package secrouting

import (
	"testing"
	"time"

	"mccls/internal/fault"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// enrollNet builds a static line topology (200 m spacing, default 250 m
// radio) with the KGC at cfg.KGCNode and every other node as an enrollment
// client, and starts the protocol.
func enrollNet(t *testing.T, n int, cfg EnrollConfig) (*sim.Simulator, *radio.Medium, *CostModelAuth, *Enrollment) {
	t.Helper()
	s := sim.New(11)
	pts := make([]mobility.Point, n)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i) * 200, Y: 0}
	}
	m := radio.New(s, &mobility.Static{Points: pts}, radio.Config{})
	auth := NewCostModelAuth()
	var clients []int
	for i := 0; i < n; i++ {
		if i != cfg.KGCNode {
			clients = append(clients, i)
		}
	}
	e := NewEnrollment(s, m, auth, clients, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return s, m, auth, e
}

func TestEnrollmentHappyPath(t *testing.T) {
	s, _, auth, e := enrollNet(t, 5, EnrollConfig{KGCNode: 0})
	s.Run(5 * time.Second)
	if !e.AllEnrolled() {
		t.Fatal("not everyone enrolled over a healthy network")
	}
	for c := 1; c < 5; c++ {
		st := e.Stats(c)
		if st.Attempts != 1 {
			t.Fatalf("node %d took %d attempts over a healthy network", c, st.Attempts)
		}
		if st.Timeouts != 0 {
			t.Fatalf("node %d timed out with the KGC up", c)
		}
		if !auth.Enrolled(c) {
			t.Fatalf("node %d not enrolled", c)
		}
	}
	if tot := e.Totals(); tot.Successes != 4 {
		t.Fatalf("Successes = %d, want 4", tot.Successes)
	}
}

// TestEnrollmentKGCOutageBackoff is the issue's acceptance test: with the
// KGC down for the first 30 s, every client retries with capped exponential
// backoff and all of them enroll after the outage ends; both the retry
// count and the backoff bound are asserted.
func TestEnrollmentKGCOutageBackoff(t *testing.T) {
	cfg := EnrollConfig{
		KGCNode:     0,
		Timeout:     500 * time.Millisecond,
		BackoffBase: time.Second,
		BackoffCap:  8 * time.Second,
		JitterFrac:  0.25,
	}
	s, m, auth, e := enrollNet(t, 5, cfg)

	// The KGC host crashes immediately: radio dark, signing key lost.
	m.SetNodeDown(0, true)
	e.OnCrash(0)
	s.Schedule(30*time.Second, func() {
		m.SetNodeDown(0, false)
		e.OnRestart(0)
	})

	s.Run(60 * time.Second)

	if !e.AllEnrolled() {
		t.Fatal("outage ended but enrollment never completed")
	}
	if !auth.Enrolled(0) {
		t.Fatal("restarted KGC did not re-derive its own key")
	}
	// With timeout 0.5 s and backoff 1,2,4,8,8,... (jitter ≤ ×1.25), a
	// client fits at most ~12 attempts in 30 s and needs at least 3 to
	// outlast the outage; the last pre-restart backoff is ≤ cap·1.25 = 10 s,
	// so everyone is enrolled well before t=60 s.
	for c := 1; c < 5; c++ {
		st := e.Stats(c)
		if st.Attempts < 3 || st.Attempts > 12 {
			t.Fatalf("node %d made %d attempts, want 3..12", c, st.Attempts)
		}
		if st.Timeouts < 2 {
			t.Fatalf("node %d saw %d timeouts during a 30 s outage", c, st.Timeouts)
		}
		if st.Successes != 1 {
			t.Fatalf("node %d Successes = %d", c, st.Successes)
		}
		maxJittered := time.Duration(float64(cfg.BackoffCap) * (1 + cfg.JitterFrac))
		if st.MaxBackoff > maxJittered {
			t.Fatalf("node %d backoff %v exceeds cap bound %v", c, st.MaxBackoff, maxJittered)
		}
		if st.MaxBackoff < 2*time.Second {
			t.Fatalf("node %d backoff never grew past the base: %v", c, st.MaxBackoff)
		}
	}
}

func TestEnrollmentClientCrashReenrolls(t *testing.T) {
	s, m, auth, e := enrollNet(t, 3, EnrollConfig{KGCNode: 0})
	s.Run(5 * time.Second)
	if !auth.Enrolled(2) {
		t.Fatal("client never enrolled")
	}

	// Crash: volatile keys are gone immediately.
	m.SetNodeDown(2, true)
	e.OnCrash(2)
	if auth.Enrolled(2) {
		t.Fatal("crashed client kept its key")
	}
	s.Schedule(2*time.Second, func() {
		m.SetNodeDown(2, false)
		e.OnRestart(2)
	})

	s.Run(20 * time.Second)
	if !auth.Enrolled(2) {
		t.Fatal("restarted client never re-enrolled")
	}
	if st := e.Stats(2); st.Successes != 2 {
		t.Fatalf("Successes = %d, want 2 (enroll + re-enroll)", st.Successes)
	}
}

func TestEnrollmentKGCIgnoresUnregistered(t *testing.T) {
	// Node 3 is not on the KGC's whitelist (an attacker): it can relay the
	// flood but a request for its own identity must go unanswered.
	s := sim.New(11)
	pts := make([]mobility.Point, 4)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i) * 200, Y: 0}
	}
	m := radio.New(s, &mobility.Static{Points: pts}, radio.Config{})
	auth := NewCostModelAuth()
	e := NewEnrollment(s, m, auth, []int{1, 2}, EnrollConfig{KGCNode: 0})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.onRequest(0, EnrollRequest{Node: 3, Attempt: 0, TTL: 12, Sender: 3})
	s.Run(5 * time.Second)
	if auth.Enrolled(3) {
		t.Fatal("unregistered identity got a key")
	}
	if !auth.Enrolled(1) || !auth.Enrolled(2) {
		t.Fatal("registered clients failed to enroll")
	}
	if e.Stats(0).RepliesSent != 2 {
		t.Fatalf("KGC sent %d replies for 2 registered clients", e.Stats(0).RepliesSent)
	}
}

// radioLifecycle adapts the medium's per-node radio power switch to the
// fault.Node lifecycle surface, so declarative fault schedules can drive
// enrollment tests that have no routing layer underneath. The bool returns
// deduplicate transitions exactly like aodv.Node's.
type radioLifecycle struct {
	m    *radio.Medium
	node int
}

func (r radioLifecycle) Down() bool {
	if r.m.NodeDown(r.node) {
		return false
	}
	r.m.SetNodeDown(r.node, true)
	return true
}

func (r radioLifecycle) Up(bool) bool {
	if !r.m.NodeDown(r.node) {
		return false
	}
	r.m.SetNodeDown(r.node, false)
	return true
}

// TestEnrollmentCrashOverlappingRegionOutage drives the enrollment protocol
// with a declarative fault.Schedule that composes two failure modes: node 3
// crashes (losing its volatile keys) and restarts *inside* a regional
// outage that severs every link around nodes 1 and 2 — cutting the whole
// right half of the line off from the KGC. The crashed node must keep
// backing off against the unreachable KGC and re-enroll only after the
// region clears, while nodes that merely lost connectivity (not power) keep
// the keys they already hold: a partition is not a key loss.
func TestEnrollmentCrashOverlappingRegionOutage(t *testing.T) {
	s, m, auth, e := enrollNet(t, 5, EnrollConfig{KGCNode: 0})

	sched := fault.Schedule{
		Crashes: []fault.Crash{{Node: 3, At: 5 * time.Second, RestartAt: 10 * time.Second}},
		// Disk at (300,0) r=150 covers nodes 1 (x=200) and 2 (x=400): every
		// link touching either is dark during [8s, 20s), so nodes 1–4 cannot
		// reach the KGC at node 0.
		Regions: []fault.RegionOutage{{X: 300, Y: 0, Radius: 150, From: 8 * time.Second, To: 20 * time.Second}},
	}
	nodes := make([]fault.Node, 5)
	for i := range nodes {
		nodes[i] = radioLifecycle{m: m, node: i}
	}
	fault.Apply(s, sched, nodes, m, fault.Hooks{OnCrash: e.OnCrash, OnRestart: e.OnRestart})

	// Mid-partition probe: node 3 is back up but must still be unenrolled,
	// while node 4 — partitioned but never powered off — keeps its key.
	var midEnrolled3, midEnrolled4 bool
	s.Schedule(15*time.Second, func() {
		midEnrolled3 = auth.Enrolled(3)
		midEnrolled4 = auth.Enrolled(4)
	})

	s.Run(40 * time.Second)

	if midEnrolled3 {
		t.Fatal("node 3 re-enrolled across the partition")
	}
	if !midEnrolled4 {
		t.Fatal("node 4 lost its key to a radio outage (partition is not a crash)")
	}
	if !e.AllEnrolled() {
		t.Fatal("region cleared but enrollment never completed")
	}
	st := e.Stats(3)
	if st.Successes != 2 {
		t.Fatalf("node 3 Successes = %d, want 2 (initial + post-restart)", st.Successes)
	}
	if st.Timeouts < 2 {
		t.Fatalf("node 3 saw %d timeouts retrying into the partition, want ≥ 2", st.Timeouts)
	}
	if st.MaxBackoff < 2*time.Second {
		t.Fatalf("node 3 backoff never grew past the base: %v", st.MaxBackoff)
	}
	// Nodes that only lost links made exactly their one initial attempt.
	for _, c := range []int{1, 2, 4} {
		if st := e.Stats(c); st.Attempts != 1 || st.Successes != 1 {
			t.Fatalf("node %d attempts/successes = %d/%d, want 1/1", c, st.Attempts, st.Successes)
		}
	}
}

// TestBackoffJitterDrawSequence pins the per-node jitter streams: with a
// fixed JitterSeed, every node's backoff sequence is a deterministic
// function of (seed, node, attempt) — independent of event interleaving,
// other nodes' retries, and every shared simulation draw. The golden
// values guard the derivation (seed ^ (node+1)·goldenRatio) and the
// stretch formula min(cap, base·2^k)·(1 + frac·U).
func TestBackoffJitterDrawSequence(t *testing.T) {
	mk := func() *Enrollment {
		_, _, _, e := func() (*sim.Simulator, *radio.Medium, *CostModelAuth, *Enrollment) {
			s := sim.New(99)
			pts := []mobility.Point{{X: 0}, {X: 200}, {X: 400}}
			m := radio.New(s, &mobility.Static{Points: pts}, radio.Config{})
			auth := NewCostModelAuth()
			e := NewEnrollment(s, m, auth, []int{1, 2}, EnrollConfig{KGCNode: 0, JitterSeed: 42})
			return s, m, auth, e
		}()
		return e
	}
	e := mk()
	var got []time.Duration
	for k := 0; k < 4; k++ {
		got = append(got, e.backoff(1, k))
	}
	got = append(got, e.backoff(2, 0), e.backoff(2, 1))
	want := []time.Duration{
		1055087874, // node 1, k=0: 1 s · (1 + 0.25·U₀)
		2362168715, // node 1, k=1: 2 s stretched
		4544125767, // node 1, k=2: 4 s stretched
		8449143217, // node 1, k=3: 8 s stretched
		1119007155, // node 2, k=0: independent stream
		2459334172, // node 2, k=1
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d = %d, want %d (jitter stream derivation changed)", i, got[i], want[i])
		}
	}

	// A reconstructed enrollment reproduces the exact sequence: draws
	// depend only on (seed, node, attempt index within the stream).
	e2 := mk()
	var again []time.Duration
	for k := 0; k < 4; k++ {
		again = append(again, e2.backoff(1, k))
	}
	again = append(again, e2.backoff(2, 0), e2.backoff(2, 1))
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("draw %d not reproducible: %v vs %v", i, got[i], again[i])
		}
	}
}
