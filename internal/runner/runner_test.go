package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultsInJobOrder is the engine's core invariant: results come back
// in submission order no matter how the scheduler interleaves the workers.
func TestResultsInJobOrder(t *testing.T) {
	const n = 64
	trials := make([]Trial[int], n)
	for i := 0; i < n; i++ {
		i := i
		trials[i] = Func(fmt.Sprintf("job%d", i), func(context.Context) (int, error) {
			// Earlier jobs sleep longer, so completion order is roughly
			// the reverse of submission order.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return i * i, nil
		})
	}
	got, err := Run(context.Background(), Options{Workers: 8}, trials)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestSerialAndParallelIdentical pins the determinism contract at the pool
// level: any worker count yields the same result slice.
func TestSerialAndParallelIdentical(t *testing.T) {
	mk := func() []Trial[string] {
		trials := make([]Trial[string], 20)
		for i := range trials {
			i := i
			trials[i] = Func("t", func(context.Context) (string, error) {
				return fmt.Sprintf("v%d", i), nil
			})
		}
		return trials
	}
	serial, err := Run(context.Background(), Options{Workers: 1}, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 32} {
		par, err := Run(context.Background(), Options{Workers: w}, mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d diverged at %d: %q vs %q", w, i, serial[i], par[i])
			}
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	boom := errors.New("boom")
	trials := []Trial[int]{
		Func("ok", func(context.Context) (int, error) { return 1, nil }),
		Func("fail-a", func(context.Context) (int, error) {
			time.Sleep(20 * time.Millisecond) // fails *after* fail-b
			return 0, boom
		}),
		Func("fail-b", func(context.Context) (int, error) { return 0, errors.New("other") }),
	}
	_, err := Run(context.Background(), Options{Workers: 3}, trials)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the lowest-index failure (fail-a)", err)
	}
	if !strings.Contains(err.Error(), "fail-a") {
		t.Fatalf("error does not name the failing trial: %v", err)
	}
}

func TestFailureCancelsSiblings(t *testing.T) {
	var started atomic.Int32
	trials := make([]Trial[int], 100)
	trials[0] = Func("fail", func(context.Context) (int, error) {
		return 0, errors.New("early failure")
	})
	for i := 1; i < len(trials); i++ {
		trials[i] = Func("slow", func(ctx context.Context) (int, error) {
			started.Add(1)
			<-ctx.Done()
			return 0, ctx.Err()
		})
	}
	start := time.Now()
	_, err := Run(context.Background(), Options{Workers: 2}, trials)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pool did not drain promptly after failure (%v)", elapsed)
	}
	if n := started.Load(); n >= 99 {
		t.Fatalf("cancellation did not stop job feeding (%d siblings ran)", n)
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	trials := []Trial[int]{
		Func("ok", func(context.Context) (int, error) { return 7, nil }),
		Func("crash", func(context.Context) (int, error) { panic("scenario exploded") }),
	}
	_, err := Run(context.Background(), Options{Workers: 2}, trials)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 1 || pe.Label != "crash" || pe.Value != "scenario exploded" {
		t.Fatalf("panic error misattributed: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack trace")
	}
}

func TestPerTrialTimeout(t *testing.T) {
	trials := []Trial[int]{
		Func("fast", func(context.Context) (int, error) { return 1, nil }),
		Func("hung", func(ctx context.Context) (int, error) {
			<-ctx.Done() // a context-aware trial notices the deadline
			return 0, ctx.Err()
		}),
	}
	start := time.Now()
	_, err := Run(context.Background(), Options{Workers: 2, Timeout: 30 * time.Millisecond}, trials)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the trial (%v)", elapsed)
	}
}

func TestCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trials := []Trial[int]{
		Func("never", func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		}),
	}
	if _, err := Run(ctx, Options{}, trials); err == nil {
		t.Fatal("pre-cancelled context must fail the batch")
	}
}

func TestProgressObservability(t *testing.T) {
	const n = 10
	trials := make([]Trial[int], n)
	for i := range trials {
		i := i
		trials[i] = Trial[int]{
			Label: fmt.Sprintf("trial%d", i),
			Run: func(_ context.Context, obs *Obs) (int, error) {
				obs.Events = uint64(100 * (i + 1))
				return i, nil
			},
		}
	}
	var updates []Update
	_, err := Run(context.Background(), Options{
		Workers:  4,
		Progress: func(u Update) { updates = append(updates, u) }, // serialized by the pool
	}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != n {
		t.Fatalf("got %d updates, want %d", len(updates), n)
	}
	seen := map[int]bool{}
	for k, u := range updates {
		if u.Done != k+1 || u.Total != n {
			t.Fatalf("update %d has Done=%d Total=%d", k, u.Done, u.Total)
		}
		if u.Events != uint64(100*(u.Index+1)) {
			t.Fatalf("update for trial %d lost its event count: %+v", u.Index, u)
		}
		if u.Wall <= 0 {
			t.Fatalf("update missing wall time: %+v", u)
		}
		if u.Events > 0 && u.EventsPerSec <= 0 {
			t.Fatalf("events recorded but throughput missing: %+v", u)
		}
		seen[u.Index] = true
	}
	if len(seen) != n {
		t.Fatalf("updates cover %d distinct trials, want %d", len(seen), n)
	}
}

func TestEmptyBatch(t *testing.T) {
	got, err := Run[int](context.Background(), Options{}, nil)
	if err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	// Workers <= 0 must still run everything (defaults to GOMAXPROCS).
	trials := []Trial[int]{
		Func("a", func(context.Context) (int, error) { return 1, nil }),
		Func("b", func(context.Context) (int, error) { return 2, nil }),
	}
	got, err := Run(context.Background(), Options{Workers: -1}, trials)
	if err != nil || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}
