// Package runner is a bounded worker-pool engine for deterministic trial
// batches. A trial is any function of a context; the pool fans a batch out
// over N workers and returns the results in job order regardless of how the
// scheduler interleaved them, so a batch of independent, seed-deterministic
// simulations produces bit-identical output at any worker count.
//
// The engine adds the operational guarantees a long sweep needs:
//
//   - context cancellation (the whole batch aborts promptly),
//   - a per-trial wall-clock deadline,
//   - panic recovery (a crashing trial becomes that job's error instead of
//     taking down the process), and
//   - per-trial observability (wall time, events processed, events/sec)
//     through an optional progress callback.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Options configures a batch run. The zero value is a sensible default:
// GOMAXPROCS workers, no per-trial deadline, no progress reporting.
type Options struct {
	// Workers bounds the pool (default GOMAXPROCS; 1 forces serial
	// execution, useful for determinism baselines).
	Workers int
	// Timeout is the per-trial wall-clock deadline (0 = none). A trial
	// only observes it through the context it receives, so trials must be
	// context-aware (Scenario.RunContext wires it into the simulator's
	// interrupt hook).
	Timeout time.Duration
	// Progress, when non-nil, receives one Update per finished trial.
	// Calls are serialized; the callback must not block for long or it
	// stalls the pool.
	Progress func(Update)
}

// Update describes one finished trial.
type Update struct {
	// Index is the trial's position in the submitted batch; Done counts
	// finished trials including this one, out of Total.
	Index, Done, Total int
	Label              string
	Err                error
	// Wall is the trial's wall-clock duration; Events is whatever the
	// trial recorded in its Obs (simulator events for scenario trials),
	// and EventsPerSec the resulting throughput (0 when Events is 0).
	Wall         time.Duration
	Events       uint64
	EventsPerSec float64
	// PeakQueue and the Grid* counters echo the trial's Obs verbatim (zero
	// when the trial did not report them).
	PeakQueue      int
	GridCells      int
	GridOccupancy  int
	GridRebuilds   uint64
	GridQueries    uint64
	GridCandidates uint64
}

// Obs is the per-trial observability slot: the trial fills it in (e.g. with
// the simulator's processed-event count) and the pool folds it into the
// progress Update.
type Obs struct {
	Events uint64
	// PeakQueue is the trial's event-queue high-water mark, the natural
	// sizing figure for the pooled event store.
	PeakQueue int
	// The Grid* counters describe the trial's spatial neighbor index:
	// occupied cells and worst single-cell population of the last build,
	// rebuild count, and the queries/candidates pair whose ratio is the
	// effective per-lookup work. All zero when the index is disabled.
	GridCells      int
	GridOccupancy  int
	GridRebuilds   uint64
	GridQueries    uint64
	GridCandidates uint64
}

// Trial is one unit of work. Run must be self-contained: it may only touch
// state it owns (or read-only shared state), since trials execute
// concurrently.
type Trial[T any] struct {
	Label string
	Run   func(ctx context.Context, obs *Obs) (T, error)
}

// Func wraps a bare context function as an unlabelled Trial.
func Func[T any](label string, fn func(ctx context.Context) (T, error)) Trial[T] {
	return Trial[T]{Label: label, Run: func(ctx context.Context, _ *Obs) (T, error) {
		return fn(ctx)
	}}
}

// PanicError is the per-job error a recovered trial panic converts into.
type PanicError struct {
	Index int
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("trial %d (%s) panicked: %v", e.Index, e.Label, e.Value)
}

// Run executes the batch over the worker pool and returns results in job
// order. On failure it returns the error of the lowest-index failing trial
// (wrapped with the trial's index and label); remaining trials are
// cancelled promptly via the shared context. A nil error guarantees every
// slot of the result slice is a successful trial result.
func Run[T any](ctx context.Context, opts Options, trials []Trial[T]) ([]T, error) {
	n := len(trials)
	if n == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Cancelling on the first failure drains the pool quickly; results
	// stay deterministic because on success no cancellation happens and on
	// failure the lowest-index error is reported regardless of which trial
	// tripped the cancel.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes progress callbacks and the done counter
		done int
	)

	runOne := func(i int) {
		start := time.Now()
		var obs Obs
		tctx := ctx
		if opts.Timeout > 0 {
			var tcancel context.CancelFunc
			tctx, tcancel = context.WithTimeout(ctx, opts.Timeout)
			defer tcancel()
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &PanicError{Index: i, Label: trials[i].Label, Value: r, Stack: debug.Stack()}
				}
			}()
			results[i], errs[i] = trials[i].Run(tctx, &obs)
		}()
		if errs[i] != nil {
			cancel()
		}
		wall := time.Since(start)
		mu.Lock()
		done++
		if opts.Progress != nil {
			u := Update{
				Index: i, Done: done, Total: n,
				Label: trials[i].Label, Err: errs[i],
				Wall: wall, Events: obs.Events,
				PeakQueue: obs.PeakQueue,
				GridCells: obs.GridCells, GridOccupancy: obs.GridOccupancy,
				GridRebuilds: obs.GridRebuilds, GridQueries: obs.GridQueries,
				GridCandidates: obs.GridCandidates,
			}
			if secs := wall.Seconds(); secs > 0 && obs.Events > 0 {
				u.EventsPerSec = float64(obs.Events) / secs
			}
			opts.Progress(u)
		}
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(i)
			}
		}()
	}
	fed := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
			fed++
		case <-ctx.Done():
			// A trial failed (or the caller cancelled): stop feeding.
			// Unfed jobs keep their nil error; the scan below prefers
			// real failures over cancellation fallout.
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Report the lowest-index genuine failure; fall back to the lowest
	// cancellation error (caller-initiated aborts land here).
	var cancelled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelled == nil {
				cancelled = fmt.Errorf("runner: trial %d (%s): %w", i, trials[i].Label, err)
			}
			continue
		}
		return nil, fmt.Errorf("runner: trial %d (%s): %w", i, trials[i].Label, err)
	}
	if cancelled != nil {
		return nil, cancelled
	}
	if fed < n {
		// The caller's context died but every fed trial still returned
		// success (trials are not obliged to observe cancellation): the
		// batch is nonetheless incomplete.
		return nil, fmt.Errorf("runner: batch aborted after %d/%d trials: %w", fed, n, context.Cause(ctx))
	}
	return results, nil
}
