// Package traffic generates the constant-bit-rate (CBR) workload used by
// the paper's QualNet experiments: a fixed set of source→destination flows,
// each emitting fixed-size packets at a fixed rate between a start and stop
// time.
package traffic

import (
	"math/rand"
	"time"

	"mccls/internal/sim"
)

// Sender is the application-layer send interface a routing agent exposes;
// both aodv.Node and dsr.Node satisfy it.
type Sender interface {
	Send(dst, bytes int)
}

// Flow is one CBR conversation.
type Flow struct {
	Src, Dst int
}

// CBRConfig parameterizes the generator. Zero values select defaults
// matching the AODV literature (4 packets/s of 512 bytes).
type CBRConfig struct {
	// Rate is packets per second per flow (default 4).
	Rate float64
	// PacketBytes is the application payload size (default 512).
	PacketBytes int
	// Start and Stop bound the emission window.
	Start, Stop time.Duration
}

func (c CBRConfig) withDefaults() CBRConfig {
	if c.Rate == 0 {
		c.Rate = 4
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 512
	}
	return c
}

// RandomFlows draws n distinct src→dst pairs from eligible (src ≠ dst). It
// panics if fewer than two eligible nodes exist, which is a configuration
// error.
func RandomFlows(n int, eligible []int, rng *rand.Rand) []Flow {
	if len(eligible) < 2 {
		panic("traffic: need at least two eligible nodes")
	}
	flows := make([]Flow, 0, n)
	used := make(map[Flow]bool, n)
	for len(flows) < n {
		src := eligible[rng.Intn(len(eligible))]
		dst := eligible[rng.Intn(len(eligible))]
		if src == dst {
			continue
		}
		f := Flow{Src: src, Dst: dst}
		if used[f] {
			continue
		}
		used[f] = true
		flows = append(flows, f)
	}
	return flows
}

// StartCBR schedules every flow's packet emissions on the simulator. Each
// flow's first packet is offset by a uniform random fraction of the period
// so flows do not synchronize.
func StartCBR(s *sim.Simulator, nodes []Sender, flows []Flow, cfg CBRConfig) {
	cfg = cfg.withDefaults()
	period := time.Duration(float64(time.Second) / cfg.Rate)
	for _, f := range flows {
		f := f
		offset := time.Duration(s.Rand().Int63n(int64(period)))
		var tick func()
		tick = func() {
			if s.Now() >= cfg.Stop {
				return
			}
			nodes[f.Src].Send(f.Dst, cfg.PacketBytes)
			s.Schedule(period, tick)
		}
		s.ScheduleAt(cfg.Start+offset, tick)
	}
}
