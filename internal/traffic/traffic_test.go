package traffic

import (
	"math/rand"
	"testing"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// senders adapts a slice of AODV nodes to the Sender interface.
func senders(nodes []*aodv.Node) []Sender {
	out := make([]Sender, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out
}

func TestRandomFlowsDistinctAndEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eligible := []int{0, 2, 4, 6}
	flows := RandomFlows(5, eligible, rng)
	if len(flows) != 5 {
		t.Fatalf("got %d flows", len(flows))
	}
	seen := map[Flow]bool{}
	ok := map[int]bool{0: true, 2: true, 4: true, 6: true}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if !ok[f.Src] || !ok[f.Dst] {
			t.Fatalf("flow uses ineligible node: %+v", f)
		}
		if seen[f] {
			t.Fatal("duplicate flow")
		}
		seen[f] = true
	}
}

func TestRandomFlowsPanicsWithoutNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for <2 eligible nodes")
		}
	}()
	RandomFlows(1, []int{3}, rand.New(rand.NewSource(1)))
}

func TestCBRRateAndWindow(t *testing.T) {
	s := sim.New(1)
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 100}}}
	m := radio.New(s, pts, radio.Config{})
	nodes := []*aodv.Node{
		aodv.NewNode(0, s, m, aodv.Config{}, aodv.NullAuth{}),
		aodv.NewNode(1, s, m, aodv.Config{}, aodv.NullAuth{}),
	}
	StartCBR(s, senders(nodes), []Flow{{Src: 0, Dst: 1}}, CBRConfig{
		Rate:        10,
		PacketBytes: 100,
		Start:       time.Second,
		Stop:        11 * time.Second,
	})
	s.Run(20 * time.Second)
	// 10 pkt/s over a 10s window with a random phase offset: 99–101.
	sent := nodes[0].Stats.DataSent
	if sent < 99 || sent > 101 {
		t.Fatalf("sent %d packets, want ≈100", sent)
	}
	if nodes[1].Stats.DataDelivered != sent {
		t.Fatalf("delivered %d of %d on a one-hop link", nodes[1].Stats.DataDelivered, sent)
	}
	// Nothing sent before Start.
	if s.Processed() == 0 {
		t.Fatal("no events processed")
	}
}

func TestCBRMultipleFlowsDesynchronized(t *testing.T) {
	s := sim.New(2)
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 100}, {X: 50, Y: 50}}}
	m := radio.New(s, pts, radio.Config{})
	nodes := make([]*aodv.Node, 3)
	for i := range nodes {
		nodes[i] = aodv.NewNode(i, s, m, aodv.Config{}, aodv.NullAuth{})
	}
	StartCBR(s, senders(nodes), []Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}, CBRConfig{
		Rate: 4, Stop: 5 * time.Second,
	})
	s.Run(10 * time.Second)
	if nodes[0].Stats.DataSent == 0 || nodes[2].Stats.DataSent == 0 {
		t.Fatal("a flow emitted nothing")
	}
}
