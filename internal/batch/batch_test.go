package batch

import (
	"bytes"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// fakeCheck builds a Check over a set of bad indices, counting aggregate
// evaluations.
func fakeCheck(bad map[int]bool, calls *atomic.Int64) Check {
	return func(idxs []int) bool {
		calls.Add(1)
		for _, i := range idxs {
			if bad[i] {
				return false
			}
		}
		return true
	}
}

func TestRejectLocatesOffenders(t *testing.T) {
	bad := map[int]bool{3: true, 17: true, 42: true, 99: true}
	var calls atomic.Int64
	got, err := Reject(100, Options{ChunkSize: 16}, fakeCheck(bad, &calls), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 17, 42, 99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("offenders %v, want %v", got, want)
	}
}

func TestRejectAllGood(t *testing.T) {
	var calls atomic.Int64
	got, err := Reject(100, Options{ChunkSize: 16}, fakeCheck(nil, &calls), nil)
	if err != nil || got != nil {
		t.Fatalf("clean batch: got %v, %v", got, err)
	}
	// One aggregate check per chunk, no bisection.
	if calls.Load() != 7 {
		t.Fatalf("clean batch ran %d checks, want 7", calls.Load())
	}
	if got, err := Reject(0, Options{}, fakeCheck(nil, &calls), nil); err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
}

func TestRejectWorkerInvariance(t *testing.T) {
	bad := map[int]bool{0: true, 31: true, 32: true, 63: true, 64: true}
	var want []int
	for _, workers := range []int{1, 4, 8} {
		var calls atomic.Int64
		got, err := Reject(65, Options{Workers: workers, ChunkSize: 8}, fakeCheck(bad, &calls), nil)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: offenders %v, want %v", workers, got, want)
		}
	}
}

func TestRejectUsesCheckOneAtLeaves(t *testing.T) {
	// checkOne disagrees with check on index 5 — leaves must use checkOne.
	var leaves atomic.Int64
	check := func(idxs []int) bool {
		for _, i := range idxs {
			if i == 5 {
				return false
			}
		}
		return true
	}
	checkOne := func(i int) bool {
		leaves.Add(1)
		return i != 5
	}
	got, err := Reject(8, Options{ChunkSize: 8}, check, checkOne)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("offenders %v, want [5]", got)
	}
	if leaves.Load() == 0 {
		t.Fatal("bisection never reached checkOne")
	}
}

func TestRejectPanicPropagates(t *testing.T) {
	_, err := Reject(4, Options{ChunkSize: 2}, func([]int) bool { panic("boom") }, nil)
	if err == nil {
		t.Fatal("panicking check must surface an error")
	}
}

func TestErrorUnwrap(t *testing.T) {
	sentinel := errors.New("scheme: verify failed")
	err := error(&Error{Bad: []int{1, 2}, Cause: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatal("batch.Error must unwrap to its cause")
	}
	var be *Error
	if !errors.As(err, &be) || len(be.Bad) != 2 {
		t.Fatal("errors.As must recover the offender list")
	}
}

func TestWeightsDeterministicAndBounded(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 32)
	w1, err := NewWeights(bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := NewWeights(bytes.NewReader(seed))
	for i := 0; i < 100; i++ {
		a, b := w1.At(i), w2.At(i)
		if a.Cmp(b) != 0 {
			t.Fatalf("weight %d not deterministic", i)
		}
		if a.Sign() == 0 {
			t.Fatalf("weight %d is zero", i)
		}
		if a.BitLen() > WeightBits {
			t.Fatalf("weight %d has %d bits, cap %d", i, a.BitLen(), WeightBits)
		}
	}
	if w1.At(0).Cmp(w1.At(1)) == 0 {
		t.Fatal("distinct indices yielded equal weights")
	}
	// Fresh random seeds must differ.
	r1, err := NewWeights(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewWeights(nil)
	if r1.At(0).Cmp(r2.At(0)) == 0 {
		t.Fatal("independent seeds yielded equal weights")
	}
}
