// Package batch is the chunked, parallel, self-bisecting batch-check
// engine behind every batch verifier in the tree (core.BatchVerifier,
// ibs.BatchVerify, the schemes adapters). It owns the three properties the
// verifiers share, so each scheme only supplies its aggregate equation:
//
//   - Chunking: n items are partitioned into fixed-size chunks, each
//     checked as one aggregate equation (one shared multi-pairing for the
//     pairing schemes).
//   - Parallelism: chunks are fanned out over an internal/runner worker
//     pool. Chunk boundaries depend only on ChunkSize and every chunk is
//     decided independently, so the accept/reject outcome — and the exact
//     offender set — is bit-identical at any worker count.
//   - Bisection fallback: a failing chunk is split recursively until the
//     offending items are isolated, so a rejected batch reports WHICH
//     signatures failed instead of telling the caller to re-verify
//     everything one by one. Subset checks reuse the caller's per-index
//     random weights, which is sound: a valid subset satisfies its
//     aggregate equation for any weights, and an invalid one passes only
//     with the same probability the top-level check did.
package batch

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"mccls/internal/runner"
)

// DefaultChunkSize is the chunk width when Options.ChunkSize is zero. One
// chunk is one shared final exponentiation, so wider chunks amortize
// better; narrower chunks parallelize and bisect better. 64 matches the
// knee of the sigs/sec curve in BENCH_bn254.json.
const DefaultChunkSize = 64

// Options configure a batch check.
type Options struct {
	// Workers bounds the chunk worker pool (default GOMAXPROCS).
	Workers int
	// ChunkSize is the number of items per aggregate check
	// (default DefaultChunkSize).
	ChunkSize int
}

// Check reports whether the aggregate equation holds over exactly the
// items at idxs. It must be deterministic for a given index set and safe
// for concurrent use; idxs is sorted and non-empty.
type Check func(idxs []int) bool

// CheckOne reports whether the single item i verifies on its own. It is
// used at bisection leaves, where schemes usually have a cheaper path than
// a one-element aggregate equation (e.g. the cached-constant Verify).
type CheckOne func(i int) bool

// Reject partitions [0, n) into chunks, runs check on every chunk across
// the worker pool, bisects failing chunks down to individual items, and
// returns the sorted indices of rejected items (nil when all pass). The
// result is independent of Workers. A nil checkOne falls back to check on
// single-element index sets. The only error source is a panicking check,
// surfaced via the runner's panic recovery.
func Reject(n int, opts Options, check Check, checkOne CheckOne) ([]int, error) {
	if n <= 0 {
		return nil, nil
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	if checkOne == nil {
		checkOne = func(i int) bool { return check([]int{i}) }
	}
	var trials []runner.Trial[[]int]
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		idxs := make([]int, hi-lo)
		for i := range idxs {
			idxs[i] = lo + i
		}
		trials = append(trials, runner.Trial[[]int]{
			Label: fmt.Sprintf("chunk[%d:%d)", lo, hi),
			Run: func(ctx context.Context, _ *runner.Obs) ([]int, error) {
				return bisect(idxs, check, checkOne), nil
			},
		})
	}
	results, err := runner.Run(context.Background(), runner.Options{Workers: opts.Workers}, trials)
	if err != nil {
		return nil, err
	}
	var bad []int
	for _, r := range results {
		bad = append(bad, r...) // chunks are in index order, so bad stays sorted
	}
	return bad, nil
}

// bisect isolates the offending items of a failing index set.
func bisect(idxs []int, check Check, checkOne CheckOne) []int {
	if len(idxs) == 0 {
		return nil
	}
	if len(idxs) == 1 {
		if checkOne(idxs[0]) {
			return nil
		}
		return idxs
	}
	if check(idxs) {
		return nil
	}
	mid := len(idxs) / 2
	return append(bisect(idxs[:mid], check, checkOne), bisect(idxs[mid:], check, checkOne)...)
}

// Error reports the outcome of a rejected batch: the sorted indices that
// failed. It unwraps to the scheme's rejection sentinel so existing
// errors.Is checks keep working.
type Error struct {
	// Bad holds the sorted indices of the rejected items.
	Bad []int
	// Cause is the scheme's rejection sentinel (e.g. ErrVerifyFailed).
	Cause error
}

func (e *Error) Error() string {
	return fmt.Sprintf("batch: %d item(s) rejected (indices %v): %v", len(e.Bad), e.Bad, e.Cause)
}

// Unwrap returns the scheme's rejection sentinel.
func (e *Error) Unwrap() error { return e.Cause }

// Weights derives the per-item random exponents of a small-exponent batch
// test from one seed. Every weight is a uniformly random nonzero scalar of
// at most WeightBits bits, derived deterministically from (seed, index) —
// so the same seed yields the same accept/reject decision regardless of
// how the engine chunks or schedules the batch, while an adversary who
// cannot predict the seed defeats the batch equation only by cancelling a
// random 128-bit relation (probability 2^-128, the standard small-exponent
// batch-verification bound).
type Weights struct {
	seed [32]byte
}

// WeightBits is the weight length. 128 bits keeps the cheat probability at
// 2^-128 while halving the scalar-multiplication cost of full-width
// weights.
const WeightBits = 128

// NewWeights draws a weight seed from rng (nil uses crypto/rand).
func NewWeights(rng io.Reader) (*Weights, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var w Weights
	if _, err := io.ReadFull(rng, w.seed[:]); err != nil {
		return nil, fmt.Errorf("batch: weight seed: %w", err)
	}
	return &w, nil
}

// At returns the weight for index i.
func (w *Weights) At(i int) *big.Int {
	var buf [40]byte
	copy(buf[:32], w.seed[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(i))
	sum := sha256.Sum256(buf[:])
	z := new(big.Int).SetBytes(sum[:WeightBits/8])
	if z.Sign() == 0 {
		z.SetInt64(1) // zero would void the item's equation; 2^-128 event
	}
	return z
}
