// Package metrics computes the paper's four evaluation metrics from
// per-node AODV statistics:
//
//   - Packet Delivery Ratio: packets received by destinations / packets
//     sent by sources.
//   - RREQ Ratio: RREQs initiated + forwarded + retried, over data packets
//     sent as source + data packets forwarded.
//   - End-to-End Delay: mean source→destination latency of delivered
//     packets.
//   - Packet Drop Ratio: packets discarded by attack nodes / packets sent
//     by all sources.
package metrics

import (
	"fmt"
	"math"
	"time"

	"mccls/internal/aodv"
)

// Summary aggregates a scenario run.
type Summary struct {
	DataSent      uint64
	DataDelivered uint64
	DataForwarded uint64

	RREQInitiated uint64
	RREQForwarded uint64
	RREQRetried   uint64

	AttackerDrops uint64
	AuthRejected  uint64
	LinkBreaks    uint64
	NoRouteDrops  uint64

	SignFailures  uint64 // control packets dropped at the signer (RNG failure)
	Crashes       uint64 // fault-injected node crashes
	Restarts      uint64 // fault-injected node restarts
	NodeDownDrops uint64 // frames and sends discarded at crashed nodes

	DelaySum   time.Duration
	DelayCount uint64
}

// Collect sums the statistics of all nodes.
func Collect(nodes []*aodv.Node) Summary {
	var s Summary
	for _, n := range nodes {
		st := n.Stats
		s.DataSent += st.DataSent
		s.DataDelivered += st.DataDelivered
		s.DataForwarded += st.DataForwarded
		s.RREQInitiated += st.RREQInitiated
		s.RREQForwarded += st.RREQForwarded
		s.RREQRetried += st.RREQRetried
		s.AttackerDrops += st.DropByAttacker
		s.AuthRejected += st.AuthRejected
		s.LinkBreaks += st.DropLinkBreak
		s.NoRouteDrops += st.DropNoRoute
		s.SignFailures += st.SignFailures
		s.Crashes += st.Crashes
		s.Restarts += st.Restarts
		s.NodeDownDrops += st.DropNodeDown
		s.DelaySum += st.DelaySum
		s.DelayCount += st.DelayCount
	}
	return s
}

// PacketDeliveryRatio is delivered/sent in [0, 1]; 0 when nothing was sent.
func (s Summary) PacketDeliveryRatio() float64 {
	if s.DataSent == 0 {
		return 0
	}
	return float64(s.DataDelivered) / float64(s.DataSent)
}

// RREQRatio is total RREQ activity over total data transmissions, the
// paper's control-overhead metric.
func (s Summary) RREQRatio() float64 {
	denom := s.DataSent + s.DataForwarded
	if denom == 0 {
		return 0
	}
	return float64(s.RREQInitiated+s.RREQForwarded+s.RREQRetried) / float64(denom)
}

// EndToEndDelay is the mean delivery latency; 0 when nothing was delivered.
func (s Summary) EndToEndDelay() time.Duration {
	if s.DelayCount == 0 {
		return 0
	}
	return s.DelaySum / time.Duration(s.DelayCount)
}

// PacketDropRatio is the fraction of all sourced packets absorbed by
// attackers.
func (s Summary) PacketDropRatio() float64 {
	if s.DataSent == 0 {
		return 0
	}
	return float64(s.AttackerDrops) / float64(s.DataSent)
}

// String renders the four headline metrics.
func (s Summary) String() string {
	return fmt.Sprintf("PDR=%.3f RREQratio=%.3f delay=%v dropRatio=%.3f (sent=%d delivered=%d attackerDrops=%d)",
		s.PacketDeliveryRatio(), s.RREQRatio(), s.EndToEndDelay(), s.PacketDropRatio(),
		s.DataSent, s.DataDelivered, s.AttackerDrops)
}

// Average combines summaries from repeated seeds into their mean. Ratios
// are averaged via the summed counters, weighting runs by traffic volume.
// An empty slice explicitly yields the zero Summary (whose derived ratios
// are all 0, never NaN).
func Average(runs []Summary) Summary {
	var out Summary
	for _, r := range runs {
		out.DataSent += r.DataSent
		out.DataDelivered += r.DataDelivered
		out.DataForwarded += r.DataForwarded
		out.RREQInitiated += r.RREQInitiated
		out.RREQForwarded += r.RREQForwarded
		out.RREQRetried += r.RREQRetried
		out.AttackerDrops += r.AttackerDrops
		out.AuthRejected += r.AuthRejected
		out.LinkBreaks += r.LinkBreaks
		out.NoRouteDrops += r.NoRouteDrops
		out.SignFailures += r.SignFailures
		out.Crashes += r.Crashes
		out.Restarts += r.Restarts
		out.NodeDownDrops += r.NodeDownDrops
		out.DelaySum += r.DelaySum
		out.DelayCount += r.DelayCount
	}
	return out
}

// Stat is a sample statistic over the per-seed repeats of one metric.
type Stat struct {
	Mean float64
	// Stddev is the sample standard deviation (n−1 denominator); 0 when
	// fewer than two repeats exist.
	Stddev float64
	// CI95 is the half-width of the two-sided 95% confidence interval for
	// the mean (Student t); 0 when fewer than two repeats exist. Plot as
	// Mean ± CI95.
	CI95 float64
}

// NewStat computes the statistic of vals. An empty slice explicitly yields
// the zero Stat — no NaN-by-division.
func NewStat(vals []float64) Stat {
	n := len(vals)
	if n == 0 {
		return Stat{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	st := Stat{Mean: sum / float64(n)}
	if n < 2 {
		return st
	}
	var ss float64
	for _, v := range vals {
		d := v - st.Mean
		ss += d * d
	}
	st.Stddev = math.Sqrt(ss / float64(n-1))
	st.CI95 = tCritical95(n-1) * st.Stddev / math.Sqrt(float64(n))
	return st
}

// t95 holds the two-sided 95% Student-t critical values for 1–30 degrees of
// freedom; beyond that the normal approximation (1.96) is used. Sweeps
// typically repeat 3 seeds per point (df = 2, t = 4.303), where the normal
// quantile would understate the interval by more than 2×.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// Aggregate is the full per-point statistic across a sweep point's repeated
// seeds: the traffic-weighted pooled summary (what Average returns) plus
// mean/stddev/95% CI of each headline metric computed over the per-run
// values, so figures can carry error bars.
type Aggregate struct {
	// Pooled sums the counters of all runs; its derived ratios weight
	// runs by traffic volume and are what the figures plot.
	Pooled Summary
	// N is the number of runs aggregated.
	N int

	PDR       Stat // PacketDeliveryRatio per run
	RREQRatio Stat // RREQRatio per run
	DelayMs   Stat // EndToEndDelay per run, in milliseconds
	DropRatio Stat // PacketDropRatio per run
}

// NewAggregate folds the repeats of one sweep point. An empty slice
// explicitly yields the zero Aggregate (N = 0, all stats zero) rather than
// anything NaN-valued.
func NewAggregate(runs []Summary) Aggregate {
	agg := Aggregate{Pooled: Average(runs), N: len(runs)}
	if len(runs) == 0 {
		return agg
	}
	per := func(f func(Summary) float64) Stat {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = f(r)
		}
		return NewStat(vals)
	}
	agg.PDR = per(Summary.PacketDeliveryRatio)
	agg.RREQRatio = per(Summary.RREQRatio)
	agg.DelayMs = per(func(s Summary) float64 {
		return float64(s.EndToEndDelay()) / float64(time.Millisecond)
	})
	agg.DropRatio = per(Summary.PacketDropRatio)
	return agg
}
