// Package metrics computes the paper's four evaluation metrics from
// per-node AODV statistics:
//
//   - Packet Delivery Ratio: packets received by destinations / packets
//     sent by sources.
//   - RREQ Ratio: RREQs initiated + forwarded + retried, over data packets
//     sent as source + data packets forwarded.
//   - End-to-End Delay: mean source→destination latency of delivered
//     packets.
//   - Packet Drop Ratio: packets discarded by attack nodes / packets sent
//     by all sources.
package metrics

import (
	"fmt"
	"time"

	"mccls/internal/aodv"
)

// Summary aggregates a scenario run.
type Summary struct {
	DataSent      uint64
	DataDelivered uint64
	DataForwarded uint64

	RREQInitiated uint64
	RREQForwarded uint64
	RREQRetried   uint64

	AttackerDrops uint64
	AuthRejected  uint64
	LinkBreaks    uint64
	NoRouteDrops  uint64

	DelaySum   time.Duration
	DelayCount uint64
}

// Collect sums the statistics of all nodes.
func Collect(nodes []*aodv.Node) Summary {
	var s Summary
	for _, n := range nodes {
		st := n.Stats
		s.DataSent += st.DataSent
		s.DataDelivered += st.DataDelivered
		s.DataForwarded += st.DataForwarded
		s.RREQInitiated += st.RREQInitiated
		s.RREQForwarded += st.RREQForwarded
		s.RREQRetried += st.RREQRetried
		s.AttackerDrops += st.DropByAttacker
		s.AuthRejected += st.AuthRejected
		s.LinkBreaks += st.DropLinkBreak
		s.NoRouteDrops += st.DropNoRoute
		s.DelaySum += st.DelaySum
		s.DelayCount += st.DelayCount
	}
	return s
}

// PacketDeliveryRatio is delivered/sent in [0, 1]; 0 when nothing was sent.
func (s Summary) PacketDeliveryRatio() float64 {
	if s.DataSent == 0 {
		return 0
	}
	return float64(s.DataDelivered) / float64(s.DataSent)
}

// RREQRatio is total RREQ activity over total data transmissions, the
// paper's control-overhead metric.
func (s Summary) RREQRatio() float64 {
	denom := s.DataSent + s.DataForwarded
	if denom == 0 {
		return 0
	}
	return float64(s.RREQInitiated+s.RREQForwarded+s.RREQRetried) / float64(denom)
}

// EndToEndDelay is the mean delivery latency; 0 when nothing was delivered.
func (s Summary) EndToEndDelay() time.Duration {
	if s.DelayCount == 0 {
		return 0
	}
	return s.DelaySum / time.Duration(s.DelayCount)
}

// PacketDropRatio is the fraction of all sourced packets absorbed by
// attackers.
func (s Summary) PacketDropRatio() float64 {
	if s.DataSent == 0 {
		return 0
	}
	return float64(s.AttackerDrops) / float64(s.DataSent)
}

// String renders the four headline metrics.
func (s Summary) String() string {
	return fmt.Sprintf("PDR=%.3f RREQratio=%.3f delay=%v dropRatio=%.3f (sent=%d delivered=%d attackerDrops=%d)",
		s.PacketDeliveryRatio(), s.RREQRatio(), s.EndToEndDelay(), s.PacketDropRatio(),
		s.DataSent, s.DataDelivered, s.AttackerDrops)
}

// Average combines summaries from repeated seeds into their mean. Ratios
// are averaged via the summed counters, weighting runs by traffic volume.
func Average(runs []Summary) Summary {
	var out Summary
	for _, r := range runs {
		out.DataSent += r.DataSent
		out.DataDelivered += r.DataDelivered
		out.DataForwarded += r.DataForwarded
		out.RREQInitiated += r.RREQInitiated
		out.RREQForwarded += r.RREQForwarded
		out.RREQRetried += r.RREQRetried
		out.AttackerDrops += r.AttackerDrops
		out.AuthRejected += r.AuthRejected
		out.LinkBreaks += r.LinkBreaks
		out.NoRouteDrops += r.NoRouteDrops
		out.DelaySum += r.DelaySum
		out.DelayCount += r.DelayCount
	}
	return out
}
