package metrics

import (
	"strings"
	"testing"
	"time"

	"mccls/internal/aodv"
)

func TestCollectSumsNodes(t *testing.T) {
	a := &aodv.Node{}
	a.Stats.DataSent = 10
	a.Stats.DataForwarded = 4
	a.Stats.RREQInitiated = 2
	b := &aodv.Node{}
	b.Stats.DataDelivered = 7
	b.Stats.RREQForwarded = 3
	b.Stats.DropByAttacker = 1
	b.Stats.DelaySum = 700 * time.Millisecond
	b.Stats.DelayCount = 7

	s := Collect([]*aodv.Node{a, b})
	if s.DataSent != 10 || s.DataDelivered != 7 || s.DataForwarded != 4 {
		t.Fatalf("bad sums: %+v", s)
	}
	if got := s.PacketDeliveryRatio(); got != 0.7 {
		t.Fatalf("PDR = %v, want 0.7", got)
	}
	// RREQ ratio = (2 + 3 + 0) / (10 + 4)
	if got := s.RREQRatio(); got < 0.357 || got > 0.358 {
		t.Fatalf("RREQRatio = %v", got)
	}
	if got := s.EndToEndDelay(); got != 100*time.Millisecond {
		t.Fatalf("delay = %v", got)
	}
	if got := s.PacketDropRatio(); got != 0.1 {
		t.Fatalf("drop ratio = %v", got)
	}
}

func TestZeroTrafficRatios(t *testing.T) {
	var s Summary
	if s.PacketDeliveryRatio() != 0 || s.RREQRatio() != 0 ||
		s.EndToEndDelay() != 0 || s.PacketDropRatio() != 0 {
		t.Fatal("zero traffic must yield zero ratios, not NaN")
	}
}

func TestAverageWeightsByTraffic(t *testing.T) {
	r1 := Summary{DataSent: 100, DataDelivered: 100}
	r2 := Summary{DataSent: 300, DataDelivered: 0}
	avg := Average([]Summary{r1, r2})
	if got := avg.PacketDeliveryRatio(); got != 0.25 {
		t.Fatalf("traffic-weighted PDR = %v, want 0.25", got)
	}
}

func TestStringIncludesHeadlineMetrics(t *testing.T) {
	s := Summary{DataSent: 10, DataDelivered: 5}
	out := s.String()
	for _, frag := range []string{"PDR=0.500", "sent=10", "delivered=5"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary string missing %q: %s", frag, out)
		}
	}
}
