package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"mccls/internal/aodv"
)

func TestCollectSumsNodes(t *testing.T) {
	a := &aodv.Node{}
	a.Stats.DataSent = 10
	a.Stats.DataForwarded = 4
	a.Stats.RREQInitiated = 2
	b := &aodv.Node{}
	b.Stats.DataDelivered = 7
	b.Stats.RREQForwarded = 3
	b.Stats.DropByAttacker = 1
	b.Stats.DelaySum = 700 * time.Millisecond
	b.Stats.DelayCount = 7

	s := Collect([]*aodv.Node{a, b})
	if s.DataSent != 10 || s.DataDelivered != 7 || s.DataForwarded != 4 {
		t.Fatalf("bad sums: %+v", s)
	}
	if got := s.PacketDeliveryRatio(); got != 0.7 {
		t.Fatalf("PDR = %v, want 0.7", got)
	}
	// RREQ ratio = (2 + 3 + 0) / (10 + 4)
	if got := s.RREQRatio(); got < 0.357 || got > 0.358 {
		t.Fatalf("RREQRatio = %v", got)
	}
	if got := s.EndToEndDelay(); got != 100*time.Millisecond {
		t.Fatalf("delay = %v", got)
	}
	if got := s.PacketDropRatio(); got != 0.1 {
		t.Fatalf("drop ratio = %v", got)
	}
}

func TestZeroTrafficRatios(t *testing.T) {
	var s Summary
	if s.PacketDeliveryRatio() != 0 || s.RREQRatio() != 0 ||
		s.EndToEndDelay() != 0 || s.PacketDropRatio() != 0 {
		t.Fatal("zero traffic must yield zero ratios, not NaN")
	}
}

func TestAverageWeightsByTraffic(t *testing.T) {
	r1 := Summary{DataSent: 100, DataDelivered: 100}
	r2 := Summary{DataSent: 300, DataDelivered: 0}
	avg := Average([]Summary{r1, r2})
	if got := avg.PacketDeliveryRatio(); got != 0.25 {
		t.Fatalf("traffic-weighted PDR = %v, want 0.25", got)
	}
}

func TestAverageEmptyIsZeroNotNaN(t *testing.T) {
	avg := Average(nil)
	if avg != (Summary{}) {
		t.Fatalf("Average(nil) = %+v, want zero Summary", avg)
	}
	for name, v := range map[string]float64{
		"PDR":  avg.PacketDeliveryRatio(),
		"RREQ": avg.RREQRatio(),
		"drop": avg.PacketDropRatio(),
	} {
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("%s of empty average = %v, want 0", name, v)
		}
	}
}

func TestNewStat(t *testing.T) {
	if st := NewStat(nil); st != (Stat{}) {
		t.Fatalf("empty NewStat = %+v, want zero", st)
	}
	if st := NewStat([]float64{3}); st.Mean != 3 || st.Stddev != 0 || st.CI95 != 0 {
		t.Fatalf("single-sample stat = %+v", st)
	}
	// vals 1,2,3: mean 2, sample stddev 1, CI95 = t(df=2)·1/√3 = 4.303/√3.
	st := NewStat([]float64{1, 2, 3})
	if st.Mean != 2 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if math.Abs(st.Stddev-1) > 1e-12 {
		t.Fatalf("stddev = %v, want 1", st.Stddev)
	}
	want := 4.303 / math.Sqrt(3)
	if math.Abs(st.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v (Student t, df=2)", st.CI95, want)
	}
}

func TestNewAggregate(t *testing.T) {
	empty := NewAggregate(nil)
	if empty.N != 0 || empty.PDR != (Stat{}) || empty.Pooled != (Summary{}) {
		t.Fatalf("empty aggregate = %+v, want all-zero", empty)
	}

	r1 := Summary{DataSent: 100, DataDelivered: 100, DelaySum: 100 * time.Millisecond, DelayCount: 10}
	r2 := Summary{DataSent: 100, DataDelivered: 50, DelaySum: 400 * time.Millisecond, DelayCount: 20}
	agg := NewAggregate([]Summary{r1, r2})
	if agg.N != 2 {
		t.Fatalf("N = %d", agg.N)
	}
	// Pooled keeps Average's traffic-weighted semantics...
	if got := agg.Pooled.PacketDeliveryRatio(); got != 0.75 {
		t.Fatalf("pooled PDR = %v, want 0.75", got)
	}
	// ...while the per-run stats treat each seed equally: PDRs 1.0 and 0.5.
	if agg.PDR.Mean != 0.75 {
		t.Fatalf("PDR mean = %v, want 0.75", agg.PDR.Mean)
	}
	wantSd := math.Sqrt(2) * 0.25 // sample stddev of {1.0, 0.5}
	if math.Abs(agg.PDR.Stddev-wantSd) > 1e-12 {
		t.Fatalf("PDR stddev = %v, want %v", agg.PDR.Stddev, wantSd)
	}
	if agg.PDR.CI95 <= 0 {
		t.Fatal("PDR CI95 missing")
	}
	// Per-run delays are 10 ms and 20 ms.
	if agg.DelayMs.Mean != 15 {
		t.Fatalf("delay mean = %v ms, want 15", agg.DelayMs.Mean)
	}
	// Identical repeats collapse the interval to zero.
	same := NewAggregate([]Summary{r1, r1, r1})
	if same.PDR.Stddev != 0 || same.PDR.CI95 != 0 {
		t.Fatalf("identical repeats must have zero spread: %+v", same.PDR)
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 30: 2.042, 31: 1.96, 1000: 1.96}
	for df, want := range cases {
		if got := tCritical95(df); got != want {
			t.Fatalf("t(df=%d) = %v, want %v", df, got, want)
		}
	}
	if tCritical95(0) != 0 {
		t.Fatal("df=0 must yield 0")
	}
}

func TestStringIncludesHeadlineMetrics(t *testing.T) {
	s := Summary{DataSent: 10, DataDelivered: 5}
	out := s.String()
	for _, frag := range []string{"PDR=0.500", "sent=10", "delivered=5"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary string missing %q: %s", frag, out)
		}
	}
}
