package kgcd

import (
	"bytes"
	"context"
	"math/big"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
	"mccls/internal/threshold"
)

func testMaster(seed byte) *big.Int {
	return bn254.HashToScalar("kgcd/test", []byte{seed})
}

// startTestDeployment runs t-of-n signer replicas on httptest servers plus
// a combiner, returning the combiner handler's test server and the signer
// servers (so tests can kill replicas selectively).
func startTestDeployment(t *testing.T, tt, n int, master *big.Int, cfg Config) (*httptest.Server, []*httptest.Server, *core.KGC) {
	t.Helper()
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := threshold.Split(master, tt, n, mrand.New(mrand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var signerSrvs []*httptest.Server
	var urls []string
	for _, sh := range shares {
		signer, err := threshold.NewSigner(kgc.Params(), sh)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewSignerHandler(signer, 0))
		t.Cleanup(ts.Close)
		signerSrvs = append(signerSrvs, ts)
		urls = append(urls, ts.URL)
	}
	cfg.Params = kgc.Params()
	cfg.T = tt
	cfg.SignerURLs = urls
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comb := httptest.NewServer(srv.Handler())
	t.Cleanup(comb.Close)
	return comb, signerSrvs, kgc
}

func TestEnrollEndToEnd(t *testing.T) {
	comb, _, kgc := startTestDeployment(t, 2, 3, testMaster(1), Config{})
	c := NewClient(comb.URL, nil)
	ctx := context.Background()

	params, err := c.Params(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(params.Marshal(), kgc.Params().Marshal()) {
		t.Fatal("served parameters differ from KGC's")
	}

	const id = "pump-station-9"
	res, err := c.Enroll(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first enrollment reported cached")
	}
	// Threshold-issued key is byte-identical to single-master issuance.
	want := kgc.ExtractPartialPrivateKey(id)
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("threshold-issued partial key differs from single master")
	}

	// Second enrollment is a cache hit with the same key.
	res2, err := c.Enroll(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("second enrollment missed the cache")
	}
	if !bytes.Equal(res2.PartialKey.Marshal(), res.PartialKey.Marshal()) {
		t.Fatal("cached key differs")
	}

	// The enrolled key completes a working certificateless keypair.
	sk, err := core.GenerateKeyPair(params, res.PartialKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("flow=120L/s")
	sig, err := core.Sign(params, sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.NewVerifier(params).Verify(sk.Public(), msg, sig); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz at full strength: %v", err)
	}
}

func TestEnrollSurvivesReplicaLoss(t *testing.T) {
	comb, signers, kgc := startTestDeployment(t, 2, 3, testMaster(2), Config{})
	c := NewClient(comb.URL, nil)
	ctx := context.Background()

	// n−t replicas down: still serving.
	signers[0].Close()
	res, err := c.Enroll(ctx, "node-a")
	if err != nil {
		t.Fatalf("enroll with 2/3 replicas: %v", err)
	}
	want := kgc.ExtractPartialPrivateKey("node-a")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("degraded-mode key differs from single master")
	}

	// Below quorum: enrollment fails, healthz degrades, but cached
	// identities are still served.
	signers[1].Close()
	if _, err := c.Enroll(ctx, "node-b"); err == nil {
		t.Fatal("enroll below quorum: want error")
	}
	if _, err := c.Healthz(ctx); err == nil {
		t.Fatal("healthz below quorum: want error")
	}
	res2, err := c.Enroll(ctx, "node-a")
	if err != nil {
		t.Fatalf("cached enroll below quorum: %v", err)
	}
	if !res2.Cached {
		t.Error("expected cache hit below quorum")
	}
}

func TestEnrollRejectsBadRequests(t *testing.T) {
	comb, _, _ := startTestDeployment(t, 1, 1, testMaster(3), Config{})
	post := func(body string) int {
		resp, err := http.Post(comb.URL+"/enroll", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"id":""}`); got != http.StatusBadRequest {
		t.Errorf("empty id: got %d", got)
	}
	if got := post(`{"id":"` + strings.Repeat("x", DefaultMaxIDLen+1) + `"}`); got != http.StatusBadRequest {
		t.Errorf("oversized id: got %d", got)
	}
	if got := post(`{`); got != http.StatusBadRequest {
		t.Errorf("malformed JSON: got %d", got)
	}
	if got := post(`{"id":"a","extra":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field: got %d", got)
	}
	if got := post(`{"id":"` + strings.Repeat("y", maxBodyBytes) + `"}`); got != http.StatusBadRequest {
		t.Errorf("oversized body: got %d", got)
	}
}

func TestEnrollRateLimited(t *testing.T) {
	comb, _, _ := startTestDeployment(t, 1, 1, testMaster(4), Config{
		RatePerSec: 0.001, RateBurst: 2,
	})
	c := NewClient(comb.URL, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Enroll(ctx, "greedy"); err != nil {
			t.Fatalf("enroll %d within burst: %v", i, err)
		}
	}
	_, err := c.Enroll(ctx, "greedy")
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("third enroll: want 429, got %v", err)
	}
	// Other identities are unaffected.
	if _, err := c.Enroll(ctx, "patient"); err != nil {
		t.Fatalf("independent identity rate limited: %v", err)
	}
}

func TestMetricsExposition(t *testing.T) {
	comb, _, _ := startTestDeployment(t, 2, 2, testMaster(5), Config{})
	c := NewClient(comb.URL, nil)
	ctx := context.Background()
	if _, err := c.Enroll(ctx, "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enroll(ctx, "m1"); err != nil {
		t.Fatal(err)
	}
	text, err := c.RawMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kgcd_enroll_total 2",
		"kgcd_cache_hits_total 1",
		"kgcd_cache_misses_total 1",
		"kgcd_share_requests_total 2",
		"kgcd_enroll_latency_seconds_count 2",
		`kgcd_enroll_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestStartCluster(t *testing.T) {
	cl, err := StartCluster(ClusterConfig{
		T: 2, N: 3,
		Master: testMaster(6),
		Rng:    mrand.New(mrand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.SignerURLs) != 3 {
		t.Fatalf("got %d signer URLs", len(cl.SignerURLs))
	}
	c := NewClient(cl.URL, nil)
	res, err := c.Enroll(context.Background(), "cluster-node")
	if err != nil {
		t.Fatal(err)
	}
	kgc, err := core.NewKGCFromMaster(testMaster(6))
	if err != nil {
		t.Fatal(err)
	}
	want := kgc.ExtractPartialPrivateKey("cluster-node")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("cluster-issued key differs from single master")
	}
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	kgc, err := core.NewKGCFromMaster(testMaster(8))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{},                     // no params
		{Params: kgc.Params()}, // no signers
		{Params: kgc.Params(), T: 2, SignerURLs: []string{"http://a"}}, // t > n
		{Params: kgc.Params(), T: 0, SignerURLs: []string{"http://a"}}, // t < 1
	}
	for i, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestRateLimiterRefill(t *testing.T) {
	rl := newRateLimiter(2, 2, 16) // 2/s, burst 2
	now := time.Unix(0, 0)
	rl.now = func() time.Time { return now }
	if !rl.Allow("x") || !rl.Allow("x") {
		t.Fatal("burst denied")
	}
	if rl.Allow("x") {
		t.Fatal("over-burst allowed")
	}
	now = now.Add(500 * time.Millisecond) // refills one token
	if !rl.Allow("x") {
		t.Fatal("refilled token denied")
	}
	if rl.Allow("x") {
		t.Fatal("second token allowed after half-second")
	}
	// Disabled limiter always allows.
	open := newRateLimiter(-1, 1, 1)
	for i := 0; i < 100; i++ {
		if !open.Allow("y") {
			t.Fatal("disabled limiter denied")
		}
	}
}
