package kgcd

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"mccls/internal/threshold"
)

// maxBodyBytes caps request bodies on every JSON endpoint; an enrollment
// request is an identity string, so 4 KiB is generous.
const maxBodyBytes = 4 << 10

// shareRequest / shareResponse are the signer replica's wire format. The
// share is hex of KeyShare.Marshal (index byte ‖ 128-byte G2 point).
type shareRequest struct {
	ID string `json:"id"`
}

type shareResponse struct {
	Index uint8  `json:"index"`
	Epoch uint32 `json:"epoch"`
	Share string `json:"share"`
}

// refreshRequest / refreshResponse carry one proactive-refresh delta
// (threshold.Delta.Marshal, hex) and the epoch the replica ended up at.
type refreshRequest struct {
	Delta string `json:"delta"`
}

type refreshResponse struct {
	Epoch uint32 `json:"epoch"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewSignerHandler serves one share-holder replica:
//
//	POST /share   {"id": ...} → {"index": j, "epoch": e, "share": hex(D_j)}
//	POST /refresh {"delta": hex(δ_j)} → {"epoch": e}
//	GET  /healthz            → {"status": "ok", "index": j, "epoch": e}
//
// Replicas hold only their Shamir share; compromising fewer than t of them
// reveals nothing about the master secret and forges nothing. /refresh is
// idempotent against coordinator retries (threshold.Signer.ApplyRefresh);
// issuance keeps running while a refresh lands — a share is swapped
// atomically and every issued key share is epoch-stamped. maxIDLen bounds
// identity length (≤ 0 selects DefaultMaxIDLen).
func NewSignerHandler(signer *threshold.Signer, maxIDLen int) http.Handler {
	if maxIDLen <= 0 {
		maxIDLen = DefaultMaxIDLen
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /share", func(w http.ResponseWriter, r *http.Request) {
		var req shareRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.ID) == 0 || len(req.ID) > maxIDLen {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("identity length must be in [1, %d]", maxIDLen))
			return
		}
		ks := signer.Issue(req.ID)
		writeJSON(w, http.StatusOK, shareResponse{Index: ks.Index, Epoch: ks.Epoch, Share: hex.EncodeToString(ks.Marshal())})
	})
	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		var req refreshRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		raw, err := hex.DecodeString(req.Delta)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("delta hex: %v", err))
			return
		}
		delta, err := threshold.UnmarshalDelta(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		epoch, err := signer.ApplyRefresh(delta)
		if err != nil {
			// Wrong index or an epoch gap: the coordinator's view of this
			// replica is stale, not a malformed request.
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, refreshResponse{Epoch: epoch})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "index": signer.Index(), "epoch": signer.Epoch()})
	})
	return mux
}

// shareIssuer is the combiner's view of one signer replica. httpIssuer is
// the production implementation; tests may substitute in-process fakes.
type shareIssuer interface {
	// Issue requests this replica's key share for an identity.
	Issue(ctx context.Context, id string) (*threshold.KeyShare, error)
	// Name identifies the replica in errors and health output.
	Name() string
	// Healthy probes the replica's /healthz.
	Healthy(ctx context.Context) error
}

// httpIssuer talks to a signer replica over HTTP.
type httpIssuer struct {
	base string // e.g. http://127.0.0.1:7611
	hc   *http.Client
}

func newHTTPIssuer(base string, hc *http.Client) *httpIssuer {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &httpIssuer{base: base, hc: hc}
}

func (h *httpIssuer) Name() string { return h.base }

func (h *httpIssuer) Issue(ctx context.Context, id string) (*threshold.KeyShare, error) {
	body, err := json.Marshal(shareRequest{ID: id})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/share", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("signer %s: %s", h.base, readErrorBody(resp))
	}
	var sr shareResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&sr); err != nil {
		return nil, fmt.Errorf("signer %s: decode: %w", h.base, err)
	}
	raw, err := hex.DecodeString(sr.Share)
	if err != nil {
		return nil, fmt.Errorf("signer %s: share hex: %w", h.base, err)
	}
	ks, err := threshold.UnmarshalKeyShare(id, raw)
	if err != nil {
		return nil, fmt.Errorf("signer %s: %w", h.base, err)
	}
	if ks.Index != sr.Index {
		return nil, fmt.Errorf("signer %s: index mismatch %d vs %d", h.base, ks.Index, sr.Index)
	}
	if ks.Epoch != sr.Epoch {
		return nil, fmt.Errorf("signer %s: epoch mismatch %d vs %d", h.base, ks.Epoch, sr.Epoch)
	}
	return ks, nil
}

// Refresh posts one proactive-refresh delta to the replica and returns the
// epoch it reports afterwards.
func (h *httpIssuer) Refresh(ctx context.Context, delta *threshold.Delta) (uint32, error) {
	body, err := json.Marshal(refreshRequest{Delta: hex.EncodeToString(delta.Marshal())})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/refresh", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("signer %s: refresh %s", h.base, readErrorBody(resp))
	}
	var rr refreshResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&rr); err != nil {
		return 0, fmt.Errorf("signer %s: decode refresh: %w", h.base, err)
	}
	return rr.Epoch, nil
}

func (h *httpIssuer) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("signer %s: healthz status %d", h.base, resp.StatusCode)
	}
	return nil
}
