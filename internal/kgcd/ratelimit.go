package kgcd

import (
	"sync"
	"time"

	"mccls/internal/lru"
)

// rateLimiter is a per-identity token bucket: each identity may enroll in
// bursts of up to burst requests and sustain rate requests/second after
// that. Real fleets re-enroll at reboot rate, not line rate; anything
// hotter is a stuck client or an attacker grinding the issuance path, and
// gets 429 instead of t G2 scalar multiplications. Buckets live in an LRU
// so an attacker cycling identities bounds memory, not correctness: an
// evicted identity starts over with a full bucket, which only ever errs
// permissive.
type rateLimiter struct {
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time // injectable clock for tests
	buckets *lru.Cache[*tokenBucket]
}

type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newRateLimiter creates a limiter; rate ≤ 0 disables limiting.
func newRateLimiter(rate float64, burst int, maxIdentities int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: lru.New[*tokenBucket](maxIdentities),
	}
}

// Allow reports whether identity id may proceed, consuming one token.
func (rl *rateLimiter) Allow(id string) bool {
	if rl.rate <= 0 {
		return true
	}
	now := rl.now()
	b := rl.buckets.GetOrCreate(id, func() *tokenBucket {
		return &tokenBucket{tokens: rl.burst, last: now}
	})
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
