package kgcd

import (
	"container/list"
	"sync"
)

// lru is a thread-safe fixed-capacity least-recently-used map. It backs
// both the partial-key cache (identity → marshalled key: re-enrollment
// after a reboot is the common case in a mobile fleet, and issuance costs
// t G2 scalar multiplications) and the rate limiter's per-identity token
// buckets (which would otherwise grow without bound under an identity-
// churning attacker).
type lru[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	if max < 1 {
		max = 1
	}
	return &lru[V]{max: max, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// Get returns the value for key, marking it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key, evicting the least recently
// used entry when over capacity.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// GetOrCreate returns the value for key, inserting newV() under the lock
// if absent — the atomic fetch-or-insert the rate limiter needs so two
// concurrent requests for a fresh identity share one token bucket.
func (c *lru[V]) GetOrCreate(key string, newV func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val
	}
	v := newV()
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
	return v
}

// Len reports the number of cached entries.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
