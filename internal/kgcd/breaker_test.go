package kgcd

import (
	"testing"
	"time"
)

func newTestBreaker(cfg BreakerConfig) (*breaker, *time.Time) {
	b := newBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerLifecycle(t *testing.T) {
	b, now := newTestBreaker(BreakerConfig{
		Window: 4, MinSamples: 4, FailureRate: 0.5,
		Cooldown: time.Second, MaxCooldown: 4 * time.Second,
	})
	if b.State() != BreakerClosed || !b.Allow() || !b.Admissible() {
		t.Fatal("fresh breaker not closed/allowing")
	}

	// Below MinSamples nothing trips, even at 100% failure.
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	// Fourth failure crosses the rate with a full window: open.
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state %v opens %d, want open/1", b.State(), b.Opens())
	}
	if b.Allow() || b.Admissible() {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}
	if rem := b.RemainingCooldown(); rem != time.Second {
		t.Fatalf("remaining cooldown %v, want 1s", rem)
	}

	// Cooldown elapses: one probe wins the half-open slot, others refused.
	*now = now.Add(time.Second)
	if !b.Admissible() {
		t.Fatal("cooled-down breaker not admissible")
	}
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted in half-open")
	}

	// Failed probe: reopen with doubled cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state %v opens %d after failed probe", b.State(), b.Opens())
	}
	if rem := b.RemainingCooldown(); rem != 2*time.Second {
		t.Fatalf("cooldown after failed probe %v, want doubled 2s", rem)
	}
	*now = now.Add(time.Second)
	if b.Allow() {
		t.Fatal("admitted before doubled cooldown elapsed")
	}

	// Successful probe after the doubled cooldown: closed, cooldown reset.
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after doubled cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	// The window was reset: four fresh failures are needed to trip again,
	// and the cooldown is back to the base.
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("stale window outcomes survived the reset")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not re-trip on a fresh full window")
	}
	if rem := b.RemainingCooldown(); rem != time.Second {
		t.Fatalf("cooldown %v after reset, want base 1s", rem)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		Window: 4, MinSamples: 4, FailureRate: 0.75,
		Cooldown: time.Second,
	})
	// Alternating outcomes: 50% failure never reaches the 75% trip rate.
	for i := 0; i < 40; i++ {
		b.Record(i%2 == 0)
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped below the configured failure rate")
	}
	// Three failures in the 4-window stay under 75%... exactly 75% trips.
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at the threshold rate")
	}
}

func TestBreakerIgnoresLateResults(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		Window: 2, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second,
	})
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not trip")
	}
	// Stragglers from before the trip neither close nor extend.
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatal("late results moved an open breaker")
	}
}

func TestLatencyRingPercentile(t *testing.T) {
	var r latencyRing
	if r.Percentile(0.95) != 0 {
		t.Fatal("empty ring: want 0")
	}
	for i := 1; i <= 100; i++ { // wraps the 64-slot ring; last 64 survive
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := r.Percentile(0.5)
	if p50 < 37*time.Millisecond || p50 > 100*time.Millisecond {
		t.Fatalf("p50 %v outside retained window", p50)
	}
	if p95 := r.Percentile(0.95); p95 < p50 {
		t.Fatalf("p95 %v below p50 %v", p95, p50)
	}
	if r.Percentile(1) != 100*time.Millisecond {
		t.Fatalf("max %v, want 100ms", r.Percentile(1))
	}
}
