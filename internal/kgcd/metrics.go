package kgcd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Value() uint64 { return c.v.Load() }

// latencyBuckets are the histogram upper bounds in seconds. A cache hit is
// sub-millisecond; a cold 2-of-3 issuance is a few milliseconds of G2
// scalar multiplication; anything beyond 1 s is a timeout in the making.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// histogram is a fixed-bucket latency histogram in the Prometheus data
// model: cumulative bucket counts, a running sum and a total count.
type histogram struct {
	counts   [len(latencyBuckets) + 1]atomic.Uint64 // +1 for +Inf
	sumNanos atomic.Uint64
	count    atomic.Uint64
}

func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// latencyRing keeps the most recent request latencies for one replica, for
// percentile estimation (the adaptive hedge delay). 64 samples is enough to
// read a p95 and cheap enough to sort on every estimate.
type latencyRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // samples held, ≤ len(buf)
	pos int // next write position
}

func (r *latencyRing) Observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.pos] = d
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Percentile returns the p-quantile (p in [0,1]) of the held samples, zero
// when no samples have been observed yet.
func (r *latencyRing) Percentile(p float64) time.Duration {
	r.mu.Lock()
	n := r.n
	sorted := make([]time.Duration, n)
	copy(sorted, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(n-1))
	return sorted[i]
}

// metrics are the service's observability surface, rendered as Prometheus
// text exposition on /metrics.
type metrics struct {
	enrollTotal    counter // /enroll requests accepted for processing
	enrollErrors   counter // /enroll requests that failed (quorum, timeout)
	badRequests    counter // malformed /enroll payloads
	rateLimited    counter // /enroll requests rejected with 429
	cacheHits      counter
	cacheMisses    counter
	shareRequests  counter // issuance RPCs sent to signer replicas
	shareFailures  counter // issuance RPCs that errored
	paramsTotal    counter // /params requests
	hedgedRequests counter // spare share RPCs launched for stragglers
	degraded       counter // cache misses refused fast with 503 + Retry-After
	epochConflicts counter // gathers that saw shares from more than one epoch
	enrollLatency  histogram
}

// writePrometheus renders the metrics in Prometheus text exposition format.
func (m *metrics) writePrometheus(w io.Writer) {
	writeCounter := func(name, help string, c *counter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
	}
	writeCounter("kgcd_enroll_total", "Enrollment requests accepted for processing.", &m.enrollTotal)
	writeCounter("kgcd_enroll_errors_total", "Enrollment requests that failed after acceptance.", &m.enrollErrors)
	writeCounter("kgcd_bad_requests_total", "Malformed enrollment requests rejected.", &m.badRequests)
	writeCounter("kgcd_rate_limited_total", "Enrollment requests rejected by the per-identity rate limit.", &m.rateLimited)
	writeCounter("kgcd_cache_hits_total", "Enrollments served from the partial-key cache.", &m.cacheHits)
	writeCounter("kgcd_cache_misses_total", "Enrollments that required signer fan-out.", &m.cacheMisses)
	writeCounter("kgcd_share_requests_total", "Key-share RPCs sent to signer replicas.", &m.shareRequests)
	writeCounter("kgcd_share_failures_total", "Key-share RPCs that errored or timed out.", &m.shareFailures)
	writeCounter("kgcd_params_total", "Parameter requests served.", &m.paramsTotal)
	writeCounter("kgcd_hedged_requests_total", "Spare share RPCs launched when the quorum straggled.", &m.hedgedRequests)
	writeCounter("kgcd_degraded_total", "Cache misses refused fast with 503 + Retry-After below quorum.", &m.degraded)
	writeCounter("kgcd_epoch_conflicts_total", "Share gathers that observed more than one refresh epoch.", &m.epochConflicts)

	const name = "kgcd_enroll_latency_seconds"
	fmt.Fprintf(w, "# HELP %s End-to-end enrollment handler latency.\n# TYPE %s histogram\n", name, name)
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.enrollLatency.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(le), cum)
	}
	cum += m.enrollLatency.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(m.enrollLatency.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, m.enrollLatency.count.Load())
}

func formatLE(le float64) string { return fmt.Sprintf("%g", le) }
