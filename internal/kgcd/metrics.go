package kgcd

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Value() uint64 { return c.v.Load() }

// latencyBuckets are the histogram upper bounds in seconds. A cache hit is
// sub-millisecond; a cold 2-of-3 issuance is a few milliseconds of G2
// scalar multiplication; anything beyond 1 s is a timeout in the making.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// histogram is a fixed-bucket latency histogram in the Prometheus data
// model: cumulative bucket counts, a running sum and a total count.
type histogram struct {
	counts   [len(latencyBuckets) + 1]atomic.Uint64 // +1 for +Inf
	sumNanos atomic.Uint64
	count    atomic.Uint64
}

func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// metrics are the service's observability surface, rendered as Prometheus
// text exposition on /metrics.
type metrics struct {
	enrollTotal   counter // /enroll requests accepted for processing
	enrollErrors  counter // /enroll requests that failed (quorum, timeout)
	badRequests   counter // malformed /enroll payloads
	rateLimited   counter // /enroll requests rejected with 429
	cacheHits     counter
	cacheMisses   counter
	shareRequests counter // issuance RPCs sent to signer replicas
	shareFailures counter // issuance RPCs that errored
	paramsTotal   counter // /params requests
	enrollLatency histogram
}

// writePrometheus renders the metrics in Prometheus text exposition format.
func (m *metrics) writePrometheus(w io.Writer) {
	writeCounter := func(name, help string, c *counter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
	}
	writeCounter("kgcd_enroll_total", "Enrollment requests accepted for processing.", &m.enrollTotal)
	writeCounter("kgcd_enroll_errors_total", "Enrollment requests that failed after acceptance.", &m.enrollErrors)
	writeCounter("kgcd_bad_requests_total", "Malformed enrollment requests rejected.", &m.badRequests)
	writeCounter("kgcd_rate_limited_total", "Enrollment requests rejected by the per-identity rate limit.", &m.rateLimited)
	writeCounter("kgcd_cache_hits_total", "Enrollments served from the partial-key cache.", &m.cacheHits)
	writeCounter("kgcd_cache_misses_total", "Enrollments that required signer fan-out.", &m.cacheMisses)
	writeCounter("kgcd_share_requests_total", "Key-share RPCs sent to signer replicas.", &m.shareRequests)
	writeCounter("kgcd_share_failures_total", "Key-share RPCs that errored or timed out.", &m.shareFailures)
	writeCounter("kgcd_params_total", "Parameter requests served.", &m.paramsTotal)

	const name = "kgcd_enroll_latency_seconds"
	fmt.Fprintf(w, "# HELP %s End-to-end enrollment handler latency.\n# TYPE %s histogram\n", name, name)
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.enrollLatency.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(le), cum)
	}
	cum += m.enrollLatency.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(m.enrollLatency.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, m.enrollLatency.count.Load())
}

func formatLE(le float64) string { return fmt.Sprintf("%g", le) }
