package kgcd

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows, outcomes are sampled.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is admitted; its outcome
	// decides between closing and re-opening with a longer cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker; zero values select the defaults.
type BreakerConfig struct {
	// Window is the sliding outcome window (most recent requests sampled).
	Window int
	// MinSamples is how many outcomes the window must hold before the
	// failure rate is trusted enough to trip.
	MinSamples int
	// FailureRate in (0, 1]: the windowed failure fraction that trips the
	// breaker once MinSamples outcomes are recorded.
	FailureRate float64
	// Cooldown is the initial open interval; each failed half-open probe
	// doubles it, capped at MaxCooldown.
	Cooldown    time.Duration
	MaxCooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window == 0 {
		c.Window = 16
	}
	if c.MinSamples == 0 {
		c.MinSamples = 8
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.MaxCooldown == 0 {
		c.MaxCooldown = 30 * time.Second
	}
	return c
}

// breaker is a per-replica circuit breaker: closed → (failure rate trips) →
// open → (cooldown elapses) → half-open → one probe → closed or open again
// with a doubled cooldown. It keeps a dead replica from soaking up fan-out
// slots and request deadlines: while open, gatherShares skips the replica
// entirely and spends its budget on ones that might answer.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable for tests

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring buffer of outcomes, true = failure
	pos      int    // next write position
	filled   int    // outcomes recorded, ≤ len(window)
	openedAt time.Time
	cooldown time.Duration
	probing  bool // half-open: the single probe slot is taken
	opens    uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{
		cfg:      cfg,
		now:      time.Now,
		window:   make([]bool, cfg.Window),
		cooldown: cfg.Cooldown,
	}
}

// Allow reports whether a request may be sent. In half-open state only one
// caller wins the probe slot; everyone else is refused until the probe's
// outcome is recorded.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record feeds one request outcome back. Closed: slide the window and trip
// when the failure rate crosses the threshold. Half-open: a success closes
// the breaker and resets the window and cooldown; a failure re-opens with a
// doubled cooldown. Open: late results from before the trip are ignored.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.window[b.pos] = !ok
		b.pos = (b.pos + 1) % len(b.window)
		if b.filled < len(b.window) {
			b.filled++
		}
		if b.filled < b.cfg.MinSamples {
			return
		}
		fails := 0
		for i := 0; i < b.filled; i++ {
			if b.window[i] {
				fails++
			}
		}
		if float64(fails)/float64(b.filled) >= b.cfg.FailureRate {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.pos, b.filled = 0, 0
			b.cooldown = b.cfg.Cooldown
			return
		}
		b.cooldown = min(2*b.cooldown, b.cfg.MaxCooldown)
		b.trip()
	case BreakerOpen:
		// A straggler from before the trip; nothing to learn.
	}
}

func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
}

// State returns the breaker's current position (open flips to half-open
// lazily in Allow, so a cooled-down open breaker still reports open here).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Admissible reports whether the breaker would let a request through without
// consuming the half-open probe slot: closed, already half-open, or open
// with the cooldown elapsed. The combiner counts admissible replicas to
// decide between fanning out and degrading to 503.
func (b *breaker) Admissible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return b.now().Sub(b.openedAt) >= b.cooldown
	}
	return true
}

// RemainingCooldown is how long until an open breaker admits a probe
// (zero when not open or already cooled down). Feeds Retry-After.
func (b *breaker) RemainingCooldown() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return 0
}
