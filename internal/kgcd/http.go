package kgcd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// limitedBody is an io.Reader view of a response body capped at n bytes,
// so a misbehaving peer cannot balloon a JSON decode.
type limitedBody struct {
	r io.Reader
	n int64
}

func (l *limitedBody) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("kgcd: response body exceeds %d bytes", maxBodyBytes)
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// decodeJSON decodes a request body with a hard size cap and strict field
// checking.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// readErrorBody extracts the error string from a non-200 JSON response,
// falling back to the HTTP status.
func readErrorBody(resp *http.Response) string {
	var er errorResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&er); err == nil && er.Error != "" {
		return fmt.Sprintf("status %d: %s", resp.StatusCode, er.Error)
	}
	return fmt.Sprintf("status %d", resp.StatusCode)
}
