package kgcd

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mccls/internal/core"
)

// Client defaults; zero values in ClientConfig select these.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
	DefaultJitterFrac  = 0.25
)

// ClientConfig tunes the enrollment client's retry and breaker behavior.
type ClientConfig struct {
	// MaxAttempts bounds tries per Enroll call (first try included).
	MaxAttempts int
	// BackoffBase / BackoffCap shape the capped exponential backoff
	// between attempts: base·2^(attempt−1), never above the cap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterFrac in [0, 1] spreads each backoff uniformly up to that
	// fraction above nominal, decorrelating a rebooting fleet.
	JitterFrac float64
	// JitterSeed seeds the jitter stream, making retry timing
	// reproducible in tests and the load harness.
	JitterSeed int64
	// Breaker tunes the client-side circuit breaker guarding the combiner.
	Breaker BreakerConfig
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = DefaultJitterFrac
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// ErrCircuitOpen marks an Enroll attempt refused locally because the
// client's breaker is open: the combiner failed enough recent requests
// that sending more would only add load.
var ErrCircuitOpen = errors.New("kgcd client: circuit open")

// EnrollError is a failed enrollment attempt with enough structure to act
// on: the HTTP status (0 for transport-level failures), a snippet of the
// response body, and the server's Retry-After hint when it sent one.
type EnrollError struct {
	// Status is the HTTP status code; 0 means the request never got an
	// HTTP response (connection refused, reset, timeout).
	Status int
	// Body is a bounded snippet of the error body.
	Body string
	// RetryAfter is the parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
	// Err is the underlying error, if any.
	Err error
}

func (e *EnrollError) Error() string {
	switch {
	case e.Status != 0 && e.Body != "":
		return fmt.Sprintf("kgcd client: enroll status %d: %s", e.Status, e.Body)
	case e.Status != 0:
		return fmt.Sprintf("kgcd client: enroll status %d", e.Status)
	default:
		return fmt.Sprintf("kgcd client: enroll: %v", e.Err)
	}
}

func (e *EnrollError) Unwrap() error { return e.Err }

// Retryable reports whether another attempt could plausibly succeed:
// transport failures, 429 (rate limited — the bucket refills) and 5xx
// (replica churn, quorum loss — the cluster heals). Other 4xx are the
// caller's fault and repeat deterministically.
func (e *EnrollError) Retryable() bool {
	if e.Status == 0 {
		return true
	}
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Client is the enrollment client library: what a field node (or the load
// harness, or the example) uses to talk to a kgcd combiner. All decoded
// material goes through the validating Unmarshal paths, so a tampered or
// misdirected response is rejected here. Enroll retries retryable failures
// with capped exponential backoff and seeded jitter, honors Retry-After,
// and trips a local circuit breaker when the combiner keeps failing.
type Client struct {
	base string
	hc   *http.Client
	cfg  ClientConfig
	br   *breaker

	mu  sync.Mutex // guards rng: one Client is shared across load workers
	rng *mrand.Rand
}

// NewClient creates a client with default retry behavior for a combiner
// base URL such as "http://10.0.0.1:7600". A nil http.Client gets a 5 s
// overall timeout.
func NewClient(base string, hc *http.Client) *Client {
	return NewClientWithConfig(base, hc, ClientConfig{})
}

// NewClientWithConfig is NewClient with explicit retry/breaker tuning.
func NewClientWithConfig(base string, hc *http.Client, cfg ClientConfig) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	cfg = cfg.withDefaults()
	return &Client{
		base: base,
		hc:   hc,
		cfg:  cfg,
		br:   newBreaker(cfg.Breaker),
		// Golden-ratio seed derivation, as in secrouting's enrollment
		// backoff: distinct deterministic streams from one master seed.
		rng: mrand.New(mrand.NewSource(int64(uint64(cfg.JitterSeed) ^ 0x9e3779b97f4a7c15))),
	}
}

// EnrollResult is a successful enrollment: the validated partial private
// key, and whether the combiner served it from cache.
type EnrollResult struct {
	PartialKey *core.PartialPrivateKey
	Cached     bool
}

// Params fetches and validates the public system parameters.
func (c *Client) Params(ctx context.Context) (*core.Params, error) {
	var pr paramsResponse
	if err := c.getJSON(ctx, "/params", &pr); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(pr.Ppub)
	if err != nil {
		return nil, fmt.Errorf("kgcd client: params hex: %w", err)
	}
	return core.UnmarshalParams(raw)
}

// Enroll requests a partial private key for an identity, retrying
// retryable failures up to MaxAttempts with capped exponential backoff.
// The returned key has passed point/subgroup validation but not the
// pairing check against the parameters — GenerateKeyPair performs that
// (and must, since only the enrollee knows which parameters it trusts).
func (c *Client) Enroll(ctx context.Context, id string) (*EnrollResult, error) {
	var last *EnrollError
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			var hint time.Duration
			if last != nil {
				hint = last.RetryAfter
			}
			if err := c.backoff(ctx, attempt-1, hint); err != nil {
				return nil, err
			}
		}
		if !c.br.Allow() {
			last = &EnrollError{Err: ErrCircuitOpen}
			continue
		}
		res, eerr := c.enrollOnce(ctx, id)
		if eerr == nil {
			c.br.Record(true)
			return res, nil
		}
		// The breaker tracks the combiner's health, not ours: transport
		// failures and 5xx count against it; 4xx means it answered.
		c.br.Record(eerr.Status != 0 && eerr.Status < 500)
		last = eerr
		if !eerr.Retryable() {
			return nil, eerr
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, last
}

// backoff sleeps base·2^(n−1) with seeded jitter, capped, raised to the
// server's Retry-After hint (also capped) when one was given.
func (c *Client) backoff(ctx context.Context, n int, retryAfter time.Duration) error {
	d := c.cfg.BackoffBase << (n - 1)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	if retryAfter > d {
		d = min(retryAfter, c.cfg.BackoffCap)
	}
	c.mu.Lock()
	d += time.Duration(c.cfg.JitterFrac * c.rng.Float64() * float64(d))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enrollOnce performs a single enrollment round trip.
func (c *Client) enrollOnce(ctx context.Context, id string) (*EnrollResult, *EnrollError) {
	body, err := json.Marshal(enrollRequest{ID: id})
	if err != nil {
		return nil, &EnrollError{Err: err, Status: -1} // not retryable, not transport
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/enroll", bytes.NewReader(body))
	if err != nil {
		return nil, &EnrollError{Err: err, Status: -1}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &EnrollError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &EnrollError{
			Status:     resp.StatusCode,
			Body:       errorSnippet(resp),
			RetryAfter: parseRetryAfter(resp),
		}
	}
	var er enrollResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&er); err != nil {
		return nil, &EnrollError{Status: -1, Err: fmt.Errorf("kgcd client: decode: %w", err)}
	}
	if er.ID != id {
		return nil, &EnrollError{Status: -1, Err: fmt.Errorf("kgcd client: reply for %q, want %q", er.ID, id)}
	}
	raw, err := hex.DecodeString(er.PartialKey)
	if err != nil {
		return nil, &EnrollError{Status: -1, Err: fmt.Errorf("kgcd client: partial key hex: %w", err)}
	}
	ppk, err := core.UnmarshalPartialPrivateKey(raw)
	if err != nil {
		return nil, &EnrollError{Status: -1, Err: err}
	}
	if ppk.ID != id {
		return nil, &EnrollError{Status: -1, Err: fmt.Errorf("kgcd client: partial key bound to %q, want %q", ppk.ID, id)}
	}
	return &EnrollResult{PartialKey: ppk, Cached: er.Cached}, nil
}

// errorSnippet extracts a bounded, printable slice of an error response
// body for EnrollError.Body.
func errorSnippet(resp *http.Response) string {
	const maxSnippet = 160
	var er errorResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&er); err == nil && er.Error != "" {
		if len(er.Error) > maxSnippet {
			return er.Error[:maxSnippet]
		}
		return er.Error
	}
	return ""
}

// parseRetryAfter reads an integer-seconds Retry-After header (the only
// form kgcd emits; HTTP-date form is ignored).
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// BreakerState exposes the client-side breaker position (for harness
// reporting).
func (c *Client) BreakerState() BreakerState { return c.br.State() }

// Healthz returns the combiner's health report; err is non-nil when the
// service is below quorum or unreachable.
func (c *Client) Healthz(ctx context.Context) (*healthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&h); err != nil {
		return nil, fmt.Errorf("kgcd client: decode healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return &h, fmt.Errorf("kgcd client: %s", h.Status)
	}
	return &h, nil
}

// RawMetrics fetches the Prometheus text exposition, for scraping counters
// (the load harness reads the cache hit counters this way).
func (c *Client) RawMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("kgcd client: metrics status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return string(raw), err
}

func (c *Client) getJSON(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("kgcd client: %s %s", path, readErrorBody(resp))
	}
	return json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(dst)
}
