package kgcd

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mccls/internal/core"
)

// Client is the enrollment client library: what a field node (or the load
// harness, or the example) uses to talk to a kgcd combiner. All decoded
// material goes through the validating Unmarshal paths, so a tampered or
// misdirected response is rejected here.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for a combiner base URL such as
// "http://10.0.0.1:7600". A nil http.Client gets a 5 s overall timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	return &Client{base: base, hc: hc}
}

// EnrollResult is a successful enrollment: the validated partial private
// key, and whether the combiner served it from cache.
type EnrollResult struct {
	PartialKey *core.PartialPrivateKey
	Cached     bool
}

// Params fetches and validates the public system parameters.
func (c *Client) Params(ctx context.Context) (*core.Params, error) {
	var pr paramsResponse
	if err := c.getJSON(ctx, "/params", &pr); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(pr.Ppub)
	if err != nil {
		return nil, fmt.Errorf("kgcd client: params hex: %w", err)
	}
	return core.UnmarshalParams(raw)
}

// Enroll requests a partial private key for an identity. The returned key
// has passed point/subgroup validation but not the pairing check against
// the parameters — GenerateKeyPair performs that (and must, since only the
// enrollee knows which parameters it trusts).
func (c *Client) Enroll(ctx context.Context, id string) (*EnrollResult, error) {
	body, err := json.Marshal(enrollRequest{ID: id})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/enroll", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("kgcd client: enroll %s", readErrorBody(resp))
	}
	var er enrollResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&er); err != nil {
		return nil, fmt.Errorf("kgcd client: decode: %w", err)
	}
	if er.ID != id {
		return nil, fmt.Errorf("kgcd client: reply for %q, want %q", er.ID, id)
	}
	raw, err := hex.DecodeString(er.PartialKey)
	if err != nil {
		return nil, fmt.Errorf("kgcd client: partial key hex: %w", err)
	}
	ppk, err := core.UnmarshalPartialPrivateKey(raw)
	if err != nil {
		return nil, err
	}
	if ppk.ID != id {
		return nil, fmt.Errorf("kgcd client: partial key bound to %q, want %q", ppk.ID, id)
	}
	return &EnrollResult{PartialKey: ppk, Cached: er.Cached}, nil
}

// Healthz returns the combiner's health report; err is non-nil when the
// service is below quorum or unreachable.
func (c *Client) Healthz(ctx context.Context) (*healthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(&h); err != nil {
		return nil, fmt.Errorf("kgcd client: decode healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return &h, fmt.Errorf("kgcd client: %s", h.Status)
	}
	return &h, nil
}

// RawMetrics fetches the Prometheus text exposition, for scraping counters
// (the load harness reads the cache hit counters this way).
func (c *Client) RawMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("kgcd client: metrics status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return string(raw), err
}

func (c *Client) getJSON(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("kgcd client: %s %s", path, readErrorBody(resp))
	}
	return json.NewDecoder(&limitedBody{resp.Body, maxBodyBytes}).Decode(dst)
}
