package kgcd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/big"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mccls/internal/core"
	"mccls/internal/faulthttp"
	"mccls/internal/threshold"
)

// startSignerDeployment is startTestDeployment plus direct access to the
// threshold signers (for applying refreshes out-of-band) and per-signer
// middleware (for injecting faults).
func startSignerDeployment(t *testing.T, tt, n int, master *big.Int, cfg Config,
	mw func(i int, h http.Handler) http.Handler) (*httptest.Server, []*threshold.Signer, *core.KGC) {
	t.Helper()
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := threshold.Split(master, tt, n, mrand.New(mrand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var signers []*threshold.Signer
	var urls []string
	for i, sh := range shares {
		signer, err := threshold.NewSigner(kgc.Params(), sh)
		if err != nil {
			t.Fatal(err)
		}
		signers = append(signers, signer)
		var h http.Handler = NewSignerHandler(signer, 0)
		if mw != nil {
			h = mw(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	cfg.Params = kgc.Params()
	cfg.T = tt
	cfg.SignerURLs = urls
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comb := httptest.NewServer(srv.Handler())
	t.Cleanup(comb.Close)
	return comb, signers, kgc
}

func postEnroll(t *testing.T, url, id string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(enrollRequest{ID: id})
	resp, err := http.Post(url+"/enroll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDegradedModeFailsFastWithRetryAfter drives a 1-of-1 deployment whose
// only replica is dead: once the breaker trips, cache misses are refused
// immediately with 503 + Retry-After while cache hits keep being served.
func TestDegradedModeFailsFastWithRetryAfter(t *testing.T) {
	comb, signerSrvs, _ := startTestDeployment(t, 1, 1, testMaster(40), Config{
		Breaker: BreakerConfig{Window: 2, MinSamples: 2, FailureRate: 0.5, Cooldown: 30 * time.Second},
	})
	c := NewClientWithConfig(comb.URL, nil, ClientConfig{MaxAttempts: 1})
	ctx := context.Background()

	// Warm the cache, then kill the replica.
	if _, err := c.Enroll(ctx, "warm"); err != nil {
		t.Fatal(err)
	}
	signerSrvs[0].Close()

	// One failed miss fills the 2-slot window to the 50% trip rate (the
	// warm success is the other sample): the breaker opens.
	resp := postEnroll(t, comb.URL, "miss-a")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enroll with dead replica: status %d", resp.StatusCode)
	}

	// Tripped: misses fail fast with a retry hint.
	start := time.Now()
	resp = postEnroll(t, comb.URL, "miss-b")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded miss: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("degraded miss took %v, want fail-fast", d)
	}

	// Cache hits are unaffected.
	res, err := c.Enroll(ctx, "warm")
	if err != nil {
		t.Fatalf("cached enroll while degraded: %v", err)
	}
	if !res.Cached {
		t.Error("expected a cache hit")
	}

	// The surface shows it: degraded counter and open breaker state.
	text, err := c.RawMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kgcd_degraded_total 1",
		`kgcd_replica_breaker_state{replica="` + signerSrvs[0].URL + `"} 1`,
		`kgcd_replica_breaker_opens_total{replica="` + signerSrvs[0].URL + `"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepLines(text, "degraded")+"\n"+grepLines(text, "breaker"))
		}
	}
}

// TestBreakerReadmitsRecoveredReplica trips a breaker, then brings the
// replica "back" and checks a probe readmits it after the cooldown.
func TestBreakerReadmitsRecoveredReplica(t *testing.T) {
	var down atomic.Bool
	comb, _, kgc := startSignerDeployment(t, 1, 1, testMaster(41), Config{
		Breaker: BreakerConfig{Window: 2, MinSamples: 2, FailureRate: 0.5, Cooldown: 100 * time.Millisecond},
	}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if down.Load() {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	})
	ctx := context.Background()
	c := NewClientWithConfig(comb.URL, nil, ClientConfig{MaxAttempts: 1})

	down.Store(true)
	for i := 0; i < 2; i++ {
		resp := postEnroll(t, comb.URL, "x")
		resp.Body.Close()
	}
	if resp := postEnroll(t, comb.URL, "x"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	down.Store(false)
	time.Sleep(150 * time.Millisecond) // past cooldown: half-open probe allowed
	res, err := c.Enroll(ctx, "x")
	if err != nil {
		t.Fatalf("enroll after recovery: %v", err)
	}
	want := kgc.ExtractPartialPrivateKey("x")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("post-recovery key differs from single master")
	}
}

// TestHedgedFanOut puts one slow replica in the initial fan-out; the hedge
// fires a spare to the remaining replica and the enrollment completes well
// under the injected latency.
func TestHedgedFanOut(t *testing.T) {
	in := faulthttp.New(faulthttp.Schedule{
		Latency: []faulthttp.Latency{{Target: "slow", From: 0, To: time.Hour, Delay: 2 * time.Second}},
	})
	in.Start()
	comb, _, kgc := startSignerDeployment(t, 2, 3, testMaster(42), Config{
		HedgeDelay:     20 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}, func(i int, h http.Handler) http.Handler {
		if i == 1 { // a fresh server's rotation starts at replica 1
			return faulthttp.Middleware(in, "slow", h)
		}
		return h
	})
	c := NewClientWithConfig(comb.URL, nil, ClientConfig{MaxAttempts: 1})

	start := time.Now()
	res, err := c.Enroll(context.Background(), "hedged")
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("enrollment took %v; the hedge did not rescue the straggler", d)
	}
	want := kgc.ExtractPartialPrivateKey("hedged")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("hedged key differs from single master")
	}
	text, err := c.RawMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "kgcd_hedged_requests_total 1") {
		t.Errorf("hedge not counted:\n%s", grepLines(text, "hedged"))
	}
}

// TestGatherSurvivesMixedEpochs refreshes two of three replicas and leaves
// one behind: the combiner must notice the epoch conflict, pull in the
// third replica, and return a clean same-epoch quorum.
func TestGatherSurvivesMixedEpochs(t *testing.T) {
	comb, signers, kgc := startSignerDeployment(t, 2, 3, testMaster(43), Config{}, nil)
	deltas, err := threshold.RefreshDeltas(2, 3, 1, mrand.New(mrand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Replicas 0 and 2 advance to epoch 1; replica 1 (first in the fresh
	// server's rotation) stays at epoch 0.
	for _, i := range []int{0, 2} {
		if _, err := signers[i].ApplyRefresh(deltas[i]); err != nil {
			t.Fatal(err)
		}
	}

	c := NewClientWithConfig(comb.URL, nil, ClientConfig{MaxAttempts: 1})
	res, err := c.Enroll(context.Background(), "mixed")
	if err != nil {
		t.Fatalf("enroll across mixed epochs: %v", err)
	}
	want := kgc.ExtractPartialPrivateKey("mixed")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("mixed-epoch gather produced a wrong key")
	}
	text, err := c.RawMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "kgcd_epoch_conflicts_total 1") {
		t.Errorf("epoch conflict not counted:\n%s", grepLines(text, "epoch"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestClientRetriesTransientFailures(t *testing.T) {
	comb, _, kgc := startTestDeployment(t, 1, 1, testMaster(44), Config{})
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusServiceUnavailable, "transient")
			return
		}
		resp, err := http.Post(comb.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			writeError(w, http.StatusBadGateway, err.Error())
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		if _, err := w.Write([]byte{}); err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err == nil {
			w.Write(buf.Bytes())
		}
	}))
	defer flaky.Close()

	c := NewClientWithConfig(flaky.URL, nil, ClientConfig{
		MaxAttempts: 3, BackoffBase: 10 * time.Millisecond, JitterSeed: 7,
	})
	res, err := c.Enroll(context.Background(), "retry-me")
	if err != nil {
		t.Fatalf("enroll through flaky front-end: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3", got)
	}
	want := kgc.ExtractPartialPrivateKey("retry-me")
	if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
		t.Fatal("retried key differs from single master")
	}
}

func TestEnrollErrorSemantics(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.Header.Get("X-Case") {
		case "fatal":
			writeError(w, http.StatusBadRequest, "identity length must be in [1, 256]")
		default:
			w.Header().Set("Retry-After", "7")
			writeError(w, http.StatusServiceUnavailable, "quorum unavailable")
		}
	}))
	defer srv.Close()

	// Retryable 503 with Retry-After: all attempts consumed, hint parsed.
	hc := &http.Client{Transport: headerTransport{"X-Case", "retryable"}}
	c := NewClientWithConfig(srv.URL, hc, ClientConfig{
		MaxAttempts: 2, BackoffBase: 5 * time.Millisecond, BackoffCap: 20 * time.Millisecond,
	})
	_, err := c.Enroll(context.Background(), "x")
	var ee *EnrollError
	if !errors.As(err, &ee) {
		t.Fatalf("want *EnrollError, got %T: %v", err, err)
	}
	if ee.Status != http.StatusServiceUnavailable || !ee.Retryable() {
		t.Fatalf("status %d retryable %v", ee.Status, ee.Retryable())
	}
	if ee.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter %v, want 7s", ee.RetryAfter)
	}
	if !strings.Contains(ee.Body, "quorum unavailable") {
		t.Fatalf("body snippet %q", ee.Body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("retryable error: %d attempts, want 2", got)
	}

	// Fatal 400: a single attempt, Retryable() false.
	calls.Store(0)
	hc = &http.Client{Transport: headerTransport{"X-Case", "fatal"}}
	c = NewClientWithConfig(srv.URL, hc, ClientConfig{MaxAttempts: 3, BackoffBase: 5 * time.Millisecond})
	_, err = c.Enroll(context.Background(), "x")
	if !errors.As(err, &ee) || ee.Status != http.StatusBadRequest || ee.Retryable() {
		t.Fatalf("fatal case: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fatal error: %d attempts, want 1", got)
	}

	// Transport failure: Status 0, retryable.
	srv.Close()
	c = NewClientWithConfig(srv.URL, nil, ClientConfig{MaxAttempts: 1})
	_, err = c.Enroll(context.Background(), "x")
	if !errors.As(err, &ee) || ee.Status != 0 || !ee.Retryable() {
		t.Fatalf("transport case: %v", err)
	}
}

// headerTransport stamps one header on every request.
type headerTransport struct{ k, v string }

func (t headerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req.Header.Set(t.k, t.v)
	return http.DefaultTransport.RoundTrip(req)
}

// TestClusterRefreshKeepsIssuedBytes runs a full proactive refresh over a
// live cluster and pins issuance on both sides of it to the single-master
// oracle: the epoch moves, the keys do not.
func TestClusterRefreshKeepsIssuedBytes(t *testing.T) {
	master := testMaster(45)
	cl, err := StartCluster(ClusterConfig{
		T: 2, N: 3, Master: master, Rng: mrand.New(mrand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(cl.URL, nil)
	ctx := context.Background()

	before, err := c.Enroll(ctx, "pre-refresh")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.PartialKey.Marshal(), kgc.ExtractPartialPrivateKey("pre-refresh").Marshal()) {
		t.Fatal("pre-refresh key differs from single master")
	}

	for round := uint32(1); round <= 2; round++ {
		epoch, err := cl.Refresh(ctx)
		if err != nil {
			t.Fatalf("refresh round %d: %v", round, err)
		}
		if epoch != round || cl.Epoch() != round {
			t.Fatalf("epoch %d after round %d", epoch, round)
		}
		id := "post-refresh-" + string(rune('0'+round))
		res, err := c.Enroll(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.PartialKey.Marshal(), kgc.ExtractPartialPrivateKey(id).Marshal()) {
			t.Fatalf("round %d: refreshed issuance differs from single master", round)
		}
	}
}

// TestClusterShutdownDrainsInFlight slows the signer path, starts an
// enrollment, and shuts the cluster down mid-flight: the request must
// complete, and the listeners must then be closed.
func TestClusterShutdownDrainsInFlight(t *testing.T) {
	in := faulthttp.New(faulthttp.Schedule{
		Latency: []faulthttp.Latency{{From: 0, To: time.Hour, Delay: 300 * time.Millisecond}},
	})
	in.Start()
	master := testMaster(46)
	cl, err := StartCluster(ClusterConfig{
		T: 2, N: 3, Master: master, Rng: mrand.New(mrand.NewSource(12)),
		SignerMiddleware: func(i int, h http.Handler) http.Handler {
			return faulthttp.Middleware(in, "", h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	c := NewClientWithConfig(cl.URL, nil, ClientConfig{MaxAttempts: 1})
	type outcome struct {
		res *EnrollResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Enroll(context.Background(), "in-flight")
		done <- outcome{res, err}
	}()
	time.Sleep(100 * time.Millisecond) // request is inside the signer delay

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("in-flight enrollment failed during shutdown: %v", o.err)
	}
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o.res.PartialKey.Marshal(), kgc.ExtractPartialPrivateKey("in-flight").Marshal()) {
		t.Fatal("drained key differs from single master")
	}

	// The drained listeners refuse new work.
	if _, err := c.Enroll(context.Background(), "too-late"); err == nil {
		t.Fatal("enrollment accepted after shutdown")
	}
}
