package kgcd

import (
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
	"mccls/internal/threshold"
)

// NewHTTPServer wraps a handler with the server-side timeouts every kgcd
// listener uses: a slow-loris peer cannot hold a connection open forever.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// ClusterConfig shapes an all-in-one deployment: one process running the n
// signer replicas (each on its own loopback listener — real HTTP traffic,
// not function calls) plus the combiner.
type ClusterConfig struct {
	// T of N quorum shape.
	T, N int
	// Master is the master secret to shard; nil draws a fresh one from Rng.
	Master *big.Int
	// Rng feeds Setup and Split; nil uses crypto/rand.
	Rng io.Reader
	// ListenAddr is the combiner's address (default "127.0.0.1:0").
	ListenAddr string
	// Combiner carries cache/rate-limit/timeout tuning; Params, T and
	// SignerURLs are filled in here.
	Combiner Config
}

// Cluster is a running all-in-one deployment.
type Cluster struct {
	// URL is the combiner's base URL.
	URL string
	// SignerURLs are the replica base URLs.
	SignerURLs []string
	// Params are the public parameters the shares were split under.
	Params *core.Params

	servers   []*http.Server
	listeners []net.Listener
}

// StartCluster shards the master secret t-of-n, starts the n signer
// replicas and the combiner, and returns once all listeners are accepting.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	master := cfg.Master
	if master == nil {
		var err error
		if master, err = bn254.RandomScalar(cfg.Rng); err != nil {
			return nil, fmt.Errorf("kgcd: draw master: %w", err)
		}
	}
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		return nil, err
	}
	shares, err := threshold.Split(master, cfg.T, cfg.N, cfg.Rng)
	if err != nil {
		return nil, err
	}

	c := &Cluster{Params: kgc.Params()}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	for _, sh := range shares {
		signer, err := threshold.NewSigner(kgc.Params(), sh)
		if err != nil {
			return fail(err)
		}
		u, err := c.serve("127.0.0.1:0", NewSignerHandler(signer, cfg.Combiner.MaxIDLen))
		if err != nil {
			return fail(err)
		}
		c.SignerURLs = append(c.SignerURLs, u)
	}

	combCfg := cfg.Combiner
	combCfg.Params = kgc.Params()
	combCfg.T = cfg.T
	combCfg.SignerURLs = c.SignerURLs
	srv, err := NewServer(combCfg)
	if err != nil {
		return fail(err)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if c.URL, err = c.serve(addr, srv.Handler()); err != nil {
		return fail(err)
	}
	return c, nil
}

func (c *Cluster) serve(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := NewHTTPServer(h)
	c.servers = append(c.servers, srv)
	c.listeners = append(c.listeners, ln)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts down every listener in the cluster.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
}
