package kgcd

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"sync"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
	"mccls/internal/threshold"
)

// NewHTTPServer wraps a handler with the server-side timeouts every kgcd
// listener uses: a slow-loris peer cannot hold a connection open forever.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// ClusterConfig shapes an all-in-one deployment: one process running the n
// signer replicas (each on its own loopback listener — real HTTP traffic,
// not function calls) plus the combiner.
type ClusterConfig struct {
	// T of N quorum shape.
	T, N int
	// Master is the master secret to shard; nil draws a fresh one from Rng.
	Master *big.Int
	// Rng feeds Setup, Split and refresh polynomials; nil uses crypto/rand.
	Rng io.Reader
	// ListenAddr is the combiner's address (default "127.0.0.1:0").
	ListenAddr string
	// SignerMiddleware, when set, wraps each signer replica's handler —
	// the chaos harness injects faulthttp middleware here so a "killed"
	// replica aborts connections exactly as its fault schedule dictates.
	SignerMiddleware func(i int, h http.Handler) http.Handler
	// Combiner carries cache/rate-limit/timeout tuning; Params, T and
	// SignerURLs are filled in here.
	Combiner Config
}

// Cluster is a running all-in-one deployment.
type Cluster struct {
	// URL is the combiner's base URL.
	URL string
	// SignerURLs are the replica base URLs.
	SignerURLs []string
	// Params are the public parameters the shares were split under.
	Params *core.Params

	t   int
	rng io.Reader

	mu           sync.Mutex
	epoch        uint32 // last refresh epoch all replicas confirmed
	pending      []*threshold.Delta
	pendingEpoch uint32

	servers   []*http.Server // signers first, combiner last
	listeners []net.Listener
}

// StartCluster shards the master secret t-of-n, starts the n signer
// replicas and the combiner, and returns once all listeners are accepting.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	master := cfg.Master
	if master == nil {
		var err error
		if master, err = bn254.RandomScalar(cfg.Rng); err != nil {
			return nil, fmt.Errorf("kgcd: draw master: %w", err)
		}
	}
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		return nil, err
	}
	shares, err := threshold.Split(master, cfg.T, cfg.N, cfg.Rng)
	if err != nil {
		return nil, err
	}

	c := &Cluster{Params: kgc.Params(), t: cfg.T, rng: cfg.Rng}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	for i, sh := range shares {
		signer, err := threshold.NewSigner(kgc.Params(), sh)
		if err != nil {
			return fail(err)
		}
		h := NewSignerHandler(signer, cfg.Combiner.MaxIDLen)
		if cfg.SignerMiddleware != nil {
			h = cfg.SignerMiddleware(i, h)
		}
		u, err := c.serve("127.0.0.1:0", h)
		if err != nil {
			return fail(err)
		}
		c.SignerURLs = append(c.SignerURLs, u)
	}

	combCfg := cfg.Combiner
	combCfg.Params = kgc.Params()
	combCfg.T = cfg.T
	combCfg.SignerURLs = c.SignerURLs
	srv, err := NewServer(combCfg)
	if err != nil {
		return fail(err)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if c.URL, err = c.serve(addr, srv.Handler()); err != nil {
		return fail(err)
	}
	return c, nil
}

func (c *Cluster) serve(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := NewHTTPServer(h)
	c.servers = append(c.servers, srv)
	c.listeners = append(c.listeners, ln)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Epoch returns the last refresh epoch every replica confirmed.
func (c *Cluster) Epoch() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Refresh executes one proactive share refresh across the replica set: it
// draws a zero-constant polynomial, posts each replica its delta, and
// returns the new epoch once all n confirmed. The master secret is
// untouched — issuance before, during and after the refresh combines to
// byte-identical partial keys. Posts are retried (the /refresh endpoint is
// idempotent), and a replica that stays unreachable fails the refresh: the
// epoch bookkeeping then keeps mixed share sets from combining. A failed
// round's deltas are pinned and re-posted by the next Refresh call — a
// retry must NOT draw a fresh polynomial, or replicas that already applied
// the first one would idempotently skip the second and end up on different
// polynomials under the same epoch number.
func (c *Cluster) Refresh(ctx context.Context) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	toEpoch := c.epoch + 1
	if c.pending == nil || c.pendingEpoch != toEpoch {
		deltas, err := threshold.RefreshDeltas(c.t, len(c.SignerURLs), toEpoch, c.rng)
		if err != nil {
			return c.epoch, err
		}
		c.pending, c.pendingEpoch = deltas, toEpoch
	}
	deltas := c.pending
	for i, u := range c.SignerURLs {
		issuer := newHTTPIssuer(u, nil)
		var lastErr error
		applied := false
		for attempt := 0; attempt < 5 && !applied; attempt++ {
			if attempt > 0 {
				select {
				case <-ctx.Done():
					return c.epoch, ctx.Err()
				case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
				}
			}
			ep, err := issuer.Refresh(ctx, deltas[i])
			if err != nil {
				lastErr = err
				continue
			}
			if ep != toEpoch {
				return c.epoch, fmt.Errorf("kgcd: replica %d refreshed to epoch %d, want %d", i, ep, toEpoch)
			}
			applied = true
		}
		if !applied {
			return c.epoch, fmt.Errorf("kgcd: refresh epoch %d: replica %d unreachable: %w", toEpoch, i, lastErr)
		}
	}
	c.epoch = toEpoch
	c.pending = nil
	return toEpoch, nil
}

// Shutdown drains the cluster gracefully within the context's deadline:
// the combiner first (so in-flight enrollments can still reach signer
// replicas), then the replicas. Close remains the abrupt path.
func (c *Cluster) Shutdown(ctx context.Context) error {
	var firstErr error
	// servers holds signers first, combiner last; drain in reverse.
	for i := len(c.servers) - 1; i >= 0; i-- {
		if err := c.servers[i].Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts down every listener in the cluster.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
}
