// Package kgcd is the KGC enrollment plane as a real network service: a
// front-end *combiner* exposing JSON-over-HTTP enrollment, backed by n
// signer *replicas* that each hold one Shamir share of the master secret
// (internal/threshold). An enrollment fans out to the replicas, collects
// any t key shares and Lagrange-combines them into the partial private
// key — so forging partial keys requires compromising t servers, while
// availability survives n−t failures.
//
// Combiner API (all JSON):
//
//	GET  /params  → {"ppub": hex}                       public parameters
//	POST /enroll  {"id": ...} → {"id", "partial_key", "cached"}
//	GET  /healthz → {"status", "t", "n", "signers_up"}  503 below quorum
//	GET  /metrics → Prometheus text exposition
//
// The hot path is defended in depth: per-identity token-bucket rate
// limiting (429), an LRU partial-key cache (re-enrollment is the common
// case for a rebooting fleet), bounded request bodies and identity
// lengths, and a per-request fan-out timeout.
package kgcd

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mccls/internal/core"
	"mccls/internal/lru"
	"mccls/internal/threshold"
)

// Tunable defaults; zero values in Config select these.
const (
	DefaultMaxIDLen       = 256
	DefaultCacheSize      = 1 << 16
	DefaultRequestTimeout = 2 * time.Second
	// DefaultRatePerSec / DefaultRateBurst: a legitimate node re-enrolls at
	// reboot cadence; 5/s sustained with a burst of 20 absorbs crash loops
	// and flaky links without letting one identity monopolize issuance.
	DefaultRatePerSec = 5
	DefaultRateBurst  = 20
)

// Config parameterizes a combiner.
type Config struct {
	// Params are the public system parameters the shares were split under.
	Params *core.Params
	// T is the quorum: how many signer replicas must answer.
	T int
	// SignerURLs are the base URLs of the n replicas.
	SignerURLs []string
	// CacheSize bounds the partial-key LRU (entries).
	CacheSize int
	// RatePerSec / RateBurst parameterize per-identity token buckets;
	// RatePerSec < 0 disables rate limiting.
	RatePerSec float64
	RateBurst  int
	// RequestTimeout bounds one enrollment's signer fan-out.
	RequestTimeout time.Duration
	// MaxIDLen bounds accepted identity byte length.
	MaxIDLen int
	// ValidateCombined pairing-checks every combined key before caching.
	// Costly (two pairings); the combination is fuzz-pinned to the
	// single-master oracle, and clients validate on receipt anyway, so
	// this is off by default and exists for belt-and-braces deployments.
	ValidateCombined bool
	// HTTPClient overrides the client used to reach signer replicas.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.RateBurst == 0 {
		c.RateBurst = DefaultRateBurst
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxIDLen == 0 {
		c.MaxIDLen = DefaultMaxIDLen
	}
	return c
}

// Server is the combiner.
type Server struct {
	cfg     Config
	issuers []shareIssuer
	cache   *lru.Cache[string] // identity → hex-marshalled partial key
	limiter *rateLimiter
	metrics metrics
	rr      atomic.Uint32 // round-robin cursor over signer replicas
}

// NewServer validates the configuration and builds a combiner.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Params == nil {
		return nil, fmt.Errorf("kgcd: config needs Params")
	}
	n := len(cfg.SignerURLs)
	if cfg.T < 1 || n < cfg.T || n > threshold.MaxShares {
		return nil, fmt.Errorf("kgcd: invalid quorum %d-of-%d", cfg.T, n)
	}
	s := &Server{
		cfg:     cfg,
		cache:   lru.New[string](cfg.CacheSize),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.RateBurst, 2*cfg.CacheSize),
	}
	for _, u := range cfg.SignerURLs {
		s.issuers = append(s.issuers, newHTTPIssuer(u, cfg.HTTPClient))
	}
	return s, nil
}

// enrollRequest / enrollResponse are the public enrollment wire format.
// PartialKey is hex of PartialPrivateKey.Marshal.
type enrollRequest struct {
	ID string `json:"id"`
}

type enrollResponse struct {
	ID         string `json:"id"`
	PartialKey string `json:"partial_key"`
	Cached     bool   `json:"cached"`
}

type paramsResponse struct {
	Ppub string `json:"ppub"`
}

type healthResponse struct {
	Status    string `json:"status"`
	T         int    `json:"t"`
	N         int    `json:"n"`
	SignersUp int    `json:"signers_up"`
}

// Handler returns the combiner's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /params", s.handleParams)
	mux.HandleFunc("POST /enroll", s.handleEnroll)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	s.metrics.paramsTotal.Inc()
	writeJSON(w, http.StatusOK, paramsResponse{Ppub: hex.EncodeToString(s.cfg.Params.Marshal())})
}

func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req enrollRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.metrics.badRequests.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.ID) == 0 || len(req.ID) > s.cfg.MaxIDLen {
		s.metrics.badRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("identity length must be in [1, %d]", s.cfg.MaxIDLen))
		return
	}
	if !s.limiter.Allow(req.ID) {
		s.metrics.rateLimited.Inc()
		writeError(w, http.StatusTooManyRequests, "per-identity rate limit exceeded")
		return
	}
	s.metrics.enrollTotal.Inc()

	if hexKey, ok := s.cache.Get(req.ID); ok {
		s.metrics.cacheHits.Inc()
		writeJSON(w, http.StatusOK, enrollResponse{ID: req.ID, PartialKey: hexKey, Cached: true})
		s.metrics.enrollLatency.Observe(time.Since(start))
		return
	}
	s.metrics.cacheMisses.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	shares, err := s.gatherShares(ctx, req.ID)
	if err != nil {
		s.metrics.enrollErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("quorum unavailable: %v", err))
		return
	}
	ppk, err := threshold.Combine(req.ID, shares)
	if err != nil {
		s.metrics.enrollErrors.Inc()
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("combine: %v", err))
		return
	}
	if s.cfg.ValidateCombined {
		if err := ppk.Validate(s.cfg.Params); err != nil {
			s.metrics.enrollErrors.Inc()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("combined key invalid: %v", err))
			return
		}
	}
	hexKey := hex.EncodeToString(ppk.Marshal())
	s.cache.Put(req.ID, hexKey)
	writeJSON(w, http.StatusOK, enrollResponse{ID: req.ID, PartialKey: hexKey, Cached: false})
	s.metrics.enrollLatency.Observe(time.Since(start))
}

// gatherShares fans out to the signer replicas and returns the first T key
// shares. It starts T requests in parallel (rotating the starting replica
// for load balance) and launches a replacement for every failure, so one
// slow or dead replica degrades latency, not availability, as long as T
// replicas remain reachable.
func (s *Server) gatherShares(ctx context.Context, id string) ([]*threshold.KeyShare, error) {
	n := len(s.issuers)
	type result struct {
		ks  *threshold.KeyShare
		err error
	}
	results := make(chan result, n)
	first := int(s.rr.Add(1))
	launched := 0
	launch := func() bool {
		if launched >= n {
			return false
		}
		issuer := s.issuers[(first+launched)%n]
		launched++
		s.metrics.shareRequests.Inc()
		go func() {
			ks, err := issuer.Issue(ctx, id)
			if err != nil {
				err = fmt.Errorf("%s: %w", issuer.Name(), err)
			}
			results <- result{ks, err}
		}()
		return true
	}
	for i := 0; i < s.cfg.T; i++ {
		launch()
	}
	var shares []*threshold.KeyShare
	var lastErr error
	outstanding := s.cfg.T
	for len(shares) < s.cfg.T {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case r := <-results:
			outstanding--
			if r.err != nil {
				s.metrics.shareFailures.Inc()
				lastErr = r.err
				if launch() {
					outstanding++
				} else if outstanding == 0 {
					return nil, fmt.Errorf("%d of %d shares gathered, no replicas left: %w",
						len(shares), s.cfg.T, lastErr)
				}
				continue
			}
			shares = append(shares, r.ks)
		}
	}
	return shares, nil
}

// handleHealthz probes every replica concurrently with a short deadline
// and reports quorum: 200 when at least T replicas answer, 503 otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 1*time.Second)
	defer cancel()
	up := make(chan bool, len(s.issuers))
	for _, issuer := range s.issuers {
		go func(si shareIssuer) { up <- si.Healthy(ctx) == nil }(issuer)
	}
	alive := 0
	for range s.issuers {
		if <-up {
			alive++
		}
	}
	h := healthResponse{Status: "ok", T: s.cfg.T, N: len(s.issuers), SignersUp: alive}
	status := http.StatusOK
	if alive < s.cfg.T {
		h.Status = "degraded: below quorum"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.writePrometheus(w)
}
