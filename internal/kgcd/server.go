// Package kgcd is the KGC enrollment plane as a real network service: a
// front-end *combiner* exposing JSON-over-HTTP enrollment, backed by n
// signer *replicas* that each hold one Shamir share of the master secret
// (internal/threshold). An enrollment fans out to the replicas, collects
// any t key shares and Lagrange-combines them into the partial private
// key — so forging partial keys requires compromising t servers, while
// availability survives n−t failures.
//
// Combiner API (all JSON):
//
//	GET  /params  → {"ppub": hex}                       public parameters
//	POST /enroll  {"id": ...} → {"id", "partial_key", "cached"}
//	GET  /healthz → {"status", "t", "n", "signers_up", "replicas"}
//	GET  /metrics → Prometheus text exposition
//
// The hot path is defended in depth: per-identity token-bucket rate
// limiting (429), an LRU partial-key cache (re-enrollment is the common
// case for a rebooting fleet), bounded request bodies and identity
// lengths, and a per-request fan-out timeout. Against replica failure the
// combiner holds a circuit breaker per replica (a dead replica is skipped
// instead of soaking up fan-out slots), hedges stragglers with a spare
// request, groups gathered shares by refresh epoch (a refresh in flight
// must not poison a combination), and degrades gracefully: below quorum
// it keeps serving cache hits and answers misses with 503 + Retry-After
// instead of letting every request run into its deadline.
package kgcd

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"mccls/internal/core"
	"mccls/internal/lru"
	"mccls/internal/threshold"
)

// Tunable defaults; zero values in Config select these.
const (
	DefaultMaxIDLen       = 256
	DefaultCacheSize      = 1 << 16
	DefaultRequestTimeout = 2 * time.Second
	DefaultShareTimeout   = 1 * time.Second
	DefaultProbeTimeout   = 1 * time.Second
	// DefaultRatePerSec / DefaultRateBurst: a legitimate node re-enrolls at
	// reboot cadence; 5/s sustained with a burst of 20 absorbs crash loops
	// and flaky links without letting one identity monopolize issuance.
	DefaultRatePerSec = 5
	DefaultRateBurst  = 20
)

// Config parameterizes a combiner.
type Config struct {
	// Params are the public system parameters the shares were split under.
	Params *core.Params
	// T is the quorum: how many signer replicas must answer.
	T int
	// SignerURLs are the base URLs of the n replicas.
	SignerURLs []string
	// CacheSize bounds the partial-key LRU (entries).
	CacheSize int
	// RatePerSec / RateBurst parameterize per-identity token buckets;
	// RatePerSec < 0 disables rate limiting.
	RatePerSec float64
	RateBurst  int
	// RequestTimeout bounds one enrollment's signer fan-out.
	RequestTimeout time.Duration
	// ShareTimeout bounds a single share RPC within the fan-out, so one
	// hung replica fails fast and its slot is re-spent elsewhere.
	ShareTimeout time.Duration
	// ProbeTimeout bounds each per-replica /healthz probe.
	ProbeTimeout time.Duration
	// HedgeDelay: when the quorum is still incomplete after this long, one
	// spare request is launched at the next untried replica. Zero selects
	// an adaptive delay (2× the slowest replica's p95 share latency,
	// clamped to [5ms, RequestTimeout/2]); negative disables hedging.
	HedgeDelay time.Duration
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// MaxIDLen bounds accepted identity byte length.
	MaxIDLen int
	// ValidateCombined pairing-checks every combined key before caching.
	// Costly (two pairings); the combination is fuzz-pinned to the
	// single-master oracle, and clients validate on receipt anyway, so
	// this is off by default and exists for belt-and-braces deployments.
	ValidateCombined bool
	// HTTPClient overrides the client used to reach signer replicas.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.RateBurst == 0 {
		c.RateBurst = DefaultRateBurst
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.ShareTimeout == 0 {
		c.ShareTimeout = DefaultShareTimeout
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.MaxIDLen == 0 {
		c.MaxIDLen = DefaultMaxIDLen
	}
	return c
}

// replica is the combiner's stateful view of one signer: the transport, a
// circuit breaker, a share-latency ring (feeds the adaptive hedge delay)
// and the latest health-probe latency.
type replica struct {
	issuer        shareIssuer
	br            *breaker
	lat           latencyRing
	probeNanos    atomic.Int64 // last /healthz probe; -1 = failed, 0 = unprobed
	shareFailures counter
}

// Server is the combiner.
type Server struct {
	cfg      Config
	replicas []*replica
	cache    *lru.Cache[string] // identity → hex-marshalled partial key
	limiter  *rateLimiter
	metrics  metrics
	rr       atomic.Uint32 // round-robin cursor over signer replicas
}

// NewServer validates the configuration and builds a combiner.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Params == nil {
		return nil, fmt.Errorf("kgcd: config needs Params")
	}
	n := len(cfg.SignerURLs)
	if cfg.T < 1 || n < cfg.T || n > threshold.MaxShares {
		return nil, fmt.Errorf("kgcd: invalid quorum %d-of-%d", cfg.T, n)
	}
	s := &Server{
		cfg:     cfg,
		cache:   lru.New[string](cfg.CacheSize),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.RateBurst, 2*cfg.CacheSize),
	}
	for _, u := range cfg.SignerURLs {
		s.replicas = append(s.replicas, &replica{
			issuer: newHTTPIssuer(u, cfg.HTTPClient),
			br:     newBreaker(cfg.Breaker),
		})
	}
	return s, nil
}

// enrollRequest / enrollResponse are the public enrollment wire format.
// PartialKey is hex of PartialPrivateKey.Marshal.
type enrollRequest struct {
	ID string `json:"id"`
}

type enrollResponse struct {
	ID         string `json:"id"`
	PartialKey string `json:"partial_key"`
	Cached     bool   `json:"cached"`
}

type paramsResponse struct {
	Ppub string `json:"ppub"`
}

type replicaHealth struct {
	Name string `json:"name"`
	Up   bool   `json:"up"`
	// ProbeMicros is the probe round-trip in microseconds (-1 on failure).
	ProbeMicros int64  `json:"probe_micros"`
	Breaker     string `json:"breaker"`
}

type healthResponse struct {
	Status    string          `json:"status"`
	T         int             `json:"t"`
	N         int             `json:"n"`
	SignersUp int             `json:"signers_up"`
	Replicas  []replicaHealth `json:"replicas,omitempty"`
}

// Handler returns the combiner's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /params", s.handleParams)
	mux.HandleFunc("POST /enroll", s.handleEnroll)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	s.metrics.paramsTotal.Inc()
	writeJSON(w, http.StatusOK, paramsResponse{Ppub: hex.EncodeToString(s.cfg.Params.Marshal())})
}

func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req enrollRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.metrics.badRequests.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.ID) == 0 || len(req.ID) > s.cfg.MaxIDLen {
		s.metrics.badRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("identity length must be in [1, %d]", s.cfg.MaxIDLen))
		return
	}
	if !s.limiter.Allow(req.ID) {
		s.metrics.rateLimited.Inc()
		writeError(w, http.StatusTooManyRequests, "per-identity rate limit exceeded")
		return
	}
	s.metrics.enrollTotal.Inc()

	if hexKey, ok := s.cache.Get(req.ID); ok {
		s.metrics.cacheHits.Inc()
		writeJSON(w, http.StatusOK, enrollResponse{ID: req.ID, PartialKey: hexKey, Cached: true})
		s.metrics.enrollLatency.Observe(time.Since(start))
		return
	}
	s.metrics.cacheMisses.Inc()

	// Graceful degradation: when the breakers say the quorum is gone, fail
	// fast with a retry hint instead of burning the full request timeout.
	// Cache hits (above) keep being served regardless.
	if admissible := s.admissibleReplicas(); admissible < s.cfg.T {
		s.metrics.degraded.Inc()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("quorum unavailable: %d of %d replicas admissible, %d needed", admissible, len(s.replicas), s.cfg.T))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	shares, err := s.gatherShares(ctx, req.ID)
	if err != nil {
		s.metrics.enrollErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("quorum unavailable: %v", err))
		return
	}
	ppk, err := threshold.Combine(req.ID, shares)
	if err != nil {
		s.metrics.enrollErrors.Inc()
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("combine: %v", err))
		return
	}
	if s.cfg.ValidateCombined {
		if err := ppk.Validate(s.cfg.Params); err != nil {
			s.metrics.enrollErrors.Inc()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("combined key invalid: %v", err))
			return
		}
	}
	hexKey := hex.EncodeToString(ppk.Marshal())
	s.cache.Put(req.ID, hexKey)
	writeJSON(w, http.StatusOK, enrollResponse{ID: req.ID, PartialKey: hexKey, Cached: false})
	s.metrics.enrollLatency.Observe(time.Since(start))
}

func (s *Server) admissibleReplicas() int {
	n := 0
	for _, rep := range s.replicas {
		if rep.br.Admissible() {
			n++
		}
	}
	return n
}

// retryAfterSeconds is the soonest an open breaker will admit a probe,
// rounded up, at least one second.
func (s *Server) retryAfterSeconds() int {
	var soonest time.Duration
	for _, rep := range s.replicas {
		if rem := rep.br.RemainingCooldown(); rem > 0 && (soonest == 0 || rem < soonest) {
			soonest = rem
		}
	}
	secs := int((soonest + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// hedgeDelay is how long the fan-out waits on stragglers before spending a
// spare request.
func (s *Server) hedgeDelay() time.Duration {
	if s.cfg.HedgeDelay > 0 {
		return s.cfg.HedgeDelay
	}
	if s.cfg.HedgeDelay < 0 {
		return s.cfg.RequestTimeout // never fires inside the deadline
	}
	var p95 time.Duration
	for _, rep := range s.replicas {
		if v := rep.lat.Percentile(0.95); v > p95 {
			p95 = v
		}
	}
	d := 2 * p95
	if lo := 5 * time.Millisecond; d < lo {
		d = lo
	}
	if hi := s.cfg.RequestTimeout / 2; d > hi {
		d = hi
	}
	return d
}

// gatherShares fans out to the signer replicas and returns the first T key
// shares that agree on a refresh epoch. It starts T requests in parallel
// (rotating the starting replica for load balance, skipping replicas whose
// circuit breaker refuses), launches a replacement for every failure, and
// hedges stragglers: if the quorum is still incomplete after hedgeDelay, a
// spare request goes to the next untried replica. Shares are grouped by
// epoch so that a proactive refresh landing mid-gather yields a clean
// same-epoch quorum instead of an ErrMixedEpochs combination.
func (s *Server) gatherShares(ctx context.Context, id string) ([]*threshold.KeyShare, error) {
	n := len(s.replicas)
	type result struct {
		ks  *threshold.KeyShare
		err error
	}
	results := make(chan result, n)
	first := int(s.rr.Add(1))
	tried := 0
	launched := 0
	launch := func() bool {
		for tried < n {
			rep := s.replicas[(first+tried)%n]
			tried++
			if !rep.br.Allow() {
				continue
			}
			launched++
			s.metrics.shareRequests.Inc()
			go func() {
				shareCtx, cancel := context.WithTimeout(ctx, s.cfg.ShareTimeout)
				defer cancel()
				t0 := time.Now()
				ks, err := rep.issuer.Issue(shareCtx, id)
				if err != nil {
					if ctx.Err() != nil {
						// The gather as a whole ended; this tells us nothing
						// about the replica, so don't charge its breaker.
						results <- result{nil, ctx.Err()}
						return
					}
					rep.br.Record(false)
					rep.shareFailures.Inc()
					s.metrics.shareFailures.Inc()
					results <- result{nil, fmt.Errorf("%s: %w", rep.issuer.Name(), err)}
					return
				}
				rep.br.Record(true)
				rep.lat.Observe(time.Since(t0))
				results <- result{ks, nil}
			}()
			return true
		}
		return false
	}
	for i := 0; i < s.cfg.T; i++ {
		launch()
	}
	if launched == 0 {
		return nil, fmt.Errorf("no admissible replicas (all circuit breakers open)")
	}

	hedge := time.NewTimer(s.hedgeDelay())
	defer hedge.Stop()

	byEpoch := make(map[uint32][]*threshold.KeyShare)
	best := 0 // size of the largest same-epoch group
	outstanding := launched
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedge.C:
			if launch() {
				outstanding++
				s.metrics.hedgedRequests.Inc()
			}
		case r := <-results:
			outstanding--
			if r.err != nil {
				lastErr = r.err
				if launch() {
					outstanding++
				} else if outstanding == 0 {
					return nil, fmt.Errorf("quorum not reached, no replicas left: %w", lastErr)
				}
				continue
			}
			g := append(byEpoch[r.ks.Epoch], r.ks)
			byEpoch[r.ks.Epoch] = g
			if len(g) >= s.cfg.T {
				return g, nil
			}
			if len(byEpoch) > 1 && len(g) == 1 {
				s.metrics.epochConflicts.Inc()
			}
			if len(g) > best {
				best = len(g)
			}
			// Mixed epochs dilute the fan-out: keep enough requests in
			// flight to complete the largest same-epoch group.
			for best+outstanding < s.cfg.T && launch() {
				outstanding++
			}
			if outstanding == 0 {
				return nil, fmt.Errorf("replicas disagree on refresh epoch: %w", threshold.ErrMixedEpochs)
			}
		}
	}
}

// handleHealthz probes every replica concurrently with a short deadline and
// reports quorum: 200 when at least T replicas answer, 503 otherwise. The
// per-replica section carries probe latency and breaker state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ProbeTimeout)
	defer cancel()
	type probe struct {
		i  int
		up bool
		d  time.Duration
	}
	probes := make(chan probe, len(s.replicas))
	for i, rep := range s.replicas {
		go func(i int, rep *replica) {
			t0 := time.Now()
			err := rep.issuer.Healthy(ctx)
			d := time.Since(t0)
			if err != nil {
				rep.probeNanos.Store(-1)
			} else {
				rep.probeNanos.Store(d.Nanoseconds())
			}
			probes <- probe{i, err == nil, d}
		}(i, rep)
	}
	alive := 0
	rh := make([]replicaHealth, len(s.replicas))
	for range s.replicas {
		p := <-probes
		rep := s.replicas[p.i]
		micros := int64(-1)
		if p.up {
			alive++
			micros = p.d.Microseconds()
		}
		rh[p.i] = replicaHealth{
			Name:        rep.issuer.Name(),
			Up:          p.up,
			ProbeMicros: micros,
			Breaker:     rep.br.State().String(),
		}
	}
	h := healthResponse{Status: "ok", T: s.cfg.T, N: len(s.replicas), SignersUp: alive, Replicas: rh}
	status := http.StatusOK
	if alive < s.cfg.T {
		h.Status = "degraded: below quorum"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.writePrometheus(w)
	s.writeReplicaMetrics(w)
}

// writeReplicaMetrics renders the labeled per-replica series: breaker
// position and trip count, last probe latency, share-RPC failures.
func (s *Server) writeReplicaMetrics(w io.Writer) {
	fmt.Fprint(w, "# HELP kgcd_replica_breaker_state Circuit breaker position per replica (0 closed, 1 open, 2 half-open).\n# TYPE kgcd_replica_breaker_state gauge\n")
	for _, rep := range s.replicas {
		fmt.Fprintf(w, "kgcd_replica_breaker_state{replica=%q} %d\n", rep.issuer.Name(), rep.br.State())
	}
	fmt.Fprint(w, "# HELP kgcd_replica_breaker_opens_total Times each replica's circuit breaker tripped open.\n# TYPE kgcd_replica_breaker_opens_total counter\n")
	for _, rep := range s.replicas {
		fmt.Fprintf(w, "kgcd_replica_breaker_opens_total{replica=%q} %d\n", rep.issuer.Name(), rep.br.Opens())
	}
	fmt.Fprint(w, "# HELP kgcd_replica_probe_latency_seconds Last health-probe round-trip per replica (-1 = probe failed, 0 = never probed).\n# TYPE kgcd_replica_probe_latency_seconds gauge\n")
	for _, rep := range s.replicas {
		v := float64(rep.probeNanos.Load()) / 1e9
		if rep.probeNanos.Load() < 0 {
			v = -1
		}
		fmt.Fprintf(w, "kgcd_replica_probe_latency_seconds{replica=%q} %g\n", rep.issuer.Name(), v)
	}
	fmt.Fprint(w, "# HELP kgcd_replica_share_failures_total Share RPCs that errored, per replica.\n# TYPE kgcd_replica_share_failures_total counter\n")
	for _, rep := range s.replicas {
		fmt.Fprintf(w, "kgcd_replica_share_failures_total{replica=%q} %d\n", rep.issuer.Name(), rep.shareFailures.Value())
	}
}
