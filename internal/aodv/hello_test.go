package aodv

import (
	"testing"
	"time"

	"mccls/internal/radio"
	"mccls/internal/sim"
)

func TestHelloDisabledByDefault(t *testing.T) {
	s, _, ns := testNet(t, 2, Config{}, nil)
	s.Run(10 * time.Second)
	if ns[0].Stats.HelloSent != 0 {
		t.Fatal("HELLOs emitted although disabled")
	}
}

func TestHelloBeaconing(t *testing.T) {
	cfg := Config{HelloInterval: time.Second}
	s, _, ns := testNet(t, 2, cfg, nil)
	s.Run(10 * time.Second)
	if ns[0].Stats.HelloSent < 8 || ns[0].Stats.HelloSent > 11 {
		t.Fatalf("HelloSent = %d, want ≈10", ns[0].Stats.HelloSent)
	}
	// Beacons establish hop-1 routes without any data traffic.
	if hop, ok := ns[0].HasRoute(1); !ok || hop != 1 {
		t.Fatal("HELLO did not install neighbor route")
	}
}

func TestHelloDetectsDeadNeighborProactively(t *testing.T) {
	// Node 1 walks away after 1s; with HELLOs the broken link is noticed
	// within a few intervals, without sending any data over it.
	cfg := Config{HelloInterval: 500 * time.Millisecond}
	s := sim.New(7)
	m := radio.New(s, &breakableLink{}, radio.Config{})
	ns := make([]*Node, 3)
	for i := range ns {
		ns[i] = NewNode(i, s, m, cfg, NullAuth{})
	}
	// Establish a route 0 → 2 while the topology is intact.
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(time.Second)
	if delivered != 1 {
		t.Fatal("setup delivery failed")
	}
	// Node 1 leaves; by t=10s node 0 must have declared it lost and
	// invalidated the route — with no further data sends.
	s.Run(10 * time.Second)
	if ns[0].Stats.NeighborsLost == 0 {
		t.Fatal("dead neighbor never detected")
	}
	if _, ok := ns[0].HasRoute(2); ok {
		t.Fatal("route through dead neighbor still valid")
	}
}

func TestHelloAuthenticatedUnderMcCLS(t *testing.T) {
	// A non-enrolled node's HELLOs must be rejected: it cannot install
	// itself as a live neighbor.
	cfg := Config{HelloInterval: time.Second}
	s, _, ns := testNet(t, 2, cfg, rejectAuth{bad: 1})
	s.Run(5 * time.Second)
	if ns[0].Stats.AuthRejected == 0 {
		t.Fatal("unauthenticated HELLOs not rejected")
	}
	if _, ok := ns[0].HasRoute(1); ok {
		t.Fatal("attacker HELLO installed a route")
	}
	// The enrolled node's HELLOs still pass in the other direction.
	if _, ok := ns[1].HasRoute(0); !ok {
		t.Fatal("legitimate HELLO rejected")
	}
}

func TestHelloEncodeDistinct(t *testing.T) {
	a := &Hello{Seq: 1, Sender: 2}
	b := &Hello{Seq: 1, Sender: 3}
	c := &Hello{Seq: 2, Sender: 2}
	if string(a.Encode()) == string(b.Encode()) || string(a.Encode()) == string(c.Encode()) {
		t.Fatal("HELLO encodings collide")
	}
}
