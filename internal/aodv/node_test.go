package aodv

import (
	"testing"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// testNet builds a network of AODV nodes over a static line topology with
// 200m spacing (radio range 250m → only adjacent nodes are neighbors).
func testNet(t *testing.T, nodes int, cfg Config, auth Authenticator) (*sim.Simulator, *radio.Medium, []*Node) {
	t.Helper()
	pts := make([]mobility.Point, nodes)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i) * 200}
	}
	return testNetAt(t, &mobility.Static{Points: pts}, cfg, auth)
}

func testNetAt(t *testing.T, mob mobility.Model, cfg Config, auth Authenticator) (*sim.Simulator, *radio.Medium, []*Node) {
	t.Helper()
	s := sim.New(7)
	m := radio.New(s, mob, radio.Config{})
	if auth == nil {
		auth = NullAuth{}
	}
	ns := make([]*Node, mob.Nodes())
	for i := range ns {
		ns[i] = NewNode(i, s, m, cfg, auth)
	}
	return s, m, ns
}

func TestRouteDiscoveryAndDelivery(t *testing.T) {
	s, _, ns := testNet(t, 4, Config{}, nil)
	var got []*DataPacket
	ns[3].OnDeliver = func(p *DataPacket) { got = append(got, p) }
	ns[0].Send(3, 512)
	s.Run(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if got[0].Src != 0 || got[0].Dst != 3 || got[0].Bytes != 512 {
		t.Fatalf("bad packet: %+v", got[0])
	}
	// Forward route at source and reverse route at destination.
	if hop, ok := ns[0].HasRoute(3); !ok || hop != 1 {
		t.Fatalf("source route = (%d, %v), want via 1", hop, ok)
	}
	if hop, ok := ns[3].HasRoute(0); !ok || hop != 2 {
		t.Fatalf("dest reverse route = (%d, %v), want via 2", hop, ok)
	}
	if ns[0].Stats.RREQInitiated != 1 {
		t.Fatalf("RREQInitiated = %d", ns[0].Stats.RREQInitiated)
	}
	// Intermediates forwarded both the RREQ and the data.
	if ns[1].Stats.DataForwarded != 1 || ns[2].Stats.DataForwarded != 1 {
		t.Fatal("intermediates did not forward data")
	}
	// End-to-end delay was recorded at the destination.
	if ns[3].Stats.DelayCount != 1 || ns[3].Stats.DelaySum <= 0 {
		t.Fatalf("delay not recorded: %+v", ns[3].Stats)
	}
}

func TestSecondSendUsesCachedRoute(t *testing.T) {
	s, _, ns := testNet(t, 3, Config{}, nil)
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 100)
	s.Run(2 * time.Second)
	rreqsAfterFirst := ns[0].Stats.RREQInitiated
	ns[0].Send(2, 100)
	s.Run(4 * time.Second)
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if ns[0].Stats.RREQInitiated != rreqsAfterFirst {
		t.Fatal("second send re-discovered despite cached route")
	}
}

func TestDuplicateRREQSuppression(t *testing.T) {
	// Diamond: 0 reaches 1 and 2; both reach 3. Node 3 must process the
	// flood once per (origin, id) even though it hears two copies.
	pts := &mobility.Static{Points: []mobility.Point{
		{X: 0, Y: 100}, {X: 200, Y: 0}, {X: 200, Y: 200}, {X: 400, Y: 100},
	}}
	s, _, ns := testNetAt(t, pts, Config{}, nil)
	delivered := 0
	ns[3].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(3, 64)
	s.Run(3 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want exactly 1", delivered)
	}
	if ns[3].Stats.RREPOriginated != 1 {
		t.Fatalf("destination replied %d times, want 1", ns[3].Stats.RREPOriginated)
	}
}

func TestExpandingRingEscalation(t *testing.T) {
	// 6-hop line with TTLStart=1: the first ring cannot reach node 5, so
	// the discovery must retry with a wider ring and still succeed.
	cfg := Config{TTLStart: 1, TTLIncrement: 2, TTLThreshold: 3, NetDiameter: 10}
	s, _, ns := testNet(t, 6, cfg, nil)
	delivered := 0
	ns[5].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(5, 64)
	s.Run(20 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if ns[0].Stats.RREQRetried == 0 {
		t.Fatal("expected at least one ring escalation")
	}
}

func TestDiscoveryFailureDropsBuffered(t *testing.T) {
	// Node 2 is unreachable (500m away from the 0-1 pair).
	pts := &mobility.Static{Points: []mobility.Point{
		{X: 0}, {X: 200}, {X: 900},
	}}
	s, _, ns := testNetAt(t, pts, Config{}, nil)
	ns[0].Send(2, 64)
	ns[0].Send(2, 64)
	s.Run(30 * time.Second)
	if ns[0].Stats.DropNoRoute != 2 {
		t.Fatalf("DropNoRoute = %d, want 2", ns[0].Stats.DropNoRoute)
	}
	if _, ok := ns[0].HasRoute(2); ok {
		t.Fatal("phantom route to unreachable node")
	}
	// Retries happened (1 + RREQRetries attempts total).
	if ns[0].Stats.RREQRetried != uint64(ns[0].Config().RREQRetries) {
		t.Fatalf("RREQRetried = %d", ns[0].Stats.RREQRetried)
	}
}

func TestBufferOverflow(t *testing.T) {
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 900}}}
	cfg := Config{SendBufferCap: 4}
	s, _, ns := testNetAt(t, pts, cfg, nil)
	for i := 0; i < 10; i++ {
		ns[0].Send(1, 64)
	}
	s.Run(time.Second)
	if ns[0].Stats.DropBufferOverflow != 6 {
		t.Fatalf("DropBufferOverflow = %d, want 6", ns[0].Stats.DropBufferOverflow)
	}
}

func TestIntermediateReply(t *testing.T) {
	s, _, ns := testNet(t, 4, Config{}, nil)
	delivered := 0
	ns[3].OnDeliver = func(*DataPacket) { delivered++ }
	// Prime node 1 with a fresh route to 3 by running a discovery from it.
	ns[1].Send(3, 64)
	s.Run(2 * time.Second)
	if delivered != 1 {
		t.Fatal("priming send failed")
	}
	// Node 0's discovery should be answered by node 1 from cache: node 3
	// must originate no additional RREP.
	repliesBefore := ns[3].Stats.RREPOriginated
	ns[0].Send(3, 64)
	s.Run(4 * time.Second)
	if delivered != 2 {
		t.Fatal("second send not delivered")
	}
	if ns[3].Stats.RREPOriginated != repliesBefore {
		t.Fatal("destination replied although an intermediate had a fresh route")
	}
	if ns[1].Stats.RREPOriginated == 0 {
		t.Fatal("intermediate did not reply from cache")
	}
}

func TestDisableIntermediateReply(t *testing.T) {
	s, _, ns := testNet(t, 4, Config{DisableIntermediateReply: true}, nil)
	delivered := 0
	ns[3].OnDeliver = func(*DataPacket) { delivered++ }
	ns[1].Send(3, 64)
	s.Run(2 * time.Second)
	ns[0].Send(3, 64)
	s.Run(4 * time.Second)
	if delivered != 2 {
		t.Fatal("sends not delivered")
	}
	if ns[1].Stats.RREPOriginated != 0 {
		t.Fatal("intermediate replied although disabled")
	}
	if ns[3].Stats.RREPOriginated != 2 {
		t.Fatalf("destination originated %d RREPs, want 2", ns[3].Stats.RREPOriginated)
	}
}

// breakableLink places node 1 within range initially; it walks away after
// the first second, severing the 0-1 link.
type breakableLink struct{}

func (*breakableLink) Nodes() int { return 3 }

// Leg reports no trajectory information, exercising the radio medium's
// per-instant spatial-index fallback.
func (m *breakableLink) Leg(node int, ts time.Duration) (from, to mobility.Point, t0, t1 time.Duration) {
	p := m.Position(node, ts)
	return p, p, ts, ts
}

func (*breakableLink) Position(node int, ts time.Duration) mobility.Point {
	switch node {
	case 0:
		return mobility.Point{X: 0}
	case 1:
		x := 200.0
		if ts > time.Second {
			x += 20 * (ts - time.Second).Seconds() // 20 m/s away
		}
		return mobility.Point{X: x}
	default:
		return mobility.Point{X: 400}
	}
}

func TestLinkBreakTriggersRERRAndRediscovery(t *testing.T) {
	s, _, ns := testNetAt(t, &breakableLink{}, Config{}, nil)
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(time.Second)
	if delivered != 1 {
		t.Fatal("initial delivery failed")
	}
	// At t≈4s node 1 is ≈260m from 0: the link is broken. Sending again
	// must fail over the stale route and raise a link-break drop.
	s.Run(4 * time.Second)
	ns[0].Send(2, 64)
	s.Run(5 * time.Second)
	if ns[0].Stats.DropLinkBreak == 0 && ns[0].Stats.DropNoRoute == 0 {
		t.Fatalf("no link-break detected: %+v", ns[0].Stats)
	}
	if _, ok := ns[0].HasRoute(2); ok {
		t.Fatal("broken route still marked valid")
	}
}

func TestDataTTLExpiry(t *testing.T) {
	s, _, ns := testNet(t, 4, Config{DataTTL: 1}, nil)
	delivered := 0
	ns[3].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(3, 64)
	s.Run(5 * time.Second)
	if delivered != 0 {
		t.Fatal("packet with TTL 1 crossed 3 hops")
	}
	if ns[1].Stats.DropTTLExpired != 1 {
		t.Fatalf("DropTTLExpired = %d, want 1 at first hop", ns[1].Stats.DropTTLExpired)
	}
}

// rejectAuth rejects control packets from a specific node; everything else
// passes. It stands in for signature verification in unit tests.
type rejectAuth struct{ bad int }

func (a rejectAuth) Sign(node int, _ []byte) ([]byte, time.Duration, error) {
	return []byte{byte(node)}, 0, nil
}
func (a rejectAuth) Verify(node int, _, _ []byte) (bool, time.Duration) {
	return node != a.bad, 0
}
func (rejectAuth) Overhead() int { return 1 }

func TestAuthRejectionBlocksControl(t *testing.T) {
	// Node 1 is the only path 0→2 but fails authentication: discovery
	// must fail and the rejection must be counted.
	s, _, ns := testNet(t, 3, Config{}, rejectAuth{bad: 1})
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(20 * time.Second)
	if delivered != 0 {
		t.Fatal("data delivered through unauthenticated relay")
	}
	if ns[0].Stats.DropNoRoute == 0 {
		t.Fatal("discovery did not fail")
	}
	if ns[2].Stats.AuthRejected == 0 && ns[0].Stats.AuthRejected == 0 {
		t.Fatal("no auth rejections recorded")
	}
}

func TestSenderSpoofRejected(t *testing.T) {
	s, _, ns := testNet(t, 2, Config{}, nil)
	// Deliver a frame whose claimed Sender differs from the actual
	// transmitter: it must be dropped even under NullAuth.
	req := &RREQ{ID: 1, Origin: 5, Dest: 0, TTL: 3, Sender: 5}
	ns[1].handleFrame(0, req)
	s.Run(time.Second)
	if ns[1].Stats.AuthRejected != 1 {
		t.Fatalf("spoofed sender not rejected: %+v", ns[1].Stats)
	}
}

func TestSeqNewerRollover(t *testing.T) {
	if !seqNewer(1, 0) || seqNewer(0, 1) {
		t.Fatal("basic ordering broken")
	}
	if !seqNewer(0, ^uint32(0)) {
		t.Fatal("rollover not handled: 0 should be newer than 2^32-1")
	}
	if seqNewer(5, 5) {
		t.Fatal("equal sequence numbers are not newer")
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := Config{ActiveRouteTimeout: 500 * time.Millisecond, MyRouteTimeout: time.Second}
	s, _, ns := testNet(t, 3, cfg, nil)
	ns[0].Send(2, 64)
	s.Run(300 * time.Millisecond)
	if _, ok := ns[0].HasRoute(2); !ok {
		t.Fatal("route missing right after discovery window")
	}
	s.Run(10 * time.Second)
	if _, ok := ns[0].HasRoute(2); ok {
		t.Fatal("route survived well past its lifetime")
	}
}

func TestSelfSendDeliversLocally(t *testing.T) {
	s, _, ns := testNet(t, 2, Config{}, nil)
	delivered := 0
	ns[0].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(0, 10)
	s.Run(time.Second)
	if delivered != 1 || ns[0].Stats.DataDelivered != 1 {
		t.Fatal("loopback delivery failed")
	}
}

func TestUpdateRoutePrefersFresherSeq(t *testing.T) {
	s, _, ns := testNet(t, 2, Config{}, nil)
	_ = s
	n := ns[0]
	n.updateRoute(9, 1, 3, 10, true, time.Minute)
	// Older sequence number must not displace the entry.
	n.updateRoute(9, 1, 1, 5, true, time.Minute)
	if e := n.route(9); e == nil || e.destSeq != 10 || e.hops != 3 {
		t.Fatalf("stale update applied: %+v", e)
	}
	// Same seq, fewer hops wins.
	n.updateRoute(9, 1, 2, 10, true, time.Minute)
	if e := n.route(9); e == nil || e.hops != 2 {
		t.Fatalf("shorter path not adopted: %+v", e)
	}
	// Newer seq wins even with more hops.
	n.updateRoute(9, 1, 7, 11, true, time.Minute)
	if e := n.route(9); e == nil || e.destSeq != 11 || e.hops != 7 {
		t.Fatalf("fresher seq not adopted: %+v", e)
	}
}
