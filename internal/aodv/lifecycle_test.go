package aodv

import (
	"errors"
	"testing"
	"time"
)

func TestCrashDropsTrafficAndRestartRecovers(t *testing.T) {
	// 0—1—2 line: node 1 is the only relay.
	s, m, ns := testNet(t, 3, Config{}, nil)
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }

	ns[0].Send(2, 64)
	s.Run(2 * time.Second)
	if delivered != 1 {
		t.Fatalf("pre-crash delivery = %d, want 1", delivered)
	}

	if !ns[1].Down() {
		t.Fatal("Down on a live node must report a transition")
	}
	if ns[1].Down() {
		t.Fatal("Down on a down node must be a no-op")
	}
	if !ns[1].IsDown() || !m.NodeDown(1) {
		t.Fatal("crash not reflected in node and medium state")
	}

	// With the relay dead the source must detect the break (no MAC ACK)
	// and fail discovery; nothing arrives.
	ns[0].Send(2, 64)
	s.Run(22 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivery through a crashed relay: %d", delivered)
	}
	if ns[1].Stats.Crashes != 1 {
		t.Fatalf("Crashes = %d", ns[1].Stats.Crashes)
	}

	// Restart with a cold boot: traffic flows again via fresh discovery.
	if !ns[1].Up(false) {
		t.Fatal("Up on a down node must report a transition")
	}
	if ns[1].Up(false) {
		t.Fatal("Up on a live node must be a no-op")
	}
	ns[0].Send(2, 64)
	s.Run(30 * time.Second)
	if delivered != 2 {
		t.Fatalf("post-restart delivery = %d, want 2", delivered)
	}
	if ns[1].Stats.Restarts != 1 {
		t.Fatalf("Restarts = %d", ns[1].Stats.Restarts)
	}
}

func TestRestartRetainsOrFlushesRoutes(t *testing.T) {
	s, _, ns := testNet(t, 3, Config{}, nil)
	ns[0].Send(2, 64)
	s.Run(time.Second)
	if _, ok := ns[1].HasRoute(2); !ok {
		t.Fatal("relay has no route before crash")
	}

	ns[1].Down()
	ns[1].Up(true)
	if _, ok := ns[1].HasRoute(2); !ok {
		t.Fatal("warm restart must retain routing state")
	}

	ns[1].Down()
	ns[1].Up(false)
	if _, ok := ns[1].HasRoute(2); ok {
		t.Fatal("cold restart must flush routing state")
	}
}

func TestCrashCancelsHelloTimers(t *testing.T) {
	s, _, ns := testNet(t, 2, Config{HelloInterval: time.Second}, nil)
	s.Run(3 * time.Second)
	sent := ns[0].Stats.HelloSent
	if sent == 0 {
		t.Fatal("no HELLOs before crash")
	}
	ns[0].Down()
	s.Run(8 * time.Second)
	if ns[0].Stats.HelloSent != sent {
		t.Fatalf("crashed node kept beaconing: %d → %d", sent, ns[0].Stats.HelloSent)
	}
	ns[0].Up(false)
	s.Run(13 * time.Second)
	if ns[0].Stats.HelloSent <= sent {
		t.Fatal("restarted node never resumed beaconing")
	}
}

func TestDownNodeDropsInFlightFrames(t *testing.T) {
	// The medium stops offering frames to a down node at transmission
	// start, but a frame already in flight still arrives at the dead
	// radio; model that arrival directly.
	_, _, ns := testNet(t, 2, Config{}, nil)
	ns[1].Down()
	ns[1].handleFrame(0, &DataPacket{Src: 0, Dst: 1, Bytes: 64, TTL: 32})
	if ns[1].Stats.DataDelivered != 0 {
		t.Fatal("down node accepted a frame")
	}
	if ns[1].Stats.DropNodeDown != 1 {
		t.Fatalf("DropNodeDown = %d, want 1", ns[1].Stats.DropNodeDown)
	}
}

// errAuth fails every signing attempt for one node; everyone else passes.
type errAuth struct{ bad int }

func (a errAuth) Sign(node int, _ []byte) ([]byte, time.Duration, error) {
	if node == a.bad {
		return nil, 0, errors.New("rng broken")
	}
	return []byte{1}, 0, nil
}
func (errAuth) Verify(int, []byte, []byte) (bool, time.Duration) { return true, 0 }
func (errAuth) Overhead() int                                    { return 1 }

func TestSignFailureCountedAndPacketDropped(t *testing.T) {
	s, _, ns := testNet(t, 3, Config{}, errAuth{bad: 0})
	ns[0].Send(2, 64)
	s.Run(20 * time.Second)
	if ns[0].Stats.SignFailures == 0 {
		t.Fatal("sign failures not counted")
	}
	// The RREQ never left the node: no neighbor saw the flood.
	if ns[1].Stats.RREQForwarded != 0 || ns[1].Stats.AuthRejected != 0 {
		t.Fatal("unsigned RREQ escaped the failing signer")
	}
	if ns[2].Stats.DataDelivered != 0 {
		t.Fatal("data delivered without a signable route")
	}
}
