// Package aodv implements the Ad hoc On-Demand Distance Vector routing
// protocol (the RFC 3561 core: ring-search route discovery, reverse and
// forward path setup, sequence-numbered routes, intermediate-node replies,
// route maintenance with RERR, and data buffering during discovery) on top
// of the discrete-event simulator. It retains the mechanisms the paper
// lists — "route discovery, reverse path setup, forwarding path setup,
// route maintenance" — and exposes the hook points its evaluation needs:
// a pluggable control-packet Authenticator (McCLS-AODV) and behaviour hooks
// for implementing the black hole and rushing attackers.
//
// Simplifications relative to the full RFC, chosen because they do not
// affect the paper's metrics: no HELLO beacons (link breaks are detected by
// link-layer unicast failure), no precursor lists (RERRs are one-hop
// broadcast), and no local repair.
package aodv

import (
	"encoding/binary"
	"time"
)

// Message kinds, used in canonical encodings.
const (
	kindRREQ  = 1
	kindRREP  = 2
	kindRERR  = 3
	kindData  = 4
	kindHello = 5
)

// Wire sizes in bytes (protocol fields plus IP/MAC framing), matching the
// figures commonly used in AODV simulation studies. Authenticated variants
// add Authenticator.Overhead().
const (
	rreqWireSize     = 52
	rrepWireSize     = 48
	rerrWireSize     = 40
	dataWireOverhead = 52
)

// RREQ is a route request, flooded with an expanding TTL ring.
type RREQ struct {
	ID        uint32 // per-originator request id (duplicate suppression)
	Origin    int
	OriginSeq uint32
	Dest      int
	DestSeq   uint32 // last known destination sequence number
	SeqKnown  bool   // whether DestSeq is meaningful
	HopCount  int
	TTL       int

	// Sender is the transmitting node of this hop (hop-by-hop
	// authentication covers the transmitter, not just the originator).
	Sender int
	// Auth is the transmitter's authentication tag over Encode().
	Auth []byte
}

// RREP is a route reply, unicast hop-by-hop along the reverse path.
type RREP struct {
	Origin   int // the RREQ originator the reply travels to
	Dest     int // the destination the route is for
	DestSeq  uint32
	HopCount int
	Lifetime time.Duration

	Sender int
	Auth   []byte
}

// RERR reports broken routes; one-hop broadcast by the node that detected
// the break.
type RERR struct {
	// Unreachable lists destinations now unreachable through the sender,
	// with their last known sequence numbers (incremented per the RFC).
	Unreachable []UnreachableDest

	Sender int
	Auth   []byte
}

// UnreachableDest is one (destination, sequence) pair in a RERR.
type UnreachableDest struct {
	Dest    int
	DestSeq uint32
}

// DataPacket is an application payload being routed. Data packets are not
// signed (the paper authenticates routing control only).
type DataPacket struct {
	ID      uint64
	Src     int
	Dst     int
	Bytes   int // application payload size
	SentAt  time.Duration
	TTL     int
	HopsFwd int
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendInt(dst []byte, v int) []byte { return appendU32(dst, uint32(int32(v))) }

// Encode returns the canonical byte encoding of the RREQ as transmitted by
// Sender (everything except Auth). This is the payload authenticated
// hop-by-hop: it includes the mutable HopCount/TTL, so a forwarder signs
// exactly what it sends and tampering anywhere is detected at the next hop.
func (r *RREQ) Encode() []byte {
	out := []byte{kindRREQ}
	out = appendU32(out, r.ID)
	out = appendInt(out, r.Origin)
	out = appendU32(out, r.OriginSeq)
	out = appendInt(out, r.Dest)
	out = appendU32(out, r.DestSeq)
	if r.SeqKnown {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendInt(out, r.HopCount)
	out = appendInt(out, r.TTL)
	out = appendInt(out, r.Sender)
	return out
}

// Encode returns the canonical byte encoding of the RREP (everything except
// Auth).
func (r *RREP) Encode() []byte {
	out := []byte{kindRREP}
	out = appendInt(out, r.Origin)
	out = appendInt(out, r.Dest)
	out = appendU32(out, r.DestSeq)
	out = appendInt(out, r.HopCount)
	out = appendU32(out, uint32(r.Lifetime/time.Millisecond))
	out = appendInt(out, r.Sender)
	return out
}

// Encode returns the canonical byte encoding of the RERR (everything except
// Auth).
func (r *RERR) Encode() []byte {
	out := []byte{kindRERR}
	out = appendInt(out, len(r.Unreachable))
	for _, u := range r.Unreachable {
		out = appendInt(out, u.Dest)
		out = appendU32(out, u.DestSeq)
	}
	out = appendInt(out, r.Sender)
	return out
}

// wireSize returns the on-air size of the RERR given the authenticator
// overhead.
func (r *RERR) wireSize(overhead int) int {
	return rerrWireSize + 12*max(0, len(r.Unreachable)-1) + overhead
}

// Authenticator authenticates AODV control packets. Implementations live in
// package secrouting: a null authenticator (plain AODV), the real McCLS
// signer/verifier, and a calibrated cost model that injects the measured
// crypto latencies without doing the math (see DESIGN.md §1).
type Authenticator interface {
	// Sign produces an authentication tag for payload as transmitted by
	// node, and reports the processing delay signing costs. A non-nil
	// error means no usable tag could be produced (e.g. the signer's
	// randomness source failed); callers count the failure and drop the
	// packet instead of transmitting an unverifiable tag.
	Sign(node int, payload []byte) (auth []byte, delay time.Duration, err error)
	// Verify checks the tag produced by node over payload, and reports
	// the processing delay verification costs.
	Verify(node int, payload, auth []byte) (ok bool, delay time.Duration)
	// Overhead is the per-control-packet size increase in bytes.
	Overhead() int
}

// NullAuth is the no-op authenticator used by plain AODV: every packet
// passes, costs nothing and adds no bytes.
type NullAuth struct{}

var _ Authenticator = NullAuth{}

// Sign returns an empty tag at zero cost.
func (NullAuth) Sign(int, []byte) ([]byte, time.Duration, error) { return nil, 0, nil }

// Verify accepts everything at zero cost.
func (NullAuth) Verify(int, []byte, []byte) (bool, time.Duration) { return true, 0 }

// Overhead is zero.
func (NullAuth) Overhead() int { return 0 }
