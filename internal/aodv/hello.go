package aodv

import "time"

// HELLO beaconing (RFC 3561 §6.9): with Config.HelloInterval > 0, every
// node periodically broadcasts a one-hop HELLO; hearing any frame from a
// neighbor refreshes its liveness, and a neighbor silent for
// AllowedHelloLoss intervals is declared lost, proactively invalidating
// routes through it instead of waiting for a unicast data failure.
//
// HELLOs are control packets: under McCLS-AODV they are signed and
// verified like RREQ/RREP, so an attacker cannot keep a phantom neighbor
// alive.

// Hello is a one-hop liveness beacon.
type Hello struct {
	Seq uint32

	Sender int
	Auth   []byte
}

// helloWireSize is the on-air size of a HELLO before authentication
// overhead (an RREP-shaped packet per the RFC).
const helloWireSize = rrepWireSize

// Encode returns the canonical byte encoding of the HELLO (everything
// except Auth).
func (h *Hello) Encode() []byte {
	out := []byte{kindHello}
	out = appendU32(out, h.Seq)
	out = appendInt(out, h.Sender)
	return out
}

// helloLoop emits one HELLO, sweeps for silent neighbors, and reschedules
// itself.
func (n *Node) helloLoop() {
	if n.cfg.HelloInterval <= 0 {
		return
	}
	n.sendHello()
	n.sweepNeighbors()
	n.schedule(n.cfg.HelloInterval, n.helloLoop)
}

// sendHello signs and broadcasts one beacon.
func (n *Node) sendHello() {
	h := &Hello{Seq: n.seq, Sender: n.ID}
	auth, delay, err := n.auth.Sign(n.ID, h.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	h.Auth = auth
	n.Stats.HelloSent++
	n.schedule(delay, func() {
		n.medium.Broadcast(n.ID, helloWireSize+n.auth.Overhead(), h)
	})
}

// heard records liveness of a one-hop neighbor.
func (n *Node) heard(neighbor int) {
	if n.cfg.HelloInterval > 0 {
		n.lastHeard[neighbor] = n.sim.Now()
	}
}

// sweepNeighbors declares neighbors lost after AllowedHelloLoss silent
// intervals and tears down routes through them.
func (n *Node) sweepNeighbors() {
	deadline := time.Duration(n.cfg.AllowedHelloLoss) * n.cfg.HelloInterval
	now := n.sim.Now()
	for neighbor, at := range n.lastHeard {
		if now-at <= deadline {
			continue
		}
		delete(n.lastHeard, neighbor)
		n.Stats.NeighborsLost++
		n.linkBroken(neighbor)
	}
}

// processHello refreshes the neighbor's liveness and hop-1 route.
func (n *Node) processHello(from int, h Hello) {
	lifetime := time.Duration(n.cfg.AllowedHelloLoss) * n.cfg.HelloInterval
	if lifetime <= 0 {
		lifetime = n.cfg.ActiveRouteTimeout
	}
	n.updateRoute(from, from, 1, h.Seq, true, lifetime)
	n.heard(from)
}
