package aodv

import (
	"time"

	"mccls/internal/radio"
	"mccls/internal/sim"
)

// Config holds the AODV protocol parameters. Zero values select the
// defaults below, which follow RFC 3561 scaled to the paper's 20-node
// field.
type Config struct {
	// ActiveRouteTimeout is the lifetime of a route refreshed by use
	// (default 3s).
	ActiveRouteTimeout time.Duration
	// MyRouteTimeout is the lifetime a destination advertises in its own
	// RREPs (default 6s).
	MyRouteTimeout time.Duration
	// NodeTraversalTime is the per-hop latency estimate used to size
	// discovery timeouts (default 40ms).
	NodeTraversalTime time.Duration
	// NetDiameter bounds the network in hops (default 12).
	NetDiameter int
	// RREQRetries is how many times a failed discovery is retried
	// (default 2).
	RREQRetries int
	// TTLStart, TTLIncrement and TTLThreshold drive the expanding-ring
	// search (defaults 2, 2, 7). Once TTL passes TTLThreshold the search
	// floods at NetDiameter.
	TTLStart, TTLIncrement, TTLThreshold int
	// RebroadcastJitterMax is the maximum uniform delay before
	// rebroadcasting an RREQ (default 25ms, the flood-damping delay AODV
	// implementations add to reduce broadcast collisions). This
	// randomized delay is the lever the rushing attack exploits: an
	// attacker that forwards with zero jitter wins the
	// duplicate-suppression race.
	RebroadcastJitterMax time.Duration
	// DataTTL is the hop limit on data packets (default 32).
	DataTTL int
	// SendBufferCap bounds the number of data packets buffered per
	// destination during discovery (default 64).
	SendBufferCap int
	// AllowIntermediateReply lets nodes with a fresh-enough cached route
	// answer RREQs (default true, per the RFC; the black hole attack
	// abuses exactly this mechanism). Set DisableIntermediateReply to
	// turn it off.
	DisableIntermediateReply bool
	// HelloInterval enables periodic one-hop HELLO beacons (RFC 3561
	// §6.9) for proactive link-failure detection. 0 (the default)
	// disables beaconing; link breaks are then detected on unicast
	// failure only.
	HelloInterval time.Duration
	// AllowedHelloLoss is how many silent HELLO intervals mark a
	// neighbor as lost (default 2, per the RFC).
	AllowedHelloLoss int
}

func (c Config) withDefaults() Config {
	if c.ActiveRouteTimeout == 0 {
		c.ActiveRouteTimeout = 3 * time.Second
	}
	if c.MyRouteTimeout == 0 {
		c.MyRouteTimeout = 2 * c.ActiveRouteTimeout
	}
	if c.NodeTraversalTime == 0 {
		c.NodeTraversalTime = 40 * time.Millisecond
	}
	if c.NetDiameter == 0 {
		c.NetDiameter = 12
	}
	if c.RREQRetries == 0 {
		c.RREQRetries = 2
	}
	if c.TTLStart == 0 {
		c.TTLStart = 2
	}
	if c.TTLIncrement == 0 {
		c.TTLIncrement = 2
	}
	if c.TTLThreshold == 0 {
		c.TTLThreshold = 7
	}
	if c.RebroadcastJitterMax == 0 {
		c.RebroadcastJitterMax = 25 * time.Millisecond
	}
	if c.DataTTL == 0 {
		c.DataTTL = 32
	}
	if c.SendBufferCap == 0 {
		c.SendBufferCap = 64
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	return c
}

// ringTraversalTime is the discovery timeout for a given search TTL.
func (c Config) ringTraversalTime(ttl int) time.Duration {
	return 2 * c.NodeTraversalTime * time.Duration(ttl+2)
}

// Stats counts per-node protocol events. The paper's four metrics are
// computed from these by package metrics.
type Stats struct {
	DataSent      uint64 // originated by this node
	DataDelivered uint64 // received here as final destination
	DataForwarded uint64

	RREQInitiated  uint64
	RREQRetried    uint64
	RREQForwarded  uint64
	RREPOriginated uint64
	RREPForwarded  uint64
	RERRSent       uint64
	HelloSent      uint64
	NeighborsLost  uint64 // neighbors declared dead by HELLO loss

	AuthRejected uint64 // control packets dropped for bad authentication
	SignFailures uint64 // control packets not sent because signing failed

	Crashes  uint64 // Down transitions (fault injection)
	Restarts uint64 // Up transitions

	DropNoRoute        uint64
	DropBufferOverflow uint64
	DropLinkBreak      uint64
	DropTTLExpired     uint64
	DropByAttacker     uint64 // data absorbed by this node acting maliciously
	DropNodeDown       uint64 // frames discarded because this node was down

	DelaySum   time.Duration // end-to-end, summed at this destination
	DelayCount uint64
}

// Hooks customize node behaviour; the attack package uses them to implement
// the black hole and rushing adversaries, and tests use them for fault
// injection. Nil fields select default behaviour.
type Hooks struct {
	// OnRREQ runs after duplicate suppression and authentication. Return
	// false to suppress default RREQ processing.
	OnRREQ func(n *Node, from int, req *RREQ) bool
	// FilterData is consulted before forwarding a data packet. Return
	// false to silently absorb it (counted as DropByAttacker).
	FilterData func(n *Node, pkt *DataPacket) bool
	// RebroadcastJitter overrides the default uniform jitter draw.
	RebroadcastJitter func(n *Node) time.Duration
	// SkipVerify disables authentication checks on received control
	// packets (an attacker does not care whether packets verify).
	SkipVerify bool
}

// routeEntry is one row of the routing table.
type routeEntry struct {
	nextHop  int
	hops     int
	destSeq  uint32
	validSeq bool
	expires  sim.Time
	valid    bool
}

func (e *routeEntry) usable(now sim.Time) bool {
	return e != nil && e.valid && e.expires > now
}

type seenKey struct {
	origin int
	id     uint32
}

// discovery tracks an in-progress route discovery.
type discovery struct {
	attempts int
	ttl      int
	gen      int // invalidates stale timeout events
}

// Node is one AODV router plus its application endpoint.
type Node struct {
	// ID is the node's address (its index in the medium).
	ID int

	sim    *sim.Simulator
	medium *radio.Medium
	cfg    Config
	auth   Authenticator

	seq     uint32
	rreqID  uint32
	nextPkt uint64

	routes    map[int]*routeEntry
	seen      map[seenKey]sim.Time
	pending   map[int]*discovery
	buffer    map[int][]*DataPacket
	lastHeard map[int]sim.Time

	// down marks a crashed node; epoch invalidates every timer armed
	// before the crash (the event queue has no unschedule, so armed
	// closures re-check the epoch they captured and fall through).
	down  bool
	epoch uint64

	// Hooks customize behaviour (attacks, fault injection).
	Hooks Hooks
	// OnDeliver, if set, observes every data packet delivered here.
	OnDeliver func(*DataPacket)
	// OnRestart, if set, runs after Up restores the node (the secure
	// routing layer uses it to re-enroll with the KGC after key loss).
	OnRestart func(*Node)
	// Stats accumulates protocol counters.
	Stats Stats
}

// NewNode creates an AODV agent for node id and registers it with the
// medium.
func NewNode(id int, s *sim.Simulator, medium *radio.Medium, cfg Config, auth Authenticator) *Node {
	n := &Node{
		ID:        id,
		sim:       s,
		medium:    medium,
		cfg:       cfg.withDefaults(),
		auth:      auth,
		routes:    make(map[int]*routeEntry),
		seen:      make(map[seenKey]sim.Time),
		pending:   make(map[int]*discovery),
		buffer:    make(map[int][]*DataPacket),
		lastHeard: make(map[int]sim.Time),
	}
	medium.SetHandler(id, n.handleFrame)
	if n.cfg.HelloInterval > 0 {
		// Desynchronize the beacon phase across nodes.
		offset := time.Duration(s.Rand().Int63n(int64(n.cfg.HelloInterval)))
		n.schedule(offset, n.helloLoop)
	}
	return n
}

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Seq returns the node's current sequence number.
func (n *Node) Seq() uint32 { return n.seq }

// seqNewer reports whether a is strictly fresher than b under RFC 3561
// rollover arithmetic.
func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// ---------------------------------------------------------------------------
// Crash/restart lifecycle (fault injection)

// schedule arms fn after d of virtual time, tagged with the node's current
// epoch: if the node crashes before the event fires, the closure is a no-op.
// All node-internal timers (discovery retries, sign/verify delays, hello
// beacons, rebroadcast jitter) go through this wrapper.
func (n *Node) schedule(d time.Duration, fn func()) {
	epoch := n.epoch
	n.sim.Schedule(d, func() {
		if n.epoch != epoch || n.down {
			return
		}
		fn()
	})
}

// IsDown reports whether the node is currently crashed.
func (n *Node) IsDown() bool { return n.down }

// Down crashes the node: armed timers are invalidated, in-flight receptions
// (verify delays already scheduled) are dropped, buffered data and pending
// discoveries are lost, and the radio stops receiving. Routing state is kept
// in memory so Up can choose to retain or flush it. Returns false if the
// node was already down.
func (n *Node) Down() bool {
	if n.down {
		return false
	}
	n.down = true
	n.epoch++
	n.Stats.Crashes++
	// Volatile protocol state dies with the process.
	n.pending = make(map[int]*discovery)
	n.buffer = make(map[int][]*DataPacket)
	n.lastHeard = make(map[int]sim.Time)
	n.medium.SetNodeDown(n.ID, true)
	return true
}

// Up restarts a crashed node. With retainRoutes the routing table survives
// (modelling persisted state, which deliberately leaves stale routes for the
// RERR machinery to discover); without it the table and duplicate cache are
// flushed, as after a cold boot. The sequence number is kept monotonic
// either way (RFC 3561 §6.1 requires it survive reboots, else the node's
// own RREPs would lose every freshness comparison). Returns false if the
// node was not down.
func (n *Node) Up(retainRoutes bool) bool {
	if !n.down {
		return false
	}
	n.down = false
	n.Stats.Restarts++
	if !retainRoutes {
		n.routes = make(map[int]*routeEntry)
		n.seen = make(map[seenKey]sim.Time)
	}
	n.medium.SetNodeDown(n.ID, false)
	if n.cfg.HelloInterval > 0 {
		offset := time.Duration(n.sim.Rand().Int63n(int64(n.cfg.HelloInterval)))
		n.schedule(offset, n.helloLoop)
	}
	if n.OnRestart != nil {
		n.OnRestart(n)
	}
	return true
}

// ---------------------------------------------------------------------------
// Routing table

// updateRoute applies the RFC route-update rules and returns whether the
// entry was replaced.
func (n *Node) updateRoute(dest, nextHop, hops int, seq uint32, seqKnown bool, lifetime time.Duration) bool {
	now := n.sim.Now()
	e := n.routes[dest]
	if e == nil {
		n.routes[dest] = &routeEntry{
			nextHop: nextHop, hops: hops, destSeq: seq, validSeq: seqKnown,
			expires: now + lifetime, valid: true,
		}
		return true
	}
	accept := false
	switch {
	case !e.usable(now):
		accept = true
	case seqKnown && e.validSeq && seqNewer(seq, e.destSeq):
		accept = true
	case seqKnown && e.validSeq && seq == e.destSeq && hops < e.hops:
		accept = true
	case seqKnown && !e.validSeq:
		accept = true
	case !seqKnown:
		// Only refresh the lifetime of the same path.
		if e.nextHop == nextHop && hops >= e.hops {
			if exp := now + lifetime; exp > e.expires {
				e.expires = exp
			}
		}
	}
	if !accept {
		return false
	}
	e.nextHop, e.hops, e.expires, e.valid = nextHop, hops, now+lifetime, true
	if seqKnown {
		e.destSeq, e.validSeq = seq, true
	}
	return true
}

// route returns the usable routing entry for dest, or nil.
func (n *Node) route(dest int) *routeEntry {
	e := n.routes[dest]
	if !e.usable(n.sim.Now()) {
		return nil
	}
	return e
}

// HasRoute reports whether the node currently holds a usable route to dest,
// and its next hop. Exposed for tests and attack implementations.
func (n *Node) HasRoute(dest int) (nextHop int, ok bool) {
	if e := n.route(dest); e != nil {
		return e.nextHop, true
	}
	return 0, false
}

// touch refreshes the lifetime of an active route.
func (n *Node) touch(dest int) {
	if e := n.route(dest); e != nil {
		if exp := n.sim.Now() + n.cfg.ActiveRouteTimeout; exp > e.expires {
			e.expires = exp
		}
	}
}

// invalidateVia marks every route using hop as next hop invalid and returns
// the affected destinations with incremented sequence numbers.
func (n *Node) invalidateVia(hop int) []UnreachableDest {
	var out []UnreachableDest
	for dest, e := range n.routes {
		if e.valid && e.nextHop == hop {
			e.valid = false
			e.destSeq++
			out = append(out, UnreachableDest{Dest: dest, DestSeq: e.destSeq})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Application interface

// Send originates a data packet of the given payload size toward dst,
// buffering it and starting route discovery if necessary.
func (n *Node) Send(dst, bytes int) {
	n.Stats.DataSent++
	if n.down {
		// Offered load during an outage counts against delivery ratio.
		n.Stats.DropNodeDown++
		return
	}
	pkt := &DataPacket{
		ID:     uint64(n.ID)<<40 | n.nextPkt,
		Src:    n.ID,
		Dst:    dst,
		Bytes:  bytes,
		SentAt: n.sim.Now(),
		TTL:    n.cfg.DataTTL,
	}
	n.nextPkt++
	if dst == n.ID {
		n.deliver(pkt)
		return
	}
	if e := n.route(dst); e != nil {
		n.transmitData(pkt, e)
		return
	}
	n.enqueue(pkt)
	n.startDiscovery(dst)
}

// enqueue buffers a packet awaiting route discovery.
func (n *Node) enqueue(pkt *DataPacket) {
	q := n.buffer[pkt.Dst]
	if len(q) >= n.cfg.SendBufferCap {
		n.Stats.DropBufferOverflow++
		return
	}
	n.buffer[pkt.Dst] = append(q, pkt)
}

// deliver hands a packet to the application layer.
func (n *Node) deliver(pkt *DataPacket) {
	n.Stats.DataDelivered++
	n.Stats.DelaySum += n.sim.Now() - pkt.SentAt
	n.Stats.DelayCount++
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
}

// transmitData unicasts a data packet along a routing entry, handling
// link-break detection.
func (n *Node) transmitData(pkt *DataPacket, e *routeEntry) {
	if !n.medium.Unicast(n.ID, e.nextHop, pkt.Bytes+dataWireOverhead, pkt) {
		n.linkBroken(e.nextHop)
		n.Stats.DropLinkBreak++
		return
	}
	n.touch(pkt.Dst)
	n.touch(e.nextHop)
}

// linkBroken invalidates routes through a dead neighbor and advertises the
// breakage.
func (n *Node) linkBroken(hop int) {
	lost := n.invalidateVia(hop)
	if len(lost) == 0 {
		return
	}
	n.sendRERR(lost)
}

// ---------------------------------------------------------------------------
// Discovery

// startDiscovery begins (or joins) a route discovery for dst.
func (n *Node) startDiscovery(dst int) {
	if _, inProgress := n.pending[dst]; inProgress {
		return
	}
	d := &discovery{attempts: 1, ttl: n.cfg.TTLStart}
	n.pending[dst] = d
	n.Stats.RREQInitiated++
	n.issueRREQ(dst, d)
}

// issueRREQ broadcasts one RREQ round for dst and arms the retry timer.
func (n *Node) issueRREQ(dst int, d *discovery) {
	n.seq++
	n.rreqID++
	req := &RREQ{
		ID:        n.rreqID,
		Origin:    n.ID,
		OriginSeq: n.seq,
		Dest:      dst,
		HopCount:  0,
		TTL:       d.ttl,
	}
	if e := n.routes[dst]; e != nil && e.validSeq {
		req.DestSeq, req.SeqKnown = e.destSeq, true
	}
	// Suppress our own flooded copy.
	n.seen[seenKey{origin: n.ID, id: req.ID}] = n.sim.Now()
	n.sendRREQ(req)

	gen := d.gen
	n.schedule(n.cfg.ringTraversalTime(d.ttl), func() {
		cur, ok := n.pending[dst]
		if !ok || cur.gen != gen {
			return // satisfied or superseded
		}
		if cur.attempts > n.cfg.RREQRetries {
			// Discovery failed: drop everything buffered for dst.
			n.Stats.DropNoRoute += uint64(len(n.buffer[dst]))
			delete(n.buffer, dst)
			delete(n.pending, dst)
			return
		}
		cur.attempts++
		cur.gen++
		cur.ttl += n.cfg.TTLIncrement
		if cur.ttl > n.cfg.TTLThreshold {
			cur.ttl = n.cfg.NetDiameter
		}
		n.Stats.RREQRetried++
		n.issueRREQ(dst, cur)
	})
}

// discoveryComplete flushes the send buffer once a route to dst appears.
func (n *Node) discoveryComplete(dst int) {
	if _, ok := n.pending[dst]; ok {
		cur := n.pending[dst]
		cur.gen++ // disarm outstanding timer
		delete(n.pending, dst)
	}
	e := n.route(dst)
	if e == nil {
		return
	}
	for _, pkt := range n.buffer[dst] {
		n.transmitData(pkt, e)
	}
	delete(n.buffer, dst)
}

// ---------------------------------------------------------------------------
// Control-packet transmission

// sendRREQ signs and broadcasts an RREQ as this node.
func (n *Node) sendRREQ(req *RREQ) {
	req.Sender = n.ID
	auth, delay, err := n.auth.Sign(n.ID, req.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	req.Auth = auth
	n.schedule(delay, func() {
		n.medium.Broadcast(n.ID, rreqWireSize+n.auth.Overhead(), req)
	})
}

// SendRREP signs an RREP as this node and unicasts it to the given next
// hop. Exported because attack behaviours forge replies through it.
func (n *Node) SendRREP(to int, rep *RREP) bool {
	rep.Sender = n.ID
	auth, delay, err := n.auth.Sign(n.ID, rep.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return false
	}
	rep.Auth = auth
	size := rrepWireSize + n.auth.Overhead()
	if !n.medium.InRange(n.ID, to) {
		n.linkBroken(to)
		return false
	}
	n.schedule(delay, func() {
		n.medium.Unicast(n.ID, to, size, rep)
	})
	return true
}

// sendRERR signs and broadcasts a route-error report.
func (n *Node) sendRERR(lost []UnreachableDest) {
	rerr := &RERR{Unreachable: lost, Sender: n.ID}
	auth, delay, err := n.auth.Sign(n.ID, rerr.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	rerr.Auth = auth
	n.Stats.RERRSent++
	n.schedule(delay, func() {
		n.medium.Broadcast(n.ID, rerr.wireSize(n.auth.Overhead()), rerr)
	})
}

// ---------------------------------------------------------------------------
// Receive path

// handleFrame dispatches frames delivered by the medium. Broadcast frames
// share one message value among receivers, so every branch copies before
// mutating.
func (n *Node) handleFrame(from int, payload any) {
	if n.down {
		n.Stats.DropNodeDown++
		return
	}
	n.heard(from)
	switch msg := payload.(type) {
	case *Hello:
		cp := *msg
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processHello(from, cp) })
	case *RREQ:
		cp := *msg
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processRREQ(from, cp) })
	case *RREP:
		cp := *msg
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processRREP(from, cp) })
	case *RERR:
		cp := *msg
		cp.Unreachable = append([]UnreachableDest(nil), msg.Unreachable...)
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processRERR(from, cp) })
	case *DataPacket:
		cp := *msg
		n.processData(from, &cp)
	}
}

// receiveControl authenticates an incoming control packet and schedules its
// processing after the verification delay.
func (n *Node) receiveControl(from int, payload, auth []byte, sender int, process func()) {
	if n.Hooks.SkipVerify {
		process()
		return
	}
	if sender != from {
		// The claimed transmitter must be the actual one-hop sender;
		// anything else is spoofing regardless of signature validity.
		n.Stats.AuthRejected++
		return
	}
	ok, delay := n.auth.Verify(sender, payload, auth)
	n.schedule(delay, func() {
		if !ok {
			n.Stats.AuthRejected++
			return
		}
		process()
	})
}

// processRREQ implements RFC 3561 §6.5.
func (n *Node) processRREQ(from int, req RREQ) {
	if req.Origin == n.ID {
		return // our own flood echoed back
	}
	key := seenKey{origin: req.Origin, id: req.ID}
	if _, dup := n.seen[key]; dup {
		return
	}
	n.seen[key] = n.sim.Now()
	n.pruneSeen()

	if n.Hooks.OnRREQ != nil && !n.Hooks.OnRREQ(n, from, &req) {
		return
	}

	// Reverse routes: to the previous hop and to the originator.
	n.updateRoute(from, from, 1, 0, false, n.cfg.ActiveRouteTimeout)
	n.updateRoute(req.Origin, from, req.HopCount+1, req.OriginSeq, true, n.cfg.ActiveRouteTimeout)

	if req.Dest == n.ID {
		// Destination replies. Keep our sequence number at least as
		// fresh as the request claims to know, and advance it so each
		// reply is strictly fresher than the last (RFC 3561 §6.6.1) —
		// without this, a forged reply with seq+1 would win every race.
		if req.SeqKnown && seqNewer(req.DestSeq, n.seq) {
			n.seq = req.DestSeq
		}
		n.seq++
		n.Stats.RREPOriginated++
		n.SendRREP(from, &RREP{
			Origin:   req.Origin,
			Dest:     n.ID,
			DestSeq:  n.seq,
			HopCount: 0,
			Lifetime: n.cfg.MyRouteTimeout,
		})
		return
	}

	if !n.cfg.DisableIntermediateReply {
		if e := n.route(req.Dest); e != nil && e.validSeq &&
			(!req.SeqKnown || !seqNewer(req.DestSeq, e.destSeq)) {
			n.Stats.RREPOriginated++
			n.SendRREP(from, &RREP{
				Origin:   req.Origin,
				Dest:     req.Dest,
				DestSeq:  e.destSeq,
				HopCount: e.hops,
				Lifetime: e.expires - n.sim.Now(),
			})
			return
		}
	}

	if req.TTL <= 1 {
		return // ring boundary
	}
	fwd := req
	fwd.HopCount++
	fwd.TTL--
	n.Stats.RREQForwarded++
	jitter := n.drawJitter()
	n.schedule(jitter, func() { n.sendRREQ(&fwd) })
}

// drawJitter picks the rebroadcast delay, honouring the hook.
func (n *Node) drawJitter() time.Duration {
	if n.Hooks.RebroadcastJitter != nil {
		return n.Hooks.RebroadcastJitter(n)
	}
	if n.cfg.RebroadcastJitterMax <= 0 {
		return 0
	}
	return time.Duration(n.sim.Rand().Int63n(int64(n.cfg.RebroadcastJitterMax)))
}

// processRREP implements RFC 3561 §6.7.
func (n *Node) processRREP(from int, rep RREP) {
	n.updateRoute(from, from, 1, 0, false, n.cfg.ActiveRouteTimeout)
	n.updateRoute(rep.Dest, from, rep.HopCount+1, rep.DestSeq, true, rep.Lifetime)

	if rep.Origin == n.ID {
		n.discoveryComplete(rep.Dest)
		return
	}
	// Forward along the reverse path.
	e := n.route(rep.Origin)
	if e == nil {
		return // reverse route evaporated; the originator will retry
	}
	fwd := rep
	fwd.HopCount++
	n.Stats.RREPForwarded++
	n.SendRREP(e.nextHop, &fwd)
}

// processRERR invalidates routes that relied on the reporting neighbor and
// propagates the report if that changed anything.
func (n *Node) processRERR(from int, rerr RERR) {
	var propagated []UnreachableDest
	for _, u := range rerr.Unreachable {
		e := n.routes[u.Dest]
		if e == nil || !e.valid || e.nextHop != from {
			continue
		}
		e.valid = false
		if seqNewer(u.DestSeq, e.destSeq) {
			e.destSeq = u.DestSeq
		}
		propagated = append(propagated, UnreachableDest{Dest: u.Dest, DestSeq: e.destSeq})
	}
	if len(propagated) > 0 {
		n.sendRERR(propagated)
	}
}

// processData forwards or delivers a routed data packet.
func (n *Node) processData(from int, pkt *DataPacket) {
	n.updateRoute(from, from, 1, 0, false, n.cfg.ActiveRouteTimeout)
	// An active flow keeps the path toward its source alive (RFC 3561 §6.2).
	n.touch(pkt.Src)
	if pkt.Dst == n.ID {
		n.deliver(pkt)
		return
	}
	if n.Hooks.FilterData != nil && !n.Hooks.FilterData(n, pkt) {
		n.Stats.DropByAttacker++
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		n.Stats.DropTTLExpired++
		return
	}
	pkt.HopsFwd++
	e := n.route(pkt.Dst)
	if e == nil {
		n.Stats.DropNoRoute++
		n.sendRERR([]UnreachableDest{{Dest: pkt.Dst, DestSeq: n.lastKnownSeq(pkt.Dst)}})
		return
	}
	n.Stats.DataForwarded++
	n.transmitData(pkt, e)
}

// lastKnownSeq returns the freshest sequence number recorded for dest.
func (n *Node) lastKnownSeq(dest int) uint32 {
	if e := n.routes[dest]; e != nil {
		return e.destSeq + 1
	}
	return 0
}

// pruneSeen bounds the duplicate-suppression cache.
func (n *Node) pruneSeen() {
	if len(n.seen) < 4096 {
		return
	}
	horizon := n.sim.Now() - 2*n.cfg.ringTraversalTime(n.cfg.NetDiameter)
	for k, at := range n.seen {
		if at < horizon {
			delete(n.seen, k)
		}
	}
}
