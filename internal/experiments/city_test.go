package experiments

import (
	"reflect"
	"testing"
	"time"
)

// cityScenario is a small city run that still exercises the Manhattan
// streets, range jitter, and the spatial index.
func cityScenario() Scenario {
	return Scenario{
		Nodes: 30, Width: 800, Height: 800,
		Mobility: ManhattanMobility, MaxSpeed: 10, RangeJitter: 0.3,
		Duration: 30 * time.Second, Seed: 5,
	}
}

func TestManhattanScenarioRunsAndDelivers(t *testing.T) {
	res, err := cityScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 || res.DataDelivered == 0 {
		t.Fatalf("city scenario moved no data: %+v", res.Summary)
	}
	if res.PeakQueue == 0 || res.EventAllocs == 0 {
		t.Fatalf("missing event-core observability: peak=%d allocs=%d",
			res.PeakQueue, res.EventAllocs)
	}
	if res.Grid.Rebuilds == 0 || res.Grid.Queries == 0 {
		t.Fatalf("spatial index unused: %+v", res.Grid)
	}
	// Event pooling means fresh allocations track the queue's high-water
	// mark, not the (much larger) processed-event count.
	if res.EventAllocs >= res.Events {
		t.Fatalf("event pool ineffective: %d allocs for %d events", res.EventAllocs, res.Events)
	}
}

func TestHighwayScenarioRuns(t *testing.T) {
	sc := cityScenario()
	sc.Mobility = HighwayMobility
	sc.Width = 2000
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatalf("highway scenario sourced no data: %+v", res.Summary)
	}
}

func TestMobilityModelsDiverge(t *testing.T) {
	sc := cityScenario()
	manhattan, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sc.Mobility = RandomWaypointMobility
	rwp, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(manhattan.Summary, rwp.Summary) {
		t.Fatal("manhattan and random-waypoint runs produced identical summaries")
	}
}

func TestUnknownMobilityRejected(t *testing.T) {
	sc := cityScenario()
	sc.Mobility = MobilityModel(99)
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown mobility model accepted")
	}
}

func TestTooFewNodesRejected(t *testing.T) {
	if _, err := (Scenario{Nodes: -3}).Run(); err == nil {
		t.Fatal("negative node count accepted")
	}
}

// TestRangeJitterChangesTopologyNotRNG pins the independence property: the
// jitter stream must alter connectivity without shifting the simulation RNG,
// so jitter==0 stays bit-identical to the pre-jitter code path (covered by
// every determinism test), and jittered runs remain deterministic.
func TestRangeJitterChangesTopologyNotRNG(t *testing.T) {
	sc := cityScenario()
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("jittered runs are not deterministic")
	}
	sc.RangeJitter = 0
	c, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Summary, c.Summary) {
		t.Fatal("range jitter had no observable effect")
	}
}

func TestFigureCityShape(t *testing.T) {
	cfg := CityConfig{
		Base:    Scenario{Duration: 15 * time.Second, Flows: 5},
		Nodes:   []int{20, 40},
		Repeats: 2,
	}
	fig, err := FigureCityPDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig9" || fig.XColumn != "nodes" {
		t.Fatalf("figure identity: %q %q", fig.ID, fig.XColumn)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d, want 2 (AODV, McCLS)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 || s.X[0] != 20 || s.X[1] != 40 {
			t.Fatalf("series %q x-axis: %v", s.Label, s.X)
		}
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("series %q PDR out of range at %d: %g", s.Label, i, y)
			}
		}
		if len(s.YErr) != len(s.Y) {
			t.Fatalf("series %q missing CIs", s.Label)
		}
	}
}

// TestCitySweepWorkerInvariance pins the scaled guarantee: a city sweep is
// bit-identical serial vs parallel.
func TestCitySweepWorkerInvariance(t *testing.T) {
	cfg := CityConfig{
		Base:    Scenario{Duration: 10 * time.Second, Flows: 5},
		Nodes:   []int{20, 30},
		Repeats: 2,
	}
	cfg.Workers = 1
	serial, err := FigureCityOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := FigureCityOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatalf("serial and parallel city sweeps diverge:\n%s\nvs\n%s",
			serial.CSV(), parallel.CSV())
	}
}
