package experiments

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"mccls/internal/sim"
)

// quick returns a small, fast scenario for integration tests.
func quick() Scenario {
	return Scenario{
		Duration: 60 * time.Second,
		MaxSpeed: 5,
		Seed:     11,
	}
}

func TestScenarioBaselineHealthy(t *testing.T) {
	sc := quick()
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("no traffic generated")
	}
	if pdr := res.PacketDeliveryRatio(); pdr < 0.9 {
		t.Fatalf("baseline PDR = %.3f, want healthy network (≥0.9)", pdr)
	}
	if res.EndToEndDelay() <= 0 {
		t.Fatal("no delay recorded")
	}
	if res.PacketDropRatio() != 0 {
		t.Fatal("attacker drops without an attack")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	sc := quick()
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1.Summary, r2.Summary)
	}
	sc.Seed++
	r3, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary == r3.Summary {
		t.Fatal("different seeds produced identical results")
	}
}

func TestAttacksDegradePlainAODV(t *testing.T) {
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		sc := quick()
		sc.Attack = atk
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketDropRatio() == 0 {
			t.Fatalf("%v attack absorbed nothing", atk)
		}
		base := quick()
		baseRes, err := base.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketDeliveryRatio() >= baseRes.PacketDeliveryRatio() {
			t.Fatalf("%v attack did not reduce PDR (%.3f vs %.3f)",
				atk, res.PacketDeliveryRatio(), baseRes.PacketDeliveryRatio())
		}
	}
}

func TestMcCLSResistsAttacks(t *testing.T) {
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		sc := quick()
		sc.Security = McCLSCost
		sc.Attack = atk
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		// The paper's headline claim: "McCLS scheme is able to detect all
		// black hole attack and rushing attack and the packet drop ratio
		// is zero."
		if res.PacketDropRatio() != 0 {
			t.Fatalf("McCLS under %v: drop ratio %.3f, want 0", atk, res.PacketDropRatio())
		}
		if res.AuthRejected == 0 {
			t.Fatalf("McCLS under %v rejected nothing", atk)
		}
		if pdr := res.PacketDeliveryRatio(); pdr < 0.9 {
			t.Fatalf("McCLS under %v: PDR %.3f collapsed", atk, pdr)
		}
	}
}

// TestRealCryptoMatchesCostModel is the equivalence claim from DESIGN.md:
// with crypto randomness decoupled from the simulation stream, a run with
// real McCLS signatures makes exactly the same routing decisions as the
// cost model.
func TestRealCryptoMatchesCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("real pairing crypto per control packet")
	}
	base := Scenario{
		Nodes:    8,
		Width:    800,
		Height:   300,
		Duration: 20 * time.Second,
		MaxSpeed: 5,
		Flows:    3,
		Seed:     4,
		Attack:   Blackhole,
	}
	costSc := base
	costSc.Security = McCLSCost
	realSc := base
	realSc.Security = McCLSReal

	costRes, err := costSc.Run()
	if err != nil {
		t.Fatal(err)
	}
	realRes, err := realSc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if costRes.Summary != realRes.Summary {
		t.Fatalf("cost model and real crypto diverged:\ncost: %+v\nreal: %+v",
			costRes.Summary, realRes.Summary)
	}
	if realRes.PacketDropRatio() != 0 {
		t.Fatal("real-crypto McCLS leaked packets to the attacker")
	}
}

func TestFigure1Shape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{1, 20},
		Repeats: 2,
		Seed:    5,
	}
	fig, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Fatalf("PDR out of range: %v", y)
			}
		}
	}
	// AODV ≈ McCLS: within a few percent at each speed (paper: "without
	// causing any substantial degradation").
	a, m := fig.Series[0], fig.Series[1]
	for i := range a.Y {
		diff := a.Y[i] - m.Y[i]
		if diff < -0.05 || diff > 0.05 {
			t.Fatalf("AODV and McCLS PDR diverge at speed %v: %.3f vs %.3f",
				a.X[i], a.Y[i], m.Y[i])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{5},
		Repeats: 2,
		Seed:    6,
	}
	fig, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y[0]
	}
	if byLabel["AODV black hole"] == 0 || byLabel["AODV rushing"] == 0 {
		t.Fatalf("plain AODV shows no attacker drops: %+v", byLabel)
	}
	if byLabel["McCLS black hole"] != 0 || byLabel["McCLS rushing"] != 0 {
		t.Fatalf("McCLS drop ratio nonzero: %+v", byLabel)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	txt := fig.Render()
	if !strings.Contains(txt, "figX") || !strings.Contains(txt, "0.500") {
		t.Fatalf("render missing content:\n%s", txt)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "speed,A\n") || !strings.Contains(csv, "1,0.5000") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestTable1RowsAndOrdering(t *testing.T) {
	rows, err := Table1(1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	want := map[string][2]string{
		"AP":    {"1p+3s", "4p+1e"},
		"ZWXF":  {"4s", "4p+3s"},
		"YHG":   {"2s", "2p+3s"},
		"McCLS": {"2s", "1p+1s"},
	}
	var mcclsVerify, apVerify time.Duration
	for _, r := range rows {
		w, ok := want[r.Scheme]
		if !ok {
			t.Fatalf("unexpected scheme %q", r.Scheme)
		}
		if r.Sign != w[0] || r.Verify != w[1] {
			t.Fatalf("%s ops = (%s, %s), want (%s, %s)", r.Scheme, r.Sign, r.Verify, w[0], w[1])
		}
		if r.SignTime <= 0 || r.VerifyTime <= 0 {
			t.Fatalf("%s has non-positive timings", r.Scheme)
		}
		switch r.Scheme {
		case "McCLS":
			mcclsVerify = r.VerifyTime
		case "AP":
			apVerify = r.VerifyTime
		}
	}
	// The paper's claim: McCLS verification beats the 4-pairing AP.
	if mcclsVerify >= apVerify {
		t.Fatalf("McCLS verify (%v) not faster than AP (%v)", mcclsVerify, apVerify)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "McCLS") || !strings.Contains(out, "1p+1s") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
}

// TestParallelMatchesSerial is the refactor's hard invariant: a figure
// generated on one worker is bit-identical to the same figure generated on
// many, at any worker count — every trial owns its seed-derived RNGs and
// all cross-trial state is read-only.
func TestParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) SweepConfig {
		return SweepConfig{
			Base:    Scenario{Duration: 30 * time.Second},
			Speeds:  []float64{1, 15},
			Repeats: 2,
			Seed:    9,
			Workers: workers,
		}
	}
	serial, err := Figure4(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Figure4(mk(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("figure diverges between 1 and %d workers:\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
	// The DSR substrate rides the same engine; pin it too.
	dsrSerial, err := FigureDSR(SweepConfig{
		Base: Scenario{Duration: 30 * time.Second}, Speeds: []float64{5},
		Repeats: 2, Seed: 9, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dsrPar, err := FigureDSR(SweepConfig{
		Base: Scenario{Duration: 30 * time.Second}, Speeds: []float64{5},
		Repeats: 2, Seed: 9, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dsrSerial, dsrPar) {
		t.Fatal("DSR figure diverges between serial and parallel execution")
	}
}

// TestSeriesCarryConfidenceIntervals: repeats > 1 must surface error bars.
func TestSeriesCarryConfidenceIntervals(t *testing.T) {
	fig, err := Figure1(SweepConfig{
		Base: Scenario{Duration: 30 * time.Second}, Speeds: []float64{5, 15},
		Repeats: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.YErr) != len(s.Y) {
			t.Fatalf("series %s: %d error bars for %d points", s.Label, len(s.YErr), len(s.Y))
		}
		for i, e := range s.YErr {
			if e < 0 {
				t.Fatalf("series %s point %d: negative CI %v", s.Label, i, e)
			}
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "AODV ci95") || !strings.Contains(csv, "McCLS ci95") {
		t.Fatalf("CSV missing CI columns:\n%s", csv)
	}
	if !strings.Contains(fig.Render(), "±") {
		t.Fatalf("render missing error bars:\n%s", fig.Render())
	}
}

// TestExplicitZeroSentinels covers the withDefaults zero-value trap: plain
// zero selects the paper default, ExplicitZero selects an actual zero.
func TestExplicitZeroSentinels(t *testing.T) {
	def := Scenario{}.withDefaults()
	if def.Attackers != 2 || def.GrayholeDropProb != 0.5 {
		t.Fatalf("paper defaults changed: %+v", def)
	}
	zero := Scenario{Attackers: ExplicitZero, GrayholeDropProb: ExplicitZero}.withDefaults()
	if zero.Attackers != 0 {
		t.Fatalf("Attackers: ExplicitZero → %d, want 0", zero.Attackers)
	}
	if zero.GrayholeDropProb != 0 {
		t.Fatalf("GrayholeDropProb: ExplicitZero → %v, want 0", zero.GrayholeDropProb)
	}

	// End to end: a black hole "attack" with zero attackers behaves like
	// no attack at all...
	sc := quick()
	sc.Attack = Blackhole
	sc.Attackers = ExplicitZero
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDropRatio() != 0 {
		t.Fatalf("zero attackers still dropped packets: %v", res.PacketDropRatio())
	}
	// ...and a gray hole with zero drop probability forwards everything.
	gh := quick()
	gh.Attack = Grayhole
	gh.GrayholeDropProb = ExplicitZero
	ghRes, err := gh.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ghRes.PacketDropRatio() != 0 {
		t.Fatalf("never-dropping gray hole dropped: %v", ghRes.PacketDropRatio())
	}
}

// TestMaxEventsFailsTrial: the event budget converts a too-long event chain
// into a per-run error instead of unbounded work.
func TestMaxEventsFailsTrial(t *testing.T) {
	sc := quick()
	sc.MaxEvents = 50
	_, err := sc.Run()
	if !errors.Is(err, sim.ErrEventBudget) {
		t.Fatalf("err = %v, want sim.ErrEventBudget", err)
	}
	// The same budget fails a DSR run too.
	_, err = sc.RunDSR()
	if !errors.Is(err, sim.ErrEventBudget) {
		t.Fatalf("DSR err = %v, want sim.ErrEventBudget", err)
	}
}

// TestRunContextCancellation: a dead context aborts a scenario promptly.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := quick().RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepTrialTimeout: the per-trial deadline fails the sweep instead of
// hanging it.
func TestSweepTrialTimeout(t *testing.T) {
	cfg := SweepConfig{
		Base:         Scenario{Duration: 300 * time.Second},
		Speeds:       []float64{5},
		Repeats:      1,
		Seed:         3,
		TrialTimeout: time.Nanosecond,
	}
	_, err := cfg.Sweep(Plain, NoAttack)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestSweepProgressObservability: one update per trial, with event counts.
func TestSweepProgressObservability(t *testing.T) {
	var updates []TrialUpdate
	cfg := SweepConfig{
		Base:     Scenario{Duration: 20 * time.Second},
		Speeds:   []float64{1, 5},
		Repeats:  2,
		Seed:     4,
		Progress: func(u TrialUpdate) { updates = append(updates, u) },
	}
	if _, err := Figure5(cfg); err != nil {
		t.Fatal(err)
	}
	want := 4 * 2 * 2 // curves × speeds × repeats
	if len(updates) != want {
		t.Fatalf("got %d progress updates, want %d", len(updates), want)
	}
	for _, u := range updates {
		if u.Err != nil {
			t.Fatalf("trial %q failed: %v", u.Label, u.Err)
		}
		if u.Events == 0 || u.EventsPerSec <= 0 {
			t.Fatalf("trial %q missing event observability: %+v", u.Label, u)
		}
		if u.Total != want || u.Done < 1 || u.Done > want {
			t.Fatalf("malformed update: %+v", u)
		}
	}
}

// TestInsiderGrayholeNotStoppedByMcCLS documents the protection boundary:
// a gray hole holding a valid KGC key signs correct control packets, so
// routing authentication cannot exclude it and some traffic is still lost.
func TestInsiderGrayholeNotStoppedByMcCLS(t *testing.T) {
	sc := quick()
	sc.Security = McCLSCost
	sc.Attack = Grayhole
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDropRatio() == 0 {
		t.Fatal("insider gray hole dropped nothing; topology too favourable, adjust seed")
	}
	// But it drops selectively, not everything it could.
	if res.PacketDropRatio() > 0.6 {
		t.Fatalf("gray hole dropped %.2f, not selective", res.PacketDropRatio())
	}
}

// TestScenarioWithCollisionsAndHello exercises the optional radio collision
// model and HELLO beaconing inside a full scenario: the network must stay
// functional (a weaker bound than the disk model's) and remain
// deterministic.
func TestScenarioWithCollisionsAndHello(t *testing.T) {
	sc := quick()
	sc.Radio.Collisions = true
	sc.AODV.HelloInterval = time.Second
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.PacketDeliveryRatio() < 0.5 {
		t.Fatalf("network collapsed under collision model: %s", r1.Summary)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("collision model broke determinism")
	}
}

// TestDSRScenario checks the DSR runner end-to-end: healthy baseline,
// attack degradation, and McCLS protection — the generality claim.
func TestDSRScenario(t *testing.T) {
	base := quick()
	res, err := base.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDeliveryRatio() < 0.85 {
		t.Fatalf("DSR baseline PDR %.3f unhealthy", res.PacketDeliveryRatio())
	}
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		plain := quick()
		plain.Attack = atk
		pRes, err := plain.RunDSR()
		if err != nil {
			t.Fatal(err)
		}
		if pRes.PacketDropRatio() == 0 {
			t.Fatalf("DSR %v absorbed nothing", atk)
		}
		sec := quick()
		sec.Attack = atk
		sec.Security = McCLSCost
		sRes, err := sec.RunDSR()
		if err != nil {
			t.Fatal(err)
		}
		if sRes.PacketDropRatio() != 0 {
			t.Fatalf("McCLS-DSR under %v: drop ratio %.3f, want 0", atk, sRes.PacketDropRatio())
		}
	}
}

// TestDSRDeterministic pins reproducibility for the DSR runner too.
func TestDSRDeterministic(t *testing.T) {
	sc := quick()
	sc.Attack = Rushing
	r1, err := sc.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("DSR run not deterministic")
	}
}

// TestFigureDSRShape checks the extension figure mirrors Figure 5's shape
// on the DSR substrate.
func TestFigureDSRShape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{5},
		Repeats: 2,
		Seed:    7,
	}
	fig, err := FigureDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y[0]
	}
	if byLabel["DSR black hole"] == 0 || byLabel["DSR rushing"] == 0 {
		t.Fatalf("plain DSR shows no attacker drops: %+v", byLabel)
	}
	if byLabel["McCLS-DSR black hole"] != 0 || byLabel["McCLS-DSR rushing"] != 0 {
		t.Fatalf("McCLS-DSR drop ratio nonzero: %+v", byLabel)
	}
}
