package experiments

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// quick returns a small, fast scenario for integration tests.
func quick() Scenario {
	return Scenario{
		Duration: 60 * time.Second,
		MaxSpeed: 5,
		Seed:     11,
	}
}

func TestScenarioBaselineHealthy(t *testing.T) {
	sc := quick()
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("no traffic generated")
	}
	if pdr := res.PacketDeliveryRatio(); pdr < 0.9 {
		t.Fatalf("baseline PDR = %.3f, want healthy network (≥0.9)", pdr)
	}
	if res.EndToEndDelay() <= 0 {
		t.Fatal("no delay recorded")
	}
	if res.PacketDropRatio() != 0 {
		t.Fatal("attacker drops without an attack")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	sc := quick()
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1.Summary, r2.Summary)
	}
	sc.Seed++
	r3, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary == r3.Summary {
		t.Fatal("different seeds produced identical results")
	}
}

func TestAttacksDegradePlainAODV(t *testing.T) {
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		sc := quick()
		sc.Attack = atk
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketDropRatio() == 0 {
			t.Fatalf("%v attack absorbed nothing", atk)
		}
		base := quick()
		baseRes, err := base.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketDeliveryRatio() >= baseRes.PacketDeliveryRatio() {
			t.Fatalf("%v attack did not reduce PDR (%.3f vs %.3f)",
				atk, res.PacketDeliveryRatio(), baseRes.PacketDeliveryRatio())
		}
	}
}

func TestMcCLSResistsAttacks(t *testing.T) {
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		sc := quick()
		sc.Security = McCLSCost
		sc.Attack = atk
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		// The paper's headline claim: "McCLS scheme is able to detect all
		// black hole attack and rushing attack and the packet drop ratio
		// is zero."
		if res.PacketDropRatio() != 0 {
			t.Fatalf("McCLS under %v: drop ratio %.3f, want 0", atk, res.PacketDropRatio())
		}
		if res.AuthRejected == 0 {
			t.Fatalf("McCLS under %v rejected nothing", atk)
		}
		if pdr := res.PacketDeliveryRatio(); pdr < 0.9 {
			t.Fatalf("McCLS under %v: PDR %.3f collapsed", atk, pdr)
		}
	}
}

// TestRealCryptoMatchesCostModel is the equivalence claim from DESIGN.md:
// with crypto randomness decoupled from the simulation stream, a run with
// real McCLS signatures makes exactly the same routing decisions as the
// cost model.
func TestRealCryptoMatchesCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("real pairing crypto per control packet")
	}
	base := Scenario{
		Nodes:    8,
		Width:    800,
		Height:   300,
		Duration: 20 * time.Second,
		MaxSpeed: 5,
		Flows:    3,
		Seed:     4,
		Attack:   Blackhole,
	}
	costSc := base
	costSc.Security = McCLSCost
	realSc := base
	realSc.Security = McCLSReal

	costRes, err := costSc.Run()
	if err != nil {
		t.Fatal(err)
	}
	realRes, err := realSc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if costRes.Summary != realRes.Summary {
		t.Fatalf("cost model and real crypto diverged:\ncost: %+v\nreal: %+v",
			costRes.Summary, realRes.Summary)
	}
	if realRes.PacketDropRatio() != 0 {
		t.Fatal("real-crypto McCLS leaked packets to the attacker")
	}
}

func TestFigure1Shape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{1, 20},
		Repeats: 2,
		Seed:    5,
	}
	fig, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Fatalf("PDR out of range: %v", y)
			}
		}
	}
	// AODV ≈ McCLS: within a few percent at each speed (paper: "without
	// causing any substantial degradation").
	a, m := fig.Series[0], fig.Series[1]
	for i := range a.Y {
		diff := a.Y[i] - m.Y[i]
		if diff < -0.05 || diff > 0.05 {
			t.Fatalf("AODV and McCLS PDR diverge at speed %v: %.3f vs %.3f",
				a.X[i], a.Y[i], m.Y[i])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{5},
		Repeats: 2,
		Seed:    6,
	}
	fig, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y[0]
	}
	if byLabel["AODV black hole"] == 0 || byLabel["AODV rushing"] == 0 {
		t.Fatalf("plain AODV shows no attacker drops: %+v", byLabel)
	}
	if byLabel["McCLS black hole"] != 0 || byLabel["McCLS rushing"] != 0 {
		t.Fatalf("McCLS drop ratio nonzero: %+v", byLabel)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	txt := fig.Render()
	if !strings.Contains(txt, "figX") || !strings.Contains(txt, "0.500") {
		t.Fatalf("render missing content:\n%s", txt)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "speed,A\n") || !strings.Contains(csv, "1,0.5000") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestTable1RowsAndOrdering(t *testing.T) {
	rows, err := Table1(1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	want := map[string][2]string{
		"AP":    {"1p+3s", "4p+1e"},
		"ZWXF":  {"4s", "4p+3s"},
		"YHG":   {"2s", "2p+3s"},
		"McCLS": {"2s", "1p+1s"},
	}
	var mcclsVerify, apVerify time.Duration
	for _, r := range rows {
		w, ok := want[r.Scheme]
		if !ok {
			t.Fatalf("unexpected scheme %q", r.Scheme)
		}
		if r.Sign != w[0] || r.Verify != w[1] {
			t.Fatalf("%s ops = (%s, %s), want (%s, %s)", r.Scheme, r.Sign, r.Verify, w[0], w[1])
		}
		if r.SignTime <= 0 || r.VerifyTime <= 0 {
			t.Fatalf("%s has non-positive timings", r.Scheme)
		}
		switch r.Scheme {
		case "McCLS":
			mcclsVerify = r.VerifyTime
		case "AP":
			apVerify = r.VerifyTime
		}
	}
	// The paper's claim: McCLS verification beats the 4-pairing AP.
	if mcclsVerify >= apVerify {
		t.Fatalf("McCLS verify (%v) not faster than AP (%v)", mcclsVerify, apVerify)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "McCLS") || !strings.Contains(out, "1p+1s") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
}

// TestInsiderGrayholeNotStoppedByMcCLS documents the protection boundary:
// a gray hole holding a valid KGC key signs correct control packets, so
// routing authentication cannot exclude it and some traffic is still lost.
func TestInsiderGrayholeNotStoppedByMcCLS(t *testing.T) {
	sc := quick()
	sc.Security = McCLSCost
	sc.Attack = Grayhole
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDropRatio() == 0 {
		t.Fatal("insider gray hole dropped nothing; topology too favourable, adjust seed")
	}
	// But it drops selectively, not everything it could.
	if res.PacketDropRatio() > 0.6 {
		t.Fatalf("gray hole dropped %.2f, not selective", res.PacketDropRatio())
	}
}

// TestScenarioWithCollisionsAndHello exercises the optional radio collision
// model and HELLO beaconing inside a full scenario: the network must stay
// functional (a weaker bound than the disk model's) and remain
// deterministic.
func TestScenarioWithCollisionsAndHello(t *testing.T) {
	sc := quick()
	sc.Radio.Collisions = true
	sc.AODV.HelloInterval = time.Second
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.PacketDeliveryRatio() < 0.5 {
		t.Fatalf("network collapsed under collision model: %s", r1.Summary)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("collision model broke determinism")
	}
}

// TestDSRScenario checks the DSR runner end-to-end: healthy baseline,
// attack degradation, and McCLS protection — the generality claim.
func TestDSRScenario(t *testing.T) {
	base := quick()
	res, err := base.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDeliveryRatio() < 0.85 {
		t.Fatalf("DSR baseline PDR %.3f unhealthy", res.PacketDeliveryRatio())
	}
	for _, atk := range []AttackMode{Blackhole, Rushing} {
		plain := quick()
		plain.Attack = atk
		pRes, err := plain.RunDSR()
		if err != nil {
			t.Fatal(err)
		}
		if pRes.PacketDropRatio() == 0 {
			t.Fatalf("DSR %v absorbed nothing", atk)
		}
		sec := quick()
		sec.Attack = atk
		sec.Security = McCLSCost
		sRes, err := sec.RunDSR()
		if err != nil {
			t.Fatal(err)
		}
		if sRes.PacketDropRatio() != 0 {
			t.Fatalf("McCLS-DSR under %v: drop ratio %.3f, want 0", atk, sRes.PacketDropRatio())
		}
	}
}

// TestDSRDeterministic pins reproducibility for the DSR runner too.
func TestDSRDeterministic(t *testing.T) {
	sc := quick()
	sc.Attack = Rushing
	r1, err := sc.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.RunDSR()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("DSR run not deterministic")
	}
}

// TestFigureDSRShape checks the extension figure mirrors Figure 5's shape
// on the DSR substrate.
func TestFigureDSRShape(t *testing.T) {
	cfg := SweepConfig{
		Base:    Scenario{Duration: 40 * time.Second},
		Speeds:  []float64{5},
		Repeats: 2,
		Seed:    7,
	}
	fig, err := FigureDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y[0]
	}
	if byLabel["DSR black hole"] == 0 || byLabel["DSR rushing"] == 0 {
		t.Fatalf("plain DSR shows no attacker drops: %+v", byLabel)
	}
	if byLabel["McCLS-DSR black hole"] != 0 || byLabel["McCLS-DSR rushing"] != 0 {
		t.Fatalf("McCLS-DSR drop ratio nonzero: %+v", byLabel)
	}
}
