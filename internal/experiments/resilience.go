package experiments

import (
	"context"
	"fmt"
	"time"

	"mccls/internal/metrics"
	"mccls/internal/runner"
)

// Resilience sweep: the benign-failure counterpart of the attack figures.
// The x-axis is node churn (crash/restart cycles per run) instead of speed;
// the curves compare plain AODV against the full McCLS-AODV stack with
// online enrollment, so the McCLS curve pays for churn twice — lost routes
// like everyone else, plus key loss and re-enrollment through the
// in-network KGC. The churn schedule at a given (events, seed) point is
// drawn from a seed-derived stream independent of the security mode, so
// both curves suffer the identical crash timeline (paired comparison).

// ResilienceConfig drives the churn sweep. Zero values select a 900 s run
// of the paper's 20-node field at 5 m/s with 0→4 crash/restart events.
type ResilienceConfig struct {
	// Base is the common scenario; Security/OnlineEnrollment/ChurnEvents
	// and Seed are overridden per sweep point.
	Base Scenario
	// Churn lists the swept crash/restart event counts (default 0–4).
	Churn []int
	// Repeats averages each point over this many seeds (default 3).
	Repeats int
	// Seed is the base seed; repeat k of a point uses Seed + k·7919.
	Seed int64

	Workers      int
	TrialTimeout time.Duration
	Progress     func(TrialUpdate)
	Context      context.Context
}

func (cfg ResilienceConfig) withDefaults() ResilienceConfig {
	if len(cfg.Churn) == 0 {
		cfg.Churn = []int{0, 1, 2, 3, 4}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	if cfg.Base.Duration == 0 {
		cfg.Base.Duration = 900 * time.Second
	}
	if cfg.Base.MaxSpeed == 0 {
		cfg.Base.MaxSpeed = 5
	}
	return cfg
}

// resilienceCurve is one security configuration swept across the churn axis.
type resilienceCurve struct {
	label  string
	sec    SecurityMode
	online bool
}

var resilienceCurves = []resilienceCurve{
	{"AODV", Plain, false},
	{"McCLS", McCLSCost, true},
}

// runChurnSweeps expands every (curve, churn, repeat) combination into one
// flat trial batch, mirroring SweepConfig.runSweeps but along the churn
// axis. SweepResult.Speeds carries the churn counts.
func (cfg ResilienceConfig) runChurnSweeps() ([]SweepResult, error) {
	cfg = cfg.withDefaults()
	axis := make([]float64, len(cfg.Churn))
	for i, c := range cfg.Churn {
		axis[i] = float64(c)
	}
	trials := make([]runner.Trial[metrics.Summary], 0, len(resilienceCurves)*len(cfg.Churn)*cfg.Repeats)
	for _, c := range resilienceCurves {
		for _, churn := range cfg.Churn {
			for k := 0; k < cfg.Repeats; k++ {
				sc := cfg.Base
				sc.Security = c.sec
				sc.OnlineEnrollment = c.online
				sc.ChurnEvents = churn
				sc.Seed = cfg.Seed + int64(k)*7919
				trials = append(trials, runner.Trial[metrics.Summary]{
					Label: fmt.Sprintf("%s churn=%d seed=%d", c.label, churn, sc.Seed),
					Run: func(ctx context.Context, obs *runner.Obs) (metrics.Summary, error) {
						res, err := sc.RunContext(ctx)
						observe(obs, res)
						return res.Summary, err
					},
				})
			}
		}
	}
	sums, err := runner.Run(cfg.Context, runner.Options{
		Workers:  cfg.Workers,
		Timeout:  cfg.TrialTimeout,
		Progress: cfg.Progress,
	}, trials)
	if err != nil {
		return nil, err
	}

	out := make([]SweepResult, len(resilienceCurves))
	idx := 0
	for i := range resilienceCurves {
		r := SweepResult{Speeds: axis}
		for range cfg.Churn {
			agg := metrics.NewAggregate(sums[idx : idx+cfg.Repeats])
			idx += cfg.Repeats
			r.Aggregates = append(r.Aggregates, agg)
			r.Summaries = append(r.Summaries, agg.Pooled)
		}
		out[i] = r
	}
	return out, nil
}

// resilienceFigure projects the churn sweep through one metric selector.
func (cfg ResilienceConfig) resilienceFigure(sel metricSel) ([]Series, error) {
	results, err := cfg.runChurnSweeps()
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(resilienceCurves))
	for i, c := range resilienceCurves {
		series[i] = results[i].series(c.label, sel)
	}
	return series, nil
}

// FigureResilience generates "Packet Delivery Ratio under churn": delivery
// for plain AODV vs the full McCLS stack (online enrollment) as the number
// of crash/restart events grows.
func FigureResilience(cfg ResilienceConfig) (Figure, error) {
	series, err := cfg.resilienceFigure(pdrSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig7", Title: "Packet Delivery Ratio under churn",
		XLabel: "crash/restart events per run", YLabel: "packet delivery ratio",
		XColumn: "churn", Series: series,
	}, nil
}

// FigureResilienceOverhead generates "RREQ Ratio under churn": the control
// overhead each stack pays to recover the routes churn destroys.
func FigureResilienceOverhead(cfg ResilienceConfig) (Figure, error) {
	series, err := cfg.resilienceFigure(rreqSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig8", Title: "RREQ Ratio under churn",
		XLabel: "crash/restart events per run", YLabel: "RREQ ratio",
		XColumn: "churn", Series: series,
	}, nil
}
