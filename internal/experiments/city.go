package experiments

import (
	"context"
	"fmt"
	"time"

	"mccls/internal/metrics"
	"mccls/internal/runner"
)

// City-scale sweep: delivery and control overhead as the network grows from
// a neighborhood to a city. The x-axis is node count in a fixed urban field,
// so it doubles as a density axis; nodes drive a Manhattan street grid and
// carry heterogeneous radio ranges — the regime the spatial neighbor index
// exists for (the naive all-pairs scan is quadratic in this sweep's axis).

// CityConfig drives the node-count sweep. Zero values select a 2000×2000 m
// street grid (100 m blocks), 10 m/s vehicles, ±30% radio-range jitter, a
// 60 s horizon, and 100/200/500 nodes.
type CityConfig struct {
	// Base is the common scenario; its Nodes/Security/Seed are overridden
	// per sweep point, and zero values of Width/Height/Duration/MaxSpeed/
	// Mobility/RangeJitter select the city defaults above.
	Base Scenario
	// Nodes lists the swept node counts (default 100, 200, 500).
	Nodes []int
	// Repeats averages each point over this many seeds (default 3).
	Repeats int
	// Seed is the base seed; repeat k of a point uses Seed + k·7919.
	Seed int64

	Workers      int
	TrialTimeout time.Duration
	Progress     func(TrialUpdate)
	Context      context.Context
}

func (cfg CityConfig) withDefaults() CityConfig {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []int{100, 200, 500}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	if cfg.Base.Width == 0 {
		cfg.Base.Width = 2000
	}
	if cfg.Base.Height == 0 {
		cfg.Base.Height = 2000
	}
	if cfg.Base.Duration == 0 {
		cfg.Base.Duration = 60 * time.Second
	}
	if cfg.Base.MaxSpeed == 0 {
		cfg.Base.MaxSpeed = 10
	}
	if cfg.Base.Mobility == RandomWaypointMobility {
		cfg.Base.Mobility = ManhattanMobility
	}
	if cfg.Base.RangeJitter == 0 {
		cfg.Base.RangeJitter = 0.3
	}
	return cfg
}

// cityCurves compares the two stacks as the city grows.
var cityCurves = []curve{
	{"AODV", Plain, NoAttack},
	{"McCLS", McCLSCost, NoAttack},
}

// runNodeSweeps expands every (curve, nodes, repeat) combination into one
// flat trial batch, mirroring runSweeps along the node-count axis.
// SweepResult.Speeds carries the node counts.
func (cfg CityConfig) runNodeSweeps() ([]SweepResult, error) {
	cfg = cfg.withDefaults()
	axis := make([]float64, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		axis[i] = float64(n)
	}
	trials := make([]runner.Trial[metrics.Summary], 0, len(cityCurves)*len(cfg.Nodes)*cfg.Repeats)
	for _, c := range cityCurves {
		for _, n := range cfg.Nodes {
			for k := 0; k < cfg.Repeats; k++ {
				sc := cfg.Base
				sc.Nodes = n
				sc.Security = c.sec
				sc.Attack = c.atk
				sc.Seed = cfg.Seed + int64(k)*7919
				trials = append(trials, runner.Trial[metrics.Summary]{
					Label: fmt.Sprintf("%s n=%d seed=%d", c.label, n, sc.Seed),
					Run: func(ctx context.Context, obs *runner.Obs) (metrics.Summary, error) {
						res, err := sc.RunContext(ctx)
						observe(obs, res)
						return res.Summary, err
					},
				})
			}
		}
	}
	sums, err := runner.Run(cfg.Context, runner.Options{
		Workers:  cfg.Workers,
		Timeout:  cfg.TrialTimeout,
		Progress: cfg.Progress,
	}, trials)
	if err != nil {
		return nil, err
	}

	out := make([]SweepResult, len(cityCurves))
	idx := 0
	for i := range cityCurves {
		r := SweepResult{Speeds: axis}
		for range cfg.Nodes {
			agg := metrics.NewAggregate(sums[idx : idx+cfg.Repeats])
			idx += cfg.Repeats
			r.Aggregates = append(r.Aggregates, agg)
			r.Summaries = append(r.Summaries, agg.Pooled)
		}
		out[i] = r
	}
	return out, nil
}

// cityFigure projects the node-count sweep through one metric selector.
func (cfg CityConfig) cityFigure(sel metricSel) ([]Series, error) {
	results, err := cfg.runNodeSweeps()
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(cityCurves))
	for i, c := range cityCurves {
		series[i] = results[i].series(c.label, sel)
	}
	return series, nil
}

// FigureCityPDR generates "Packet Delivery Ratio at city scale": delivery
// for AODV vs McCLS as the Manhattan-grid network densifies.
func FigureCityPDR(cfg CityConfig) (Figure, error) {
	series, err := cfg.cityFigure(pdrSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig9", Title: "Packet Delivery Ratio at city scale",
		XLabel: "nodes in field", YLabel: "packet delivery ratio",
		XColumn: "nodes", Series: series,
	}, nil
}

// FigureCityOverhead generates "RREQ Ratio at city scale": the control
// overhead each stack pays as route discovery floods grow with the network.
func FigureCityOverhead(cfg CityConfig) (Figure, error) {
	series, err := cfg.cityFigure(rreqSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig10", Title: "RREQ Ratio at city scale",
		XLabel: "nodes in field", YLabel: "RREQ ratio",
		XColumn: "nodes", Series: series,
	}, nil
}
