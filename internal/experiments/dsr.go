package experiments

import (
	"math/rand"
	"time"

	"mccls/internal/attack"
	"mccls/internal/dsr"
	"mccls/internal/metrics"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
	"mccls/internal/traffic"
)

// RunDSR executes the scenario with DSR instead of AODV as the routing
// protocol — the generality extension: the same McCLS authenticator, cost
// model, traffic, attacks and metrics run unchanged over a source-routing
// protocol. Grayhole is not wired for DSR; use Blackhole/Rushing/NoAttack.
func (sc Scenario) RunDSR() (Result, error) {
	sc = sc.withDefaults()
	s := sim.New(sc.Seed)

	horizon := sc.Duration + 30*time.Second
	mob := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
		Width:    sc.Width,
		Height:   sc.Height,
		MaxSpeed: sc.MaxSpeed,
		Pause:    sc.Pause,
	}, sc.Nodes, horizon, s.Rand())
	medium := radio.New(s, mob, sc.Radio)

	attackers := map[int]bool{}
	if sc.Attack != NoAttack {
		for i := 0; i < sc.Attackers && i < sc.Nodes-2; i++ {
			attackers[sc.Nodes-1-i] = true
		}
	}

	auth, err := sc.buildAuth(rand.New(rand.NewSource(sc.Seed^0x647372)), attackers)
	if err != nil {
		return Result{}, err
	}

	nodes := make([]*dsr.Node, sc.Nodes)
	for i := range nodes {
		nodes[i] = dsr.NewNode(i, s, medium, dsr.Config{}, auth)
	}
	for id := range attackers {
		switch sc.Attack {
		case Blackhole:
			attack.MakeDSRBlackhole(nodes[id])
		case Rushing:
			attack.MakeDSRRushing(nodes[id])
		}
	}

	var honest []int
	for i := 0; i < sc.Nodes; i++ {
		if !attackers[i] {
			honest = append(honest, i)
		}
	}
	flows := traffic.RandomFlows(sc.Flows, honest, s.Rand())
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	traffic.StartCBR(s, senders, flows, traffic.CBRConfig{
		Rate:        sc.Rate,
		PacketBytes: sc.PacketBytes,
		Start:       2 * time.Second,
		Stop:        2*time.Second + sc.Duration,
	})

	s.Run(sc.Duration + 12*time.Second)
	return Result{Summary: collectDSR(nodes), Radio: medium.Stats}, nil
}

// collectDSR maps DSR counters onto the shared metrics summary (route
// requests take the RREQ slots; the four paper metrics carry over
// unchanged).
func collectDSR(nodes []*dsr.Node) metrics.Summary {
	var s metrics.Summary
	for _, n := range nodes {
		st := n.Stats
		s.DataSent += st.DataSent
		s.DataDelivered += st.DataDelivered
		s.DataForwarded += st.DataForwarded
		s.RREQInitiated += st.RequestInitiated
		s.RREQForwarded += st.RequestForwarded
		s.RREQRetried += st.RequestRetried
		s.AttackerDrops += st.DropByAttacker
		s.AuthRejected += st.AuthRejected
		s.LinkBreaks += st.DropLinkBreak
		s.NoRouteDrops += st.DropNoRoute
		s.DelaySum += st.DelaySum
		s.DelayCount += st.DelayCount
	}
	return s
}

// FigureDSR is the generality extension experiment (no paper counterpart):
// packet drop ratio under 2-node black hole and rushing attacks with DSR as
// the substrate, plain vs McCLS-authenticated. The expected shape mirrors
// Figure 5: nonzero drops for plain DSR, zero for McCLS-DSR.
func FigureDSR(cfg SweepConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	combos := []struct {
		label string
		sec   SecurityMode
		atk   AttackMode
	}{
		{"DSR black hole", Plain, Blackhole},
		{"DSR rushing", Plain, Rushing},
		{"McCLS-DSR black hole", McCLSCost, Blackhole},
		{"McCLS-DSR rushing", McCLSCost, Rushing},
	}
	var series []Series
	for _, c := range combos {
		ser := Series{Label: c.label, X: cfg.Speeds}
		for _, speed := range cfg.Speeds {
			runs := make([]metrics.Summary, 0, cfg.Repeats)
			for k := 0; k < cfg.Repeats; k++ {
				sc := cfg.Base
				sc.MaxSpeed = speed
				sc.Security = c.sec
				sc.Attack = c.atk
				sc.Seed = cfg.Seed + int64(k)*7919
				res, err := sc.RunDSR()
				if err != nil {
					return Figure{}, err
				}
				runs = append(runs, res.Summary)
			}
			ser.Y = append(ser.Y, metrics.Average(runs).PacketDropRatio())
		}
		series = append(series, ser)
	}
	return Figure{
		ID: "figDSR", Title: "Packet Drop Ratio (DSR extension)",
		XLabel: "speed (m/s)", YLabel: "packet drop ratio",
		Series: series,
	}, nil
}
