package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mccls/internal/attack"
	"mccls/internal/dsr"
	"mccls/internal/metrics"
	"mccls/internal/radio"
	"mccls/internal/sim"
	"mccls/internal/traffic"
)

// RunDSR executes the scenario with DSR instead of AODV as the routing
// protocol — the generality extension: the same McCLS authenticator, cost
// model, traffic, attacks and metrics run unchanged over a source-routing
// protocol. Grayhole is not wired for DSR; use Blackhole/Rushing/NoAttack.
func (sc Scenario) RunDSR() (Result, error) {
	return sc.RunDSRContext(context.Background())
}

// RunDSRContext is RunDSR under a context; see Scenario.RunContext for the
// cancellation semantics.
func (sc Scenario) RunDSRContext(ctx context.Context) (Result, error) {
	sc = sc.withDefaults()
	s := sim.New(sc.Seed)
	s.SetMaxEvents(sc.MaxEvents)
	s.SetInterrupt(ctx.Err)

	horizon := sc.Duration + 30*time.Second
	mob, err := sc.buildMobility(horizon, s.Rand())
	if err != nil {
		return Result{}, err
	}
	medium := radio.New(s, mob, sc.Radio)

	attackers := map[int]bool{}
	if sc.Attack != NoAttack {
		for i := 0; i < sc.Attackers && i < sc.Nodes-2; i++ {
			attackers[sc.Nodes-1-i] = true
		}
	}

	if sc.OnlineEnrollment {
		// The enrollment protocol is wired through the AODV node
		// lifecycle only; failing beats silently running keyless.
		return Result{}, fmt.Errorf("experiments: online enrollment is not supported on the DSR substrate")
	}
	auth, _, err := sc.buildAuth(rand.New(rand.NewSource(sc.Seed^0x647372)), attackers)
	if err != nil {
		return Result{}, err
	}

	nodes := make([]*dsr.Node, sc.Nodes)
	for i := range nodes {
		nodes[i] = dsr.NewNode(i, s, medium, dsr.Config{}, auth)
	}
	for id := range attackers {
		switch sc.Attack {
		case Blackhole:
			attack.MakeDSRBlackhole(nodes[id])
		case Rushing:
			attack.MakeDSRRushing(nodes[id])
		}
	}

	var honest []int
	for i := 0; i < sc.Nodes; i++ {
		if !attackers[i] {
			honest = append(honest, i)
		}
	}
	flows := traffic.RandomFlows(sc.Flows, honest, s.Rand())
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	traffic.StartCBR(s, senders, flows, traffic.CBRConfig{
		Rate:        sc.Rate,
		PacketBytes: sc.PacketBytes,
		Start:       2 * time.Second,
		Stop:        2*time.Second + sc.Duration,
	})

	s.Run(sc.Duration + 12*time.Second)
	if err := s.Err(); err != nil {
		return Result{}, fmt.Errorf("scenario aborted after %d events: %w", s.Processed(), err)
	}
	return Result{
		Summary: collectDSR(nodes), Radio: medium.Stats, Events: s.Processed(),
		PeakQueue: s.PeakQueue(), EventAllocs: s.EventAllocs(), Grid: medium.GridStats(),
	}, nil
}

// collectDSR maps DSR counters onto the shared metrics summary (route
// requests take the RREQ slots; the four paper metrics carry over
// unchanged).
func collectDSR(nodes []*dsr.Node) metrics.Summary {
	var s metrics.Summary
	for _, n := range nodes {
		st := n.Stats
		s.DataSent += st.DataSent
		s.DataDelivered += st.DataDelivered
		s.DataForwarded += st.DataForwarded
		s.RREQInitiated += st.RequestInitiated
		s.RREQForwarded += st.RequestForwarded
		s.RREQRetried += st.RequestRetried
		s.AttackerDrops += st.DropByAttacker
		s.AuthRejected += st.AuthRejected
		s.LinkBreaks += st.DropLinkBreak
		s.NoRouteDrops += st.DropNoRoute
		s.DelaySum += st.DelaySum
		s.DelayCount += st.DelayCount
	}
	return s
}

// FigureDSR is the generality extension experiment (no paper counterpart):
// packet drop ratio under 2-node black hole and rushing attacks with DSR as
// the substrate, plain vs McCLS-authenticated. The expected shape mirrors
// Figure 5: nonzero drops for plain DSR, zero for McCLS-DSR. All curves,
// sweep points and repeats run concurrently on the trial pool.
func FigureDSR(cfg SweepConfig) (Figure, error) {
	curves := []curve{
		{"DSR black hole", Plain, Blackhole},
		{"DSR rushing", Plain, Rushing},
		{"McCLS-DSR black hole", McCLSCost, Blackhole},
		{"McCLS-DSR rushing", McCLSCost, Rushing},
	}
	results, err := cfg.runSweeps(curves, Scenario.RunDSRContext)
	if err != nil {
		return Figure{}, err
	}
	var series []Series
	for i, c := range curves {
		series = append(series, results[i].series(c.label, dropSel))
	}
	return Figure{
		ID: "figDSR", Title: "Packet Drop Ratio (DSR extension)",
		XLabel: "speed (m/s)", YLabel: "packet drop ratio",
		Series: series,
	}, nil
}
