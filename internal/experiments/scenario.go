// Package experiments reproduces the paper's evaluation: the Table 1
// scheme comparison and the five figures measuring AODV vs McCLS-AODV in a
// 20-node random-waypoint MANET, with and without black hole and rushing
// attackers. Every table and figure has a function that regenerates its
// rows/series; bench_test.go and cmd/manetsim are thin wrappers around
// them.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/attack"
	"mccls/internal/fault"
	"mccls/internal/metrics"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/secrouting"
	"mccls/internal/sim"
	"mccls/internal/traffic"
)

// SecurityMode selects the routing-authentication configuration.
type SecurityMode int

const (
	// Plain is unauthenticated AODV, the paper's baseline.
	Plain SecurityMode = iota + 1
	// McCLSCost is McCLS-AODV with the calibrated cost-model
	// authenticator (default for parameter sweeps).
	McCLSCost
	// McCLSReal is McCLS-AODV doing real pairing cryptography per
	// control packet (slow; small scenarios and equivalence tests).
	McCLSReal
)

func (m SecurityMode) String() string {
	switch m {
	case Plain:
		return "AODV"
	case McCLSCost, McCLSReal:
		return "McCLS"
	default:
		return fmt.Sprintf("SecurityMode(%d)", int(m))
	}
}

// AttackMode selects the adversary.
type AttackMode int

const (
	NoAttack AttackMode = iota + 1
	Blackhole
	Rushing
	// Grayhole is the insider selective-forwarding extension (see
	// internal/attack): the attackers hold valid KGC keys, so routing
	// authentication does NOT exclude them. Used by the ablation that
	// delimits what McCLS protects against.
	Grayhole
)

func (m AttackMode) String() string {
	switch m {
	case NoAttack:
		return "none"
	case Blackhole:
		return "black hole"
	case Rushing:
		return "rushing"
	case Grayhole:
		return "gray hole (insider)"
	default:
		return fmt.Sprintf("AttackMode(%d)", int(m))
	}
}

// MobilityModel selects the movement pattern of the scenario's nodes.
type MobilityModel int

const (
	// RandomWaypointMobility is the paper's model (§6) and the zero value:
	// uniform waypoints, straight legs, optional pause.
	RandomWaypointMobility MobilityModel = iota
	// ManhattanMobility constrains nodes to a grid of orthogonal streets
	// with probabilistic turns at intersections — the urban city-scale
	// pattern. Street spacing comes from Scenario.StreetSpacing.
	ManhattanMobility
	// HighwayMobility moves nodes along parallel lanes of a wrap-around
	// highway of length Scenario.Width, alternating direction by lane.
	HighwayMobility
)

func (m MobilityModel) String() string {
	switch m {
	case RandomWaypointMobility:
		return "random waypoint"
	case ManhattanMobility:
		return "manhattan"
	case HighwayMobility:
		return "highway"
	default:
		return fmt.Sprintf("MobilityModel(%d)", int(m))
	}
}

// ExplicitZero marks a numeric Scenario field as "really zero". Because a
// field's zero value selects the paper default (Attackers: 0 → 2,
// GrayholeDropProb: 0 → 0.5), plain 0 is inexpressible there; set the field
// to ExplicitZero to get an actual zero (no attackers / a gray hole that
// never drops).
const ExplicitZero = -1

// Scenario is one simulation configuration. Zero values select the paper's
// setup (§6): 20 nodes in a 1500×300 m field, random waypoint with zero
// pause, 10 CBR flows of 512-byte packets at 4 packets/s, two attackers
// when an attack is enabled.
type Scenario struct {
	Nodes         int
	Width, Height float64
	MaxSpeed      float64 // m/s; 0 keeps nodes static
	Pause         time.Duration
	Duration      time.Duration
	Seed          int64

	// Mobility selects the movement model (zero value: the paper's random
	// waypoint). StreetSpacing is the Manhattan street grid's block size in
	// meters (0 selects the mobility package's 100 m default) and is ignored
	// by the other models.
	Mobility      MobilityModel
	StreetSpacing float64
	// RangeJitter spreads per-node radio ranges uniformly over
	// Range·[1−j, 1+j] (clamped to j ≤ 0.9), modelling a heterogeneous
	// radio population. The jitter is drawn from a seed-derived stream
	// independent of the simulation RNG, so 0 leaves runs bit-identical to
	// the homogeneous setup.
	RangeJitter float64

	Flows       int
	Rate        float64
	PacketBytes int

	Security SecurityMode
	Attack   AttackMode
	// Attackers is the number of attacking nodes (default 2;
	// ExplicitZero for an attack with none).
	Attackers int
	// GrayholeDropProb is the insider gray hole's per-packet drop
	// probability (default 0.5; ExplicitZero for a gray hole that never
	// drops; only used when Attack == Grayhole).
	GrayholeDropProb float64

	// MaxEvents bounds the simulator's event budget (0 = unlimited): a
	// runaway event chain fails the run with sim.ErrEventBudget instead
	// of hanging its worker.
	MaxEvents uint64

	// SignLatency and VerifyLatency override the injected crypto costs
	// (0 selects the secrouting defaults). Ignored under Plain.
	SignLatency, VerifyLatency time.Duration
	// VerifyBatch models receivers that drain their verification queue in
	// windows of this size through the batch engine: the per-packet verify
	// latency becomes the amortized batch cost
	// secrouting.DefaultVerifyCostModel().PerSignature(VerifyBatch).
	// 0 or 1 keeps sequential verification; an explicit VerifyLatency
	// override wins. Ignored under Plain.
	VerifyBatch int

	// Faults is an explicit fault schedule applied to the run: node
	// crash/restart cycles, link and region outages, loss windows.
	Faults fault.Schedule
	// ChurnEvents adds this many random crash/restart cycles on top of
	// Faults. The schedule is drawn from Seed on a stream independent of
	// the simulation RNG, so every security mode at the same seed
	// suffers the identical churn (paired comparison).
	ChurnEvents int
	// OnlineEnrollment replaces out-of-band pre-enrollment with the
	// in-network KGC protocol: nodes request keys over the radio with
	// capped-exponential-backoff retries, and a crashed node loses its
	// volatile keys and re-enrolls on restart. Ignored under Plain.
	OnlineEnrollment bool
	// Enroll parameterizes online enrollment (zero values select the
	// secrouting defaults: KGC at node 0, 500ms timeout, 1s–16s backoff).
	Enroll secrouting.EnrollConfig

	Radio radio.Config
	AODV  aodv.Config
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Nodes == 0 {
		sc.Nodes = 20
	}
	if sc.Width == 0 {
		sc.Width = 1500
	}
	if sc.Height == 0 {
		sc.Height = 300
	}
	if sc.Duration == 0 {
		sc.Duration = 300 * time.Second
	}
	if sc.Flows == 0 {
		sc.Flows = 10
	}
	if sc.Rate == 0 {
		sc.Rate = 4
	}
	if sc.PacketBytes == 0 {
		sc.PacketBytes = 512
	}
	if sc.Security == 0 {
		sc.Security = Plain
	}
	if sc.Attack == 0 {
		sc.Attack = NoAttack
	}
	switch {
	case sc.Attackers == 0:
		sc.Attackers = 2
	case sc.Attackers < 0: // ExplicitZero
		sc.Attackers = 0
	}
	switch {
	case sc.GrayholeDropProb == 0:
		sc.GrayholeDropProb = 0.5
	case sc.GrayholeDropProb < 0: // ExplicitZero
		sc.GrayholeDropProb = 0
	}
	if sc.Radio.Range == 0 {
		// QualNet's default 802.11 radio at 2 Mb/s reaches ≈370 m; with
		// the default 250 m disk the 1500×300 m field starts partitioned
		// and mobility *helps* delivery, inverting the paper's trends.
		sc.Radio.Range = 350
	}
	return sc
}

// Result bundles a run's metrics with the environment counters useful for
// debugging scenarios.
type Result struct {
	metrics.Summary
	Radio radio.Stats
	// Enroll sums the online-enrollment counters (zero when the scenario
	// pre-enrolls out of band).
	Enroll secrouting.EnrollStats
	// Events is the number of simulator events the run processed, the
	// scenario's natural work unit for throughput observability.
	Events uint64
	// PeakQueue is the event queue's high-water mark and EventAllocs the
	// pooled event store's live high-water mark (fresh allocations, not
	// events processed).
	PeakQueue   int
	EventAllocs uint64
	// Grid reports the spatial neighbor index's work (all zero when the
	// scenario disables it via Radio.NoIndex).
	Grid radio.GridStats
}

// Run executes the scenario and returns its metrics.
func (sc Scenario) Run() (Result, error) {
	return sc.RunContext(context.Background())
}

// RunContext executes the scenario under a context: cancellation (or a
// deadline) is polled by the simulator's interrupt hook and aborts the run
// with the context's error.
func (sc Scenario) RunContext(ctx context.Context) (Result, error) {
	sc = sc.withDefaults()
	if sc.Nodes < 2 {
		return Result{}, fmt.Errorf("experiments: %d nodes, need at least 2", sc.Nodes)
	}
	s := sim.New(sc.Seed)
	s.SetMaxEvents(sc.MaxEvents)
	s.SetInterrupt(ctx.Err)

	horizon := sc.Duration + 30*time.Second
	mob, err := sc.buildMobility(horizon, s.Rand())
	if err != nil {
		return Result{}, err
	}
	medium := radio.New(s, mob, sc.Radio)
	if sc.RangeJitter > 0 {
		// A stream independent of the simulation RNG: jitter must not shift
		// waypoint or MAC draws, and the same seed must give every security
		// mode the same radio population (paired comparison).
		j := math.Min(sc.RangeJitter, 0.9)
		jrng := rand.New(rand.NewSource(sc.Seed ^ 0x726a7472)) // "rjtr"
		for i := 0; i < sc.Nodes; i++ {
			medium.SetNodeRange(i, sc.Radio.Range*(1+j*(2*jrng.Float64()-1)))
		}
	}

	// Attackers take the highest node indices; their random-waypoint
	// placement is as good as anyone's.
	attackers := map[int]bool{}
	if sc.Attack != NoAttack {
		for i := 0; i < sc.Attackers && i < sc.Nodes-2; i++ {
			attackers[sc.Nodes-1-i] = true
		}
	}

	// Crypto randomness is drawn from a stream separate from the
	// simulation's, so McCLSReal and McCLSCost runs consume the simulator
	// RNG identically and produce identical routing behaviour (asserted
	// by tests).
	auth, authority, err := sc.buildAuth(rand.New(rand.NewSource(sc.Seed^0x6d63434c53)), attackers)
	if err != nil {
		return Result{}, err
	}

	nodes := make([]*aodv.Node, sc.Nodes)
	for i := range nodes {
		nodes[i] = aodv.NewNode(i, s, medium, sc.AODV, auth)
	}
	for id := range attackers {
		switch sc.Attack {
		case Blackhole:
			attack.MakeBlackhole(nodes[id])
		case Rushing:
			attack.MakeRushing(nodes[id])
		case Grayhole:
			attack.MakeGrayhole(nodes[id], sc.GrayholeDropProb,
				rand.New(rand.NewSource(sc.Seed+int64(id))))
		}
	}

	// Online enrollment: the KGC lives at a node; everyone the paper's
	// rule would key (honest nodes, plus gray hole insiders) becomes a
	// client and must fetch its key over the air. The handler interposer
	// requires the routing handlers to be installed already.
	var enr *secrouting.Enrollment
	if sc.OnlineEnrollment && authority != nil {
		var clients []int
		for i := 0; i < sc.Nodes; i++ {
			if i == sc.Enroll.KGCNode {
				continue
			}
			if sc.Attack == Grayhole || !attackers[i] {
				clients = append(clients, i)
			}
		}
		enrollCfg := sc.Enroll
		if enrollCfg.JitterSeed == 0 {
			// Backoff jitter on its own seed-derived stream, like range
			// jitter and churn: retry schedules must not shift any shared
			// simulation draws.
			enrollCfg.JitterSeed = sc.Seed ^ 0x626b6a74 // "bkjt"
		}
		enr = secrouting.NewEnrollment(s, medium, authority, clients, enrollCfg)
		if err := enr.Start(); err != nil {
			return Result{}, err
		}
	}

	// Fault injection: explicit schedule plus seed-derived churn, applied
	// through the node lifecycle so enrollment state tracks crashes.
	sched := sc.Faults
	if sc.ChurnEvents > 0 {
		churnRng := rand.New(rand.NewSource(sc.Seed ^ 0x6368726e)) // "chrn"
		churn := fault.Churn(churnRng, fault.ChurnConfig{
			Events:   sc.ChurnEvents,
			Nodes:    sc.Nodes,
			Duration: sc.Duration,
		})
		sched.Crashes = append(append([]fault.Crash{}, sched.Crashes...), churn.Crashes...)
	}
	if !sched.Empty() {
		fnodes := make([]fault.Node, len(nodes))
		for i, nd := range nodes {
			fnodes[i] = nd
		}
		var hooks fault.Hooks
		if enr != nil {
			hooks.OnCrash = enr.OnCrash
			hooks.OnRestart = enr.OnRestart
		}
		fault.Apply(s, sched, fnodes, medium, hooks)
	}

	var honest []int
	for i := 0; i < sc.Nodes; i++ {
		if !attackers[i] {
			honest = append(honest, i)
		}
	}
	flows := traffic.RandomFlows(sc.Flows, honest, s.Rand())
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	traffic.StartCBR(s, senders, flows, traffic.CBRConfig{
		Rate:        sc.Rate,
		PacketBytes: sc.PacketBytes,
		Start:       2 * time.Second,
		Stop:        2*time.Second + sc.Duration,
	})

	// Run past the traffic window so in-flight packets drain.
	s.Run(sc.Duration + 12*time.Second)
	if err := s.Err(); err != nil {
		return Result{}, fmt.Errorf("scenario aborted after %d events: %w", s.Processed(), err)
	}

	res := Result{
		Summary: metrics.Collect(nodes), Radio: medium.Stats, Events: s.Processed(),
		PeakQueue: s.PeakQueue(), EventAllocs: s.EventAllocs(), Grid: medium.GridStats(),
	}
	if enr != nil {
		res.Enroll = enr.Totals()
	}
	return res, nil
}

// buildMobility constructs the scenario's movement model. All models draw
// their trajectories from the simulation RNG at construction, so the zero
// value (random waypoint) consumes the stream exactly as the original
// single-model code did and stays bit-identical.
func (sc Scenario) buildMobility(horizon time.Duration, rng *rand.Rand) (mobility.Model, error) {
	switch sc.Mobility {
	case RandomWaypointMobility:
		return mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Width:    sc.Width,
			Height:   sc.Height,
			MaxSpeed: sc.MaxSpeed,
			Pause:    sc.Pause,
		}, sc.Nodes, horizon, rng), nil
	case ManhattanMobility:
		return mobility.NewManhattanGrid(mobility.ManhattanGridConfig{
			Width:    sc.Width,
			Height:   sc.Height,
			Spacing:  sc.StreetSpacing,
			MaxSpeed: sc.MaxSpeed,
		}, sc.Nodes, horizon, rng), nil
	case HighwayMobility:
		return mobility.NewHighway(mobility.HighwayConfig{
			Length:   sc.Width,
			MaxSpeed: sc.MaxSpeed,
		}, sc.Nodes, horizon, rng), nil
	default:
		return nil, fmt.Errorf("experiments: unknown mobility model %d", int(sc.Mobility))
	}
}

// effectiveVerifyLatency resolves the per-packet verify latency: an
// explicit VerifyLatency override wins, then a VerifyBatch window > 1
// charges the amortized batch cost, and otherwise the model's sequential
// default applies.
func (sc Scenario) effectiveVerifyLatency(model secrouting.VerifyCostModel) time.Duration {
	if sc.VerifyLatency != 0 {
		return sc.VerifyLatency
	}
	if sc.VerifyBatch > 1 {
		return model.PerSignature(sc.VerifyBatch)
	}
	return model.Sequential
}

// buildAuth constructs the authenticator for the security mode. Without
// online enrollment it keys every honest node before t=0; with it, nodes
// start keyless and the returned Authority is what the enrollment protocol
// issues through. Gray hole attackers are *insiders*: they get keys too,
// which is exactly the property that ablation probes.
func (sc Scenario) buildAuth(rng *rand.Rand, attackers map[int]bool) (aodv.Authenticator, secrouting.Authority, error) {
	if sc.Attack == Grayhole {
		attackers = nil // insiders get keys like everyone else
	}
	var a interface {
		aodv.Authenticator
		secrouting.Authority
	}
	switch sc.Security {
	case Plain:
		return aodv.NullAuth{}, nil, nil
	case McCLSCost:
		m := secrouting.NewCostModelAuth()
		if sc.SignLatency != 0 {
			m.SignLatency = sc.SignLatency
		}
		m.VerifyLatency = sc.effectiveVerifyLatency(m.BatchModel)
		a = m
	case McCLSReal:
		m, err := secrouting.NewMcCLSAuth(rng)
		if err != nil {
			return nil, nil, err
		}
		if sc.SignLatency != 0 {
			m.SignLatency = sc.SignLatency
		}
		m.VerifyLatency = sc.effectiveVerifyLatency(m.BatchModel)
		a = m
	default:
		return nil, nil, fmt.Errorf("experiments: unknown security mode %d", sc.Security)
	}
	if sc.OnlineEnrollment {
		return a, a, nil
	}
	for i := 0; i < sc.Nodes; i++ {
		if !attackers[i] {
			if err := a.Enroll(i); err != nil {
				return nil, nil, err
			}
		}
	}
	return a, a, nil
}
