package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// MediumAblationResult quantifies the spatial-index refactor at the medium
// level: the same broadcast-wave workload — every node floods once per wave
// and all deliveries drain — timed against the naive O(n) per-lookup scan
// (O(n²) per wave) and against the uniform-grid index. The grid is pinned
// bit-identical to the naive scan, so both passes process the exact same
// event sequence and the events/sec ratio isolates the neighbor-lookup
// cost. End-to-end figure sweeps gain less (routing and data-plane events
// dominate there); this is the number the tentpole targets.
type MediumAblationResult struct {
	Nodes             int
	Waves             int
	Events            uint64 // events per timed pass (identical both modes)
	NaiveEventsPerSec float64
	GridEventsPerSec  float64
	Speedup           float64
}

// RunMediumAblation runs the broadcast-wave ablation at the given node
// count. Nodes are random-waypoint walkers at the paper's density (22500 m²
// per node, 250 m radio range); one untimed warm-up wave fills the event
// and delivery pools so the timed passes run at steady state.
func RunMediumAblation(nodes, waves int) (MediumAblationResult, error) {
	if nodes < 2 {
		return MediumAblationResult{}, fmt.Errorf("experiments: %d nodes, need at least 2", nodes)
	}
	if waves < 1 {
		waves = 1
	}
	run := func(noIndex bool) (uint64, time.Duration) {
		s := sim.New(1)
		mob := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Width: 150 * float64(nodes), Height: 300, MaxSpeed: 20,
		}, nodes, 300*time.Second, rand.New(rand.NewSource(1)))
		m := radio.New(s, mob, radio.Config{Range: 250, NoIndex: noIndex})
		for i := 0; i < nodes; i++ {
			m.SetHandler(i, func(int, any) {})
		}
		payload := any("wave")
		for i := 0; i < nodes; i++ {
			m.Broadcast(i, 64, payload)
		}
		s.RunAll()
		base := s.Processed()
		start := time.Now()
		for w := 0; w < waves; w++ {
			for i := 0; i < nodes; i++ {
				m.Broadcast(i, 64, payload)
			}
			s.RunAll()
		}
		return s.Processed() - base, time.Since(start)
	}
	naiveEvents, naiveWall := run(true)
	gridEvents, gridWall := run(false)
	if naiveEvents != gridEvents {
		return MediumAblationResult{}, fmt.Errorf(
			"experiments: medium ablation processed %d events naive vs %d grid — index diverged from oracle",
			naiveEvents, gridEvents)
	}
	res := MediumAblationResult{
		Nodes:             nodes,
		Waves:             waves,
		Events:            naiveEvents,
		NaiveEventsPerSec: float64(naiveEvents) / naiveWall.Seconds(),
		GridEventsPerSec:  float64(gridEvents) / gridWall.Seconds(),
	}
	if res.NaiveEventsPerSec > 0 {
		res.Speedup = res.GridEventsPerSec / res.NaiveEventsPerSec
	}
	return res, nil
}
