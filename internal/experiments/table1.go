package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"mccls/internal/schemes"
)

// Table1Row is one scheme's entry in the paper's Table 1, extended with
// wall-clock measurements on this machine's BN254 substrate.
type Table1Row struct {
	Scheme string
	// Sign, Verify and PubKeyLen are the symbolic operation counts
	// exactly as printed in the paper (p = pairing, s = scalar
	// multiplication, e = exponentiation).
	Sign      string
	Verify    string
	PubKeyLen string
	// SignTime and VerifyTime are measured means over the benchmark
	// iterations.
	SignTime   time.Duration
	VerifyTime time.Duration
}

// opString renders counts in the paper's "1p+3s" notation.
func opString(pairings, scalars, exps int) string {
	var parts []string
	if pairings > 0 {
		parts = append(parts, fmt.Sprintf("%dp", pairings))
	}
	if scalars > 0 {
		parts = append(parts, fmt.Sprintf("%ds", scalars))
	}
	if exps > 0 {
		parts = append(parts, fmt.Sprintf("%de", exps))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, "+")
}

// Table1 regenerates the scheme comparison: operation profiles from the
// paper plus sign/verify wall-clock means over iters iterations per scheme.
// The verifier caches are warmed first where the published counts assume
// caching (McCLS, YHG), so measurements reflect steady state.
func Table1(iters int, rng io.Reader) ([]Table1Row, error) {
	return Table1Context(context.Background(), iters, rng)
}

// Table1Context is Table1 under a context, checked between schemes so a
// cancelled or timed-out caller is not stuck behind the slow pairing
// benchmarks. Measurement stays strictly serial — timings would be
// meaningless with schemes contending for the CPU.
func Table1Context(ctx context.Context, iters int, rng io.Reader) ([]Table1Row, error) {
	if iters <= 0 {
		iters = 5
	}
	msg := []byte("Table 1 benchmark message: AODV RREQ payload equivalent")
	var rows []Table1Row
	for _, sch := range schemes.All() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("table1: %w", err)
		}
		p := sch.Profile()
		sys, err := sch.Setup(rng)
		if err != nil {
			return nil, fmt.Errorf("table1: %s setup: %w", p.Name, err)
		}
		user, err := sys.NewUser("bench-node", rng)
		if err != nil {
			return nil, fmt.Errorf("table1: %s enroll: %w", p.Name, err)
		}
		// Warm the per-identity caches so steady-state cost is measured.
		warm, err := user.Sign(msg, rng)
		if err != nil {
			return nil, fmt.Errorf("table1: %s warm sign: %w", p.Name, err)
		}
		if err := sys.Verify(user.ID(), user.PublicKey(), msg, warm); err != nil {
			return nil, fmt.Errorf("table1: %s warm verify: %w", p.Name, err)
		}

		sigs := make([][]byte, iters)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if sigs[i], err = user.Sign(msg, rng); err != nil {
				return nil, fmt.Errorf("table1: %s sign: %w", p.Name, err)
			}
		}
		signTime := time.Since(start) / time.Duration(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := sys.Verify(user.ID(), user.PublicKey(), msg, sigs[i]); err != nil {
				return nil, fmt.Errorf("table1: %s verify: %w", p.Name, err)
			}
		}
		verifyTime := time.Since(start) / time.Duration(iters)

		rows = append(rows, Table1Row{
			Scheme:     p.Name,
			Sign:       opString(p.SignPairings, p.SignScalarMults, 0),
			Verify:     opString(p.VerifyPairings, p.VerifyScalarMults, p.VerifyExps),
			PubKeyLen:  fmt.Sprintf("%d point(s)", p.PublicKeyPoints),
			SignTime:   signTime,
			VerifyTime: verifyTime,
		})
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1 with measured
// timings appended.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-12s %14s %14s\n",
		"Scheme", "Sign", "Verify", "PubKey Len", "Sign (ms)", "Verify (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-10s %-10s %-12s %14.2f %14.2f\n",
			r.Scheme, r.Sign, r.Verify, r.PubKeyLen,
			float64(r.SignTime)/float64(time.Millisecond),
			float64(r.VerifyTime)/float64(time.Millisecond))
	}
	return b.String()
}
