package experiments

import (
	"fmt"
	"strings"
	"time"

	"mccls/internal/metrics"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64 // node speed in m/s
	Y     []float64
}

// Figure is a regenerated paper figure: its identity plus the data series
// as plotted.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// SweepConfig drives a speed sweep. Zero values select the paper's setup.
type SweepConfig struct {
	// Base is the common scenario; its MaxSpeed/Security/Attack/Seed are
	// overridden per sweep point.
	Base Scenario
	// Speeds are the swept maximum node speeds in m/s (default
	// 1, 5, 10, 15, 20 — the paper's x-axis).
	Speeds []float64
	// Repeats averages each point over this many seeds (default 3).
	Repeats int
	// Seed is the base RNG seed; repeat k of a point uses Seed + k.
	Seed int64
}

func (cfg SweepConfig) withDefaults() SweepConfig {
	if len(cfg.Speeds) == 0 {
		cfg.Speeds = []float64{1, 5, 10, 15, 20}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// runPoint executes one (speed, security, attack) sweep point averaged over
// the configured repeats.
func (cfg SweepConfig) runPoint(speed float64, sec SecurityMode, atk AttackMode) (metrics.Summary, error) {
	runs := make([]metrics.Summary, 0, cfg.Repeats)
	for k := 0; k < cfg.Repeats; k++ {
		sc := cfg.Base
		sc.MaxSpeed = speed
		sc.Security = sec
		sc.Attack = atk
		sc.Seed = cfg.Seed + int64(k)*7919
		res, err := sc.Run()
		if err != nil {
			return metrics.Summary{}, err
		}
		runs = append(runs, res.Summary)
	}
	return metrics.Average(runs), nil
}

// SweepResult holds one protocol variant's summaries across the speed axis.
type SweepResult struct {
	Speeds    []float64
	Summaries []metrics.Summary
}

// Sweep runs the speed sweep for one (security, attack) combination.
func (cfg SweepConfig) Sweep(sec SecurityMode, atk AttackMode) (SweepResult, error) {
	cfg = cfg.withDefaults()
	out := SweepResult{Speeds: cfg.Speeds}
	for _, v := range cfg.Speeds {
		s, err := cfg.runPoint(v, sec, atk)
		if err != nil {
			return SweepResult{}, err
		}
		out.Summaries = append(out.Summaries, s)
	}
	return out, nil
}

// series projects a sweep result through a metric extractor.
func (r SweepResult) series(label string, f func(metrics.Summary) float64) Series {
	s := Series{Label: label, X: r.Speeds}
	for _, sum := range r.Summaries {
		s.Y = append(s.Y, f(sum))
	}
	return s
}

// baselinePair runs the no-attack sweep for AODV and McCLS.
func baselinePair(cfg SweepConfig) (aodv, mccls SweepResult, err error) {
	if aodv, err = cfg.Sweep(Plain, NoAttack); err != nil {
		return
	}
	mccls, err = cfg.Sweep(McCLSCost, NoAttack)
	return
}

func pdr(s metrics.Summary) float64       { return s.PacketDeliveryRatio() }
func rreqRatio(s metrics.Summary) float64 { return s.RREQRatio() }
func delayMs(s metrics.Summary) float64 {
	return float64(s.EndToEndDelay()) / float64(time.Millisecond)
}
func dropRatio(s metrics.Summary) float64 { return s.PacketDropRatio() }

// Figure1 regenerates "Packet Delivery Ratio" (no attack): AODV vs McCLS
// across node speed.
func Figure1(cfg SweepConfig) (Figure, error) {
	a, m, err := baselinePair(cfg)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig1", Title: "Packet Delivery Ratio",
		XLabel: "speed (m/s)", YLabel: "packet delivery ratio",
		Series: []Series{a.series("AODV", pdr), m.series("McCLS", pdr)},
	}, nil
}

// Figure2 regenerates "RREQ Ratio" (no attack).
func Figure2(cfg SweepConfig) (Figure, error) {
	a, m, err := baselinePair(cfg)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig2", Title: "RREQ Ratio",
		XLabel: "speed (m/s)", YLabel: "RREQ ratio",
		Series: []Series{a.series("AODV", rreqRatio), m.series("McCLS", rreqRatio)},
	}, nil
}

// Figure3 regenerates "End-to-End Delay" (no attack); McCLS pays its
// signature/verification latency per control hop.
func Figure3(cfg SweepConfig) (Figure, error) {
	a, m, err := baselinePair(cfg)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig3", Title: "End-to-End Delay",
		XLabel: "speed (m/s)", YLabel: "delay (ms)",
		Series: []Series{a.series("AODV", delayMs), m.series("McCLS", delayMs)},
	}, nil
}

// Figure4 regenerates "Packet Delivery Ratio under attack": the no-attack
// baselines plus each protocol under 2-node black hole and rushing attacks.
func Figure4(cfg SweepConfig) (Figure, error) {
	a, m, err := baselinePair(cfg)
	if err != nil {
		return Figure{}, err
	}
	combos := []struct {
		label string
		sec   SecurityMode
		atk   AttackMode
	}{
		{"AODV black hole", Plain, Blackhole},
		{"AODV rushing", Plain, Rushing},
		{"McCLS black hole", McCLSCost, Blackhole},
		{"McCLS rushing", McCLSCost, Rushing},
	}
	series := []Series{a.series("AODV", pdr), m.series("McCLS", pdr)}
	for _, c := range combos {
		r, err := cfg.Sweep(c.sec, c.atk)
		if err != nil {
			return Figure{}, err
		}
		series = append(series, r.series(c.label, pdr))
	}
	return Figure{
		ID: "fig4", Title: "Packet Delivery Ratio under attack",
		XLabel: "speed (m/s)", YLabel: "packet delivery ratio",
		Series: series,
	}, nil
}

// Figure5 regenerates "Packet Drop Ratio": the fraction of sourced data
// absorbed by the attackers for each protocol × attack combination.
func Figure5(cfg SweepConfig) (Figure, error) {
	combos := []struct {
		label string
		sec   SecurityMode
		atk   AttackMode
	}{
		{"AODV black hole", Plain, Blackhole},
		{"AODV rushing", Plain, Rushing},
		{"McCLS black hole", McCLSCost, Blackhole},
		{"McCLS rushing", McCLSCost, Rushing},
	}
	var series []Series
	for _, c := range combos {
		r, err := cfg.Sweep(c.sec, c.atk)
		if err != nil {
			return Figure{}, err
		}
		series = append(series, r.series(c.label, dropRatio))
	}
	return Figure{
		ID: "fig5", Title: "Packet Drop Ratio",
		XLabel: "speed (m/s)", YLabel: "packet drop ratio",
		Series: series,
	}, nil
}

// Render formats a figure as an aligned text table, one row per speed.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s vs %s)\n", f.ID, f.Title, f.YLabel, f.XLabel)
	fmt.Fprintf(&b, "%-8s", "speed")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %22s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-8.0f", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %22.3f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("speed")
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.4f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
