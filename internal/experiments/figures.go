package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mccls/internal/metrics"
	"mccls/internal/runner"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64 // node speed in m/s
	Y     []float64
	// YErr is the half-width of the 95% confidence interval of each Y,
	// computed over the per-seed repeats (Student t). Empty when the
	// series was built without repeat statistics.
	YErr []float64
}

// Figure is a regenerated paper figure: its identity plus the data series
// as plotted.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// XColumn names the x column in rendered and CSV output; empty means
	// "speed" (the original figures sweep node speed).
	XColumn string
	Series  []Series
}

// TrialUpdate is the per-trial progress record delivered to
// SweepConfig.Progress (one per finished simulation).
type TrialUpdate = runner.Update

// SweepConfig drives a speed sweep. Zero values select the paper's setup.
type SweepConfig struct {
	// Base is the common scenario; its MaxSpeed/Security/Attack/Seed are
	// overridden per sweep point.
	Base Scenario
	// Speeds are the swept maximum node speeds in m/s (default
	// 1, 5, 10, 15, 20 — the paper's x-axis).
	Speeds []float64
	// Repeats averages each point over this many seeds (default 3).
	Repeats int
	// Seed is the base RNG seed; repeat k of a point uses Seed + k·7919.
	Seed int64

	// Workers bounds the parallel trial pool (default GOMAXPROCS; 1
	// forces serial execution). Every trial owns its seed-derived RNGs,
	// so figure output is bit-identical at any worker count.
	Workers int
	// TrialTimeout is the per-trial wall-clock deadline (0 = none); a
	// trial that exceeds it fails the sweep instead of hanging the pool.
	TrialTimeout time.Duration
	// Progress, when non-nil, receives one update per finished trial
	// (serialized calls; keep it fast).
	Progress func(TrialUpdate)
	// Context cancels the whole sweep when done (nil = Background).
	Context context.Context
}

func (cfg SweepConfig) withDefaults() SweepConfig {
	if len(cfg.Speeds) == 0 {
		cfg.Speeds = []float64{1, 5, 10, 15, 20}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	return cfg
}

// curve is one (label, security, attack) combination swept across the
// speed axis.
type curve struct {
	label string
	sec   SecurityMode
	atk   AttackMode
}

// scenarioRunner abstracts the routing substrate (Scenario.RunContext for
// AODV, Scenario.RunDSRContext for DSR) so one sweep engine serves both.
type scenarioRunner func(Scenario, context.Context) (Result, error)

// observe copies a run's environment counters into the trial's
// observability slot, where the pool folds them into progress updates.
func observe(obs *runner.Obs, res Result) {
	obs.Events = res.Events
	obs.PeakQueue = res.PeakQueue
	obs.GridCells = res.Grid.Cells
	obs.GridOccupancy = res.Grid.MaxOccupancy
	obs.GridRebuilds = res.Grid.Rebuilds
	obs.GridQueries = res.Grid.Queries
	obs.GridCandidates = res.Grid.Candidates
}

// runSweeps is the sweep engine: it expands every (curve, speed, repeat)
// combination of a figure into one flat batch of trials, fans the batch out
// over the worker pool, and folds the repeats back into per-point
// aggregates — one SweepResult per curve, in curve order. Each trial is
// fully determined by its scenario (all RNG streams derive from the
// per-trial seed), so the fold is bit-identical at any worker count.
func (cfg SweepConfig) runSweeps(curves []curve, run scenarioRunner) ([]SweepResult, error) {
	cfg = cfg.withDefaults()
	trials := make([]runner.Trial[metrics.Summary], 0, len(curves)*len(cfg.Speeds)*cfg.Repeats)
	for _, c := range curves {
		for _, speed := range cfg.Speeds {
			for k := 0; k < cfg.Repeats; k++ {
				sc := cfg.Base
				sc.MaxSpeed = speed
				sc.Security = c.sec
				sc.Attack = c.atk
				sc.Seed = cfg.Seed + int64(k)*7919
				trials = append(trials, runner.Trial[metrics.Summary]{
					Label: fmt.Sprintf("%s v=%g seed=%d", c.label, speed, sc.Seed),
					Run: func(ctx context.Context, obs *runner.Obs) (metrics.Summary, error) {
						res, err := run(sc, ctx)
						observe(obs, res)
						return res.Summary, err
					},
				})
			}
		}
	}
	sums, err := runner.Run(cfg.Context, runner.Options{
		Workers:  cfg.Workers,
		Timeout:  cfg.TrialTimeout,
		Progress: cfg.Progress,
	}, trials)
	if err != nil {
		return nil, err
	}

	out := make([]SweepResult, len(curves))
	idx := 0
	for i := range curves {
		r := SweepResult{Speeds: cfg.Speeds}
		for range cfg.Speeds {
			agg := metrics.NewAggregate(sums[idx : idx+cfg.Repeats])
			idx += cfg.Repeats
			r.Aggregates = append(r.Aggregates, agg)
			r.Summaries = append(r.Summaries, agg.Pooled)
		}
		out[i] = r
	}
	return out, nil
}

// SweepResult holds one curve's statistics across the speed axis.
type SweepResult struct {
	Speeds []float64
	// Summaries pool the repeats of each point (traffic-weighted, what
	// the figures plot).
	Summaries []metrics.Summary
	// Aggregates carry the per-point mean/stddev/95% CI across repeats,
	// aligned with Summaries.
	Aggregates []metrics.Aggregate
}

// Sweep runs the speed sweep for one (security, attack) combination; all
// points and repeats execute concurrently on the trial pool.
func (cfg SweepConfig) Sweep(sec SecurityMode, atk AttackMode) (SweepResult, error) {
	results, err := cfg.runSweeps([]curve{{sec.String(), sec, atk}}, Scenario.RunContext)
	if err != nil {
		return SweepResult{}, err
	}
	return results[0], nil
}

// metricSel pairs a pooled-value extractor with the matching per-repeat
// statistic, so a series carries both its plotted value and its error bar.
type metricSel struct {
	value func(metrics.Summary) float64
	stat  func(metrics.Aggregate) metrics.Stat
}

var (
	pdrSel   = metricSel{pdr, func(a metrics.Aggregate) metrics.Stat { return a.PDR }}
	rreqSel  = metricSel{rreqRatio, func(a metrics.Aggregate) metrics.Stat { return a.RREQRatio }}
	delaySel = metricSel{delayMs, func(a metrics.Aggregate) metrics.Stat { return a.DelayMs }}
	dropSel  = metricSel{dropRatio, func(a metrics.Aggregate) metrics.Stat { return a.DropRatio }}
)

func pdr(s metrics.Summary) float64       { return s.PacketDeliveryRatio() }
func rreqRatio(s metrics.Summary) float64 { return s.RREQRatio() }
func delayMs(s metrics.Summary) float64 {
	return float64(s.EndToEndDelay()) / float64(time.Millisecond)
}
func dropRatio(s metrics.Summary) float64 { return s.PacketDropRatio() }

// series projects a sweep result through a metric selector, attaching the
// 95% CI of each point as the error bar.
func (r SweepResult) series(label string, sel metricSel) Series {
	s := Series{Label: label, X: r.Speeds}
	for i, sum := range r.Summaries {
		s.Y = append(s.Y, sel.value(sum))
		if i < len(r.Aggregates) {
			s.YErr = append(s.YErr, sel.stat(r.Aggregates[i]).CI95)
		}
	}
	return s
}

// baseline is the no-attack AODV-vs-McCLS pair shared by Figures 1–4.
var baseline = []curve{
	{"AODV", Plain, NoAttack},
	{"McCLS", McCLSCost, NoAttack},
}

// attacked is the 2-node black hole / rushing grid of Figures 4–5.
var attacked = []curve{
	{"AODV black hole", Plain, Blackhole},
	{"AODV rushing", Plain, Rushing},
	{"McCLS black hole", McCLSCost, Blackhole},
	{"McCLS rushing", McCLSCost, Rushing},
}

// figure runs one batch of curves (all points and repeats concurrently) and
// projects every curve through sel.
func (cfg SweepConfig) figure(curves []curve, sel metricSel) ([]Series, error) {
	results, err := cfg.runSweeps(curves, Scenario.RunContext)
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(curves))
	for i, c := range curves {
		series[i] = results[i].series(c.label, sel)
	}
	return series, nil
}

// Figure1 regenerates "Packet Delivery Ratio" (no attack): AODV vs McCLS
// across node speed.
func Figure1(cfg SweepConfig) (Figure, error) {
	series, err := cfg.figure(baseline, pdrSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig1", Title: "Packet Delivery Ratio",
		XLabel: "speed (m/s)", YLabel: "packet delivery ratio",
		Series: series,
	}, nil
}

// Figure2 regenerates "RREQ Ratio" (no attack).
func Figure2(cfg SweepConfig) (Figure, error) {
	series, err := cfg.figure(baseline, rreqSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig2", Title: "RREQ Ratio",
		XLabel: "speed (m/s)", YLabel: "RREQ ratio",
		Series: series,
	}, nil
}

// Figure3 regenerates "End-to-End Delay" (no attack); McCLS pays its
// signature/verification latency per control hop.
func Figure3(cfg SweepConfig) (Figure, error) {
	series, err := cfg.figure(baseline, delaySel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig3", Title: "End-to-End Delay",
		XLabel: "speed (m/s)", YLabel: "delay (ms)",
		Series: series,
	}, nil
}

// Figure4 regenerates "Packet Delivery Ratio under attack": the no-attack
// baselines plus each protocol under 2-node black hole and rushing attacks,
// all six curves in one concurrent batch.
func Figure4(cfg SweepConfig) (Figure, error) {
	series, err := cfg.figure(append(append([]curve{}, baseline...), attacked...), pdrSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig4", Title: "Packet Delivery Ratio under attack",
		XLabel: "speed (m/s)", YLabel: "packet delivery ratio",
		Series: series,
	}, nil
}

// Figure5 regenerates "Packet Drop Ratio": the fraction of sourced data
// absorbed by the attackers for each protocol × attack combination.
func Figure5(cfg SweepConfig) (Figure, error) {
	series, err := cfg.figure(attacked, dropSel)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig5", Title: "Packet Drop Ratio",
		XLabel: "speed (m/s)", YLabel: "packet drop ratio",
		Series: series,
	}, nil
}

// Render formats a figure as an aligned text table, one row per speed;
// values carry their ±95% CI when repeat statistics are available.
// xColumn is the x-axis column name shared by Render and CSV.
func (f Figure) xColumn() string {
	if f.XColumn != "" {
		return f.XColumn
	}
	return "speed"
}

func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s vs %s)\n", f.ID, f.Title, f.YLabel, f.XLabel)
	fmt.Fprintf(&b, "%-8s", f.xColumn())
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %22s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-8.0f", x)
		for _, s := range f.Series {
			if i < len(s.YErr) {
				fmt.Fprintf(&b, "  %22s", fmt.Sprintf("%.3f ±%.3f", s.Y[i], s.YErr[i]))
			} else {
				fmt.Fprintf(&b, "  %22.3f", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row; each
// series with repeat statistics gains a "<label> ci95" column holding the
// half-width of its 95% confidence interval.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.xColumn())
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(s.Label)
		if len(s.YErr) > 0 {
			b.WriteString(",")
			b.WriteString(s.Label + " ci95")
		}
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.4f", s.Y[i])
			if i < len(s.YErr) {
				fmt.Fprintf(&b, ",%.4f", s.YErr[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
