package experiments

import (
	"reflect"
	"testing"
	"time"

	"mccls/internal/fault"
)

func TestOnlineEnrollmentScenario(t *testing.T) {
	sc := quick()
	sc.Security = McCLSCost
	sc.OnlineEnrollment = true
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All 19 clients (20 nodes minus the KGC host) enroll during the
	// 2 s traffic warm-up, so delivery matches the pre-enrolled baseline.
	if res.Enroll.Successes != 19 {
		t.Fatalf("Enroll.Successes = %d, want 19", res.Enroll.Successes)
	}
	if pdr := res.PacketDeliveryRatio(); pdr < 0.9 {
		t.Fatalf("PDR with online enrollment = %.3f, want ≥0.9", pdr)
	}
}

func TestChurnScenarioDeterministicAndPaired(t *testing.T) {
	sc := quick()
	sc.Security = McCLSCost
	sc.OnlineEnrollment = true
	sc.ChurnEvents = 3
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary || r1.Enroll != r2.Enroll {
		t.Fatal("same seed + churn produced different results")
	}
	if r1.Summary.Crashes != 3 || r1.Summary.Restarts == 0 {
		t.Fatalf("churn not applied: crashes=%d restarts=%d",
			r1.Summary.Crashes, r1.Summary.Restarts)
	}

	// The churn stream is derived from Seed independently of the security
	// mode: plain AODV under the same seed must suffer the same crash
	// timeline (that is what makes the two sweep curves a paired
	// comparison).
	plain := quick()
	plain.ChurnEvents = 3
	rp, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Summary.Crashes != r1.Summary.Crashes {
		t.Fatalf("churn schedule depends on security mode: %d vs %d crashes",
			rp.Summary.Crashes, r1.Summary.Crashes)
	}
}

func TestExplicitFaultScheduleDeterministic(t *testing.T) {
	sc := quick()
	sc.Faults = fault.Schedule{
		Crashes: []fault.Crash{{Node: 5, At: 10 * time.Second, RestartAt: 25 * time.Second}},
		Loss:    []fault.LossWindow{{From: 5 * time.Second, To: 40 * time.Second, Rate: 0.3}},
	}
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("explicit fault schedule broke determinism")
	}
	if r1.Summary.Crashes != 1 || r1.Summary.Restarts != 1 {
		t.Fatalf("scheduled crash not applied: %+v", r1.Summary)
	}

	base := quick()
	rb, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rb.Summary == r1.Summary {
		t.Fatal("a 30% loss window plus a relay crash changed nothing")
	}
}

// TestResilienceSweepWorkerInvariance is the issue's determinism criterion:
// the churn sweep must be bit-identical run serially and on a worker pool.
func TestResilienceSweepWorkerInvariance(t *testing.T) {
	cfg := ResilienceConfig{
		Base:    Scenario{Duration: 30 * time.Second, MaxSpeed: 5},
		Churn:   []int{0, 2},
		Repeats: 2,
		Seed:    5,
	}
	cfg.Workers = 1
	serial, err := cfg.runChurnSweeps()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	pooled, err := cfg.runChurnSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatal("sweep results depend on worker count")
	}
}

func TestFigureResilienceShape(t *testing.T) {
	cfg := ResilienceConfig{
		Base:    Scenario{Duration: 30 * time.Second, MaxSpeed: 5},
		Churn:   []int{0, 3},
		Repeats: 2,
		Seed:    3,
	}
	fig, err := FigureResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7" || len(fig.Series) != 2 {
		t.Fatalf("unexpected figure shape: %q with %d series", fig.ID, len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 || len(s.Y) != 2 || len(s.YErr) != 2 {
			t.Fatalf("series %q has ragged axes", s.Label)
		}
		if s.X[0] != 0 || s.X[1] != 3 {
			t.Fatalf("series %q x-axis = %v, want churn counts", s.Label, s.X)
		}
		if s.Y[0] <= 0 || s.Y[0] > 1 {
			t.Fatalf("series %q PDR at churn 0 = %v", s.Label, s.Y[0])
		}
	}
}
