package core

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"mccls/internal/batch"
	"mccls/internal/bn254"
)

// BatchOptions configure a BatchVerifier.
type BatchOptions struct {
	// Workers bounds the chunk worker pool (default GOMAXPROCS).
	Workers int
	// ChunkSize is the number of signatures per aggregate check
	// (default batch.DefaultChunkSize).
	ChunkSize int
	// Weights seeds the per-signature random weights (nil uses
	// crypto/rand). The weights must be unpredictable to signers; fix the
	// source only in tests.
	Weights io.Reader
}

// BatchVerifier is the unified batch-verification engine for McCLS. All
// batch entry points — Verifier.BatchVerify, Verifier.VerifyBatchMulti and
// the schemes adapter — route through it. It layers the generic
// chunk/parallel/bisect machinery of internal/batch over the two McCLS
// aggregate equations:
//
//	same signer:  e(Σᵢ ρᵢ·Aᵢ, S) = e(P_pub, Q_ID)^Σρᵢ
//	multi signer: Π e(ρᵢ·Aᵢ, Sᵢ) · e(-P_pub, Σ_ID (Σᵢ∈ID ρᵢ)·Q_ID) = 1
//
// with Aᵢ = (Vᵢ·hᵢ⁻¹)·P - Rᵢ and ρᵢ independent 128-bit weights (cheat
// probability 2⁻¹²⁸). Each chunk of the multi-signer equation is one
// lockstep multi-pairing — one shared Fp12 squaring per Miller iteration
// and one shared final exponentiation for the whole chunk — and signatures
// by the same identity share a single weighted Q_ID term. The accept/reject
// outcome and the reported offender set are bit-identical at any worker
// count (weights are derived per-index from one seed, chunk boundaries
// depend only on ChunkSize, and chunks are decided independently).
type BatchVerifier struct {
	vf   *Verifier
	opts BatchOptions
}

// Batch creates a batch-verification engine over this verifier's
// parameters and caches.
func (vf *Verifier) Batch(opts BatchOptions) *BatchVerifier {
	return &BatchVerifier{vf: vf, opts: opts}
}

// BatchOffenders extracts the offending signature indices from a batch
// rejection. It returns nil when err carries no offender list (nil errors,
// structural errors like length mismatches or malformed signatures).
func BatchOffenders(err error) []int {
	var be *batch.Error
	if errors.As(err, &be) {
		return be.Bad
	}
	return nil
}

// Verify checks a single signature (the bisection leaf path; identical to
// Verifier.Verify).
func (bv *BatchVerifier) Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	return bv.vf.Verify(pk, msg, sig)
}

// prepared holds the per-signature precomputation shared by both aggregate
// equations.
type prepared struct {
	// wa is the weighted commitment ρᵢ·Aᵢ = (ρᵢ·Vᵢ·hᵢ⁻¹ mod r)·P - ρᵢ·Rᵢ,
	// built with one fixed-base table pass plus one short-scalar mult.
	wa *bn254.G1
	// rho is the 128-bit weight ρᵢ.
	rho *big.Int
}

// prepare runs the shape checks and weighted-commitment precomputation for
// index i. Shape and zero-hash failures surface as errors, matching the
// single-signature paths.
func (bv *BatchVerifier) prepare(pk *PublicKey, msg []byte, sig *Signature, rho *big.Int) (prepared, error) {
	if err := checkShape(pk, sig); err != nil {
		return prepared{}, err
	}
	h := bv.vf.params.hashH2(msg, sig.R, pk.PID)
	hInv, err := invertH2(h)
	if err != nil {
		return prepared{}, err
	}
	k := new(big.Int).Mul(sig.V, hInv)
	k.Mul(k.Mod(k, bn254.Order), rho)
	wa := new(bn254.G1).ScalarBaseMultAdd(k,
		new(bn254.G1).Neg(new(bn254.G1).ScalarMult(sig.R, rho)))
	return prepared{wa: wa, rho: rho}, nil
}

// weights draws the batch's weight seed from the configured source.
func (bv *BatchVerifier) weights() (*batch.Weights, error) {
	w, err := batch.NewWeights(bv.opts.Weights)
	if err != nil {
		return nil, fmt.Errorf("mccls: %w", err)
	}
	return w, nil
}

// verifyOne is the one-element fast path: the cached-constant Verify with
// no weighting overhead, with rejections reported in batch form.
func (bv *BatchVerifier) verifyOne(pk *PublicKey, msg []byte, sig *Signature) error {
	err := bv.vf.Verify(pk, msg, sig)
	if errors.Is(err, ErrVerifyFailed) {
		return &batch.Error{Bad: []int{0}, Cause: ErrVerifyFailed}
	}
	return err
}

// reject runs the generic engine and wraps offenders in a *batch.Error
// carrying ErrVerifyFailed.
func (bv *BatchVerifier) reject(n int, check batch.Check, checkOne batch.CheckOne) error {
	bad, err := batch.Reject(n, batch.Options{
		Workers:   bv.opts.Workers,
		ChunkSize: bv.opts.ChunkSize,
	}, check, checkOne)
	if err != nil {
		return err
	}
	if len(bad) > 0 {
		return &batch.Error{Bad: bad, Cause: ErrVerifyFailed}
	}
	return nil
}

// VerifySameSigner checks n signatures by one signer. All signatures must
// share the same S component (they do when produced by the same private
// key; S is message-independent), which collapses each chunk to a single
// pairing against e(P_pub, Q_ID)^Σρ. Rejections return a *batch.Error
// listing the offending indices; structural problems (length mismatch,
// foreign S, malformed signatures) are reported directly.
func (bv *BatchVerifier) VerifySameSigner(pk *PublicKey, msgs [][]byte, sigs []*Signature) error {
	if len(msgs) != len(sigs) {
		return ErrBatchMismatch
	}
	n := len(sigs)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return bv.verifyOne(pk, msgs[0], sigs[0])
	}
	w, err := bv.weights()
	if err != nil {
		return err
	}
	s0 := sigs[0].S
	prep := make([]prepared, n)
	for i, sig := range sigs {
		if prep[i], err = bv.prepare(pk, msgs[i], sig, w.At(i)); err != nil {
			return err
		}
		if !sig.S.Equal(s0) {
			return fmt.Errorf("%w: batch requires a common S component", ErrBatchMismatch)
		}
	}
	rhs := bv.vf.rhs(pk.ID)
	check := func(idxs []int) bool {
		acc := bn254.G1Infinity()
		sum := new(big.Int)
		for _, i := range idxs {
			acc.Add(acc, prep[i].wa)
			sum.Add(sum, prep[i].rho)
		}
		want := new(bn254.GT).Exp(rhs, sum.Mod(sum, bn254.Order))
		return bn254.Pair(acc, s0).Equal(want)
	}
	checkOne := func(i int) bool { return bv.vf.Verify(pk, msgs[i], sigs[i]) == nil }
	return bv.reject(n, check, checkOne)
}

// VerifyMulti checks n signatures from arbitrary (possibly distinct)
// signers. Each chunk is verified with one lockstep multi-pairing:
//
//	Π_{i∈chunk} e(ρᵢ·Aᵢ, Sᵢ) · e(-P_pub, Σ_ID (Σᵢ∈ID ρᵢ)·Q_ID) = 1
//
// Signatures by the same identity are grouped on the G2 side, so a chunk
// with k distinct signers pays k weighted Q_ID scalar multiplications
// rather than one per signature, and cached Q_ID hashes avoid re-running
// hash-to-G2. Rejections return a *batch.Error listing the offending
// indices; structural problems are reported directly.
func (bv *BatchVerifier) VerifyMulti(pks []*PublicKey, msgs [][]byte, sigs []*Signature) error {
	if len(pks) != len(msgs) || len(msgs) != len(sigs) {
		return ErrBatchMismatch
	}
	n := len(sigs)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return bv.verifyOne(pks[0], msgs[0], sigs[0])
	}
	w, err := bv.weights()
	if err != nil {
		return err
	}
	prep := make([]prepared, n)
	for i, sig := range sigs {
		if prep[i], err = bv.prepare(pks[i], msgs[i], sig, w.At(i)); err != nil {
			return err
		}
	}
	negPpub := new(bn254.G1).Neg(bv.vf.params.Ppub)
	check := func(idxs []int) bool {
		ps := make([]*bn254.G1, 0, len(idxs)+1)
		qs := make([]*bn254.G2, 0, len(idxs)+1)
		rhoByID := make(map[string]*big.Int)
		order := make([]string, 0, 4) // deterministic identity order
		for _, i := range idxs {
			ps = append(ps, prep[i].wa)
			qs = append(qs, sigs[i].S)
			id := pks[i].ID
			if sum, ok := rhoByID[id]; ok {
				sum.Add(sum, prep[i].rho)
			} else {
				rhoByID[id] = new(big.Int).Set(prep[i].rho)
				order = append(order, id)
			}
		}
		qSum := bn254.G2Infinity()
		for _, id := range order {
			sum := rhoByID[id].Mod(rhoByID[id], bn254.Order)
			qSum.Add(qSum, new(bn254.G2).ScalarMult(bv.vf.qid(id), sum))
		}
		ps = append(ps, negPpub)
		qs = append(qs, qSum)
		return bn254.PairingCheck(ps, qs)
	}
	checkOne := func(i int) bool { return bv.vf.Verify(pks[i], msgs[i], sigs[i]) == nil }
	return bv.reject(n, check, checkOne)
}
