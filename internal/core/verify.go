package core

import (
	"fmt"
	"io"
	"math/big"
	"sync"

	"mccls/internal/bn254"
)

// Verifier checks McCLS signatures. It caches the per-identity constant
// e(P_pub, Q_ID) — the paper's "only one pairing operation since
// e(P_pub, Q_ID) is a constant" — so steady-state verification costs a
// single pairing. A Verifier is safe for concurrent use.
type Verifier struct {
	params *Params

	mu    sync.Mutex
	cache map[string]*bn254.GT
}

// NewVerifier creates a verifier for the given system parameters.
func NewVerifier(params *Params) *Verifier {
	return &Verifier{params: params, cache: make(map[string]*bn254.GT)}
}

// rhs returns the cached e(P_pub, Q_ID) for an identity, computing it on
// first use.
func (vf *Verifier) rhs(id string) *bn254.GT {
	vf.mu.Lock()
	if gt, ok := vf.cache[id]; ok {
		vf.mu.Unlock()
		return gt
	}
	vf.mu.Unlock()
	// Compute outside the lock: pairings are milliseconds.
	gt := bn254.Pair(vf.params.Ppub, vf.params.QID(id))
	vf.mu.Lock()
	vf.cache[id] = gt
	vf.mu.Unlock()
	return gt
}

// CacheLen reports how many identities have cached pairing constants.
func (vf *Verifier) CacheLen() int {
	vf.mu.Lock()
	defer vf.mu.Unlock()
	return len(vf.cache)
}

// checkShape rejects structurally invalid signatures before any group math.
func checkShape(pk *PublicKey, sig *Signature) error {
	if sig == nil || sig.V == nil || sig.S == nil || sig.R == nil {
		return fmt.Errorf("%w: missing component", ErrInvalidSignature)
	}
	if sig.V.Sign() <= 0 || sig.V.Cmp(bn254.Order) >= 0 {
		return fmt.Errorf("%w: V out of range", ErrInvalidSignature)
	}
	if sig.S.IsInfinity() || !sig.S.IsOnCurve() {
		return fmt.Errorf("%w: S invalid", ErrInvalidSignature)
	}
	if !sig.R.IsOnCurve() {
		return fmt.Errorf("%w: R invalid", ErrInvalidSignature)
	}
	if pk == nil || pk.PID == nil || pk.PID.IsInfinity() || !pk.PID.IsOnCurve() {
		return fmt.Errorf("%w: public key invalid", ErrInvalidKey)
	}
	return nil
}

// Verify runs CL-Verify: with h = H2(M, R, P_ID), accept iff
//
//	e(V·P - h·R, h⁻¹·S) = e(P_pub, Q_ID).
//
// The implementation uses the algebraically identical fast path
// e((V·h⁻¹)·P - R, S) = e(P_pub, Q_ID), trading the G2 scalar
// multiplication h⁻¹·S for a scalar inversion in Zr (see DESIGN.md §3).
// It returns nil on success and ErrVerifyFailed (or a shape error) on
// rejection.
func (vf *Verifier) Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	if err := checkShape(pk, sig); err != nil {
		return err
	}
	h := vf.params.hashH2(msg, sig.R, pk.PID)
	hInv := new(big.Int).ModInverse(h, bn254.Order)
	// A = (V/h)·P - R, fused into one fixed-base table pass.
	a := new(bn254.G1).ScalarBaseMultAdd(new(big.Int).Mul(sig.V, hInv), new(bn254.G1).Neg(sig.R))
	if !bn254.Pair(a, sig.S).Equal(vf.rhs(pk.ID)) {
		return ErrVerifyFailed
	}
	return nil
}

// VerifySpec runs the verification equation exactly as written in the
// paper — e(V·P - h·R, h⁻¹·S) — without the fast path. It exists to
// cross-check the optimization and for documentation value; Verify is
// preferred.
func (vf *Verifier) VerifySpec(pk *PublicKey, msg []byte, sig *Signature) error {
	if err := checkShape(pk, sig); err != nil {
		return err
	}
	h := vf.params.hashH2(msg, sig.R, pk.PID)
	left := new(bn254.G1).ScalarBaseMult(sig.V)
	left.Add(left, new(bn254.G1).Neg(new(bn254.G1).ScalarMult(sig.R, h)))
	s := new(bn254.G2).ScalarMult(sig.S, new(big.Int).ModInverse(h, bn254.Order))
	if !bn254.Pair(left, s).Equal(vf.rhs(pk.ID)) {
		return ErrVerifyFailed
	}
	return nil
}

// BatchVerify checks n same-signer signatures with a single pairing:
//
//	e(Σᵢ((Vᵢ·hᵢ⁻¹)·P - Rᵢ), S) = e(P_pub, Q_ID)ⁿ
//
// All signatures must share the same S component (they do when produced by
// the same private key; S is message-independent). This is the batch
// behaviour McCLS inherits from the Yoon–Cheon–Kim ID-based scheme it
// adapts. On any rejection the caller should fall back to one-by-one
// Verify to locate the offender.
func (vf *Verifier) BatchVerify(pk *PublicKey, msgs [][]byte, sigs []*Signature) error {
	if len(msgs) != len(sigs) {
		return ErrBatchMismatch
	}
	if len(sigs) == 0 {
		return nil
	}
	s0 := sigs[0].S
	acc := bn254.G1Infinity()
	for i, sig := range sigs {
		if err := checkShape(pk, sig); err != nil {
			return err
		}
		if !sig.S.Equal(s0) {
			return fmt.Errorf("%w: batch requires a common S component", ErrBatchMismatch)
		}
		h := vf.params.hashH2(msgs[i], sig.R, pk.PID)
		hInv := new(big.Int).ModInverse(h, bn254.Order)
		term := new(bn254.G1).ScalarBaseMultAdd(new(big.Int).Mul(sig.V, hInv), new(bn254.G1).Neg(sig.R))
		acc.Add(acc, term)
	}
	want := new(bn254.GT).Exp(vf.rhs(pk.ID), big.NewInt(int64(len(sigs))))
	if !bn254.Pair(acc, s0).Equal(want) {
		return ErrVerifyFailed
	}
	return nil
}

// VerifyBatchMulti checks signatures from *different* signers in one shot.
// Unlike BatchVerify it cannot collapse to a single pairing (each signer
// contributes its own S), but it shares one final exponentiation across all
// Miller loops and randomizes each equation with a fresh weight ρᵢ so an
// attacker cannot craft signatures whose errors cancel:
//
//	Π e(ρᵢ·Aᵢ, Sᵢ) · e(-P_pub, Σᵢ ρᵢ·Q_IDᵢ) = 1,  Aᵢ = (Vᵢ·hᵢ⁻¹)·P - Rᵢ
//
// On rejection fall back to per-signature Verify to locate offenders.
// Passing a nil reader uses crypto/rand for the weights.
func (vf *Verifier) VerifyBatchMulti(pks []*PublicKey, msgs [][]byte, sigs []*Signature, rng io.Reader) error {
	if len(pks) != len(msgs) || len(msgs) != len(sigs) {
		return ErrBatchMismatch
	}
	if len(sigs) == 0 {
		return nil
	}
	ps := make([]*bn254.G1, 0, len(sigs)+1)
	qs := make([]*bn254.G2, 0, len(sigs)+1)
	qSum := bn254.G2Infinity()
	for i, sig := range sigs {
		if err := checkShape(pks[i], sig); err != nil {
			return err
		}
		rho, err := bn254.RandomScalar(rng)
		if err != nil {
			return fmt.Errorf("mccls: batch weights: %w", err)
		}
		h := vf.params.hashH2(msgs[i], sig.R, pks[i].PID)
		hInv := new(big.Int).ModInverse(h, bn254.Order)
		a := new(bn254.G1).ScalarBaseMultAdd(new(big.Int).Mul(sig.V, hInv), new(bn254.G1).Neg(sig.R))
		ps = append(ps, a.ScalarMult(a, rho))
		qs = append(qs, sig.S)
		qSum.Add(qSum, new(bn254.G2).ScalarMult(vf.params.QID(pks[i].ID), rho))
	}
	ps = append(ps, new(bn254.G1).Neg(vf.params.Ppub))
	qs = append(qs, qSum)
	if !bn254.PairingCheck(ps, qs) {
		return ErrVerifyFailed
	}
	return nil
}
