package core

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
	"mccls/internal/lru"
)

// DefaultIdentityCacheCap bounds the Verifier's per-identity constant
// caches (the pairing constant e(P_pub, Q_ID) and the identity hash Q_ID).
// Generous — 16k identities ≈ 16k·(576+128) bytes of cached curve material
// — but bounded, so a flood of unique identities recycles cache slots
// instead of growing memory without limit.
const DefaultIdentityCacheCap = 1 << 14

// Verifier checks McCLS signatures. It caches two per-identity constants:
// e(P_pub, Q_ID) — the paper's "only one pairing operation since
// e(P_pub, Q_ID) is a constant", making steady-state verification a single
// pairing — and Q_ID = H1(ID) itself, which the batch engine's multi-signer
// equation consumes directly (hash-to-G2 costs ~½ a pairing). Both caches
// are LRU-bounded (DefaultIdentityCacheCap by default) so unknown-identity
// floods cannot exhaust memory. A Verifier is safe for concurrent use.
type Verifier struct {
	params *Params

	rhsCache *lru.Cache[*bn254.GT]
	qidCache *lru.Cache[*bn254.G2]
}

// NewVerifier creates a verifier for the given system parameters with the
// default identity-cache bound.
func NewVerifier(params *Params) *Verifier {
	return NewVerifierCap(params, DefaultIdentityCacheCap)
}

// NewVerifierCap creates a verifier whose per-identity caches hold at most
// cacheCap identities (minimum 1).
func NewVerifierCap(params *Params, cacheCap int) *Verifier {
	return &Verifier{
		params:   params,
		rhsCache: lru.New[*bn254.GT](cacheCap),
		qidCache: lru.New[*bn254.G2](cacheCap),
	}
}

// qid returns the cached Q_ID = H1(id), computing it on first use.
func (vf *Verifier) qid(id string) *bn254.G2 {
	if q, ok := vf.qidCache.Get(id); ok {
		return q
	}
	// Compute outside the cache lock: hash-to-G2 costs ~0.6 ms. Two racing
	// callers compute the same value; the second Put is idempotent.
	q := vf.params.QID(id)
	vf.qidCache.Put(id, q)
	return q
}

// rhs returns the cached e(P_pub, Q_ID) for an identity, computing it on
// first use.
func (vf *Verifier) rhs(id string) *bn254.GT {
	if gt, ok := vf.rhsCache.Get(id); ok {
		return gt
	}
	// Compute outside the cache lock: pairings are milliseconds.
	gt := bn254.Pair(vf.params.Ppub, vf.qid(id))
	vf.rhsCache.Put(id, gt)
	return gt
}

// CacheLen reports how many identities have cached pairing constants.
func (vf *Verifier) CacheLen() int { return vf.rhsCache.Len() }

// CacheCap reports the identity-cache bound.
func (vf *Verifier) CacheCap() int { return vf.rhsCache.Cap() }

// checkShape rejects structurally invalid signatures before any group math.
func checkShape(pk *PublicKey, sig *Signature) error {
	if sig == nil || sig.V == nil || sig.S == nil || sig.R == nil {
		return fmt.Errorf("%w: missing component", ErrInvalidSignature)
	}
	if sig.V.Sign() <= 0 || sig.V.Cmp(bn254.Order) >= 0 {
		return fmt.Errorf("%w: V out of range", ErrInvalidSignature)
	}
	if sig.S.IsInfinity() || !sig.S.IsOnCurve() {
		return fmt.Errorf("%w: S invalid", ErrInvalidSignature)
	}
	if !sig.R.IsOnCurve() {
		return fmt.Errorf("%w: R invalid", ErrInvalidSignature)
	}
	if pk == nil || pk.PID == nil || pk.PID.IsInfinity() || !pk.PID.IsOnCurve() {
		return fmt.Errorf("%w: public key invalid", ErrInvalidKey)
	}
	return nil
}

// invertH2 inverts the challenge hash mod r. h ≡ 0 (mod r) has no inverse
// — a ~2⁻²⁵⁴ event for an honest oracle but reachable in principle, and
// formerly a nil-pointer panic inside big.Int.Mul — so it is rejected as a
// malformed signature instead.
func invertH2(h *big.Int) (*big.Int, error) {
	if inv := new(big.Int).ModInverse(h, bn254.Order); inv != nil {
		return inv, nil
	}
	return nil, fmt.Errorf("%w: challenge hash is zero mod r", ErrInvalidSignature)
}

// Verify runs CL-Verify: with h = H2(M, R, P_ID), accept iff
//
//	e(V·P - h·R, h⁻¹·S) = e(P_pub, Q_ID).
//
// The implementation uses the algebraically identical fast path
// e((V·h⁻¹)·P - R, S) = e(P_pub, Q_ID), trading the G2 scalar
// multiplication h⁻¹·S for a scalar inversion in Zr (see DESIGN.md §3).
// The pairing runs on the shared multi-pairing kernel (a one-pair batch).
// It returns nil on success and ErrVerifyFailed (or a shape error) on
// rejection.
func (vf *Verifier) Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	if err := checkShape(pk, sig); err != nil {
		return err
	}
	h := vf.params.hashH2(msg, sig.R, pk.PID)
	hInv, err := invertH2(h)
	if err != nil {
		return err
	}
	// A = (V/h)·P - R, fused into one fixed-base table pass.
	a := new(bn254.G1).ScalarBaseMultAdd(new(big.Int).Mul(sig.V, hInv), new(bn254.G1).Neg(sig.R))
	if !bn254.Pair(a, sig.S).Equal(vf.rhs(pk.ID)) {
		return ErrVerifyFailed
	}
	return nil
}

// VerifySpec runs the verification equation exactly as written in the
// paper — e(V·P - h·R, h⁻¹·S) — without the fast path. It exists to
// cross-check the optimization and for documentation value; Verify is
// preferred.
func (vf *Verifier) VerifySpec(pk *PublicKey, msg []byte, sig *Signature) error {
	if err := checkShape(pk, sig); err != nil {
		return err
	}
	h := vf.params.hashH2(msg, sig.R, pk.PID)
	hInv, err := invertH2(h)
	if err != nil {
		return err
	}
	left := new(bn254.G1).ScalarBaseMult(sig.V)
	left.Add(left, new(bn254.G1).Neg(new(bn254.G1).ScalarMult(sig.R, h)))
	s := new(bn254.G2).ScalarMult(sig.S, hInv)
	if !bn254.Pair(left, s).Equal(vf.rhs(pk.ID)) {
		return ErrVerifyFailed
	}
	return nil
}

// BatchVerify checks n same-signer signatures with a single pairing. It is
// a thin wrapper over the batch engine's same-signer path (randomized
// weights, bisection on rejection) with default options; use
// Verifier.Batch for control over workers, chunking and the weight source.
// On rejection the returned error is a *batch.Error listing the offending
// indices (unwrapping to ErrVerifyFailed); shape-invalid input is reported
// directly with its shape error.
func (vf *Verifier) BatchVerify(pk *PublicKey, msgs [][]byte, sigs []*Signature) error {
	return vf.Batch(BatchOptions{}).VerifySameSigner(pk, msgs, sigs)
}

// VerifyBatchMulti checks signatures from *different* signers in one shot
// through the batch engine (see BatchVerifier.VerifyMulti): one lockstep
// multi-pairing per chunk, randomized weights, bisection on rejection.
// Passing a nil reader uses crypto/rand for the weights. Kept for
// compatibility; Verifier.Batch exposes the full engine.
func (vf *Verifier) VerifyBatchMulti(pks []*PublicKey, msgs [][]byte, sigs []*Signature, rng io.Reader) error {
	return vf.Batch(BatchOptions{Weights: rng}).VerifyMulti(pks, msgs, sigs)
}
