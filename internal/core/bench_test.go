package core

import (
	"testing"
)

// End-to-end McCLS benchmarks. They live here rather than in
// internal/bn254 because bn254 cannot import core (it is the layer below);
// allocs/op is reported so regressions in the allocation-free Montgomery
// arithmetic underneath show up at the protocol level too.

func benchSystem(b *testing.B) (*KGC, *PrivateKey, *Verifier) {
	b.Helper()
	rng := fixedRand(1)
	kgc, err := Setup(rng)
	if err != nil {
		b.Fatal(err)
	}
	ppk := kgc.ExtractPartialPrivateKey("bench-node@manet")
	sk, err := GenerateKeyPair(kgc.Params(), ppk, rng)
	if err != nil {
		b.Fatal(err)
	}
	return kgc, sk, NewVerifier(kgc.Params())
}

func BenchmarkSign(b *testing.B) {
	kgc, sk, _ := benchSystem(b)
	msg := []byte("RREQ 7 from bench-node")
	rng := fixedRand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(kgc.Params(), sk, msg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	kgc, sk, vf := benchSystem(b)
	msg := []byte("RREQ 7 from bench-node")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vf.Verify(sk.Public(), msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
