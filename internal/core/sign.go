package core

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// Signature is a McCLS signature σ = (V, S, R): a scalar V = h·r, the
// key-derived group element S = x⁻¹·D_ID ∈ G2, and the commitment
// R = (r - x)·P ∈ G1.
type Signature struct {
	V *big.Int
	S *bn254.G2
	R *bn254.G1
}

// SignatureSize is the byte length of a marshalled signature:
// 32 (V) + 128 (S) + 64 (R).
const SignatureSize = 32 + 128 + 64

// signatureMarshalledSize is retained as the internal alias.
const signatureMarshalledSize = SignatureSize

// Sign runs CL-Sign: draw r ← Zr*, output (V, S, R) with R = (r-x)·P,
// h = H2(M, R, P_ID), V = h·r. No pairing operations are performed; the
// per-message cost is a single G1 scalar multiplication (S is precomputed
// at key generation). Passing a nil reader uses crypto/rand.
func Sign(params *Params, sk *PrivateKey, msg []byte, rng io.Reader) (*Signature, error) {
	// R = (r - x)·P. If r == x, R would be the identity and leak x; redraw
	// until r ≠ x (a 2⁻²⁵⁴ event per draw, so the loop terminates on the
	// first iteration for any real RNG).
	var r, k *big.Int
	for {
		var err error
		r, err = bn254.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("mccls: sign: %w", err)
		}
		k = new(big.Int).Mod(new(big.Int).Sub(r, sk.x), bn254.Order)
		if k.Sign() != 0 {
			break
		}
	}
	R := new(bn254.G1).ScalarBaseMult(k)
	h := params.hashH2(msg, R, sk.pub.PID)
	v := new(big.Int).Mod(new(big.Int).Mul(h, r), bn254.Order)
	return &Signature{V: v, S: new(bn254.G2).Set(sk.s), R: R}, nil
}

// Marshal encodes the signature as V‖S‖R.
func (sig *Signature) Marshal() []byte {
	out := make([]byte, 0, signatureMarshalledSize)
	var v [32]byte
	sig.V.FillBytes(v[:])
	out = append(out, v[:]...)
	out = append(out, sig.S.Marshal()...)
	out = append(out, sig.R.Marshal()...)
	return out
}

// UnmarshalSignature decodes and validates a signature: V must be a scalar
// in [1, r), S a non-identity element of the order-r subgroup of G2, R a
// point of G1.
func UnmarshalSignature(data []byte) (*Signature, error) {
	if len(data) != signatureMarshalledSize {
		return nil, fmt.Errorf("%w: want %d bytes, got %d", ErrInvalidSignature, signatureMarshalledSize, len(data))
	}
	v := new(big.Int).SetBytes(data[:32])
	if v.Sign() == 0 || v.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("%w: V out of range", ErrInvalidSignature)
	}
	var s bn254.G2
	if err := s.Unmarshal(data[32 : 32+128]); err != nil {
		return nil, fmt.Errorf("%w: S: %v", ErrInvalidSignature, err)
	}
	if s.IsInfinity() {
		return nil, fmt.Errorf("%w: S is the identity", ErrInvalidSignature)
	}
	var r bn254.G1
	if err := r.Unmarshal(data[32+128:]); err != nil {
		return nil, fmt.Errorf("%w: R: %v", ErrInvalidSignature, err)
	}
	return &Signature{V: v, S: &s, R: &r}, nil
}

// CompactSignatureSize is the byte length of a compact-encoded signature:
// 32 (V) + 65 (S compressed) + 33 (R compressed).
const CompactSignatureSize = 32 + 65 + 33

// MarshalCompact encodes the signature with compressed points, 130 bytes
// instead of 224 — the encoding McCLS-AODV would use on the air where every
// control byte costs serialization delay.
func (sig *Signature) MarshalCompact() []byte {
	out := make([]byte, 0, CompactSignatureSize)
	var v [32]byte
	sig.V.FillBytes(v[:])
	out = append(out, v[:]...)
	out = append(out, sig.S.MarshalCompressed()...)
	return append(out, sig.R.MarshalCompressed()...)
}

// UnmarshalSignatureCompact decodes and validates a compact signature.
func UnmarshalSignatureCompact(data []byte) (*Signature, error) {
	if len(data) != CompactSignatureSize {
		return nil, fmt.Errorf("%w: want %d bytes, got %d", ErrInvalidSignature, CompactSignatureSize, len(data))
	}
	v := new(big.Int).SetBytes(data[:32])
	if v.Sign() == 0 || v.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("%w: V out of range", ErrInvalidSignature)
	}
	var s bn254.G2
	if err := s.UnmarshalCompressed(data[32 : 32+65]); err != nil {
		return nil, fmt.Errorf("%w: S: %v", ErrInvalidSignature, err)
	}
	if s.IsInfinity() {
		return nil, fmt.Errorf("%w: S is the identity", ErrInvalidSignature)
	}
	var r bn254.G1
	if err := r.UnmarshalCompressed(data[32+65:]); err != nil {
		return nil, fmt.Errorf("%w: R: %v", ErrInvalidSignature, err)
	}
	return &Signature{V: v, S: &s, R: &r}, nil
}
