package core

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"mccls/internal/bn254"
)

// fixedRand returns a deterministic randomness source for reproducible
// tests. It is NOT cryptographically secure.
func fixedRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// newTestSystem builds a KGC and one enrolled user.
func newTestSystem(t *testing.T, id string) (*KGC, *PrivateKey, *Verifier) {
	t.Helper()
	rng := fixedRand(1)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	ppk := kgc.ExtractPartialPrivateKey(id)
	sk, err := GenerateKeyPair(kgc.Params(), ppk, rng)
	if err != nil {
		t.Fatal(err)
	}
	return kgc, sk, NewVerifier(kgc.Params())
}

func TestSignVerifyRoundTrip(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "node-1@manet")
	msg := []byte("RREQ 7 from node-1")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(sk.Public(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// A second signature on the same message uses fresh randomness and must
	// also verify (signatures are probabilistic).
	sig2, err := Sign(kgc.Params(), sk, msg, fixedRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if sig2.R.Equal(sig.R) {
		t.Fatal("distinct randomness produced identical commitments")
	}
	if err := vf.Verify(sk.Public(), msg, sig2); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifySpecAgreesWithFastPath(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	for i := 0; i < 4; i++ {
		msg := []byte{byte(i), 0xAB}
		sig, err := Sign(kgc.Params(), sk, msg, fixedRand(int64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := vf.Verify(sk.Public(), msg, sig); err != nil {
			t.Fatalf("fast path rejected valid sig: %v", err)
		}
		if err := vf.VerifySpec(sk.Public(), msg, sig); err != nil {
			t.Fatalf("spec path rejected valid sig: %v", err)
		}
		// Both paths must also agree on rejection.
		bad := &Signature{V: sig.V, S: sig.S, R: new(bn254.G1).ScalarBaseMult(big.NewInt(99))}
		if vf.Verify(sk.Public(), msg, bad) == nil || vf.VerifySpec(sk.Public(), msg, bad) == nil {
			t.Fatal("tampered signature accepted")
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	msg := []byte("telemetry: temp=21.5C")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(7))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("message", func(t *testing.T) {
		if err := vf.Verify(sk.Public(), []byte("telemetry: temp=99.9C"), sig); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("want ErrVerifyFailed, got %v", err)
		}
	})
	t.Run("V", func(t *testing.T) {
		bad := &Signature{V: new(big.Int).Add(sig.V, big.NewInt(1)), S: sig.S, R: sig.R}
		if err := vf.Verify(sk.Public(), msg, bad); err == nil {
			t.Fatal("accepted tampered V")
		}
	})
	t.Run("S", func(t *testing.T) {
		bad := &Signature{V: sig.V, S: new(bn254.G2).Add(sig.S, bn254.G2Generator()), R: sig.R}
		if err := vf.Verify(sk.Public(), msg, bad); err == nil {
			t.Fatal("accepted tampered S")
		}
	})
	t.Run("R", func(t *testing.T) {
		bad := &Signature{V: sig.V, S: sig.S, R: new(bn254.G1).Add(sig.R, bn254.G1Generator())}
		if err := vf.Verify(sk.Public(), msg, bad); err == nil {
			t.Fatal("accepted tampered R")
		}
	})
	t.Run("wrong identity", func(t *testing.T) {
		forged := &PublicKey{ID: "bob", PID: sk.Public().PID}
		if err := vf.Verify(forged, msg, sig); err == nil {
			t.Fatal("signature verified under a different identity")
		}
	})
	t.Run("wrong public key", func(t *testing.T) {
		forged := &PublicKey{ID: sk.ID(), PID: new(bn254.G1).ScalarBaseMult(big.NewInt(12345))}
		if err := vf.Verify(forged, msg, sig); err == nil {
			t.Fatal("signature verified under a replaced public key")
		}
	})
}

func TestCrossUserSignaturesRejected(t *testing.T) {
	rng := fixedRand(9)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	mkUser := func(id string) *PrivateKey {
		sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey(id), rng)
		if err != nil {
			t.Fatal(err)
		}
		return sk
	}
	alice, bob := mkUser("alice"), mkUser("bob")
	vf := NewVerifier(kgc.Params())
	msg := []byte("hello")
	sig, err := Sign(kgc.Params(), alice, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(bob.Public(), msg, sig); err == nil {
		t.Fatal("alice's signature verified as bob's")
	}
}

func TestVerifierAcrossSystems(t *testing.T) {
	// A signature from system A must not verify under system B's params.
	rngA, rngB := fixedRand(20), fixedRand(21)
	kgcA, _ := Setup(rngA)
	kgcB, _ := Setup(rngB)
	skA, err := GenerateKeyPair(kgcA.Params(), kgcA.ExtractPartialPrivateKey("n1"), rngA)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("x")
	sig, err := Sign(kgcA.Params(), skA, msg, rngA)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewVerifier(kgcB.Params()).Verify(skA.Public(), msg, sig); err == nil {
		t.Fatal("cross-system verification succeeded")
	}
}

func TestPartialKeyValidate(t *testing.T) {
	rng := fixedRand(4)
	kgc, _ := Setup(rng)
	ppk := kgc.ExtractPartialPrivateKey("alice")
	if err := ppk.Validate(kgc.Params()); err != nil {
		t.Fatalf("valid partial key rejected: %v", err)
	}
	// Key for a different identity must fail validation under this ID.
	forged := &PartialPrivateKey{ID: "alice", D: kgc.ExtractPartialPrivateKey("mallory").D}
	if err := forged.Validate(kgc.Params()); err == nil {
		t.Fatal("accepted partial key for the wrong identity")
	}
	// Garbage D must fail.
	bad := &PartialPrivateKey{ID: "alice", D: bn254.G2Infinity()}
	if err := bad.Validate(kgc.Params()); err == nil {
		t.Fatal("accepted identity element as partial key")
	}
	// GenerateKeyPair must refuse an invalid partial key.
	if _, err := GenerateKeyPair(kgc.Params(), forged, rng); err == nil {
		t.Fatal("keygen accepted invalid partial key")
	}
}

func TestKGCFromMaster(t *testing.T) {
	rng := fixedRand(5)
	kgc, _ := Setup(rng)
	clone, err := NewKGCFromMaster(kgc.MasterKey())
	if err != nil {
		t.Fatal(err)
	}
	if !clone.Params().Ppub.Equal(kgc.Params().Ppub) {
		t.Fatal("restored KGC has different P_pub")
	}
	for _, bad := range []*big.Int{nil, big.NewInt(0), new(big.Int).Set(bn254.Order)} {
		if _, err := NewKGCFromMaster(bad); err == nil {
			t.Fatalf("accepted invalid master key %v", bad)
		}
	}
}

func TestPrivateKeyFromSecretDeterministic(t *testing.T) {
	rng := fixedRand(6)
	kgc, _ := Setup(rng)
	ppk := kgc.ExtractPartialPrivateKey("alice")
	sk, err := GenerateKeyPair(kgc.Params(), ppk, rng)
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := NewPrivateKeyFromSecret(kgc.Params(), ppk, sk.SecretValue())
	if err != nil {
		t.Fatal(err)
	}
	if !sk2.Public().PID.Equal(sk.Public().PID) {
		t.Fatal("rebuilt key has different public key")
	}
	msg := []byte("m")
	sig, err := Sign(kgc.Params(), sk2, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewVerifier(kgc.Params()).Verify(sk.Public(), msg, sig); err != nil {
		t.Fatal("signature from rebuilt key rejected")
	}
	if _, err := NewPrivateKeyFromSecret(kgc.Params(), ppk, big.NewInt(0)); err == nil {
		t.Fatal("accepted zero secret value")
	}
}

func TestSignatureMarshalRoundTrip(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	msg := []byte("serialize me")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(8))
	if err != nil {
		t.Fatal(err)
	}
	enc := sig.Marshal()
	if len(enc) != signatureMarshalledSize {
		t.Fatalf("marshalled size %d, want %d", len(enc), signatureMarshalledSize)
	}
	dec, err := UnmarshalSignature(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(sk.Public(), msg, dec); err != nil {
		t.Fatalf("decoded signature rejected: %v", err)
	}
	// Truncation, corruption, zero V.
	if _, err := UnmarshalSignature(enc[:len(enc)-1]); err == nil {
		t.Fatal("accepted truncated signature")
	}
	bad := bytes.Clone(enc)
	for i := range bad[:32] {
		bad[i] = 0
	}
	if _, err := UnmarshalSignature(bad); err == nil {
		t.Fatal("accepted zero V")
	}
	bad = bytes.Clone(enc)
	bad[40] ^= 0xFF // corrupt S
	if _, err := UnmarshalSignature(bad); err == nil {
		t.Fatal("accepted corrupted S encoding")
	}
}

func TestPublicKeyAndParamsMarshal(t *testing.T) {
	kgc, sk, _ := newTestSystem(t, "alice")
	pk2, err := UnmarshalPublicKey(sk.Public().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if pk2.ID != "alice" || !pk2.PID.Equal(sk.Public().PID) {
		t.Fatal("public key round trip mismatch")
	}
	params2, err := UnmarshalParams(kgc.Params().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !params2.Ppub.Equal(kgc.Params().Ppub) {
		t.Fatal("params round trip mismatch")
	}
	if _, err := UnmarshalParams(make([]byte, paramsMarshalledSize)); err == nil {
		t.Fatal("accepted identity P_pub")
	}
	if _, err := UnmarshalPublicKey([]byte{1}); err == nil {
		t.Fatal("accepted truncated public key")
	}
}

func TestPartialKeyMarshalRoundTrip(t *testing.T) {
	kgc, _, _ := newTestSystem(t, "alice")
	ppk := kgc.ExtractPartialPrivateKey("alice")
	dec, err := UnmarshalPartialPrivateKey(ppk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != ppk.ID || !dec.D.Equal(ppk.D) {
		t.Fatal("partial key round trip mismatch")
	}
	if err := dec.Validate(kgc.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPartialPrivateKey([]byte{0, 0}); err == nil {
		t.Fatal("accepted truncated partial key")
	}
}

func TestBatchVerify(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "sensor-17")
	rng := fixedRand(30)
	const n = 5
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i * 3)}
		sig, err := Sign(kgc.Params(), sk, msgs[i], rng)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	if err := vf.BatchVerify(sk.Public(), msgs, sigs); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// One tampered message must fail the whole batch.
	tampered := bytes.Clone(msgs[2])
	tampered[0] ^= 1
	badMsgs := append([][]byte{}, msgs...)
	badMsgs[2] = tampered
	if err := vf.BatchVerify(sk.Public(), badMsgs, sigs); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("tampered batch accepted: %v", err)
	}
	// Mixed signers must be rejected structurally.
	other, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("sensor-18"), rng)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := Sign(kgc.Params(), other, msgs[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]*Signature{}, sigs...)
	mixed[0] = foreign
	if err := vf.BatchVerify(sk.Public(), msgs, mixed); err == nil {
		t.Fatal("batch with foreign S accepted")
	}
	// Length mismatch and empty batch.
	if err := vf.BatchVerify(sk.Public(), msgs[:2], sigs); !errors.Is(err, ErrBatchMismatch) {
		t.Fatal("length mismatch not detected")
	}
	if err := vf.BatchVerify(sk.Public(), nil, nil); err != nil {
		t.Fatal("empty batch should verify")
	}
}

func TestVerifierCache(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	if vf.CacheLen() != 0 {
		t.Fatal("fresh verifier has cached entries")
	}
	msg := []byte("m")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(40))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := vf.Verify(sk.Public(), msg, sig); err != nil {
			t.Fatal(err)
		}
	}
	if vf.CacheLen() != 1 {
		t.Fatalf("cache length %d, want 1", vf.CacheLen())
	}
}

func TestVerifyShapeErrors(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	msg := []byte("m")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(41))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pk   *PublicKey
		sig  *Signature
	}{
		{"nil signature", sk.Public(), nil},
		{"nil V", sk.Public(), &Signature{V: nil, S: sig.S, R: sig.R}},
		{"zero V", sk.Public(), &Signature{V: big.NewInt(0), S: sig.S, R: sig.R}},
		{"huge V", sk.Public(), &Signature{V: new(big.Int).Set(bn254.Order), S: sig.S, R: sig.R}},
		{"identity S", sk.Public(), &Signature{V: sig.V, S: bn254.G2Infinity(), R: sig.R}},
		{"nil pk", nil, sig},
		{"identity PID", &PublicKey{ID: "alice", PID: bn254.G1Infinity()}, sig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := vf.Verify(tc.pk, msg, tc.sig); err == nil {
				t.Fatal("shape-invalid input accepted")
			}
		})
	}
	_ = kgc
}

func TestVerifyBatchMulti(t *testing.T) {
	rng := fixedRand(50)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := NewVerifier(kgc.Params())
	const n = 4
	pks := make([]*PublicKey, n)
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey(id), rng)
		if err != nil {
			t.Fatal(err)
		}
		pks[i] = sk.Public()
		msgs[i] = []byte{byte(i), byte(i * 7)}
		if sigs[i], err = Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := vf.VerifyBatchMulti(pks, msgs, sigs, rng); err != nil {
		t.Fatalf("valid multi-signer batch rejected: %v", err)
	}
	// One tampered message fails the batch.
	bad := append([][]byte{}, msgs...)
	bad[2] = []byte("tampered")
	if err := vf.VerifyBatchMulti(pks, bad, sigs, rng); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("tampered multi batch accepted: %v", err)
	}
	// Swapped signatures between signers fail.
	swapped := append([]*Signature{}, sigs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := vf.VerifyBatchMulti(pks, msgs, swapped, rng); err == nil {
		t.Fatal("swapped signatures accepted")
	}
	// Length mismatch and empty batch.
	if err := vf.VerifyBatchMulti(pks[:1], msgs, sigs, rng); !errors.Is(err, ErrBatchMismatch) {
		t.Fatal("length mismatch not detected")
	}
	if err := vf.VerifyBatchMulti(nil, nil, nil, rng); err != nil {
		t.Fatal("empty batch should verify")
	}
}

func TestRekey(t *testing.T) {
	rng := fixedRand(51)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := NewVerifier(kgc.Params())
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("alice"), rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("before rekey")
	oldSig, err := Sign(kgc.Params(), sk, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := sk.Rekey(kgc.Params(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if sk2.Public().PID.Equal(sk.Public().PID) {
		t.Fatal("rekey kept the same public key")
	}
	if sk2.ID() != sk.ID() {
		t.Fatal("rekey changed the identity")
	}
	newSig, err := Sign(kgc.Params(), sk2, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// New signatures verify under the new public key only.
	if err := vf.Verify(sk2.Public(), msg, newSig); err != nil {
		t.Fatalf("post-rekey signature rejected: %v", err)
	}
	if err := vf.Verify(sk.Public(), msg, newSig); err == nil {
		t.Fatal("post-rekey signature verified under old key")
	}
	// Old signatures remain valid under the old public key.
	if err := vf.Verify(sk.Public(), msg, oldSig); err != nil {
		t.Fatalf("pre-rekey signature rejected: %v", err)
	}
}

func TestCompactSignatureRoundTrip(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "alice")
	msg := []byte("compact")
	sig, err := Sign(kgc.Params(), sk, msg, fixedRand(60))
	if err != nil {
		t.Fatal(err)
	}
	enc := sig.MarshalCompact()
	if len(enc) != CompactSignatureSize {
		t.Fatalf("compact size %d, want %d", len(enc), CompactSignatureSize)
	}
	if len(enc) >= len(sig.Marshal()) {
		t.Fatal("compact encoding not smaller than the plain one")
	}
	dec, err := UnmarshalSignatureCompact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Verify(sk.Public(), msg, dec); err != nil {
		t.Fatalf("decoded compact signature rejected: %v", err)
	}
	if _, err := UnmarshalSignatureCompact(enc[:10]); err == nil {
		t.Fatal("accepted truncated compact signature")
	}
	bad := append([]byte{}, enc...)
	bad[40] ^= 0xFF
	if _, err := UnmarshalSignatureCompact(bad); err == nil {
		t.Fatal("accepted corrupted compact signature")
	}
}

func FuzzUnmarshalSignature(f *testing.F) {
	rng := fixedRand(61)
	kgc, err := Setup(rng)
	if err != nil {
		f.Fatal(err)
	}
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("fz"), rng)
	if err != nil {
		f.Fatal(err)
	}
	sig, err := Sign(kgc.Params(), sk, []byte("seed"), rng)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sig.Marshal())
	f.Add(make([]byte, SignatureSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalSignature(data)
		if err != nil {
			return
		}
		// Anything accepted must re-marshal identically.
		if string(dec.Marshal()) != string(data) {
			t.Fatal("non-canonical signature encoding accepted")
		}
	})
}

func FuzzUnmarshalPublicKey(f *testing.F) {
	rng := fixedRand(62)
	kgc, err := Setup(rng)
	if err != nil {
		f.Fatal(err)
	}
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("fz"), rng)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sk.Public().Marshal())
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pk, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		if string(pk.Marshal()) != string(data) {
			t.Fatal("non-canonical public key encoding accepted")
		}
	})
}

// scriptedRand serves predetermined 32-byte scalar draws to Sign, tracking
// how many bytes were consumed. crypto/rand.Int reads exactly 32 bytes per
// draw for the 254-bit group order.
type scriptedRand struct {
	data []byte
	off  int
}

func (s *scriptedRand) Read(p []byte) (int, error) {
	n := copy(p, s.data[s.off:])
	s.off += n
	if n == 0 {
		return 0, errors.New("scripted randomness exhausted")
	}
	return n, nil
}

// TestSignRedrawsWhenROverlapsSecret forces the r == x collision (which
// would make R the identity and leak x) and checks that Sign redraws
// instead of emitting a degenerate signature. The redraw path is a loop,
// so even an adversarial RNG that keeps returning x cannot overflow the
// stack — it just keeps the loop spinning until the stream moves on.
func TestSignRedrawsWhenROverlapsSecret(t *testing.T) {
	kgc, err := Setup(fixedRand(9))
	if err != nil {
		t.Fatal(err)
	}
	const id = "redraw@manet"
	x := big.NewInt(5)
	sk, err := NewPrivateKeyFromSecret(kgc.Params(), kgc.ExtractPartialPrivateKey(id), x)
	if err != nil {
		t.Fatal(err)
	}

	// First draw r = x = 5 (collision), second draw r = 7 (accepted).
	script := make([]byte, 64)
	big.NewInt(5).FillBytes(script[:32])
	big.NewInt(7).FillBytes(script[32:])
	rng := &scriptedRand{data: script}

	msg := []byte("RREP via redraw")
	sig, err := Sign(kgc.Params(), sk, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rng.off != 64 {
		t.Fatalf("expected exactly two scalar draws (64 bytes), consumed %d", rng.off)
	}
	// With r = 7 and x = 5, R = (r-x)·P = 2·P.
	want := new(bn254.G1).ScalarBaseMult(big.NewInt(2))
	if !sig.R.Equal(want) {
		t.Fatal("redraw produced an unexpected commitment")
	}
	if sig.R.IsInfinity() {
		t.Fatal("identity commitment leaked through the redraw guard")
	}
	if err := NewVerifier(kgc.Params()).Verify(sk.Public(), msg, sig); err != nil {
		t.Fatalf("redrawn signature rejected: %v", err)
	}
}
