package core

import (
	"math/rand"
	"testing"

	"mccls/internal/cttest"
)

// TestConstantTimeSign is the dudect-style smoke for the signing path:
// fixed-message and random-message classes are interleaved and the two
// timing populations compared with Welch's t-test. The nonce stream is
// replayed identically for both classes (same seed sequence per round),
// so the only class-dependent input is the message bytes — a schedule
// that branches on message or scalar content would separate the means.
// The threshold is generous for the same reason as the fp smokes: this
// guards against reintroducing a large data-dependent branch, not
// against microarchitectural leakage.
func TestConstantTimeSign(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Sign timing smoke in -short mode")
	}
	seedRng := rand.New(rand.NewSource(1))
	kgc, err := Setup(seedRng)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("ct@manet"), seedRng)
	if err != nil {
		t.Fatal(err)
	}

	const batch, rounds = 4, 16
	var msgs [2][][][]byte // [class][round][i]
	fixed := []byte("constant-time probe message, sixty-four bytes of steady payload!")
	for class := 0; class < 2; class++ {
		msgs[class] = make([][][]byte, rounds)
		for r := 0; r < rounds; r++ {
			ms := make([][]byte, batch)
			for i := range ms {
				m := make([]byte, len(fixed))
				if class == 0 {
					copy(m, fixed)
				} else {
					seedRng.Read(m)
				}
				ms[i] = m
			}
			msgs[class][r] = ms
		}
	}

	var round [2]int
	s := cttest.Collect(300, 3, func(class int) {
		r := round[class] % rounds
		round[class]++
		// Identical nonce stream for both classes at the same round.
		nonceRng := rand.New(rand.NewSource(int64(1000 + r)))
		for i := 0; i < batch; i++ {
			if _, err := Sign(kgc.Params(), sk, msgs[class][r][i], nonceRng); err != nil {
				t.Fatal(err)
			}
		}
	})
	if tstat := cttest.MaxT(s); tstat > 25 {
		t.Errorf("Sign timing leak: |t| = %.2f > 25", tstat)
	}
}
