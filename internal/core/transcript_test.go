package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"mccls/internal/bn254"
)

// transcriptPin is the SHA-256 of a deterministic sign/verify transcript:
// KGC setup, key generation, 32 signatures and a pairing product, all
// driven from fixed seeds. The same test runs under the default build and
// `-tags purego`; both must reproduce this exact digest, which proves the
// assembly and generic field kernels are byte-identical end to end — not
// just equal modulo q, but producing the same canonical encodings on the
// wire. Regenerate (and scrutinize the diff that made it move) with:
//
//	go test ./internal/core -run TestSignTranscriptCrossKernel -v
//
// which logs the computed digest on mismatch.
const transcriptPin = "355dd8ba773b613f78a63db75be6eca4e87004fc4bceefc1553dbb4aa6cfab16"

func TestSignTranscriptCrossKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write(kgc.Params().Marshal())
	for id := 0; id < 4; id++ {
		sk, err := GenerateKeyPair(kgc.Params(),
			kgc.ExtractPartialPrivateKey(fmt.Sprintf("node-%d@manet", id)), rng)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(sk.Public().Marshal())
		vf := NewVerifier(kgc.Params())
		for i := 0; i < 8; i++ {
			msg := []byte(fmt.Sprintf("transcript %d/%d", id, i))
			sig, err := Sign(kgc.Params(), sk, msg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := vf.Verify(sk.Public(), msg, sig); err != nil {
				t.Fatalf("verify %d/%d: %v", id, i, err)
			}
			h.Write(sig.Marshal())
			h.Write(sig.MarshalCompact())
		}
	}
	// Fold in a raw pairing output so the GT/Fp12 encoding (the part
	// Verify only compares, never emits) is pinned too.
	k1 := rand.New(rand.NewSource(5))
	s1, err := bn254.RandomScalar(k1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bn254.RandomScalar(k1)
	if err != nil {
		t.Fatal(err)
	}
	g1 := new(bn254.G1).ScalarBaseMult(s1)
	g2 := new(bn254.G2).ScalarBaseMult(s2)
	h.Write(bn254.Pair(g1, g2).Marshal())

	got := hex.EncodeToString(h.Sum(nil))
	if got != transcriptPin {
		t.Errorf("transcript digest mismatch:\n got %s\nwant %s\n(kernel-dependent output or an intentional format change)", got, transcriptPin)
	}
}
