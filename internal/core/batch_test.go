package core

import (
	"bytes"
	"errors"
	"math/big"
	"reflect"
	"testing"

	"mccls/internal/batch"
	"mccls/internal/bn254"
)

// multiBatch builds n signatures spread across k distinct signers.
func multiBatch(t *testing.T, n, k int) (*KGC, *Verifier, []*PublicKey, [][]byte, []*Signature) {
	t.Helper()
	rng := fixedRand(90)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := NewVerifier(kgc.Params())
	sks := make([]*PrivateKey, k)
	for j := range sks {
		id := "node-" + string(rune('a'+j))
		if sks[j], err = GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey(id), rng); err != nil {
			t.Fatal(err)
		}
	}
	pks := make([]*PublicKey, n)
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := 0; i < n; i++ {
		sk := sks[i%k]
		pks[i] = sk.Public()
		msgs[i] = []byte{byte(i), byte(i >> 8), byte(i * 5)}
		if sigs[i], err = Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
			t.Fatal(err)
		}
	}
	return kgc, vf, pks, msgs, sigs
}

// fixedSeed is a deterministic 32-byte weight seed for invariance tests.
func fixedSeed() *bytes.Reader { return bytes.NewReader(bytes.Repeat([]byte{0x5a}, 32)) }

func TestBatchEngineBisectionLocatesOffenders(t *testing.T) {
	_, vf, pks, msgs, sigs := multiBatch(t, 20, 4)
	bad := append([][]byte{}, msgs...)
	bad[3] = []byte("tampered-3")
	bad[17] = []byte("tampered-17")
	err := vf.Batch(BatchOptions{ChunkSize: 8, Weights: fixedSeed()}).VerifyMulti(pks, bad, sigs)
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("tampered batch: %v", err)
	}
	var be *batch.Error
	if !errors.As(err, &be) {
		t.Fatalf("rejection is not a *batch.Error: %v", err)
	}
	if want := []int{3, 17}; !reflect.DeepEqual(be.Bad, want) {
		t.Fatalf("offenders %v, want %v", be.Bad, want)
	}
}

func TestBatchEngineWorkerInvariance(t *testing.T) {
	_, vf, pks, msgs, sigs := multiBatch(t, 33, 3)
	bad := append([][]byte{}, msgs...)
	bad[0] = []byte("x")
	bad[16] = []byte("y")
	bad[32] = []byte("z")
	var want []int
	for _, workers := range []int{1, 4, 8} {
		err := vf.Batch(BatchOptions{Workers: workers, ChunkSize: 8, Weights: fixedSeed()}).
			VerifyMulti(pks, bad, sigs)
		var be *batch.Error
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = be.Bad
			continue
		}
		if !reflect.DeepEqual(be.Bad, want) {
			t.Fatalf("workers=%d: offenders %v, want %v", workers, be.Bad, want)
		}
	}
	// A clean batch must accept at every worker count too.
	for _, workers := range []int{1, 4, 8} {
		opts := BatchOptions{Workers: workers, ChunkSize: 8, Weights: fixedSeed()}
		if err := vf.Batch(opts).VerifyMulti(pks, msgs, sigs); err != nil {
			t.Fatalf("workers=%d rejected a valid batch: %v", workers, err)
		}
	}
}

func TestBatchEngineSameSigner(t *testing.T) {
	kgc, sk, vf := newTestSystem(t, "sensor-99")
	rng := fixedRand(91)
	const n = 12
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
		var err error
		if sigs[i], err = Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
			t.Fatal(err)
		}
	}
	bv := vf.Batch(BatchOptions{ChunkSize: 4, Weights: fixedSeed()})
	if err := bv.VerifySameSigner(sk.Public(), msgs, sigs); err != nil {
		t.Fatalf("valid same-signer batch rejected: %v", err)
	}
	bad := append([][]byte{}, msgs...)
	bad[7] = []byte("tampered")
	err := vf.Batch(BatchOptions{ChunkSize: 4, Weights: fixedSeed()}).
		VerifySameSigner(sk.Public(), bad, sigs)
	var be *batch.Error
	if !errors.As(err, &be) || !reflect.DeepEqual(be.Bad, []int{7}) {
		t.Fatalf("same-signer bisection: %v", err)
	}
}

// TestZeroChallengeHashRejected pins the ModInverse guard: a challenge hash
// h ≡ 0 (mod r) has no inverse and used to crash every verification path
// with a nil-pointer dereference inside big.Int.Mul. All paths must instead
// reject with ErrInvalidSignature.
func TestZeroChallengeHashRejected(t *testing.T) {
	kgc, sk, _ := newTestSystem(t, "zero-h")
	rng := fixedRand(92)
	msg := []byte("m")
	sig, err := Sign(kgc.Params(), sk, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := kgc.Params()
	params.h2Override = func([]byte, *bn254.G1, *bn254.G1) *big.Int { return new(big.Int) }
	vf := NewVerifier(params)
	pk := sk.Public()
	paths := map[string]func() error{
		"Verify":     func() error { return vf.Verify(pk, msg, sig) },
		"VerifySpec": func() error { return vf.VerifySpec(pk, msg, sig) },
		"BatchVerify": func() error {
			return vf.BatchVerify(pk, [][]byte{msg}, []*Signature{sig})
		},
		"VerifyBatchMulti": func() error {
			return vf.VerifyBatchMulti([]*PublicKey{pk}, [][]byte{msg}, []*Signature{sig}, fixedSeed())
		},
	}
	for name, run := range paths {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("zero challenge hash panicked: %v", r)
				}
			}()
			if err := run(); !errors.Is(err, ErrInvalidSignature) {
				t.Fatalf("zero challenge hash: got %v, want ErrInvalidSignature", err)
			}
		})
	}
}

// TestVerifierCacheBounded floods a small-capacity verifier with unique
// identities and checks the per-identity caches stay within their bound.
func TestVerifierCacheBounded(t *testing.T) {
	rng := fixedRand(93)
	kgc, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := NewVerifierCap(kgc.Params(), 4)
	if vf.CacheCap() != 4 {
		t.Fatalf("cap = %d, want 4", vf.CacheCap())
	}
	msg := []byte("flood")
	for i := 0; i < 12; i++ {
		id := "flood-" + string(rune('a'+i))
		sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey(id), rng)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := Sign(kgc.Params(), sk, msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := vf.Verify(sk.Public(), msg, sig); err != nil {
			t.Fatal(err)
		}
	}
	if vf.CacheLen() != 4 {
		t.Fatalf("cache length %d after identity flood, want 4", vf.CacheLen())
	}
}
