package core

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// PublicKey is a user's certificateless public key P_ID = x·P_pub. There is
// no certificate: the key is transmitted alongside signatures (or through
// any directory) and its binding to the identity is enforced by the
// verification equation itself.
type PublicKey struct {
	ID  string
	PID *bn254.G1
}

// publicKeyMarshalledSize is the byte length of the point part of a
// marshalled public key.
const publicKeyMarshalledSize = 64

// Marshal encodes the public key as len(ID)‖ID‖P_ID.
func (pk *PublicKey) Marshal() []byte {
	out := appendLengthPrefixed(nil, []byte(pk.ID))
	return append(out, pk.PID.Marshal()...)
}

// UnmarshalPublicKey decodes a public key, validating the embedded point.
func UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	id, rest, err := readLengthPrefixed(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	var pid bn254.G1
	if err := pid.Unmarshal(rest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	if pid.IsInfinity() {
		return nil, fmt.Errorf("%w: P_ID is the identity element", ErrInvalidKey)
	}
	return &PublicKey{ID: string(id), PID: &pid}, nil
}

// PrivateKey is a user's full signing key: the secret value x chosen by the
// user, and S = x⁻¹·D_ID, the message-independent half of every signature
// (precomputed once, as the paper's operation counts assume).
type PrivateKey struct {
	pub *PublicKey
	x   *big.Int
	s   *bn254.G2
}

// GenerateKeyPair runs the Generate-Key-Pair algorithm: draw the secret
// value x ← Zr*, set P_ID = x·P_pub and precompute S = x⁻¹·D_ID. The partial
// key is validated first so a corrupted KGC response is caught here rather
// than at first verification failure. Passing a nil reader uses crypto/rand.
func GenerateKeyPair(params *Params, ppk *PartialPrivateKey, rng io.Reader) (*PrivateKey, error) {
	if err := ppk.Validate(params); err != nil {
		return nil, err
	}
	x, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("mccls: keygen: %w", err)
	}
	return newPrivateKey(params, ppk, x)
}

// NewPrivateKeyFromSecret deterministically rebuilds a private key from a
// stored secret value x and the partial private key.
func NewPrivateKeyFromSecret(params *Params, ppk *PartialPrivateKey, x *big.Int) (*PrivateKey, error) {
	if x == nil || x.Sign() <= 0 || x.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("%w: secret value out of range", ErrInvalidKey)
	}
	if err := ppk.Validate(params); err != nil {
		return nil, err
	}
	return newPrivateKey(params, ppk, new(big.Int).Set(x))
}

func newPrivateKey(params *Params, ppk *PartialPrivateKey, x *big.Int) (*PrivateKey, error) {
	xInv := new(big.Int).ModInverse(x, bn254.Order)
	return &PrivateKey{
		pub: &PublicKey{ID: ppk.ID, PID: new(bn254.G1).ScalarMult(params.Ppub, x)},
		x:   x,
		s:   new(bn254.G2).ScalarMult(ppk.D, xInv),
	}, nil
}

// Public returns the corresponding public key.
func (sk *PrivateKey) Public() *PublicKey { return sk.pub }

// ID returns the identity the key is bound to.
func (sk *PrivateKey) ID() string { return sk.pub.ID }

// SecretValue returns a copy of x for durable storage.
func (sk *PrivateKey) SecretValue() *big.Int { return new(big.Int).Set(sk.x) }

// Rekey replaces the user-chosen half of the key — the certificateless
// "public key replacement" operation: the user draws a fresh secret value
// x' and derives the new P_ID and S from the same partial private key,
// with no KGC interaction (D_ID = x·S is recoverable from the old key).
// Signatures made with the old key keep verifying under the old public
// key; new signatures verify under the new one. Passing a nil reader uses
// crypto/rand.
func (sk *PrivateKey) Rekey(params *Params, rng io.Reader) (*PrivateKey, error) {
	x, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("mccls: rekey: %w", err)
	}
	d := new(bn254.G2).ScalarMult(sk.s, sk.x) // recover D_ID
	xInv := new(big.Int).ModInverse(x, bn254.Order)
	return &PrivateKey{
		pub: &PublicKey{ID: sk.pub.ID, PID: new(bn254.G1).ScalarMult(params.Ppub, x)},
		x:   x,
		s:   new(bn254.G2).ScalarMult(d, xInv),
	}, nil
}
