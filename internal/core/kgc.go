package core

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// KGC is the Key Generation Center. It holds the master secret s and issues
// partial private keys D_ID = s·H1(ID). In a certificateless system the KGC
// is semi-trusted: it can issue partial keys but cannot sign on behalf of
// users because it never learns their secret value x.
type KGC struct {
	params *Params
	master *big.Int
}

// Setup runs the McCLS Setup algorithm: draw a master key s ← Zr* and
// publish P_pub = s·P. Passing a nil reader uses crypto/rand.
func Setup(rng io.Reader) (*KGC, error) {
	s, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("mccls: setup: %w", err)
	}
	return NewKGCFromMaster(s)
}

// NewKGCFromMaster reconstructs a KGC from a stored master key, e.g. after a
// restart. The master key must be in [1, r).
func NewKGCFromMaster(s *big.Int) (*KGC, error) {
	if s == nil || s.Sign() <= 0 || s.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("%w: master key out of range", ErrInvalidKey)
	}
	master := new(big.Int).Set(s)
	params := &Params{Ppub: new(bn254.G1).ScalarBaseMult(master)}
	params.Precompute()
	return &KGC{params: params, master: master}, nil
}

// Params returns the public system parameters.
func (k *KGC) Params() *Params { return k.params }

// MasterKey returns a copy of the master secret, for durable storage by the
// KGC operator. Handle with care.
func (k *KGC) MasterKey() *big.Int { return new(big.Int).Set(k.master) }

// PartialPrivateKey is the KGC's contribution D_ID = s·Q_ID to a user's
// signing key. It is bound to the identity it was extracted for.
type PartialPrivateKey struct {
	ID string
	D  *bn254.G2
}

// ExtractPartialPrivateKey runs the Extract-Partial-Private-Key algorithm
// for the given identity.
func (k *KGC) ExtractPartialPrivateKey(id string) *PartialPrivateKey {
	return IssuePartialKey(k.params, id, k.master)
}

// IssuePartialKey computes k·Q_ID — the Extract-Partial-Private-Key group
// operation with an explicit scalar. The single-master KGC calls it with
// the master secret; a threshold share-holder (internal/threshold) calls it
// with its Shamir share, in which case the result is a key *share*, not a
// valid partial key, until t of them are Lagrange-combined.
func IssuePartialKey(params *Params, id string, k *big.Int) *PartialPrivateKey {
	q := params.QID(id)
	return &PartialPrivateKey{ID: id, D: new(bn254.G2).ScalarMult(q, k)}
}

// Validate checks the partial key against the public parameters:
// e(P, D_ID) must equal e(P_pub, Q_ID). A user should run this on any
// partial key received over an untrusted channel before deriving a keypair.
func (ppk *PartialPrivateKey) Validate(params *Params) error {
	if ppk.D == nil || ppk.D.IsInfinity() || !ppk.D.IsInSubgroup() {
		return fmt.Errorf("%w: D_ID not a valid subgroup element", ErrPartialKeyInvalid)
	}
	q := params.QID(ppk.ID)
	negP := new(bn254.G1).Neg(params.Generator())
	// e(P, D)·e(-P_pub, Q_ID) == 1  ⇔  e(P, D) == e(P_pub, Q_ID)
	ok := bn254.PairingCheck(
		[]*bn254.G1{negP, params.Ppub},
		[]*bn254.G2{ppk.D, q},
	)
	// PairingCheck computes Π e(p_i, q_i); we need e(-P, D)·e(P_pub, Q) = 1.
	if !ok {
		return ErrPartialKeyInvalid
	}
	return nil
}

// Marshal encodes the partial key as len(ID)‖ID‖D.
func (ppk *PartialPrivateKey) Marshal() []byte {
	out := appendLengthPrefixed(nil, []byte(ppk.ID))
	return append(out, ppk.D.Marshal()...)
}

// UnmarshalPartialPrivateKey decodes a partial key, validating the embedded
// point (curve and subgroup membership).
func UnmarshalPartialPrivateKey(data []byte) (*PartialPrivateKey, error) {
	id, rest, err := readLengthPrefixed(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	var d bn254.G2
	if err := d.Unmarshal(rest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	return &PartialPrivateKey{ID: string(id), D: &d}, nil
}

func readLengthPrefixed(data []byte) (field, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("truncated length prefix")
	}
	n := uint64(0)
	for i := 0; i < 8; i++ {
		n = n<<8 | uint64(data[i])
	}
	if n > uint64(len(data)-8) {
		return nil, nil, fmt.Errorf("length prefix exceeds buffer")
	}
	return data[8 : 8+n], data[8+n:], nil
}
