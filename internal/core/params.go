// Package core implements McCLS, the certificateless signature scheme of
// Xu, Liu, Zhang, He, Dai and Shu (ICDCS 2008 Workshops): "A Certificateless
// Signature Scheme for Mobile Wireless Cyber-Physical Systems".
//
// The scheme splits key material between a Key Generation Center (KGC),
// which issues a partial private key D_ID = s·H1(ID), and the user, who
// contributes a secret value x. Neither party alone can sign: the KGC never
// learns x (no key escrow), and the user never learns the master key s
// (no self-certification). There are no certificates: a verifier needs only
// the system parameters, the claimed identity and the claimed public key.
//
// Signing requires zero pairing operations; verification requires a single
// pairing beyond the per-identity constant e(P_pub, Q_ID), which Verifier
// caches — the property the paper leans on for CPS timing budgets.
//
// The paper's symmetric pairing is translated to the Type-3 setting (see
// DESIGN.md §1): ⟨P⟩-side values (P, P_pub, R, P_ID) live in G1 and
// identity-derived values (Q_ID, D_ID, S) live in G2.
package core

import (
	"errors"
	"fmt"
	"math/big"

	"mccls/internal/bn254"
)

// Domain-separation tags for the two random oracles.
const (
	domainH1 = "mccls/v1/H1" // identities → G2
	domainH2 = "mccls/v1/H2" // (message, R, P_ID) → Zr*
)

// Errors returned by verification and decoding. ErrVerifyFailed is the
// only rejection a protocol should branch on; the rest aid debugging.
var (
	ErrVerifyFailed      = errors.New("mccls: signature verification failed")
	ErrInvalidSignature  = errors.New("mccls: malformed signature")
	ErrInvalidKey        = errors.New("mccls: malformed key material")
	ErrPartialKeyInvalid = errors.New("mccls: partial private key does not match identity")
	ErrBatchMismatch     = errors.New("mccls: batch lengths do not match")
)

// Params are the public system parameters (P, P_pub, H1, H2) published by
// the KGC at Setup. P is the fixed G1 generator; the hash functions are
// fixed domain-separated oracles, so only P_pub varies between systems.
type Params struct {
	// Ppub is the KGC master public key s·P.
	Ppub *bn254.G1

	// h2Override, when non-nil, replaces the H2 oracle. It exists for
	// tests only: regression tests use it to drive pathological hash
	// values — h ≡ 0 mod r, which has no inverse — through the
	// verification paths without finding a SHA-256 preimage.
	h2Override func(msg []byte, r, pid *bn254.G1) *big.Int
}

// Generator returns P, the fixed system generator of G1.
func (*Params) Generator() *bn254.G1 { return bn254.G1Generator() }

// Precompute builds the fixed-base table for the system generator so the
// first Sign/Verify call does not pay the one-time table cost. Setup and
// UnmarshalParams call it; it is idempotent and safe concurrently.
func (*Params) Precompute() { bn254.PrecomputeFixedBase() }

// QID computes the identity hash Q_ID = H1(ID) ∈ G2.
func (*Params) QID(id string) *bn254.G2 {
	return bn254.HashToG2(domainH1, []byte(id))
}

// hashH2 computes h = H2(M, R, P_ID) ∈ Zr*, length-prefixing each component
// so distinct tuples cannot collide.
func (p *Params) hashH2(msg []byte, r *bn254.G1, pid *bn254.G1) *big.Int {
	if p.h2Override != nil {
		return p.h2Override(msg, r, pid)
	}
	buf := make([]byte, 0, 8+len(msg)+2*64)
	buf = appendLengthPrefixed(buf, msg)
	buf = append(buf, r.Marshal()...)
	buf = append(buf, pid.Marshal()...)
	return bn254.HashToScalar(domainH2, buf)
}

func appendLengthPrefixed(dst, b []byte) []byte {
	n := len(b)
	dst = append(dst, byte(n>>56), byte(n>>48), byte(n>>40), byte(n>>32),
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(dst, b...)
}

// paramsMarshalledSize is the byte length of marshalled Params.
const paramsMarshalledSize = 64

// Marshal encodes the parameters (currently just P_pub).
func (p *Params) Marshal() []byte { return p.Ppub.Marshal() }

// UnmarshalParams decodes parameters produced by Marshal, validating the
// embedded point.
func UnmarshalParams(data []byte) (*Params, error) {
	if len(data) != paramsMarshalledSize {
		return nil, fmt.Errorf("%w: params want %d bytes, got %d", ErrInvalidKey, paramsMarshalledSize, len(data))
	}
	var ppub bn254.G1
	if err := ppub.Unmarshal(data); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	if ppub.IsInfinity() {
		return nil, fmt.Errorf("%w: P_pub is the identity", ErrInvalidKey)
	}
	p := &Params{Ppub: &ppub}
	p.Precompute()
	return p, nil
}
