package radio

import (
	"math"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// grid is a uniform spatial index over node positions, the structure that
// turns the medium's O(n) neighbor scan into an O(degree) cell lookup. It
// is rebuilt lazily once per virtual-time epoch: at rebuild time each node
// is inserted into every cell its piecewise-linear trajectory can touch
// during the epoch (the bounding box of its legs over the window), so a
// query at any instant inside the epoch only has to scan the cells within
// radio range of the query point and then confirm candidates against exact
// current positions. Candidate sets are supersets by construction, which
// makes grid results bit-identical to the naive all-pairs scan — pinned by
// TestNeighborsGridMatchesNaive and FuzzNeighborsGridVsNaive.
//
// Cell size defaults to the radio range, so a query visits at most the 3×3
// block around its point; models that report no trajectory information
// (degenerate Leg results) degrade to per-instant rebuilds, which is still
// exact, just slower.
type grid struct {
	mob      mobility.Model
	cellSize float64
	epoch    time.Duration

	built              bool
	validFrom, validTo sim.Time

	cells map[uint64]int // packed cell coordinate -> index into lists
	lists [][]int32      // per-cell ascending node ids; reused across rebuilds
	used  int            // lists in use by the current build

	stamp    []uint32 // per-node dedupe marks for multi-cell membership
	stampGen uint32

	stats GridStats
}

// GridStats counts the spatial index's work, exported per-run for
// BENCH_manet.json.
type GridStats struct {
	// Rebuilds is how many epochs were (re)indexed; Cells is the occupied
	// cell count of the last build and MaxOccupancy the largest single-cell
	// population ever seen (the worst-case query constant).
	Rebuilds     uint64 `json:"rebuilds"`
	Cells        int    `json:"cells"`
	MaxOccupancy int    `json:"max_occupancy"`
	// Queries counts neighbor lookups served by the index; Candidates sums
	// the cell entries they scanned, so Candidates/Queries is the effective
	// per-query work the index pays instead of n.
	Queries    uint64 `json:"queries"`
	Candidates uint64 `json:"candidates"`
}

func newGrid(mob mobility.Model, cellSize float64, epoch time.Duration) *grid {
	if epoch <= 0 {
		epoch = time.Second
	}
	return &grid{
		mob:      mob,
		cellSize: cellSize,
		epoch:    epoch,
		cells:    make(map[uint64]int),
		stamp:    make([]uint32, mob.Nodes()),
	}
}

// cellKey packs signed cell coordinates into one map key.
func cellKey(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

func (g *grid) cellOf(v float64) int32 {
	return int32(math.Floor(v / g.cellSize))
}

// ensure rebuilds the index when now falls outside the window the current
// build covers.
func (g *grid) ensure(now sim.Time) {
	if g.built && now >= g.validFrom && now <= g.validTo {
		return
	}
	g.rebuild(now)
}

// rebuild indexes every node's reachable area over [now, now+epoch]. A
// model without trajectory information (a degenerate Leg) shrinks the
// window to the single instant now, forcing a rebuild per distinct query
// time — exact, but without the epoch amortization.
func (g *grid) rebuild(now sim.Time) {
	clear(g.cells)
	g.used = 0
	windowEnd := now + g.epoch
	instantOnly := false

	n := g.mob.Nodes()
	for node := 0; node < n; node++ {
		minP, maxP, ok := trajectoryBounds(g.mob, node, now, windowEnd)
		if !ok {
			instantOnly = true
		}
		cx0, cy0 := g.cellOf(minP.X), g.cellOf(minP.Y)
		cx1, cy1 := g.cellOf(maxP.X), g.cellOf(maxP.Y)
		for cx := cx0; cx <= cx1; cx++ {
			for cy := cy0; cy <= cy1; cy++ {
				g.insert(cellKey(cx, cy), int32(node))
			}
		}
	}

	g.built = true
	g.validFrom = now
	if instantOnly {
		g.validTo = now
	} else {
		g.validTo = windowEnd
	}
	g.stats.Rebuilds++
	g.stats.Cells = len(g.cells)
	for i := 0; i < g.used; i++ {
		if occ := len(g.lists[i]); occ > g.stats.MaxOccupancy {
			g.stats.MaxOccupancy = occ
		}
	}
}

// insert appends a node to a cell's list, creating (or recycling) the list
// on first touch. Nodes are inserted in ascending id order by rebuild, so
// every list stays sorted.
func (g *grid) insert(key uint64, node int32) {
	idx, ok := g.cells[key]
	if !ok {
		if g.used == len(g.lists) {
			g.lists = append(g.lists, nil)
		}
		idx = g.used
		g.lists[idx] = g.lists[idx][:0]
		g.used++
		g.cells[key] = idx
	}
	g.lists[idx] = append(g.lists[idx], node)
}

// trajectoryBounds returns the bounding box of a node's position over
// [t, tEnd], walked from the mobility model's leg view. ok is false when the
// model reported no trajectory information (the box then only covers the
// instant t).
func trajectoryBounds(mob mobility.Model, node int, t, tEnd sim.Time) (minP, maxP mobility.Point, ok bool) {
	p := mob.Position(node, t)
	minP, maxP = p, p
	ok = true
	for t < tEnd {
		from, to, _, t1 := mob.Leg(node, t)
		if t1 <= t {
			// Degenerate leg: only the instantaneous position is known.
			return minP, maxP, false
		}
		// Include the leg's own start: a wrap-around teleport surfaces as a
		// `from` discontinuity, and covering the full leg is conservative.
		minP.X, maxP.X = math.Min(minP.X, from.X), math.Max(maxP.X, from.X)
		minP.Y, maxP.Y = math.Min(minP.Y, from.Y), math.Max(maxP.Y, from.Y)
		var reach mobility.Point
		if t1 >= tEnd {
			reach = mob.Position(node, tEnd)
		} else {
			reach = to
		}
		minP.X, maxP.X = math.Min(minP.X, reach.X), math.Max(maxP.X, reach.X)
		minP.Y, maxP.Y = math.Min(minP.Y, reach.Y), math.Max(maxP.Y, reach.Y)
		if t1 >= tEnd {
			break
		}
		t = t1
	}
	return minP, maxP, ok
}

// appendCandidates appends to buf every indexed node whose epoch area
// intersects the square circumscribing the radius-r disk around p,
// deduplicating nodes that straddle several cells. The result is a superset
// of the nodes within r of p at any instant in the build window; callers
// confirm against exact positions.
func (g *grid) appendCandidates(p mobility.Point, r float64, buf []int32) []int32 {
	g.stats.Queries++
	g.stampGen++
	gen := g.stampGen
	cx0, cy0 := g.cellOf(p.X-r), g.cellOf(p.Y-r)
	cx1, cy1 := g.cellOf(p.X+r), g.cellOf(p.Y+r)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			idx, ok := g.cells[cellKey(cx, cy)]
			if !ok {
				continue
			}
			for _, id := range g.lists[idx] {
				g.stats.Candidates++
				if g.stamp[id] == gen {
					continue
				}
				g.stamp[id] = gen
				buf = append(buf, id)
			}
		}
	}
	return buf
}
