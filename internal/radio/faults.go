package radio

import (
	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// Radio-layer fault injection: the medium can be told that a node's radio is
// powered off (crash/restart churn), that a specific link or a geographic
// region is severed for a time window (obstruction, jamming), or that the
// channel loss rate is elevated for a window (interference burst). All
// checks are pure functions of the virtual clock and the pre-registered
// windows, so a faulted run is exactly as deterministic as a clean one.
// Schedules are built by package fault and installed before t=0.

// linkOutage severs the symmetric link a↔b during [from, to).
type linkOutage struct {
	a, b     int
	from, to sim.Time
}

// regionOutage kills every link with an endpoint inside the disk during
// [from, to).
type regionOutage struct {
	center   mobility.Point
	radius   float64
	from, to sim.Time
}

// lossWindow raises the channel loss rate during [from, to). Windows
// compose with each other and with Config.LossRate as independent loss
// processes.
type lossWindow struct {
	from, to sim.Time
	rate     float64
}

func (w linkOutage) active(now sim.Time) bool   { return now >= w.from && now < w.to }
func (w regionOutage) active(now sim.Time) bool { return now >= w.from && now < w.to }
func (w lossWindow) active(now sim.Time) bool   { return now >= w.from && now < w.to }

// SetNodeDown powers a node's radio off or on. A down node neither
// transmits nor receives and unicasts toward it fail at send time (no MAC
// ACK), which is what lets neighbors detect the crash as a link break.
func (m *Medium) SetNodeDown(node int, down bool) { m.down[node] = down }

// NodeDown reports whether a node's radio is currently off.
func (m *Medium) NodeDown(node int) bool { return m.down[node] }

// AddLinkOutage severs the link between a and b (both directions) during
// [from, to).
func (m *Medium) AddLinkOutage(a, b int, from, to sim.Time) {
	m.linkOutages = append(m.linkOutages, linkOutage{a: a, b: b, from: from, to: to})
}

// AddRegionOutage severs every link touching the disk of the given center
// and radius during [from, to).
func (m *Medium) AddRegionOutage(center mobility.Point, radius float64, from, to sim.Time) {
	m.regOutages = append(m.regOutages, regionOutage{center: center, radius: radius, from: from, to: to})
}

// AddLossWindow raises the channel loss rate by rate (a probability in
// [0, 1)) during [from, to).
func (m *Medium) AddLossWindow(from, to sim.Time, rate float64) {
	m.lossWindows = append(m.lossWindows, lossWindow{from: from, to: to, rate: rate})
}

// linkFaulted reports whether a fault window currently severs the a↔b link.
func (m *Medium) linkFaulted(a, b int) bool {
	now := m.sim.Now()
	for _, w := range m.linkOutages {
		if w.active(now) && ((w.a == a && w.b == b) || (w.a == b && w.b == a)) {
			return true
		}
	}
	for _, w := range m.regOutages {
		if !w.active(now) {
			continue
		}
		if m.Position(a).Dist(w.center) <= w.radius || m.Position(b).Dist(w.center) <= w.radius {
			return true
		}
	}
	return false
}

// lossAt composes the base loss rate with every loss window active at t,
// treating each as an independent loss process:
//
//	loss = 1 − (1−base)·Π(1−rateᵢ)
//
// With no active windows this returns Config.LossRate unchanged, so the RNG
// draw sequence of existing (fault-free) scenarios is untouched.
func (m *Medium) lossAt(t sim.Time) float64 {
	loss := m.cfg.LossRate
	for _, w := range m.lossWindows {
		if w.active(t) {
			loss = 1 - (1-loss)*(1-w.rate)
		}
	}
	return loss
}
