package radio

import (
	"testing"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// line builds a static topology of nodes spaced 200m apart on the x-axis
// (range default 250m, so only adjacent nodes hear each other).
func line(n int) *mobility.Static {
	pts := make([]mobility.Point, n)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i) * 200}
	}
	return &mobility.Static{Points: pts}
}

func TestNeighborsDiskModel(t *testing.T) {
	s := sim.New(1)
	m := New(s, line(4), Config{})
	got := m.Neighbors(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("neighbors(1) = %v, want [0 2]", got)
	}
	if m.InRange(0, 2) {
		t.Fatal("nodes 400m apart are in 250m range")
	}
	if m.InRange(1, 1) {
		t.Fatal("node in range of itself")
	}
}

func TestBroadcastReachesNeighborsOnly(t *testing.T) {
	s := sim.New(1)
	m := New(s, line(4), Config{})
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		m.SetHandler(i, func(from int, payload any) {
			if from != 1 || payload.(string) != "hello" {
				t.Errorf("node %d got bad frame from %d", i, from)
			}
			got = append(got, i)
		})
	}
	m.Broadcast(1, 64, "hello")
	s.Run(time.Second)
	if len(got) != 2 {
		t.Fatalf("broadcast delivered to %v, want exactly nodes 0 and 2", got)
	}
}

func TestUnicastDeliveryAndLinkFailure(t *testing.T) {
	s := sim.New(1)
	m := New(s, line(3), Config{})
	delivered := false
	m.SetHandler(1, func(from int, payload any) { delivered = true })
	if !m.Unicast(0, 1, 128, "pkt") {
		t.Fatal("in-range unicast reported failure")
	}
	if m.Unicast(0, 2, 128, "pkt") {
		t.Fatal("out-of-range unicast reported success")
	}
	s.Run(time.Second)
	if !delivered {
		t.Fatal("unicast frame not delivered")
	}
	if m.Stats.UnicastFailed != 1 || m.Stats.UnicastSent != 2 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestDeliveryDelayIncludesSerialization(t *testing.T) {
	s := sim.New(1)
	// Disable MAC jitter so the delay is deterministic.
	m := New(s, line(2), Config{MACDelayMax: -1})
	var at sim.Time
	m.SetHandler(1, func(int, any) { at = s.Now() })
	m.Unicast(0, 1, 250, "x") // 250 B at 2 Mb/s = 1 ms serialization
	s.Run(time.Second)
	if at < time.Millisecond || at > time.Millisecond+10*time.Microsecond {
		t.Fatalf("delivery at %v, want ≈1ms", at)
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	s := sim.New(1)
	m := New(s, line(2), Config{LossRate: 1.0})
	m.SetHandler(1, func(int, any) { t.Fatal("lossy channel delivered") })
	for i := 0; i < 10; i++ {
		m.Unicast(0, 1, 64, i)
	}
	s.Run(time.Second)
	if m.Stats.Lost != 10 {
		t.Fatalf("lost = %d, want 10", m.Stats.Lost)
	}
}

func TestCollisionModel(t *testing.T) {
	// Nodes 0 and 2 both in range of 1; simultaneous sends collide at 1.
	s := sim.New(1)
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 200}, {X: 400}}}
	m := New(s, pts, Config{Collisions: true, MACDelayMax: -1})
	delivered := 0
	m.SetHandler(1, func(int, any) { delivered++ })
	m.Unicast(0, 1, 512, "a")
	m.Unicast(2, 1, 512, "b")
	s.Run(time.Second)
	if delivered != 0 {
		t.Fatalf("overlapping frames delivered: %d", delivered)
	}
	if m.Stats.Collided != 2 {
		t.Fatalf("collided = %d, want 2", m.Stats.Collided)
	}
	// Non-overlapping transmissions are fine.
	m.Unicast(0, 1, 64, "c")
	s.Run(2 * time.Second)
	m.Unicast(2, 1, 64, "d")
	s.Run(3 * time.Second)
	if delivered != 2 {
		t.Fatalf("sequential frames delivered %d, want 2", delivered)
	}
}

func TestMobilityChangesConnectivity(t *testing.T) {
	// One node walks out of range over time.
	s := sim.New(1)
	horizonSec := 100.0
	// Hand-built model: node 1 moves away at 10 m/s along x starting at 100m.
	mob := &movingAway{}
	m := New(s, mob, Config{})
	if !m.InRange(0, 1) {
		t.Fatal("initially out of range")
	}
	s.Run(sim.Time(horizonSec/2) * time.Second) // t=50s, distance 600m
	if m.InRange(0, 1) {
		t.Fatal("still in range after moving away")
	}
}

// movingAway is a two-node model where node 1 recedes at 10 m/s. It
// reports no trajectory information (degenerate legs), exercising the
// spatial index's per-instant rebuild fallback.
type movingAway struct{}

func (*movingAway) Nodes() int { return 2 }
func (*movingAway) Position(node int, t time.Duration) mobility.Point {
	if node == 0 {
		return mobility.Point{}
	}
	return mobility.Point{X: 100 + 10*t.Seconds()}
}

func (m *movingAway) Leg(node int, t time.Duration) (from, to mobility.Point, t0, t1 time.Duration) {
	p := m.Position(node, t)
	return p, p, t, t
}
