package radio

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// gridTestMedium builds a medium over a random-waypoint field with the
// spatial index enabled.
func gridTestMedium(seed int64, n int, width, height float64) (*sim.Simulator, *Medium) {
	s := sim.New(seed)
	mob := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
		Width: width, Height: height, MaxSpeed: 20,
	}, n, 300*time.Second, rand.New(rand.NewSource(seed)))
	return s, New(s, mob, Config{Range: 250})
}

// checkGridVsNaive compares the indexed and naive neighbor sets of every
// node at the medium's current virtual time.
func checkGridVsNaive(t *testing.T, m *Medium, label string) {
	t.Helper()
	for node := 0; node < m.Nodes(); node++ {
		grid := m.AppendNeighbors(node, nil)
		naive := m.NeighborsNaive(node)
		if !slices.Equal(grid, naive) {
			t.Fatalf("%s node %d: grid=%v naive=%v", label, node, grid, naive)
		}
	}
}

// TestNeighborsGridMatchesNaive is the differential test of the spatial
// index: under moving nodes, powered-down radios, link and region outages,
// the grid must return exactly the naive all-pairs scan's neighbor sets.
func TestNeighborsGridMatchesNaive(t *testing.T) {
	s, m := gridTestMedium(7, 60, 1500, 300)

	// Faults: two dead radios, a severed link, a jammed region mid-field.
	m.SetNodeDown(3, true)
	m.SetNodeDown(41, true)
	m.AddLinkOutage(5, 9, 10*time.Second, 200*time.Second)
	m.AddRegionOutage(mobility.Point{X: 750, Y: 150}, 300, 50*time.Second, 150*time.Second)

	for _, target := range []time.Duration{0, 3 * time.Second, 9999 * time.Millisecond,
		30 * time.Second, 77 * time.Second, 149 * time.Second, 151 * time.Second, 299 * time.Second} {
		s.Run(target)
		checkGridVsNaive(t, m, fmt.Sprintf("t=%v", target))
	}

	// Flip the churned radios and re-check inside the same epoch: the down
	// flags are evaluated at query time, not bake into the index.
	m.SetNodeDown(3, false)
	m.SetNodeDown(12, true)
	checkGridVsNaive(t, m, "after churn flip")
}

// TestNeighborsGridHeterogeneousRanges pins grid==naive when nodes carry
// different radio ranges (the symmetric min-range link rule).
func TestNeighborsGridHeterogeneousRanges(t *testing.T) {
	s, m := gridTestMedium(11, 50, 1200, 600)
	rng := rand.New(rand.NewSource(13))
	for node := 0; node < m.Nodes(); node++ {
		m.SetNodeRange(node, 100+rng.Float64()*300) // 100–400 m, straddling the 250 m cell size
	}
	for _, target := range []time.Duration{0, 17 * time.Second, 120 * time.Second} {
		s.Run(target)
		checkGridVsNaive(t, m, fmt.Sprintf("hetero t=%v", target))
	}
}

// TestNeighborsGridBoundaryCells places nodes exactly on cell boundaries
// (multiples of the 250 m cell size), at negative coordinates, and at
// exact-range distances, where floor/comparison edge cases live.
func TestNeighborsGridBoundaryCells(t *testing.T) {
	pts := []mobility.Point{
		{X: 0, Y: 0},
		{X: 250, Y: 0},   // exactly one cell east, exactly at range
		{X: 500, Y: 0},   // exactly two cells east
		{X: -250, Y: 0},  // negative cell, exactly at range
		{X: 250, Y: 250}, // diagonal cell corner
		{X: -0.0001, Y: 0},
		{X: 249.9999, Y: 249.9999},
		{X: -500, Y: -500},
	}
	s := sim.New(1)
	m := New(s, &mobility.Static{Points: pts}, Config{Range: 250})
	checkGridVsNaive(t, m, "boundary")
	// An exact-range pair is in range (<=, not <): distance 250 == range.
	if !m.InRange(0, 1) {
		t.Fatal("exact-range pair not in range")
	}
	got := m.Neighbors(0)
	want := m.NeighborsNaive(0)
	if !slices.Equal(got, want) || len(got) == 0 {
		t.Fatalf("boundary neighbors: grid=%v naive=%v", got, want)
	}
}

// TestNeighborsGridInstantFallback drives the medium over a model that
// reports no trajectory information: every query at a new time must force a
// fresh (still exact) rebuild.
func TestNeighborsGridInstantFallback(t *testing.T) {
	s := sim.New(1)
	m := New(s, &movingAway{}, Config{})
	if got := m.Neighbors(0); !slices.Equal(got, []int{1}) {
		t.Fatalf("neighbors at t=0: %v", got)
	}
	before := m.GridStats().Rebuilds
	s.Run(40 * time.Second) // node 1 is now 500 m away
	if got := m.Neighbors(0); len(got) != 0 {
		t.Fatalf("neighbors after recession: %v", got)
	}
	if m.GridStats().Rebuilds == before {
		t.Fatal("instant-only model did not force a rebuild at the new time")
	}
}

// TestAppendNeighborsZeroAlloc pins the hot-path guarantee: inside one
// index epoch, neighbor lookups into a reused buffer do not allocate.
func TestAppendNeighborsZeroAlloc(t *testing.T) {
	s, m := gridTestMedium(3, 200, 2000, 2000)
	s.Run(5 * time.Second)
	buf := make([]int, 0, 256)
	m.AppendNeighbors(0, buf) // warm the grid and scratch buffers
	allocs := testing.AllocsPerRun(200, func() {
		for node := 0; node < 50; node++ {
			buf = m.AppendNeighbors(node, buf[:0])
		}
	})
	if allocs > 0 {
		t.Fatalf("AppendNeighbors allocates %.1f/op inside an epoch, want 0", allocs)
	}
}

// TestBroadcastWaveZeroAlloc pins the full transmit→deliver chain: with
// pooled tx jobs, deliveries and events, a steady-state broadcast wave does
// not allocate. The topology is static so the pools' high-water marks are
// reached during warm-up; under mobility the peak in-flight demand can keep
// growing (denser clusters form), which is amortized pool growth, not a
// per-frame allocation — BenchmarkBroadcastWave reports that case.
func TestBroadcastWaveZeroAlloc(t *testing.T) {
	pts := make([]mobility.Point, 100)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i%10) * 200, Y: float64(i/10) * 200}
	}
	s := sim.New(5)
	m := New(s, &mobility.Static{Points: pts}, Config{Range: 250})
	payload := any("hello")
	for i := 0; i < m.Nodes(); i++ {
		m.SetHandler(i, func(int, any) {})
	}
	// Warm every pool to its high-water mark: a few full waves.
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < m.Nodes(); i++ {
			m.Broadcast(i, 64, payload)
		}
		s.RunAll()
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < m.Nodes(); i++ {
			m.Broadcast(i, 64, payload)
		}
		s.RunAll()
	})
	if allocs > 0 {
		t.Fatalf("broadcast wave allocates %.1f/op steady-state, want 0", allocs)
	}
}

// TestReceptionRecordsPooled pins the collision-model satellite: completed
// reception records recycle instead of accumulating over long runs.
func TestReceptionRecordsPooled(t *testing.T) {
	s := sim.New(1)
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 200}, {X: 400}}}
	m := New(s, pts, Config{Collisions: true})
	m.SetHandler(1, func(int, any) {})
	for i := 0; i < 2000; i++ {
		m.Unicast(0, 1, 64, i)
		m.Unicast(2, 1, 64, i)
		s.Run(time.Duration(i+1) * 50 * time.Millisecond)
	}
	if live := len(m.recv[1]); live > 8 {
		t.Fatalf("reception list grew to %d entries; pruning/pooling broken", live)
	}
	if len(m.recPool) == 0 {
		t.Fatal("no reception records ever recycled")
	}
}

// FuzzNeighborsGridVsNaive fuzzes the differential property: arbitrary
// seeds, query times, down masks and fault windows must never make the
// indexed neighbor sets diverge from the naive scan.
func FuzzNeighborsGridVsNaive(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(3000), uint32(0), uint16(100), uint16(600))
	f.Add(int64(42), uint16(500), uint16(9999), uint32(0b1010), uint16(0), uint16(65535))
	f.Add(int64(-7), uint16(65535), uint16(1), uint32(^uint32(0)), uint16(250), uint16(250))
	f.Fuzz(func(t *testing.T, seed int64, t1ms, t2ms uint16, downMask uint32, regX, regR uint16) {
		const n = 24
		s := sim.New(seed)
		mob := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Width: 1500, Height: 300, MaxSpeed: 20,
		}, n, 70*time.Second, rand.New(rand.NewSource(seed)))
		m := New(s, mob, Config{Range: 250})

		for i := 0; i < 32 && i < n; i++ {
			if downMask&(1<<i) != 0 {
				m.SetNodeDown(i, true)
			}
		}
		m.AddLinkOutage(int(t1ms)%n, int(t2ms)%n, 0, time.Duration(t2ms)*time.Millisecond)
		m.AddRegionOutage(mobility.Point{X: float64(regX), Y: 150}, float64(regR),
			time.Duration(t1ms)*time.Millisecond, 60*time.Second)

		times := []time.Duration{
			time.Duration(t1ms) * time.Millisecond,
			time.Duration(t2ms) * time.Millisecond,
		}
		slices.Sort(times)
		for _, target := range times {
			s.Run(target)
			for node := 0; node < n; node++ {
				grid := m.AppendNeighbors(node, nil)
				naive := m.NeighborsNaive(node)
				if !slices.Equal(grid, naive) {
					t.Fatalf("t=%v node %d: grid=%v naive=%v", target, node, grid, naive)
				}
			}
		}
	})
}

// benchMedium builds an n-node medium at the paper's node density
// (22500 m² per node) with handlers installed.
func benchMedium(n int, noIndex bool) (*sim.Simulator, *Medium) {
	side := 150 * float64(n) // keep width×300 at constant density
	s := sim.New(1)
	mob := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
		Width: side, Height: 300, MaxSpeed: 20,
	}, n, 300*time.Second, rand.New(rand.NewSource(1)))
	m := New(s, mob, Config{Range: 250, NoIndex: noIndex})
	for i := 0; i < n; i++ {
		m.SetHandler(i, func(int, any) {})
	}
	return s, m
}

var benchSizes = []int{20, 100, 500, 2000}

// BenchmarkNeighbors measures one neighbor lookup, naive scan vs spatial
// index, at constant node density.
func BenchmarkNeighbors(b *testing.B) {
	for _, n := range benchSizes {
		for _, mode := range []string{"naive", "grid"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				s, m := benchMedium(n, mode == "naive")
				s.Run(time.Second)
				buf := make([]int, 0, n)
				buf = m.AppendNeighbors(0, buf[:0])
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = m.AppendNeighbors(i%n, buf[:0])
				}
				_ = buf
			})
		}
	}
}

// BenchmarkBroadcastWave measures a full wave — every node broadcasts once
// and all deliveries drain — naive vs grid, at constant node density.
func BenchmarkBroadcastWave(b *testing.B) {
	for _, n := range benchSizes {
		for _, mode := range []string{"naive", "grid"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				s, m := benchMedium(n, mode == "naive")
				payload := any("x")
				for i := 0; i < n; i++ {
					m.Broadcast(i, 64, payload)
				}
				s.RunAll()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for node := 0; node < n; node++ {
						m.Broadcast(node, 64, payload)
					}
					s.RunAll()
				}
			})
		}
	}
}
