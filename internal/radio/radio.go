// Package radio models the wireless medium for the MANET simulator: a
// disk-propagation link model with serialization and propagation delay,
// uniform channel-access (MAC) jitter, optional i.i.d. packet loss, and an
// optional receiver-side collision model. It stands in for QualNet's
// 802.11-style PHY/MAC at the fidelity the paper's routing experiments
// need (see DESIGN.md §1).
package radio

import (
	"math"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// Broadcast is the destination id for one-hop broadcast frames.
const Broadcast = -1

// Handler receives a delivered frame payload at a node.
type Handler func(from int, payload any)

// Config parameterizes the medium. Zero values select defaults.
type Config struct {
	// Range is the transmission radius in meters (default 250, the
	// canonical 802.11 outdoor figure used in the AODV literature).
	Range float64
	// BitRate is the air data rate in bits/s (default 2 Mb/s).
	BitRate float64
	// MACDelayMax is the maximum uniform channel-access delay per
	// transmission (default 2ms); it models contention backoff.
	MACDelayMax time.Duration
	// LossRate is an i.i.d. per-delivery loss probability in [0, 1).
	LossRate float64
	// Collisions enables the receiver-side overlap model: two frames
	// arriving at the same node with overlapping air time corrupt each
	// other.
	Collisions bool
}

func (c Config) withDefaults() Config {
	if c.Range == 0 {
		c.Range = 250
	}
	if c.BitRate == 0 {
		c.BitRate = 2e6
	}
	if c.MACDelayMax == 0 {
		c.MACDelayMax = 2 * time.Millisecond
	}
	return c
}

// Stats aggregates medium-level counters.
type Stats struct {
	UnicastSent    uint64
	UnicastFailed  uint64 // link-layer failures detected at send time
	BroadcastSent  uint64
	Deliveries     uint64
	Lost           uint64 // random losses
	Collided       uint64 // losses due to reception overlap
	BytesOnAir     uint64
	ControlPackets uint64 // caller-maintained via CountControl
}

// reception tracks one in-flight frame at a receiver for the collision
// model.
type reception struct {
	start, end sim.Time
	corrupted  bool
}

// Medium connects nodes over a shared wireless channel.
type Medium struct {
	sim  *sim.Simulator
	mob  mobility.Model
	cfg  Config
	hand []Handler
	recv [][]*reception

	// Fault-injection state (see faults.go): powered-off radios and
	// time-windowed link/region outages and loss degradation.
	down        []bool
	linkOutages []linkOutage
	regOutages  []regionOutage
	lossWindows []lossWindow

	// Stats is exported for scenario-level reporting.
	Stats Stats
}

// New builds a medium over the given mobility model.
func New(s *sim.Simulator, mob mobility.Model, cfg Config) *Medium {
	return &Medium{
		sim:  s,
		mob:  mob,
		cfg:  cfg.withDefaults(),
		hand: make([]Handler, mob.Nodes()),
		recv: make([][]*reception, mob.Nodes()),
		down: make([]bool, mob.Nodes()),
	}
}

// Nodes returns the number of attached nodes.
func (m *Medium) Nodes() int { return m.mob.Nodes() }

// SetHandler installs the receive callback for a node.
func (m *Medium) SetHandler(node int, h Handler) { m.hand[node] = h }

// Handler returns the receive callback currently installed for a node, so
// a layer attached later (e.g. the enrollment protocol) can interpose its
// own handler and delegate everything it does not recognize.
func (m *Medium) Handler(node int) Handler { return m.hand[node] }

// Position returns a node's current location.
func (m *Medium) Position(node int) mobility.Point {
	return m.mob.Position(node, m.sim.Now())
}

// InRange reports whether two nodes can currently hear each other: within
// radio range, both radios powered, and no fault window severing the link.
func (m *Medium) InRange(a, b int) bool {
	if a == b {
		return false
	}
	if m.down[a] || m.down[b] {
		return false
	}
	if m.Position(a).Dist(m.Position(b)) > m.cfg.Range {
		return false
	}
	return !m.linkFaulted(a, b)
}

// Neighbors returns the nodes currently within range of node.
func (m *Medium) Neighbors(node int) []int {
	var out []int
	for other := 0; other < m.Nodes(); other++ {
		if other != node && m.InRange(node, other) {
			out = append(out, other)
		}
	}
	return out
}

// serialization returns the air time of a frame of the given size.
func (m *Medium) serialization(bytes int) time.Duration {
	return time.Duration(float64(bytes*8) / m.cfg.BitRate * float64(time.Second))
}

// propagation returns the speed-of-light delay over dist meters.
func propagation(dist float64) time.Duration {
	return time.Duration(dist / 3e8 * float64(time.Second))
}

// macDelay draws the uniform channel-access delay.
func (m *Medium) macDelay() time.Duration {
	if m.cfg.MACDelayMax <= 0 {
		return 0
	}
	return time.Duration(m.sim.Rand().Int63n(int64(m.cfg.MACDelayMax)))
}

// deliver schedules the arrival of a frame at one receiver, applying loss
// and (optionally) collision corruption.
func (m *Medium) deliver(from, to int, bytes int, payload any, txStart sim.Time) {
	dist := m.mob.Position(from, txStart).Dist(m.mob.Position(to, txStart))
	arrive := txStart + m.serialization(bytes) + propagation(dist)

	if loss := m.lossAt(txStart); loss > 0 && m.sim.Rand().Float64() < loss {
		m.Stats.Lost++
		return
	}

	var rec *reception
	if m.cfg.Collisions {
		rec = &reception{start: txStart, end: arrive}
		m.trackReception(to, rec)
	}
	m.sim.ScheduleAt(arrive, func() {
		if rec != nil && rec.corrupted {
			m.Stats.Collided++
			return
		}
		if h := m.hand[to]; h != nil {
			m.Stats.Deliveries++
			h(from, payload)
		}
	})
}

// trackReception records a reception interval and corrupts any overlapping
// ones (including the new one), pruning completed intervals as it goes.
func (m *Medium) trackReception(node int, rec *reception) {
	live := m.recv[node][:0]
	for _, other := range m.recv[node] {
		if other.end <= rec.start {
			continue // finished before we started; prune
		}
		if other.start < rec.end && rec.start < other.end {
			other.corrupted = true
			rec.corrupted = true
		}
		live = append(live, other)
	}
	m.recv[node] = append(live, rec)
}

// Broadcast transmits a frame to every node currently in range. Neighbor
// membership is evaluated at the (jittered) transmission start, matching a
// real channel where movement during backoff changes the audience.
func (m *Medium) Broadcast(from int, bytes int, payload any) {
	m.Stats.BroadcastSent++
	m.Stats.BytesOnAir += uint64(bytes)
	delay := m.macDelay()
	m.sim.Schedule(delay, func() {
		txStart := m.sim.Now()
		for _, to := range m.Neighbors(from) {
			m.deliver(from, to, bytes, payload, txStart)
		}
	})
}

// Unicast transmits a frame to one neighbor. It returns false — modelling
// the missing link-layer ACK AODV uses for link-break detection — when the
// destination is out of range at send time; the frame is then not
// transmitted. Losses after a successful send (random loss, collisions) are
// not reported to the sender, as with a real half-duplex MAC whose ACK
// timeout is longer than the simulation's decision point.
func (m *Medium) Unicast(from, to int, bytes int, payload any) bool {
	m.Stats.UnicastSent++
	if !m.InRange(from, to) {
		m.Stats.UnicastFailed++
		return false
	}
	m.Stats.BytesOnAir += uint64(bytes)
	delay := m.macDelay()
	m.sim.Schedule(delay, func() {
		m.deliver(from, to, bytes, payload, m.sim.Now())
	})
	return true
}

// Dist returns the current distance between two nodes, primarily for
// scenario debugging.
func (m *Medium) Dist(a, b int) float64 {
	return math.Abs(m.Position(a).Dist(m.Position(b)))
}
