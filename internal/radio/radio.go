// Package radio models the wireless medium for the MANET simulator: a
// disk-propagation link model with serialization and propagation delay,
// uniform channel-access (MAC) jitter, optional i.i.d. packet loss, and an
// optional receiver-side collision model. It stands in for QualNet's
// 802.11-style PHY/MAC at the fidelity the paper's routing experiments
// need (see DESIGN.md §1).
//
// Neighbor discovery runs through a uniform-grid spatial index (grid.go)
// rebuilt lazily per virtual-time epoch from the mobility model's
// piecewise-linear legs, so a broadcast wave costs O(degree) per sender
// instead of O(n); the pre-index all-pairs scan survives as
// NeighborsNaive, the differential oracle. Transmissions, deliveries and
// collision records are pooled sim.Actions, keeping the whole broadcast
// hot path allocation-free.
package radio

import (
	"math"
	"slices"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// Broadcast is the destination id for one-hop broadcast frames.
const Broadcast = -1

// Handler receives a delivered frame payload at a node.
type Handler func(from int, payload any)

// Config parameterizes the medium. Zero values select defaults.
type Config struct {
	// Range is the transmission radius in meters (default 250, the
	// canonical 802.11 outdoor figure used in the AODV literature).
	Range float64
	// BitRate is the air data rate in bits/s (default 2 Mb/s).
	BitRate float64
	// MACDelayMax is the maximum uniform channel-access delay per
	// transmission (default 2ms); it models contention backoff.
	MACDelayMax time.Duration
	// LossRate is an i.i.d. per-delivery loss probability in [0, 1).
	LossRate float64
	// Collisions enables the receiver-side overlap model: two frames
	// arriving at the same node with overlapping air time corrupt each
	// other.
	Collisions bool
	// IndexEpoch is the spatial index's validity window (default 1s): the
	// grid indexes where every node can be over the next epoch and is only
	// rebuilt when the clock leaves the window. Longer epochs rebuild less
	// but fatten each node's cell footprint by its reachable area.
	IndexEpoch time.Duration
	// NoIndex disables the spatial index, forcing the naive O(n) neighbor
	// scan on every lookup. The naive path is the differential oracle the
	// grid is tested against, and the baseline the benchmarks compare to.
	NoIndex bool
}

func (c Config) withDefaults() Config {
	if c.Range == 0 {
		c.Range = 250
	}
	if c.BitRate == 0 {
		c.BitRate = 2e6
	}
	if c.MACDelayMax == 0 {
		c.MACDelayMax = 2 * time.Millisecond
	}
	if c.IndexEpoch == 0 {
		c.IndexEpoch = time.Second
	}
	return c
}

// Stats aggregates medium-level counters.
type Stats struct {
	UnicastSent    uint64
	UnicastFailed  uint64 // link-layer failures detected at send time
	BroadcastSent  uint64
	Deliveries     uint64
	Lost           uint64 // random losses
	Collided       uint64 // losses due to reception overlap
	BytesOnAir     uint64
	ControlPackets uint64 // caller-maintained via CountControl
}

// reception tracks one in-flight frame at a receiver for the collision
// model. Records are pooled: trackReception recycles every reception whose
// air time has strictly passed, so per-node lists stay bounded by the
// number of simultaneously in-flight frames even over long runs.
type reception struct {
	start, end sim.Time
	corrupted  bool
}

// Medium connects nodes over a shared wireless channel.
type Medium struct {
	sim  *sim.Simulator
	mob  mobility.Model
	cfg  Config
	hand []Handler
	recv [][]*reception

	// grid is the spatial neighbor index (nil under Config.NoIndex);
	// ranges overrides per-node radio ranges (nil = homogeneous
	// Config.Range).
	grid   *grid
	ranges []float64

	// Scratch buffers and free lists for the allocation-free hot path:
	// nbuf holds the neighbor set of the in-flight broadcast, cbuf the
	// grid's candidate ids, and the pools recycle transmission, delivery
	// and reception records.
	nbuf    []int
	cbuf    []int32
	txPool  []*txJob
	dlvPool []*delivery
	recPool []*reception

	// Fault-injection state (see faults.go): powered-off radios and
	// time-windowed link/region outages and loss degradation.
	down        []bool
	linkOutages []linkOutage
	regOutages  []regionOutage
	lossWindows []lossWindow

	// Stats is exported for scenario-level reporting.
	Stats Stats
}

// New builds a medium over the given mobility model.
func New(s *sim.Simulator, mob mobility.Model, cfg Config) *Medium {
	cfg = cfg.withDefaults()
	m := &Medium{
		sim:  s,
		mob:  mob,
		cfg:  cfg,
		hand: make([]Handler, mob.Nodes()),
		recv: make([][]*reception, mob.Nodes()),
		down: make([]bool, mob.Nodes()),
	}
	if !cfg.NoIndex {
		m.grid = newGrid(mob, cfg.Range, cfg.IndexEpoch)
	}
	return m
}

// Nodes returns the number of attached nodes.
func (m *Medium) Nodes() int { return m.mob.Nodes() }

// SetHandler installs the receive callback for a node.
func (m *Medium) SetHandler(node int, h Handler) { m.hand[node] = h }

// Handler returns the receive callback currently installed for a node, so
// a layer attached later (e.g. the enrollment protocol) can interpose its
// own handler and delegate everything it does not recognize.
func (m *Medium) Handler(node int) Handler { return m.hand[node] }

// Position returns a node's current location.
func (m *Medium) Position(node int) mobility.Point {
	return m.mob.Position(node, m.sim.Now())
}

// SetNodeRange overrides one node's radio range (heterogeneous radios).
// The link rule stays symmetric: two nodes hear each other iff their
// distance is within the smaller of their ranges, keeping every link
// bidirectional the way AODV's HELLO/ACK machinery assumes.
func (m *Medium) SetNodeRange(node int, r float64) {
	if m.ranges == nil {
		m.ranges = make([]float64, m.Nodes())
		for i := range m.ranges {
			m.ranges[i] = m.cfg.Range
		}
	}
	m.ranges[node] = r
}

// rangeOf returns a node's radio range.
func (m *Medium) rangeOf(node int) float64 {
	if m.ranges == nil {
		return m.cfg.Range
	}
	return m.ranges[node]
}

// InRange reports whether two nodes can currently hear each other: within
// both radios' range, both powered, and no fault window severing the link.
func (m *Medium) InRange(a, b int) bool {
	if a == b {
		return false
	}
	if m.down[a] || m.down[b] {
		return false
	}
	if m.Position(a).Dist(m.Position(b)) > math.Min(m.rangeOf(a), m.rangeOf(b)) {
		return false
	}
	return !m.linkFaulted(a, b)
}

// Neighbors returns the nodes currently within range of node, in ascending
// id order. It allocates a fresh slice; hot paths should use
// AppendNeighbors with a reused buffer instead.
func (m *Medium) Neighbors(node int) []int {
	return m.AppendNeighbors(node, nil)
}

// AppendNeighbors appends the nodes currently within range of node to buf
// in ascending id order and returns the extended slice. With the spatial
// index enabled it scans only the grid cells within radio range — O(degree)
// instead of O(n) — and performs no allocation beyond growing buf.
func (m *Medium) AppendNeighbors(node int, buf []int) []int {
	if m.grid == nil {
		return m.appendNeighborsNaive(node, buf)
	}
	if m.down[node] {
		return buf
	}
	now := m.sim.Now()
	m.grid.ensure(now)
	r := m.rangeOf(node)
	p := m.mob.Position(node, now)
	m.cbuf = m.grid.appendCandidates(p, r, m.cbuf[:0])
	start := len(buf)
	for _, id := range m.cbuf {
		other := int(id)
		if other == node || m.down[other] {
			continue
		}
		if p.Dist(m.mob.Position(other, now)) > math.Min(r, m.rangeOf(other)) {
			continue
		}
		if m.linkFaulted(node, other) {
			continue
		}
		buf = append(buf, other)
	}
	// Candidates arrive in cell order; the naive scan defines the
	// canonical ascending-id order.
	slices.Sort(buf[start:])
	return buf
}

// NeighborsNaive returns the neighbor set by the pre-index all-pairs scan.
// It is the differential oracle the spatial index is pinned against
// (TestNeighborsGridMatchesNaive, FuzzNeighborsGridVsNaive) and the
// baseline of the neighbor benchmarks.
func (m *Medium) NeighborsNaive(node int) []int {
	return m.appendNeighborsNaive(node, nil)
}

func (m *Medium) appendNeighborsNaive(node int, buf []int) []int {
	for other := 0; other < m.Nodes(); other++ {
		if other != node && m.InRange(node, other) {
			buf = append(buf, other)
		}
	}
	return buf
}

// GridStats reports the spatial index's counters (zero when the index is
// disabled).
func (m *Medium) GridStats() GridStats {
	if m.grid == nil {
		return GridStats{}
	}
	return m.grid.stats
}

// serialization returns the air time of a frame of the given size.
func (m *Medium) serialization(bytes int) time.Duration {
	return time.Duration(float64(bytes*8) / m.cfg.BitRate * float64(time.Second))
}

// propagation returns the speed-of-light delay over dist meters.
func propagation(dist float64) time.Duration {
	return time.Duration(dist / 3e8 * float64(time.Second))
}

// macDelay draws the uniform channel-access delay.
func (m *Medium) macDelay() time.Duration {
	if m.cfg.MACDelayMax <= 0 {
		return 0
	}
	return time.Duration(m.sim.Rand().Int63n(int64(m.cfg.MACDelayMax)))
}

// txJob is a pooled transmission event: the frame waiting out its MAC
// delay. to == Broadcast fans out to every neighbor at fire time.
type txJob struct {
	m       *Medium
	from    int
	to      int
	bytes   int
	payload any
}

// Fire transmits the frame. Neighbor membership of a broadcast is evaluated
// at the (jittered) transmission start, matching a real channel where
// movement during backoff changes the audience.
func (j *txJob) Fire() {
	m := j.m
	txStart := m.sim.Now()
	if j.to == Broadcast {
		m.nbuf = m.AppendNeighbors(j.from, m.nbuf[:0])
		for _, to := range m.nbuf {
			m.deliver(j.from, to, j.bytes, j.payload, txStart)
		}
	} else {
		m.deliver(j.from, j.to, j.bytes, j.payload, txStart)
	}
	j.payload = nil
	m.txPool = append(m.txPool, j)
}

// newTxJob takes a transmission record from the pool.
func (m *Medium) newTxJob(from, to, bytes int, payload any) *txJob {
	var j *txJob
	if n := len(m.txPool); n > 0 {
		j = m.txPool[n-1]
		m.txPool[n-1] = nil
		m.txPool = m.txPool[:n-1]
	} else {
		j = &txJob{m: m}
	}
	j.from, j.to, j.bytes, j.payload = from, to, bytes, payload
	return j
}

// delivery is a pooled arrival event: one frame landing at one receiver.
type delivery struct {
	m       *Medium
	from    int
	to      int
	payload any
	rec     *reception
}

// Fire lands the frame: a collision-corrupted reception is counted and
// dropped, anything else goes to the receiver's handler.
func (d *delivery) Fire() {
	m := d.m
	if d.rec != nil && d.rec.corrupted {
		m.Stats.Collided++
	} else if h := m.hand[d.to]; h != nil {
		m.Stats.Deliveries++
		h(d.from, d.payload)
	}
	d.payload, d.rec = nil, nil
	m.dlvPool = append(m.dlvPool, d)
}

// newDelivery takes a delivery record from the pool.
func (m *Medium) newDelivery(from, to int, payload any, rec *reception) *delivery {
	var d *delivery
	if n := len(m.dlvPool); n > 0 {
		d = m.dlvPool[n-1]
		m.dlvPool[n-1] = nil
		m.dlvPool = m.dlvPool[:n-1]
	} else {
		d = &delivery{m: m}
	}
	d.from, d.to, d.payload, d.rec = from, to, payload, rec
	return d
}

// newReception takes a collision record from the pool.
func (m *Medium) newReception(start, end sim.Time) *reception {
	var r *reception
	if n := len(m.recPool); n > 0 {
		r = m.recPool[n-1]
		m.recPool[n-1] = nil
		m.recPool = m.recPool[:n-1]
	} else {
		r = &reception{}
	}
	r.start, r.end, r.corrupted = start, end, false
	return r
}

// deliver schedules the arrival of a frame at one receiver, applying loss
// and (optionally) collision corruption. It must be called at virtual time
// txStart.
func (m *Medium) deliver(from, to int, bytes int, payload any, txStart sim.Time) {
	dist := m.mob.Position(from, txStart).Dist(m.mob.Position(to, txStart))
	arrive := txStart + m.serialization(bytes) + propagation(dist)

	if loss := m.lossAt(txStart); loss > 0 && m.sim.Rand().Float64() < loss {
		m.Stats.Lost++
		return
	}

	var rec *reception
	if m.cfg.Collisions {
		rec = m.newReception(txStart, arrive)
		m.trackReception(to, rec)
	}
	m.sim.ScheduleActionAt(arrive, m.newDelivery(from, to, payload, rec))
}

// trackReception records a reception interval and corrupts any overlapping
// ones (including the new one), pruning completed intervals as it goes.
// Strictly-finished records recycle through the pool: their delivery events
// (scheduled at their end time) have already fired, so the list held the
// last reference. A record ending exactly now may not have fired yet and is
// dropped to the garbage collector instead.
func (m *Medium) trackReception(node int, rec *reception) {
	live := m.recv[node][:0]
	for _, other := range m.recv[node] {
		if other.end <= rec.start {
			if other.end < rec.start {
				m.recPool = append(m.recPool, other)
			}
			continue // finished before we started; prune
		}
		if other.start < rec.end && rec.start < other.end {
			other.corrupted = true
			rec.corrupted = true
		}
		live = append(live, other)
	}
	m.recv[node] = append(live, rec)
}

// Broadcast transmits a frame to every node in range at the (jittered)
// transmission start.
func (m *Medium) Broadcast(from int, bytes int, payload any) {
	m.Stats.BroadcastSent++
	m.Stats.BytesOnAir += uint64(bytes)
	m.sim.ScheduleAction(m.macDelay(), m.newTxJob(from, Broadcast, bytes, payload))
}

// Unicast transmits a frame to one neighbor. It returns false — modelling
// the missing link-layer ACK AODV uses for link-break detection — when the
// destination is out of range at send time; the frame is then not
// transmitted. Losses after a successful send (random loss, collisions) are
// not reported to the sender, as with a real half-duplex MAC whose ACK
// timeout is longer than the simulation's decision point.
func (m *Medium) Unicast(from, to int, bytes int, payload any) bool {
	m.Stats.UnicastSent++
	if !m.InRange(from, to) {
		m.Stats.UnicastFailed++
		return false
	}
	m.Stats.BytesOnAir += uint64(bytes)
	m.sim.ScheduleAction(m.macDelay(), m.newTxJob(from, to, bytes, payload))
	return true
}

// Dist returns the current distance between two nodes, primarily for
// scenario debugging.
func (m *Medium) Dist(a, b int) float64 {
	return math.Abs(m.Position(a).Dist(m.Position(b)))
}
