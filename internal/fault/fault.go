// Package fault builds and applies deterministic fault schedules for the
// MANET simulator: node crash/restart churn, per-link and regional radio
// outages, and time-windowed channel-loss degradation. A Schedule is plain
// data — fully decided before t=0 from a seeded generator (or written by
// hand in a test) — and Apply installs it into a simulation by scheduling
// lifecycle events against the virtual clock and registering radio windows.
// Because nothing about a schedule depends on execution order, faulted runs
// compose with the internal/runner parallel engine exactly like clean ones:
// same seed + same schedule → bit-identical results at any worker count.
package fault

import (
	"math/rand"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

// Crash takes a node down at At and (if RestartAt > At) back up at
// RestartAt. RetainRoutes models persisted routing state across the reboot:
// stale retained routes are how the RERR machinery gets exercised after
// churn. A crash with RestartAt ≤ At is permanent.
type Crash struct {
	Node         int
	At           time.Duration
	RestartAt    time.Duration
	RetainRoutes bool
}

// LinkOutage severs the symmetric link A↔B during [From, To).
type LinkOutage struct {
	A, B     int
	From, To time.Duration
}

// RegionOutage severs every link touching the disk at (X, Y) with the given
// Radius during [From, To) — an obstruction or jammer.
type RegionOutage struct {
	X, Y, Radius float64
	From, To     time.Duration
}

// LossWindow raises the channel loss rate by Rate during [From, To),
// composing with the base rate as an independent loss process.
type LossWindow struct {
	From, To time.Duration
	Rate     float64
}

// Schedule is a complete fault plan for one simulation run.
type Schedule struct {
	Crashes []Crash
	Links   []LinkOutage
	Regions []RegionOutage
	Loss    []LossWindow
}

// Empty reports whether the schedule injects no faults at all.
func (s Schedule) Empty() bool {
	return len(s.Crashes) == 0 && len(s.Links) == 0 && len(s.Regions) == 0 && len(s.Loss) == 0
}

// ChurnConfig parameterizes the random crash/restart generator.
type ChurnConfig struct {
	// Events is the number of crash/restart cycles over the run.
	Events int
	// Nodes is the node population; victims are drawn from [0, Nodes).
	Nodes int
	// Duration is the window crashes are placed in.
	Duration time.Duration
	// MeanDowntime is the average outage length (default 30s). Downtimes
	// are uniform in [½·mean, 1½·mean].
	MeanDowntime time.Duration
	// RetainProb is the probability a restarted node keeps its routing
	// table (default 0.5), so both the warm- and cold-boot paths run.
	RetainProb float64
	// Exclude lists nodes never crashed (e.g. the KGC in enrollment
	// availability studies, or traffic endpoints).
	Exclude []int
}

// Churn draws a crash/restart schedule from rng. The generator consumes a
// fixed number of rng draws per event regardless of outcomes, and every
// decision is made here — before the simulation starts — so the schedule is
// a pure function of (rng seed, config).
func Churn(rng *rand.Rand, cfg ChurnConfig) Schedule {
	if cfg.MeanDowntime <= 0 {
		cfg.MeanDowntime = 30 * time.Second
	}
	if cfg.RetainProb == 0 {
		cfg.RetainProb = 0.5
	}
	excluded := make(map[int]bool, len(cfg.Exclude))
	for _, n := range cfg.Exclude {
		excluded[n] = true
	}
	var victims []int
	for n := 0; n < cfg.Nodes; n++ {
		if !excluded[n] {
			victims = append(victims, n)
		}
	}
	var s Schedule
	if len(victims) == 0 || cfg.Events <= 0 || cfg.Duration <= 0 {
		return s
	}
	for i := 0; i < cfg.Events; i++ {
		node := victims[rng.Intn(len(victims))]
		at := time.Duration(rng.Int63n(int64(cfg.Duration)))
		// Uniform in [½·mean, 1½·mean].
		down := cfg.MeanDowntime/2 + time.Duration(rng.Int63n(int64(cfg.MeanDowntime)))
		retain := rng.Float64() < cfg.RetainProb
		s.Crashes = append(s.Crashes, Crash{
			Node:         node,
			At:           at,
			RestartAt:    at + down,
			RetainRoutes: retain,
		})
	}
	return s
}

// Node is the lifecycle surface Apply drives; aodv.Node implements it. The
// bool returns report whether a transition actually happened, so
// overlapping crash windows for the same node do not double-fire hooks.
type Node interface {
	Down() bool
	Up(retainRoutes bool) bool
}

// Medium is the radio surface Apply registers outage and loss windows on;
// radio.Medium implements it.
type Medium interface {
	AddLinkOutage(a, b int, from, to sim.Time)
	AddRegionOutage(center mobility.Point, radius float64, from, to sim.Time)
	AddLossWindow(from, to sim.Time, rate float64)
}

// Hooks observe lifecycle transitions as they are applied. OnCrash runs
// after the node goes down (the secure-routing layer uses it to discard the
// node's volatile key material); OnRestart runs after the node comes back
// up, after the node's own restart callback.
type Hooks struct {
	OnCrash   func(node int)
	OnRestart func(node int)
}

// Apply installs the schedule: radio windows are registered immediately and
// crash/restart transitions are scheduled on the simulator clock. nodes
// maps a node index to its lifecycle (entries may be nil for indices the
// schedule never touches — crashes against nil entries are ignored).
func Apply(s *sim.Simulator, sched Schedule, nodes []Node, medium Medium, hooks Hooks) {
	for _, w := range sched.Links {
		medium.AddLinkOutage(w.A, w.B, w.From, w.To)
	}
	for _, w := range sched.Regions {
		medium.AddRegionOutage(mobility.Point{X: w.X, Y: w.Y}, w.Radius, w.From, w.To)
	}
	for _, w := range sched.Loss {
		medium.AddLossWindow(w.From, w.To, w.Rate)
	}
	for _, c := range sched.Crashes {
		c := c
		if c.Node < 0 || c.Node >= len(nodes) || nodes[c.Node] == nil {
			continue
		}
		s.ScheduleAt(c.At, func() {
			if nodes[c.Node].Down() && hooks.OnCrash != nil {
				hooks.OnCrash(c.Node)
			}
		})
		if c.RestartAt > c.At {
			s.ScheduleAt(c.RestartAt, func() {
				if nodes[c.Node].Up(c.RetainRoutes) && hooks.OnRestart != nil {
					hooks.OnRestart(c.Node)
				}
			})
		}
	}
}
