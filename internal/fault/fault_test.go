package fault

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mccls/internal/mobility"
	"mccls/internal/sim"
)

func TestChurnDeterministicAndBounded(t *testing.T) {
	cfg := ChurnConfig{Events: 50, Nodes: 20, Duration: 900 * time.Second, Exclude: []int{0, 7}}
	a := Churn(rand.New(rand.NewSource(42)), cfg)
	b := Churn(rand.New(rand.NewSource(42)), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Churn(rand.New(rand.NewSource(43)), cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Crashes) != cfg.Events {
		t.Fatalf("got %d crashes, want %d", len(a.Crashes), cfg.Events)
	}
	for _, cr := range a.Crashes {
		if cr.Node < 0 || cr.Node >= cfg.Nodes {
			t.Fatalf("victim %d out of range", cr.Node)
		}
		if cr.Node == 0 || cr.Node == 7 {
			t.Fatalf("excluded node %d crashed", cr.Node)
		}
		if cr.At < 0 || cr.At >= cfg.Duration {
			t.Fatalf("crash at %v outside run", cr.At)
		}
		if cr.RestartAt <= cr.At {
			t.Fatalf("restart %v not after crash %v", cr.RestartAt, cr.At)
		}
	}
}

func TestChurnEmptyCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []ChurnConfig{
		{Events: 0, Nodes: 5, Duration: time.Minute},
		{Events: 3, Nodes: 0, Duration: time.Minute},
		{Events: 3, Nodes: 2, Duration: time.Minute, Exclude: []int{0, 1}},
		{Events: 3, Nodes: 5},
	} {
		if s := Churn(rng, cfg); !s.Empty() {
			t.Fatalf("config %+v produced non-empty schedule", cfg)
		}
	}
}

// recNode records lifecycle transitions, enforcing the Down/Up contract
// that repeated transitions in the same direction return false.
type recNode struct {
	down              bool
	crashes, restarts int
}

func (n *recNode) Down() bool {
	if n.down {
		return false
	}
	n.down = true
	n.crashes++
	return true
}

func (n *recNode) Up(bool) bool {
	if !n.down {
		return false
	}
	n.down = false
	n.restarts++
	return true
}

type recMedium struct{ links, regions, losses int }

func (m *recMedium) AddLinkOutage(a, b int, from, to sim.Time)                      { m.links++ }
func (m *recMedium) AddRegionOutage(_ mobility.Point, _ float64, from, to sim.Time) { m.regions++ }
func (m *recMedium) AddLossWindow(from, to sim.Time, rate float64)                  { m.losses++ }

func TestApplyLifecycleAndHooks(t *testing.T) {
	s := sim.New(1)
	nodes := []*recNode{{}, {}, {}}
	fnodes := make([]Node, len(nodes))
	for i, n := range nodes {
		fnodes[i] = n
	}
	med := &recMedium{}
	var crashed, restarted []int
	sched := Schedule{
		Crashes: []Crash{
			{Node: 1, At: 1 * time.Second, RestartAt: 5 * time.Second},
			// Overlapping window for the same node: the Down is a no-op,
			// so the crash hook must not fire twice; its restart lands
			// while the node is already up and must also be a no-op.
			{Node: 1, At: 2 * time.Second, RestartAt: 3 * time.Second},
			// Permanent crash (no restart).
			{Node: 2, At: 4 * time.Second},
			// Out-of-range victim: ignored.
			{Node: 99, At: 1 * time.Second},
		},
		Links:   []LinkOutage{{A: 0, B: 1, From: 0, To: time.Second}},
		Regions: []RegionOutage{{X: 1, Y: 2, Radius: 100, From: 0, To: time.Second}},
		Loss:    []LossWindow{{From: 0, To: time.Second, Rate: 0.5}},
	}
	Apply(s, sched, fnodes, med, Hooks{
		OnCrash:   func(n int) { crashed = append(crashed, n) },
		OnRestart: func(n int) { restarted = append(restarted, n) },
	})
	s.Run(10 * time.Second)

	if med.links != 1 || med.regions != 1 || med.losses != 1 {
		t.Fatalf("windows registered: links=%d regions=%d losses=%d", med.links, med.regions, med.losses)
	}
	if nodes[1].crashes != 1 || nodes[1].restarts != 1 {
		t.Fatalf("node 1 transitions: crashes=%d restarts=%d, want 1/1", nodes[1].crashes, nodes[1].restarts)
	}
	if nodes[1].down {
		t.Fatal("node 1 should have restarted")
	}
	if !nodes[2].down || nodes[2].crashes != 1 {
		t.Fatal("node 2 should be permanently down")
	}
	if nodes[0].crashes != 0 {
		t.Fatal("node 0 should be untouched")
	}
	if !reflect.DeepEqual(crashed, []int{1, 2}) {
		t.Fatalf("crash hooks fired for %v, want [1 2]", crashed)
	}
	if !reflect.DeepEqual(restarted, []int{1}) {
		t.Fatalf("restart hooks fired for %v, want [1]", restarted)
	}
}
