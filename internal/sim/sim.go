// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a seeded random source. It is the substrate the
// MANET simulator (radio, AODV, traffic) runs on, standing in for QualNet's
// kernel. Runs with the same seed and configuration are bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"
)

// ErrEventBudget is the sticky error set when a simulation exceeds its
// configured MaxEvents budget (see SetMaxEvents).
var ErrEventBudget = errors.New("sim: event budget exhausted")

// interruptStride is how many events run between interrupt-hook polls; the
// hook (typically a context check) stays off the per-event hot path.
const interruptStride = 1024

// Time is virtual time elapsed since the start of the simulation.
type Time = time.Duration

// Action is a pre-allocated event callback. Scheduling one avoids the
// closure allocation Schedule pays per call: an interface holding a pooled
// pointer costs nothing to enqueue, which is what lets the radio medium's
// frame-delivery hot path run allocation-free.
type Action interface{ Fire() }

// event is a scheduled callback: either a closure (fn) or a pre-allocated
// Action (run), never both.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among simultaneous events
	fn  func()
	run Action
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue. It is not safe for
// concurrent use: a simulation is a single-threaded deterministic program.
type Simulator struct {
	now       Time
	seq       uint64
	queue     eventHeap
	rng       *rand.Rand
	processed uint64
	maxEvents uint64
	interrupt func() error
	err       error

	// free is the event free list: executed events are recycled here so the
	// steady-state schedule/run cycle allocates nothing. eventAllocs counts
	// the events that had to be freshly allocated (pool misses); the pool
	// high-water mark is therefore eventAllocs, reached when every event
	// ever allocated is queued at once.
	free        []*event
	eventAllocs uint64
	peakQueue   int
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been executed.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// PeakQueue reports the high-water mark of the event queue, the natural
// sizing figure for the pooled event store.
func (s *Simulator) PeakQueue() int { return s.peakQueue }

// EventAllocs reports how many event records were freshly allocated (pool
// misses). Because executed events recycle through a free list, this is the
// total live-event high-water mark rather than the event count: a run that
// processes millions of events typically allocates only a few hundred.
func (s *Simulator) EventAllocs() uint64 { return s.eventAllocs }

// SetMaxEvents bounds the total number of events the simulator will execute
// (0 = unlimited). When the budget is exhausted Run/RunAll stop and Err
// returns ErrEventBudget: a runaway event chain fails its run instead of
// hanging the caller.
func (s *Simulator) SetMaxEvents(n uint64) { s.maxEvents = n }

// SetInterrupt installs a hook polled every interruptStride events; a
// non-nil return stops the run and becomes Err. Wire a context in with
//
//	s.SetInterrupt(ctx.Err)
//
// so a cancelled or timed-out context aborts the simulation promptly.
func (s *Simulator) SetInterrupt(f func() error) { s.interrupt = f }

// Err reports why the simulation stopped early (budget exhaustion or an
// interrupt), or nil after a clean run. The error is sticky: once set,
// further Run/RunAll calls are no-ops.
func (s *Simulator) Err() error { return s.err }

// stopped checks the budget and interrupt hook before executing the next
// event, recording the first failure in s.err.
func (s *Simulator) stopped() bool {
	if s.err != nil {
		return true
	}
	if s.maxEvents > 0 && s.processed >= s.maxEvents {
		s.err = ErrEventBudget
		return true
	}
	if s.interrupt != nil && s.processed%interruptStride == 0 {
		if err := s.interrupt(); err != nil {
			s.err = err
			return true
		}
	}
	return false
}

// Schedule enqueues fn to run after delay d (clamped to ≥ 0). Events
// scheduled for the same instant run in scheduling order.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleAt(s.now+d, fn)
}

// ScheduleAt enqueues fn to run at absolute virtual time t. Times in the
// past are clamped to now.
func (s *Simulator) ScheduleAt(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
		s.eventAllocs++
	}
	e.at, e.seq, e.fn = t, s.seq, fn
	heap.Push(&s.queue, e)
	if len(s.queue) > s.peakQueue {
		s.peakQueue = len(s.queue)
	}
}

// ScheduleActionAt enqueues a pre-allocated Action to fire at absolute
// virtual time t (clamped to now). Unlike ScheduleAt it performs no
// allocation beyond the pooled event record, so callers that recycle their
// Action values keep the schedule/fire cycle allocation-free.
func (s *Simulator) ScheduleActionAt(t Time, a Action) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
		s.eventAllocs++
	}
	e.at, e.seq, e.run = t, s.seq, a
	heap.Push(&s.queue, e)
	if len(s.queue) > s.peakQueue {
		s.peakQueue = len(s.queue)
	}
}

// ScheduleAction enqueues a pre-allocated Action to fire after delay d
// (clamped to ≥ 0).
func (s *Simulator) ScheduleAction(d time.Duration, a Action) {
	if d < 0 {
		d = 0
	}
	s.ScheduleActionAt(s.now+d, a)
}

// exec runs an event's callback, whichever form it carries.
func (e *event) exec() {
	if e.run != nil {
		e.run.Fire()
		return
	}
	e.fn()
}

// release returns an executed event to the free list, dropping its callback
// references so the captured state can be collected.
func (s *Simulator) release(e *event) {
	e.fn, e.run = nil, nil
	s.free = append(s.free, e)
}

// Run executes events in timestamp order until the queue drains or the next
// event lies beyond until; the clock finishes at until (or at the last
// event, if later events were scheduled exactly at until). Run stops early
// when the event budget is exhausted or the interrupt hook fires; check Err
// to distinguish a clean finish.
func (s *Simulator) Run(until Time) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > until {
			break
		}
		if s.stopped() {
			return
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.processed++
		next.exec()
		s.release(next)
	}
	if s.err == nil && s.now < until {
		s.now = until
	}
}

// RunAll executes every queued event, including events that newly-run
// events schedule. It is intended for tests with naturally finite event
// chains; a self-rescheduling event makes it run forever unless an event
// budget is set, in which case it stops with Err() == ErrEventBudget.
func (s *Simulator) RunAll() {
	for len(s.queue) > 0 {
		if s.stopped() {
			return
		}
		next := heap.Pop(&s.queue).(*event)
		s.now = next.at
		s.processed++
		next.exec()
		s.release(next)
	}
}
