// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a seeded random source. It is the substrate the
// MANET simulator (radio, AODV, traffic) runs on, standing in for QualNet's
// kernel. Runs with the same seed and configuration are bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time elapsed since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among simultaneous events
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue. It is not safe for
// concurrent use: a simulation is a single-threaded deterministic program.
type Simulator struct {
	now       Time
	seq       uint64
	queue     eventHeap
	rng       *rand.Rand
	processed uint64
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been executed.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues fn to run after delay d (clamped to ≥ 0). Events
// scheduled for the same instant run in scheduling order.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleAt(s.now+d, fn)
}

// ScheduleAt enqueues fn to run at absolute virtual time t. Times in the
// past are clamped to now.
func (s *Simulator) ScheduleAt(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// Run executes events in timestamp order until the queue drains or the next
// event lies beyond until; the clock finishes at until (or at the last
// event, if later events were scheduled exactly at until).
func (s *Simulator) Run(until Time) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.processed++
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes every queued event, including events that newly-run
// events schedule. It is intended for tests with naturally finite event
// chains; a self-rescheduling event makes it run forever.
func (s *Simulator) RunAll() {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*event)
		s.now = next.at
		s.processed++
		next.fn()
	}
}
