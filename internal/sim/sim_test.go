package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []Time
	s.Schedule(10*time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(5*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(time.Second)
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("nested scheduling broken: %v", fired)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(2*time.Second, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Pending() != 1 {
		t.Fatal("pending event lost")
	}
	s.Run(3 * time.Second)
	if !ran {
		t.Fatal("event within extended horizon not executed")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.Schedule(10*time.Millisecond, func() {
		s.Schedule(-5*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Fatalf("negative delay ran at %v", s.Now())
			}
		})
	})
	s.RunAll()
	if s.Processed() != 2 {
		t.Fatalf("processed %d events, want 2", s.Processed())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var vals []int64
		for i := 0; i < 5; i++ {
			d := time.Duration(s.Rand().Intn(100)) * time.Millisecond
			s.Schedule(d, func() { vals = append(vals, int64(s.Now())) })
		}
		s.RunAll()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}
