package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []Time
	s.Schedule(10*time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(5*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(time.Second)
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("nested scheduling broken: %v", fired)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(2*time.Second, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Pending() != 1 {
		t.Fatal("pending event lost")
	}
	s.Run(3 * time.Second)
	if !ran {
		t.Fatal("event within extended horizon not executed")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.Schedule(10*time.Millisecond, func() {
		s.Schedule(-5*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Fatalf("negative delay ran at %v", s.Now())
			}
		})
	})
	s.RunAll()
	if s.Processed() != 2 {
		t.Fatalf("processed %d events, want 2", s.Processed())
	}
}

func TestMaxEventsBudget(t *testing.T) {
	s := New(1)
	s.SetMaxEvents(10)
	// A self-rescheduling chain that would run forever under RunAll.
	var fired int
	var tick func()
	tick = func() {
		fired++
		s.Schedule(time.Millisecond, tick)
	}
	s.Schedule(0, tick)
	s.RunAll()
	if s.Err() != ErrEventBudget {
		t.Fatalf("err = %v, want ErrEventBudget", s.Err())
	}
	if fired != 10 {
		t.Fatalf("executed %d events, want exactly the budget of 10", fired)
	}
	// The error is sticky: further runs are no-ops.
	s.Run(time.Hour)
	if fired != 10 {
		t.Fatal("run continued past an exhausted budget")
	}
}

func TestMaxEventsCleanRunLeavesNoError(t *testing.T) {
	s := New(1)
	s.SetMaxEvents(100)
	ran := false
	s.Schedule(time.Millisecond, func() { ran = true })
	s.Run(time.Second)
	if !ran || s.Err() != nil {
		t.Fatalf("budgeted clean run broken: ran=%v err=%v", ran, s.Err())
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestInterruptStopsRun(t *testing.T) {
	stop := errors.New("stop requested")
	s := New(1)
	s.SetInterrupt(func() error { return stop })
	ran := false
	s.Schedule(time.Millisecond, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Fatal("event executed despite interrupt")
	}
	if s.Err() != stop {
		t.Fatalf("err = %v, want the interrupt error", s.Err())
	}
}

func TestInterruptPolledMidRun(t *testing.T) {
	stop := errors.New("stop")
	s := New(1)
	// Pass the poll at event 0, fail the one after the first stride: the
	// run must stop exactly at the stride boundary.
	s.SetInterrupt(func() error {
		if s.Processed() >= interruptStride {
			return stop
		}
		return nil
	})
	for i := 0; i < 3*interruptStride; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	s.RunAll()
	if s.Err() != stop {
		t.Fatalf("err = %v, want stop", s.Err())
	}
	if got := s.Processed(); got != interruptStride {
		t.Fatalf("processed %d events, want exactly one stride (%d)", got, interruptStride)
	}
}

func TestEventPoolRecyclesAndTracksPeak(t *testing.T) {
	s := New(1)
	// A self-rescheduling chain: after the first event, every schedule can
	// reuse the record the previous event released.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 1000 {
			s.Schedule(time.Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.RunAll()
	if n != 1000 {
		t.Fatalf("chain ran %d times, want 1000", n)
	}
	// Two records, not one: an event schedules its successor before it is
	// itself released, so the chain ping-pongs between two pooled records.
	if got := s.EventAllocs(); got != 2 {
		t.Fatalf("chain of 1000 events allocated %d records, want 2 (pooled)", got)
	}
	if s.PeakQueue() != 1 {
		t.Fatalf("peak queue = %d, want 1", s.PeakQueue())
	}
}

func TestPeakQueueHighWaterMark(t *testing.T) {
	s := New(1)
	for i := 0; i < 17; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if s.PeakQueue() != 17 {
		t.Fatalf("peak queue = %d, want 17", s.PeakQueue())
	}
	s.RunAll()
	if s.PeakQueue() != 17 {
		t.Fatalf("peak must persist after the run, got %d", s.PeakQueue())
	}
	if s.EventAllocs() != 17 {
		t.Fatalf("allocs = %d, want 17 (all queued at once)", s.EventAllocs())
	}
	// A second burst of the same size reuses every record.
	for i := 0; i < 17; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.RunAll()
	if s.EventAllocs() != 17 {
		t.Fatalf("allocs grew to %d on a reusable burst", s.EventAllocs())
	}
}

// TestScheduleSteadyStateZeroAlloc pins the zero-allocation guarantee of the
// schedule/run cycle once the pool is warm.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	s.Schedule(0, fn)
	s.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		s.Schedule(0, fn)
		s.RunAll()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/run allocates %.1f/op, want 0", allocs)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var vals []int64
		for i := 0; i < 5; i++ {
			d := time.Duration(s.Rand().Intn(100)) * time.Millisecond
			s.Schedule(d, func() { vals = append(vals, int64(s.Now())) })
		}
		s.RunAll()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}
