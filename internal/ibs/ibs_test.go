package ibs

import (
	"errors"
	"math/rand"
	"testing"

	"mccls/internal/bn254"
)

func testSetup(t *testing.T) (*PKG, *PrivateKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pkg, err := Setup(rng)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, pkg.Extract("alice")
}

func TestSignVerify(t *testing.T) {
	pkg, sk := testSetup(t)
	rng := rand.New(rand.NewSource(2))
	msg := []byte("identity-based hello")
	sig, err := Sign(sk, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pkg.Params(), "alice", msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := Verify(pkg.Params(), "alice", []byte("tampered"), sig); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("tampered message accepted")
	}
	if err := Verify(pkg.Params(), "bob", msg, sig); err == nil {
		t.Fatal("wrong identity accepted")
	}
	bad := &Signature{U: sig.U, V: new(bn254.G2).Add(sig.V, bn254.G2Generator())}
	if err := Verify(pkg.Params(), "alice", msg, bad); err == nil {
		t.Fatal("tampered V accepted")
	}
	if err := Verify(pkg.Params(), "alice", msg, nil); err == nil {
		t.Fatal("nil signature accepted")
	}
}

func TestKeyEscrow(t *testing.T) {
	// The IBS property McCLS removes: the PKG can sign as any user.
	pkg, _ := testSetup(t)
	rng := rand.New(rand.NewSource(3))
	impersonated := pkg.Extract("victim") // PKG holds the full key
	msg := []byte("I never signed this")
	sig, err := Sign(impersonated, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pkg.Params(), "victim", msg, sig); err != nil {
		t.Fatal("escrow impersonation should verify — that is the flaw")
	}
}

func TestBatchVerify(t *testing.T) {
	pkg, sk := testSetup(t)
	rng := rand.New(rand.NewSource(4))
	const n = 6
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 0x55}
		var err error
		if sigs[i], err = Sign(sk, msgs[i], rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := BatchVerify(pkg.Params(), "alice", msgs, sigs); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// Tamper one message.
	bad := append([][]byte{}, msgs...)
	bad[3] = []byte("junk")
	if err := BatchVerify(pkg.Params(), "alice", bad, sigs); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("tampered batch accepted")
	}
	if err := BatchVerify(pkg.Params(), "alice", msgs[:2], sigs); !errors.Is(err, ErrBatchMismatch) {
		t.Fatal("length mismatch not detected")
	}
	if err := BatchVerify(pkg.Params(), "alice", nil, nil); err != nil {
		t.Fatal("empty batch should verify")
	}
}

// TestBatchPairingCount pins the headline batch property: two pairings for
// the whole batch.
func TestBatchPairingCount(t *testing.T) {
	pkg, sk := testSetup(t)
	rng := rand.New(rand.NewSource(5))
	const n = 5
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
		var err error
		if sigs[i], err = Sign(sk, msgs[i], rng); err != nil {
			t.Fatal(err)
		}
	}
	before := bn254.ReadOpCounts()
	if err := BatchVerify(pkg.Params(), "alice", msgs, sigs); err != nil {
		t.Fatal(err)
	}
	delta := bn254.ReadOpCounts().Sub(before)
	if delta.Pairings != 2 {
		t.Fatalf("batch of %d used %d pairings, want 2", n, delta.Pairings)
	}
}
