// Package ibs implements the Yoon–Cheon–Kim identity-based signature
// scheme with batch verification (ICISC 2004) — the scheme the paper says
// McCLS is "motivated by … being an adaptation of the former to the
// certificateless setting" (§4). Having the ancestor on the same BN254
// substrate makes the adaptation concrete: McCLS adds the user secret x
// (splitting the key between KGC and user, killing escrow) while keeping
// the batchable single-pairing verification structure.
//
// Type-3 translation, matching internal/core: identity material lives in
// G2, the ⟨P⟩ side in G1.
//
//	Setup:   s ← Zr*, P_pub = s·P
//	Extract: Q_ID = H1(ID) ∈ G2, D_ID = s·Q_ID  (the FULL private key —
//	         the escrow McCLS removes)
//	Sign:    r ← Zr*, U = r·Q_ID, h = H2(M, U), V = (r + h)·D_ID
//	Verify:  e(P, V) = e(P_pub, U + h·Q_ID)
//	Batch:   e(P, Σ Vᵢ) = e(P_pub, Σ(Uᵢ + hᵢ·Q_ID))  (same signer)
package ibs

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"mccls/internal/batch"
	"mccls/internal/bn254"
)

const (
	domainH1 = "yck/H1"
	domainH2 = "yck/H2"
)

// Errors returned by verification.
var (
	ErrVerifyFailed  = errors.New("ibs: signature verification failed")
	ErrBatchMismatch = errors.New("ibs: batch lengths do not match")
)

// Params are the public system parameters.
type Params struct {
	Ppub *bn254.G1
}

// PKG is the Private Key Generator — unlike a certificateless KGC it holds
// every user's complete signing key.
type PKG struct {
	params *Params
	master *big.Int
}

// Setup draws the master key. A nil reader uses crypto/rand.
func Setup(rng io.Reader) (*PKG, error) {
	s, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("ibs: setup: %w", err)
	}
	return &PKG{
		params: &Params{Ppub: new(bn254.G1).ScalarBaseMult(s)},
		master: s,
	}, nil
}

// Params returns the public parameters.
func (p *PKG) Params() *Params { return p.params }

// PrivateKey is a user's full ID-based signing key.
type PrivateKey struct {
	id string
	q  *bn254.G2 // Q_ID
	d  *bn254.G2 // D_ID = s·Q_ID
}

// Extract derives the complete private key for an identity. This is the
// key-escrow step: the PKG can impersonate any user, which is exactly the
// problem certificateless McCLS exists to remove.
func (p *PKG) Extract(id string) *PrivateKey {
	q := bn254.HashToG2(domainH1, []byte(id))
	return &PrivateKey{id: id, q: q, d: new(bn254.G2).ScalarMult(q, p.master)}
}

// ID returns the identity the key is bound to.
func (sk *PrivateKey) ID() string { return sk.id }

// Signature is a YCK signature (U, V) ∈ G2².
type Signature struct {
	U, V *bn254.G2
}

func hashH2(msg []byte, u *bn254.G2) *big.Int {
	return bn254.HashToScalar(domainH2, append(u.Marshal(), msg...))
}

// Sign produces a signature over msg. No pairings; two G2 scalar
// multiplications. A nil reader uses crypto/rand.
func Sign(sk *PrivateKey, msg []byte, rng io.Reader) (*Signature, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("ibs: sign: %w", err)
	}
	u := new(bn254.G2).ScalarMult(sk.q, r)
	h := hashH2(msg, u)
	k := new(big.Int).Add(r, h)
	return &Signature{U: u, V: new(bn254.G2).ScalarMult(sk.d, k)}, nil
}

// Verify checks e(P, V) = e(P_pub, U + h·Q_ID) as one two-pairing product.
func Verify(params *Params, id string, msg []byte, sig *Signature) error {
	if sig == nil || sig.U == nil || sig.V == nil {
		return ErrVerifyFailed
	}
	q := bn254.HashToG2(domainH1, []byte(id))
	h := hashH2(msg, sig.U)
	rhs := new(bn254.G2).ScalarMult(q, h)
	rhs.Add(rhs, sig.U)
	negP := new(bn254.G1).Neg(bn254.G1Generator())
	if !bn254.PairingCheck(
		[]*bn254.G1{negP, params.Ppub},
		[]*bn254.G2{sig.V, rhs},
	) {
		return ErrVerifyFailed
	}
	return nil
}

// BatchVerify checks n same-signer signatures with the scheme's signature
// aggregation: two pairings per chunk regardless of chunk width (one chunk
// for batches up to the engine's default width). It routes through the
// shared internal/batch engine, so a rejected batch bisects down to the
// offending signatures and reports them via *batch.Error rather than
// forcing the caller to re-verify one by one.
func BatchVerify(params *Params, id string, msgs [][]byte, sigs []*Signature) error {
	return BatchVerifyOpts(params, id, msgs, sigs, batch.Options{})
}

// BatchVerifyOpts is BatchVerify with explicit engine options (worker pool
// bound and chunk width).
func BatchVerifyOpts(params *Params, id string, msgs [][]byte, sigs []*Signature, opts batch.Options) error {
	if len(msgs) != len(sigs) {
		return ErrBatchMismatch
	}
	n := len(sigs)
	if n == 0 {
		return nil
	}
	for _, sig := range sigs {
		if sig == nil || sig.U == nil || sig.V == nil {
			return ErrVerifyFailed
		}
	}
	q := bn254.HashToG2(domainH1, []byte(id))
	hs := make([]*big.Int, n)
	for i := range hs {
		hs[i] = hashH2(msgs[i], sigs[i].U)
	}
	negP := new(bn254.G1).Neg(bn254.G1Generator())
	check := func(idxs []int) bool {
		vSum := bn254.G2Infinity()
		rhs := bn254.G2Infinity()
		hSum := new(big.Int)
		for _, i := range idxs {
			vSum.Add(vSum, sigs[i].V)
			rhs.Add(rhs, sigs[i].U)
			hSum.Add(hSum, hs[i])
		}
		rhs.Add(rhs, new(bn254.G2).ScalarMult(q, hSum))
		return bn254.PairingCheck(
			[]*bn254.G1{negP, params.Ppub},
			[]*bn254.G2{vSum, rhs},
		)
	}
	bad, err := batch.Reject(n, opts, check, nil)
	if err != nil {
		return err
	}
	if len(bad) > 0 {
		return &batch.Error{Bad: bad, Cause: ErrVerifyFailed}
	}
	return nil
}
