// Package threshold shards the KGC master secret with Shamir secret
// sharing over the BN254 scalar field, so partial-private-key issuance
// needs the cooperation of any t of n share-holders and no single server
// can forge partial keys (the dominant practical attack on certificateless
// deployments is KGC compromise).
//
// The construction is the standard one: Split draws a uniformly random
// polynomial f of degree t−1 with f(0) = s over Z_r and hands share-holder
// j the evaluation s_j = f(j). Because Extract-Partial-Private-Key is the
// linear map s ↦ s·Q_ID, each holder can apply its share directly in the
// group: D_j = s_j·Q_ID, and any t such key shares Lagrange-combine to
//
//	D_ID = Σ_j λ_j·D_j = (Σ_j λ_j·s_j)·Q_ID = s·Q_ID,
//
// byte-identical to single-master issuance — which is kept in-tree as the
// differential oracle and pinned by FuzzThresholdVsSingleMaster. The master
// secret is never reconstructed anywhere in the issuance path; Reconstruct
// exists for offline recovery and for the oracle side of the fuzzer.
package threshold

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// MaxShares bounds n. Share indices are 1-based small integers; the bound
// keeps Lagrange denominators trivially invertible and configs sane.
const MaxShares = 255

// Share is one Shamir share s_j = f(j) of the master secret. Index is the
// polynomial evaluation point j ∈ [1, n]; zero is never a valid index (it
// would be the secret itself). Epoch counts proactive refreshes (see
// refresh.go): Split mints epoch-0 shares, and every Refresh re-randomizes
// the polynomial — without changing f(0) — and advances the epoch by one.
// Shares from different epochs lie on different polynomials and must never
// be mixed in one reconstruction or combination.
type Share struct {
	Index uint8
	Epoch uint32
	Value *big.Int
}

// shareMarshalledSize is 1 index byte, a 4-byte big-endian epoch and a
// 32-byte big-endian scalar.
const shareMarshalledSize = 1 + 4 + 32

// Marshal encodes the share as Index‖Epoch‖Value (big-endian).
func (s *Share) Marshal() []byte {
	out := make([]byte, shareMarshalledSize)
	out[0] = s.Index
	binary.BigEndian.PutUint32(out[1:5], s.Epoch)
	s.Value.FillBytes(out[5:])
	return out
}

// UnmarshalShare decodes a share produced by Marshal.
func UnmarshalShare(data []byte) (*Share, error) {
	if len(data) != shareMarshalledSize {
		return nil, fmt.Errorf("threshold: share wants %d bytes, got %d", shareMarshalledSize, len(data))
	}
	s := &Share{
		Index: data[0],
		Epoch: binary.BigEndian.Uint32(data[1:5]),
		Value: new(big.Int).SetBytes(data[5:]),
	}
	if s.Index == 0 {
		return nil, fmt.Errorf("threshold: share index zero")
	}
	if s.Value.Sign() == 0 || s.Value.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: share value out of range")
	}
	return s, nil
}

// Split shards secret into n shares with reconstruction threshold t
// (1 ≤ t ≤ n ≤ MaxShares). Passing a nil reader uses crypto/rand via
// bn254.RandomScalar. The coefficients are drawn from Z_r*, so for t = 1
// every share equals the secret (a degree-0 polynomial), matching the
// single-master deployment exactly.
func Split(secret *big.Int, t, n int, rng io.Reader) ([]*Share, error) {
	if t < 1 || n < t || n > MaxShares {
		return nil, fmt.Errorf("threshold: invalid t-of-n %d-of-%d", t, n)
	}
	if secret == nil || secret.Sign() <= 0 || secret.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: secret out of range")
	}
	// coeffs[0] = secret; coeffs[1..t-1] random.
	coeffs := make([]*big.Int, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		c, err := bn254.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("threshold: split: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]*Share, n)
	for j := 1; j <= n; j++ {
		// Horner evaluation of f(j) mod r.
		x := big.NewInt(int64(j))
		v := new(big.Int).Set(coeffs[t-1])
		for i := t - 2; i >= 0; i-- {
			v.Mul(v, x)
			v.Add(v, coeffs[i])
			v.Mod(v, bn254.Order)
		}
		shares[j-1] = &Share{Index: uint8(j), Value: v}
	}
	return shares, nil
}

// lagrangeAtZero returns the Lagrange interpolation coefficients
// λ_j = Π_{m≠j} x_m/(x_m − x_j) mod r evaluated at zero, one per input
// index. Indices must be nonzero and pairwise distinct.
func lagrangeAtZero(indices []uint8) ([]*big.Int, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("threshold: no shares")
	}
	seen := map[uint8]bool{}
	for _, j := range indices {
		if j == 0 {
			return nil, fmt.Errorf("threshold: share index zero")
		}
		if seen[j] {
			return nil, fmt.Errorf("threshold: duplicate share index %d", j)
		}
		seen[j] = true
	}
	out := make([]*big.Int, len(indices))
	num := new(big.Int)
	den := new(big.Int)
	diff := new(big.Int)
	for i, j := range indices {
		num.SetInt64(1)
		den.SetInt64(1)
		for _, m := range indices {
			if m == j {
				continue
			}
			num.Mul(num, big.NewInt(int64(m)))
			num.Mod(num, bn254.Order)
			diff.SetInt64(int64(m) - int64(j))
			den.Mul(den, diff)
			den.Mod(den, bn254.Order)
		}
		li := new(big.Int).ModInverse(den, bn254.Order)
		li.Mul(li, num)
		li.Mod(li, bn254.Order)
		out[i] = li
	}
	return out, nil
}

// Reconstruct recovers f(0) from the given shares by Lagrange interpolation
// at zero. It needs exactly the shares it is given: pass t genuine shares
// of a t-threshold split and the result is the secret; pass fewer and the
// result is an unrelated field element (which is the point — see
// FuzzThresholdVsSingleMaster). For key issuance prefer Combine, which
// never materializes the secret.
func Reconstruct(shares []*Share) (*big.Int, error) {
	indices := make([]uint8, len(shares))
	for i, s := range shares {
		if s.Epoch != shares[0].Epoch {
			return nil, fmt.Errorf("threshold: %w: share %d is epoch %d, share %d is epoch %d",
				ErrMixedEpochs, s.Index, s.Epoch, shares[0].Index, shares[0].Epoch)
		}
		indices[i] = s.Index
	}
	lambda, err := lagrangeAtZero(indices)
	if err != nil {
		return nil, err
	}
	acc := new(big.Int)
	term := new(big.Int)
	for i, s := range shares {
		term.Mul(lambda[i], s.Value)
		acc.Add(acc, term)
		acc.Mod(acc, bn254.Order)
	}
	return acc, nil
}
