package threshold

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// Proactive share refresh (Herzberg-style, dealer-assisted): a mobile
// adversary that compromises share-holders one at a time can eventually
// collect t shares — unless the shares it stole stop being useful. A
// refresh draws a fresh polynomial g of degree t−1 with the *zero*
// constant term g(0) = 0 and hands holder j the delta δ_j = g(j). The
// holder's new share is
//
//	s_j' = s_j + δ_j = f(j) + g(j) = (f+g)(j),
//
// a share of the same master secret (f+g)(0) = f(0) = s on a polynomial
// whose other coefficients are brand new. Shares stolen before a refresh
// and shares stolen after it lie on unrelated polynomials, so the
// adversary's collection window shrinks to one epoch. The master secret
// never changes and — as everywhere in this package — never materializes:
// the deltas are generated from randomness alone, without touching s.
//
// Epoch bookkeeping makes the "never mix polynomials" rule mechanical:
// every share and every issued key share carries the epoch it was minted
// under, Combine and Reconstruct reject mixed-epoch sets, and a refresh is
// only accepted if it advances a share by exactly one epoch.

// ErrMixedEpochs marks an attempt to combine or reconstruct shares minted
// under different refresh epochs (they lie on different polynomials; the
// result would be an unrelated field/group element).
var ErrMixedEpochs = errors.New("mixed share epochs")

// Delta is one holder's refresh increment δ_j = g(j) for the refresh that
// advances its share to Epoch. A zero Value is legal (always, with
// probability 1/r; deterministically for t = 1, where g must be the zero
// polynomial).
type Delta struct {
	Index uint8
	Epoch uint32
	Value *big.Int
}

// deltaMarshalledSize is 1 index byte, 4 epoch bytes and a 32-byte scalar.
const deltaMarshalledSize = 1 + 4 + 32

// Marshal encodes the delta as Index‖Epoch‖Value (big-endian).
func (d *Delta) Marshal() []byte {
	out := make([]byte, deltaMarshalledSize)
	out[0] = d.Index
	binary.BigEndian.PutUint32(out[1:5], d.Epoch)
	d.Value.FillBytes(out[5:])
	return out
}

// UnmarshalDelta decodes a delta produced by Marshal.
func UnmarshalDelta(data []byte) (*Delta, error) {
	if len(data) != deltaMarshalledSize {
		return nil, fmt.Errorf("threshold: delta wants %d bytes, got %d", deltaMarshalledSize, len(data))
	}
	d := &Delta{
		Index: data[0],
		Epoch: binary.BigEndian.Uint32(data[1:5]),
		Value: new(big.Int).SetBytes(data[5:]),
	}
	if d.Index == 0 {
		return nil, fmt.Errorf("threshold: delta index zero")
	}
	if d.Epoch == 0 {
		return nil, fmt.Errorf("threshold: delta epoch zero (epoch 0 is the initial split)")
	}
	if d.Value.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: delta value out of range")
	}
	return d, nil
}

// RefreshDeltas draws one refresh: a polynomial g of degree t−1 with
// g(0) = 0 evaluated at every holder index 1..n. All n deltas come from the
// same g — a refresh is all-or-nothing across the holder set; applying a
// partial set leaves the holders on different polynomials, which the epoch
// bookkeeping then surfaces as ErrMixedEpochs instead of silent corruption.
// toEpoch is the epoch the shares advance TO (current epoch + 1, ≥ 1).
// A nil rng uses crypto/rand.
func RefreshDeltas(t, n int, toEpoch uint32, rng io.Reader) ([]*Delta, error) {
	if t < 1 || n < t || n > MaxShares {
		return nil, fmt.Errorf("threshold: invalid t-of-n %d-of-%d", t, n)
	}
	if toEpoch == 0 {
		return nil, fmt.Errorf("threshold: refresh cannot target epoch 0")
	}
	// g(x) = c_1·x + … + c_{t−1}·x^{t−1}; for t = 1 the polynomial is
	// identically zero (a degree-0 polynomial through zero has no freedom),
	// so the refresh is numerically a no-op and only the epoch advances.
	coeffs := make([]*big.Int, t)
	coeffs[0] = new(big.Int)
	for i := 1; i < t; i++ {
		c, err := bn254.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("threshold: refresh: %w", err)
		}
		coeffs[i] = c
	}
	deltas := make([]*Delta, n)
	for j := 1; j <= n; j++ {
		x := big.NewInt(int64(j))
		v := new(big.Int).Set(coeffs[t-1])
		for i := t - 2; i >= 0; i-- {
			v.Mul(v, x)
			v.Add(v, coeffs[i])
			v.Mod(v, bn254.Order)
		}
		deltas[j-1] = &Delta{Index: uint8(j), Epoch: toEpoch, Value: v}
	}
	return deltas, nil
}

// Refresh applies a delta to a share, returning the next-epoch share
// s_j' = s_j + δ_j. The delta must carry the share's index and advance it
// by exactly one epoch; skipping an epoch would mean a missed refresh and a
// share on the wrong polynomial.
func (s *Share) Refresh(d *Delta) (*Share, error) {
	if d.Index != s.Index {
		return nil, fmt.Errorf("threshold: delta for index %d applied to share %d", d.Index, s.Index)
	}
	if d.Epoch != s.Epoch+1 {
		return nil, fmt.Errorf("threshold: delta advances to epoch %d, share is at epoch %d", d.Epoch, s.Epoch)
	}
	if d.Value == nil || d.Value.Sign() < 0 || d.Value.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: delta value out of range")
	}
	v := new(big.Int).Add(s.Value, d.Value)
	v.Mod(v, bn254.Order)
	if v.Sign() == 0 {
		// (f+g)(j) ≡ 0 happens with probability 1/r ≈ 2^−254; a zero share
		// would be rejected everywhere downstream, so surface it as a
		// redraw request rather than minting an unusable share.
		return nil, fmt.Errorf("threshold: refresh produced a zero share; redraw the refresh polynomial")
	}
	return &Share{Index: s.Index, Epoch: d.Epoch, Value: v}, nil
}
