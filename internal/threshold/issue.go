package threshold

import (
	"fmt"

	"mccls/internal/bn254"
	"mccls/internal/core"
)

// Signer is one share-holder: it issues partial-key *shares* D_j = s_j·Q_ID
// against its Shamir share and never sees the master secret or the other
// shares. This is the object a kgcd signer replica wraps.
type Signer struct {
	params *core.Params
	share  *Share
}

// NewSigner binds a share to the public parameters it was split under.
func NewSigner(params *core.Params, share *Share) (*Signer, error) {
	if share == nil || share.Index == 0 {
		return nil, fmt.Errorf("threshold: signer needs a share with nonzero index")
	}
	if share.Value == nil || share.Value.Sign() <= 0 || share.Value.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: share value out of range")
	}
	return &Signer{params: params, share: share}, nil
}

// Index returns the share-holder's evaluation point j.
func (s *Signer) Index() uint8 { return s.share.Index }

// Params returns the public parameters the signer issues under.
func (s *Signer) Params() *core.Params { return s.params }

// Issue computes this holder's key share D_j = s_j·Q_ID for an identity.
func (s *Signer) Issue(id string) *KeyShare {
	ppk := core.IssuePartialKey(s.params, id, s.share.Value)
	return &KeyShare{ID: id, Index: s.share.Index, D: ppk.D}
}

// KeyShare is one share-holder's contribution to a partial private key.
// Unlike a PartialPrivateKey it does not validate under the public
// parameters on its own; only a t-combination does.
type KeyShare struct {
	ID    string
	Index uint8
	D     *bn254.G2
}

// keyShareMarshalledSize is the byte length of the fixed part (index‖D);
// the identity rides separately in the carrying protocol.
const keyShareMarshalledSize = 1 + 128

// Marshal encodes the share as Index‖D (128-byte uncompressed G2).
func (ks *KeyShare) Marshal() []byte {
	out := make([]byte, 1, keyShareMarshalledSize)
	out[0] = ks.Index
	return append(out, ks.D.Marshal()...)
}

// UnmarshalKeyShare decodes a key share for the given identity, validating
// the embedded point (curve and subgroup membership).
func UnmarshalKeyShare(id string, data []byte) (*KeyShare, error) {
	if len(data) != keyShareMarshalledSize {
		return nil, fmt.Errorf("threshold: key share wants %d bytes, got %d", keyShareMarshalledSize, len(data))
	}
	if data[0] == 0 {
		return nil, fmt.Errorf("threshold: key share index zero")
	}
	var d bn254.G2
	if err := d.Unmarshal(data[1:]); err != nil {
		return nil, fmt.Errorf("threshold: key share point: %w", err)
	}
	return &KeyShare{ID: id, Index: data[0], D: &d}, nil
}

// Combine Lagrange-combines key shares into the partial private key
// D_ID = Σ λ_j·D_j. The caller is responsible for passing exactly t shares
// of a t-threshold split (a combiner enforces its quorum before calling);
// with fewer, the result is a well-formed group element that fails
// PartialPrivateKey.Validate. Shares must be for the same identity and
// carry pairwise-distinct indices.
func Combine(id string, shares []*KeyShare) (*core.PartialPrivateKey, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("threshold: no key shares to combine")
	}
	indices := make([]uint8, len(shares))
	for i, ks := range shares {
		if ks.ID != id {
			return nil, fmt.Errorf("threshold: key share for %q, want %q", ks.ID, id)
		}
		if ks.D == nil {
			return nil, fmt.Errorf("threshold: key share %d has no point", ks.Index)
		}
		indices[i] = ks.Index
	}
	lambda, err := lagrangeAtZero(indices)
	if err != nil {
		return nil, err
	}
	acc := bn254.G2Infinity()
	term := new(bn254.G2)
	for i, ks := range shares {
		term.ScalarMult(ks.D, lambda[i])
		acc.Add(acc, term)
	}
	return &core.PartialPrivateKey{ID: id, D: acc}, nil
}
