package threshold

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mccls/internal/bn254"
	"mccls/internal/core"
)

// Signer is one share-holder: it issues partial-key *shares* D_j = s_j·Q_ID
// against its Shamir share and never sees the master secret or the other
// shares. This is the object a kgcd signer replica wraps. Issue and
// ApplyRefresh may race (a replica keeps serving while a refresh lands),
// so the share is guarded: an issuance sees either the old or the new
// share in full, never a torn mix, and the epoch it stamps on the key
// share is the one it issued under.
type Signer struct {
	params *core.Params

	mu    sync.RWMutex
	share *Share
}

// NewSigner binds a share to the public parameters it was split under.
func NewSigner(params *core.Params, share *Share) (*Signer, error) {
	if share == nil || share.Index == 0 {
		return nil, fmt.Errorf("threshold: signer needs a share with nonzero index")
	}
	if share.Value == nil || share.Value.Sign() <= 0 || share.Value.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("threshold: share value out of range")
	}
	return &Signer{params: params, share: share}, nil
}

// Index returns the share-holder's evaluation point j.
func (s *Signer) Index() uint8 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.share.Index
}

// Epoch returns the refresh epoch the signer currently issues under.
func (s *Signer) Epoch() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.share.Epoch
}

// Params returns the public parameters the signer issues under.
func (s *Signer) Params() *core.Params { return s.params }

// Issue computes this holder's key share D_j = s_j·Q_ID for an identity,
// stamped with the epoch it was issued under.
func (s *Signer) Issue(id string) *KeyShare {
	s.mu.RLock()
	share := s.share
	s.mu.RUnlock()
	ppk := core.IssuePartialKey(s.params, id, share.Value)
	return &KeyShare{ID: id, Index: share.Index, Epoch: share.Epoch, D: ppk.D}
}

// ApplyRefresh advances the signer's share by one epoch (see refresh.go).
// It is idempotent against retries: a delta targeting the epoch the signer
// is already at is reported as success without touching the share, so a
// coordinator that lost an acknowledgement can safely re-send. Any other
// epoch mismatch is an error. Returns the epoch the signer is at after the
// call.
func (s *Signer) ApplyRefresh(d *Delta) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Epoch == s.share.Epoch {
		return s.share.Epoch, nil // retry of an already-applied refresh
	}
	next, err := s.share.Refresh(d)
	if err != nil {
		return s.share.Epoch, err
	}
	s.share = next
	return next.Epoch, nil
}

// KeyShare is one share-holder's contribution to a partial private key.
// Unlike a PartialPrivateKey it does not validate under the public
// parameters on its own; only a t-combination does. Epoch is the refresh
// epoch of the share it was issued under; only same-epoch key shares
// combine (they are evaluations of the same polynomial).
type KeyShare struct {
	ID    string
	Index uint8
	Epoch uint32
	D     *bn254.G2
}

// keyShareMarshalledSize is the byte length of the fixed part
// (index‖epoch‖D); the identity rides separately in the carrying protocol.
const keyShareMarshalledSize = 1 + 4 + 128

// Marshal encodes the share as Index‖Epoch‖D (128-byte uncompressed G2).
func (ks *KeyShare) Marshal() []byte {
	out := make([]byte, 5, keyShareMarshalledSize)
	out[0] = ks.Index
	binary.BigEndian.PutUint32(out[1:5], ks.Epoch)
	return append(out, ks.D.Marshal()...)
}

// UnmarshalKeyShare decodes a key share for the given identity, validating
// the embedded point (curve and subgroup membership).
func UnmarshalKeyShare(id string, data []byte) (*KeyShare, error) {
	if len(data) != keyShareMarshalledSize {
		return nil, fmt.Errorf("threshold: key share wants %d bytes, got %d", keyShareMarshalledSize, len(data))
	}
	if data[0] == 0 {
		return nil, fmt.Errorf("threshold: key share index zero")
	}
	var d bn254.G2
	if err := d.Unmarshal(data[5:]); err != nil {
		return nil, fmt.Errorf("threshold: key share point: %w", err)
	}
	return &KeyShare{
		ID:    id,
		Index: data[0],
		Epoch: binary.BigEndian.Uint32(data[1:5]),
		D:     &d,
	}, nil
}

// Combine Lagrange-combines key shares into the partial private key
// D_ID = Σ λ_j·D_j. The caller is responsible for passing exactly t shares
// of a t-threshold split (a combiner enforces its quorum before calling);
// with fewer, the result is a well-formed group element that fails
// PartialPrivateKey.Validate. Shares must be for the same identity, carry
// pairwise-distinct indices and agree on the refresh epoch — mixed-epoch
// shares are evaluations of different polynomials and are rejected with
// ErrMixedEpochs rather than combined into garbage.
func Combine(id string, shares []*KeyShare) (*core.PartialPrivateKey, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("threshold: no key shares to combine")
	}
	indices := make([]uint8, len(shares))
	for i, ks := range shares {
		if ks.ID != id {
			return nil, fmt.Errorf("threshold: key share for %q, want %q", ks.ID, id)
		}
		if ks.D == nil {
			return nil, fmt.Errorf("threshold: key share %d has no point", ks.Index)
		}
		if ks.Epoch != shares[0].Epoch {
			return nil, fmt.Errorf("threshold: %w: key share %d is epoch %d, key share %d is epoch %d",
				ErrMixedEpochs, ks.Index, ks.Epoch, shares[0].Index, shares[0].Epoch)
		}
		indices[i] = ks.Index
	}
	lambda, err := lagrangeAtZero(indices)
	if err != nil {
		return nil, err
	}
	acc := bn254.G2Infinity()
	term := new(bn254.G2)
	for i, ks := range shares {
		term.ScalarMult(ks.D, lambda[i])
		acc.Add(acc, term)
	}
	return &core.PartialPrivateKey{ID: id, D: acc}, nil
}
