package threshold

import (
	"bytes"
	"math/big"
	mrand "math/rand"
	"testing"

	"mccls/internal/bn254"
	"mccls/internal/core"
)

// detRNG returns a deterministic byte stream for Split.
func detRNG(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

func TestSplitReconstruct(t *testing.T) {
	secret := big.NewInt(424242)
	for _, tc := range []struct{ t, n int }{{1, 1}, {1, 4}, {2, 3}, {3, 5}, {7, 7}} {
		shares, err := Split(secret, tc.t, tc.n, detRNG(1))
		if err != nil {
			t.Fatalf("split %d-of-%d: %v", tc.t, tc.n, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("split %d-of-%d: got %d shares", tc.t, tc.n, len(shares))
		}
		// Any t consecutive shares reconstruct.
		for start := 0; start+tc.t <= tc.n; start++ {
			got, err := Reconstruct(shares[start : start+tc.t])
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(secret) != 0 {
				t.Fatalf("%d-of-%d reconstruct from [%d:%d] = %v, want %v",
					tc.t, tc.n, start, start+tc.t, got, secret)
			}
		}
	}
}

func TestSplitRejectsBadShape(t *testing.T) {
	secret := big.NewInt(7)
	for _, tc := range []struct{ t, n int }{{0, 3}, {4, 3}, {-1, 2}, {1, MaxShares + 1}} {
		if _, err := Split(secret, tc.t, tc.n, detRNG(1)); err == nil {
			t.Errorf("split %d-of-%d: want error", tc.t, tc.n)
		}
	}
	if _, err := Split(big.NewInt(0), 2, 3, detRNG(1)); err == nil {
		t.Error("split of zero secret: want error")
	}
	if _, err := Split(new(big.Int).Set(bn254.Order), 2, 3, detRNG(1)); err == nil {
		t.Error("split of out-of-range secret: want error")
	}
}

func TestReconstructRejectsDuplicates(t *testing.T) {
	shares, err := Split(big.NewInt(99), 2, 3, detRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct([]*Share{shares[0], shares[0]}); err == nil {
		t.Error("duplicate indices: want error")
	}
	if _, err := Reconstruct(nil); err == nil {
		t.Error("no shares: want error")
	}
}

func TestShareMarshalRoundTrip(t *testing.T) {
	shares, err := Split(big.NewInt(123456789), 3, 4, detRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		got, err := UnmarshalShare(s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != s.Index || got.Value.Cmp(s.Value) != 0 {
			t.Fatalf("round trip changed share %d", s.Index)
		}
	}
	if _, err := UnmarshalShare([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer: want error")
	}
	bad := shares[0].Marshal()
	bad[0] = 0
	if _, err := UnmarshalShare(bad); err == nil {
		t.Error("index zero: want error")
	}
}

// newThresholdKGC splits a fresh deterministic master and returns the
// single-master oracle plus per-share signers.
func newThresholdKGC(t *testing.T, tt, n int, seed int64) (*core.KGC, []*Signer) {
	t.Helper()
	master := bn254.HashToScalar("threshold/test", []byte{byte(seed)})
	kgc, err := core.NewKGCFromMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Split(master, tt, n, detRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	signers := make([]*Signer, n)
	for i, sh := range shares {
		if signers[i], err = NewSigner(kgc.Params(), sh); err != nil {
			t.Fatal(err)
		}
	}
	return kgc, signers
}

func TestCombineMatchesSingleMaster(t *testing.T) {
	kgc, signers := newThresholdKGC(t, 2, 3, 7)
	const id = "pump-station-9"
	want := kgc.ExtractPartialPrivateKey(id)

	// Every 2-subset of the 3 signers combines to the same key.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			ks := []*KeyShare{signers[i].Issue(id), signers[j].Issue(id)}
			got, err := Combine(id, ks)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatalf("combine {%d,%d} differs from single master", i, j)
			}
			if err := got.Validate(kgc.Params()); err != nil {
				t.Fatalf("combined key fails validation: %v", err)
			}
		}
	}
}

func TestCombineRejectsMismatchedIdentity(t *testing.T) {
	_, signers := newThresholdKGC(t, 2, 2, 8)
	ks := []*KeyShare{signers[0].Issue("alice"), signers[1].Issue("bob")}
	if _, err := Combine("alice", ks); err == nil {
		t.Error("mismatched identities: want error")
	}
	if _, err := Combine("alice", nil); err == nil {
		t.Error("no shares: want error")
	}
}

func TestKeyShareMarshalRoundTrip(t *testing.T) {
	_, signers := newThresholdKGC(t, 2, 2, 9)
	ks := signers[1].Issue("alice")
	got, err := UnmarshalKeyShare("alice", ks.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != ks.Index || !got.D.Equal(ks.D) {
		t.Fatal("round trip changed key share")
	}
	if _, err := UnmarshalKeyShare("alice", []byte{1}); err == nil {
		t.Error("short buffer: want error")
	}
	raw := ks.Marshal()
	raw[0] = 0
	if _, err := UnmarshalKeyShare("alice", raw); err == nil {
		t.Error("index zero: want error")
	}
	raw = ks.Marshal()
	raw[5] ^= 1
	if _, err := UnmarshalKeyShare("alice", raw); err == nil {
		t.Error("corrupted point: want error")
	}
}

// FuzzThresholdVsSingleMaster pins the threshold issuance path to the
// single-master oracle: for random identities and random t-of-n shapes
// (t ≥ 1, n ≤ 7), combining any t key shares must be byte-identical to
// ExtractPartialPrivateKey, and any t−1 shares must fail to produce a key
// that passes partial-key validation.
func FuzzThresholdVsSingleMaster(f *testing.F) {
	f.Add([]byte("node-1"), uint8(2), uint8(3), int64(1))
	f.Add([]byte(""), uint8(1), uint8(1), int64(2))
	f.Add([]byte("sensor/7"), uint8(7), uint8(7), int64(3))
	f.Add([]byte("x"), uint8(3), uint8(200), int64(4))
	f.Fuzz(func(t *testing.T, idBytes []byte, tRaw, nRaw uint8, seed int64) {
		const maxN = 7
		tt := 1 + int(tRaw)%maxN        // t ∈ [1, 7]
		n := tt + int(nRaw)%(maxN-tt+1) // n ∈ [t, 7]
		id := string(idBytes)
		rng := detRNG(seed)

		master := bn254.HashToScalar("threshold/fuzz", append([]byte{byte(seed)}, idBytes...))
		kgc, err := core.NewKGCFromMaster(master)
		if err != nil {
			t.Fatal(err)
		}
		shares, err := Split(master, tt, n, rng)
		if err != nil {
			t.Fatal(err)
		}

		// A random t-subset of the n shares.
		perm := rng.Perm(n)[:tt]
		subset := make([]*KeyShare, tt)
		scalarSubset := make([]*Share, tt)
		for i, idx := range perm {
			signer, err := NewSigner(kgc.Params(), shares[idx])
			if err != nil {
				t.Fatal(err)
			}
			subset[i] = signer.Issue(id)
			scalarSubset[i] = shares[idx]
		}

		want := kgc.ExtractPartialPrivateKey(id)
		got, err := Combine(id, subset)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("%d-of-%d combine differs from single master for id %q", tt, n, id)
		}
		if err := got.Validate(kgc.Params()); err != nil {
			t.Fatalf("combined key fails validation: %v", err)
		}
		if rec, err := Reconstruct(scalarSubset); err != nil || rec.Cmp(master) != 0 {
			t.Fatalf("scalar reconstruct mismatch (err=%v)", err)
		}

		// t−1 shares must not yield a validating key. For t = 1 that means
		// zero shares, which Combine rejects outright.
		if tt == 1 {
			if _, err := Combine(id, nil); err == nil {
				t.Fatal("combine of zero shares: want error")
			}
			return
		}
		under, err := Combine(id, subset[:tt-1])
		if err != nil {
			t.Fatalf("combine of t-1 shares should form a (wrong) element: %v", err)
		}
		if bytes.Equal(under.Marshal(), want.Marshal()) {
			t.Fatalf("t-1 shares reproduced the partial key (t=%d, n=%d)", tt, n)
		}
		if err := under.Validate(kgc.Params()); err == nil {
			t.Fatalf("t-1-share key passed validation (t=%d, n=%d)", tt, n)
		}
	})
}
