package threshold

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"mccls/internal/bn254"
	"mccls/internal/core"
)

// refreshAll applies one refresh round to every share, asserting the epoch
// advanced uniformly.
func refreshAll(t *testing.T, shares []*Share, tt int, toEpoch uint32, seed int64) []*Share {
	t.Helper()
	deltas, err := RefreshDeltas(tt, len(shares), toEpoch, detRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Share, len(shares))
	for i, s := range shares {
		if out[i], err = s.Refresh(deltas[i]); err != nil {
			t.Fatal(err)
		}
		if out[i].Epoch != toEpoch {
			t.Fatalf("share %d at epoch %d after refresh to %d", s.Index, out[i].Epoch, toEpoch)
		}
	}
	return out
}

func TestRefreshPreservesSecret(t *testing.T) {
	secret := big.NewInt(987654321)
	for _, tc := range []struct{ t, n int }{{1, 1}, {1, 3}, {2, 3}, {3, 5}, {7, 7}} {
		shares, err := Split(secret, tc.t, tc.n, detRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		// Three refresh rounds; the secret survives each and the values move
		// (for t > 1 — a 1-of-n refresh is numerically the identity).
		for epoch := uint32(1); epoch <= 3; epoch++ {
			prev := shares
			shares = refreshAll(t, shares, tc.t, epoch, int64(epoch)*31)
			if tc.t > 1 {
				moved := false
				for i := range shares {
					if shares[i].Value.Cmp(prev[i].Value) != 0 {
						moved = true
					}
				}
				if !moved {
					t.Fatalf("%d-of-%d refresh to epoch %d left every share unchanged", tc.t, tc.n, epoch)
				}
			}
			for start := 0; start+tc.t <= tc.n; start++ {
				got, err := Reconstruct(shares[start : start+tc.t])
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(secret) != 0 {
					t.Fatalf("%d-of-%d epoch %d: reconstruct = %v, want %v", tc.t, tc.n, epoch, got, secret)
				}
			}
		}
	}
}

func TestReconstructRejectsMixedEpochs(t *testing.T) {
	shares, err := Split(big.NewInt(55), 2, 3, detRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	refreshed := refreshAll(t, shares, 2, 1, 7)
	_, err = Reconstruct([]*Share{shares[0], refreshed[1]})
	if !errors.Is(err, ErrMixedEpochs) {
		t.Fatalf("mixed-epoch reconstruct: got %v, want ErrMixedEpochs", err)
	}
}

func TestCombineRejectsMixedEpochs(t *testing.T) {
	kgc, signers := newThresholdKGC(t, 2, 3, 21)
	const id = "valve-17"
	stale := signers[0].Issue(id) // epoch 0

	deltas, err := RefreshDeltas(2, 3, 1, detRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range signers {
		if _, err := s.ApplyRefresh(deltas[i]); err != nil {
			t.Fatal(err)
		}
		if s.Epoch() != 1 {
			t.Fatalf("signer %d at epoch %d after refresh", i, s.Epoch())
		}
	}

	fresh := signers[1].Issue(id) // epoch 1
	if _, err := Combine(id, []*KeyShare{stale, fresh}); !errors.Is(err, ErrMixedEpochs) {
		t.Fatalf("mixed-epoch combine: got %v, want ErrMixedEpochs", err)
	}

	// Same-epoch shares still combine to the oracle key.
	got, err := Combine(id, []*KeyShare{signers[0].Issue(id), fresh})
	if err != nil {
		t.Fatal(err)
	}
	want := kgc.ExtractPartialPrivateKey(id)
	if !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("post-refresh combine differs from single master")
	}
}

func TestApplyRefreshIdempotentAndOrdered(t *testing.T) {
	_, signers := newThresholdKGC(t, 2, 2, 22)
	s := signers[0]
	deltas, err := RefreshDeltas(2, 2, 1, detRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if ep, err := s.ApplyRefresh(deltas[0]); err != nil || ep != 1 {
		t.Fatalf("first apply: epoch %d, err %v", ep, err)
	}
	// Retrying the same epoch is an idempotent success (lost-ack replay).
	if ep, err := s.ApplyRefresh(deltas[0]); err != nil || ep != 1 {
		t.Fatalf("replayed apply: epoch %d, err %v", ep, err)
	}
	// Skipping an epoch is refused.
	gap, err := RefreshDeltas(2, 2, 3, detRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyRefresh(gap[0]); err == nil {
		t.Fatal("epoch-gap refresh accepted")
	}
	// A delta for another holder's index is refused.
	next, err := RefreshDeltas(2, 2, 2, detRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyRefresh(next[1]); err == nil {
		t.Fatal("wrong-index refresh accepted")
	}
}

func TestRefreshDeltasRejectsBadShape(t *testing.T) {
	for _, tc := range []struct {
		t, n  int
		epoch uint32
	}{{0, 3, 1}, {4, 3, 1}, {1, MaxShares + 1, 1}, {2, 3, 0}} {
		if _, err := RefreshDeltas(tc.t, tc.n, tc.epoch, detRNG(1)); err == nil {
			t.Errorf("RefreshDeltas(%d, %d, %d): want error", tc.t, tc.n, tc.epoch)
		}
	}
	// t=1 deltas are identically zero: the epoch advances, the values don't.
	deltas, err := RefreshDeltas(1, 3, 1, detRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Value.Sign() != 0 {
			t.Fatalf("1-of-n delta %d nonzero", d.Index)
		}
	}
}

func TestDeltaMarshalRoundTrip(t *testing.T) {
	deltas, err := RefreshDeltas(3, 4, 9, detRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		got, err := UnmarshalDelta(d.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != d.Index || got.Epoch != d.Epoch || got.Value.Cmp(d.Value) != 0 {
			t.Fatalf("round trip changed delta %d", d.Index)
		}
	}
	if _, err := UnmarshalDelta([]byte{1, 2}); err == nil {
		t.Error("short buffer: want error")
	}
	bad := deltas[0].Marshal()
	bad[0] = 0
	if _, err := UnmarshalDelta(bad); err == nil {
		t.Error("index zero: want error")
	}
	bad = deltas[0].Marshal()
	for i := 1; i < 5; i++ {
		bad[i] = 0
	}
	if _, err := UnmarshalDelta(bad); err == nil {
		t.Error("epoch zero: want error")
	}
}

// FuzzRefreshVsSingleMaster pins proactive refresh to the single-master
// oracle: across random t-of-n shapes and 1–3 refresh rounds, issuance
// after every round stays byte-identical to ExtractPartialPrivateKey (the
// master secret is untouched by construction), reconstruction still yields
// the master, and stale/fresh share mixes are rejected rather than
// combined.
func FuzzRefreshVsSingleMaster(f *testing.F) {
	f.Add([]byte("node-1"), uint8(2), uint8(3), uint8(1), int64(1))
	f.Add([]byte(""), uint8(1), uint8(1), uint8(3), int64(2))
	f.Add([]byte("sensor/7"), uint8(7), uint8(7), uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, idBytes []byte, tRaw, nRaw, roundsRaw uint8, seed int64) {
		const maxN = 7
		tt := 1 + int(tRaw)%maxN
		n := tt + int(nRaw)%(maxN-tt+1)
		rounds := 1 + int(roundsRaw)%3
		id := string(idBytes)
		rng := detRNG(seed)

		master := bn254.HashToScalar("threshold/refresh-fuzz", append([]byte{byte(seed)}, idBytes...))
		kgc, err := core.NewKGCFromMaster(master)
		if err != nil {
			t.Fatal(err)
		}
		shares, err := Split(master, tt, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := kgc.ExtractPartialPrivateKey(id)

		signers := make([]*Signer, n)
		for i, sh := range shares {
			if signers[i], err = NewSigner(kgc.Params(), sh); err != nil {
				t.Fatal(err)
			}
		}
		var staleKS *KeyShare // an epoch-0 key share kept across refreshes
		if tt > 1 {
			staleKS = signers[0].Issue(id)
		}

		for round := 1; round <= rounds; round++ {
			deltas, err := RefreshDeltas(tt, n, uint32(round), rng)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range signers {
				if ep, err := s.ApplyRefresh(deltas[i]); err != nil || ep != uint32(round) {
					t.Fatalf("round %d signer %d: epoch %d, err %v", round, i, ep, err)
				}
				if shares[i], err = shares[i].Refresh(deltas[i]); err != nil {
					t.Fatal(err)
				}
			}

			// A random t-subset issues and combines byte-identically to the
			// single-master oracle.
			perm := rng.Perm(n)[:tt]
			subset := make([]*KeyShare, tt)
			scalarSubset := make([]*Share, tt)
			for i, idx := range perm {
				subset[i] = signers[idx].Issue(id)
				scalarSubset[i] = shares[idx]
			}
			got, err := Combine(id, subset)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatalf("%d-of-%d round %d: refreshed combine differs from single master", tt, n, round)
			}
			if rec, err := Reconstruct(scalarSubset); err != nil || rec.Cmp(master) != 0 {
				t.Fatalf("round %d: scalar reconstruct mismatch (err=%v)", round, err)
			}

			// Mixing a pre-refresh key share with current-epoch shares must
			// be rejected, not combined into a wrong key.
			if staleKS != nil {
				mixed := append([]*KeyShare{staleKS}, subset[:tt-1]...)
				if _, err := Combine(id, mixed); !errors.Is(err, ErrMixedEpochs) {
					t.Fatalf("round %d: mixed-epoch combine: got %v, want ErrMixedEpochs", round, err)
				}
			}
		}
	})
}
