// Package faulthttp injects deterministic faults into HTTP paths: added
// latency, dropped requests, 5xx bursts, partitions and replica
// crash/restart cycles. It is the real-network counterpart of
// internal/fault — the same Schedule idiom (plain data, fully decided
// before the run starts) applied to the kgcd enrollment plane instead of
// the simulated radio. A Schedule is bound to a start instant by an
// Injector; the Transport wraps an http.RoundTripper (client-side faults:
// what a combiner sees of its replicas) and Middleware wraps an
// http.Handler (server-side faults: what a replica's peers see of it).
// With the injectable clock a test replays any point of the schedule
// exactly; with the real clock a chaos run follows it in real time.
package faulthttp

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Latency adds Delay to every matching request during [From, To).
// Overlapping latency windows sum.
type Latency struct {
	Target   string // "" matches every target
	From, To time.Duration
	Delay    time.Duration
}

// Drop fails every matching request during [From, To) with a transport
// error — the peer is unreachable, no HTTP response at all.
type Drop struct {
	Target   string
	From, To time.Duration
}

// Burst answers every matching request with Status (a 5xx, typically)
// during [From, To) — the peer is up but failing.
type Burst struct {
	Target   string
	From, To time.Duration
	Status   int
}

// Partition makes every listed target unreachable during [From, To) —
// a Drop spanning a set of peers at once.
type Partition struct {
	Targets  []string
	From, To time.Duration
}

// Crash takes a target down at At and back up at RestartAt; requests in
// the window fail like Drop. RestartAt ≤ At is a permanent crash
// (mirroring fault.Crash).
type Crash struct {
	Target    string
	At        time.Duration
	RestartAt time.Duration
}

// Schedule is a complete HTTP fault plan, decided before the run starts.
type Schedule struct {
	Latency    []Latency
	Drops      []Drop
	Bursts     []Burst
	Partitions []Partition
	Crashes    []Crash
}

// Empty reports whether the schedule injects no faults at all.
func (s Schedule) Empty() bool {
	return len(s.Latency) == 0 && len(s.Drops) == 0 && len(s.Bursts) == 0 &&
		len(s.Partitions) == 0 && len(s.Crashes) == 0
}

// RotatingCrashes builds the canonical chaos rotation: the k-th kill takes
// down targets[k mod len] during [k·period, k·period+downFor), for every
// period boundary inside the horizon. With downFor < period exactly one
// target is dark at any instant — faults stay below quorum loss for any
// t ≤ n−1 deployment.
func RotatingCrashes(targets []string, period, downFor, horizon time.Duration) []Crash {
	if len(targets) == 0 || period <= 0 || downFor <= 0 {
		return nil
	}
	var out []Crash
	for k := 0; time.Duration(k)*period < horizon; k++ {
		at := time.Duration(k) * period
		out = append(out, Crash{
			Target:    targets[k%len(targets)],
			At:        at,
			RestartAt: at + downFor,
		})
	}
	return out
}

// Verdict is the fault outcome for one request: apply Delay, then either
// drop the request, synthesize Status, or let it through.
type Verdict struct {
	Delay  time.Duration
	Drop   bool
	Status int
}

// Injector binds a Schedule to a start instant. Zero faults before Start
// is called; after Start, windows are evaluated against the elapsed time.
type Injector struct {
	sched Schedule
	now   func() time.Time

	mu      sync.Mutex
	started bool
	start   time.Time
}

// New creates an injector over the schedule, using the real clock.
func New(sched Schedule) *Injector {
	return &Injector{sched: sched, now: time.Now}
}

// SetClock substitutes the time source (tests). Call before Start.
func (in *Injector) SetClock(now func() time.Time) { in.now = now }

// Start pins the schedule's t=0 to the current instant. Calling Start
// again rebases the schedule (a test replaying several windows).
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.started = true
	in.start = in.now()
}

// Elapsed returns the time since Start (0 if not started).
func (in *Injector) Elapsed() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.started {
		return 0
	}
	return in.now().Sub(in.start)
}

func match(rule, target string) bool { return rule == "" || rule == target }

func inWindow(e, from, to time.Duration) bool { return e >= from && e < to }

// Verdict evaluates the schedule for one request against the named target
// at the current instant. Drops (and partitions and crash windows) win
// over bursts; latency composes with either.
func (in *Injector) Verdict(target string) Verdict {
	in.mu.Lock()
	started, start := in.started, in.start
	in.mu.Unlock()
	if !started {
		return Verdict{}
	}
	e := in.now().Sub(start)

	var v Verdict
	for _, l := range in.sched.Latency {
		if match(l.Target, target) && inWindow(e, l.From, l.To) {
			v.Delay += l.Delay
		}
	}
	for _, d := range in.sched.Drops {
		if match(d.Target, target) && inWindow(e, d.From, d.To) {
			v.Drop = true
			return v
		}
	}
	for _, p := range in.sched.Partitions {
		if inWindow(e, p.From, p.To) {
			for _, t := range p.Targets {
				if match(t, target) {
					v.Drop = true
					return v
				}
			}
		}
	}
	for _, c := range in.sched.Crashes {
		if match(c.Target, target) && e >= c.At && (c.RestartAt <= c.At || e < c.RestartAt) {
			v.Drop = true
			return v
		}
	}
	for _, b := range in.sched.Bursts {
		if match(b.Target, target) && inWindow(e, b.From, b.To) {
			v.Status = b.Status
			return v
		}
	}
	return v
}

// DropError is the transport error surfaced for injected drops, so tests
// and callers can tell an injected fault from a real network error.
type DropError struct{ Target string }

func (e *DropError) Error() string {
	return fmt.Sprintf("faulthttp: injected drop (target %q)", e.Target)
}

// Transport is a fault-injecting http.RoundTripper: the client-side view
// of a faulty network. Requests are matched to schedule targets by host
// (override with Target).
type Transport struct {
	Injector *Injector
	// Inner handles requests that survive injection; nil uses
	// http.DefaultTransport.
	Inner http.RoundTripper
	// Target maps a request to a schedule target; nil uses req.URL.Host.
	Target func(*http.Request) string
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host
	if t.Target != nil {
		target = t.Target(req)
	}
	v := t.Injector.Verdict(target)
	if v.Delay > 0 {
		if err := sleep(req.Context().Done(), v.Delay); err != nil {
			return nil, err
		}
	}
	if v.Drop {
		return nil, &DropError{Target: target}
	}
	if v.Status != 0 {
		return synthResponse(req, v.Status), nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// synthResponse fabricates a minimal response for an injected status, as
// if the peer's front-end answered without reaching the application.
func synthResponse(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("faulthttp: injected status %d", status)
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleware wraps a handler with server-side injection for the named
// target. Drop (and crash/partition) windows abort the connection without
// an HTTP response — the client sees a mid-request network failure, which
// is what a killed replica looks like; burst windows answer with the
// injected status; latency windows stall the handler.
func Middleware(in *Injector, target string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := in.Verdict(target)
		if v.Delay > 0 {
			if err := sleep(r.Context().Done(), v.Delay); err != nil {
				panic(http.ErrAbortHandler)
			}
		}
		if v.Drop {
			panic(http.ErrAbortHandler) // net/http aborts the connection
		}
		if v.Status != 0 {
			http.Error(w, fmt.Sprintf("faulthttp: injected status %d", v.Status), v.Status)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// sleep waits for d or for done, whichever comes first.
func sleep(done <-chan struct{}, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return fmt.Errorf("faulthttp: canceled during injected latency")
	}
}
