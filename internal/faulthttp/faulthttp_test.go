package faulthttp

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable time source pinned to a base instant.
type fakeClock struct{ at atomic.Int64 }

func (c *fakeClock) now() time.Time            { return time.Unix(1000, 0).Add(time.Duration(c.at.Load())) }
func (c *fakeClock) set(elapsed time.Duration) { c.at.Store(int64(elapsed)) }

func newTestInjector(s Schedule) (*Injector, *fakeClock) {
	clk := &fakeClock{}
	in := New(s)
	in.SetClock(clk.now)
	in.Start()
	return in, clk
}

func TestVerdictWindows(t *testing.T) {
	in, clk := newTestInjector(Schedule{
		Latency: []Latency{
			{Target: "a", From: 0, To: 10 * time.Second, Delay: 5 * time.Millisecond},
			{Target: "", From: 5 * time.Second, To: 10 * time.Second, Delay: 7 * time.Millisecond},
		},
		Drops:      []Drop{{Target: "b", From: 2 * time.Second, To: 4 * time.Second}},
		Bursts:     []Burst{{Target: "a", From: 6 * time.Second, To: 8 * time.Second, Status: 503}},
		Partitions: []Partition{{Targets: []string{"c", "d"}, From: 1 * time.Second, To: 3 * time.Second}},
		Crashes:    []Crash{{Target: "e", At: 4 * time.Second, RestartAt: 6 * time.Second}},
	})

	cases := []struct {
		at     time.Duration
		target string
		want   Verdict
	}{
		{0, "a", Verdict{Delay: 5 * time.Millisecond}},
		{0, "b", Verdict{}},
		{2 * time.Second, "b", Verdict{Drop: true}},
		{4 * time.Second, "b", Verdict{}}, // [From, To)
		{2 * time.Second, "c", Verdict{Drop: true}},
		{2 * time.Second, "d", Verdict{Drop: true}},
		{3 * time.Second, "c", Verdict{}},
		{5 * time.Second, "e", Verdict{Delay: 7 * time.Millisecond, Drop: true}},   // wildcard latency composes with the crash
		{6 * time.Second, "e", Verdict{Delay: 7 * time.Millisecond}},               // restarted
		{6 * time.Second, "a", Verdict{Delay: 12 * time.Millisecond, Status: 503}}, // latency windows sum, burst applies
		{9 * time.Second, "a", Verdict{Delay: 12 * time.Millisecond}},
		{11 * time.Second, "a", Verdict{}},
	}
	for _, tc := range cases {
		clk.set(tc.at)
		if got := in.Verdict(tc.target); got != tc.want {
			t.Errorf("Verdict(%q) at %v = %+v, want %+v", tc.target, tc.at, got, tc.want)
		}
	}
}

func TestPermanentCrashAndUnstarted(t *testing.T) {
	in := New(Schedule{Crashes: []Crash{{Target: "x", At: time.Second}}})
	clk := &fakeClock{}
	in.SetClock(clk.now)
	// Before Start: no faults at all.
	if v := in.Verdict("x"); v.Drop {
		t.Fatal("unstarted injector injected a fault")
	}
	in.Start()
	clk.set(time.Hour)
	if v := in.Verdict("x"); !v.Drop {
		t.Fatal("permanent crash lifted")
	}
}

func TestRotatingCrashes(t *testing.T) {
	targets := []string{"r0", "r1", "r2"}
	crashes := RotatingCrashes(targets, 5*time.Second, 2*time.Second, 15*time.Second)
	if len(crashes) != 3 {
		t.Fatalf("got %d crashes, want 3", len(crashes))
	}
	for k, c := range crashes {
		if c.Target != targets[k%3] {
			t.Errorf("crash %d targets %s, want %s", k, c.Target, targets[k%3])
		}
		if c.At != time.Duration(k)*5*time.Second || c.RestartAt != c.At+2*time.Second {
			t.Errorf("crash %d window [%v, %v)", k, c.At, c.RestartAt)
		}
	}
	// At any instant at most one target is dark.
	in, clk := newTestInjector(Schedule{Crashes: crashes})
	for e := time.Duration(0); e < 15*time.Second; e += 250 * time.Millisecond {
		clk.set(e)
		dark := 0
		for _, tgt := range targets {
			if in.Verdict(tgt).Drop {
				dark++
			}
		}
		if dark > 1 {
			t.Fatalf("%d targets dark at %v", dark, e)
		}
	}
	if RotatingCrashes(nil, time.Second, time.Second, time.Minute) != nil {
		t.Error("empty target list: want nil")
	}
}

func TestTransportInjection(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer backend.Close()
	host := backend.Listener.Addr().String()

	in, clk := newTestInjector(Schedule{
		Drops:  []Drop{{Target: host, From: 0, To: time.Second}},
		Bursts: []Burst{{Target: host, From: time.Second, To: 2 * time.Second, Status: 502}},
	})
	hc := &http.Client{Transport: &Transport{Injector: in}}

	// Drop window: transport error, typed.
	_, err := hc.Get(backend.URL)
	var de *DropError
	if err == nil || !errors.As(err, &de) || de.Target != host {
		t.Fatalf("drop window: got %v, want DropError for %s", err, host)
	}

	// Burst window: synthesized 502, backend never reached.
	clk.set(time.Second)
	resp, err := hc.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("burst window: status %d, want 502", resp.StatusCode)
	}

	// Clean window: request passes through.
	clk.set(3 * time.Second)
	resp, err = hc.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" {
		t.Fatalf("clean window: body %q", body)
	}
}

func TestTransportLatency(t *testing.T) {
	in, _ := newTestInjector(Schedule{
		Latency: []Latency{{From: 0, To: time.Hour, Delay: 30 * time.Millisecond}},
		Bursts:  []Burst{{From: 0, To: time.Hour, Status: 500}},
	})
	hc := &http.Client{Transport: &Transport{Injector: in}}
	// The injected delay runs on the real clock even with a fake schedule
	// clock — measure it.
	t0 := time.Now()
	resp, err := hc.Get("http://injected.invalid/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("latency window not applied: %v", d)
	}
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestMiddlewareInjection(t *testing.T) {
	var reached atomic.Int64
	in, clk := newTestInjector(Schedule{
		Crashes: []Crash{{Target: "replica-0", At: 0, RestartAt: time.Second}},
		Bursts:  []Burst{{Target: "replica-0", From: time.Second, To: 2 * time.Second, Status: 503}},
	})
	srv := httptest.NewServer(Middleware(in, "replica-0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		io.WriteString(w, "ok")
	})))
	defer srv.Close()

	// Crash window: the connection is aborted — a transport-level error,
	// not an HTTP status.
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("crash window: want a connection error")
	}
	if reached.Load() != 0 {
		t.Fatal("crashed handler was reached")
	}

	// Burst window: HTTP 503 without reaching the handler.
	clk.set(time.Second)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || reached.Load() != 0 {
		t.Fatalf("burst window: status %d, reached %d", resp.StatusCode, reached.Load())
	}

	// After restart: normal service.
	clk.set(3 * time.Second)
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || reached.Load() != 1 {
		t.Fatalf("clean window: status %d, reached %d", resp.StatusCode, reached.Load())
	}
}

func TestScheduleEmpty(t *testing.T) {
	if !(Schedule{}).Empty() {
		t.Error("zero schedule not Empty")
	}
	if (Schedule{Drops: []Drop{{}}}).Empty() {
		t.Error("non-zero schedule Empty")
	}
}
