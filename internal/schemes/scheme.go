// Package schemes implements the certificateless signature schemes the
// paper compares against in Table 1 — AP (Al-Riyami & Paterson,
// ASIACRYPT'03), ZWXF (Zhang, Wong, Xu & Feng, ACNS'06) and YHG (Yap, Heng
// & Goi, EUC'06) — behind a common interface that also adapts McCLS, so the
// four schemes can be benchmarked side by side on the same BN254 substrate.
//
// AP is implemented per its published description (translated to a Type-3
// pairing); ZWXF and YHG are faithful reconstructions of their published
// operation profiles (see DESIGN.md §1). Each implementation states its
// sign/verify operation counts in a Profile matching the paper's Table 1.
package schemes

import (
	"errors"
	"io"
)

// Errors shared by all scheme implementations.
var (
	ErrVerifyFailed = errors.New("schemes: signature verification failed")
	ErrMalformed    = errors.New("schemes: malformed key or signature")
)

// Profile records a scheme's operation counts as reported in the paper's
// Table 1: p = pairings, s = scalar multiplications, e = GT exponentiations.
type Profile struct {
	Name              string
	SignPairings      int
	SignScalarMults   int
	VerifyPairings    int
	VerifyScalarMults int
	VerifyExps        int
	// PublicKeyPoints is the number of group elements in a public key.
	PublicKeyPoints int
}

// Scheme constructs a runnable certificateless signature system.
type Scheme interface {
	// Profile reports the scheme's Table 1 operation counts.
	Profile() Profile
	// Setup generates a KGC (master key + public parameters).
	Setup(rng io.Reader) (System, error)
}

// System is one instantiated scheme: a KGC plus its public parameters. A
// System can enroll users and verify signatures. Verification may cache
// per-identity pairing constants where the scheme's published operation
// count assumes it (McCLS, YHG).
type System interface {
	// NewUser extracts a partial private key for id and completes the
	// certificateless keypair.
	NewUser(id string, rng io.Reader) (User, error)
	// Verify checks an opaque signature over msg for the given identity
	// and marshalled public key.
	Verify(id string, publicKey, msg, sig []byte) error
}

// User holds a full certificateless private key and signs messages.
type User interface {
	ID() string
	// PublicKey returns the marshalled public key distributed with
	// signatures. Its length is PublicKeyPoints × 64 bytes.
	PublicKey() []byte
	// Sign produces an opaque signature over msg.
	Sign(msg []byte, rng io.Reader) ([]byte, error)
}

// All returns the four schemes in the order of the paper's Table 1.
func All() []Scheme {
	return []Scheme{AP{}, ZWXF{}, YHG{}, McCLS{}}
}
