package schemes

import (
	"errors"
	"reflect"
	"testing"

	"mccls/internal/batch"
)

// TestBatchSystems exercises the batch path of every scheme that offers
// one — and pins which schemes do: McCLS and YHG batch, AP and ZWXF do not.
func TestBatchSystems(t *testing.T) {
	batchable := map[string]bool{"McCLS": true, "YHG": true, "AP": false, "ZWXF": false}
	for _, sch := range All() {
		sch := sch
		name := sch.Profile().Name
		t.Run(name, func(t *testing.T) {
			rng := testRng(7)
			sys, err := sch.Setup(rng)
			if err != nil {
				t.Fatal(err)
			}
			bs, ok := sys.(BatchSystem)
			if ok != batchable[name] {
				t.Fatalf("batchable = %v, want %v", ok, batchable[name])
			}
			if !ok {
				return
			}
			const n, signers = 10, 3
			users := make([]User, signers)
			for j := range users {
				if users[j], err = sys.NewUser("node-"+string(rune('a'+j)), rng); err != nil {
					t.Fatal(err)
				}
			}
			items := make([]BatchItem, n)
			for i := range items {
				u := users[i%signers]
				msg := []byte{byte(i), 0xAB}
				sig, err := u.Sign(msg, rng)
				if err != nil {
					t.Fatal(err)
				}
				items[i] = BatchItem{ID: u.ID(), PublicKey: u.PublicKey(), Msg: msg, Sig: sig}
			}
			if err := bs.BatchVerify(items); err != nil {
				t.Fatalf("valid batch rejected: %v", err)
			}
			if err := bs.BatchVerify(nil); err != nil {
				t.Fatalf("empty batch rejected: %v", err)
			}
			// Tamper one message: the batch must reject with the offending
			// index located by bisection.
			tampered := make([]BatchItem, n)
			copy(tampered, items)
			tampered[4].Msg = []byte("junk")
			err = bs.BatchVerify(tampered)
			if !errors.Is(err, ErrVerifyFailed) {
				t.Fatalf("tampered batch: %v", err)
			}
			var be *batch.Error
			if !errors.As(err, &be) {
				t.Fatalf("rejection is not a *batch.Error: %v", err)
			}
			if !reflect.DeepEqual(be.Bad, []int{4}) {
				t.Fatalf("offenders %v, want [4]", be.Bad)
			}
			// Malformed input is a structural error, not a verify failure.
			short := make([]BatchItem, n)
			copy(short, items)
			short[0].Sig = items[0].Sig[:8]
			if err := bs.BatchVerify(short); !errors.Is(err, ErrMalformed) {
				t.Fatalf("truncated signature in batch: %v", err)
			}
		})
	}
}
