package schemes

import (
	"fmt"
	"io"

	"mccls/internal/core"
)

// McCLS adapts the paper's scheme (implemented in internal/core) to the
// common Scheme interface so it can be benchmarked against the baselines.
// Table 1 profile: sign 2s (one of which, S = x⁻¹·D_ID, is precomputed at
// key generation), verify 1p+1s with e(P_pub, Q_ID) cached per identity,
// public key 1 point.
type McCLS struct{}

// Profile reports the Table 1 operation counts.
func (McCLS) Profile() Profile {
	return Profile{
		Name:              "McCLS",
		SignPairings:      0,
		SignScalarMults:   2,
		VerifyPairings:    1,
		VerifyScalarMults: 1,
		VerifyExps:        0,
		PublicKeyPoints:   1,
	}
}

type mcclsSystem struct {
	kgc *core.KGC
	vf  *core.Verifier
}

// Setup runs the McCLS Setup algorithm.
func (McCLS) Setup(rng io.Reader) (System, error) {
	kgc, err := core.Setup(rng)
	if err != nil {
		return nil, err
	}
	return &mcclsSystem{kgc: kgc, vf: core.NewVerifier(kgc.Params())}, nil
}

type mcclsUser struct {
	params *core.Params
	sk     *core.PrivateKey
}

func (sys *mcclsSystem) NewUser(id string, rng io.Reader) (User, error) {
	sk, err := core.GenerateKeyPair(sys.kgc.Params(), sys.kgc.ExtractPartialPrivateKey(id), rng)
	if err != nil {
		return nil, err
	}
	return &mcclsUser{params: sys.kgc.Params(), sk: sk}, nil
}

func (u *mcclsUser) ID() string { return u.sk.ID() }

// PublicKey returns just the P_ID point (the identity travels separately in
// this interface), matching the 1-point Table 1 entry.
func (u *mcclsUser) PublicKey() []byte { return u.sk.Public().PID.Marshal() }

func (u *mcclsUser) Sign(msg []byte, rng io.Reader) ([]byte, error) {
	sig, err := core.Sign(u.params, u.sk, msg, rng)
	if err != nil {
		return nil, err
	}
	return sig.Marshal(), nil
}

func (sys *mcclsSystem) Verify(id string, publicKey, msg, sig []byte) error {
	pkBytes := make([]byte, 0, 8+len(id)+len(publicKey))
	pkBytes = appendU64(pkBytes, uint64(len(id)))
	pkBytes = append(pkBytes, id...)
	pkBytes = append(pkBytes, publicKey...)
	pk, err := core.UnmarshalPublicKey(pkBytes)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	s, err := core.UnmarshalSignature(sig)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := sys.vf.Verify(pk, msg, s); err != nil {
		return fmt.Errorf("%w: %v", ErrVerifyFailed, err)
	}
	return nil
}

func appendU64(dst []byte, n uint64) []byte {
	return append(dst, byte(n>>56), byte(n>>48), byte(n>>40), byte(n>>32),
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
}
