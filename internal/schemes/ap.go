package schemes

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// AP is the Al-Riyami–Paterson certificateless signature scheme
// (ASIACRYPT 2003), the first CLS scheme and the paper's oldest baseline.
// Table 1 profile: sign 1p+3s, verify 4p+1e, public key 2 points.
//
// Type-3 translation: identity hashes live in G2 (Q_A = H1(ID),
// D_A = s·Q_A, S_A = x·D_A) and the two-element public key
// ⟨X_A = x·P, Y_A = x·P_pub⟩ lives in G1. The KGC additionally publishes
// P_pub2 = s·G2 so verifiers can run the published key-consistency check
// e(X_A, P_pub2) = e(Y_A, G2), which is what makes the AP public key two
// points and its verification four pairings.
type AP struct{}

// Profile reports the Table 1 operation counts.
func (AP) Profile() Profile {
	return Profile{
		Name:              "AP",
		SignPairings:      1,
		SignScalarMults:   3,
		VerifyPairings:    4,
		VerifyScalarMults: 0,
		VerifyExps:        1,
		PublicKeyPoints:   2,
	}
}

const apDomainH1 = "ap/H1"
const apDomainH2 = "ap/H2"

type apSystem struct {
	master *big.Int
	ppub   *bn254.G1 // s·P
	ppub2  *bn254.G2 // s·G2, for the key-consistency check
}

// Setup draws the master key and publishes (P_pub, P_pub2).
func (AP) Setup(rng io.Reader) (System, error) {
	s, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return &apSystem{
		master: s,
		ppub:   new(bn254.G1).ScalarBaseMult(s),
		ppub2:  new(bn254.G2).ScalarBaseMult(s),
	}, nil
}

type apUser struct {
	id string
	sa *bn254.G2 // S_A = x·D_A
	xa *bn254.G1 // X_A = x·P
	ya *bn254.G1 // Y_A = x·P_pub
}

func (sys *apSystem) NewUser(id string, rng io.Reader) (User, error) {
	qa := bn254.HashToG2(apDomainH1, []byte(id))
	da := new(bn254.G2).ScalarMult(qa, sys.master)
	x, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return &apUser{
		id: id,
		sa: new(bn254.G2).ScalarMult(da, x),
		xa: new(bn254.G1).ScalarBaseMult(x),
		ya: new(bn254.G1).ScalarMult(sys.ppub, x),
	}, nil
}

func (u *apUser) ID() string { return u.id }

func (u *apUser) PublicKey() []byte {
	return append(u.xa.Marshal(), u.ya.Marshal()...)
}

// Sign: a ← Zr, rr = e(a·P, G2) (the scheme's one signing pairing),
// v = H2(M, rr), U = v·S_A + a·G2. Signature is (U, v).
func (u *apUser) Sign(msg []byte, rng io.Reader) ([]byte, error) {
	a, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	rr := bn254.Pair(new(bn254.G1).ScalarBaseMult(a), bn254.G2Generator())
	v := apHashV(msg, rr)
	uPt := new(bn254.G2).ScalarMult(u.sa, v)
	uPt.Add(uPt, new(bn254.G2).ScalarBaseMult(a))
	out := uPt.Marshal()
	var vb [32]byte
	v.FillBytes(vb[:])
	return append(out, vb[:]...), nil
}

func apHashV(msg []byte, rr *bn254.GT) *big.Int {
	buf := append([]byte{}, rr.Marshal()...)
	buf = append(buf, msg...)
	return bn254.HashToScalar(apDomainH2, buf)
}

// Verify first checks key consistency e(X_A, P_pub2) = e(Y_A, G2), then
// recovers rr' = e(P, U)·e(Y_A, Q_A)^{-v} and accepts iff v = H2(M, rr').
func (sys *apSystem) Verify(id string, publicKey, msg, sig []byte) error {
	if len(publicKey) != 128 {
		return fmt.Errorf("%w: AP public key wants 128 bytes", ErrMalformed)
	}
	if len(sig) != 128+32 {
		return fmt.Errorf("%w: AP signature wants 160 bytes", ErrMalformed)
	}
	var xa, ya bn254.G1
	if err := xa.Unmarshal(publicKey[:64]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := ya.Unmarshal(publicKey[64:]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	var uPt bn254.G2
	if err := uPt.Unmarshal(sig[:128]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	v := new(big.Int).SetBytes(sig[128:])
	if v.Sign() == 0 || v.Cmp(bn254.Order) >= 0 {
		return fmt.Errorf("%w: v out of range", ErrMalformed)
	}

	// Key consistency (pairings 1 and 2).
	negYA := new(bn254.G1).Neg(&ya)
	if !bn254.PairingCheck(
		[]*bn254.G1{&xa, negYA},
		[]*bn254.G2{sys.ppub2, bn254.G2Generator()},
	) {
		return fmt.Errorf("%w: public key components inconsistent", ErrVerifyFailed)
	}

	// rr' = e(P, U)·e(Y_A, Q_A)^{-v} (pairings 3 and 4, one GT exponent).
	qa := bn254.HashToG2(apDomainH1, []byte(id))
	rr := bn254.Pair(bn254.G1Generator(), &uPt)
	adj := new(bn254.GT).Exp(bn254.Pair(&ya, qa), new(big.Int).Neg(v))
	rr.Mul(rr, adj)
	if apHashV(msg, rr).Cmp(v) != 0 {
		return ErrVerifyFailed
	}
	return nil
}
