package schemes

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mccls/internal/bn254"
)

func testRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestAllSchemesRoundTrip exercises the complete lifecycle of every scheme:
// setup, enrolment, sign, verify, and rejection of tampering.
func TestAllSchemesRoundTrip(t *testing.T) {
	for _, sch := range All() {
		sch := sch
		t.Run(sch.Profile().Name, func(t *testing.T) {
			rng := testRng(1)
			sys, err := sch.Setup(rng)
			if err != nil {
				t.Fatal(err)
			}
			user, err := sys.NewUser("node-7", rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("AODV RREP dst=node-3 seq=42")
			sig, err := user.Sign(msg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Verify("node-7", user.PublicKey(), msg, sig); err != nil {
				t.Fatalf("valid signature rejected: %v", err)
			}
			// Wrong message.
			if err := sys.Verify("node-7", user.PublicKey(), []byte("tampered"), sig); err == nil {
				t.Fatal("tampered message accepted")
			}
			// Wrong identity.
			if err := sys.Verify("node-8", user.PublicKey(), msg, sig); err == nil {
				t.Fatal("wrong identity accepted")
			}
			// Bit-flipped signature: every byte position class.
			for _, pos := range []int{0, len(sig) / 2, len(sig) - 1} {
				bad := bytes.Clone(sig)
				bad[pos] ^= 0x01
				if err := sys.Verify("node-7", user.PublicKey(), msg, bad); err == nil {
					t.Fatalf("bit flip at %d accepted", pos)
				}
			}
			// Truncated signature must be a malformed error, not a panic.
			if err := sys.Verify("node-7", user.PublicKey(), msg, sig[:len(sig)-3]); !errors.Is(err, ErrMalformed) {
				t.Fatalf("truncated signature: got %v", err)
			}
			// Truncated public key.
			if err := sys.Verify("node-7", user.PublicKey()[:8], msg, sig); !errors.Is(err, ErrMalformed) {
				t.Fatalf("truncated public key: got %v", err)
			}
		})
	}
}

// TestCrossSchemeUsers checks that two users within a scheme cannot verify
// against each other's keys.
func TestCrossSchemeUsers(t *testing.T) {
	for _, sch := range All() {
		sch := sch
		t.Run(sch.Profile().Name, func(t *testing.T) {
			rng := testRng(2)
			sys, err := sch.Setup(rng)
			if err != nil {
				t.Fatal(err)
			}
			a, err := sys.NewUser("alice", rng)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sys.NewUser("bob", rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			sig, err := a.Sign(msg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Verify("bob", b.PublicKey(), msg, sig); err == nil {
				t.Fatal("alice's signature verified as bob's")
			}
			// Key substitution: alice's ID with bob's public key.
			if err := sys.Verify("alice", b.PublicKey(), msg, sig); err == nil {
				t.Fatal("signature verified under substituted public key")
			}
		})
	}
}

// TestProfilesMatchTable1 pins the operation counts to the paper's Table 1.
func TestProfilesMatchTable1(t *testing.T) {
	want := map[string]Profile{
		"AP":    {Name: "AP", SignPairings: 1, SignScalarMults: 3, VerifyPairings: 4, VerifyExps: 1, PublicKeyPoints: 2},
		"ZWXF":  {Name: "ZWXF", SignScalarMults: 4, VerifyPairings: 4, VerifyScalarMults: 3, PublicKeyPoints: 1},
		"YHG":   {Name: "YHG", SignScalarMults: 2, VerifyPairings: 2, VerifyScalarMults: 3, PublicKeyPoints: 1},
		"McCLS": {Name: "McCLS", SignScalarMults: 2, VerifyPairings: 1, VerifyScalarMults: 1, PublicKeyPoints: 1},
	}
	for _, sch := range All() {
		p := sch.Profile()
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected scheme %q", p.Name)
		}
		if p != w {
			t.Fatalf("%s profile = %+v, want %+v", p.Name, p, w)
		}
	}
	// McCLS must have strictly the fewest verification pairings.
	for _, sch := range All() {
		p := sch.Profile()
		if p.Name != "McCLS" && p.VerifyPairings <= want["McCLS"].VerifyPairings {
			t.Fatalf("%s has %d verify pairings, not more than McCLS", p.Name, p.VerifyPairings)
		}
	}
}

// TestPublicKeySizes checks the marshalled key length matches the declared
// point count (64 bytes per G1 point).
func TestPublicKeySizes(t *testing.T) {
	for _, sch := range All() {
		rng := testRng(3)
		sys, err := sch.Setup(rng)
		if err != nil {
			t.Fatal(err)
		}
		user, err := sys.NewUser("n", rng)
		if err != nil {
			t.Fatal(err)
		}
		want := sch.Profile().PublicKeyPoints * 64
		if got := len(user.PublicKey()); got != want {
			t.Fatalf("%s public key %d bytes, want %d", sch.Profile().Name, got, want)
		}
	}
}

// TestDistinctSignaturesVerify makes sure repeated signing with fresh
// randomness yields distinct, individually valid signatures.
func TestDistinctSignaturesVerify(t *testing.T) {
	for _, sch := range All() {
		rng := testRng(4)
		sys, err := sch.Setup(rng)
		if err != nil {
			t.Fatal(err)
		}
		user, err := sys.NewUser("n", rng)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("same message")
		s1, err := user.Sign(msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := user.Sign(msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(s1, s2) {
			t.Fatalf("%s produced identical signatures for fresh randomness", sch.Profile().Name)
		}
		for _, s := range [][]byte{s1, s2} {
			if err := sys.Verify("n", user.PublicKey(), msg, s); err != nil {
				t.Fatalf("%s: %v", sch.Profile().Name, err)
			}
		}
	}
}

// TestPairingCountsMatchTable1 verifies dynamically — via the bn254
// operation counters — that each implementation performs exactly the
// number of pairings (Miller loops) its Table 1 row claims, in both the
// signing and the steady-state (warm-cache) verification path.
func TestPairingCountsMatchTable1(t *testing.T) {
	for _, sch := range All() {
		sch := sch
		t.Run(sch.Profile().Name, func(t *testing.T) {
			rng := testRng(7)
			sys, err := sch.Setup(rng)
			if err != nil {
				t.Fatal(err)
			}
			user, err := sys.NewUser("count", rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("count me")
			// Warm caches (McCLS/YHG precompute e(P_pub, Q_ID) on first
			// verification).
			warm, err := user.Sign(msg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Verify(user.ID(), user.PublicKey(), msg, warm); err != nil {
				t.Fatal(err)
			}

			before := bn254.ReadOpCounts()
			sig, err := user.Sign(msg, rng)
			if err != nil {
				t.Fatal(err)
			}
			afterSign := bn254.ReadOpCounts()
			if err := sys.Verify(user.ID(), user.PublicKey(), msg, sig); err != nil {
				t.Fatal(err)
			}
			afterVerify := bn254.ReadOpCounts()

			signOps := afterSign.Sub(before)
			verifyOps := afterVerify.Sub(afterSign)
			p := sch.Profile()
			if got := int(signOps.Pairings); got != p.SignPairings {
				t.Fatalf("sign performed %d pairings, Table 1 says %d", got, p.SignPairings)
			}
			if got := int(verifyOps.Pairings); got != p.VerifyPairings {
				t.Fatalf("verify performed %d pairings, Table 1 says %d", got, p.VerifyPairings)
			}
		})
	}
}
