package schemes

import (
	"fmt"
	"io"
	"math/big"
	"sync"

	"mccls/internal/bn254"
)

// YHG is the Yap–Heng–Goi certificateless signature scheme (EUC 2006),
// reconstructed to its published operation profile. It was the most
// efficient baseline before McCLS. Table 1 profile: sign 2s, verify 2p+3s,
// public key 1 point.
//
// Keys: Q_ID = H1(ID) ∈ G2, D_ID = s·Q_ID, secret x, P_ID = x·P ∈ G1.
// Sign: r ← Zr, U = r·P, h = H2(M,ID,U,P_ID) ∈ Zr, T = H3(ID,P_ID) ∈ G2,
// V = D_ID + (r + h·x)·T. Signature (U, V).
// Verify: e(P, V) = e(P_pub, Q_ID)·e(U + h·P_ID, T). The first right-hand
// factor is message-independent, so — as in the published count — it is
// cached per identity and steady-state verification is two pairings.
type YHG struct{}

// Profile reports the Table 1 operation counts.
func (YHG) Profile() Profile {
	return Profile{
		Name:              "YHG",
		SignPairings:      0,
		SignScalarMults:   2,
		VerifyPairings:    2,
		VerifyScalarMults: 3,
		VerifyExps:        0,
		PublicKeyPoints:   1,
	}
}

const (
	yhgDomainH1 = "yhg/H1"
	yhgDomainH2 = "yhg/H2"
	yhgDomainH3 = "yhg/H3"
)

type yhgSystem struct {
	master *big.Int
	ppub   *bn254.G1

	mu    sync.Mutex
	cache map[string]*bn254.GT // e(P_pub, Q_ID) per identity
}

// Setup draws the master key and publishes P_pub = s·P.
func (YHG) Setup(rng io.Reader) (System, error) {
	s, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return &yhgSystem{
		master: s,
		ppub:   new(bn254.G1).ScalarBaseMult(s),
		cache:  make(map[string]*bn254.GT),
	}, nil
}

type yhgUser struct {
	id  string
	d   *bn254.G2
	x   *big.Int
	pid *bn254.G1
	t   *bn254.G2 // T = H3(ID, P_ID), fixed per key
}

func (sys *yhgSystem) NewUser(id string, rng io.Reader) (User, error) {
	q := bn254.HashToG2(yhgDomainH1, []byte(id))
	x, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	pid := new(bn254.G1).ScalarBaseMult(x)
	return &yhgUser{
		id:  id,
		d:   new(bn254.G2).ScalarMult(q, sys.master),
		x:   x,
		pid: pid,
		t:   yhgT(id, pid),
	}, nil
}

func yhgT(id string, pid *bn254.G1) *bn254.G2 {
	return bn254.HashToG2(yhgDomainH3, append([]byte(id), pid.Marshal()...))
}

func yhgH(msg []byte, id string, uPt, pid *bn254.G1) *big.Int {
	buf := append([]byte{}, msg...)
	buf = append(buf, 0)
	buf = append(buf, id...)
	buf = append(buf, uPt.Marshal()...)
	buf = append(buf, pid.Marshal()...)
	return bn254.HashToScalar(yhgDomainH2, buf)
}

func (u *yhgUser) ID() string        { return u.id }
func (u *yhgUser) PublicKey() []byte { return u.pid.Marshal() }

// Sign produces (U, V) with two scalar multiplications (U = r·P and the
// single G2 multiplication by r + h·x) and no pairings.
func (u *yhgUser) Sign(msg []byte, rng io.Reader) ([]byte, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	uPt := new(bn254.G1).ScalarBaseMult(r)
	h := yhgH(msg, u.id, uPt, u.pid)
	k := new(big.Int).Mul(h, u.x)
	k.Add(k, r)
	k.Mod(k, bn254.Order)
	v := new(bn254.G2).ScalarMult(u.t, k)
	v.Add(v, u.d)
	return append(uPt.Marshal(), v.Marshal()...), nil
}

// Verify checks e(P, V) = e(P_pub, Q_ID)·e(U + h·P_ID, T) with the first
// factor cached per identity.
func (sys *yhgSystem) Verify(id string, publicKey, msg, sig []byte) error {
	if len(publicKey) != 64 {
		return fmt.Errorf("%w: YHG public key wants 64 bytes", ErrMalformed)
	}
	if len(sig) != 64+128 {
		return fmt.Errorf("%w: YHG signature wants 192 bytes", ErrMalformed)
	}
	var pid, uPt bn254.G1
	if err := pid.Unmarshal(publicKey); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := uPt.Unmarshal(sig[:64]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	var v bn254.G2
	if err := v.Unmarshal(sig[64:]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	h := yhgH(msg, id, &uPt, &pid)
	t := yhgT(id, &pid)
	lhsArg := new(bn254.G1).ScalarMult(&pid, h)
	lhsArg.Add(lhsArg, &uPt)

	sys.mu.Lock()
	base, ok := sys.cache[id]
	sys.mu.Unlock()
	if !ok {
		q := bn254.HashToG2(yhgDomainH1, []byte(id))
		base = bn254.Pair(sys.ppub, q)
		sys.mu.Lock()
		sys.cache[id] = base
		sys.mu.Unlock()
	}
	lhs := bn254.Pair(bn254.G1Generator(), &v)
	rhs := new(bn254.GT).Mul(base, bn254.Pair(lhsArg, t))
	if !lhs.Equal(rhs) {
		return ErrVerifyFailed
	}
	return nil
}
