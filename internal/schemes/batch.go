package schemes

import (
	"errors"
	"fmt"
	"math/big"

	"mccls/internal/batch"
	"mccls/internal/bn254"
	"mccls/internal/core"
)

// BatchItem is one signature to check in a batch: the claimed identity and
// public key alongside the message and the opaque signature bytes, exactly
// as System.Verify takes them.
type BatchItem struct {
	ID        string
	PublicKey []byte
	Msg       []byte
	Sig       []byte
}

// BatchSystem is implemented by systems whose verification equation
// aggregates across signatures — McCLS (single-pairing structure inherited
// from YCK) and YHG (its e(P_pub, Q_ID) factor folds across a batch). AP
// and ZWXF pair signature components with message-dependent G2 points and
// do not batch. All batch implementations route through the shared
// internal/batch engine: chunked aggregate checks, randomized 128-bit
// weights, and bisection that reports offending indices via *batch.Error
// (unwrapping to ErrVerifyFailed).
type BatchSystem interface {
	System
	BatchVerify(items []BatchItem) error
}

// translateBatchErr maps an underlying scheme's batch rejection onto the
// package's shared sentinels, preserving the offender list.
func translateBatchErr(err error) error {
	if err == nil {
		return nil
	}
	var be *batch.Error
	if errors.As(err, &be) {
		return &batch.Error{Bad: be.Bad, Cause: ErrVerifyFailed}
	}
	return fmt.Errorf("%w: %v", ErrVerifyFailed, err)
}

// BatchVerify checks a multi-signer McCLS batch through the core engine:
// one lockstep multi-pairing per chunk with per-identity G2 grouping.
func (sys *mcclsSystem) BatchVerify(items []BatchItem) error {
	return sys.BatchVerifyOpts(items, batch.Options{})
}

// BatchVerifyOpts is BatchVerify with explicit engine options.
func (sys *mcclsSystem) BatchVerifyOpts(items []BatchItem, opts batch.Options) error {
	n := len(items)
	pks := make([]*core.PublicKey, n)
	msgs := make([][]byte, n)
	sigs := make([]*core.Signature, n)
	for i, it := range items {
		pkBytes := make([]byte, 0, 8+len(it.ID)+len(it.PublicKey))
		pkBytes = appendU64(pkBytes, uint64(len(it.ID)))
		pkBytes = append(pkBytes, it.ID...)
		pkBytes = append(pkBytes, it.PublicKey...)
		pk, err := core.UnmarshalPublicKey(pkBytes)
		if err != nil {
			return fmt.Errorf("%w: item %d: %v", ErrMalformed, i, err)
		}
		sig, err := core.UnmarshalSignature(it.Sig)
		if err != nil {
			return fmt.Errorf("%w: item %d: %v", ErrMalformed, i, err)
		}
		pks[i], msgs[i], sigs[i] = pk, it.Msg, sig
	}
	err := sys.vf.Batch(core.BatchOptions{
		Workers:   opts.Workers,
		ChunkSize: opts.ChunkSize,
	}).VerifyMulti(pks, msgs, sigs)
	return translateBatchErr(err)
}

// BatchVerify checks a multi-signer YHG batch. The per-signature equation
// e(P, Vᵢ) = e(P_pub, Q_IDᵢ)·e(Uᵢ + hᵢ·P_IDᵢ, Tᵢ) aggregates, with random
// 128-bit weights ρᵢ, into
//
//	e(-P, Σ ρᵢ·Vᵢ) · e(P_pub, Σ_ID (Σᵢ∈ID ρᵢ)·Q_ID) · Π_T e(Σᵢ ρᵢ·(Uᵢ + hᵢ·P_IDᵢ), T) = 1
//
// — 2 + (#distinct keys) pairings per chunk instead of 2 per signature,
// evaluated as one lockstep multi-pairing.
func (sys *yhgSystem) BatchVerify(items []BatchItem) error {
	return sys.BatchVerifyOpts(items, batch.Options{})
}

// BatchVerifyOpts is BatchVerify with explicit engine options.
func (sys *yhgSystem) BatchVerifyOpts(items []BatchItem, opts batch.Options) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	w, err := batch.NewWeights(nil)
	if err != nil {
		return fmt.Errorf("schemes: %w", err)
	}
	type yhgPrep struct {
		groupKey string    // identity ‖ P_ID — one T per key
		a        *bn254.G1 // U + h·P_ID
		v        *bn254.G2
		rho      *big.Int
	}
	prep := make([]yhgPrep, n)
	qByID := make(map[string]*bn254.G2)
	tByGroup := make(map[string]*bn254.G2)
	for i, it := range items {
		if len(it.PublicKey) != 64 {
			return fmt.Errorf("%w: item %d: YHG public key wants 64 bytes", ErrMalformed, i)
		}
		if len(it.Sig) != 64+128 {
			return fmt.Errorf("%w: item %d: YHG signature wants 192 bytes", ErrMalformed, i)
		}
		var pid, uPt bn254.G1
		var v bn254.G2
		if err := pid.Unmarshal(it.PublicKey); err != nil {
			return fmt.Errorf("%w: item %d: %v", ErrMalformed, i, err)
		}
		if err := uPt.Unmarshal(it.Sig[:64]); err != nil {
			return fmt.Errorf("%w: item %d: %v", ErrMalformed, i, err)
		}
		if err := v.Unmarshal(it.Sig[64:]); err != nil {
			return fmt.Errorf("%w: item %d: %v", ErrMalformed, i, err)
		}
		h := yhgH(it.Msg, it.ID, &uPt, &pid)
		a := new(bn254.G1).ScalarMult(&pid, h)
		a.Add(a, &uPt)
		gk := it.ID + "\x00" + string(it.PublicKey)
		if _, ok := tByGroup[gk]; !ok {
			tByGroup[gk] = yhgT(it.ID, &pid)
		}
		if _, ok := qByID[it.ID]; !ok {
			qByID[it.ID] = bn254.HashToG2(yhgDomainH1, []byte(it.ID))
		}
		prep[i] = yhgPrep{groupKey: gk, a: a, v: &v, rho: w.At(i)}
	}
	negP := new(bn254.G1).Neg(bn254.G1Generator())
	check := func(idxs []int) bool {
		vSum := bn254.G2Infinity()
		rhoByID := make(map[string]*big.Int)
		idOrder := make([]string, 0, 4)
		aByGroup := make(map[string]*bn254.G1)
		groupOrder := make([]string, 0, 4)
		for _, i := range idxs {
			p := &prep[i]
			vSum.Add(vSum, new(bn254.G2).ScalarMult(p.v, p.rho))
			id := items[i].ID
			if sum, ok := rhoByID[id]; ok {
				sum.Add(sum, p.rho)
			} else {
				rhoByID[id] = new(big.Int).Set(p.rho)
				idOrder = append(idOrder, id)
			}
			wa := new(bn254.G1).ScalarMult(p.a, p.rho)
			if acc, ok := aByGroup[p.groupKey]; ok {
				acc.Add(acc, wa)
			} else {
				aByGroup[p.groupKey] = wa
				groupOrder = append(groupOrder, p.groupKey)
			}
		}
		qSum := bn254.G2Infinity()
		for _, id := range idOrder {
			sum := rhoByID[id].Mod(rhoByID[id], bn254.Order)
			qSum.Add(qSum, new(bn254.G2).ScalarMult(qByID[id], sum))
		}
		ps := []*bn254.G1{negP, sys.ppub}
		qs := []*bn254.G2{vSum, qSum}
		for _, gk := range groupOrder {
			ps = append(ps, aByGroup[gk])
			qs = append(qs, tByGroup[gk])
		}
		return bn254.PairingCheck(ps, qs)
	}
	checkOne := func(i int) bool {
		return sys.Verify(items[i].ID, items[i].PublicKey, items[i].Msg, items[i].Sig) == nil
	}
	bad, err := batch.Reject(n, opts, check, checkOne)
	if err != nil {
		return err
	}
	if len(bad) > 0 {
		return &batch.Error{Bad: bad, Cause: ErrVerifyFailed}
	}
	return nil
}
