package schemes

import (
	"fmt"
	"io"
	"math/big"

	"mccls/internal/bn254"
)

// ZWXF is the Zhang–Wong–Xu–Feng certificateless signature scheme
// (ACNS 2006), reconstructed to its published operation profile.
// Table 1 profile: sign 4s, verify 4p+3s, public key 1 point.
//
// Keys: Q_ID = H1(ID) ∈ G2, D_ID = s·Q_ID, secret x, P_ID = x·P ∈ G1.
// Sign: r ← Zr, U = r·P, W = H2(M,ID,U,P_ID) ∈ G2, W' = H3(M,ID,U,P_ID) ∈ G2,
// V = D_ID + r·W + x·W'. Signature (U, V).
// Verify: e(P, V) = e(P_pub, Q_ID)·e(U, W)·e(P_ID, W') — four pairings, none
// cacheable because W and W' depend on the message.
type ZWXF struct{}

// Profile reports the Table 1 operation counts.
func (ZWXF) Profile() Profile {
	return Profile{
		Name:              "ZWXF",
		SignPairings:      0,
		SignScalarMults:   4,
		VerifyPairings:    4,
		VerifyScalarMults: 3,
		VerifyExps:        0,
		PublicKeyPoints:   1,
	}
}

const (
	zwxfDomainH1 = "zwxf/H1"
	zwxfDomainH2 = "zwxf/H2"
	zwxfDomainH3 = "zwxf/H3"
)

type zwxfSystem struct {
	master *big.Int
	ppub   *bn254.G1
}

// Setup draws the master key and publishes P_pub = s·P.
func (ZWXF) Setup(rng io.Reader) (System, error) {
	s, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return &zwxfSystem{master: s, ppub: new(bn254.G1).ScalarBaseMult(s)}, nil
}

type zwxfUser struct {
	id  string
	d   *bn254.G2 // D_ID = s·Q_ID
	x   *big.Int
	pid *bn254.G1 // P_ID = x·P
}

func (sys *zwxfSystem) NewUser(id string, rng io.Reader) (User, error) {
	q := bn254.HashToG2(zwxfDomainH1, []byte(id))
	x, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return &zwxfUser{
		id:  id,
		d:   new(bn254.G2).ScalarMult(q, sys.master),
		x:   x,
		pid: new(bn254.G1).ScalarBaseMult(x),
	}, nil
}

func (u *zwxfUser) ID() string        { return u.id }
func (u *zwxfUser) PublicKey() []byte { return u.pid.Marshal() }

// zwxfBind serialises the tuple (M, ID, U, P_ID) hashed by H2 and H3.
func zwxfBind(msg []byte, id string, uPt, pid *bn254.G1) []byte {
	buf := append([]byte{}, msg...)
	buf = append(buf, 0)
	buf = append(buf, id...)
	buf = append(buf, uPt.Marshal()...)
	return append(buf, pid.Marshal()...)
}

// Sign produces (U, V) with four scalar multiplications and no pairings.
func (u *zwxfUser) Sign(msg []byte, rng io.Reader) ([]byte, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	uPt := new(bn254.G1).ScalarBaseMult(r)
	bind := zwxfBind(msg, u.id, uPt, u.pid)
	w := bn254.HashToG2(zwxfDomainH2, bind)
	wp := bn254.HashToG2(zwxfDomainH3, bind)
	v := new(bn254.G2).ScalarMult(w, r)
	v.Add(v, new(bn254.G2).ScalarMult(wp, u.x))
	v.Add(v, u.d)
	return append(uPt.Marshal(), v.Marshal()...), nil
}

// Verify checks e(P, V) = e(P_pub, Q_ID)·e(U, W)·e(P_ID, W') as a single
// four-pairing product.
func (sys *zwxfSystem) Verify(id string, publicKey, msg, sig []byte) error {
	if len(publicKey) != 64 {
		return fmt.Errorf("%w: ZWXF public key wants 64 bytes", ErrMalformed)
	}
	if len(sig) != 64+128 {
		return fmt.Errorf("%w: ZWXF signature wants 192 bytes", ErrMalformed)
	}
	var pid, uPt bn254.G1
	if err := pid.Unmarshal(publicKey); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := uPt.Unmarshal(sig[:64]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	var v bn254.G2
	if err := v.Unmarshal(sig[64:]); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	q := bn254.HashToG2(zwxfDomainH1, []byte(id))
	bind := zwxfBind(msg, id, &uPt, &pid)
	w := bn254.HashToG2(zwxfDomainH2, bind)
	wp := bn254.HashToG2(zwxfDomainH3, bind)
	negP := new(bn254.G1).Neg(bn254.G1Generator())
	if !bn254.PairingCheck(
		[]*bn254.G1{negP, sys.ppub, &uPt, &pid},
		[]*bn254.G2{&v, q, w, wp},
	) {
		return ErrVerifyFailed
	}
	return nil
}
