package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestStatic(t *testing.T) {
	s := &Static{Points: []Point{{1, 2}, {3, 4}}}
	if s.Nodes() != 2 {
		t.Fatal("wrong node count")
	}
	if p := s.Position(1, time.Hour); p != (Point{3, 4}) {
		t.Fatalf("static node moved: %v", p)
	}
}

func TestRandomWaypointBounds(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1500, Height: 300, MaxSpeed: 20}
	m := NewRandomWaypoint(cfg, 20, 900*time.Second, rand.New(rand.NewSource(7)))
	if m.Nodes() != 20 {
		t.Fatal("wrong node count")
	}
	for node := 0; node < m.Nodes(); node++ {
		for ts := time.Duration(0); ts <= 900*time.Second; ts += 9 * time.Second {
			p := m.Position(node, ts)
			if p.X < 0 || p.X > 1500 || p.Y < 0 || p.Y > 300 {
				t.Fatalf("node %d left the field at %v: %v", node, ts, p)
			}
		}
	}
}

func TestRandomWaypointSpeedRespected(t *testing.T) {
	const maxSpeed = 10.0
	cfg := RandomWaypointConfig{Width: 1000, Height: 1000, MaxSpeed: maxSpeed}
	m := NewRandomWaypoint(cfg, 5, 300*time.Second, rand.New(rand.NewSource(3)))
	const step = 100 * time.Millisecond
	for node := 0; node < 5; node++ {
		prev := m.Position(node, 0)
		for ts := step; ts <= 300*time.Second; ts += step {
			cur := m.Position(node, ts)
			dist := cur.Dist(prev)
			speed := dist / step.Seconds()
			// Allow a whisker of slack for waypoint-corner interpolation.
			if speed > maxSpeed*1.05 {
				t.Fatalf("node %d moved at %.2f m/s (> %v)", node, speed, maxSpeed)
			}
			prev = cur
		}
	}
}

func TestRandomWaypointZeroSpeedStatic(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 500, Height: 500, MaxSpeed: 0}
	m := NewRandomWaypoint(cfg, 3, time.Minute, rand.New(rand.NewSource(1)))
	for node := 0; node < 3; node++ {
		p0 := m.Position(node, 0)
		p1 := m.Position(node, 30*time.Second)
		if p0 != p1 {
			t.Fatalf("node %d moved despite MaxSpeed=0", node)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1000, Height: 1000, MaxSpeed: 20}
	m := NewRandomWaypoint(cfg, 3, 5*time.Minute, rand.New(rand.NewSource(9)))
	for node := 0; node < 3; node++ {
		if m.Position(node, 0) == m.Position(node, time.Minute) {
			t.Fatalf("node %d never moved", node)
		}
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1000, Height: 300, MaxSpeed: 15, Pause: time.Second}
	a := NewRandomWaypoint(cfg, 4, time.Minute, rand.New(rand.NewSource(5)))
	b := NewRandomWaypoint(cfg, 4, time.Minute, rand.New(rand.NewSource(5)))
	for node := 0; node < 4; node++ {
		for ts := time.Duration(0); ts < time.Minute; ts += 777 * time.Millisecond {
			if a.Position(node, ts) != b.Position(node, ts) {
				t.Fatal("same seed produced different trajectories")
			}
		}
	}
}

// TestLegMatchesPosition pins the Leg/Position contract on every leg-based
// model: at any t the position is the linear interpolation of the active
// leg, and walking legs from 0 always makes progress.
func TestLegMatchesPosition(t *testing.T) {
	horizon := 120 * time.Second
	models := map[string]Model{
		"rwp": NewRandomWaypoint(RandomWaypointConfig{Width: 1000, Height: 500, MaxSpeed: 20, Pause: time.Second},
			6, horizon, rand.New(rand.NewSource(11))),
		"manhattan": NewManhattanGrid(ManhattanGridConfig{Width: 1000, Height: 500, Spacing: 100, MaxSpeed: 15},
			6, horizon, rand.New(rand.NewSource(11))),
		"highway": NewHighway(HighwayConfig{Length: 2000, MinSpeed: 20, MaxSpeed: 33},
			6, horizon, rand.New(rand.NewSource(11))),
		"static": &Static{Points: []Point{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}}},
	}
	for name, m := range models {
		for node := 0; node < m.Nodes(); node++ {
			for ts := time.Duration(0); ts <= horizon+10*time.Second; ts += 1337 * time.Millisecond {
				from, to, t0, t1 := m.Leg(node, ts)
				if t1 < ts || t0 > ts {
					t.Fatalf("%s node %d: leg [%v,%v] does not cover t=%v", name, node, t0, t1, ts)
				}
				var want Point
				if t1 <= t0 || t1 == Forever && ts >= t0 {
					want = to
					if ts == t0 {
						want = from
					}
				}
				if t1 > t0 && t1 != Forever {
					frac := float64(ts-t0) / float64(t1-t0)
					want = Point{X: from.X + (to.X-from.X)*frac, Y: from.Y + (to.Y-from.Y)*frac}
				}
				got := m.Position(node, ts)
				if got.Dist(want) > 1e-6 {
					t.Fatalf("%s node %d t=%v: Position=%v but leg lerp=%v", name, node, ts, got, want)
				}
			}
			// Walking the legs from 0 terminates (every step advances).
			ts := time.Duration(0)
			for steps := 0; ts < horizon; steps++ {
				if steps > 100000 {
					t.Fatalf("%s node %d: leg walk did not terminate", name, node)
				}
				_, _, _, t1 := m.Leg(node, ts)
				if t1 <= ts {
					t.Fatalf("%s node %d: leg walk stalled at t=%v (t1=%v)", name, node, ts, t1)
				}
				ts = t1
			}
		}
	}
}

func TestManhattanGridStaysOnStreets(t *testing.T) {
	const spacing = 100.0
	cfg := ManhattanGridConfig{Width: 1000, Height: 600, Spacing: spacing, MaxSpeed: 15}
	m := NewManhattanGrid(cfg, 20, 300*time.Second, rand.New(rand.NewSource(4)))
	onStreet := func(v float64) bool {
		_, frac := math.Modf(v / spacing)
		return frac < 1e-9 || frac > 1-1e-9
	}
	for node := 0; node < m.Nodes(); node++ {
		for ts := time.Duration(0); ts <= 300*time.Second; ts += 731 * time.Millisecond {
			p := m.Position(node, ts)
			if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 600 {
				t.Fatalf("node %d left the field at %v: %v", node, ts, p)
			}
			if !onStreet(p.X) && !onStreet(p.Y) {
				t.Fatalf("node %d off-street at %v: %v", node, ts, p)
			}
		}
	}
}

func TestManhattanGridMovesAndIsDeterministic(t *testing.T) {
	cfg := ManhattanGridConfig{Width: 800, Height: 800, MaxSpeed: 10}
	a := NewManhattanGrid(cfg, 5, 2*time.Minute, rand.New(rand.NewSource(6)))
	b := NewManhattanGrid(cfg, 5, 2*time.Minute, rand.New(rand.NewSource(6)))
	for node := 0; node < 5; node++ {
		if a.Position(node, 0) == a.Position(node, time.Minute) {
			t.Fatalf("node %d never moved", node)
		}
		for ts := time.Duration(0); ts < 2*time.Minute; ts += 777 * time.Millisecond {
			if a.Position(node, ts) != b.Position(node, ts) {
				t.Fatal("same seed produced different trajectories")
			}
		}
	}
}

func TestHighwayLanesAndWrap(t *testing.T) {
	cfg := HighwayConfig{Length: 1000, Lanes: 4, LaneWidth: 5, MinSpeed: 25, MaxSpeed: 25}
	m := NewHighway(cfg, 8, 2*time.Minute, rand.New(rand.NewSource(2)))
	for node := 0; node < m.Nodes(); node++ {
		lane := node % 4
		wantY := (float64(lane) + 0.5) * 5
		east := lane%2 == 0
		prev := m.Position(node, 0)
		for ts := 100 * time.Millisecond; ts <= 2*time.Minute; ts += 100 * time.Millisecond {
			p := m.Position(node, ts)
			if p.Y != wantY {
				t.Fatalf("node %d drifted off lane %d: y=%v want %v", node, lane, p.Y, wantY)
			}
			if p.X < 0 || p.X > 1000 {
				t.Fatalf("node %d off the highway: x=%v", node, p.X)
			}
			dx := p.X - prev.X
			// At 25 m/s a 100 ms step moves 2.5 m in the lane direction,
			// except across a wrap where the sign flips by nearly -Length.
			if east && dx < 0 && dx > -900 {
				t.Fatalf("eastbound node %d moved backwards: dx=%v at %v", node, dx, ts)
			}
			if !east && dx > 0 && dx < 900 {
				t.Fatalf("westbound node %d moved backwards: dx=%v at %v", node, dx, ts)
			}
			prev = p
		}
	}
}

func TestHighwaySpeedConstant(t *testing.T) {
	cfg := HighwayConfig{Length: 5000, Lanes: 2, MinSpeed: 10, MaxSpeed: 30}
	m := NewHighway(cfg, 4, time.Minute, rand.New(rand.NewSource(8)))
	for node := 0; node < 4; node++ {
		p0 := m.Position(node, 10*time.Second)
		p1 := m.Position(node, 11*time.Second)
		p2 := m.Position(node, 12*time.Second)
		v01, v12 := p0.Dist(p1), p1.Dist(p2)
		// Constant cruise speed away from wraps (5 km highway, ≤30 m/s, so
		// t∈[10s,12s] cannot wrap for nodes starting in the middle; allow a
		// wrap by skipping implausible jumps).
		if v01 > 100 || v12 > 100 {
			continue
		}
		if math.Abs(v01-v12) > 1e-6 {
			t.Fatalf("node %d speed varied: %v then %v m/s", node, v01, v12)
		}
		if v01 < 10-1e-9 || v01 > 30+1e-9 {
			t.Fatalf("node %d cruise speed %v outside [10,30]", node, v01)
		}
	}
}

func TestStaticLegOpenEnded(t *testing.T) {
	s := &Static{Points: []Point{{1, 2}}}
	from, to, t0, t1 := s.Leg(0, time.Hour)
	if from != (Point{1, 2}) || to != from || t0 != 0 || t1 != Forever {
		t.Fatalf("static leg = (%v,%v,%v,%v)", from, to, t0, t1)
	}
}

func TestRandomWaypointBeyondHorizonHolds(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 100, Height: 100, MaxSpeed: 5}
	m := NewRandomWaypoint(cfg, 1, 10*time.Second, rand.New(rand.NewSource(2)))
	// The final leg may extend past the horizon; once it completes the node
	// holds its last waypoint forever.
	p1 := m.Position(0, 10*time.Hour)
	p2 := m.Position(0, 20*time.Hour)
	if p1 != p2 {
		t.Fatal("position changed beyond horizon")
	}
}
