package mobility

import (
	"math/rand"
	"testing"
	"time"
)

func TestStatic(t *testing.T) {
	s := &Static{Points: []Point{{1, 2}, {3, 4}}}
	if s.Nodes() != 2 {
		t.Fatal("wrong node count")
	}
	if p := s.Position(1, time.Hour); p != (Point{3, 4}) {
		t.Fatalf("static node moved: %v", p)
	}
}

func TestRandomWaypointBounds(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1500, Height: 300, MaxSpeed: 20}
	m := NewRandomWaypoint(cfg, 20, 900*time.Second, rand.New(rand.NewSource(7)))
	if m.Nodes() != 20 {
		t.Fatal("wrong node count")
	}
	for node := 0; node < m.Nodes(); node++ {
		for ts := time.Duration(0); ts <= 900*time.Second; ts += 9 * time.Second {
			p := m.Position(node, ts)
			if p.X < 0 || p.X > 1500 || p.Y < 0 || p.Y > 300 {
				t.Fatalf("node %d left the field at %v: %v", node, ts, p)
			}
		}
	}
}

func TestRandomWaypointSpeedRespected(t *testing.T) {
	const maxSpeed = 10.0
	cfg := RandomWaypointConfig{Width: 1000, Height: 1000, MaxSpeed: maxSpeed}
	m := NewRandomWaypoint(cfg, 5, 300*time.Second, rand.New(rand.NewSource(3)))
	const step = 100 * time.Millisecond
	for node := 0; node < 5; node++ {
		prev := m.Position(node, 0)
		for ts := step; ts <= 300*time.Second; ts += step {
			cur := m.Position(node, ts)
			dist := cur.Dist(prev)
			speed := dist / step.Seconds()
			// Allow a whisker of slack for waypoint-corner interpolation.
			if speed > maxSpeed*1.05 {
				t.Fatalf("node %d moved at %.2f m/s (> %v)", node, speed, maxSpeed)
			}
			prev = cur
		}
	}
}

func TestRandomWaypointZeroSpeedStatic(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 500, Height: 500, MaxSpeed: 0}
	m := NewRandomWaypoint(cfg, 3, time.Minute, rand.New(rand.NewSource(1)))
	for node := 0; node < 3; node++ {
		p0 := m.Position(node, 0)
		p1 := m.Position(node, 30*time.Second)
		if p0 != p1 {
			t.Fatalf("node %d moved despite MaxSpeed=0", node)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1000, Height: 1000, MaxSpeed: 20}
	m := NewRandomWaypoint(cfg, 3, 5*time.Minute, rand.New(rand.NewSource(9)))
	for node := 0; node < 3; node++ {
		if m.Position(node, 0) == m.Position(node, time.Minute) {
			t.Fatalf("node %d never moved", node)
		}
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 1000, Height: 300, MaxSpeed: 15, Pause: time.Second}
	a := NewRandomWaypoint(cfg, 4, time.Minute, rand.New(rand.NewSource(5)))
	b := NewRandomWaypoint(cfg, 4, time.Minute, rand.New(rand.NewSource(5)))
	for node := 0; node < 4; node++ {
		for ts := time.Duration(0); ts < time.Minute; ts += 777 * time.Millisecond {
			if a.Position(node, ts) != b.Position(node, ts) {
				t.Fatal("same seed produced different trajectories")
			}
		}
	}
}

func TestRandomWaypointBeyondHorizonHolds(t *testing.T) {
	cfg := RandomWaypointConfig{Width: 100, Height: 100, MaxSpeed: 5}
	m := NewRandomWaypoint(cfg, 1, 10*time.Second, rand.New(rand.NewSource(2)))
	// The final leg may extend past the horizon; once it completes the node
	// holds its last waypoint forever.
	p1 := m.Position(0, 10*time.Hour)
	p2 := m.Position(0, 20*time.Hour)
	if p1 != p2 {
		t.Fatal("position changed beyond horizon")
	}
}
