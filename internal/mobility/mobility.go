// Package mobility provides node-mobility models for the MANET simulator.
// The paper's evaluation uses the random waypoint model in a rectangular
// field with zero pause time and maximum speeds swept from 0 to 20 m/s;
// RandomWaypoint implements exactly that. The city-scale extensions add
// ManhattanGrid (vehicles on a street grid with probabilistic turns) and
// Highway (multi-lane bidirectional traffic with wrap-around), the two
// canonical VANET mobility patterns. Positions are precomputed as
// piecewise-linear legs, so lookups are pure functions of time, the whole
// trajectory is deterministic given the seed, and consumers (the radio
// medium's spatial index) can bound where a node will be over a time window
// through the Leg view.
package mobility

import (
	"math"
	"math/rand"
	"time"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Forever is the open-ended leg horizon: a Leg whose t1 is Forever holds its
// destination for the rest of the simulation.
const Forever = time.Duration(math.MaxInt64)

// Model yields node positions over virtual time.
type Model interface {
	// Position returns the location of node at virtual time t.
	Position(node int, t time.Duration) Point
	// Nodes returns the number of nodes the model covers.
	Nodes() int
	// Leg returns the linear trajectory segment active at time t: the node
	// moves from `from` (reached at t0) to `to` (reached at t1) at constant
	// velocity, so Position(node, u) for u in [t0, t1] is the linear
	// interpolation between the endpoints. t0 <= t <= t1 holds for
	// trajectory-aware models; a model without trajectory knowledge returns
	// the degenerate leg (p, p, t, t) with p = Position(node, t), which
	// consumers treat as "instantaneous information only".
	Leg(node int, t time.Duration) (from, to Point, t0, t1 time.Duration)
}

// leg is one linear segment of a trajectory: the node moves from From at
// time Start, reaching To at time End, then the next leg applies. A pause
// is a leg with From == To; a wrap/teleport is a leg with Start == End.
type leg struct {
	start, end time.Duration
	from, to   Point
}

// legModel is the shared engine of every precomputed piecewise-linear
// mobility model: per-node leg lists plus binary-search Position and Leg
// lookups. RandomWaypoint, ManhattanGrid and Highway all embed it and only
// differ in how they generate the legs.
type legModel struct {
	legs [][]leg
}

// Nodes returns the number of nodes the model covers.
func (m *legModel) Nodes() int { return len(m.legs) }

// find returns the index of the leg active at time t (the first leg whose
// end is >= t), assuming t lies strictly inside the trajectory span.
func (m *legModel) find(node int, t time.Duration) int {
	ls := m.legs[node]
	lo, hi := 0, len(ls)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ls[mid].end < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Position returns the location of node at time t by binary search over its
// legs followed by linear interpolation.
func (m *legModel) Position(node int, t time.Duration) Point {
	ls := m.legs[node]
	if len(ls) == 0 {
		return Point{}
	}
	if t <= ls[0].start {
		return ls[0].from
	}
	last := ls[len(ls)-1]
	if t >= last.end {
		return last.to
	}
	l := ls[m.find(node, t)]
	if l.end == l.start {
		return l.to
	}
	frac := float64(t-l.start) / float64(l.end-l.start)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return Point{
		X: l.from.X + (l.to.X-l.from.X)*frac,
		Y: l.from.Y + (l.to.Y-l.from.Y)*frac,
	}
}

// Leg returns the trajectory segment covering [t, t1): the first leg whose
// end lies strictly after t, so callers walking a trajectory window always
// make progress and zero-duration legs (wrap-around teleports) are stepped
// over, surfacing as a `from` discontinuity on the following leg. Before the
// first leg and after the last, the node holds its position, reported as a
// degenerate open-ended leg.
func (m *legModel) Leg(node int, t time.Duration) (from, to Point, t0, t1 time.Duration) {
	ls := m.legs[node]
	if len(ls) == 0 {
		return Point{}, Point{}, 0, Forever
	}
	if t < ls[0].start {
		return ls[0].from, ls[0].from, 0, ls[0].start
	}
	last := ls[len(ls)-1]
	if t >= last.end {
		return last.to, last.to, last.end, Forever
	}
	// First leg with end > t (strict): t >= last.end was excluded above.
	lo, hi := 0, len(ls)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ls[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l := ls[lo]
	return l.from, l.to, l.start, l.end
}

// RandomWaypoint is the classic random waypoint model: each node repeatedly
// picks a uniform destination in the field and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses for Pause,
// and repeats.
type RandomWaypoint struct {
	legModel
}

// RandomWaypointConfig parameterizes the model.
type RandomWaypointConfig struct {
	// Width and Height are the field dimensions in meters.
	Width, Height float64
	// MinSpeed and MaxSpeed bound the per-leg speed in m/s. MaxSpeed == 0
	// makes all nodes static at their initial positions.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

// NewRandomWaypoint precomputes trajectories for n nodes up to the horizon.
// Positions requested beyond the horizon hold the last waypoint.
func NewRandomWaypoint(cfg RandomWaypointConfig, n int, horizon time.Duration, rng *rand.Rand) *RandomWaypoint {
	m := &RandomWaypoint{legModel{legs: make([][]leg, n)}}
	for node := 0; node < n; node++ {
		pos := Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		var ls []leg
		now := time.Duration(0)
		if cfg.MaxSpeed <= 0 {
			ls = append(ls, leg{start: 0, end: horizon, from: pos, to: pos})
		}
		for now < horizon && cfg.MaxSpeed > 0 {
			dst := Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
			minSpeed := cfg.MinSpeed
			if minSpeed <= 0 {
				// Avoid the classic RWP speed-decay pathology of
				// near-zero speeds.
				minSpeed = math.Min(0.1, cfg.MaxSpeed)
			}
			speed := minSpeed + rng.Float64()*(cfg.MaxSpeed-minSpeed)
			travel := time.Duration(pos.Dist(dst) / speed * float64(time.Second))
			ls = append(ls, leg{start: now, end: now + travel, from: pos, to: dst})
			now += travel
			if cfg.Pause > 0 && now < horizon {
				ls = append(ls, leg{start: now, end: now + cfg.Pause, from: dst, to: dst})
				now += cfg.Pause
			}
			pos = dst
		}
		m.legs[node] = ls
	}
	return m
}

// ManhattanGridConfig parameterizes the Manhattan mobility model: vehicles
// constrained to a grid of orthogonal streets, turning probabilistically at
// intersections — the standard urban VANET pattern.
type ManhattanGridConfig struct {
	// Width and Height are the field dimensions in meters; streets run
	// every Spacing meters in both axes (default 100 m blocks).
	Width, Height, Spacing float64
	// MinSpeed and MaxSpeed bound the per-block speed in m/s. MaxSpeed == 0
	// parks every vehicle at its starting intersection.
	MinSpeed, MaxSpeed float64
	// StraightProb is the probability of continuing straight at an
	// intersection where straight is possible (default 0.5); the remainder
	// splits uniformly over the available turns. U-turns happen only at
	// dead ends.
	StraightProb float64
}

func (cfg ManhattanGridConfig) withDefaults() ManhattanGridConfig {
	if cfg.Spacing <= 0 {
		cfg.Spacing = 100
	}
	if cfg.StraightProb <= 0 {
		cfg.StraightProb = 0.5
	}
	return cfg
}

// ManhattanGrid moves nodes along a grid of orthogonal streets: one block
// per leg, a probabilistic direction choice at every intersection, a fresh
// uniform speed per block.
type ManhattanGrid struct {
	legModel
}

// manhattan direction vectors: east, north, west, south (grid steps).
var manhattanDirs = [4][2]int{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}

// NewManhattanGrid precomputes trajectories for n nodes up to the horizon.
// Vehicles start at uniformly drawn intersections.
func NewManhattanGrid(cfg ManhattanGridConfig, n int, horizon time.Duration, rng *rand.Rand) *ManhattanGrid {
	cfg = cfg.withDefaults()
	// Intersections live at (i*Spacing, j*Spacing) for i in [0, nx],
	// j in [0, ny]; a degenerate axis (field thinner than one block)
	// still leaves a single street along the other axis.
	nx := int(cfg.Width / cfg.Spacing)
	ny := int(cfg.Height / cfg.Spacing)
	m := &ManhattanGrid{legModel{legs: make([][]leg, n)}}
	for node := 0; node < n; node++ {
		ix, iy := rng.Intn(nx+1), rng.Intn(ny+1)
		pos := Point{X: float64(ix) * cfg.Spacing, Y: float64(iy) * cfg.Spacing}
		var ls []leg
		if cfg.MaxSpeed <= 0 || (nx == 0 && ny == 0) {
			m.legs[node] = append(ls, leg{start: 0, end: horizon, from: pos, to: pos})
			continue
		}
		dir := rng.Intn(4)
		now := time.Duration(0)
		for now < horizon {
			dir = nextManhattanDir(rng, cfg.StraightProb, dir, ix, iy, nx, ny)
			ix += manhattanDirs[dir][0]
			iy += manhattanDirs[dir][1]
			dst := Point{X: float64(ix) * cfg.Spacing, Y: float64(iy) * cfg.Spacing}
			minSpeed := cfg.MinSpeed
			if minSpeed <= 0 {
				minSpeed = math.Min(0.1, cfg.MaxSpeed)
			}
			speed := minSpeed + rng.Float64()*(cfg.MaxSpeed-minSpeed)
			travel := time.Duration(pos.Dist(dst) / speed * float64(time.Second))
			ls = append(ls, leg{start: now, end: now + travel, from: pos, to: dst})
			now += travel
			pos = dst
		}
		m.legs[node] = ls
	}
	return m
}

// nextManhattanDir draws the direction taken out of intersection (ix, iy) by
// a vehicle that arrived heading dir: straight with StraightProb when the
// grid allows it, otherwise a uniform choice among the available turns,
// U-turning only at dead ends.
func nextManhattanDir(rng *rand.Rand, straightProb float64, dir, ix, iy, nx, ny int) int {
	ok := func(d int) bool {
		jx, jy := ix+manhattanDirs[d][0], iy+manhattanDirs[d][1]
		return jx >= 0 && jx <= nx && jy >= 0 && jy <= ny
	}
	reverse := (dir + 2) % 4
	if ok(dir) && rng.Float64() < straightProb {
		return dir
	}
	// Collect the turns (and straight, when it lost the draw above but a
	// turn is impossible) in fixed order for determinism.
	var turns []int
	for _, d := range [2]int{(dir + 1) % 4, (dir + 3) % 4} {
		if ok(d) {
			turns = append(turns, d)
		}
	}
	if len(turns) == 0 {
		if ok(dir) {
			return dir
		}
		return reverse // dead end
	}
	return turns[rng.Intn(len(turns))]
}

// HighwayConfig parameterizes the highway mobility model: a straight
// multi-lane road with half the lanes flowing each way and wrap-around at
// the ends, the standard freeway VANET pattern.
type HighwayConfig struct {
	// Length is the highway length in meters; LaneWidth separates adjacent
	// lanes (default 5 m). Lanes is the lane count (default 4); even lane
	// indices flow east (+x), odd ones west.
	Length, LaneWidth float64
	Lanes             int
	// MinSpeed and MaxSpeed bound each vehicle's cruise speed in m/s;
	// a vehicle keeps one speed for the whole run. MaxSpeed == 0 parks
	// every vehicle.
	MinSpeed, MaxSpeed float64
}

func (cfg HighwayConfig) withDefaults() HighwayConfig {
	if cfg.Length <= 0 {
		cfg.Length = 1000
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.LaneWidth <= 0 {
		cfg.LaneWidth = 5
	}
	return cfg
}

// Highway moves nodes along a straight multi-lane road at constant per-node
// speed, wrapping from one end to the other (an instantaneous teleport leg)
// so density stays stationary over time.
type Highway struct {
	legModel
}

// NewHighway precomputes trajectories for n nodes up to the horizon.
// Vehicles are dealt round-robin onto lanes at uniform starting offsets.
func NewHighway(cfg HighwayConfig, n int, horizon time.Duration, rng *rand.Rand) *Highway {
	cfg = cfg.withDefaults()
	m := &Highway{legModel{legs: make([][]leg, n)}}
	for node := 0; node < n; node++ {
		lane := node % cfg.Lanes
		y := (float64(lane) + 0.5) * cfg.LaneWidth
		x := rng.Float64() * cfg.Length
		east := lane%2 == 0
		pos := Point{X: x, Y: y}
		var ls []leg
		if cfg.MaxSpeed <= 0 {
			m.legs[node] = append(ls, leg{start: 0, end: horizon, from: pos, to: pos})
			continue
		}
		minSpeed := cfg.MinSpeed
		if minSpeed <= 0 {
			minSpeed = math.Min(0.1, cfg.MaxSpeed)
		}
		speed := minSpeed + rng.Float64()*(cfg.MaxSpeed-minSpeed)
		now := time.Duration(0)
		for now < horizon {
			var edge Point
			if east {
				edge = Point{X: cfg.Length, Y: y}
			} else {
				edge = Point{X: 0, Y: y}
			}
			travel := time.Duration(pos.Dist(edge) / speed * float64(time.Second))
			ls = append(ls, leg{start: now, end: now + travel, from: pos, to: edge})
			now += travel
			// Wrap to the opposite end: a zero-duration teleport leg keeps
			// the trajectory piecewise-linear.
			pos = Point{X: cfg.Length - edge.X, Y: y}
			ls = append(ls, leg{start: now, end: now, from: edge, to: pos})
		}
		m.legs[node] = ls
	}
	return m
}

// Static places nodes at fixed positions; useful for unit tests and
// hand-built topologies.
type Static struct {
	Points []Point
}

// Nodes returns the number of nodes the model covers.
func (s *Static) Nodes() int { return len(s.Points) }

// Position returns the fixed location of node.
func (s *Static) Position(node int, _ time.Duration) Point { return s.Points[node] }

// Leg reports the open-ended zero-velocity leg of a fixed node.
func (s *Static) Leg(node int, _ time.Duration) (from, to Point, t0, t1 time.Duration) {
	p := s.Points[node]
	return p, p, 0, Forever
}
