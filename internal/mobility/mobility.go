// Package mobility provides node-mobility models for the MANET simulator.
// The paper's evaluation uses the random waypoint model in a rectangular
// field with zero pause time and maximum speeds swept from 0 to 20 m/s;
// RandomWaypoint implements exactly that. Positions are precomputed as
// piecewise-linear legs, so lookups are pure functions of time and the
// whole trajectory is deterministic given the seed.
package mobility

import (
	"math"
	"math/rand"
	"time"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Model yields node positions over virtual time.
type Model interface {
	// Position returns the location of node at virtual time t.
	Position(node int, t time.Duration) Point
	// Nodes returns the number of nodes the model covers.
	Nodes() int
}

// leg is one linear segment of a trajectory: the node moves from From at
// time Start, reaching To at time End, then the next leg applies. A pause
// is a leg with From == To.
type leg struct {
	start, end time.Duration
	from, to   Point
}

// RandomWaypoint is the classic random waypoint model: each node repeatedly
// picks a uniform destination in the field and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses for Pause,
// and repeats.
type RandomWaypoint struct {
	legs [][]leg
}

// RandomWaypointConfig parameterizes the model.
type RandomWaypointConfig struct {
	// Width and Height are the field dimensions in meters.
	Width, Height float64
	// MinSpeed and MaxSpeed bound the per-leg speed in m/s. MaxSpeed == 0
	// makes all nodes static at their initial positions.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

// NewRandomWaypoint precomputes trajectories for n nodes up to the horizon.
// Positions requested beyond the horizon hold the last waypoint.
func NewRandomWaypoint(cfg RandomWaypointConfig, n int, horizon time.Duration, rng *rand.Rand) *RandomWaypoint {
	m := &RandomWaypoint{legs: make([][]leg, n)}
	for node := 0; node < n; node++ {
		pos := Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		var ls []leg
		now := time.Duration(0)
		if cfg.MaxSpeed <= 0 {
			ls = append(ls, leg{start: 0, end: horizon, from: pos, to: pos})
		}
		for now < horizon && cfg.MaxSpeed > 0 {
			dst := Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
			minSpeed := cfg.MinSpeed
			if minSpeed <= 0 {
				// Avoid the classic RWP speed-decay pathology of
				// near-zero speeds.
				minSpeed = math.Min(0.1, cfg.MaxSpeed)
			}
			speed := minSpeed + rng.Float64()*(cfg.MaxSpeed-minSpeed)
			travel := time.Duration(pos.Dist(dst) / speed * float64(time.Second))
			ls = append(ls, leg{start: now, end: now + travel, from: pos, to: dst})
			now += travel
			if cfg.Pause > 0 && now < horizon {
				ls = append(ls, leg{start: now, end: now + cfg.Pause, from: dst, to: dst})
				now += cfg.Pause
			}
			pos = dst
		}
		m.legs[node] = ls
	}
	return m
}

// Nodes returns the number of nodes the model covers.
func (m *RandomWaypoint) Nodes() int { return len(m.legs) }

// Position returns the location of node at time t by binary search over its
// legs followed by linear interpolation.
func (m *RandomWaypoint) Position(node int, t time.Duration) Point {
	ls := m.legs[node]
	if len(ls) == 0 {
		return Point{}
	}
	if t <= ls[0].start {
		return ls[0].from
	}
	last := ls[len(ls)-1]
	if t >= last.end {
		return last.to
	}
	lo, hi := 0, len(ls)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ls[mid].end < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l := ls[lo]
	if l.end == l.start {
		return l.to
	}
	frac := float64(t-l.start) / float64(l.end-l.start)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return Point{
		X: l.from.X + (l.to.X-l.from.X)*frac,
		Y: l.from.Y + (l.to.Y-l.from.Y)*frac,
	}
}

// Static places nodes at fixed positions; useful for unit tests and
// hand-built topologies.
type Static struct {
	Points []Point
}

// Nodes returns the number of nodes the model covers.
func (s *Static) Nodes() int { return len(s.Points) }

// Position returns the fixed location of node.
func (s *Static) Position(node int, _ time.Duration) Point { return s.Points[node] }
