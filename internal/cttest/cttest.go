// Package cttest is a dudect-style timing-leak smoke harness (Reparaz,
// Balasch, Verbauwhede: "Dude, is my code constant time?", DATE 2017).
// Instead of proving constant-timeness statically, it measures the same
// operation over two input classes — one fixed, one random — in randomly
// interleaved order and applies Welch's t-test to the two timing
// populations. Input-dependent branches or table lookups show up as a
// class-dependent shift in the distribution and drive |t| up; an
// implementation whose schedule is independent of its operands keeps t
// small no matter how long the test runs.
//
// This is a regression smoke, not a verdict: thresholds are deliberately
// generous so scheduler noise on shared CI runners does not flake, and a
// pass only means "no large, obvious leak". The useful property is the
// other direction — reintroducing a data-dependent early exit into the
// Fp kernels moves t by orders of magnitude, which the smoke catches.
package cttest

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Samples holds per-class timing observations in nanoseconds.
// Class 0 is the fixed-input class, class 1 the random-input class.
type Samples struct {
	Fixed  []float64
	Random []float64
}

// Collect runs measure n times per class in a randomly interleaved
// schedule (derived from seed) and records the wall-clock duration of
// each call. measure(class) must perform the same amount of work for
// both classes apart from the input values themselves — typically a
// fixed-length loop over pre-generated inputs. A short warmup of each
// class runs untimed first.
func Collect(n int, seed int64, measure func(class int)) Samples {
	schedule := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		schedule = append(schedule, 0, 1)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(schedule), func(i, j int) {
		schedule[i], schedule[j] = schedule[j], schedule[i]
	})
	for i := 0; i < 3; i++ {
		measure(0)
		measure(1)
	}
	s := Samples{
		Fixed:  make([]float64, 0, n),
		Random: make([]float64, 0, n),
	}
	for _, class := range schedule {
		start := time.Now()
		measure(class)
		dt := float64(time.Since(start).Nanoseconds())
		if class == 0 {
			s.Fixed = append(s.Fixed, dt)
		} else {
			s.Random = append(s.Random, dt)
		}
	}
	return s
}

// Welch returns Welch's t statistic for the two samples: the difference
// of means scaled by the pooled standard error, without assuming equal
// variances. |t| grows with evidence that the populations differ.
func Welch(a, b []float64) float64 {
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	denom := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if denom == 0 {
		return 0
	}
	return (ma - mb) / denom
}

// MaxT returns the largest |t| over the raw samples and a series of
// upper-percentile crops of the pooled distribution. Cropping discards
// the long scheduler/GC tail that can both hide a leak (by inflating
// variance) and fake one (a burst of preemptions landing in one class);
// dudect does the same with a ladder of thresholds.
func MaxT(s Samples) float64 {
	worst := math.Abs(Welch(s.Fixed, s.Random))
	for _, pct := range []float64{0.95, 0.9, 0.8} {
		cut := percentile(append(append([]float64(nil), s.Fixed...), s.Random...), pct)
		f := below(s.Fixed, cut)
		r := below(s.Random, cut)
		if len(f) > 10 && len(r) > 10 {
			if t := math.Abs(Welch(f, r)); t > worst {
				worst = t
			}
		}
	}
	return worst
}

func meanVar(xs []float64) (mean, variance float64) {
	if len(xs) < 2 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func percentile(xs []float64, p float64) float64 {
	sort.Float64s(xs)
	idx := int(p * float64(len(xs)-1))
	return xs[idx]
}

func below(xs []float64, cut float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x <= cut {
			out = append(out, x)
		}
	}
	return out
}
