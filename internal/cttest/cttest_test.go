package cttest

import (
	"math"
	"math/rand"
	"testing"
)

// TestWelchSeparatesShiftedPopulations checks the statistic on synthetic
// data where the ground truth is known: identical distributions must stay
// near zero, a clearly shifted pair must blow past any plausible
// threshold. Synthetic samples keep the self-test deterministic — timing
// a real leaky function here would inherit CI scheduler noise.
func TestWelchSeparatesShiftedPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4000
	same := func() []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 1000 + 50*rng.NormFloat64()
		}
		return xs
	}
	a, b := same(), same()
	if got := math.Abs(Welch(a, b)); got > 5 {
		t.Fatalf("|t| = %.2f for identically distributed samples, want near 0", got)
	}
	shifted := make([]float64, n)
	for i := range shifted {
		shifted[i] = 1010 + 50*rng.NormFloat64() // 10ns leak on 50ns noise
	}
	if got := math.Abs(Welch(a, shifted)); got < 5 {
		t.Fatalf("|t| = %.2f for shifted samples, want clearly above 5", got)
	}
}

// TestMaxTCropsTail checks that a one-sided outlier burst (GC pauses
// landing in one class) does not dominate the cropped statistic.
func TestMaxTCropsTail(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 4000
	s := Samples{}
	for i := 0; i < n; i++ {
		s.Fixed = append(s.Fixed, 1000+50*rng.NormFloat64())
		s.Random = append(s.Random, 1000+50*rng.NormFloat64())
	}
	// Contaminate 1% of one class with 100x spikes.
	for i := 0; i < n/100; i++ {
		s.Fixed[i] += 100000
	}
	raw := math.Abs(Welch(s.Fixed, s.Random))
	cropped := MaxT(s)
	// The cropped statistic should not be inflated far beyond the raw
	// one by the spikes alone; mostly this asserts MaxT runs the crop
	// ladder without panicking and returns something finite.
	if math.IsNaN(cropped) || math.IsInf(cropped, 0) {
		t.Fatalf("MaxT returned %v", cropped)
	}
	t.Logf("raw |t| = %.2f, max cropped |t| = %.2f", raw, cropped)
}

// TestCollectBalances checks the interleaved schedule yields n samples
// per class and actually invokes the measure callback.
func TestCollectBalances(t *testing.T) {
	var calls [2]int
	s := Collect(100, 1, func(class int) { calls[class]++ })
	if len(s.Fixed) != 100 || len(s.Random) != 100 {
		t.Fatalf("got %d fixed / %d random samples, want 100/100", len(s.Fixed), len(s.Random))
	}
	// 100 timed + 3 warmup calls per class.
	if calls[0] != 103 || calls[1] != 103 {
		t.Fatalf("measure called %v times, want [103 103]", calls)
	}
}
