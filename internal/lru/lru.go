// Package lru provides a small thread-safe fixed-capacity least-recently-
// used map keyed by string. It started life inside the kgcd service (as the
// partial-key cache and the rate limiter's bucket table) and is shared so
// every per-identity cache in the tree — including the Verifier's pairing-
// constant cache, which would otherwise grow without bound under a flood of
// unique identities — carries the same bounded-memory guarantee.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe fixed-capacity least-recently-used map.
type Cache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache bounded to max entries (minimum 1).
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{max: max, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key, evicting the least recently
// used entry when over capacity.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	c.evict()
}

// GetOrCreate returns the value for key, inserting newV() under the lock
// if absent — the atomic fetch-or-insert the rate limiter needs so two
// concurrent requests for a fresh identity share one token bucket. newV
// must not call back into the cache.
func (c *Cache[V]) GetOrCreate(key string, newV func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val
	}
	v := newV()
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	c.evict()
	return v
}

// evict drops the least recently used entry while over capacity. Callers
// hold c.mu.
func (c *Cache[V]) evict() {
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
	}
}

// Len reports the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap reports the capacity bound.
func (c *Cache[V]) Cap() int { return c.max }
