package lru

import (
	"strconv"
	"sync"
	"testing"
)

func TestLRU(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("c", 3) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("a lost")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatal("replace failed")
	}
	if got := c.GetOrCreate("d", func() int { return 4 }); got != 4 {
		t.Fatal("GetOrCreate insert failed")
	}
	if got := c.GetOrCreate("d", func() int { return 5 }); got != 4 {
		t.Fatal("GetOrCreate re-created an existing entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", c.Cap())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := New[string](0)
	c.Put("a", "x")
	c.Put("b", "y")
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamps to 1)", c.Len())
	}
}

// TestLRUBoundedUnderFlood drives far more unique keys than capacity and
// checks memory stays bounded — the identity-flood scenario the Verifier
// cache adopts this package for.
func TestLRUBoundedUnderFlood(t *testing.T) {
	const capacity = 64
	c := New[int](capacity)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				k := "id-" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				c.GetOrCreate(k, func() int { return i })
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != capacity {
		t.Fatalf("len = %d after flood, want %d", c.Len(), capacity)
	}
}
