package bn254

import (
	"math/big"
	"sync"
)

// Fixed-base scalar multiplication for the G1 generator. The generator is
// pinned by the protocol (R = (r-x)·P in Sign, (V/h)·P in Verify), so the
// repeated-doubling half of the ladder can be precomputed once: the table
// stores d·2^(8j)·G for every byte window j and byte value d, turning a
// 254-bit ScalarBaseMult into at most 32 mixed additions and zero
// doublings. The table is ~570 KiB of affine points, built lazily behind a
// sync.Once (~8k Jacobian additions and one batched inversion, a few
// milliseconds) and shared process-wide; core.Params.Precompute forces the
// build at setup so first-request latency stays flat.

// baseTableWindows is the number of byte-sized windows covering a 256-bit
// reduced scalar.
const baseTableWindows = 32

// g1BaseTable[j][d-1] = d·2^(8j)·G in affine coordinates.
var (
	g1BaseTableOnce sync.Once
	g1BaseTable     *[baseTableWindows][255]G1
)

// PrecomputeFixedBase builds the fixed-base generator table now instead of
// on first use. Safe to call concurrently and more than once.
func PrecomputeFixedBase() { g1FixedBaseTable() }

func g1FixedBaseTable() *[baseTableWindows][255]G1 {
	g1BaseTableOnce.Do(buildG1BaseTable)
	return g1BaseTable
}

func buildG1BaseTable() {
	// Window bases 2^(8j)·G, normalized in one batch.
	baseJacs := make([]g1Jac, baseTableWindows)
	baseJacs[0].fromAffine(G1Generator())
	for j := 1; j < baseTableWindows; j++ {
		baseJacs[j] = baseJacs[j-1]
		for s := 0; s < 8; s++ {
			baseJacs[j].double()
		}
	}
	bases := g1BatchAffine(baseJacs)

	// All 32·255 entries accumulate in Jacobian form, then one batched
	// normalization replaces 8160 inversions with one.
	entries := make([]g1Jac, baseTableWindows*255)
	for j := 0; j < baseTableWindows; j++ {
		var cur g1Jac
		cur.fromAffine(&bases[j])
		for d := 1; d <= 255; d++ {
			entries[j*255+d-1] = cur
			cur.addMixed(&bases[j])
		}
	}
	affine := g1BatchAffine(entries)

	tab := new([baseTableWindows][255]G1)
	for j := 0; j < baseTableWindows; j++ {
		copy(tab[j][:], affine[j*255:(j+1)*255])
	}
	g1BaseTable = tab
}

// g1ScalarBaseMultAdd computes k·G + extra for k ∈ [0, r) using the
// fixed-base table, folding the optional extra point (Verify's -R) into the
// same accumulation so the whole expression costs one final normalization.
// extra may be nil.
func g1ScalarBaseMultAdd(k *big.Int, extra *G1) *G1 {
	tab := g1FixedBaseTable()
	var kb [32]byte
	k.FillBytes(kb[:])
	var acc g1Jac
	acc.setInfinity()
	for j := 0; j < baseTableWindows; j++ {
		b := kb[31-j] // window j covers bits 8j..8j+7: big-endian byte 31-j
		if b != 0 {
			acc.addMixed(&tab[j][b-1])
		}
	}
	if extra != nil && !extra.Inf {
		acc.addMixed(extra)
	}
	return acc.affine()
}
