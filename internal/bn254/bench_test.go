package bn254

import (
	"math/big"
	"math/rand"
	"testing"

	"mccls/internal/bn254/fp"
)

// Micro-benchmarks for the pairing substrate, including the Miller-loop vs
// final-exponentiation split called out as an ablation in DESIGN.md §5.

func benchPoints(b *testing.B) (*G1, *G2) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	p := new(G1).ScalarBaseMult(new(big.Int).Rand(r, Order))
	q := new(G2).ScalarBaseMult(new(big.Int).Rand(r, Order))
	return p, q
}

// BenchmarkFpMul measures one Montgomery CIOS multiplication. The whole
// point of the fixed-width refactor is that this is allocation-free: the
// acceptance bar is 0 allocs/op.
func BenchmarkFpMul(b *testing.B) {
	var x, y, z fp.Element
	x.SetUint64(0xdeadbeefcafe)
	y.SetBigInt(new(big.Int).Rand(rand.New(rand.NewSource(5)), P))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(&x, &y)
		x.Add(&z, &y)
	}
}

func BenchmarkPairing(b *testing.B) {
	p, q := benchPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	p, q := benchPoints(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		millerLoop(p, q)
	}
}

func BenchmarkFinalExponentiation(b *testing.B) {
	p, q := benchPoints(b)
	f := millerLoop(p, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiation(f)
	}
}

func BenchmarkG1ScalarMult(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	k := new(big.Int).Rand(r, Order)
	g := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).ScalarMult(g, k)
	}
}

func BenchmarkG1ScalarBaseMult(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	k := new(big.Int).Rand(r, Order)
	PrecomputeFixedBase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).ScalarBaseMult(k)
	}
}

func BenchmarkG2ScalarMult(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	k := new(big.Int).Rand(r, Order)
	g := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G2).ScalarMult(g, k)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashToG1("bench", msg)
	}
}

func BenchmarkHashToG2(b *testing.B) {
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashToG2("bench", msg)
	}
}

func BenchmarkFp12Mul(b *testing.B) {
	p, q := benchPoints(b)
	f := millerLoop(p, q)
	g := new(Fp12).Mul(f, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(Fp12).Mul(f, g)
	}
}

func BenchmarkGTExp(b *testing.B) {
	p, q := benchPoints(b)
	gt := Pair(p, q)
	k := new(big.Int).Rand(rand.New(rand.NewSource(4)), Order)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(GT).Exp(gt, k)
	}
}
