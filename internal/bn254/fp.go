package bn254

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
)

// Helpers for the base field Fp. Values are canonical *big.Int residues in
// [0, p). Every helper returns a fresh big.Int so callers never alias.

func fpAdd(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Add(a, b), P)
}

func fpSub(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Sub(a, b), P)
}

func fpMul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), P)
}

func fpNeg(a *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Neg(a), P)
}

func fpInv(a *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, P)
}

// fpSqrt returns a square root of a modulo p, or nil if a is a non-residue.
func fpSqrt(a *big.Int) *big.Int {
	return new(big.Int).ModSqrt(a, P)
}

var errZeroScalar = errors.New("bn254: rejected zero scalar")

// RandomScalar returns a uniformly random element of Zr*.
func RandomScalar(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	for {
		k, err := rand.Int(rng, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}
