package bn254

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"

	"mccls/internal/bn254/fp"
)

// Base-field arithmetic lives in the internal/bn254/fp sub-package as
// fixed-width Montgomery elements; this file keeps only the scalar-field
// helpers (scalars stay *big.Int — they are mod-r values that cross the
// public API) and the nonzero-inverse guard.
//
// fp.Element.Inverse and Sqrt report failure explicitly instead of
// returning nil the way big.Int's ModInverse/ModSqrt do. The call sites
// split into two audited classes: decode/hash paths where a non-residue is
// expected data (they check ok and reject/retry), and group-law slopes or
// Jacobian Z inversions where zero denominators are excluded by an earlier
// branch (they go through fpMustInverse so a violated invariant panics
// loudly instead of dereferencing nil).

// fpMustInverse sets z = x⁻¹ and panics on zero input. Use only where the
// caller has already established x ≠ 0.
func fpMustInverse(z, x *fp.Element) {
	if !z.Inverse(x) {
		panic("bn254: inverse of zero field element")
	}
}

var errZeroScalar = errors.New("bn254: rejected zero scalar")

// RandomScalar returns a uniformly random element of Zr*.
func RandomScalar(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	for {
		k, err := rand.Int(rng, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}
