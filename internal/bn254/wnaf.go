package bn254

import "math/big"

// Scalar recodings shared by the GLV, windowed-NAF and cyclotomic
// exponentiation fast paths. Both recodings are little-endian digit slices;
// timing depends only on the scalar being recoded, which is public at every
// call site (verification inputs, cofactors, the curve parameter u).

// nafDigits returns the non-adjacent form of a non-negative e: digits in
// {-1, 0, 1}, no two adjacent nonzero. Average nonzero density is 1/3
// versus 1/2 for binary, so ladders with cheap inversion (unitary Fp12,
// curve points) save a third of their multiplications/additions.
func nafDigits(e *big.Int) []int8 {
	d := new(big.Int).Set(e)
	out := make([]int8, 0, e.BitLen()+1)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			// r = d mod 4 ∈ {1, 3} → digit 1 or -1.
			if d.Bit(1) == 0 {
				out = append(out, 1)
				d.Sub(d, big.NewInt(1))
			} else {
				out = append(out, -1)
				d.Add(d, big.NewInt(1))
			}
		} else {
			out = append(out, 0)
		}
		d.Rsh(d, 1)
	}
	return out
}

// wnafWindow is the window width shared by the G1 GLV ladder and the G2
// variable-base ladder: odd digits |d| ≤ 2^(w-1)-1, so the precomputed
// table holds the 2^(w-2) odd multiples P, 3P, …, 15P.
const wnafWindow = 5

// wnafTableSize is the number of precomputed odd multiples per base.
const wnafTableSize = 1 << (wnafWindow - 2)

// wnafDigits returns the width-w NAF of a non-negative k: every nonzero
// digit is odd with |d| < 2^(w-1), and any two nonzero digits are at least
// w positions apart (average density 1/(w+1)).
func wnafDigits(k *big.Int, w uint) []int8 {
	d := new(big.Int).Set(k)
	out := make([]int8, 0, k.BitLen()+1)
	mod := int64(1) << w
	half := mod >> 1
	r := new(big.Int)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			v := r.And(d, big.NewInt(mod-1)).Int64() // d mod 2^w
			if v >= half {
				v -= mod
			}
			out = append(out, int8(v))
			d.Sub(d, big.NewInt(v))
		} else {
			out = append(out, 0)
		}
		d.Rsh(d, 1)
	}
	return out
}
