package bn254

import (
	"math/big"

	"mccls/internal/bn254/fp"
)

// Jacobian-coordinate scalar multiplication for G1 and G2. A point (X, Y, Z)
// represents the affine point (X/Z², Y/Z³); doubling and addition avoid the
// per-step field inversion of the affine chord-and-tangent rule, cutting a
// 254-bit scalar multiplication from ~380 inversions (each worth hundreds
// of Montgomery multiplications) to one. All accumulator updates mutate in
// place on value-type limbs, so the ladder itself does not allocate. The
// affine ladders remain in g1.go/g2.go as the cross-checked reference
// (TestJacobianMatchesAffine).

// g1Jac is a G1 point in Jacobian coordinates. Z = 0 encodes infinity.
type g1Jac struct {
	x, y, z fp.Element
}

func (j *g1Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.z.SetZero()
}

func (j *g1Jac) fromAffine(p *G1) {
	if p.Inf {
		j.setInfinity()
		return
	}
	j.x.Set(&p.X)
	j.y.Set(&p.Y)
	j.z.SetOne()
}

func (j *g1Jac) isInfinity() bool { return j.z.IsZero() }

func (j *g1Jac) affine() *G1 {
	if j.isInfinity() {
		return G1Infinity()
	}
	var zInv, zInv2, zInv3 fp.Element
	fpMustInverse(&zInv, &j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	var out G1
	out.X.Mul(&j.x, &zInv2)
	out.Y.Mul(&j.y, &zInv3)
	return &out
}

// double sets j = 2j in place using the a=0 dbl-2009-l formulas.
func (j *g1Jac) double() {
	if j.isInfinity() {
		return
	}
	if j.y.IsZero() {
		j.setInfinity()
		return
	}
	var a, b, c, d, e, f, t fp.Element
	a.Square(&j.x)  // A = X²
	b.Square(&j.y)  // B = Y²
	c.Square(&b)    // C = B²
	d.Add(&j.x, &b) // X+B
	d.Square(&d)    // (X+B)²
	d.Sub(&d, &a)   //
	d.Sub(&d, &c)   //
	d.Double(&d)    // D = 2((X+B)²-A-C)
	e.Double(&a)    //
	e.Add(&e, &a)   // E = 3A
	f.Square(&e)    // F = E²
	j.z.Mul(&j.y, &j.z)
	j.z.Double(&j.z) // Z3 = 2YZ (uses old Y, old Z)
	t.Double(&d)
	j.x.Sub(&f, &t) // X3 = F - 2D
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Double(&c)
	c.Double(&c)
	c.Double(&c)    // 8C
	j.y.Sub(&t, &c) // Y3 = E(D-X3) - 8C
}

// addMixed sets j = j + q in place for an affine, non-infinity q
// (madd-2007-bl).
func (j *g1Jac) addMixed(q *G1) {
	if j.isInfinity() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2 fp.Element
	z1z1.Square(&j.z)
	u2.Mul(&q.X, &z1z1)
	s2.Mul(&q.Y, &j.z)
	s2.Mul(&s2, &z1z1)
	if u2.Equal(&j.x) {
		if !s2.Equal(&j.y) {
			j.setInfinity()
			return
		}
		j.double()
		return
	}
	var h, hh, i, jj, r, v, t fp.Element
	h.Sub(&u2, &j.x)
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i) // 4H²
	jj.Mul(&h, &i)
	r.Sub(&s2, &j.y)
	r.Double(&r)
	v.Mul(&j.x, &i)
	// X3 = r² - J - 2V
	var x3 fp.Element
	x3.Square(&r)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	// Y3 = r(V - X3) - 2·Y1·J (old Y1)
	var y3 fp.Element
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &r)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	// Z3 = (Z1 + H)² - Z1Z1 - HH
	var z3 fp.Element
	z3.Add(&j.z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)
	j.x, j.y, j.z = x3, y3, z3
}

// g1BatchAffine normalizes a slice of Jacobian points to affine with a
// single field inversion (Montgomery's batch-inversion trick): one forward
// pass accumulates prefix products of the Z coordinates, one inversion, and
// one backward pass peels off per-point inverses. Points at infinity are
// passed through untouched.
func g1BatchAffine(js []g1Jac) []G1 {
	out := make([]G1, len(js))
	prefix := make([]fp.Element, len(js))
	var acc fp.Element
	acc.SetOne()
	for i := range js {
		if js[i].isInfinity() {
			continue
		}
		prefix[i] = acc
		acc.Mul(&acc, &js[i].z)
	}
	var inv fp.Element
	fpMustInverse(&inv, &acc)
	for i := len(js) - 1; i >= 0; i-- {
		if js[i].isInfinity() {
			out[i].Inf = true
			continue
		}
		var zInv, zInv2, zInv3 fp.Element
		zInv.Mul(&inv, &prefix[i])
		inv.Mul(&inv, &js[i].z)
		zInv2.Square(&zInv)
		zInv3.Mul(&zInv2, &zInv)
		out[i].X.Mul(&js[i].x, &zInv2)
		out[i].Y.Mul(&js[i].y, &zInv3)
	}
	return out
}

// g2BatchAffine is the Fp2 counterpart of g1BatchAffine.
func g2BatchAffine(js []g2Jac) []G2 {
	out := make([]G2, len(js))
	prefix := make([]Fp2, len(js))
	acc := *Fp2One()
	for i := range js {
		if js[i].isInfinity() {
			continue
		}
		prefix[i] = acc
		acc.Mul(&acc, &js[i].z)
	}
	var inv Fp2
	inv.Inverse(&acc)
	for i := len(js) - 1; i >= 0; i-- {
		if js[i].isInfinity() {
			out[i].Inf = true
			continue
		}
		var zInv, zInv2, zInv3 Fp2
		zInv.Mul(&inv, &prefix[i])
		inv.Mul(&inv, &js[i].z)
		zInv2.Square(&zInv)
		zInv3.Mul(&zInv2, &zInv)
		out[i].X.Mul(&js[i].x, &zInv2)
		out[i].Y.Mul(&js[i].y, &zInv3)
	}
	return out
}

// g1ScalarMultJac computes k·a (k already reduced and non-negative).
func g1ScalarMultJac(a *G1, k *big.Int) *G1 {
	if a.Inf || k.Sign() == 0 {
		return G1Infinity()
	}
	var acc g1Jac
	acc.setInfinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if k.Bit(i) == 1 {
			acc.addMixed(a)
		}
	}
	return acc.affine()
}

// g2Jac is a G2 point in Jacobian coordinates over Fp2. Z = 0 encodes
// infinity.
type g2Jac struct {
	x, y, z Fp2
}

func (j *g2Jac) setInfinity() {
	j.x = *Fp2One()
	j.y = *Fp2One()
	j.z = Fp2{}
}

func (j *g2Jac) fromAffine(p *G2) {
	if p.Inf {
		j.setInfinity()
		return
	}
	j.x = p.X
	j.y = p.Y
	j.z = *Fp2One()
}

func (j *g2Jac) isInfinity() bool { return j.z.IsZero() }

func (j *g2Jac) affine() *G2 {
	if j.isInfinity() {
		return G2Infinity()
	}
	var zInv, zInv2, zInv3 Fp2
	zInv.Inverse(&j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	var out G2
	out.X.Mul(&j.x, &zInv2)
	out.Y.Mul(&j.y, &zInv3)
	return &out
}

func (j *g2Jac) double() {
	if j.isInfinity() {
		return
	}
	if j.y.IsZero() {
		j.setInfinity()
		return
	}
	var a, b, c, d, e, f, t Fp2
	a.Square(&j.x)
	b.Square(&j.y)
	c.Square(&b)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Add(&d, &d)
	e.Add(&a, &a)
	e.Add(&e, &a)
	f.Square(&e)
	j.z.Mul(&j.y, &j.z)
	j.z.Add(&j.z, &j.z)
	t.Add(&d, &d)
	j.x.Sub(&f, &t)
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Add(&c, &c)
	c.Add(&c, &c)
	c.Add(&c, &c)
	j.y.Sub(&t, &c)
}

func (j *g2Jac) addMixed(q *G2) {
	if j.isInfinity() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2 Fp2
	z1z1.Square(&j.z)
	u2.Mul(&q.X, &z1z1)
	s2.Mul(&q.Y, &j.z)
	s2.Mul(&s2, &z1z1)
	if u2.Equal(&j.x) {
		if !s2.Equal(&j.y) {
			j.setInfinity()
			return
		}
		j.double()
		return
	}
	var h, hh, i, jj, r, v, t, x3, y3, z3 Fp2
	h.Sub(&u2, &j.x)
	hh.Square(&h)
	i.Add(&hh, &hh)
	i.Add(&i, &i)
	jj.Mul(&h, &i)
	r.Sub(&s2, &j.y)
	r.Add(&r, &r)
	v.Mul(&j.x, &i)
	x3.Square(&r)
	x3.Sub(&x3, &jj)
	t.Add(&v, &v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &r)
	t.Mul(&j.y, &jj)
	t.Add(&t, &t)
	y3.Sub(&y3, &t)
	z3.Add(&j.z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)
	j.x, j.y, j.z = x3, y3, z3
}

// g2ScalarMultJac computes k·a for any non-negative k (not reduced; used
// for cofactor clearing and subgroup checks too).
func g2ScalarMultJac(a *G2, k *big.Int) *G2 {
	if a.Inf || k.Sign() == 0 {
		return G2Infinity()
	}
	var acc g2Jac
	acc.setInfinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if k.Bit(i) == 1 {
			acc.addMixed(a)
		}
	}
	return acc.affine()
}
