package bn254

import "math/big"

// Jacobian-coordinate scalar multiplication for G1 and G2. A point (X, Y, Z)
// represents the affine point (X/Z², Y/Z³); doubling and addition avoid the
// per-step modular inversion of the affine chord-and-tangent rule, cutting a
// 254-bit scalar multiplication from ~380 field inversions to one. The
// affine ladders remain in g1.go/g2.go as the cross-checked reference
// (TestJacobianMatchesAffine).

// g1Jac is a G1 point in Jacobian coordinates. Z = 0 encodes infinity.
type g1Jac struct {
	x, y, z *big.Int
}

func g1JacFromAffine(p *G1) *g1Jac {
	if p.Inf {
		return &g1Jac{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	return &g1Jac{x: new(big.Int).Set(p.X), y: new(big.Int).Set(p.Y), z: big.NewInt(1)}
}

func (j *g1Jac) isInfinity() bool { return j.z.Sign() == 0 }

func (j *g1Jac) affine() *G1 {
	if j.isInfinity() {
		return G1Infinity()
	}
	zInv := fpInv(j.z)
	zInv2 := fpMul(zInv, zInv)
	x := fpMul(j.x, zInv2)
	y := fpMul(j.y, fpMul(zInv2, zInv))
	return &G1{X: x, Y: y}
}

// double returns 2j using the a=0 dbl-2009-l formulas.
func (j *g1Jac) double() *g1Jac {
	if j.isInfinity() || j.y.Sign() == 0 {
		return &g1Jac{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	a := fpMul(j.x, j.x)       // X²
	b := fpMul(j.y, j.y)       // Y²
	c := fpMul(b, b)           // B²
	t := fpAdd(j.x, b)         // X+B
	d := fpMul(t, t)           // (X+B)²
	d = fpSub(fpSub(d, a), c)  // (X+B)²-A-C
	d = fpAdd(d, d)            // D = 2(...)
	e := fpAdd(fpAdd(a, a), a) // E = 3A
	f := fpMul(e, e)           // F = E²
	x3 := fpSub(f, fpAdd(d, d))
	c8 := fpAdd(c, c)
	c8 = fpAdd(c8, c8)
	c8 = fpAdd(c8, c8)
	y3 := fpSub(fpMul(e, fpSub(d, x3)), c8)
	z3 := fpMul(j.y, j.z)
	z3 = fpAdd(z3, z3)
	return &g1Jac{x: x3, y: y3, z: z3}
}

// addMixed returns j + q for an affine, non-infinity q (madd-2007-bl).
func (j *g1Jac) addMixed(q *G1) *g1Jac {
	if j.isInfinity() {
		return g1JacFromAffine(q)
	}
	z1z1 := fpMul(j.z, j.z)
	u2 := fpMul(q.X, z1z1)
	s2 := fpMul(fpMul(q.Y, j.z), z1z1)
	if u2.Cmp(j.x) == 0 {
		if s2.Cmp(j.y) != 0 {
			return &g1Jac{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
		}
		return j.double()
	}
	h := fpSub(u2, j.x)
	hh := fpMul(h, h)
	i := fpAdd(hh, hh)
	i = fpAdd(i, i) // 4H²
	jj := fpMul(h, i)
	r := fpSub(s2, j.y)
	r = fpAdd(r, r)
	v := fpMul(j.x, i)
	x3 := fpSub(fpSub(fpMul(r, r), jj), fpAdd(v, v))
	y1jj := fpMul(j.y, jj)
	y3 := fpSub(fpMul(r, fpSub(v, x3)), fpAdd(y1jj, y1jj))
	z3 := fpMul(fpAdd(j.z, h), fpAdd(j.z, h))
	z3 = fpSub(fpSub(z3, z1z1), hh)
	return &g1Jac{x: x3, y: y3, z: z3}
}

// g1ScalarMultJac computes k·a (k already reduced and non-negative).
func g1ScalarMultJac(a *G1, k *big.Int) *G1 {
	if a.Inf || k.Sign() == 0 {
		return G1Infinity()
	}
	acc := &g1Jac{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if k.Bit(i) == 1 {
			acc = acc.addMixed(a)
		}
	}
	return acc.affine()
}

// g2Jac is a G2 point in Jacobian coordinates over Fp2. Z = 0 encodes
// infinity.
type g2Jac struct {
	x, y, z *Fp2
}

func g2JacFromAffine(p *G2) *g2Jac {
	if p.Inf {
		return &g2Jac{x: Fp2One(), y: Fp2One(), z: Fp2Zero()}
	}
	return &g2Jac{x: new(Fp2).Set(p.X), y: new(Fp2).Set(p.Y), z: Fp2One()}
}

func (j *g2Jac) isInfinity() bool { return j.z.IsZero() }

func (j *g2Jac) affine() *G2 {
	if j.isInfinity() {
		return G2Infinity()
	}
	zInv := new(Fp2).Inverse(j.z)
	zInv2 := new(Fp2).Square(zInv)
	x := new(Fp2).Mul(j.x, zInv2)
	y := new(Fp2).Mul(j.y, new(Fp2).Mul(zInv2, zInv))
	return &G2{X: x, Y: y}
}

func (j *g2Jac) double() *g2Jac {
	if j.isInfinity() || j.y.IsZero() {
		return &g2Jac{x: Fp2One(), y: Fp2One(), z: Fp2Zero()}
	}
	a := new(Fp2).Square(j.x)
	b := new(Fp2).Square(j.y)
	c := new(Fp2).Square(b)
	d := new(Fp2).Add(j.x, b)
	d.Square(d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Add(d, d)
	e := new(Fp2).Add(a, a)
	e.Add(e, a)
	f := new(Fp2).Square(e)
	x3 := new(Fp2).Sub(f, new(Fp2).Add(d, d))
	c8 := new(Fp2).Add(c, c)
	c8.Add(c8, c8)
	c8.Add(c8, c8)
	y3 := new(Fp2).Sub(d, x3)
	y3.Mul(y3, e)
	y3.Sub(y3, c8)
	z3 := new(Fp2).Mul(j.y, j.z)
	z3.Add(z3, z3)
	return &g2Jac{x: x3, y: y3, z: z3}
}

func (j *g2Jac) addMixed(q *G2) *g2Jac {
	if j.isInfinity() {
		return g2JacFromAffine(q)
	}
	z1z1 := new(Fp2).Square(j.z)
	u2 := new(Fp2).Mul(q.X, z1z1)
	s2 := new(Fp2).Mul(q.Y, j.z)
	s2.Mul(s2, z1z1)
	if u2.Equal(j.x) {
		if !s2.Equal(j.y) {
			return &g2Jac{x: Fp2One(), y: Fp2One(), z: Fp2Zero()}
		}
		return j.double()
	}
	h := new(Fp2).Sub(u2, j.x)
	hh := new(Fp2).Square(h)
	i := new(Fp2).Add(hh, hh)
	i.Add(i, i)
	jj := new(Fp2).Mul(h, i)
	r := new(Fp2).Sub(s2, j.y)
	r.Add(r, r)
	v := new(Fp2).Mul(j.x, i)
	x3 := new(Fp2).Square(r)
	x3.Sub(x3, jj)
	x3.Sub(x3, new(Fp2).Add(v, v))
	y1jj := new(Fp2).Mul(j.y, jj)
	y3 := new(Fp2).Sub(v, x3)
	y3.Mul(y3, r)
	y3.Sub(y3, new(Fp2).Add(y1jj, y1jj))
	z3 := new(Fp2).Add(j.z, h)
	z3.Square(z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, hh)
	return &g2Jac{x: x3, y: y3, z: z3}
}

// g2ScalarMultJac computes k·a for any non-negative k (not reduced; used
// for cofactor clearing and subgroup checks too).
func g2ScalarMultJac(a *G2, k *big.Int) *G2 {
	if a.Inf || k.Sign() == 0 {
		return G2Infinity()
	}
	acc := &g2Jac{x: Fp2One(), y: Fp2One(), z: Fp2Zero()}
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if k.Bit(i) == 1 {
			acc = acc.addMixed(a)
		}
	}
	return acc.affine()
}
