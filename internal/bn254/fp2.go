package bn254

import (
	"fmt"
	"math/big"
)

// Fp2 is the quadratic extension Fp[i]/(i^2 + 1). An element is
// C0 + C1·i with C0, C1 canonical residues modulo p.
//
// Methods follow the math/big convention: z.Op(x, y) stores x ∘ y into z and
// returns z. Receivers may alias arguments.
type Fp2 struct {
	C0, C1 *big.Int
}

// Fp2Zero returns the additive identity.
func Fp2Zero() *Fp2 { return &Fp2{C0: big.NewInt(0), C1: big.NewInt(0)} }

// Fp2One returns the multiplicative identity.
func Fp2One() *Fp2 { return &Fp2{C0: big.NewInt(1), C1: big.NewInt(0)} }

// Set copies x into z and returns z.
func (z *Fp2) Set(x *Fp2) *Fp2 {
	z.C0 = new(big.Int).Set(x.C0)
	z.C1 = new(big.Int).Set(x.C1)
	return z
}

// IsZero reports whether z is the additive identity.
func (z *Fp2) IsZero() bool { return z.C0.Sign() == 0 && z.C1.Sign() == 0 }

// IsOne reports whether z is the multiplicative identity.
func (z *Fp2) IsOne() bool { return z.C0.Cmp(big.NewInt(1)) == 0 && z.C1.Sign() == 0 }

// Equal reports whether z and x represent the same field element.
func (z *Fp2) Equal(x *Fp2) bool { return z.C0.Cmp(x.C0) == 0 && z.C1.Cmp(x.C1) == 0 }

// Add sets z = x + y.
func (z *Fp2) Add(x, y *Fp2) *Fp2 {
	z.C0, z.C1 = fpAdd(x.C0, y.C0), fpAdd(x.C1, y.C1)
	return z
}

// Sub sets z = x - y.
func (z *Fp2) Sub(x, y *Fp2) *Fp2 {
	z.C0, z.C1 = fpSub(x.C0, y.C0), fpSub(x.C1, y.C1)
	return z
}

// Neg sets z = -x.
func (z *Fp2) Neg(x *Fp2) *Fp2 {
	z.C0, z.C1 = fpNeg(x.C0), fpNeg(x.C1)
	return z
}

// Conjugate sets z = C0 - C1·i.
func (z *Fp2) Conjugate(x *Fp2) *Fp2 {
	z.C0, z.C1 = new(big.Int).Set(x.C0), fpNeg(x.C1)
	return z
}

// Mul sets z = x·y using (a+bi)(c+di) = (ac-bd) + (ad+bc)i.
func (z *Fp2) Mul(x, y *Fp2) *Fp2 {
	ac := fpMul(x.C0, y.C0)
	bd := fpMul(x.C1, y.C1)
	ad := fpMul(x.C0, y.C1)
	bc := fpMul(x.C1, y.C0)
	z.C0, z.C1 = fpSub(ac, bd), fpAdd(ad, bc)
	return z
}

// Square sets z = x².
func (z *Fp2) Square(x *Fp2) *Fp2 { return z.Mul(x, x) }

// MulScalar sets z = k·x for k ∈ Fp.
func (z *Fp2) MulScalar(x *Fp2, k *big.Int) *Fp2 {
	z.C0, z.C1 = fpMul(x.C0, k), fpMul(x.C1, k)
	return z
}

// Inverse sets z = x⁻¹ via (a+bi)⁻¹ = (a-bi)/(a²+b²). It panics on zero
// input, which indicates a programming error in the caller.
func (z *Fp2) Inverse(x *Fp2) *Fp2 {
	norm := fpAdd(fpMul(x.C0, x.C0), fpMul(x.C1, x.C1))
	if norm.Sign() == 0 {
		panic("bn254: inverse of zero Fp2 element")
	}
	inv := fpInv(norm)
	z.C0, z.C1 = fpMul(x.C0, inv), fpNeg(fpMul(x.C1, inv))
	return z
}

// Exp sets z = x^e for a non-negative integer exponent e, by left-to-right
// square-and-multiply.
func (z *Fp2) Exp(x *Fp2, e *big.Int) *Fp2 {
	acc := Fp2One()
	base := new(Fp2).Set(x)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if e.Bit(i) == 1 {
			acc.Mul(acc, base)
		}
	}
	return z.Set(acc)
}

// Sqrt sets z to a square root of x and returns z, or returns nil if x is a
// quadratic non-residue. Uses the p ≡ 3 (mod 4) complex-extension algorithm
// (Adj & Rodríguez-Henríquez) and verifies the result.
func (z *Fp2) Sqrt(x *Fp2) *Fp2 {
	if x.IsZero() {
		return z.Set(Fp2Zero())
	}
	// a1 = x^((p-3)/4)
	e := new(big.Int).Sub(P, big.NewInt(3))
	e.Rsh(e, 2)
	a1 := new(Fp2).Exp(x, e)
	// x0 = a1·x, alpha = a1·x0 = x^((p-1)/2)
	x0 := new(Fp2).Mul(a1, x)
	alpha := new(Fp2).Mul(a1, x0)

	var cand *Fp2
	minusOne := new(Fp2).Neg(Fp2One())
	if alpha.Equal(minusOne) {
		// candidate = i·x0
		i := &Fp2{C0: big.NewInt(0), C1: big.NewInt(1)}
		cand = new(Fp2).Mul(i, x0)
	} else {
		// candidate = (1+alpha)^((p-1)/2) · x0
		b := new(Fp2).Add(Fp2One(), alpha)
		half := new(big.Int).Sub(P, big.NewInt(1))
		half.Rsh(half, 1)
		b.Exp(b, half)
		cand = new(Fp2).Mul(b, x0)
	}
	if !new(Fp2).Square(cand).Equal(x) {
		return nil
	}
	return z.Set(cand)
}

// String renders z as "c0 + c1*i" in decimal.
func (z *Fp2) String() string {
	return fmt.Sprintf("%v + %v*i", z.C0, z.C1)
}
