package bn254

import (
	"fmt"
	"math/big"

	"mccls/internal/bn254/fp"
)

// Fp2 is the quadratic extension Fp[i]/(i^2 + 1). An element is
// C0 + C1·i with fixed-width Montgomery coordinates (see internal/bn254/fp);
// the zero value is the field's zero, and arithmetic allocates nothing
// beyond the receiver.
//
// Methods follow the math/big convention: z.Op(x, y) stores x ∘ y into z and
// returns z. Receivers may alias arguments.
type Fp2 struct {
	C0, C1 fp.Element
}

// Fp2Zero returns the additive identity.
func Fp2Zero() *Fp2 { return &Fp2{} }

// Fp2One returns the multiplicative identity.
func Fp2One() *Fp2 { return &Fp2{C0: fp.One()} }

// fp2FromBig builds an element from canonical big.Int coefficients,
// reducing modulo p. It is a conversion-boundary helper, not constant time.
func fp2FromBig(c0, c1 *big.Int) *Fp2 {
	z := &Fp2{}
	z.C0.SetBigInt(c0)
	z.C1.SetBigInt(c1)
	return z
}

// Set copies x into z and returns z.
func (z *Fp2) Set(x *Fp2) *Fp2 {
	*z = *x
	return z
}

// IsZero reports whether z is the additive identity.
func (z *Fp2) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() }

// IsOne reports whether z is the multiplicative identity.
func (z *Fp2) IsOne() bool { return z.C0.IsOne() && z.C1.IsZero() }

// Equal reports whether z and x represent the same field element.
func (z *Fp2) Equal(x *Fp2) bool { return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) }

// Add sets z = x + y.
func (z *Fp2) Add(x, y *Fp2) *Fp2 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	return z
}

// Sub sets z = x - y.
func (z *Fp2) Sub(x, y *Fp2) *Fp2 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	return z
}

// Neg sets z = -x.
func (z *Fp2) Neg(x *Fp2) *Fp2 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Conjugate sets z = C0 - C1·i.
func (z *Fp2) Conjugate(x *Fp2) *Fp2 {
	z.C0.Set(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Mul sets z = x·y by Karatsuba: with t1 = ac and t2 = bd,
// (a+bi)(c+di) = (t1-t2) + ((a+b)(c+d)-t1-t2)i — three base-field
// multiplications instead of four.
func (z *Fp2) Mul(x, y *Fp2) *Fp2 {
	var t1, t2, s1, s2 fp.Element
	t1.Mul(&x.C0, &y.C0)
	t2.Mul(&x.C1, &y.C1)
	s1.Add(&x.C0, &x.C1)
	s2.Add(&y.C0, &y.C1)
	s1.Mul(&s1, &s2)
	s1.Sub(&s1, &t1)
	s1.Sub(&s1, &t2)
	z.C0.Sub(&t1, &t2)
	z.C1 = s1
	return z
}

// fp2Wide is an unreduced Fp2 accumulator for lazy-reduction paths:
// one 512-bit Wide per coefficient. Call sites accumulate several Fp2
// products with mulAcc and pay the two Montgomery reductions once, in
// reduce. Each mulAcc adds at most 2 q²-units to either coefficient
// (see below), and fp.Wide's contract allows ~15 units, so up to six
// products may share one accumulator — every caller in this package
// stays at or below that.
type fp2Wide struct {
	c0, c1 fp.Wide
}

// mulAcc accumulates x·y into w without reducing, by Karatsuba on wide
// limbs. With ac = x.C0·y.C0, bd = x.C1·y.C1 and the loose (unreduced)
// sums s = x.C0+x.C1, s' = y.C0+y.C1:
//
//	c0 += ac + q² − bd   (the q² pad keeps the difference non-negative;
//	                      ac ≤ q², so the net contribution is ≤ 2q²)
//	c1 += s·s' − ac − bd (exact integer identity: s·s' = ac+ad+bc+bd,
//	                      so no pad is needed and the net is ad+bc ≤ 2q²)
//
// The loose sums are < 2q and fit four limbs; their product is < 4q²,
// comfortably inside the Wide contract as a transient.
func (w *fp2Wide) mulAcc(x, y *Fp2) {
	var ac, bd, cross fp.Wide
	ac.Mul(&x.C0, &y.C0)
	bd.Mul(&x.C1, &y.C1)
	var sx, sy fp.Element
	fp.LooseAdd(&sx, &x.C0, &x.C1)
	fp.LooseAdd(&sy, &y.C0, &y.C1)
	cross.Mul(&sx, &sy)
	cross.Sub(&ac)
	cross.Sub(&bd)
	w.c0.Add(&ac)
	w.c0.AddQSquared()
	w.c0.Sub(&bd)
	w.c1.Add(&cross)
}

// reduce Montgomery-reduces the accumulator into z.
func (w *fp2Wide) reduce(z *Fp2) {
	w.c0.Reduce(&z.C0)
	w.c1.Reduce(&z.C1)
}

// MulByXi sets z = xi·x for the sextic non-residue xi = 9 + i:
// (a+bi)(9+i) = (9a-b) + (a+9b)i, computed with shifts and additions
// instead of multiplications.
func (z *Fp2) MulByXi(x *Fp2) *Fp2 {
	var a9, b9, c0 fp.Element
	a9.Double(&x.C0)
	a9.Double(&a9)
	a9.Double(&a9)
	a9.Add(&a9, &x.C0) // 9a
	b9.Double(&x.C1)
	b9.Double(&b9)
	b9.Double(&b9)
	b9.Add(&b9, &x.C1) // 9b
	c0.Sub(&a9, &x.C1)
	b9.Add(&b9, &x.C0)
	z.C0 = c0
	z.C1 = b9
	return z
}

// Halve sets z = x/2.
func (z *Fp2) Halve(x *Fp2) *Fp2 {
	z.C0.Halve(&x.C0)
	z.C1.Halve(&x.C1)
	return z
}

// Double sets z = 2x.
func (z *Fp2) Double(x *Fp2) *Fp2 {
	z.C0.Double(&x.C0)
	z.C1.Double(&x.C1)
	return z
}

// Square sets z = x² using (a+bi)² = (a+b)(a-b) + 2ab·i (three
// multiplications instead of four).
func (z *Fp2) Square(x *Fp2) *Fp2 {
	var sum, diff, ab fp.Element
	sum.Add(&x.C0, &x.C1)
	diff.Sub(&x.C0, &x.C1)
	ab.Mul(&x.C0, &x.C1)
	z.C0.Mul(&sum, &diff)
	z.C1.Double(&ab)
	return z
}

// MulScalar sets z = k·x for k ∈ Fp.
func (z *Fp2) MulScalar(x *Fp2, k *fp.Element) *Fp2 {
	z.C0.Mul(&x.C0, k)
	z.C1.Mul(&x.C1, k)
	return z
}

// Inverse sets z = x⁻¹ via (a+bi)⁻¹ = (a-bi)/(a²+b²). It panics on zero
// input, which indicates a programming error in the caller.
func (z *Fp2) Inverse(x *Fp2) *Fp2 {
	var norm, inv, t fp.Element
	norm.Mul(&x.C0, &x.C0)
	t.Mul(&x.C1, &x.C1)
	norm.Add(&norm, &t)
	if !inv.Inverse(&norm) {
		panic("bn254: inverse of zero Fp2 element")
	}
	z.C0.Mul(&x.C0, &inv)
	t.Mul(&x.C1, &inv)
	z.C1.Neg(&t)
	return z
}

// Exp sets z = x^e for a non-negative integer exponent e, by left-to-right
// square-and-multiply.
func (z *Fp2) Exp(x *Fp2, e *big.Int) *Fp2 {
	acc := Fp2One()
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if e.Bit(i) == 1 {
			acc.Mul(acc, &base)
		}
	}
	return z.Set(acc)
}

// Sqrt sets z to a square root of x and returns z, or returns nil if x is a
// quadratic non-residue. Uses the p ≡ 3 (mod 4) complex-extension algorithm
// (Adj & Rodríguez-Henríquez) and verifies the result.
func (z *Fp2) Sqrt(x *Fp2) *Fp2 {
	if x.IsZero() {
		return z.Set(Fp2Zero())
	}
	// a1 = x^((p-3)/4)
	e := new(big.Int).Sub(P, big.NewInt(3))
	e.Rsh(e, 2)
	a1 := new(Fp2).Exp(x, e)
	// x0 = a1·x, alpha = a1·x0 = x^((p-1)/2)
	x0 := new(Fp2).Mul(a1, x)
	alpha := new(Fp2).Mul(a1, x0)

	var cand *Fp2
	minusOne := new(Fp2).Neg(Fp2One())
	if alpha.Equal(minusOne) {
		// candidate = i·x0
		i := &Fp2{C1: fp.One()}
		cand = new(Fp2).Mul(i, x0)
	} else {
		// candidate = (1+alpha)^((p-1)/2) · x0
		b := new(Fp2).Add(Fp2One(), alpha)
		half := new(big.Int).Sub(P, big.NewInt(1))
		half.Rsh(half, 1)
		b.Exp(b, half)
		cand = new(Fp2).Mul(b, x0)
	}
	if !new(Fp2).Square(cand).Equal(x) {
		return nil
	}
	return z.Set(cand)
}

// String renders z as "c0 + c1*i" in decimal.
func (z *Fp2) String() string {
	return fmt.Sprintf("%v + %v*i", z.C0.String(), z.C1.String())
}
