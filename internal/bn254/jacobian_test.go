package bn254

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestJacobianMatchesAffineG1 cross-checks the Jacobian scalar
// multiplication against the affine reference ladder, property-based over
// random scalars.
func TestJacobianMatchesAffineG1(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	base := new(G1).ScalarMult(G1Generator(), big.NewInt(7))
	prop := func(lo, hi uint64) bool {
		k := new(big.Int).SetUint64(hi)
		k.Lsh(k, 64)
		k.Or(k, new(big.Int).SetUint64(lo))
		jac := g1ScalarMultJac(base, k)
		aff := g1ScalarMultAffine(base, k)
		return jac.Equal(aff) && jac.IsOnCurve()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6, Rand: r}); err != nil {
		t.Fatal(err)
	}
	// Edge scalars.
	for _, k := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(Order, big.NewInt(1)), new(big.Int).Set(Order)} {
		jac := g1ScalarMultJac(base, new(big.Int).Mod(k, Order))
		aff := g1ScalarMultAffine(base, new(big.Int).Mod(k, Order))
		if !jac.Equal(aff) {
			t.Fatalf("mismatch at scalar %v", k)
		}
	}
}

// TestJacobianMatchesAffineG2 does the same for the twist group, including
// the unreduced scalars used in cofactor clearing.
func TestJacobianMatchesAffineG2(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	base := G2Generator()
	for i := 0; i < 4; i++ {
		k := new(big.Int).Rand(r, Order)
		jac := g2ScalarMultJac(base, k)
		aff := g2ScalarMultAffine(base, k)
		if !jac.Equal(aff) {
			t.Fatalf("G2 mismatch at iteration %d", i)
		}
		if !jac.IsOnCurve() {
			t.Fatal("Jacobian result off curve")
		}
	}
	// Cofactor-sized (larger than r) scalar.
	jac := g2ScalarMultJac(base, g2Cofactor)
	aff := g2ScalarMultAffine(base, g2Cofactor)
	if !jac.Equal(aff) {
		t.Fatal("unreduced scalar mismatch")
	}
}

// TestJacobianDegenerateCases exercises infinity and two-torsion paths.
func TestJacobianDegenerateCases(t *testing.T) {
	if !g1ScalarMultJac(G1Infinity(), big.NewInt(5)).IsInfinity() {
		t.Fatal("k·∞ != ∞ in G1")
	}
	if !g2ScalarMultJac(G2Infinity(), big.NewInt(5)).IsInfinity() {
		t.Fatal("k·∞ != ∞ in G2")
	}
	// Jacobian add of P and -P must hit the cancellation branch.
	p := new(G1).ScalarBaseMult(big.NewInt(3))
	var j g1Jac
	j.fromAffine(p)
	j.addMixed(new(G1).Neg(p))
	if !j.isInfinity() {
		t.Fatal("P + (-P) != ∞ via mixed addition")
	}
	q := new(G2).ScalarBaseMult(big.NewInt(3))
	var j2 g2Jac
	j2.fromAffine(q)
	j2.addMixed(new(G2).Neg(q))
	if !j2.isInfinity() {
		t.Fatal("Q + (-Q) != ∞ via mixed addition")
	}
	// Doubling path through addMixed (P + P).
	var dbl g1Jac
	dbl.fromAffine(p)
	dbl.addMixed(p)
	if !dbl.affine().Equal(new(G1).Double(p)) {
		t.Fatal("P + P via mixed addition != 2P")
	}
}

// BenchmarkG1ScalarMultJacobian measures the production ladder. With
// Montgomery limbs a field inversion costs hundreds of multiplications, so
// the inversion-free Jacobian ladder is the fast path (the affine ladder is
// kept only as a test reference).
func BenchmarkG1ScalarMultJacobian(b *testing.B) {
	k := new(big.Int).Rand(rand.New(rand.NewSource(2)), Order)
	g := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g1ScalarMultJac(g, k)
	}
}

func BenchmarkG2ScalarMultJacobian(b *testing.B) {
	k := new(big.Int).Rand(rand.New(rand.NewSource(3)), Order)
	g := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2ScalarMultJac(g, k)
	}
}
