package bn254

import (
	"math/big"
)

// GT is an element of the order-r target group (the cyclotomic subgroup of
// Fp12*). Values are produced by Pair and combined with Mul/Exp.
type GT struct {
	v *Fp12
}

// GTOne returns the identity of GT.
func GTOne() *GT { return &GT{v: Fp12One()} }

// Set copies x into z and returns z.
func (z *GT) Set(x *GT) *GT {
	z.v = new(Fp12).Set(x.v)
	return z
}

// Equal reports whether z and x represent the same GT element.
func (z *GT) Equal(x *GT) bool { return z.v.Equal(x.v) }

// IsOne reports whether z is the identity.
func (z *GT) IsOne() bool { return z.v.IsOne() }

// Mul sets z = a·b.
func (z *GT) Mul(a, b *GT) *GT {
	z.v = new(Fp12).Mul(a.v, b.v)
	return z
}

// Inverse sets z = a⁻¹. GT elements are unitary, so inversion is the p^6
// Frobenius (conjugation).
func (z *GT) Inverse(a *GT) *GT {
	z.v = new(Fp12).Conjugate(a.v)
	return z
}

// Exp sets z = a^k. Negative k inverts first. GT elements are unitary, so
// the ladder runs on cyclotomic squarings with NAF recoding.
func (z *GT) Exp(a *GT, k *big.Int) *GT {
	opCounters.gtExps.Add(1)
	e := new(big.Int).Mod(k, Order)
	z.v = new(Fp12).ExpCyclotomic(a.v, e)
	return z
}

// Marshal encodes z as the 12 Fp coefficients, 32 bytes each.
func (z *GT) Marshal() []byte {
	out := make([]byte, 12*32)
	for k := 0; k < 6; k++ {
		c0, c1 := z.v.C[k].C0.Bytes(), z.v.C[k].C1.Bytes()
		copy(out[64*k:64*k+32], c0[:])
		copy(out[64*k+32:64*k+64], c1[:])
	}
	return out
}

// lineEval is the sparse Fp12 element c0 + c1·w + c3·w³ produced by
// evaluating a Miller line at a G1 point. In the affine (naive) path c0 has
// a zero i-component; the projective path scales the line by an Fp2 factor
// (killed by the final exponentiation), filling all three coefficients.
type lineEval struct {
	c0 Fp2
	c1 Fp2
	c3 Fp2
}

// fp12 expands the sparse line into a full Fp12 element (reference path).
func (l *lineEval) fp12() *Fp12 {
	z := &Fp12{}
	z.C[0] = l.c0
	z.C[1] = l.c1
	z.C[3] = l.c3
	return z
}

// mulByLine sets z = z·(c0 + c1·w + c3·w³) with the sparsity hard-coded:
// 18 Fp2 products instead of a generic convolution plus zero tests, and no
// intermediate Fp12 allocation. Each output coefficient accumulates its
// three products in an unreduced fp2Wide and Montgomery-reduces once —
// 12 reductions per line instead of 36. The xi factor that wrapped terms
// pick up is applied to the (reduced, canonical) z coefficients up front,
// which keeps every mulAcc operand within the bounds fp2Wide assumes.
// The dense equivalent mul-by-l.fp12() is the oracle in the differential
// tests.
func (z *Fp12) mulByLine(l *lineEval) *Fp12 {
	opCounters.sparseMuls.Add(1)
	// zXi[j] = xi·z.C[3+j], consumed by the w-wrap terms below.
	var zXi [3]Fp2
	for j := 0; j < 3; j++ {
		zXi[j].MulByXi(&z.C[3+j])
	}
	var res Fp12
	for k := 0; k < 6; k++ {
		var acc fp2Wide
		acc.mulAcc(&z.C[k], &l.c0)
		// c1·w: wraps past w^5 pick up xi.
		if k == 0 {
			acc.mulAcc(&zXi[2], &l.c1)
		} else {
			acc.mulAcc(&z.C[k-1], &l.c1)
		}
		// c3·w³.
		if k < 3 {
			acc.mulAcc(&zXi[k], &l.c3)
		} else {
			acc.mulAcc(&z.C[k-3], &l.c3)
		}
		acc.reduce(&res.C[k])
	}
	return z.Set(&res)
}

// g2Proj is the Miller-loop accumulator in homogeneous projective
// coordinates (X : Y : Z), affine (X/Z, Y/Z). Unlike the affine
// doubleStep/addStep oracle this needs no per-step Fp2 inversion — with
// Montgomery arithmetic each of those cost a ~380-multiplication Fermat
// ladder, which dominated the whole Miller loop.
type g2Proj struct {
	x, y, z Fp2
}

func (p *g2Proj) fromAffine(q *G2) {
	p.x = q.X
	p.y = q.Y
	p.z = *Fp2One()
}

// twistB3 is 3·b', cached for the doubling step.
var twistB3 = new(Fp2).Add(twistB, new(Fp2).Add(twistB, twistB))

// doubleStepProj doubles p in place and evaluates the tangent line at the
// G1 point (xP, yP). Formulas follow Costello–Lange–Naehrig (eprint
// 2010/526) for y² = x³ + b': with A = XY/2, B = Y², C = Z², E = 3b'C,
// F = 3E, G = (B+F)/2, H = (Y+Z)² - B - C:
//
//	X₃ = A(B-F), Y₃ = G² - 3E², Z₃ = BH
//
// and the line (up to the Fp2 factor Z, which the final exponentiation
// kills) is -H·yP + 3X²·xP·w + (E-B)·w³.
func (p *g2Proj) doubleStepProj(l *lineEval, pt *G1) {
	opCounters.lineDoubles.Add(1)
	var a, b, c, e, f, g, h, i, j, ee, t Fp2
	a.Mul(&p.x, &p.y)
	a.Halve(&a)
	b.Square(&p.y)
	c.Square(&p.z)
	e.Mul(&c, twistB3)
	f.Add(&e, &e)
	f.Add(&f, &e)
	g.Add(&b, &f)
	g.Halve(&g)
	h.Add(&p.y, &p.z)
	h.Square(&h)
	t.Add(&b, &c)
	h.Sub(&h, &t)
	i.Sub(&e, &b)
	j.Square(&p.x)
	ee.Square(&e)

	t.Sub(&b, &f)
	p.x.Mul(&a, &t)
	t.Square(&g)
	a.Add(&ee, &ee)
	a.Add(&a, &ee)
	p.y.Sub(&t, &a)
	p.z.Mul(&b, &h)

	l.c0.MulScalar(&h, &pt.Y)
	l.c0.Neg(&l.c0)
	t.Add(&j, &j)
	t.Add(&t, &j)
	l.c1.MulScalar(&t, &pt.X)
	l.c3 = i
}

// addStepProj adds the affine point q to p in place and evaluates the chord
// line through them at the G1 point. With O = Y - yQ·Z, L = X - xQ·Z,
// t1 = L², t2 = L·t1, t3 = t1·X, W = O²·Z + t2 - 2t3:
//
//	X₃ = L·W, Y₃ = O·(t3 - W) - t2·Y, Z₃ = t2·Z
//
// and the line (up to the factor L) is -L·yP + O·xP·w + (L·yQ - O·xQ)·w³.
func (p *g2Proj) addStepProj(l *lineEval, q *G2, pt *G1) {
	opCounters.lineAdds.Add(1)
	var o, lam, t1, t2, t3, t4, w, t Fp2
	t.Mul(&q.Y, &p.z)
	o.Sub(&p.y, &t)
	t.Mul(&q.X, &p.z)
	lam.Sub(&p.x, &t)

	t1.Square(&lam)
	t2.Mul(&lam, &t1)
	t3.Mul(&t1, &p.x)
	t4.Square(&o)
	t4.Mul(&t4, &p.z)
	w.Add(&t4, &t2)
	t.Add(&t3, &t3)
	w.Sub(&w, &t)

	p.x.Mul(&lam, &w)
	t.Sub(&t3, &w)
	t.Mul(&t, &o)
	t4.Mul(&t2, &p.y)
	p.y.Sub(&t, &t4)
	p.z.Mul(&p.z, &t2)

	l.c0.MulScalar(&lam, &pt.Y)
	l.c0.Neg(&l.c0)
	l.c1.MulScalar(&o, &pt.X)
	t.Mul(&lam, &q.Y)
	t4.Mul(&o, &q.X)
	l.c3.Sub(&t, &t4)
}

// doubleStep doubles t in place and returns the tangent line at t evaluated
// at p (affine reference path, one Fp2 inversion per step).
func doubleStep(t *G2, p *G1) *lineEval {
	// lambda' = 3x²/(2y) on the twist.
	var lambda, s, den Fp2
	s.Square(&t.X)
	lambda.Add(&s, &s)
	lambda.Add(&lambda, &s)
	den.Add(&t.Y, &t.Y)
	lambda.Mul(&lambda, den.Inverse(&den))
	l := lineAt(t, &lambda, p)

	var x3, y3 Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.X)
	x3.Sub(&x3, &t.X)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X, t.Y = x3, y3
	return l
}

// addStep adds q to t in place and returns the chord line through (t, q)
// evaluated at p. t and q must be distinct non-identity points with
// different x (guaranteed along the ate loop for prime-order inputs).
func addStep(t *G2, q *G2, p *G1) *lineEval {
	var lambda, den Fp2
	lambda.Sub(&q.Y, &t.Y)
	den.Sub(&q.X, &t.X)
	lambda.Mul(&lambda, den.Inverse(&den))
	l := lineAt(t, &lambda, p)

	var x3, y3 Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.X)
	x3.Sub(&x3, &q.X)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X, t.Y = x3, y3
	return l
}

// lineAt evaluates the line through the twist point t with twist-slope
// lambda at the G1 point p. Under the untwist map (x, y) → (x·w², y·w³) the
// line value is (-y_p) + (lambda·x_p)·w + (y_t - lambda·x_t)·w³.
func lineAt(t *G2, lambda *Fp2, p *G1) *lineEval {
	l := &lineEval{}
	l.c1.MulScalar(lambda, &p.X)
	l.c3.Mul(lambda, &t.X)
	l.c3.Sub(&t.Y, &l.c3)
	l.c0.C0.Neg(&p.Y)
	l.c0.C1.SetZero()
	return l
}

// millerLoop computes f_{6u+2,Q}(P) · l_{T,π(Q)}(P) · l_{T+π(Q),-π²(Q)}(P),
// the unreduced optimal-ate pairing value, with a projective accumulator
// and sparse line accumulation. The result differs from millerLoopNaive by
// an Fp2 factor, which the final exponentiation removes; the differential
// tests compare the two paths after reduction.
func millerLoop(p *G1, q *G2) *Fp12 {
	opCounters.pairings.Add(1)
	var t g2Proj
	t.fromAffine(q)
	f := Fp12One()
	var l lineEval
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		opCounters.millerSquarings.Add(1)
		f.Square(f)
		t.doubleStepProj(&l, p)
		f.mulByLine(&l)
		if ateLoopCount.Bit(i) == 1 {
			t.addStepProj(&l, q, p)
			f.mulByLine(&l)
		}
	}
	q1 := new(G2).frobeniusTwist(q)
	t.addStepProj(&l, q1, p)
	f.mulByLine(&l)
	q2 := new(G2).frobeniusTwist(q1)
	q2.Neg(q2)
	t.addStepProj(&l, q2, p)
	f.mulByLine(&l)
	return f
}

// millerLoopNaive is the affine reference Miller loop with dense Fp12 line
// multiplication, retained as the differential oracle for the projective
// sparse path.
func millerLoopNaive(p *G1, q *G2) *Fp12 {
	f := Fp12One()
	t := new(G2).Set(q)
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		f.Mul(f, f)
		f.Mul(f, doubleStep(t, p).fp12())
		if ateLoopCount.Bit(i) == 1 {
			f.Mul(f, addStep(t, q, p).fp12())
		}
	}
	q1 := new(G2).frobeniusTwist(q)
	f.Mul(f, addStep(t, q1, p).fp12())
	q2 := new(G2).frobeniusTwist(q1)
	q2.Neg(q2)
	f.Mul(f, addStep(t, q2, p).fp12())
	return f
}

// easyPart computes f^((p^6-1)(p^2+1)), mapping f into the cyclotomic
// subgroup where elements are unitary (x^(p^6) = x⁻¹).
func easyPart(f *Fp12) *Fp12 {
	t := new(Fp12).Conjugate(f) // f^(p^6)
	t.Mul(t, new(Fp12).Inverse(f))
	t2 := new(Fp12).FrobeniusN(t, 2)
	return t2.Mul(t2, t)
}

// finalExponentiationNaive raises the easy-part result to the hard exponent
// (p^4-p^2+1)/r by plain square-and-multiply. It is the reference
// implementation the optimized path is tested against.
func finalExponentiationNaive(f *Fp12) *Fp12 {
	return new(Fp12).Exp(easyPart(f), finalExpHard)
}

// finalExponentiation maps an unreduced Miller value to the order-r
// cyclotomic subgroup: f^((p^12-1)/r). The hard part uses the
// Devegili–Scott–Dahab addition chain for BN curves: three exponentiations
// by the curve parameter u plus Frobenius maps and cheap unitary inversions
// (conjugations). Past the easy part every value is unitary, so all
// squarings — inside the u-exponentiations and in the chain itself — use
// the Granger–Scott cyclotomic formulas. Equivalence with the naive path is
// asserted by tests.
func finalExponentiation(f *Fp12) *Fp12 {
	opCounters.finalExps.Add(1)
	r := easyPart(f)

	fp := new(Fp12).Frobenius(r)
	fp2 := new(Fp12).FrobeniusN(r, 2)
	fp3 := new(Fp12).Frobenius(fp2)

	fu := new(Fp12).ExpCyclotomic(r, u)
	fu2 := new(Fp12).ExpCyclotomic(fu, u)
	fu3 := new(Fp12).ExpCyclotomic(fu2, u)

	y3 := new(Fp12).Frobenius(fu)
	fu2p := new(Fp12).Frobenius(fu2)
	fu3p := new(Fp12).Frobenius(fu3)
	y2 := new(Fp12).FrobeniusN(fu2, 2)

	y0 := new(Fp12).Mul(fp, fp2)
	y0.Mul(y0, fp3)
	// In the cyclotomic subgroup conjugation is inversion.
	y1 := new(Fp12).Conjugate(r)
	y5 := new(Fp12).Conjugate(fu2)
	y3.Conjugate(y3)
	y4 := new(Fp12).Mul(fu, fu2p)
	y4.Conjugate(y4)
	y6 := new(Fp12).Mul(fu3, fu3p)
	y6.Conjugate(y6)

	t0 := new(Fp12).CyclotomicSquare(y6)
	t0.Mul(t0, y4)
	t0.Mul(t0, y5)
	t1 := new(Fp12).Mul(y3, y5)
	t1.Mul(t1, t0)
	t0.Mul(t0, y2)
	t1.CyclotomicSquare(t1)
	t1.Mul(t1, t0)
	t1.CyclotomicSquare(t1)
	t0.Mul(t1, y1)
	t1.Mul(t1, y0)
	t0.CyclotomicSquare(t0)
	t0.Mul(t0, t1)
	return t0
}

// Pair computes the optimal-ate pairing e(p, q). Pairing with the identity
// in either slot yields the identity of GT. It is a one-pair wrapper over
// the lockstep multi-pairing kernel (see multipair.go); the per-pair
// millerLoop survives as the differential oracle.
func Pair(p *G1, q *G2) *GT {
	return PairMulti([]*G1{p}, []*G2{q})
}

// PairingCheck reports whether Π e(p_i, q_i) = 1. One lockstep Miller pass
// shares the accumulator squarings across all pairs, and one final
// exponentiation reduces the product.
func PairingCheck(ps []*G1, qs []*G2) bool {
	if len(ps) != len(qs) {
		return false
	}
	return PairMulti(ps, qs).IsOne()
}
