package bn254

import (
	"math/big"

	"mccls/internal/bn254/fp"
)

// GT is an element of the order-r target group (the cyclotomic subgroup of
// Fp12*). Values are produced by Pair and combined with Mul/Exp.
type GT struct {
	v *Fp12
}

// GTOne returns the identity of GT.
func GTOne() *GT { return &GT{v: Fp12One()} }

// Set copies x into z and returns z.
func (z *GT) Set(x *GT) *GT {
	z.v = new(Fp12).Set(x.v)
	return z
}

// Equal reports whether z and x represent the same GT element.
func (z *GT) Equal(x *GT) bool { return z.v.Equal(x.v) }

// IsOne reports whether z is the identity.
func (z *GT) IsOne() bool { return z.v.IsOne() }

// Mul sets z = a·b.
func (z *GT) Mul(a, b *GT) *GT {
	z.v = new(Fp12).Mul(a.v, b.v)
	return z
}

// Inverse sets z = a⁻¹. GT elements are unitary, so inversion is the p^6
// Frobenius (conjugation).
func (z *GT) Inverse(a *GT) *GT {
	z.v = new(Fp12).Conjugate(a.v)
	return z
}

// Exp sets z = a^k. Negative k inverts first.
func (z *GT) Exp(a *GT, k *big.Int) *GT {
	opCounters.gtExps.Add(1)
	e := new(big.Int).Mod(k, Order)
	z.v = new(Fp12).Exp(a.v, e)
	return z
}

// Marshal encodes z as the 12 Fp coefficients, 32 bytes each.
func (z *GT) Marshal() []byte {
	out := make([]byte, 12*32)
	for k := 0; k < 6; k++ {
		c0, c1 := z.v.C[k].C0.Bytes(), z.v.C[k].C1.Bytes()
		copy(out[64*k:64*k+32], c0[:])
		copy(out[64*k+32:64*k+64], c1[:])
	}
	return out
}

// lineEval is the sparse Fp12 element a + b·w + c·w³ produced by evaluating
// a Miller line at a G1 point; a ∈ Fp, b, c ∈ Fp2.
type lineEval struct {
	a fp.Element
	b Fp2
	c Fp2
}

// fp12 expands the sparse line into a full Fp12 element. Fp12.Mul skips
// zero coefficients, so multiplying by the expansion already exploits the
// sparsity.
func (l *lineEval) fp12() *Fp12 {
	z := &Fp12{}
	z.C[0].C0 = l.a
	z.C[1] = l.b
	z.C[3] = l.c
	return z
}

// doubleStep doubles t in place and returns the tangent line at t evaluated
// at p (both the line and the doubled point).
func doubleStep(t *G2, p *G1) *lineEval {
	// lambda' = 3x²/(2y) on the twist.
	var lambda, s, den Fp2
	s.Square(&t.X)
	lambda.Add(&s, &s)
	lambda.Add(&lambda, &s)
	den.Add(&t.Y, &t.Y)
	lambda.Mul(&lambda, den.Inverse(&den))
	l := lineAt(t, &lambda, p)

	var x3, y3 Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.X)
	x3.Sub(&x3, &t.X)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X, t.Y = x3, y3
	return l
}

// addStep adds q to t in place and returns the chord line through (t, q)
// evaluated at p. t and q must be distinct non-identity points with
// different x (guaranteed along the ate loop for prime-order inputs).
func addStep(t *G2, q *G2, p *G1) *lineEval {
	var lambda, den Fp2
	lambda.Sub(&q.Y, &t.Y)
	den.Sub(&q.X, &t.X)
	lambda.Mul(&lambda, den.Inverse(&den))
	l := lineAt(t, &lambda, p)

	var x3, y3 Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.X)
	x3.Sub(&x3, &q.X)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X, t.Y = x3, y3
	return l
}

// lineAt evaluates the line through the twist point t with twist-slope
// lambda at the G1 point p. Under the untwist map (x, y) → (x·w², y·w³) the
// line value is (-y_p) + (lambda·x_p)·w + (y_t - lambda·x_t)·w³.
func lineAt(t *G2, lambda *Fp2, p *G1) *lineEval {
	l := &lineEval{}
	l.b.MulScalar(lambda, &p.X)
	l.c.Mul(lambda, &t.X)
	l.c.Sub(&t.Y, &l.c)
	l.a.Neg(&p.Y)
	return l
}

// millerLoop computes f_{6u+2,Q}(P) · l_{T,π(Q)}(P) · l_{T+π(Q),-π²(Q)}(P),
// the unreduced optimal-ate pairing value.
func millerLoop(p *G1, q *G2) *Fp12 {
	opCounters.pairings.Add(1)
	f := Fp12One()
	t := new(G2).Set(q)
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		f.Mul(f, f)
		f.Mul(f, doubleStep(t, p).fp12())
		if ateLoopCount.Bit(i) == 1 {
			f.Mul(f, addStep(t, q, p).fp12())
		}
	}
	q1 := new(G2).frobeniusTwist(q)
	f.Mul(f, addStep(t, q1, p).fp12())
	q2 := new(G2).frobeniusTwist(q1)
	q2.Neg(q2)
	f.Mul(f, addStep(t, q2, p).fp12())
	return f
}

// easyPart computes f^((p^6-1)(p^2+1)), mapping f into the cyclotomic
// subgroup where elements are unitary (x^(p^6) = x⁻¹).
func easyPart(f *Fp12) *Fp12 {
	t := new(Fp12).Conjugate(f) // f^(p^6)
	t.Mul(t, new(Fp12).Inverse(f))
	t2 := new(Fp12).FrobeniusN(t, 2)
	return t2.Mul(t2, t)
}

// finalExponentiationNaive raises the easy-part result to the hard exponent
// (p^4-p^2+1)/r by plain square-and-multiply. It is the reference
// implementation the optimized path is tested against.
func finalExponentiationNaive(f *Fp12) *Fp12 {
	return new(Fp12).Exp(easyPart(f), finalExpHard)
}

// finalExponentiation maps an unreduced Miller value to the order-r
// cyclotomic subgroup: f^((p^12-1)/r). The hard part uses the
// Devegili–Scott–Dahab addition chain for BN curves: three
// exponentiations by the curve parameter u plus Frobenius maps and cheap
// unitary inversions (conjugations), roughly 4× faster than the naive
// 762-bit exponentiation. Equivalence with the naive path is asserted by
// tests.
func finalExponentiation(f *Fp12) *Fp12 {
	opCounters.finalExps.Add(1)
	r := easyPart(f)

	fp := new(Fp12).Frobenius(r)
	fp2 := new(Fp12).FrobeniusN(r, 2)
	fp3 := new(Fp12).Frobenius(fp2)

	fu := new(Fp12).Exp(r, u)
	fu2 := new(Fp12).Exp(fu, u)
	fu3 := new(Fp12).Exp(fu2, u)

	y3 := new(Fp12).Frobenius(fu)
	fu2p := new(Fp12).Frobenius(fu2)
	fu3p := new(Fp12).Frobenius(fu3)
	y2 := new(Fp12).FrobeniusN(fu2, 2)

	y0 := new(Fp12).Mul(fp, fp2)
	y0.Mul(y0, fp3)
	// In the cyclotomic subgroup conjugation is inversion.
	y1 := new(Fp12).Conjugate(r)
	y5 := new(Fp12).Conjugate(fu2)
	y3.Conjugate(y3)
	y4 := new(Fp12).Mul(fu, fu2p)
	y4.Conjugate(y4)
	y6 := new(Fp12).Mul(fu3, fu3p)
	y6.Conjugate(y6)

	t0 := new(Fp12).Square(y6)
	t0.Mul(t0, y4)
	t0.Mul(t0, y5)
	t1 := new(Fp12).Mul(y3, y5)
	t1.Mul(t1, t0)
	t0.Mul(t0, y2)
	t1.Square(t1)
	t1.Mul(t1, t0)
	t1.Square(t1)
	t0.Mul(t1, y1)
	t1.Mul(t1, y0)
	t0.Square(t0)
	t0.Mul(t0, t1)
	return t0
}

// Pair computes the optimal-ate pairing e(p, q). Pairing with the identity
// in either slot yields the identity of GT.
func Pair(p *G1, q *G2) *GT {
	if p.IsInfinity() || q.IsInfinity() {
		return GTOne()
	}
	return &GT{v: finalExponentiation(millerLoop(p, q))}
}

// PairingCheck reports whether Π e(p_i, q_i) = 1. It shares one final
// exponentiation across all Miller loops.
func PairingCheck(ps []*G1, qs []*G2) bool {
	if len(ps) != len(qs) {
		return false
	}
	acc := Fp12One()
	nontrivial := false
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		acc.Mul(acc, millerLoop(ps[i], qs[i]))
		nontrivial = true
	}
	if !nontrivial {
		return true
	}
	return finalExponentiation(acc).IsOne()
}
