package bn254

import (
	"fmt"
	"math/big"

	"mccls/internal/bn254/fp"
)

// Compressed point encodings: a signature's R and S components dominate
// McCLS's per-packet overhead in the MANET, so points can be shipped as an
// x-coordinate plus one sign bit, halving the wire size at the cost of a
// square root on decode.
//
// Prefix bytes follow the SEC1 convention: 0x00 = infinity (rest zero),
// 0x02/0x03 = compressed with the sign of y.

const (
	prefixInfinity   = 0x00
	prefixEvenY      = 0x02
	prefixOddY       = 0x03
	g1CompressedSize = 1 + 32
	g2CompressedSize = 1 + 64
)

// fp2IsNeg orders Fp2 lexicographically by (C1, C0) signs: the C1 sign
// decides unless C1 is zero, in which case the C0 sign does. The Fp "sign"
// is fp.Element.IsNeg: whether the value exceeds (p-1)/2, which is stable
// under negation (exactly one of y, -y is "negative").
func fp2IsNeg(a *Fp2) bool {
	if !a.C1.IsZero() {
		return a.C1.IsNeg()
	}
	return a.C0.IsNeg()
}

// MarshalCompressed encodes z in 33 bytes.
func (z *G1) MarshalCompressed() []byte {
	out := make([]byte, g1CompressedSize)
	if z.Inf {
		return out
	}
	if z.Y.IsNeg() {
		out[0] = prefixOddY
	} else {
		out[0] = prefixEvenY
	}
	xb := z.X.Bytes()
	copy(out[1:], xb[:])
	return out
}

// UnmarshalCompressed decodes a point produced by MarshalCompressed,
// solving the curve equation for y.
func (z *G1) UnmarshalCompressed(data []byte) error {
	if len(data) != g1CompressedSize {
		return fmt.Errorf("%w: compressed G1 wants %d bytes, got %d", ErrInvalidPoint, g1CompressedSize, len(data))
	}
	switch data[0] {
	case prefixInfinity:
		for _, b := range data[1:] {
			if b != 0 {
				return fmt.Errorf("%w: nonzero infinity encoding", ErrInvalidPoint)
			}
		}
		z.Set(G1Infinity())
		return nil
	case prefixEvenY, prefixOddY:
	default:
		return fmt.Errorf("%w: unknown prefix 0x%02x", ErrInvalidPoint, data[0])
	}
	xBig := new(big.Int).SetBytes(data[1:])
	if xBig.Cmp(P) >= 0 {
		return fmt.Errorf("%w: x out of range", ErrInvalidPoint)
	}
	var x, rhs, y fp.Element
	x.SetBigInt(xBig)
	rhs.Square(&x)
	rhs.Mul(&rhs, &x)
	rhs.Add(&rhs, &curveB)
	if !y.Sqrt(&rhs) {
		return fmt.Errorf("%w: x not on curve", ErrInvalidPoint)
	}
	if y.IsNeg() != (data[0] == prefixOddY) {
		y.Neg(&y)
	}
	z.X, z.Y, z.Inf = x, y, false
	return nil
}

// MarshalCompressed encodes z in 65 bytes.
func (z *G2) MarshalCompressed() []byte {
	out := make([]byte, g2CompressedSize)
	if z.Inf {
		return out
	}
	if fp2IsNeg(&z.Y) {
		out[0] = prefixOddY
	} else {
		out[0] = prefixEvenY
	}
	c0, c1 := z.X.C0.Bytes(), z.X.C1.Bytes()
	copy(out[1:33], c0[:])
	copy(out[33:], c1[:])
	return out
}

// UnmarshalCompressed decodes a point produced by MarshalCompressed,
// validating subgroup membership as Unmarshal does.
func (z *G2) UnmarshalCompressed(data []byte) error {
	if len(data) != g2CompressedSize {
		return fmt.Errorf("%w: compressed G2 wants %d bytes, got %d", ErrInvalidPoint, g2CompressedSize, len(data))
	}
	switch data[0] {
	case prefixInfinity:
		for _, b := range data[1:] {
			if b != 0 {
				return fmt.Errorf("%w: nonzero infinity encoding", ErrInvalidPoint)
			}
		}
		z.Set(G2Infinity())
		return nil
	case prefixEvenY, prefixOddY:
	default:
		return fmt.Errorf("%w: unknown prefix 0x%02x", ErrInvalidPoint, data[0])
	}
	c0 := new(big.Int).SetBytes(data[1:33])
	c1 := new(big.Int).SetBytes(data[33:])
	if c0.Cmp(P) >= 0 || c1.Cmp(P) >= 0 {
		return fmt.Errorf("%w: x out of range", ErrInvalidPoint)
	}
	x := fp2FromBig(c0, c1)
	var rhs, y Fp2
	rhs.Square(x)
	rhs.Mul(&rhs, x)
	rhs.Add(&rhs, twistB)
	if y.Sqrt(&rhs) == nil {
		return fmt.Errorf("%w: x not on twist curve", ErrInvalidPoint)
	}
	if fp2IsNeg(&y) != (data[0] == prefixOddY) {
		y.Neg(&y)
	}
	cand := &G2{X: *x, Y: y}
	if !cand.IsInSubgroup() {
		return fmt.Errorf("%w: G2 point not in subgroup", ErrInvalidPoint)
	}
	z.Set(cand)
	return nil
}
