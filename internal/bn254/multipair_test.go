package bn254

import (
	"math/big"
	"testing"
)

// productOfSingleLoops is the differential oracle for the lockstep kernel:
// the product of independent per-pair Miller loops, skipping trivial pairs
// exactly as MillerLoopMulti documents.
func productOfSingleLoops(ps []*G1, qs []*G2) *Fp12 {
	acc := Fp12One()
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		acc.Mul(acc, millerLoop(ps[i], qs[i]))
	}
	return acc
}

func TestMillerLoopMultiMatchesSingle(t *testing.T) {
	r := testRand()
	for n := 1; n <= 5; n++ {
		ps := make([]*G1, n)
		qs := make([]*G2, n)
		for i := range ps {
			ps[i] = new(G1).ScalarBaseMult(randScalar(r))
			qs[i] = new(G2).ScalarBaseMult(randScalar(r))
		}
		got := MillerLoopMulti(ps, qs)
		want := productOfSingleLoops(ps, qs)
		if !got.Equal(want) {
			t.Fatalf("lockstep Miller product diverges from per-pair oracle at n=%d", n)
		}
		// The reduced product must agree with the product of Pair values.
		gt := GTOne()
		for i := range ps {
			gt.Mul(gt, Pair(ps[i], qs[i]))
		}
		if !PairMulti(ps, qs).Equal(gt) {
			t.Fatalf("PairMulti diverges from Π Pair at n=%d", n)
		}
	}
}

func TestMillerLoopMultiInfinity(t *testing.T) {
	r := testRand()
	p := new(G1).ScalarBaseMult(randScalar(r))
	q := new(G2).ScalarBaseMult(randScalar(r))

	// All-trivial batches reduce to the identity.
	if !MillerLoopMulti(nil, nil).IsOne() {
		t.Fatal("empty batch should be the identity")
	}
	if !MillerLoopMulti([]*G1{G1Infinity()}, []*G2{q}).IsOne() {
		t.Fatal("infinity-only batch should be the identity")
	}
	if !PairMulti([]*G1{p}, []*G2{G2Infinity()}).IsOne() {
		t.Fatal("reduced infinity-only batch should be the identity")
	}

	// Trivial pairs interleaved with real ones must be skipped, not folded.
	ps := []*G1{p, G1Infinity(), p}
	qs := []*G2{q, q, G2Infinity()}
	if got, want := MillerLoopMulti(ps, qs), millerLoop(p, q); !got.Equal(want) {
		t.Fatal("interleaved infinity entries change the Miller product")
	}
}

func TestPairingCheckDegenerate(t *testing.T) {
	r := testRand()
	p := new(G1).ScalarBaseMult(randScalar(r))
	if PairingCheck([]*G1{p}, nil) {
		t.Fatal("length mismatch must reject")
	}
	if !PairingCheck(nil, nil) {
		t.Fatal("empty check must accept")
	}
	if !PairingCheck([]*G1{G1Infinity()}, []*G2{G2Infinity()}) {
		t.Fatal("all-trivial check must accept")
	}
}

// TestMillerLoopMultiOpCounts pins the amortization the lockstep kernel
// exists for: a batch of n pairs costs ONE shared accumulator squaring per
// ate-loop iteration (64 total, independent of n) while the line work —
// doubling steps, addition steps and sparse multiplications — scales with
// n exactly as in the single-pair loop.
func TestMillerLoopMultiOpCounts(t *testing.T) {
	r := testRand()
	const n = uint64(5)
	ps := make([]*G1, n)
	qs := make([]*G2, n)
	for i := range ps {
		ps[i] = new(G1).ScalarBaseMult(randScalar(r))
		qs[i] = new(G2).ScalarBaseMult(randScalar(r))
	}

	iters := uint64(ateLoopCount.BitLen() - 1)
	popcount := uint64(0)
	for i := 0; i < ateLoopCount.BitLen()-1; i++ {
		if ateLoopCount.Bit(i) == 1 {
			popcount++
		}
	}
	addsPerPair := popcount + 2

	before := ReadOpCounts()
	MillerLoopMulti(ps, qs)
	d := ReadOpCounts().Sub(before)

	if d.MillerSquarings != iters {
		t.Fatalf("batch of %d shared %d accumulator squarings, want %d (one per iteration)", n, d.MillerSquarings, iters)
	}
	if d.LineDoubles != n*iters {
		t.Fatalf("batch of %d ran %d doubling steps, want %d", n, d.LineDoubles, n*iters)
	}
	if d.LineAdds != n*addsPerPair {
		t.Fatalf("batch of %d ran %d addition steps, want %d", n, d.LineAdds, n*addsPerPair)
	}
	if want := n * (iters + addsPerPair); d.SparseMuls != want {
		t.Fatalf("batch of %d ran %d sparse multiplications, want %d", n, d.SparseMuls, want)
	}
	if d.Pairings != n {
		t.Fatalf("batch of %d counted %d pairings, want %d", n, d.Pairings, n)
	}

	// The single-pair loop pays the same squaring count for ONE pair — the
	// baseline the batch amortizes against.
	before = ReadOpCounts()
	millerLoop(ps[0], qs[0])
	d = ReadOpCounts().Sub(before)
	if d.MillerSquarings != iters {
		t.Fatalf("single Miller loop used %d accumulator squarings, want %d", d.MillerSquarings, iters)
	}
}

// FuzzMillerLoopMultiVsSingle pins the lockstep kernel byte-identical to
// the product of per-pair millerLoop results on fuzzed batches, including
// infinity entries and length-1 batches.
func FuzzMillerLoopMultiVsSingle(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, byte(1), byte(0))
	f.Add([]byte{7, 7}, []byte{9}, byte(4), byte(1))
	f.Add([]byte{255}, []byte{255, 255}, byte(2), byte(2))
	f.Fuzz(func(t *testing.T, aBytes, bBytes []byte, nRaw, infMask byte) {
		n := int(nRaw%4) + 1 // batch sizes 1..4, so length-1 is fuzzed too
		a := new(big.Int).SetBytes(aBytes)
		b := new(big.Int).SetBytes(bBytes)
		ps := make([]*G1, n)
		qs := make([]*G2, n)
		for i := 0; i < n; i++ {
			ka := new(big.Int).Mod(new(big.Int).Add(a, big.NewInt(int64(i+1))), Order)
			kb := new(big.Int).Mod(new(big.Int).Add(b, big.NewInt(int64(3*i+1))), Order)
			ps[i] = new(G1).ScalarBaseMult(ka)
			qs[i] = new(G2).ScalarBaseMult(kb)
			// Scalar 0 already yields infinity; the mask forces more.
			if infMask&(1<<uint(i)) != 0 {
				if i%2 == 0 {
					ps[i] = G1Infinity()
				} else {
					qs[i] = G2Infinity()
				}
			}
		}
		got := MillerLoopMulti(ps, qs)
		want := productOfSingleLoops(ps, qs)
		if !got.Equal(want) {
			t.Fatalf("lockstep product diverges: n=%d a=%v b=%v mask=%08b", n, a, b, infMask)
		}
	})
}
