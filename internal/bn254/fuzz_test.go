package bn254

import (
	"bytes"
	"testing"
)

// Fuzzers for the untrusted decode paths. Without -fuzz they run the seed
// corpus as regular tests; the invariants are "never panic" and "anything
// accepted re-encodes canonically".

func FuzzG1Unmarshal(f *testing.F) {
	f.Add(G1Generator().Marshal())
	f.Add(G1Infinity().Marshal())
	f.Add(make([]byte, 64))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G1
		if err := p.Unmarshal(data); err != nil {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve point")
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}

func FuzzG1UnmarshalCompressed(f *testing.F) {
	f.Add(G1Generator().MarshalCompressed())
	f.Add(G1Infinity().MarshalCompressed())
	f.Add(append([]byte{0x03}, make([]byte, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G1
		if err := p.UnmarshalCompressed(data); err != nil {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve point")
		}
		if !bytes.Equal(p.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed encoding")
		}
	})
}

func FuzzG2Unmarshal(f *testing.F) {
	f.Add(G2Generator().Marshal())
	f.Add(G2Infinity().Marshal())
	f.Add(make([]byte, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G2
		if err := p.Unmarshal(data); err != nil {
			return
		}
		if !p.IsInSubgroup() {
			t.Fatal("accepted point outside the subgroup")
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}

func FuzzG2UnmarshalCompressed(f *testing.F) {
	f.Add(G2Generator().MarshalCompressed())
	f.Add(G2Infinity().MarshalCompressed())
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G2
		if err := p.UnmarshalCompressed(data); err != nil {
			return
		}
		if !p.IsInSubgroup() {
			t.Fatal("accepted point outside the subgroup")
		}
		if !bytes.Equal(p.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed encoding")
		}
	})
}
