package bn254

import (
	"bytes"
	"math/big"
	"testing"

	"mccls/internal/bn254/fp"
)

// Fuzzers for the untrusted decode paths. Without -fuzz they run the seed
// corpus as regular tests; the invariants are "never panic" and "anything
// accepted re-encodes canonically".

func FuzzG1Unmarshal(f *testing.F) {
	f.Add(G1Generator().Marshal())
	f.Add(G1Infinity().Marshal())
	f.Add(make([]byte, 64))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G1
		if err := p.Unmarshal(data); err != nil {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve point")
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}

func FuzzG1UnmarshalCompressed(f *testing.F) {
	f.Add(G1Generator().MarshalCompressed())
	f.Add(G1Infinity().MarshalCompressed())
	f.Add(append([]byte{0x03}, make([]byte, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G1
		if err := p.UnmarshalCompressed(data); err != nil {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve point")
		}
		if !bytes.Equal(p.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed encoding")
		}
	})
}

func FuzzG2Unmarshal(f *testing.F) {
	f.Add(G2Generator().Marshal())
	f.Add(G2Infinity().Marshal())
	f.Add(make([]byte, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G2
		if err := p.Unmarshal(data); err != nil {
			return
		}
		if !p.IsInSubgroup() {
			t.Fatal("accepted point outside the subgroup")
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}

// fuzzFpSeed packs two big.Ints into fixed 32-byte seeds. Values up to
// 2^256-1 fit; FillBytes panics beyond that, which no seed reaches.
func fuzzFpSeed(f *testing.F, a, b *big.Int) {
	var ab, bb [32]byte
	a.FillBytes(ab[:])
	b.FillBytes(bb[:])
	f.Add(ab[:], bb[:])
}

// FuzzFpVsBigInt differentially fuzzes the fixed-width Montgomery Fp
// arithmetic against the math/big oracle retained in fpref_test.go. Inputs
// are raw 32-byte strings; values ≥ p are first shown to be non-canonical
// (so every decode boundary rejects them) and then reduced so the
// arithmetic itself is still exercised on the reduced residues.
func FuzzFpVsBigInt(f *testing.F) {
	pm1 := new(big.Int).Sub(P, big.NewInt(1))
	max256 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	fuzzFpSeed(f, big.NewInt(0), big.NewInt(1))
	fuzzFpSeed(f, pm1, pm1)
	fuzzFpSeed(f, new(big.Int).Set(P), big.NewInt(2))
	fuzzFpSeed(f, max256, pm1)
	f.Fuzz(func(t *testing.T, aBytes, bBytes []byte) {
		aBig := new(big.Int).SetBytes(aBytes)
		bBig := new(big.Int).SetBytes(bBytes)
		for _, v := range []*big.Int{aBig, bBig} {
			if v.Cmp(P) >= 0 && v.BitLen() <= 256 {
				// An out-of-range value must never round-trip: SetBigInt
				// reduces, so its canonical encoding differs from the raw
				// input and decoders comparing canonical bytes reject it.
				var e fp.Element
				e.SetBigInt(v)
				var raw [32]byte
				v.FillBytes(raw[:])
				if e.Bytes() == raw {
					t.Fatalf("value ≥ p round-tripped canonically: %v", v)
				}
			}
		}
		aBig.Mod(aBig, P)
		bBig.Mod(bBig, P)
		var a, b fp.Element
		a.SetBigInt(aBig)
		b.SetBigInt(bBig)
		check := func(op string, got *fp.Element, want *big.Int) {
			if got.BigInt().Cmp(want) != 0 {
				t.Fatalf("%s mismatch: a=%v b=%v got=%v want=%v", op, aBig, bBig, got.BigInt(), want)
			}
		}
		var z fp.Element
		check("add", z.Add(&a, &b), fpAddRef(aBig, bBig))
		check("sub", z.Sub(&a, &b), fpSubRef(aBig, bBig))
		check("mul", z.Mul(&a, &b), fpMulRef(aBig, bBig))
		check("square", z.Square(&a), fpMulRef(aBig, aBig))
		check("neg", z.Neg(&a), fpNegRef(aBig))
		check("double", z.Double(&b), fpAddRef(bBig, bBig))
		wantInv := fpInvRef(aBig)
		if ok := z.Inverse(&a); ok != (wantInv != nil) {
			t.Fatalf("inverse ok mismatch for %v: got %v", aBig, ok)
		} else if ok {
			check("inv", &z, wantInv)
		}
		wantSqrt := fpSqrtRef(aBig)
		if ok := z.Sqrt(&a); ok != (wantSqrt != nil) {
			t.Fatalf("sqrt ok mismatch for %v: got %v", aBig, ok)
		} else if ok {
			// Both sides compute x^((p+1)/4), the same principal root.
			check("sqrt", &z, wantSqrt)
		}
		// Canonical byte round trip.
		var rt fp.Element
		rt.SetBigInt(new(big.Int).SetBytes(func() []byte { x := a.Bytes(); return x[:] }()))
		if !rt.Equal(&a) {
			t.Fatalf("byte round trip mismatch for %v", aBig)
		}
	})
}

// FuzzFp2VsBigInt does the same for the quadratic extension, driving the
// tower arithmetic (and thus everything the pairing is built from) against
// the fp2Ref oracle.
func FuzzFp2VsBigInt(f *testing.F) {
	pm1 := new(big.Int).Sub(P, big.NewInt(1))
	max256 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	seed := func(c0a, c1a, c0b, c1b *big.Int) {
		var w [4][32]byte
		for i, v := range []*big.Int{c0a, c1a, c0b, c1b} {
			v.FillBytes(w[i][:])
		}
		f.Add(w[0][:], w[1][:], w[2][:], w[3][:])
	}
	seed(big.NewInt(0), big.NewInt(0), big.NewInt(1), big.NewInt(0))
	seed(pm1, pm1, big.NewInt(1), pm1)
	seed(new(big.Int).Set(P), big.NewInt(9), big.NewInt(1), max256)
	f.Fuzz(func(t *testing.T, c0a, c1a, c0b, c1b []byte) {
		ar := newFp2Ref(new(big.Int).SetBytes(c0a), new(big.Int).SetBytes(c1a))
		br := newFp2Ref(new(big.Int).SetBytes(c0b), new(big.Int).SetBytes(c1b))
		a, b := ar.toFp2(), br.toFp2()
		check := func(op string, got *Fp2, want *fp2Ref) {
			if !want.equalFp2(got) {
				t.Fatalf("%s mismatch: got (%s,%s) want (%v,%v)",
					op, got.C0.BigInt(), got.C1.BigInt(), want.c0, want.c1)
			}
		}
		check("add", new(Fp2).Add(a, b), new(fp2Ref).add(ar, br))
		check("sub", new(Fp2).Sub(a, b), new(fp2Ref).sub(ar, br))
		check("mul", new(Fp2).Mul(a, b), new(fp2Ref).mul(ar, br))
		check("square", new(Fp2).Square(a), new(fp2Ref).mul(ar, ar))
		wantInv := new(fp2Ref).inv(ar)
		if a.IsZero() != (wantInv == nil) {
			t.Fatalf("inverse zero detection mismatch")
		}
		if wantInv != nil {
			check("inv", new(Fp2).Inverse(a), wantInv)
			// a · a⁻¹ = 1 closes the loop entirely inside the new code.
			prod := new(Fp2).Mul(a, new(Fp2).Inverse(a))
			if !prod.IsOne() {
				t.Fatal("a·a⁻¹ != 1")
			}
		}
	})
}

func FuzzG2UnmarshalCompressed(f *testing.F) {
	f.Add(G2Generator().MarshalCompressed())
	f.Add(G2Infinity().MarshalCompressed())
	f.Fuzz(func(t *testing.T, data []byte) {
		var p G2
		if err := p.UnmarshalCompressed(data); err != nil {
			return
		}
		if !p.IsInSubgroup() {
			t.Fatal("accepted point outside the subgroup")
		}
		if !bytes.Equal(p.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed encoding")
		}
	})
}
