package bn254

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Differential tests for the fast scalar-multiplication and pairing kernels
// against the slow paths they replaced: GLV+wNAF vs the plain Jacobian
// ladder, the fixed-base table vs the generic ladder, the projective sparse
// Miller loop vs the affine dense one, and the cyclotomic exponentiation vs
// generic square-and-multiply.

func randG1(t *testing.T, k *big.Int) *G1 {
	t.Helper()
	return g1ScalarMultJac(G1Generator(), new(big.Int).Mod(k, Order))
}

// TestGLVSplitBounds checks that the Babai decomposition really produces
// half-length sub-scalars (|k1|, |k2| < 2^130 — the theoretical bound is
// ~√r ≈ 2^127 plus the lattice covering radius) and that it is a
// decomposition at all: k1 + k2·λ ≡ k (mod r).
func TestGLVSplitBounds(t *testing.T) {
	bound := new(big.Int).Lsh(big.NewInt(1), 130)
	r := testRand()
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(glvLambda),
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, randScalar(r))
	}
	for _, k := range cases {
		k1, k2 := glvSplit(k)
		if new(big.Int).Abs(k1).Cmp(bound) >= 0 || new(big.Int).Abs(k2).Cmp(bound) >= 0 {
			t.Fatalf("sub-scalar exceeds 2^130 for k=%v: k1=%v k2=%v", k, k1, k2)
		}
		recomposed := new(big.Int).Mul(k2, glvLambda)
		recomposed.Add(recomposed, k1)
		recomposed.Mod(recomposed, Order)
		if recomposed.Cmp(new(big.Int).Mod(k, Order)) != 0 {
			t.Fatalf("k1 + k2·λ ≢ k for k=%v", k)
		}
	}
}

// TestG1GLVMatchesJacobian drives the GLV ladder against the plain Jacobian
// ladder on random points and scalars.
func TestG1GLVMatchesJacobian(t *testing.T) {
	f := func(pSeed, kSeed int64) bool {
		p := randG1(t, big.NewInt(pSeed))
		k := new(big.Int).Mod(new(big.Int).Mul(big.NewInt(kSeed), new(big.Int).Lsh(big.NewInt(kSeed), 120)), Order)
		return g1ScalarMultGLV(p, k).Equal(g1ScalarMultJac(p, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
	// Full-width random scalars and edge scalars on a random point.
	r := testRand()
	p := randG1(t, randScalar(r))
	edges := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(glvLambda),
		new(big.Int).Sub(Order, glvLambda),
	}
	for i := 0; i < 16; i++ {
		edges = append(edges, randScalar(r))
	}
	for _, k := range edges {
		if !g1ScalarMultGLV(p, k).Equal(g1ScalarMultJac(p, k)) {
			t.Fatalf("GLV diverges from Jacobian ladder at k=%v", k)
		}
	}
	if !g1ScalarMultGLV(G1Infinity(), big.NewInt(7)).IsInfinity() {
		t.Fatal("GLV of infinity is not infinity")
	}
}

// TestG1FixedBaseMatchesJacobian drives the fixed-base table path against
// the generic ladder on the generator.
func TestG1FixedBaseMatchesJacobian(t *testing.T) {
	r := testRand()
	g := G1Generator()
	ks := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(255), big.NewInt(256),
		new(big.Int).Sub(Order, big.NewInt(1)),
	}
	for i := 0; i < 24; i++ {
		ks = append(ks, randScalar(r))
	}
	for _, k := range ks {
		if !g1ScalarBaseMultAdd(k, nil).Equal(g1ScalarMultJac(g, k)) {
			t.Fatalf("fixed-base table diverges from ladder at k=%v", k)
		}
	}
}

// TestScalarBaseMultAdd checks the fused k·G + q path, including the
// cancellation case k·G + (-k·G) = O and a nil/identity extra.
func TestScalarBaseMultAdd(t *testing.T) {
	r := testRand()
	for i := 0; i < 8; i++ {
		k := randScalar(r)
		q := randG1(t, randScalar(r))
		want := new(G1).Add(g1ScalarMultJac(G1Generator(), k), q)
		if !new(G1).ScalarBaseMultAdd(k, q).Equal(want) {
			t.Fatalf("ScalarBaseMultAdd diverges at iteration %d", i)
		}
	}
	k := randScalar(r)
	neg := new(G1).Neg(g1ScalarMultJac(G1Generator(), k))
	if !new(G1).ScalarBaseMultAdd(k, neg).IsInfinity() {
		t.Fatal("k·G - k·G should be the identity")
	}
	if !new(G1).ScalarBaseMultAdd(big.NewInt(0), G1Infinity()).IsInfinity() {
		t.Fatal("0·G + O should be the identity")
	}
	if !new(G1).ScalarBaseMultAdd(k, G1Infinity()).Equal(new(G1).ScalarBaseMult(k)) {
		t.Fatal("identity extra should be a no-op")
	}
}

// TestG2WNAFMatchesJacobian drives the width-5 wNAF G2 ladder against the
// plain Jacobian ladder, including unreduced cofactor-sized scalars as used
// by HashToG2 and the subgroup check.
func TestG2WNAFMatchesJacobian(t *testing.T) {
	r := testRand()
	q := new(G2).ScalarBaseMult(randScalar(r))
	ks := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(g2Cofactor), // wider than r: exercises the unreduced path
		new(big.Int).Mul(Order, big.NewInt(3)),
	}
	for i := 0; i < 12; i++ {
		ks = append(ks, randScalar(r))
	}
	for _, k := range ks {
		if !g2ScalarMultWNAF(q, k).Equal(g2ScalarMultJac(q, k)) {
			t.Fatalf("G2 wNAF diverges from Jacobian ladder at k=%v", k)
		}
	}
	if !g2ScalarMultWNAF(G2Infinity(), big.NewInt(5)).IsInfinity() {
		t.Fatal("wNAF of infinity is not infinity")
	}
}

// TestWnafDigitsRecompose checks the recoding invariants directly: digits
// recompose to the scalar, every nonzero digit is odd and |d| ≤ 15.
func TestWnafDigitsRecompose(t *testing.T) {
	r := testRand()
	for i := 0; i < 50; i++ {
		k := randScalar(r)
		digits := wnafDigits(k, wnafWindow)
		acc := new(big.Int)
		for j := len(digits) - 1; j >= 0; j-- {
			acc.Lsh(acc, 1)
			acc.Add(acc, big.NewInt(int64(digits[j])))
			if d := digits[j]; d != 0 && (d%2 == 0 || d > 15 || d < -15) {
				t.Fatalf("invalid wNAF digit %d", d)
			}
		}
		if acc.Cmp(k) != 0 {
			t.Fatalf("wNAF digits do not recompose: got %v want %v", acc, k)
		}
		naf := nafDigits(k)
		acc.SetInt64(0)
		for j := len(naf) - 1; j >= 0; j-- {
			acc.Lsh(acc, 1)
			acc.Add(acc, big.NewInt(int64(naf[j])))
			if j > 0 && naf[j] != 0 && naf[j-1] != 0 {
				t.Fatal("adjacent nonzero NAF digits")
			}
		}
		if acc.Cmp(k) != 0 {
			t.Fatalf("NAF digits do not recompose: got %v want %v", acc, k)
		}
	}
}

// TestCyclotomicSquareMatchesGeneric checks the Granger–Scott squaring
// against the generic Fp12 squaring on cyclotomic-subgroup elements (where
// it is only valid) produced by the easy part of the final exponentiation.
func TestCyclotomicSquareMatchesGeneric(t *testing.T) {
	r := testRand()
	for i := 0; i < 6; i++ {
		p := new(G1).ScalarBaseMult(randScalar(r))
		q := new(G2).ScalarBaseMult(randScalar(r))
		u := easyPart(millerLoop(p, q))
		fast := new(Fp12).CyclotomicSquare(u)
		generic := new(Fp12).Square(u)
		if !fast.Equal(generic) {
			t.Fatalf("cyclotomic squaring diverges on unitary element (iteration %d)", i)
		}
	}
}

// TestExpCyclotomicMatchesExp checks the NAF/conjugate exponentiation ladder
// against plain square-and-multiply on cyclotomic elements.
func TestExpCyclotomicMatchesExp(t *testing.T) {
	r := testRand()
	p := new(G1).ScalarBaseMult(randScalar(r))
	q := new(G2).ScalarBaseMult(randScalar(r))
	base := easyPart(millerLoop(p, q))
	exps := []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Set(u), randScalar(r)}
	for _, e := range exps {
		fast := new(Fp12).ExpCyclotomic(base, e)
		naive := new(Fp12).Exp(base, e)
		if !fast.Equal(naive) {
			t.Fatalf("cyclotomic exponentiation diverges at e=%v", e)
		}
	}
}

// TestMillerLoopSparseMatchesNaive compares the projective sparse Miller
// loop with the affine dense oracle. The two unreduced values differ by an
// Fp2 factor (the projective line drops denominators), and any Fp2 factor
// is killed by the easy part of the final exponentiation — so equality is
// asserted on the reduced pairing values.
func TestMillerLoopSparseMatchesNaive(t *testing.T) {
	r := testRand()
	for i := 0; i < 4; i++ {
		p := new(G1).ScalarBaseMult(randScalar(r))
		q := new(G2).ScalarBaseMult(randScalar(r))
		fast := finalExponentiation(millerLoop(p, q))
		naive := finalExponentiation(millerLoopNaive(p, q))
		if !fast.Equal(naive) {
			t.Fatalf("projective sparse Miller loop diverges from affine oracle (iteration %d)", i)
		}
	}
}

// TestMulByLineMatchesDense checks the hand-scheduled sparse multiplication
// against a dense multiply by the expanded line.
func TestMulByLineMatchesDense(t *testing.T) {
	r := testRand()
	for i := 0; i < 8; i++ {
		z := &Fp12{}
		for k := range z.C {
			z.C[k] = *randFp2(r)
		}
		l := lineEval{c0: *randFp2(r), c1: *randFp2(r), c3: *randFp2(r)}
		dense := new(Fp12).Mul(z, l.fp12())
		sparse := new(Fp12).Set(z).mulByLine(&l)
		if !sparse.Equal(dense) {
			t.Fatalf("sparse line multiplication diverges (iteration %d)", i)
		}
	}
}

// TestMillerLoopOpCounts pins the line-operation profile of one Miller loop
// to the ate-loop structure: 6u+2 has bit length 65, so 64 doubling steps;
// addition steps are one per set bit below the MSB plus the two Frobenius
// correction lines; sparse multiplications one per line. A refactor that
// silently falls back to dense or generic arithmetic changes these counts
// and fails here.
func TestMillerLoopOpCounts(t *testing.T) {
	r := testRand()
	p := new(G1).ScalarBaseMult(randScalar(r))
	q := new(G2).ScalarBaseMult(randScalar(r))

	wantDoubles := uint64(ateLoopCount.BitLen() - 1)
	popcount := 0
	for i := 0; i < ateLoopCount.BitLen()-1; i++ {
		if ateLoopCount.Bit(i) == 1 {
			popcount++
		}
	}
	wantAdds := uint64(popcount) + 2
	if wantDoubles != 64 {
		t.Fatalf("ate loop length changed: %d doubling steps", wantDoubles)
	}

	before := ReadOpCounts()
	millerLoop(p, q)
	d := ReadOpCounts().Sub(before)
	if d.LineDoubles != wantDoubles {
		t.Fatalf("Miller loop ran %d doubling steps, want %d", d.LineDoubles, wantDoubles)
	}
	if d.LineAdds != wantAdds {
		t.Fatalf("Miller loop ran %d addition steps, want %d", d.LineAdds, wantAdds)
	}
	if want := wantDoubles + wantAdds; d.SparseMuls != want {
		t.Fatalf("Miller loop ran %d sparse multiplications, want %d", d.SparseMuls, want)
	}

	// The final exponentiation must run its squarings cyclotomically: three
	// exponentiations by u (62 NAF squarings each at most) plus the chain's
	// four explicit squarings — and, in particular, more than zero.
	before = ReadOpCounts()
	finalExponentiation(millerLoop(p, q))
	d = ReadOpCounts().Sub(before)
	if d.CycSquares < 100 {
		t.Fatalf("final exponentiation used only %d cyclotomic squarings — fell back to generic?", d.CycSquares)
	}
}

// FuzzG1ScalarMultVsNaive drives the full G1 fast path (GLV + wNAF + batch
// normalization) against the affine double-and-add oracle on fuzzed scalars.
func FuzzG1ScalarMultVsNaive(f *testing.F) {
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{1}, []byte{255, 255, 255, 255})
	ordm1 := new(big.Int).Sub(Order, big.NewInt(1))
	f.Add(ordm1.Bytes(), ordm1.Bytes())
	f.Fuzz(func(t *testing.T, pBytes, kBytes []byte) {
		pScalar := new(big.Int).Mod(new(big.Int).SetBytes(pBytes), Order)
		k := new(big.Int).Mod(new(big.Int).SetBytes(kBytes), Order)
		p := g1ScalarMultJac(G1Generator(), pScalar)
		want := g1ScalarMultAffine(p, k)
		if got := new(G1).ScalarMult(p, k); !got.Equal(want) {
			t.Fatalf("G1 fast path diverges: point seed %v scalar %v", pScalar, k)
		}
		if pScalar.Sign() != 0 {
			// p here is k·G for known k, so the fixed-base path must agree.
			if got := new(G1).ScalarBaseMult(pScalar); !got.Equal(p) {
				t.Fatalf("fixed-base path diverges at k=%v", pScalar)
			}
		}
	})
}

// FuzzG2ScalarMultVsNaive drives the G2 wNAF ladder against the affine
// oracle, including scalars wider than the group order.
func FuzzG2ScalarMultVsNaive(f *testing.F) {
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{2}, new(big.Int).Mul(Order, big.NewInt(2)).Bytes())
	f.Fuzz(func(t *testing.T, qBytes, kBytes []byte) {
		qScalar := new(big.Int).Mod(new(big.Int).SetBytes(qBytes), Order)
		k := new(big.Int).SetBytes(kBytes)
		if k.BitLen() > 512 {
			k.Rsh(k, uint(k.BitLen()-512)) // keep the naive oracle fast
		}
		q := g2ScalarMultJac(G2Generator(), qScalar)
		want := g2ScalarMultAffine(q, k)
		if got := g2ScalarMultWNAF(q, k); !got.Equal(want) {
			t.Fatalf("G2 wNAF diverges: point seed %v scalar %v", qScalar, k)
		}
	})
}
