package bn254

import "sync/atomic"

// Operation counters for instrumentation: tests use them to verify that
// the CLS schemes really perform the pairing/scalar-multiplication counts
// the paper's Table 1 claims, rather than trusting static annotations.
// Counting is always on (one atomic add per expensive operation — noise
// against math/big arithmetic) and process-global, like expvar counters.

// OpCounts is a snapshot of the global operation counters.
type OpCounts struct {
	Pairings      uint64 // Miller loops executed (PairingCheck counts one per pair)
	FinalExps     uint64 // final exponentiations
	G1ScalarMults uint64
	G2ScalarMults uint64
	GTExps        uint64
}

var opCounters struct {
	pairings  atomic.Uint64
	finalExps atomic.Uint64
	g1Mults   atomic.Uint64
	g2Mults   atomic.Uint64
	gtExps    atomic.Uint64
}

// ReadOpCounts returns the current counter values.
func ReadOpCounts() OpCounts {
	return OpCounts{
		Pairings:      opCounters.pairings.Load(),
		FinalExps:     opCounters.finalExps.Load(),
		G1ScalarMults: opCounters.g1Mults.Load(),
		G2ScalarMults: opCounters.g2Mults.Load(),
		GTExps:        opCounters.gtExps.Load(),
	}
}

// Sub returns the per-field difference c - earlier; use a before/after pair
// of ReadOpCounts snapshots to attribute operations to a code region.
func (c OpCounts) Sub(earlier OpCounts) OpCounts {
	return OpCounts{
		Pairings:      c.Pairings - earlier.Pairings,
		FinalExps:     c.FinalExps - earlier.FinalExps,
		G1ScalarMults: c.G1ScalarMults - earlier.G1ScalarMults,
		G2ScalarMults: c.G2ScalarMults - earlier.G2ScalarMults,
		GTExps:        c.GTExps - earlier.GTExps,
	}
}
