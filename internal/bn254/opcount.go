package bn254

import "sync/atomic"

// Operation counters for instrumentation: tests use them to verify that
// the CLS schemes really perform the pairing/scalar-multiplication counts
// the paper's Table 1 claims, rather than trusting static annotations.
// Counting is always on (one atomic add per expensive operation — noise
// against math/big arithmetic) and process-global, like expvar counters.

// OpCounts is a snapshot of the global operation counters.
type OpCounts struct {
	Pairings      uint64 // Miller loops executed (PairingCheck counts one per pair)
	FinalExps     uint64 // final exponentiations
	G1ScalarMults uint64
	G2ScalarMults uint64
	GTExps        uint64

	// Kernel-level counters for the fast pairing path. LineDoubles and
	// LineAdds count projective Miller-loop steps, SparseMuls the sparse
	// line-times-Fp12 accumulations, CycSquares the Granger–Scott
	// cyclotomic squarings in the final exponentiation and GT ladders.
	// Regression tests pin these against the ate-loop structure so that a
	// refactor silently falling back to dense or generic arithmetic fails
	// loudly instead of just slowing down.
	LineDoubles uint64
	LineAdds    uint64
	SparseMuls  uint64
	CycSquares  uint64

	// MillerSquarings counts Fp12 squarings of the Miller-loop accumulator.
	// The lockstep multi-pairing kernel shares ONE squaring per ate-loop
	// iteration across the whole batch, so a batch of n pairs performs 64
	// squarings total (not 64·n) while LineDoubles/LineAdds/SparseMuls keep
	// scaling with n — the amortization TestMillerLoopMultiOpCounts pins.
	MillerSquarings uint64
}

var opCounters struct {
	pairings        atomic.Uint64
	finalExps       atomic.Uint64
	g1Mults         atomic.Uint64
	g2Mults         atomic.Uint64
	gtExps          atomic.Uint64
	lineDoubles     atomic.Uint64
	lineAdds        atomic.Uint64
	sparseMuls      atomic.Uint64
	cycSquares      atomic.Uint64
	millerSquarings atomic.Uint64
}

// ReadOpCounts returns the current counter values.
func ReadOpCounts() OpCounts {
	return OpCounts{
		Pairings:        opCounters.pairings.Load(),
		FinalExps:       opCounters.finalExps.Load(),
		G1ScalarMults:   opCounters.g1Mults.Load(),
		G2ScalarMults:   opCounters.g2Mults.Load(),
		GTExps:          opCounters.gtExps.Load(),
		LineDoubles:     opCounters.lineDoubles.Load(),
		LineAdds:        opCounters.lineAdds.Load(),
		SparseMuls:      opCounters.sparseMuls.Load(),
		CycSquares:      opCounters.cycSquares.Load(),
		MillerSquarings: opCounters.millerSquarings.Load(),
	}
}

// Sub returns the per-field difference c - earlier; use a before/after pair
// of ReadOpCounts snapshots to attribute operations to a code region.
func (c OpCounts) Sub(earlier OpCounts) OpCounts {
	return OpCounts{
		Pairings:        c.Pairings - earlier.Pairings,
		FinalExps:       c.FinalExps - earlier.FinalExps,
		G1ScalarMults:   c.G1ScalarMults - earlier.G1ScalarMults,
		G2ScalarMults:   c.G2ScalarMults - earlier.G2ScalarMults,
		GTExps:          c.GTExps - earlier.GTExps,
		LineDoubles:     c.LineDoubles - earlier.LineDoubles,
		LineAdds:        c.LineAdds - earlier.LineAdds,
		SparseMuls:      c.SparseMuls - earlier.SparseMuls,
		CycSquares:      c.CycSquares - earlier.CycSquares,
		MillerSquarings: c.MillerSquarings - earlier.MillerSquarings,
	}
}
