package bn254

import (
	"math/big"
	"strings"
)

// Fp12 is the sextic extension Fp2[w]/(w^6 - xi) with xi = 9 + i. An element
// is sum_{k=0..5} C[k]·w^k. This single-step tower (instead of the usual
// 2-3-2 tower) keeps multiplication, Frobenius and inversion uniform: the
// Frobenius acts coefficient-wise as conjugation times xi^(k(p-1)/6), and
// inversion reduces to the Galois norm down to Fp2.
//
// Coefficients are value-type Fp2 elements, so the zero value of Fp12 is
// the field's zero and arithmetic stays on the stack.
//
// Methods follow the math/big convention: z.Op(x, y) stores the result in z
// and returns z. Receivers may alias arguments.
type Fp12 struct {
	C [6]Fp2
}

// Fp12One returns the multiplicative identity.
func Fp12One() *Fp12 {
	z := &Fp12{}
	z.C[0] = *Fp2One()
	return z
}

// Set copies x into z and returns z.
func (z *Fp12) Set(x *Fp12) *Fp12 {
	*z = *x
	return z
}

// IsOne reports whether z is the multiplicative identity.
func (z *Fp12) IsOne() bool {
	if !z.C[0].IsOne() {
		return false
	}
	for k := 1; k < 6; k++ {
		if !z.C[k].IsZero() {
			return false
		}
	}
	return true
}

// Equal reports whether z and x represent the same field element.
func (z *Fp12) Equal(x *Fp12) bool {
	for k := 0; k < 6; k++ {
		if !z.C[k].Equal(&x.C[k]) {
			return false
		}
	}
	return true
}

// Mul sets z = x·y by schoolbook convolution with reduction w^6 = xi,
// accumulating each of the 11 convolution slots in an unreduced fp2Wide:
// a dense product pays 22 Montgomery reductions (two per live slot)
// instead of one per coefficient product. Zero coefficients are skipped,
// so multiplying by sparse operands costs proportionally less, and
// untouched slots skip their reductions entirely.
//
// Budget: a slot receives at most six products, each contributing
// ≤ 2q² per coefficient (see fp2Wide.mulAcc), so the accumulators stay
// ≤ 12q² + one transient pad — inside the ~15q² Wide contract. The xi
// fold for slots 6..10 happens after reduction (xi on a wide value
// would multiply the budget by 10).
func (z *Fp12) Mul(x, y *Fp12) *Fp12 {
	var acc [11]fp2Wide
	var touched [11]bool
	for a := 0; a < 6; a++ {
		if x.C[a].IsZero() {
			continue
		}
		for b := 0; b < 6; b++ {
			if y.C[b].IsZero() {
				continue
			}
			acc[a+b].mulAcc(&x.C[a], &y.C[b])
			touched[a+b] = true
		}
	}
	var res Fp12
	var t Fp2
	for k := 0; k < 6; k++ {
		if touched[k] {
			acc[k].reduce(&res.C[k])
		}
	}
	for k := 6; k < 11; k++ {
		if !touched[k] {
			continue
		}
		// w^k = w^(k-6)·xi
		acc[k].reduce(&t)
		t.MulByXi(&t)
		res.C[k-6].Add(&res.C[k-6], &t)
	}
	return z.Set(&res)
}

// Square sets z = x² by symmetric convolution: cross terms a≠b appear
// twice, so the 36 coefficient products of the generic Mul collapse to
// 6 squarings plus 15 multiplications. Like Mul, slots accumulate
// unreduced; the doubling of a cross term is applied to one (reduced)
// operand before the wide product so the slot budget stays at
// ≤ 3 contributions × 2q² per coefficient.
func (z *Fp12) Square(x *Fp12) *Fp12 {
	var acc [11]fp2Wide
	var touched [11]bool
	var d Fp2
	for a := 0; a < 6; a++ {
		if x.C[a].IsZero() {
			continue
		}
		acc[2*a].mulAcc(&x.C[a], &x.C[a])
		touched[2*a] = true
		for b := a + 1; b < 6; b++ {
			if x.C[b].IsZero() {
				continue
			}
			d.Double(&x.C[b])
			acc[a+b].mulAcc(&x.C[a], &d)
			touched[a+b] = true
		}
	}
	var res Fp12
	var t Fp2
	for k := 0; k < 6; k++ {
		if touched[k] {
			acc[k].reduce(&res.C[k])
		}
	}
	for k := 6; k < 11; k++ {
		if !touched[k] {
			continue
		}
		acc[k].reduce(&t)
		t.MulByXi(&t)
		res.C[k-6].Add(&res.C[k-6], &t)
	}
	return z.Set(&res)
}

// fp4Square computes (re + im·v)² in Fp4 = Fp2[v]/(v² - xi):
// re' = re² + xi·im², im' = 2·re·im, via two multiplications
// (re² + xi·im² = (re + im)(re + xi·im) - re·im - xi·re·im).
func fp4Square(re, im *Fp2) (Fp2, Fp2) {
	var m, s, t, outRe, outIm Fp2
	m.Mul(re, im)
	t.MulByXi(im)
	t.Add(&t, re)
	s.Add(re, im)
	s.Mul(&s, &t)
	s.Sub(&s, &m)
	t.MulByXi(&m)
	outRe.Sub(&s, &t)
	outIm.Double(&m)
	return outRe, outIm
}

// CyclotomicSquare sets z = x² for x in the cyclotomic subgroup (the image
// of the easy part of the final exponentiation, where x^(p^6+1) = 1), using
// the Granger–Scott formulas (eprint 2009/565 §3.1). Viewing
// Fp12 = Fp4[w]/(w³ - v) with Fp4 = Fp2[v]/(v² - xi) and v = w³, the element
// is (C0 + C3·v) + (C1 + C4·v)·w + (C2 + C5·v)·w², and squaring costs three
// Fp4 squarings instead of a full 36-product convolution. Correctness
// against the generic Square on unitary inputs is asserted by tests; the
// result is undefined for non-unitary x.
func (z *Fp12) CyclotomicSquare(x *Fp12) *Fp12 {
	opCounters.cycSquares.Add(1)
	aRe, aIm := fp4Square(&x.C[0], &x.C[3]) // (C0 + C3 v)²
	bRe, bIm := fp4Square(&x.C[1], &x.C[4]) // (C1 + C4 v)²
	cRe, cIm := fp4Square(&x.C[2], &x.C[5]) // (C2 + C5 v)²

	var res Fp12
	var t Fp2
	// h0 = 3·A² - 2·conj(A): conj negates the v component.
	res.C[0].Sub(&aRe, &x.C[0])
	res.C[0].Double(&res.C[0])
	res.C[0].Add(&res.C[0], &aRe)
	res.C[3].Add(&aIm, &x.C[3])
	res.C[3].Double(&res.C[3])
	res.C[3].Add(&res.C[3], &aIm)
	// h1 = 3·v·C² + 2·conj(B): v·(re + im·v) = xi·im + re·v.
	t.MulByXi(&cIm)
	res.C[1].Add(&t, &x.C[1])
	res.C[1].Double(&res.C[1])
	res.C[1].Add(&res.C[1], &t)
	res.C[4].Sub(&cRe, &x.C[4])
	res.C[4].Double(&res.C[4])
	res.C[4].Add(&res.C[4], &cRe)
	// h2 = 3·B² - 2·conj(C).
	res.C[2].Sub(&bRe, &x.C[2])
	res.C[2].Double(&res.C[2])
	res.C[2].Add(&res.C[2], &bRe)
	res.C[5].Add(&bIm, &x.C[5])
	res.C[5].Double(&res.C[5])
	res.C[5].Add(&res.C[5], &bIm)
	return z.Set(&res)
}

// ExpCyclotomic sets z = x^e for a non-negative exponent and a unitary x,
// combining cyclotomic squarings with a NAF recoding of e: negative digits
// multiply by the conjugate (the free unitary inverse), cutting the
// multiplication count by a third versus plain square-and-multiply.
func (z *Fp12) ExpCyclotomic(x *Fp12, e *big.Int) *Fp12 {
	digits := nafDigits(e)
	xInv := new(Fp12).Conjugate(x)
	base := new(Fp12).Set(x)
	acc := Fp12One()
	for i := len(digits) - 1; i >= 0; i-- {
		acc.CyclotomicSquare(acc)
		switch digits[i] {
		case 1:
			acc.Mul(acc, base)
		case -1:
			acc.Mul(acc, xInv)
		}
	}
	return z.Set(acc)
}

// MulFp2 sets z = k·x for a scalar k ∈ Fp2.
func (z *Fp12) MulFp2(x *Fp12, k *Fp2) *Fp12 {
	var res Fp12
	for i := 0; i < 6; i++ {
		res.C[i].Mul(&x.C[i], k)
	}
	return z.Set(&res)
}

// Frobenius sets z = x^p. On the w-power basis this is coefficient-wise
// conjugation times gamma^k where gamma = xi^((p-1)/6).
func (z *Fp12) Frobenius(x *Fp12) *Fp12 {
	var res Fp12
	pow := *Fp2One()
	for k := 0; k < 6; k++ {
		res.C[k].Conjugate(&x.C[k])
		res.C[k].Mul(&res.C[k], &pow)
		pow.Mul(&pow, xiToPMinus1Over6)
	}
	return z.Set(&res)
}

// FrobeniusN sets z = x^(p^n) by repeated application of Frobenius.
func (z *Fp12) FrobeniusN(x *Fp12, n int) *Fp12 {
	z.Set(x)
	for i := 0; i < n; i++ {
		z.Frobenius(z)
	}
	return z
}

// Inverse sets z = x⁻¹ using the Galois norm to Fp2: with σ = Frobenius²
// generating Gal(Fp12/Fp2), t = Π_{k=1..5} σ^k(x) and N = x·t ∈ Fp2, so
// x⁻¹ = t/N. Panics on zero input.
func (z *Fp12) Inverse(x *Fp12) *Fp12 {
	t := Fp12One()
	conj := new(Fp12).Set(x)
	for k := 1; k <= 5; k++ {
		conj.FrobeniusN(conj, 2)
		t.Mul(t, conj)
	}
	norm := new(Fp12).Mul(x, t)
	// norm lies in Fp2 (fixed by sigma); its higher coefficients vanish.
	for k := 1; k < 6; k++ {
		if !norm.C[k].IsZero() {
			panic("bn254: Fp12 norm not in Fp2")
		}
	}
	if norm.C[0].IsZero() {
		panic("bn254: inverse of zero Fp12 element")
	}
	nInv := new(Fp2).Inverse(&norm.C[0])
	return z.MulFp2(t, nInv)
}

// Conjugate sets z = x^(p^6), which for unitary elements (the cyclotomic
// subgroup GT lives in) equals x⁻¹.
func (z *Fp12) Conjugate(x *Fp12) *Fp12 { return z.FrobeniusN(x, 6) }

// Exp sets z = x^e for a non-negative integer exponent e.
func (z *Fp12) Exp(x *Fp12, e *big.Int) *Fp12 {
	acc := Fp12One()
	base := new(Fp12).Set(x)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if e.Bit(i) == 1 {
			acc.Mul(acc, base)
		}
	}
	return z.Set(acc)
}

// String renders z as a polynomial in w.
func (z *Fp12) String() string {
	parts := make([]string, 0, 6)
	for k := 0; k < 6; k++ {
		if !z.C[k].IsZero() {
			parts = append(parts, "("+z.C[k].String()+")w^"+string(rune('0'+k)))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
