package bn254

import (
	"math/big"
	"strings"
)

// Fp12 is the sextic extension Fp2[w]/(w^6 - xi) with xi = 9 + i. An element
// is sum_{k=0..5} C[k]·w^k. This single-step tower (instead of the usual
// 2-3-2 tower) keeps multiplication, Frobenius and inversion uniform: the
// Frobenius acts coefficient-wise as conjugation times xi^(k(p-1)/6), and
// inversion reduces to the Galois norm down to Fp2.
//
// Coefficients are value-type Fp2 elements, so the zero value of Fp12 is
// the field's zero and arithmetic stays on the stack.
//
// Methods follow the math/big convention: z.Op(x, y) stores the result in z
// and returns z. Receivers may alias arguments.
type Fp12 struct {
	C [6]Fp2
}

// Fp12One returns the multiplicative identity.
func Fp12One() *Fp12 {
	z := &Fp12{}
	z.C[0] = *Fp2One()
	return z
}

// Set copies x into z and returns z.
func (z *Fp12) Set(x *Fp12) *Fp12 {
	*z = *x
	return z
}

// IsOne reports whether z is the multiplicative identity.
func (z *Fp12) IsOne() bool {
	if !z.C[0].IsOne() {
		return false
	}
	for k := 1; k < 6; k++ {
		if !z.C[k].IsZero() {
			return false
		}
	}
	return true
}

// Equal reports whether z and x represent the same field element.
func (z *Fp12) Equal(x *Fp12) bool {
	for k := 0; k < 6; k++ {
		if !z.C[k].Equal(&x.C[k]) {
			return false
		}
	}
	return true
}

// Mul sets z = x·y by schoolbook convolution with reduction w^6 = xi.
// Zero coefficients are skipped, so multiplying by sparse operands (the
// Miller-loop line values have only three nonzero coefficients) costs
// proportionally less.
func (z *Fp12) Mul(x, y *Fp12) *Fp12 {
	var acc [11]Fp2
	var t Fp2
	for a := 0; a < 6; a++ {
		if x.C[a].IsZero() {
			continue
		}
		for b := 0; b < 6; b++ {
			if y.C[b].IsZero() {
				continue
			}
			t.Mul(&x.C[a], &y.C[b])
			acc[a+b].Add(&acc[a+b], &t)
		}
	}
	var res Fp12
	for k := 0; k < 6; k++ {
		res.C[k] = acc[k]
	}
	for k := 6; k < 11; k++ {
		// w^k = w^(k-6)·xi
		t.Mul(&acc[k], xi())
		res.C[k-6].Add(&res.C[k-6], &t)
	}
	return z.Set(&res)
}

// Square sets z = x².
func (z *Fp12) Square(x *Fp12) *Fp12 { return z.Mul(x, x) }

// MulFp2 sets z = k·x for a scalar k ∈ Fp2.
func (z *Fp12) MulFp2(x *Fp12, k *Fp2) *Fp12 {
	var res Fp12
	for i := 0; i < 6; i++ {
		res.C[i].Mul(&x.C[i], k)
	}
	return z.Set(&res)
}

// Frobenius sets z = x^p. On the w-power basis this is coefficient-wise
// conjugation times gamma^k where gamma = xi^((p-1)/6).
func (z *Fp12) Frobenius(x *Fp12) *Fp12 {
	var res Fp12
	pow := *Fp2One()
	for k := 0; k < 6; k++ {
		res.C[k].Conjugate(&x.C[k])
		res.C[k].Mul(&res.C[k], &pow)
		pow.Mul(&pow, xiToPMinus1Over6)
	}
	return z.Set(&res)
}

// FrobeniusN sets z = x^(p^n) by repeated application of Frobenius.
func (z *Fp12) FrobeniusN(x *Fp12, n int) *Fp12 {
	z.Set(x)
	for i := 0; i < n; i++ {
		z.Frobenius(z)
	}
	return z
}

// Inverse sets z = x⁻¹ using the Galois norm to Fp2: with σ = Frobenius²
// generating Gal(Fp12/Fp2), t = Π_{k=1..5} σ^k(x) and N = x·t ∈ Fp2, so
// x⁻¹ = t/N. Panics on zero input.
func (z *Fp12) Inverse(x *Fp12) *Fp12 {
	t := Fp12One()
	conj := new(Fp12).Set(x)
	for k := 1; k <= 5; k++ {
		conj.FrobeniusN(conj, 2)
		t.Mul(t, conj)
	}
	norm := new(Fp12).Mul(x, t)
	// norm lies in Fp2 (fixed by sigma); its higher coefficients vanish.
	for k := 1; k < 6; k++ {
		if !norm.C[k].IsZero() {
			panic("bn254: Fp12 norm not in Fp2")
		}
	}
	if norm.C[0].IsZero() {
		panic("bn254: inverse of zero Fp12 element")
	}
	nInv := new(Fp2).Inverse(&norm.C[0])
	return z.MulFp2(t, nInv)
}

// Conjugate sets z = x^(p^6), which for unitary elements (the cyclotomic
// subgroup GT lives in) equals x⁻¹.
func (z *Fp12) Conjugate(x *Fp12) *Fp12 { return z.FrobeniusN(x, 6) }

// Exp sets z = x^e for a non-negative integer exponent e.
func (z *Fp12) Exp(x *Fp12, e *big.Int) *Fp12 {
	acc := Fp12One()
	base := new(Fp12).Set(x)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if e.Bit(i) == 1 {
			acc.Mul(acc, base)
		}
	}
	return z.Set(acc)
}

// String renders z as a polynomial in w.
func (z *Fp12) String() string {
	parts := make([]string, 0, 6)
	for k := 0; k < 6; k++ {
		if !z.C[k].IsZero() {
			parts = append(parts, "("+z.C[k].String()+")w^"+string(rune('0'+k)))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
