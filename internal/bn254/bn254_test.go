package bn254

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// deterministic test RNG so failures reproduce.
func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func randScalar(r *rand.Rand) *big.Int {
	k := new(big.Int).Rand(r, Order)
	if k.Sign() == 0 {
		k.SetInt64(1)
	}
	return k
}

func TestCurveParameters(t *testing.T) {
	// p and r are the BN polynomials evaluated at u.
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	u4 := new(big.Int).Mul(u3, u)
	poly := func(c4, c3, c2, c1, c0 int64) *big.Int {
		s := new(big.Int).Mul(big.NewInt(c4), u4)
		s.Add(s, new(big.Int).Mul(big.NewInt(c3), u3))
		s.Add(s, new(big.Int).Mul(big.NewInt(c2), u2))
		s.Add(s, new(big.Int).Mul(big.NewInt(c1), u))
		s.Add(s, big.NewInt(c0))
		return s
	}
	if got := poly(36, 36, 24, 6, 1); got.Cmp(P) != 0 {
		t.Fatalf("p != 36u^4+36u^3+24u^2+6u+1: %v", got)
	}
	if got := poly(36, 36, 18, 6, 1); got.Cmp(Order) != 0 {
		t.Fatalf("r != 36u^4+36u^3+18u^2+6u+1: %v", got)
	}
	if !P.ProbablyPrime(32) || !Order.ProbablyPrime(32) {
		t.Fatal("p or r not prime")
	}
	// p ≡ 3 (mod 4) is assumed by both square-root routines.
	if new(big.Int).Mod(P, big.NewInt(4)).Int64() != 3 {
		t.Fatal("p != 3 mod 4")
	}
	// The final-exponentiation hard part must divide exactly.
	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	num := new(big.Int).Sub(p4, p2)
	num.Add(num, big.NewInt(1))
	q, m := new(big.Int).DivMod(num, Order, new(big.Int))
	if m.Sign() != 0 {
		t.Fatal("(p^4-p^2+1) not divisible by r")
	}
	if q.Cmp(finalExpHard) != 0 {
		t.Fatal("finalExpHard mismatch")
	}
}

func TestFp2Arithmetic(t *testing.T) {
	r := testRand()
	for i := 0; i < 50; i++ {
		a, b, c := randFp2(r), randFp2(r), randFp2(r)
		// Commutativity and associativity of multiplication.
		ab := new(Fp2).Mul(a, b)
		ba := new(Fp2).Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("Fp2 mul not commutative")
		}
		abc1 := new(Fp2).Mul(ab, c)
		abc2 := new(Fp2).Mul(a, new(Fp2).Mul(b, c))
		if !abc1.Equal(abc2) {
			t.Fatal("Fp2 mul not associative")
		}
		// Distributivity.
		l := new(Fp2).Mul(a, new(Fp2).Add(b, c))
		rr := new(Fp2).Add(new(Fp2).Mul(a, b), new(Fp2).Mul(a, c))
		if !l.Equal(rr) {
			t.Fatal("Fp2 not distributive")
		}
		// Inverse.
		if !a.IsZero() {
			if got := new(Fp2).Mul(a, new(Fp2).Inverse(a)); !got.IsOne() {
				t.Fatal("Fp2 inverse broken")
			}
		}
		// i^2 = -1.
		i := fp2FromBig(big.NewInt(0), big.NewInt(1))
		if got := new(Fp2).Square(i); !got.Equal(new(Fp2).Neg(Fp2One())) {
			t.Fatal("i^2 != -1")
		}
	}
}

func TestFp2Sqrt(t *testing.T) {
	r := testRand()
	found := 0
	for i := 0; i < 40; i++ {
		a := randFp2(r)
		sq := new(Fp2).Square(a)
		root := new(Fp2).Sqrt(sq)
		if root == nil {
			t.Fatal("square reported as non-residue")
		}
		if !new(Fp2).Square(root).Equal(sq) {
			t.Fatal("sqrt returned wrong root")
		}
		// Roughly half of random elements should be non-residues.
		if new(Fp2).Sqrt(a) != nil {
			found++
		}
	}
	if found == 0 || found == 40 {
		t.Fatalf("suspicious residue distribution: %d/40", found)
	}
}

func TestFp12FieldAxioms(t *testing.T) {
	r := testRand()
	randFp12 := func() *Fp12 {
		z := &Fp12{}
		for k := 0; k < 6; k++ {
			z.C[k] = *randFp2(r)
		}
		return z
	}
	for i := 0; i < 10; i++ {
		a, b, c := randFp12(), randFp12(), randFp12()
		ab := new(Fp12).Mul(a, b)
		if !ab.Equal(new(Fp12).Mul(b, a)) {
			t.Fatal("Fp12 mul not commutative")
		}
		if !new(Fp12).Mul(ab, c).Equal(new(Fp12).Mul(a, new(Fp12).Mul(b, c))) {
			t.Fatal("Fp12 mul not associative")
		}
		if got := new(Fp12).Mul(a, new(Fp12).Inverse(a)); !got.IsOne() {
			t.Fatal("Fp12 inverse broken")
		}
	}
}

func TestFp12Frobenius(t *testing.T) {
	r := testRand()
	a := &Fp12{}
	for k := 0; k < 6; k++ {
		a.C[k] = *randFp2(r)
	}
	// Frobenius must equal exponentiation by p.
	frob := new(Fp12).Frobenius(a)
	pow := new(Fp12).Exp(a, P)
	if !frob.Equal(pow) {
		t.Fatal("Frobenius != x^p")
	}
	// Twelve applications are the identity.
	twelve := new(Fp12).FrobeniusN(a, 12)
	if !twelve.Equal(a) {
		t.Fatal("Frobenius^12 != identity")
	}
}

func TestG1GroupLaw(t *testing.T) {
	r := testRand()
	g := G1Generator()
	if !g.IsOnCurve() {
		t.Fatal("generator off curve")
	}
	if !new(G1).ScalarMult(g, Order).IsInfinity() {
		t.Fatal("r·G != infinity")
	}
	for i := 0; i < 10; i++ {
		a, b := randScalar(r), randScalar(r)
		pa := new(G1).ScalarMult(g, a)
		pb := new(G1).ScalarMult(g, b)
		sum := new(G1).Add(pa, pb)
		ab := new(big.Int).Mod(new(big.Int).Add(a, b), Order)
		if !sum.Equal(new(G1).ScalarMult(g, ab)) {
			t.Fatal("aG + bG != (a+b)G")
		}
		if !sum.IsOnCurve() {
			t.Fatal("sum off curve")
		}
		// P + (-P) = 0, P + 0 = P.
		if !new(G1).Add(pa, new(G1).Neg(pa)).IsInfinity() {
			t.Fatal("P + (-P) != 0")
		}
		if !new(G1).Add(pa, G1Infinity()).Equal(pa) {
			t.Fatal("P + 0 != P")
		}
	}
}

func TestG2GroupLaw(t *testing.T) {
	r := testRand()
	g := G2Generator()
	if !g.IsOnCurve() {
		t.Fatal("G2 generator off twist curve")
	}
	if !g.IsInSubgroup() {
		t.Fatal("G2 generator not in order-r subgroup")
	}
	for i := 0; i < 5; i++ {
		a, b := randScalar(r), randScalar(r)
		pa := new(G2).ScalarMult(g, a)
		pb := new(G2).ScalarMult(g, b)
		sum := new(G2).Add(pa, pb)
		ab := new(big.Int).Mod(new(big.Int).Add(a, b), Order)
		if !sum.Equal(new(G2).ScalarMult(g, ab)) {
			t.Fatal("aQ + bQ != (a+b)Q")
		}
		if !new(G2).Add(pa, new(G2).Neg(pa)).IsInfinity() {
			t.Fatal("Q + (-Q) != 0")
		}
	}
}

func TestPairingBilinearity(t *testing.T) {
	r := testRand()
	p := G1Generator()
	q := G2Generator()
	base := Pair(p, q)
	if base.IsOne() {
		t.Fatal("e(P, Q) degenerate")
	}
	// Order-r: e(P,Q)^r = 1.
	if !new(GT).Exp(base, Order).IsOne() {
		t.Fatal("pairing value not of order dividing r")
	}
	for i := 0; i < 3; i++ {
		a, b := randScalar(r), randScalar(r)
		left := Pair(new(G1).ScalarMult(p, a), new(G2).ScalarMult(q, b))
		ab := new(big.Int).Mod(new(big.Int).Mul(a, b), Order)
		right := new(GT).Exp(base, ab)
		if !left.Equal(right) {
			t.Fatalf("bilinearity failed: e(aP, bQ) != e(P, Q)^ab (a=%v b=%v)", a, b)
		}
	}
	// e(P+P', Q) = e(P,Q)e(P',Q).
	a, b := randScalar(r), randScalar(r)
	pa := new(G1).ScalarMult(p, a)
	pb := new(G1).ScalarMult(p, b)
	lhs := Pair(new(G1).Add(pa, pb), q)
	rhs := new(GT).Mul(Pair(pa, q), Pair(pb, q))
	if !lhs.Equal(rhs) {
		t.Fatal("additivity in first slot failed")
	}
}

func TestPairingIdentitySlots(t *testing.T) {
	if !Pair(G1Infinity(), G2Generator()).IsOne() {
		t.Fatal("e(0, Q) != 1")
	}
	if !Pair(G1Generator(), G2Infinity()).IsOne() {
		t.Fatal("e(P, 0) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	r := testRand()
	a := randScalar(r)
	p := new(G1).ScalarBaseMult(a)
	q := G2Generator()
	negP := new(G1).Neg(p)
	// e(P, Q)·e(-P, Q) = 1.
	if !PairingCheck([]*G1{p, negP}, []*G2{q, q}) {
		t.Fatal("PairingCheck rejected a valid relation")
	}
	if PairingCheck([]*G1{p, p}, []*G2{q, q}) {
		t.Fatal("PairingCheck accepted an invalid relation")
	}
	if PairingCheck([]*G1{p}, []*G2{q, q}) {
		t.Fatal("PairingCheck accepted mismatched lengths")
	}
	if !PairingCheck(nil, nil) {
		t.Fatal("empty product should be 1")
	}
}

func TestHashToG1(t *testing.T) {
	h1 := HashToG1("test", []byte("hello"))
	h2 := HashToG1("test", []byte("hello"))
	h3 := HashToG1("test", []byte("world"))
	h4 := HashToG1("other", []byte("hello"))
	if !h1.Equal(h2) {
		t.Fatal("hash not deterministic")
	}
	if h1.Equal(h3) || h1.Equal(h4) {
		t.Fatal("hash collisions across inputs/domains")
	}
	if !h1.IsOnCurve() || h1.IsInfinity() {
		t.Fatal("hash output invalid")
	}
}

func TestHashToG2(t *testing.T) {
	h1 := HashToG2("test", []byte("id:alice"))
	h2 := HashToG2("test", []byte("id:alice"))
	h3 := HashToG2("test", []byte("id:bob"))
	if !h1.Equal(h2) {
		t.Fatal("hash not deterministic")
	}
	if h1.Equal(h3) {
		t.Fatal("hash collision")
	}
	if !h1.IsInSubgroup() {
		t.Fatal("hash output not in order-r subgroup")
	}
}

func TestHashToScalar(t *testing.T) {
	s1 := HashToScalar("d", []byte("m"))
	s2 := HashToScalar("d", []byte("m"))
	s3 := HashToScalar("d", []byte("m2"))
	if s1.Cmp(s2) != 0 || s1.Cmp(s3) == 0 {
		t.Fatal("scalar hash determinism/collision failure")
	}
	if s1.Sign() <= 0 || s1.Cmp(Order) >= 0 {
		t.Fatal("scalar out of range")
	}
}

func TestG1MarshalRoundTrip(t *testing.T) {
	r := testRand()
	for i := 0; i < 10; i++ {
		p := new(G1).ScalarBaseMult(randScalar(r))
		var q G1
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("round trip mismatch")
		}
	}
	var inf G1
	if err := inf.Unmarshal(G1Infinity().Marshal()); err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	// Off-curve data must be rejected.
	bad := make([]byte, 64)
	bad[31] = 5
	bad[63] = 7
	if err := new(G1).Unmarshal(bad); err == nil {
		t.Fatal("accepted off-curve point")
	}
	if err := new(G1).Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short encoding")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	r := testRand()
	for i := 0; i < 3; i++ {
		p := new(G2).ScalarBaseMult(randScalar(r))
		var q G2
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("round trip mismatch")
		}
	}
	var inf G2
	if err := inf.Unmarshal(G2Infinity().Marshal()); err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	if err := new(G2).Unmarshal(make([]byte, 12)); err == nil {
		t.Fatal("accepted short encoding")
	}
}

// TestG2RejectsWrongSubgroup builds a twist point outside the order-r
// subgroup and checks that Unmarshal refuses it.
func TestG2RejectsWrongSubgroup(t *testing.T) {
	// Find a curve point by try-and-increment WITHOUT cofactor clearing.
	var pt *G2
	for ctr := uint32(0); ; ctr++ {
		b0 := hashBlock("sub", []byte("x"), ctr)
		x := fp2FromBig(new(big.Int).SetBytes(b0), big.NewInt(1))
		rhs := new(Fp2).Mul(new(Fp2).Square(x), x)
		rhs.Add(rhs, twistB)
		y := new(Fp2).Sqrt(rhs)
		if y == nil {
			continue
		}
		pt = &G2{X: *x, Y: *y}
		if !pt.IsInSubgroup() {
			break
		}
	}
	if err := new(G2).Unmarshal(pt.Marshal()); err == nil {
		t.Fatal("accepted out-of-subgroup G2 point")
	}
}

// Property-based check of the scalar-multiplication homomorphism on G1.
func TestG1ScalarMultProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)
		g := G1Generator()
		left := new(G1).ScalarMult(new(G1).ScalarMult(g, sa), sb)
		right := new(G1).ScalarMult(g, new(big.Int).Mul(sa, sb))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestGTMarshalDistinct(t *testing.T) {
	a := Pair(G1Generator(), G2Generator())
	b := new(GT).Exp(a, big.NewInt(2))
	if bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("distinct GT elements marshal identically")
	}
	if !bytes.Equal(a.Marshal(), a.Marshal()) {
		t.Fatal("marshal not deterministic")
	}
}

func TestRandomScalarRange(t *testing.T) {
	for i := 0; i < 20; i++ {
		k, err := RandomScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(Order) >= 0 {
			t.Fatal("scalar out of range")
		}
	}
}

// TestFinalExponentiationFastMatchesNaive cross-checks the
// Devegili–Scott–Dahab hard-part chain against the plain exponentiation by
// (p^4-p^2+1)/r on random Miller values.
func TestFinalExponentiationFastMatchesNaive(t *testing.T) {
	r := testRand()
	for i := 0; i < 3; i++ {
		p := new(G1).ScalarBaseMult(randScalar(r))
		q := new(G2).ScalarBaseMult(randScalar(r))
		f := millerLoop(p, q)
		fast := finalExponentiation(f)
		naive := finalExponentiationNaive(f)
		if !fast.Equal(naive) {
			t.Fatalf("optimized final exponentiation diverges (iteration %d)", i)
		}
	}
}
