package bn254

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// G1 is a point of the order-r group E(Fp): y² = x³ + 3, in affine
// coordinates. The zero value is NOT valid; use G1Infinity, G1Generator or
// one of the constructors. For BN curves #E(Fp) = r, so every curve point is
// in the subgroup.
//
// Methods follow the math/big convention: z.Op(x, y) stores the result in z
// and returns z.
type G1 struct {
	X, Y *big.Int
	// Inf marks the point at infinity; X and Y are ignored when set.
	Inf bool
}

// G1Infinity returns the identity element.
func G1Infinity() *G1 { return &G1{X: big.NewInt(0), Y: big.NewInt(0), Inf: true} }

// G1Generator returns the canonical generator (1, 2).
func G1Generator() *G1 { return &G1{X: big.NewInt(1), Y: big.NewInt(2)} }

// Set copies x into z and returns z.
func (z *G1) Set(x *G1) *G1 {
	z.X, z.Y, z.Inf = new(big.Int).Set(x.X), new(big.Int).Set(x.Y), x.Inf
	return z
}

// IsInfinity reports whether z is the identity.
func (z *G1) IsInfinity() bool { return z.Inf }

// Equal reports whether z and x are the same point.
func (z *G1) Equal(x *G1) bool {
	if z.Inf || x.Inf {
		return z.Inf == x.Inf
	}
	return z.X.Cmp(x.X) == 0 && z.Y.Cmp(x.Y) == 0
}

// IsOnCurve reports whether z satisfies y² = x³ + 3 (the identity counts as
// on-curve).
func (z *G1) IsOnCurve() bool {
	if z.Inf {
		return true
	}
	if z.X.Sign() < 0 || z.X.Cmp(P) >= 0 || z.Y.Sign() < 0 || z.Y.Cmp(P) >= 0 {
		return false
	}
	lhs := fpMul(z.Y, z.Y)
	rhs := fpAdd(fpMul(fpMul(z.X, z.X), z.X), curveB)
	return lhs.Cmp(rhs) == 0
}

// Neg sets z = -x.
func (z *G1) Neg(x *G1) *G1 {
	if x.Inf {
		return z.Set(x)
	}
	z.X, z.Y, z.Inf = new(big.Int).Set(x.X), fpNeg(x.Y), false
	return z
}

// Add sets z = a + b by the affine chord-and-tangent rule.
func (z *G1) Add(a, b *G1) *G1 {
	if a.Inf {
		return z.Set(b)
	}
	if b.Inf {
		return z.Set(a)
	}
	if a.X.Cmp(b.X) == 0 {
		if a.Y.Cmp(b.Y) != 0 {
			return z.Set(G1Infinity())
		}
		return z.Double(a)
	}
	// lambda = (y2-y1)/(x2-x1)
	lambda := fpMul(fpSub(b.Y, a.Y), fpInv(fpSub(b.X, a.X)))
	x3 := fpSub(fpSub(fpMul(lambda, lambda), a.X), b.X)
	y3 := fpSub(fpMul(lambda, fpSub(a.X, x3)), a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// Double sets z = 2a.
func (z *G1) Double(a *G1) *G1 {
	if a.Inf || a.Y.Sign() == 0 {
		return z.Set(G1Infinity())
	}
	// lambda = 3x²/(2y)
	num := fpMul(big.NewInt(3), fpMul(a.X, a.X))
	lambda := fpMul(num, fpInv(fpAdd(a.Y, a.Y)))
	x3 := fpSub(fpSub(fpMul(lambda, lambda), a.X), a.X)
	y3 := fpSub(fpMul(lambda, fpSub(a.X, x3)), a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// ScalarMult sets z = k·a by an affine double-and-add ladder. Negative k
// multiplies by -a.
//
// Affine is deliberate: on math/big, extended-GCD modular inversion costs
// about the same as the ~7 extra field multiplications of a Jacobian
// doubling, so projective coordinates buy nothing here (measured by
// BenchmarkG1ScalarMult vs BenchmarkG1ScalarMultJacobian; see DESIGN.md
// §5). The Jacobian implementation is kept in jacobian.go, cross-checked
// by tests.
func (z *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	opCounters.g1Mults.Add(1)
	e := new(big.Int).Mod(k, Order)
	acc := G1Infinity()
	base := new(G1).Set(a)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Double(acc)
		if e.Bit(i) == 1 {
			acc.Add(acc, base)
		}
	}
	return z.Set(acc)
}

// ScalarBaseMult sets z = k·G where G is the canonical generator.
func (z *G1) ScalarBaseMult(k *big.Int) *G1 { return z.ScalarMult(G1Generator(), k) }

// g1MarshalledSize is the byte length of a marshalled G1 point.
const g1MarshalledSize = 64

// Marshal encodes z as X‖Y, 32 big-endian bytes each. The identity encodes
// as all zeroes.
func (z *G1) Marshal() []byte {
	out := make([]byte, g1MarshalledSize)
	if z.Inf {
		return out
	}
	z.X.FillBytes(out[:32])
	z.Y.FillBytes(out[32:])
	return out
}

var (
	// ErrInvalidPoint reports a malformed or off-curve encoded point.
	ErrInvalidPoint = errors.New("bn254: invalid point encoding")
)

// Unmarshal decodes a point produced by Marshal, validating curve
// membership.
func (z *G1) Unmarshal(data []byte) error {
	if len(data) != g1MarshalledSize {
		return fmt.Errorf("%w: G1 wants %d bytes, got %d", ErrInvalidPoint, g1MarshalledSize, len(data))
	}
	x := new(big.Int).SetBytes(data[:32])
	y := new(big.Int).SetBytes(data[32:])
	if x.Sign() == 0 && y.Sign() == 0 {
		z.Set(G1Infinity())
		return nil
	}
	cand := &G1{X: x, Y: y}
	if !cand.IsOnCurve() {
		return fmt.Errorf("%w: G1 point not on curve", ErrInvalidPoint)
	}
	z.Set(cand)
	return nil
}

// hashCounterStream derives an unbounded stream of 32-byte blocks from
// (domain, msg) via SHA-256(domain ‖ counter ‖ msg).
func hashBlock(domain string, msg []byte, counter uint32) []byte {
	h := sha256.New()
	h.Write([]byte(domain))
	var ctr [4]byte
	binary.BigEndian.PutUint32(ctr[:], counter)
	h.Write(ctr[:])
	h.Write(msg)
	return h.Sum(nil)
}

// HashToG1 maps an arbitrary message into G1 by try-and-increment: derive an
// x-coordinate candidate from the hash stream, solve y² = x³ + 3, and choose
// the y parity from the stream. The cofactor of G1 is 1, so any curve point
// is already in the prime-order subgroup.
func HashToG1(domain string, msg []byte) *G1 {
	for counter := uint32(0); ; counter++ {
		block := hashBlock(domain, msg, counter)
		x := new(big.Int).Mod(new(big.Int).SetBytes(block), P)
		rhs := fpAdd(fpMul(fpMul(x, x), x), curveB)
		y := fpSqrt(rhs)
		if y == nil {
			continue
		}
		// Use one stream bit to pick between y and -y so the map is not
		// biased toward even roots.
		if block[len(block)-1]&1 == 1 {
			y = fpNeg(y)
		}
		return &G1{X: x, Y: y}
	}
}

// HashToScalar maps an arbitrary message to a nonzero scalar in Zr*,
// reducing 512 bits of hash output to keep the bias negligible.
func HashToScalar(domain string, msg []byte) *big.Int {
	for counter := uint32(0); ; counter += 2 {
		wide := append(hashBlock(domain, msg, counter), hashBlock(domain, msg, counter+1)...)
		k := new(big.Int).Mod(new(big.Int).SetBytes(wide), Order)
		if k.Sign() != 0 {
			return k
		}
	}
}

// String renders the point for debugging.
func (z *G1) String() string {
	if z.Inf {
		return "G1(inf)"
	}
	return fmt.Sprintf("G1(%v, %v)", z.X, z.Y)
}
