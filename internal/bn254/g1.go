package bn254

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"mccls/internal/bn254/fp"
)

// G1 is a point of the order-r group E(Fp): y² = x³ + 3, in affine
// coordinates with Montgomery-form field elements. The zero value is NOT
// valid; use G1Infinity, G1Generator or one of the constructors. For BN
// curves #E(Fp) = r, so every curve point is in the subgroup.
//
// Methods follow the math/big convention: z.Op(x, y) stores the result in z
// and returns z.
type G1 struct {
	X, Y fp.Element
	// Inf marks the point at infinity; X and Y are ignored when set.
	Inf bool
}

// G1Infinity returns the identity element.
func G1Infinity() *G1 { return &G1{Inf: true} }

// G1Generator returns the canonical generator (1, 2).
func G1Generator() *G1 { return &G1{X: fp.NewElement(1), Y: fp.NewElement(2)} }

// Set copies x into z and returns z.
func (z *G1) Set(x *G1) *G1 {
	*z = *x
	return z
}

// IsInfinity reports whether z is the identity.
func (z *G1) IsInfinity() bool { return z.Inf }

// Equal reports whether z and x are the same point.
func (z *G1) Equal(x *G1) bool {
	if z.Inf || x.Inf {
		return z.Inf == x.Inf
	}
	return z.X.Equal(&x.X) && z.Y.Equal(&x.Y)
}

// IsOnCurve reports whether z satisfies y² = x³ + 3 (the identity counts as
// on-curve). Field elements are canonical by construction, so no range
// check is needed here; decode paths validate ranges before reduction.
func (z *G1) IsOnCurve() bool {
	if z.Inf {
		return true
	}
	var lhs, rhs fp.Element
	lhs.Square(&z.Y)
	rhs.Square(&z.X)
	rhs.Mul(&rhs, &z.X)
	rhs.Add(&rhs, &curveB)
	return lhs.Equal(&rhs)
}

// Neg sets z = -x.
func (z *G1) Neg(x *G1) *G1 {
	if x.Inf {
		return z.Set(x)
	}
	z.X.Set(&x.X)
	z.Y.Neg(&x.Y)
	z.Inf = false
	return z
}

// Add sets z = a + b by the affine chord-and-tangent rule.
func (z *G1) Add(a, b *G1) *G1 {
	if a.Inf {
		return z.Set(b)
	}
	if b.Inf {
		return z.Set(a)
	}
	if a.X.Equal(&b.X) {
		if !a.Y.Equal(&b.Y) {
			return z.Set(G1Infinity())
		}
		return z.Double(a)
	}
	// lambda = (y2-y1)/(x2-x1); x2 ≠ x1 here, so the inverse exists.
	var num, den, lambda, x3, y3 fp.Element
	num.Sub(&b.Y, &a.Y)
	den.Sub(&b.X, &a.X)
	fpMustInverse(&den, &den)
	lambda.Mul(&num, &den)
	x3.Square(&lambda)
	x3.Sub(&x3, &a.X)
	x3.Sub(&x3, &b.X)
	y3.Sub(&a.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// Double sets z = 2a.
func (z *G1) Double(a *G1) *G1 {
	if a.Inf || a.Y.IsZero() {
		return z.Set(G1Infinity())
	}
	// lambda = 3x²/(2y); y ≠ 0 here, so the inverse exists.
	var num, den, lambda, x3, y3 fp.Element
	num.Square(&a.X)
	den.Double(&num)
	num.Add(&den, &num) // 3x²
	den.Double(&a.Y)
	fpMustInverse(&den, &den)
	lambda.Mul(&num, &den)
	x3.Square(&lambda)
	x3.Sub(&x3, &a.X)
	x3.Sub(&x3, &a.X)
	y3.Sub(&a.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// ScalarMult sets z = k·a via GLV decomposition and a joint wNAF ladder
// (see glv.go). Negative k multiplies by -a.
//
// With Montgomery-form arithmetic a field inversion costs hundreds of
// multiplications, so the affine ladder that was competitive on math/big
// (one inversion per step ≈ one generic reduction) is no longer; the
// Jacobian path defers to a single inversion at the end, and the GLV split
// halves its doubling count again. The plain Jacobian ladder survives as
// the differential oracle (g1ScalarMultJac, TestG1GLVMatchesJacobian), the
// affine one as g1ScalarMultAffine (TestJacobianMatchesAffine); see
// DESIGN.md §5–6.
func (z *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	opCounters.g1Mults.Add(1)
	e := new(big.Int).Mod(k, Order)
	return z.Set(g1ScalarMultGLV(a, e))
}

// g1ScalarMultAffine is the affine double-and-add reference ladder,
// retained for differential tests against the Jacobian fast path.
func g1ScalarMultAffine(a *G1, k *big.Int) *G1 {
	acc := G1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Double(acc)
		if k.Bit(i) == 1 {
			acc.Add(acc, a)
		}
	}
	return acc
}

// ScalarBaseMult sets z = k·G where G is the canonical generator, using the
// precomputed fixed-base window table (table.go): ~32 mixed additions, no
// doublings, one inversion.
func (z *G1) ScalarBaseMult(k *big.Int) *G1 {
	opCounters.g1Mults.Add(1)
	e := new(big.Int).Mod(k, Order)
	return z.Set(g1ScalarBaseMultAdd(e, nil))
}

// ScalarBaseMultAdd sets z = k·G + q, folding the extra addition into the
// fixed-base accumulation so the sum costs no additional normalization.
// Verify uses this to compute (V·h⁻¹)·P - R in one pass. q may be the
// identity.
func (z *G1) ScalarBaseMultAdd(k *big.Int, q *G1) *G1 {
	opCounters.g1Mults.Add(1)
	e := new(big.Int).Mod(k, Order)
	return z.Set(g1ScalarBaseMultAdd(e, q))
}

// g1MarshalledSize is the byte length of a marshalled G1 point.
const g1MarshalledSize = 64

// Marshal encodes z as X‖Y, 32 big-endian bytes each. The identity encodes
// as all zeroes.
func (z *G1) Marshal() []byte {
	out := make([]byte, g1MarshalledSize)
	if z.Inf {
		return out
	}
	xb, yb := z.X.Bytes(), z.Y.Bytes()
	copy(out[:32], xb[:])
	copy(out[32:], yb[:])
	return out
}

var (
	// ErrInvalidPoint reports a malformed or off-curve encoded point.
	ErrInvalidPoint = errors.New("bn254: invalid point encoding")
)

// Unmarshal decodes a point produced by Marshal, validating coordinate
// range and curve membership.
func (z *G1) Unmarshal(data []byte) error {
	if len(data) != g1MarshalledSize {
		return fmt.Errorf("%w: G1 wants %d bytes, got %d", ErrInvalidPoint, g1MarshalledSize, len(data))
	}
	x := new(big.Int).SetBytes(data[:32])
	y := new(big.Int).SetBytes(data[32:])
	if x.Sign() == 0 && y.Sign() == 0 {
		z.Set(G1Infinity())
		return nil
	}
	if x.Cmp(P) >= 0 || y.Cmp(P) >= 0 {
		return fmt.Errorf("%w: G1 coordinate out of range", ErrInvalidPoint)
	}
	var cand G1
	cand.X.SetBigInt(x)
	cand.Y.SetBigInt(y)
	if !cand.IsOnCurve() {
		return fmt.Errorf("%w: G1 point not on curve", ErrInvalidPoint)
	}
	z.Set(&cand)
	return nil
}

// hashBlock derives 32-byte blocks from (domain, msg) via
// SHA-256(domain ‖ counter ‖ msg).
func hashBlock(domain string, msg []byte, counter uint32) []byte {
	h := sha256.New()
	h.Write([]byte(domain))
	var ctr [4]byte
	binary.BigEndian.PutUint32(ctr[:], counter)
	h.Write(ctr[:])
	h.Write(msg)
	return h.Sum(nil)
}

// HashToG1 maps an arbitrary message into G1 by try-and-increment: derive an
// x-coordinate candidate from the hash stream, solve y² = x³ + 3, and choose
// the y parity from the stream. The cofactor of G1 is 1, so any curve point
// is already in the prime-order subgroup.
func HashToG1(domain string, msg []byte) *G1 {
	for counter := uint32(0); ; counter++ {
		block := hashBlock(domain, msg, counter)
		var x, rhs, y fp.Element
		x.SetBigInt(new(big.Int).SetBytes(block))
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, &curveB)
		if !y.Sqrt(&rhs) {
			continue
		}
		// Use one stream bit to pick between y and -y so the map is not
		// biased toward even roots.
		if block[len(block)-1]&1 == 1 {
			y.Neg(&y)
		}
		return &G1{X: x, Y: y}
	}
}

// HashToScalar maps an arbitrary message to a nonzero scalar in Zr*,
// reducing 512 bits of hash output to keep the bias negligible.
func HashToScalar(domain string, msg []byte) *big.Int {
	for counter := uint32(0); ; counter += 2 {
		wide := append(hashBlock(domain, msg, counter), hashBlock(domain, msg, counter+1)...)
		k := new(big.Int).Mod(new(big.Int).SetBytes(wide), Order)
		if k.Sign() != 0 {
			return k
		}
	}
}

// String renders the point for debugging.
func (z *G1) String() string {
	if z.Inf {
		return "G1(inf)"
	}
	return fmt.Sprintf("G1(%v, %v)", z.X.String(), z.Y.String())
}
