package bn254

// Lockstep multi-pairing kernel. A product of optimal-ate pairings
// Π e(Pⱼ, Qⱼ) shares two expensive pieces of work across the batch:
//
//   - the final exponentiation (one per product, not one per pair — already
//     exploited by PairingCheck), and
//   - the per-iteration squaring of the Miller accumulator. The Miller value
//     of a product is the product of the Miller values, and squaring is a
//     ring homomorphism on that product: (Π fⱼ)² = Π fⱼ². Running every
//     pair's doubling chain in lockstep therefore needs only ONE shared Fp12
//     squaring per ate-loop iteration, with each pair contributing its
//     sparse w⁰/w¹/w³ line via mulByLine.
//
// Per batch of n pairs the kernel costs 64 accumulator squarings + one
// final exponentiation (shared) plus n·64 doubling steps, n·(popcount+2)
// addition steps and one sparse multiplication per line (per pair) — the
// amortization the op-count regression tests pin. Field arithmetic is
// exact, so the lockstep product is byte-identical to the product of
// per-pair millerLoop values; FuzzMillerLoopMultiVsSingle enforces this
// against the per-pair oracle.

// MillerLoopMulti computes the unreduced product Π fⱼ of the optimal-ate
// Miller values of the pairs (ps[j], qs[j]), running all doubling chains in
// lockstep so the accumulator squaring is shared across the batch. Pairs
// with an infinity member contribute the identity and are skipped. The
// result must still pass a final exponentiation to become a GT element;
// Pair, PairingCheck and the batch-verification engine all sit on this
// kernel. ps and qs must have equal length.
func MillerLoopMulti(ps []*G1, qs []*G2) *Fp12 {
	if len(ps) != len(qs) {
		panic("bn254: MillerLoopMulti length mismatch")
	}
	// Filter trivial pairs once so the lockstep loop has no branches.
	gs := make([]*G1, 0, len(ps))
	hs := make([]*G2, 0, len(qs))
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		gs = append(gs, ps[i])
		hs = append(hs, qs[i])
	}
	f := Fp12One()
	n := len(gs)
	if n == 0 {
		return f
	}
	opCounters.pairings.Add(uint64(n))

	ts := make([]g2Proj, n)
	for j := range ts {
		ts[j].fromAffine(hs[j])
	}
	var l lineEval
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		opCounters.millerSquarings.Add(1)
		f.Square(f)
		bit := ateLoopCount.Bit(i) == 1
		for j := 0; j < n; j++ {
			ts[j].doubleStepProj(&l, gs[j])
			f.mulByLine(&l)
			if bit {
				ts[j].addStepProj(&l, hs[j], gs[j])
				f.mulByLine(&l)
			}
		}
	}
	// Frobenius correction lines, two per pair; no interleaved squarings.
	for j := 0; j < n; j++ {
		q1 := new(G2).frobeniusTwist(hs[j])
		ts[j].addStepProj(&l, q1, gs[j])
		f.mulByLine(&l)
		q2 := new(G2).frobeniusTwist(q1)
		q2.Neg(q2)
		ts[j].addStepProj(&l, q2, gs[j])
		f.mulByLine(&l)
	}
	return f
}

// PairMulti computes the reduced product Π e(ps[j], qs[j]) with one lockstep
// Miller pass and one shared final exponentiation. Pairs with an infinity
// member contribute the identity.
func PairMulti(ps []*G1, qs []*G2) *GT {
	f := MillerLoopMulti(ps, qs)
	if f.IsOne() {
		// Every pair was trivial (or the product collapsed before
		// reduction); the reduced value is the identity either way.
		return GTOne()
	}
	return &GT{v: finalExponentiation(f)}
}
