package bn254

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

func TestG1CompressedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		p := new(G1).ScalarBaseMult(new(big.Int).Rand(r, Order))
		enc := p.MarshalCompressed()
		if len(enc) != g1CompressedSize {
			t.Fatalf("encoded %d bytes", len(enc))
		}
		var q G1
		if err := q.UnmarshalCompressed(enc); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("round trip mismatch")
		}
		// The negated point must differ only in the prefix byte.
		neg := new(G1).Neg(p).MarshalCompressed()
		if bytes.Equal(neg, enc) {
			t.Fatal("P and -P compress identically")
		}
		if !bytes.Equal(neg[1:], enc[1:]) {
			t.Fatal("P and -P have different x encodings")
		}
	}
	var inf G1
	if err := inf.UnmarshalCompressed(G1Infinity().MarshalCompressed()); err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
}

func TestG2CompressedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 4; i++ {
		p := new(G2).ScalarBaseMult(new(big.Int).Rand(r, Order))
		var q G2
		if err := q.UnmarshalCompressed(p.MarshalCompressed()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("round trip mismatch")
		}
		neg := new(G2).Neg(p)
		var qn G2
		if err := qn.UnmarshalCompressed(neg.MarshalCompressed()); err != nil {
			t.Fatal(err)
		}
		if !qn.Equal(neg) {
			t.Fatal("negated round trip mismatch")
		}
	}
	var inf G2
	if err := inf.UnmarshalCompressed(G2Infinity().MarshalCompressed()); err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
}

func TestCompressedRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x02},
		make([]byte, g1CompressedSize), // handled: prefix 0 + zeros = infinity
		append([]byte{0x07}, make([]byte, 32)...), // bad prefix
	}
	// Case 2 IS valid (infinity); replace with nonzero-infinity violation.
	cases[2] = append([]byte{0x00, 0x01}, make([]byte, 31)...)
	for i, c := range cases {
		if err := new(G1).UnmarshalCompressed(c); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// x off curve: x=0 gives rhs=3, a QR? Try a few x until a non-residue.
	found := false
	for x := int64(0); x < 20 && !found; x++ {
		enc := make([]byte, g1CompressedSize)
		enc[0] = prefixEvenY
		big.NewInt(x).FillBytes(enc[1:])
		rhs := fpAddRef(fpMulRef(fpMulRef(big.NewInt(x), big.NewInt(x)), big.NewInt(x)), big.NewInt(3))
		if fpSqrtRef(rhs) == nil {
			if err := new(G1).UnmarshalCompressed(enc); err == nil {
				t.Fatal("off-curve x accepted")
			}
			found = true
		}
	}
	if !found {
		t.Skip("no small non-residue x found")
	}
}

func TestG2CompressedRejectsWrongSubgroup(t *testing.T) {
	// Build an on-twist point outside the order-r subgroup and compress it:
	// decode must refuse.
	for ctr := uint32(0); ; ctr++ {
		b0 := hashBlock("csub", []byte("x"), ctr)
		x := fp2FromBig(new(big.Int).SetBytes(b0), big.NewInt(3))
		rhs := new(Fp2).Mul(new(Fp2).Square(x), x)
		rhs.Add(rhs, twistB)
		y := new(Fp2).Sqrt(rhs)
		if y == nil {
			continue
		}
		pt := &G2{X: *x, Y: *y}
		if pt.IsInSubgroup() {
			continue
		}
		if err := new(G2).UnmarshalCompressed(pt.MarshalCompressed()); err == nil {
			t.Fatal("out-of-subgroup compressed point accepted")
		}
		return
	}
}
