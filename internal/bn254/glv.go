package bn254

import (
	"math/big"

	"mccls/internal/bn254/fp"
)

// GLV scalar multiplication for G1 (Gallant–Lambert–Vanstone). BN curves
// have j-invariant 0, so E(Fp) carries the cheap endomorphism
// φ(x, y) = (β·x, y) with β a primitive cube root of unity in Fp; on the
// order-r subgroup φ acts as multiplication by λ, a cube root of unity
// mod r. A 254-bit scalar k therefore splits as k ≡ k1 + k2·λ (mod r) with
// |k1|, |k2| ≈ √r ≈ 2^127, and k·P = k1·P + k2·φ(P) runs as a joint
// width-5 wNAF ladder of half the length: ~127 doublings instead of ~254.
//
// Every constant below is derived at init from the curve parameters (β and
// λ as roots of x² + x + 1 in Fp and Zr, the lattice basis by the extended
// Euclidean algorithm on (r, λ)) and cross-checked against the naive
// ladder, so a transcription error aborts startup instead of corrupting
// scalar multiplications. The matching of β to λ (each has two candidate
// roots) is resolved empirically: φ must act as λ, not λ².

var (
	// glvBeta is the cube root of unity in Fp with φ(P) = λ·P for glvLambda.
	glvBeta fp.Element
	// glvLambda is the matching cube root of unity mod r.
	glvLambda *big.Int
	// glvV1 = (a1, b1) and glvV2 = (a2, b2) are short lattice vectors with
	// a + b·λ ≡ 0 (mod r), used for Babai rounding in glvSplit.
	glvA1, glvB1, glvA2, glvB2 *big.Int
)

// cubeRootOfUnity returns a primitive cube root of unity modulo the odd
// prime m ≡ 1 (mod 3): (-1 + sqrt(-3))/2.
func cubeRootOfUnity(m *big.Int) *big.Int {
	s := new(big.Int).ModSqrt(new(big.Int).Mod(big.NewInt(-3), m), m)
	if s == nil {
		panic("bn254: -3 is not a square; modulus not ≡ 1 mod 3")
	}
	w := new(big.Int).Sub(s, big.NewInt(1))
	w.Mul(w, new(big.Int).ModInverse(big.NewInt(2), m))
	w.Mod(w, m)
	// Assert w² + w + 1 ≡ 0 (mod m).
	chk := new(big.Int).Mul(w, w)
	chk.Add(chk, w)
	chk.Add(chk, big.NewInt(1))
	if chk.Mod(chk, m).Sign() != 0 {
		panic("bn254: cube root of unity derivation failed")
	}
	return w
}

func init() {
	glvBeta.SetBigInt(cubeRootOfUnity(P))
	glvLambda = cubeRootOfUnity(Order)
	// Two candidate eigenvalues: λ and λ² = -1-λ. Pick the one matching
	// φ(G) = (β·x, y) on the generator, checked with the plain ladder.
	g := G1Generator()
	phi := &G1{Y: g.Y}
	phi.X.Mul(&g.X, &glvBeta)
	if !g1ScalarMultJac(g, glvLambda).Equal(phi) {
		glvLambda.Sub(Order, glvLambda)
		glvLambda.Sub(glvLambda, big.NewInt(1))
		if !g1ScalarMultJac(g, glvLambda).Equal(phi) {
			panic("bn254: no eigenvalue matches the GLV endomorphism")
		}
	}
	glvA1, glvB1, glvA2, glvB2 = glvLattice(Order, glvLambda)
}

// glvLattice finds two short vectors of the lattice
// {(a, b) : a + b·λ ≡ 0 mod r} via the extended Euclidean algorithm on
// (r, λ), stopping at the first remainder below √r (Guide to ECC,
// Alg. 3.74). Each remainder rᵢ = sᵢ·r + tᵢ·λ yields the vector (rᵢ, -tᵢ).
func glvLattice(r, lambda *big.Int) (a1, b1, a2, b2 *big.Int) {
	sqrtR := new(big.Int).Sqrt(r)
	r0, r1 := new(big.Int).Set(r), new(big.Int).Set(lambda)
	t0, t1 := big.NewInt(0), big.NewInt(1)
	for r1.Cmp(sqrtR) >= 0 {
		q := new(big.Int).Div(r0, r1)
		r0, r1 = r1, new(big.Int).Sub(r0, new(big.Int).Mul(q, r1))
		t0, t1 = t1, new(big.Int).Sub(t0, new(big.Int).Mul(q, t1))
	}
	// (r1, -t1) is short; pair it with the shorter of (r0, -t0) and the
	// next remainder's vector.
	q := new(big.Int).Div(r0, r1)
	r2 := new(big.Int).Sub(r0, new(big.Int).Mul(q, r1))
	t2 := new(big.Int).Sub(t0, new(big.Int).Mul(q, t1))
	normSq := func(a, b *big.Int) *big.Int {
		n := new(big.Int).Mul(a, a)
		return n.Add(n, new(big.Int).Mul(b, b))
	}
	a1, b1 = r1, new(big.Int).Neg(t1)
	if normSq(r0, t0).Cmp(normSq(r2, t2)) <= 0 {
		a2, b2 = r0, new(big.Int).Neg(t0)
	} else {
		a2, b2 = r2, new(big.Int).Neg(t2)
	}
	return a1, b1, a2, b2
}

// roundDiv returns round(x/y) for y > 0, rounding half away from floor:
// floor((2x + y) / 2y).
func roundDiv(x, y *big.Int) *big.Int {
	n := new(big.Int).Lsh(x, 1)
	n.Add(n, y)
	d := new(big.Int).Lsh(y, 1)
	return n.Div(n, d) // big.Int Div is Euclidean: floor for d > 0
}

// glvSplit decomposes k ∈ [0, r) as k ≡ k1 + k2·λ (mod r) with
// |k1|, |k2| bounded by the lattice diameter (≈ √r; the sub-scalar bound
// test pins ≤ 2^129). Babai rounding: subtract from (k, 0) its closest
// lattice approximation c1·v1 + c2·v2.
func glvSplit(k *big.Int) (k1, k2 *big.Int) {
	c1 := roundDiv(new(big.Int).Mul(glvB2, k), Order)
	c2 := roundDiv(new(big.Int).Neg(new(big.Int).Mul(glvB1, k)), Order)
	k1 = new(big.Int).Set(k)
	k1.Sub(k1, new(big.Int).Mul(c1, glvA1))
	k1.Sub(k1, new(big.Int).Mul(c2, glvA2))
	k2 = new(big.Int).Neg(new(big.Int).Mul(c1, glvB1))
	k2.Sub(k2, new(big.Int).Mul(c2, glvB2))
	return k1, k2
}

// g1OddMultiples returns [P, 3P, 5P, …, (2n-1)P] in affine coordinates,
// using Jacobian additions and one batched normalization. a must not be
// the identity.
func g1OddMultiples(a *G1, n int) []G1 {
	var d g1Jac
	d.fromAffine(a)
	d.double()
	twoA := d.affine() // y = 0 (two-torsion) collapses to infinity here
	js := make([]g1Jac, n)
	js[0].fromAffine(a)
	for i := 1; i < n; i++ {
		js[i] = js[i-1]
		if !twoA.Inf {
			js[i].addMixed(twoA)
		}
	}
	return g1BatchAffine(js)
}

// g1ScalarMultGLV computes k·a for k ∈ [0, r) via GLV decomposition and a
// joint width-5 wNAF ladder over the odd-multiple tables of a and φ(a).
func g1ScalarMultGLV(a *G1, k *big.Int) *G1 {
	if a.Inf || k.Sign() == 0 {
		return G1Infinity()
	}
	k1, k2 := glvSplit(k)
	s1, s2 := k1.Sign(), k2.Sign()
	d1 := wnafDigits(new(big.Int).Abs(k1), wnafWindow)
	d2 := wnafDigits(new(big.Int).Abs(k2), wnafWindow)

	tab := g1OddMultiples(a, wnafTableSize)
	// φ distributes over addition, so φ(table) is just β·x on each entry.
	tabPhi := make([]G1, len(tab))
	for i := range tab {
		tabPhi[i] = tab[i]
		if !tab[i].Inf {
			tabPhi[i].X.Mul(&tab[i].X, &glvBeta)
		}
	}

	addDigit := func(acc *g1Jac, tab []G1, d int8, sign int) {
		if d == 0 {
			return
		}
		neg := d < 0
		if neg {
			d = -d
		}
		if sign < 0 {
			neg = !neg
		}
		pt := tab[(d-1)/2]
		if pt.Inf {
			return
		}
		if neg {
			var np G1
			np.Neg(&pt)
			acc.addMixed(&np)
			return
		}
		acc.addMixed(&pt)
	}

	n := len(d1)
	if len(d2) > n {
		n = len(d2)
	}
	var acc g1Jac
	acc.setInfinity()
	for i := n - 1; i >= 0; i-- {
		acc.double()
		if i < len(d1) {
			addDigit(&acc, tab, d1[i], s1)
		}
		if i < len(d2) {
			addDigit(&acc, tabPhi, d2[i], s2)
		}
	}
	return acc.affine()
}

// g2OddMultiples is the G2 counterpart of g1OddMultiples.
func g2OddMultiples(a *G2, n int) []G2 {
	var d g2Jac
	d.fromAffine(a)
	d.double()
	twoA := d.affine()
	js := make([]g2Jac, n)
	js[0].fromAffine(a)
	for i := 1; i < n; i++ {
		js[i] = js[i-1]
		if !twoA.Inf {
			js[i].addMixed(twoA)
		}
	}
	return g2BatchAffine(js)
}

// g2ScalarMultWNAF computes k·a for any non-negative k (not reduced — the
// cofactor-clearing and subgroup-check callers pass scalars above r) by a
// width-5 wNAF ladder: same doubling count as double-and-add but ~k/6
// additions instead of ~k/2. G2 has no usable GLV split here: the twist
// endomorphism eigenvalue lives mod r, and this path must accept unreduced
// scalars and points outside the order-r subgroup (hash-to-curve inputs).
func g2ScalarMultWNAF(a *G2, k *big.Int) *G2 {
	if a.Inf || k.Sign() == 0 {
		return G2Infinity()
	}
	digits := wnafDigits(k, wnafWindow)
	tab := g2OddMultiples(a, wnafTableSize)
	var acc g2Jac
	acc.setInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc.double()
		d := digits[i]
		if d == 0 {
			continue
		}
		neg := d < 0
		if neg {
			d = -d
		}
		pt := tab[(d-1)/2]
		if pt.Inf {
			continue
		}
		if neg {
			var np G2
			np.Neg(&pt)
			acc.addMixed(&np)
			continue
		}
		acc.addMixed(&pt)
	}
	return acc.affine()
}
