package bn254

// Reference math/big implementation of the base-field tower, retained after
// the Montgomery refactor as the differential-testing oracle. This file is
// test-only (never linked into the library), mirrors the pre-refactor
// semantics exactly — canonical residues in [0, p), nil for missing
// inverses/roots — and is what FuzzFpVsBigInt / FuzzFp2VsBigInt and the
// Fp12 differential test compare the fixed-width implementation against.

import (
	"math/big"
	"math/rand"
	"testing"
)

func fpAddRef(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Add(a, b), P)
}

func fpSubRef(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Sub(a, b), P)
}

func fpMulRef(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), P)
}

func fpNegRef(a *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Neg(a), P)
}

// fpInvRef returns a⁻¹ mod p, or nil when a ≡ 0 — the nil that the old
// production code never checked for and the fp.Element API now surfaces as
// an explicit ok.
func fpInvRef(a *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, P)
}

// fpSqrtRef returns a square root of a modulo p, or nil for non-residues.
func fpSqrtRef(a *big.Int) *big.Int {
	return new(big.Int).ModSqrt(a, P)
}

// fp2Ref is the big.Int reference of an Fp2 element c0 + c1·i.
type fp2Ref struct {
	c0, c1 *big.Int
}

func newFp2Ref(c0, c1 *big.Int) *fp2Ref {
	return &fp2Ref{c0: new(big.Int).Mod(c0, P), c1: new(big.Int).Mod(c1, P)}
}

// refOfFp2 converts a Montgomery Fp2 into the reference representation.
func refOfFp2(z *Fp2) *fp2Ref { return &fp2Ref{c0: z.C0.BigInt(), c1: z.C1.BigInt()} }

func (z *fp2Ref) toFp2() *Fp2 { return fp2FromBig(z.c0, z.c1) }

func (z *fp2Ref) equalFp2(x *Fp2) bool {
	return z.c0.Cmp(x.C0.BigInt()) == 0 && z.c1.Cmp(x.C1.BigInt()) == 0
}

func (z *fp2Ref) add(x, y *fp2Ref) *fp2Ref {
	return &fp2Ref{c0: fpAddRef(x.c0, y.c0), c1: fpAddRef(x.c1, y.c1)}
}

func (z *fp2Ref) sub(x, y *fp2Ref) *fp2Ref {
	return &fp2Ref{c0: fpSubRef(x.c0, y.c0), c1: fpSubRef(x.c1, y.c1)}
}

func (z *fp2Ref) mul(x, y *fp2Ref) *fp2Ref {
	ac := fpMulRef(x.c0, y.c0)
	bd := fpMulRef(x.c1, y.c1)
	ad := fpMulRef(x.c0, y.c1)
	bc := fpMulRef(x.c1, y.c0)
	return &fp2Ref{c0: fpSubRef(ac, bd), c1: fpAddRef(ad, bc)}
}

// inv returns x⁻¹ or nil for zero.
func (z *fp2Ref) inv(x *fp2Ref) *fp2Ref {
	norm := fpAddRef(fpMulRef(x.c0, x.c0), fpMulRef(x.c1, x.c1))
	ni := fpInvRef(norm)
	if ni == nil {
		return nil
	}
	return &fp2Ref{c0: fpMulRef(x.c0, ni), c1: fpNegRef(fpMulRef(x.c1, ni))}
}

// randFp2 draws a uniform Fp2 element (shared by several test files).
func randFp2(r *rand.Rand) *Fp2 {
	return fp2FromBig(new(big.Int).Rand(r, P), new(big.Int).Rand(r, P))
}

// fp12MulRef multiplies two Fp12 elements by schoolbook polynomial
// convolution over fp2Ref followed by reduction modulo w⁶ = xi, entirely in
// math/big — the oracle for the optimized (zero-skipping) Fp12.Mul.
func fp12MulRef(a, b *Fp12) *Fp12 {
	xiRef := newFp2Ref(big.NewInt(9), big.NewInt(1))
	var ar, br [6]*fp2Ref
	for k := 0; k < 6; k++ {
		ar[k] = refOfFp2(&a.C[k])
		br[k] = refOfFp2(&b.C[k])
	}
	var conv [11]*fp2Ref
	for k := range conv {
		conv[k] = newFp2Ref(big.NewInt(0), big.NewInt(0))
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			conv[i+j] = new(fp2Ref).add(conv[i+j], new(fp2Ref).mul(ar[i], br[j]))
		}
	}
	z := &Fp12{}
	for k := 0; k < 5; k++ {
		conv[k] = new(fp2Ref).add(conv[k], new(fp2Ref).mul(conv[k+6], xiRef))
	}
	for k := 0; k < 6; k++ {
		z.C[k] = *conv[k].toFp2()
	}
	return z
}

// TestFp12MulVsRef drives the production Fp12 multiplication — including
// its sparse-operand fast path — against the big.Int convolution oracle.
func TestFp12MulVsRef(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	randFull := func() *Fp12 {
		z := &Fp12{}
		for k := 0; k < 6; k++ {
			z.C[k] = *randFp2(r)
		}
		return z
	}
	// Line-evaluation-shaped sparse element: only w⁰ (Fp), w¹, w³ nonzero.
	randLine := func() *Fp12 {
		z := &Fp12{}
		z.C[0] = *fp2FromBig(new(big.Int).Rand(r, P), big.NewInt(0))
		z.C[1] = *randFp2(r)
		z.C[3] = *randFp2(r)
		return z
	}
	cases := [][2]*Fp12{
		{randFull(), randFull()},
		{randFull(), randLine()},
		{randLine(), randLine()},
		{Fp12One(), randFull()},
		{&Fp12{}, randFull()},
	}
	for i, c := range cases {
		got := new(Fp12).Mul(c[0], c[1])
		want := fp12MulRef(c[0], c[1])
		if !got.Equal(want) {
			t.Fatalf("case %d: Fp12.Mul disagrees with big.Int reference", i)
		}
	}
}
