// Package bn254 implements the BN254 (alt_bn128) pairing-friendly elliptic
// curve from scratch on the standard library: prime-field towers Fp, Fp2 and
// Fp12 = Fp2[w]/(w^6 - xi), the groups G1 ⊂ E(Fp), G2 ⊂ E'(Fp2) and
// GT ⊂ Fp12*, hashing to G1/G2/Zr, and the optimal-ate pairing
// e: G1 × G2 → GT.
//
// Base-field arithmetic is fixed-width Montgomery form (internal/bn254/fp);
// scalars and every derived constant (twist coefficient, Frobenius
// coefficients, final-exponentiation hard part) remain math/big and are
// computed from the curve parameter u rather than transcribed, keeping the
// derivation auditable.
package bn254

import (
	"math/big"

	"mccls/internal/bn254/fp"
)

// mustBig parses a base-10 integer literal and panics on malformed input.
// It is used only for package-level constants, where a parse failure is a
// programming error that must abort startup.
func mustBig(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn254: invalid integer literal " + s)
	}
	return n
}

var (
	// u is the BN parameter. p, Order and the ate loop count are all
	// polynomials in u.
	u = mustBig("4965661367192848881")

	// P is the base field modulus p = 36u^4 + 36u^3 + 24u^2 + 6u + 1.
	P = mustBig("21888242871839275222246405745257275088696311157297823662689037894645226208583")

	// Order is the prime group order r = 36u^4 + 36u^3 + 18u^2 + 6u + 1
	// of G1, G2 and GT.
	Order = mustBig("21888242871839275222246405745257275088548364400416034343698204186575808495617")

	// ateLoopCount is 6u + 2, the Miller loop length of the optimal-ate
	// pairing on BN curves.
	ateLoopCount = new(big.Int).Add(new(big.Int).Mul(big.NewInt(6), u), big.NewInt(2))

	// curveB is the G1 curve coefficient: E: y^2 = x^3 + 3.
	curveB = fp.NewElement(3)

	// g2Cofactor is #E'(Fp2)/r = 2p - r for BN curves. Hash-to-G2 output
	// is multiplied by it to land in the order-r subgroup.
	g2Cofactor = new(big.Int).Sub(new(big.Int).Lsh(P, 1), Order)

	// finalExpHard is (p^4 - p^2 + 1)/r, the hard part of the final
	// exponentiation (the easy part (p^6-1)(p^2+1) is applied via
	// Frobenius maps and one inversion).
	finalExpHard = computeFinalExpHard()

	// xiVal is the sextic non-residue 9 + i used to build Fp12 over Fp2.
	xiVal = Fp2{C0: fp.NewElement(9), C1: fp.NewElement(1)}

	// xiToPMinus1Over6 is xi^((p-1)/6) with xi = 9 + i; the w-coefficient
	// Frobenius constant of Fp12 = Fp2[w]/(w^6 - xi).
	xiToPMinus1Over6 = computeFrobGamma(1)
	// xiToPMinus1Over3 = xi^((p-1)/3): used by the twist Frobenius on x.
	xiToPMinus1Over3 = computeFrobGamma(2)
	// xiToPMinus1Over2 = xi^((p-1)/2): used by the twist Frobenius on y.
	xiToPMinus1Over2 = computeFrobGamma(3)

	// twistB is the G2 curve coefficient b' = 3/xi of the D-type sextic
	// twist E': y^2 = x^3 + b' over Fp2.
	twistB = computeTwistB()
)

// computeFinalExpHard returns (p^4 - p^2 + 1) / r. The division is exact for
// BN curves; exactness is asserted by tests.
func computeFinalExpHard() *big.Int {
	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	e := new(big.Int).Sub(p4, p2)
	e.Add(e, big.NewInt(1))
	return e.Div(e, Order)
}

// computeFrobGamma returns xi^(j*(p-1)/6) in Fp2, the j-th Frobenius
// coefficient for the w-power basis of Fp12.
func computeFrobGamma(j int) *Fp2 {
	exp := new(big.Int).Sub(P, big.NewInt(1))
	exp.Mul(exp, big.NewInt(int64(j)))
	exp.Div(exp, big.NewInt(6))
	return new(Fp2).Exp(xi(), exp)
}

// xi returns the sextic non-residue 9 + i.
func xi() *Fp2 { return &xiVal }

// computeTwistB returns 3/xi, the coefficient of the sextic twist.
func computeTwistB() *Fp2 {
	inv := new(Fp2).Inverse(xi())
	three := &Fp2{C0: fp.NewElement(3)}
	return new(Fp2).Mul(three, inv)
}
