package fp

import "math/bits"

// This file holds the portable CIOS implementation of the hot field
// operations. On amd64 it survives as the differential oracle for the
// assembly kernels (FuzzFpMulAsmVsGeneric, TestFpAsmEdgeVectors) and as
// the runtime fallback when the CPU lacks ADX/BMI2; under the purego
// build tag (or any other GOARCH) it IS the implementation. The bodies
// are the original PR1 code, kept verbatim so the oracle cannot drift.

// madd0 returns the high word of a·b + c.
func madd0(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi
}

// madd1 returns a·b + t as (hi, lo).
func madd1(a, b, t uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	lo, carry := bits.Add64(lo, t, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd2 returns a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd3 returns a·b + c + d + e·2^64 as (hi, lo).
func madd3(a, b, c, d, e uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return hi, lo
}

// reduceGeneric conditionally subtracts q so z lands in [0, q), without
// branching on the value.
func reduceGeneric(z *Element) {
	var b uint64
	t0, b := bits.Sub64(z[0], q0, 0)
	t1, b := bits.Sub64(z[1], q1, b)
	t2, b := bits.Sub64(z[2], q2, b)
	t3, b := bits.Sub64(z[3], q3, b)
	mask := b - 1 // all-ones iff the subtraction did not borrow (z ≥ q)
	z[0] = (t0 & mask) | (z[0] &^ mask)
	z[1] = (t1 & mask) | (z[1] &^ mask)
	z[2] = (t2 & mask) | (z[2] &^ mask)
	z[3] = (t3 & mask) | (z[3] &^ mask)
}

// addGeneric sets z = x + y mod q.
func addGeneric(z, x, y *Element) {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c) // x+y < 2q < 2^255: no carry out
	reduceGeneric(z)
}

// doubleGeneric sets z = 2x mod q.
func doubleGeneric(z, x *Element) { addGeneric(z, x, x) }

// subGeneric sets z = x - y mod q.
func subGeneric(z, x, y *Element) {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	mask := uint64(0) - b // all-ones iff we borrowed: add q back
	var c uint64
	z[0], c = bits.Add64(z[0], q0&mask, 0)
	z[1], c = bits.Add64(z[1], q1&mask, c)
	z[2], c = bits.Add64(z[2], q2&mask, c)
	z[3], _ = bits.Add64(z[3], q3&mask, c)
}

// negGeneric sets z = -x mod q.
func negGeneric(z, x *Element) {
	nz := x[0] | x[1] | x[2] | x[3]
	mask := uint64(0) - ((nz | (uint64(0) - nz)) >> 63) // all-ones iff x ≠ 0
	var b uint64
	t0, b := bits.Sub64(q0, x[0], 0)
	t1, b := bits.Sub64(q1, x[1], b)
	t2, b := bits.Sub64(q2, x[2], b)
	t3, _ := bits.Sub64(q3, x[3], b)
	z[0] = t0 & mask
	z[1] = t1 & mask
	z[2] = t2 & mask
	z[3] = t3 & mask
}

// mulGeneric sets z = x·y (Montgomery product) using one CIOS pass: each
// outer round multiplies by one limb of x and folds in one Montgomery
// reduction step, so the intermediate never exceeds five limbs. The
// no-carry optimisation applies because q's top limb is < 2^62.
func mulGeneric(z, x, y *Element) {
	var t [4]uint64
	var c [3]uint64
	{
		v := x[0]
		c[1], c[0] = bits.Mul64(v, y[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q0, c[0])
		c[1], c[0] = madd1(v, y[1], c[1])
		c[2], t[0] = madd2(m, q1, c[2], c[0])
		c[1], c[0] = madd1(v, y[2], c[1])
		c[2], t[1] = madd2(m, q2, c[2], c[0])
		c[1], c[0] = madd1(v, y[3], c[1])
		t[3], t[2] = madd3(m, q3, c[0], c[2], c[1])
	}
	for i := 1; i < 4; i++ {
		v := x[i]
		c[1], c[0] = madd1(v, y[0], t[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q0, c[0])
		c[1], c[0] = madd2(v, y[1], c[1], t[1])
		c[2], t[0] = madd2(m, q1, c[2], c[0])
		c[1], c[0] = madd2(v, y[2], c[1], t[2])
		c[2], t[1] = madd2(m, q2, c[2], c[0])
		c[1], c[0] = madd2(v, y[3], c[1], t[3])
		t[3], t[2] = madd3(m, q3, c[0], c[2], c[1])
	}
	*z = t
	reduceGeneric(z)
}

// squareGeneric sets z = x². A dedicated 4-limb squaring saves too little
// over CIOS multiplication to justify a second carry-chain to audit.
func squareGeneric(z, x *Element) { mulGeneric(z, x, x) }
