// Package fp implements the BN254 base field Fp with fixed-width
// arithmetic. An Element is four 64-bit limbs (little-endian) holding a
// residue in Montgomery form: the limbs encode a·R mod q with R = 2^256,
// so multiplication is a single CIOS (coarsely integrated operand
// scanning) pass instead of a generic trial-division reduction, and no
// operation allocates.
//
// Guarantees: Add, Sub, Neg, Double, Mul and Square run in constant time
// (branch-free limb arithmetic with mask selects). Inverse and Exp run in
// time dependent only on the (public, fixed) exponent, so Inverse is also
// secret-independent; Sqrt shares that property. Conversions to and from
// math/big are NOT constant time and belong at serialization boundaries
// only.
package fp

import (
	"math/big"
	"math/bits"
)

// Element is an Fp residue in Montgomery form, little-endian limbs.
// The zero value is the field's zero. Elements are always kept in the
// canonical range [0, q).
type Element [4]uint64

// q is the BN254 base field modulus
// 21888242871839275222246405745257275088696311157297823662689037894645226208583,
// split into 64-bit limbs. The init self-check below re-derives every
// constant from the decimal string and aborts on any mismatch, so the hex
// literals are transcription-safe.
const (
	q0 = 0x3c208c16d87cfd47
	q1 = 0x97816a916871ca8d
	q2 = 0xb85045b68181585d
	q3 = 0x30644e72e131a029
)

// qInvNeg = -q⁻¹ mod 2^64, the Montgomery reduction factor.
const qInvNeg = 0x87d20782e4866389

var (
	// rSquare = R² mod q; multiplying by it converts into Montgomery form.
	rSquare = Element{0xf32cfc5b538afa89, 0xb5e71911d44501fb, 0x47ab1eff0a417ff6, 0x06d89f71cab8351f}

	// one = R mod q, the Montgomery image of 1.
	one = Element{0xd35d438dc58f0d9d, 0x0a78eb28f5c70b3d, 0x666ea36f7879462c, 0x0e0a77c19a07df2f}

	// qBig is the modulus as a big.Int for the conversion boundary.
	qBig = mustDecimal("21888242871839275222246405745257275088696311157297823662689037894645226208583")

	// qMinus2 is the Inverse exponent (Fermat), qPlus1Over4 the Sqrt
	// exponent (q ≡ 3 mod 4). Both are public constants, so the fixed
	// exponentiation chains leak nothing about their inputs' values.
	// The big.Int forms are retained for the init cross-check and as
	// test oracles; the runtime Inverse/Sqrt paths use the plain limb
	// forms below and never touch math/big.
	qMinus2     = new(big.Int).Sub(qBig, big.NewInt(2))
	qPlus1Over4 = new(big.Int).Rsh(new(big.Int).Add(qBig, big.NewInt(1)), 2)

	// qMinus2Limbs and qPlus1Over4Limbs are the same exponents as plain
	// (non-Montgomery) little-endian limbs for the expFixed chain.
	// q0 ends in 0x47 and q0+1 in 0x48, so the -2 borrows nothing and
	// the +1 carries nothing beyond limb 0.
	qMinus2Limbs     = [4]uint64{q0 - 2, q1, q2, q3}
	qPlus1Over4Limbs = [4]uint64{
		uint64(q0+1)>>2 | uint64(q1&3)<<62,
		uint64(q1)>>2 | uint64(q2&3)<<62,
		uint64(q2)>>2 | uint64(q3&3)<<62,
		uint64(q3) >> 2,
	}

	// qHalf = (q-1)/2 in plain (non-Montgomery) limbs, for IsNeg.
	qHalf = bigToLimbs(new(big.Int).Rsh(qBig, 1))
)

func mustDecimal(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("fp: invalid decimal literal")
	}
	return n
}

// bigToLimbs splits a non-negative v < 2^256 into little-endian limbs.
func bigToLimbs(v *big.Int) Element {
	var buf [32]byte
	v.FillBytes(buf[:])
	var e Element
	for i := 0; i < 4; i++ {
		e[i] = uint64(buf[31-8*i]) | uint64(buf[30-8*i])<<8 |
			uint64(buf[29-8*i])<<16 | uint64(buf[28-8*i])<<24 |
			uint64(buf[27-8*i])<<32 | uint64(buf[26-8*i])<<40 |
			uint64(buf[25-8*i])<<48 | uint64(buf[24-8*i])<<56
	}
	return e
}

// init cross-checks every hand-written constant against values derived
// from the decimal modulus, turning a transcription error into a startup
// panic instead of silently wrong field arithmetic.
func init() {
	if bigToLimbs(qBig) != (Element{q0, q1, q2, q3}) {
		panic("fp: modulus limbs disagree with decimal constant")
	}
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	if bigToLimbs(new(big.Int).Mod(r, qBig)) != one {
		panic("fp: R mod q constant is wrong")
	}
	r2 := new(big.Int).Mul(r, r)
	if bigToLimbs(r2.Mod(r2, qBig)) != rSquare {
		panic("fp: R² mod q constant is wrong")
	}
	// qInvNeg: q·(-q⁻¹) ≡ -1 mod 2^64.
	qInv := new(big.Int).ModInverse(qBig, new(big.Int).Lsh(big.NewInt(1), 64))
	want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 64), qInv)
	if want.Uint64() != qInvNeg {
		panic("fp: Montgomery factor qInvNeg is wrong")
	}
	if bigToLimbs(qMinus2) != Element(qMinus2Limbs) {
		panic("fp: qMinus2 limb constant is wrong")
	}
	if bigToLimbs(qPlus1Over4) != Element(qPlus1Over4Limbs) {
		panic("fp: qPlus1Over4 limb constant is wrong")
	}
}

// NewElement returns v as a field element (in Montgomery form).
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// One returns the multiplicative identity.
func One() Element { return one }

// SetZero sets z = 0 and returns z.
func (z *Element) SetZero() *Element {
	*z = Element{}
	return z
}

// SetOne sets z = 1 and returns z.
func (z *Element) SetOne() *Element {
	*z = one
	return z
}

// Set copies x into z and returns z.
func (z *Element) Set(x *Element) *Element {
	*z = *x
	return z
}

// SetUint64 sets z = v and returns z.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v}
	return z.Mul(z, &rSquare)
}

// SetBigInt sets z = v mod q and returns z. Not constant time.
func (z *Element) SetBigInt(v *big.Int) *Element {
	m := new(big.Int).Mod(v, qBig)
	*z = bigToLimbs(m)
	return z.Mul(z, &rSquare)
}

// BigInt returns z as a canonical big.Int in [0, q). Not constant time.
func (z *Element) BigInt() *big.Int {
	t := *z
	t.fromMont()
	var buf [32]byte
	for i := 0; i < 4; i++ {
		limb := t[i]
		for j := 0; j < 8; j++ {
			buf[31-8*i-j] = byte(limb >> (8 * j))
		}
	}
	return new(big.Int).SetBytes(buf[:])
}

// Bytes returns the 32-byte big-endian canonical encoding of z.
func (z *Element) Bytes() [32]byte {
	t := *z
	t.fromMont()
	var buf [32]byte
	for i := 0; i < 4; i++ {
		limb := t[i]
		for j := 0; j < 8; j++ {
			buf[31-8*i-j] = byte(limb >> (8 * j))
		}
	}
	return buf
}

// IsZero reports whether z == 0.
func (z *Element) IsZero() bool { return z[0]|z[1]|z[2]|z[3] == 0 }

// IsOne reports whether z == 1.
func (z *Element) IsOne() bool { return *z == one }

// Equal reports whether z == x. Montgomery representatives are canonical,
// so limb equality is field equality.
func (z *Element) Equal(x *Element) bool { return *z == *x }

// IsNeg reports the canonical "sign" of z: whether its plain value exceeds
// (q-1)/2. Exactly one of a, -a is negative for a ≠ 0, which makes the
// flag suitable for compressed-point y recovery.
func (z *Element) IsNeg() bool {
	t := *z
	t.fromMont()
	for i := 3; i >= 0; i-- {
		if t[i] != qHalf[i] {
			return t[i] > qHalf[i]
		}
	}
	return false
}

// reduce conditionally subtracts q so z lands in [0, q), without
// branching on the value.
func (z *Element) reduce() { reduceGeneric(z) }

// Add sets z = x + y and returns z.
func (z *Element) Add(x, y *Element) *Element {
	add(z, x, y)
	return z
}

// Double sets z = 2x and returns z.
func (z *Element) Double(x *Element) *Element {
	double(z, x)
	return z
}

// Sub sets z = x - y and returns z.
func (z *Element) Sub(x, y *Element) *Element {
	sub(z, x, y)
	return z
}

// Neg sets z = -x and returns z.
func (z *Element) Neg(x *Element) *Element {
	neg(z, x)
	return z
}

// Halve sets z = x/2 and returns z. An odd residue is made even by adding
// q (odd) first, so the logical right shift is exact; x + q < 2q < 2^255,
// so the sum never carries out of four limbs.
func (z *Element) Halve(x *Element) *Element {
	mask := uint64(0) - (x[0] & 1) // all-ones iff x is odd
	var c uint64
	t0, c := bits.Add64(x[0], q0&mask, 0)
	t1, c := bits.Add64(x[1], q1&mask, c)
	t2, c := bits.Add64(x[2], q2&mask, c)
	t3, _ := bits.Add64(x[3], q3&mask, c)
	z[0] = t0>>1 | t1<<63
	z[1] = t1>>1 | t2<<63
	z[2] = t2>>1 | t3<<63
	z[3] = t3 >> 1
	return z
}

// Mul sets z = x·y (Montgomery product) and returns z. On amd64 with
// ADX/BMI2 this is a MULX/ADCX/ADOX interleaved CIOS assembly kernel
// (fp_amd64.s); everywhere else (and under the purego build tag) it is
// the portable CIOS pass in fp_generic.go. Both paths are branch-free
// in the operand values.
func (z *Element) Mul(x, y *Element) *Element {
	mul(z, x, y)
	return z
}

// Square sets z = x² and returns z.
func (z *Element) Square(x *Element) *Element {
	square(z, x)
	return z
}

// fromMont converts z out of Montgomery form in place (divides by R),
// via four reduction rounds against a zero-extended operand.
func (z *Element) fromMont() {
	for i := 0; i < 4; i++ {
		m := z[0] * qInvNeg
		c := madd0(m, q0, z[0])
		c, z[0] = madd2(m, q1, z[1], c)
		c, z[1] = madd2(m, q2, z[2], c)
		c, z[2] = madd2(m, q3, z[3], c)
		z[3] = c
	}
	z.reduce()
}

// Exp sets z = x^e for a non-negative big.Int exponent and returns z.
// The ladder's timing depends only on e, which is public at every call
// site in this module.
func (z *Element) Exp(x *Element, e *big.Int) *Element {
	acc := one
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if e.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	*z = acc
	return z
}

// expFixed sets z = x^e for a public 256-bit exponent held as plain
// little-endian limbs, and returns z. It runs a fixed 4-bit-window
// addition chain: 14 multiplications fill the odd powers of the window
// table, then each exponent nibble costs four squarings plus (for
// nonzero nibbles) one table multiplication. The schedule is a function
// of e alone — both exponents used here are compile-time field
// constants — so nothing about x leaks through timing, and the whole
// chain lives on the stack (no math/big, 0 allocs/op).
func (z *Element) expFixed(x *Element, e *[4]uint64) *Element {
	var table [16]Element
	table[0] = one
	table[1] = *x
	for i := 2; i < 16; i++ {
		table[i].Mul(&table[i-1], x)
	}
	acc := table[(e[3]>>60)&0xf]
	for i := 62; i >= 0; i-- {
		acc.Square(&acc)
		acc.Square(&acc)
		acc.Square(&acc)
		acc.Square(&acc)
		nib := (e[i/16] >> (uint(i%16) * 4)) & 0xf
		if nib != 0 {
			acc.Mul(&acc, &table[nib])
		}
	}
	*z = acc
	return z
}

// Inverse sets z = x⁻¹ and reports whether the inverse exists. Zero has
// no inverse: z is set to zero and ok is false. Uses Fermat (x^(q-2))
// through the fixed expFixed chain, so the cost is a fixed ~310
// multiplications regardless of x and nothing allocates.
func (z *Element) Inverse(x *Element) (ok bool) {
	if x.IsZero() {
		z.SetZero()
		return false
	}
	z.expFixed(x, &qMinus2Limbs)
	return true
}

// Sqrt sets z to a square root of x and reports whether one exists.
// q ≡ 3 (mod 4), so the candidate is x^((q+1)/4) via the fixed expFixed
// chain; squaring it back detects non-residues. On failure z is left
// untouched.
func (z *Element) Sqrt(x *Element) (ok bool) {
	var cand, check Element
	cand.expFixed(x, &qPlus1Over4Limbs)
	check.Square(&cand)
	if !check.Equal(x) {
		return false
	}
	*z = cand
	return true
}

// String renders z as a canonical decimal residue (not constant time).
func (z *Element) String() string { return z.BigInt().String() }
