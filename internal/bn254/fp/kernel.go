package fp

// Exported pass-throughs to the portable kernels. The arithmetic entry
// points (Mul, Add, ...) dispatch to platform assembly when available;
// these always run the generic code, so callers outside the package —
// the mcclsbench fp_kernel report and differential harnesses — can put
// both implementations side by side on the same machine.

// GenericMul runs the portable CIOS Montgomery multiplication
// regardless of build configuration.
func GenericMul(z, x, y *Element) { mulGeneric(z, x, y) }

// GenericSquare runs the portable squaring (CIOS with x = y).
func GenericSquare(z, x *Element) { squareGeneric(z, x) }

// GenericAdd runs the portable modular addition.
func GenericAdd(z, x, y *Element) { addGeneric(z, x, y) }
