package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

// The package's own init() already asserts the Montgomery constants; the
// tests here exercise the arithmetic against math/big on random values and
// the boundary cases that stress carry chains.

func randBig(r *rand.Rand) *big.Int { return new(big.Int).Rand(r, qBig) }

// edgeValues are the inputs most likely to expose carry/borrow bugs.
func edgeValues() []*big.Int {
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(qBig, big.NewInt(1)),
		new(big.Int).Rsh(qBig, 1),
		new(big.Int).SetUint64(^uint64(0)),
		new(big.Int).Lsh(big.NewInt(1), 64),
		new(big.Int).Lsh(big.NewInt(1), 192),
	}
}

func TestRoundTripBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := edgeValues()
	for i := 0; i < 200; i++ {
		vals = append(vals, randBig(r))
	}
	for _, v := range vals {
		var e Element
		e.SetBigInt(v)
		if got := e.BigInt(); got.Cmp(v) != 0 {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		b := e.Bytes()
		if got := new(big.Int).SetBytes(b[:]); got.Cmp(v) != 0 {
			t.Fatalf("Bytes round trip %v -> %v", v, got)
		}
	}
}

func TestArithmeticMatchesBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pairs := [][2]*big.Int{}
	edges := edgeValues()
	for _, a := range edges {
		for _, b := range edges {
			pairs = append(pairs, [2]*big.Int{a, b})
		}
	}
	for i := 0; i < 500; i++ {
		pairs = append(pairs, [2]*big.Int{randBig(r), randBig(r)})
	}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		var ea, eb, ez Element
		ea.SetBigInt(a)
		eb.SetBigInt(b)

		want := new(big.Int).Mod(new(big.Int).Add(a, b), qBig)
		if got := ez.Add(&ea, &eb).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Add(%v, %v) = %v, want %v", a, b, got, want)
		}
		want.Mod(new(big.Int).Sub(a, b), qBig)
		if got := ez.Sub(&ea, &eb).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Sub(%v, %v) = %v, want %v", a, b, got, want)
		}
		want.Mod(new(big.Int).Mul(a, b), qBig)
		if got := ez.Mul(&ea, &eb).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Mul(%v, %v) = %v, want %v", a, b, got, want)
		}
		want.Mod(new(big.Int).Neg(a), qBig)
		if got := ez.Neg(&ea).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Neg(%v) = %v, want %v", a, got, want)
		}
		want.Mod(new(big.Int).Add(a, a), qBig)
		if got := ez.Double(&ea).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Double(%v) = %v, want %v", a, got, want)
		}
		want.Mod(new(big.Int).Mul(a, a), qBig)
		if got := ez.Square(&ea).BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Square(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	var z Element
	if ok := z.Inverse(&Element{}); ok {
		t.Fatal("Inverse(0) reported ok")
	}
	if !z.IsZero() {
		t.Fatal("Inverse(0) did not set zero")
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := randBig(r)
		if a.Sign() == 0 {
			continue
		}
		var ea, inv, prod Element
		ea.SetBigInt(a)
		if ok := inv.Inverse(&ea); !ok {
			t.Fatalf("Inverse(%v) failed", a)
		}
		if !prod.Mul(&ea, &inv).IsOne() {
			t.Fatalf("a·a⁻¹ ≠ 1 for %v", a)
		}
		want := new(big.Int).ModInverse(a, qBig)
		if got := inv.BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Inverse(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestSqrt(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	residues, nonResidues := 0, 0
	for i := 0; i < 100; i++ {
		a := randBig(r)
		var ea, root, back Element
		ea.SetBigInt(a)
		ok := root.Sqrt(&ea)
		if wantOK := new(big.Int).ModSqrt(a, qBig) != nil; ok != wantOK {
			t.Fatalf("Sqrt(%v) ok=%v, big.Int says %v", a, ok, wantOK)
		}
		if ok {
			residues++
			if !back.Square(&root).Equal(&ea) {
				t.Fatalf("Sqrt(%v)² ≠ input", a)
			}
		} else {
			nonResidues++
		}
	}
	if residues == 0 || nonResidues == 0 {
		t.Fatalf("degenerate sample: %d residues, %d non-residues", residues, nonResidues)
	}
	var z Element
	if ok := z.Sqrt(&Element{}); !ok || !z.IsZero() {
		t.Fatal("Sqrt(0) should be 0")
	}
}

func TestIsNeg(t *testing.T) {
	half := new(big.Int).Rsh(qBig, 1)
	cases := []struct {
		v    *big.Int
		want bool
	}{
		{big.NewInt(0), false},
		{big.NewInt(1), false},
		{new(big.Int).Set(half), false},
		{new(big.Int).Add(half, big.NewInt(1)), true},
		{new(big.Int).Sub(qBig, big.NewInt(1)), true},
	}
	for _, c := range cases {
		var e Element
		e.SetBigInt(c.v)
		if got := e.IsNeg(); got != c.want {
			t.Fatalf("IsNeg(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	// Exactly one of a, -a is negative for nonzero a.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		var e, n Element
		e.SetBigInt(randBig(r))
		if e.IsZero() {
			continue
		}
		n.Neg(&e)
		if e.IsNeg() == n.IsNeg() {
			t.Fatalf("IsNeg symmetric for %v", e.String())
		}
	}
}

func TestExp(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		a, e := randBig(r), randBig(r)
		var ea, ez Element
		ea.SetBigInt(a)
		ez.Exp(&ea, e)
		want := new(big.Int).Exp(a, e, qBig)
		if got := ez.BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("Exp(%v, %v) = %v, want %v", a, e, got, want)
		}
	}
}

func TestSettersAndPredicates(t *testing.T) {
	o := One()
	if !o.IsOne() {
		t.Fatal("One() is not one")
	}
	e := NewElement(7)
	if got := e.BigInt().Int64(); got != 7 {
		t.Fatalf("NewElement(7) = %d", got)
	}
	var z Element
	if !z.IsZero() {
		t.Fatal("zero value is not zero")
	}
	z.SetOne()
	if !z.IsOne() || z.IsZero() {
		t.Fatal("SetOne broken")
	}
	z.SetZero()
	if !z.IsZero() {
		t.Fatal("SetZero broken")
	}
}

func BenchmarkMul(b *testing.B) {
	var x, y Element
	x.SetBigInt(mustDecimal("1234567891011121314151617181920212223242526272829303132333435363738"))
	y.SetBigInt(mustDecimal("9876543210987654321098765432109876543210987654321098765432109876543"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(&x, &y)
	}
}

func BenchmarkInverse(b *testing.B) {
	x := NewElement(12345)
	var z Element
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Inverse(&x)
	}
}
