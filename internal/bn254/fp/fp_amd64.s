//go:build amd64 && !purego

// BN254 Fp kernels for amd64. fpMul is a MULX/ADCX/ADOX interleaved
// CIOS Montgomery product (dual carry chains, one reduction step folded
// into each of the four multiply rounds; the no-carry optimisation
// applies because q's top limb is < 2^62). fpMulWide/fpReduceWide split
// the same arithmetic into its two halves for the lazy-reduction tower
// paths. fpAdd/fpSub/fpNeg/fpDouble are branch-free ADD/ADC + CMOV/mask
// sequences that run on every amd64; the MULX kernels are gated on the
// runtime ADX+BMI2 probe (cpuHasAdx) from fp_amd64.go.

#include "textflag.h"

DATA q<>+0(SB)/8, $0x3c208c16d87cfd47
DATA q<>+8(SB)/8, $0x97816a916871ca8d
DATA q<>+16(SB)/8, $0xb85045b68181585d
DATA q<>+24(SB)/8, $0x30644e72e131a029
GLOBL q<>(SB), RODATA, $32

DATA qInvNeg<>+0(SB)/8, $0x87d20782e4866389
GLOBL qInvNeg<>(SB), RODATA, $8

// func cpuHasAdx() bool
// CPUID leaf 7 sub-leaf 0, EBX bit 8 (BMI2) and bit 19 (ADX); leaf 7
// must first be reported supported by leaf 0.
TEXT ·cpuHasAdx(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  adx_no
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	MOVL BX, AX
	SHRL $8, AX
	ANDL $1, AX
	SHRL $19, BX
	ANDL $1, BX
	ANDL BX, AX
	MOVB AX, ret+0(FP)
	RET

adx_no:
	MOVB $0, ret+0(FP)
	RET

// func fpMul(z, x, y *Element)
// Register plan: x limbs DI,R8,R9,R10 (loaded once); y scanned limb by
// limb through DX (MULX's implicit operand); running window t in
// R11..R14 with top limb CX; AX/BX scratch. Each round multiplies by
// one y limb (ADOX chain carries the lows, ADCX chain the highs) and
// then folds one Montgomery step m = t0·(-1/q) mod 2^64, t = (t+m·q)/2^64.
TEXT ·fpMul(SB), NOSPLIT, $0-24
	MOVQ x+8(FP), AX
	MOVQ y+16(FP), SI
	MOVQ 0(AX), DI
	MOVQ 8(AX), R8
	MOVQ 16(AX), R9
	MOVQ 24(AX), R10

	// round 0 multiply: t = x · y[0]
	XORQ  AX, AX
	MOVQ  0(SI), DX
	MULXQ DI, R11, R12
	MULXQ R8, AX, R13
	ADOXQ AX, R12
	MULXQ R9, AX, R14
	ADOXQ AX, R13
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADOXQ AX, CX

	// round 0 reduce
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R11, DX
	XORQ  AX, AX
	MULXQ q<>+0(SB), AX, BX
	ADCXQ R11, AX
	MOVQ  BX, R11
	ADCXQ R12, R11
	MULXQ q<>+8(SB), AX, R12
	ADOXQ AX, R11
	ADCXQ R13, R12
	MULXQ q<>+16(SB), AX, R13
	ADOXQ AX, R12
	ADCXQ R14, R13
	MULXQ q<>+24(SB), AX, R14
	ADOXQ AX, R13
	MOVQ  $0, AX
	ADCXQ CX, R14
	ADOXQ AX, R14

	// round 1 multiply: t += x · y[1]
	XORQ  AX, AX
	MOVQ  8(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX

	// round 1 reduce
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R11, DX
	XORQ  AX, AX
	MULXQ q<>+0(SB), AX, BX
	ADCXQ R11, AX
	MOVQ  BX, R11
	ADCXQ R12, R11
	MULXQ q<>+8(SB), AX, R12
	ADOXQ AX, R11
	ADCXQ R13, R12
	MULXQ q<>+16(SB), AX, R13
	ADOXQ AX, R12
	ADCXQ R14, R13
	MULXQ q<>+24(SB), AX, R14
	ADOXQ AX, R13
	MOVQ  $0, AX
	ADCXQ CX, R14
	ADOXQ AX, R14

	// round 2 multiply: t += x · y[2]
	XORQ  AX, AX
	MOVQ  16(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX

	// round 2 reduce
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R11, DX
	XORQ  AX, AX
	MULXQ q<>+0(SB), AX, BX
	ADCXQ R11, AX
	MOVQ  BX, R11
	ADCXQ R12, R11
	MULXQ q<>+8(SB), AX, R12
	ADOXQ AX, R11
	ADCXQ R13, R12
	MULXQ q<>+16(SB), AX, R13
	ADOXQ AX, R12
	ADCXQ R14, R13
	MULXQ q<>+24(SB), AX, R14
	ADOXQ AX, R13
	MOVQ  $0, AX
	ADCXQ CX, R14
	ADOXQ AX, R14

	// round 3 multiply: t += x · y[3]
	XORQ  AX, AX
	MOVQ  24(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX

	// round 3 reduce
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R11, DX
	XORQ  AX, AX
	MULXQ q<>+0(SB), AX, BX
	ADCXQ R11, AX
	MOVQ  BX, R11
	ADCXQ R12, R11
	MULXQ q<>+8(SB), AX, R12
	ADOXQ AX, R11
	ADCXQ R13, R12
	MULXQ q<>+16(SB), AX, R13
	ADOXQ AX, R12
	ADCXQ R14, R13
	MULXQ q<>+24(SB), AX, R14
	ADOXQ AX, R13
	MOVQ  $0, AX
	ADCXQ CX, R14
	ADOXQ AX, R14

	// conditional subtract: z = t - q if t >= q
	MOVQ    R11, DI
	MOVQ    R12, R8
	MOVQ    R13, R9
	MOVQ    R14, R10
	SUBQ    q<>+0(SB), R11
	SBBQ    q<>+8(SB), R12
	SBBQ    q<>+16(SB), R13
	SBBQ    q<>+24(SB), R14
	CMOVQCS DI, R11
	CMOVQCS R8, R12
	CMOVQCS R9, R13
	CMOVQCS R10, R14
	MOVQ    z+0(FP), AX
	MOVQ    R11, 0(AX)
	MOVQ    R12, 8(AX)
	MOVQ    R13, 16(AX)
	MOVQ    R14, 24(AX)
	RET

// func fpMulWide(w *Wide, x, y *Element)
// The multiply half of fpMul with the reduction left out: four rounds
// build the full 512-bit product, storing the finished low limb of the
// window after each round and rotating the window down.
TEXT ·fpMulWide(SB), NOSPLIT, $0-24
	MOVQ x+8(FP), AX
	MOVQ y+16(FP), SI
	MOVQ w+0(FP), BX
	MOVQ 0(AX), DI
	MOVQ 8(AX), R8
	MOVQ 16(AX), R9
	MOVQ 24(AX), R10

	// row 0: window = x · y[0]
	XORQ  CX, CX
	MOVQ  0(SI), DX
	MULXQ DI, R11, R12
	MULXQ R8, AX, R13
	ADOXQ AX, R12
	MULXQ R9, AX, R14
	ADOXQ AX, R13
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADOXQ AX, CX
	MOVQ  R11, 0(BX)
	MOVQ  R12, R11
	MOVQ  R13, R12
	MOVQ  R14, R13
	MOVQ  CX, R14

	// row 1: window += x · y[1]
	XORQ  AX, AX
	MOVQ  8(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX
	MOVQ  R11, 8(BX)
	MOVQ  R12, R11
	MOVQ  R13, R12
	MOVQ  R14, R13
	MOVQ  CX, R14

	// row 2: window += x · y[2]
	XORQ  AX, AX
	MOVQ  16(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX
	MOVQ  R11, 16(BX)
	MOVQ  R12, R11
	MOVQ  R13, R12
	MOVQ  R14, R13
	MOVQ  CX, R14

	// row 3: window += x · y[3]
	XORQ  AX, AX
	MOVQ  24(SI), DX
	MULXQ DI, AX, CX
	ADOXQ AX, R11
	ADCXQ CX, R12
	MULXQ R8, AX, CX
	ADOXQ AX, R12
	ADCXQ CX, R13
	MULXQ R9, AX, CX
	ADOXQ AX, R13
	ADCXQ CX, R14
	MULXQ R10, AX, CX
	ADOXQ AX, R14
	MOVQ  $0, AX
	ADCXQ AX, CX
	ADOXQ AX, CX
	MOVQ  R11, 24(BX)
	MOVQ  R12, 32(BX)
	MOVQ  R13, 40(BX)
	MOVQ  R14, 48(BX)
	MOVQ  CX, 56(BX)
	RET

// func fpReduceWide(z *Element, w *Wide)
// Full-width REDC under the w < 4qR contract: each round adds m·q to
// zero the lowest live limb (the low product limb is -t0 by
// construction, so NEG recovers its carry without computing it) and
// ripples the carry to the top; the running value stays below
// 4qR + qR < 2^512. The < 5q result is canonicalised by four masked
// conditional-subtract passes.
TEXT ·fpReduceWide(SB), NOSPLIT, $0-16
	MOVQ w+8(FP), AX
	MOVQ 0(AX), DI
	MOVQ 8(AX), R8
	MOVQ 16(AX), R9
	MOVQ 24(AX), R10
	MOVQ 32(AX), R11
	MOVQ 40(AX), R12
	MOVQ 48(AX), R13
	MOVQ 56(AX), R14

	// round 0: t += m·q, m = t0·qInvNeg; kills DI
	MOVQ  qInvNeg<>(SB), DX
	IMULQ DI, DX
	MULXQ q<>+0(SB), AX, BX
	MULXQ q<>+8(SB), AX, CX
	ADDQ  AX, BX
	MULXQ q<>+16(SB), AX, SI
	ADCQ  AX, CX
	MULXQ q<>+24(SB), AX, DX
	ADCQ  AX, SI
	ADCQ  $0, DX
	NEGQ  DI
	ADCQ  BX, R8
	ADCQ  CX, R9
	ADCQ  SI, R10
	ADCQ  DX, R11
	ADCQ  $0, R12
	ADCQ  $0, R13
	ADCQ  $0, R14

	// round 1: kills R8
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R8, DX
	MULXQ q<>+0(SB), AX, BX
	MULXQ q<>+8(SB), AX, CX
	ADDQ  AX, BX
	MULXQ q<>+16(SB), AX, SI
	ADCQ  AX, CX
	MULXQ q<>+24(SB), AX, DX
	ADCQ  AX, SI
	ADCQ  $0, DX
	NEGQ  R8
	ADCQ  BX, R9
	ADCQ  CX, R10
	ADCQ  SI, R11
	ADCQ  DX, R12
	ADCQ  $0, R13
	ADCQ  $0, R14

	// round 2: kills R9
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R9, DX
	MULXQ q<>+0(SB), AX, BX
	MULXQ q<>+8(SB), AX, CX
	ADDQ  AX, BX
	MULXQ q<>+16(SB), AX, SI
	ADCQ  AX, CX
	MULXQ q<>+24(SB), AX, DX
	ADCQ  AX, SI
	ADCQ  $0, DX
	NEGQ  R9
	ADCQ  BX, R10
	ADCQ  CX, R11
	ADCQ  SI, R12
	ADCQ  DX, R13
	ADCQ  $0, R14

	// round 3: kills R10
	MOVQ  qInvNeg<>(SB), DX
	IMULQ R10, DX
	MULXQ q<>+0(SB), AX, BX
	MULXQ q<>+8(SB), AX, CX
	ADDQ  AX, BX
	MULXQ q<>+16(SB), AX, SI
	ADCQ  AX, CX
	MULXQ q<>+24(SB), AX, DX
	ADCQ  AX, SI
	ADCQ  $0, DX
	NEGQ  R10
	ADCQ  BX, R11
	ADCQ  CX, R12
	ADCQ  SI, R13
	ADCQ  DX, R14

	// four masked conditional subtracts: u < 5q -> [0, q)
	MOVQ    R11, AX
	MOVQ    R12, BX
	MOVQ    R13, CX
	MOVQ    R14, SI
	SUBQ    q<>+0(SB), R11
	SBBQ    q<>+8(SB), R12
	SBBQ    q<>+16(SB), R13
	SBBQ    q<>+24(SB), R14
	CMOVQCS AX, R11
	CMOVQCS BX, R12
	CMOVQCS CX, R13
	CMOVQCS SI, R14

	MOVQ    R11, AX
	MOVQ    R12, BX
	MOVQ    R13, CX
	MOVQ    R14, SI
	SUBQ    q<>+0(SB), R11
	SBBQ    q<>+8(SB), R12
	SBBQ    q<>+16(SB), R13
	SBBQ    q<>+24(SB), R14
	CMOVQCS AX, R11
	CMOVQCS BX, R12
	CMOVQCS CX, R13
	CMOVQCS SI, R14

	MOVQ    R11, AX
	MOVQ    R12, BX
	MOVQ    R13, CX
	MOVQ    R14, SI
	SUBQ    q<>+0(SB), R11
	SBBQ    q<>+8(SB), R12
	SBBQ    q<>+16(SB), R13
	SBBQ    q<>+24(SB), R14
	CMOVQCS AX, R11
	CMOVQCS BX, R12
	CMOVQCS CX, R13
	CMOVQCS SI, R14

	MOVQ    R11, AX
	MOVQ    R12, BX
	MOVQ    R13, CX
	MOVQ    R14, SI
	SUBQ    q<>+0(SB), R11
	SBBQ    q<>+8(SB), R12
	SBBQ    q<>+16(SB), R13
	SBBQ    q<>+24(SB), R14
	CMOVQCS AX, R11
	CMOVQCS BX, R12
	CMOVQCS CX, R13
	CMOVQCS SI, R14

	MOVQ z+0(FP), AX
	MOVQ R11, 0(AX)
	MOVQ R12, 8(AX)
	MOVQ R13, 16(AX)
	MOVQ R14, 24(AX)
	RET

// func fpAdd(z, x, y *Element)
TEXT ·fpAdd(SB), NOSPLIT, $0-24
	MOVQ    x+8(FP), AX
	MOVQ    y+16(FP), BX
	MOVQ    0(AX), CX
	MOVQ    8(AX), DI
	MOVQ    16(AX), SI
	MOVQ    24(AX), R8
	ADDQ    0(BX), CX
	ADCQ    8(BX), DI
	ADCQ    16(BX), SI
	ADCQ    24(BX), R8
	MOVQ    CX, R9
	MOVQ    DI, R10
	MOVQ    SI, R11
	MOVQ    R8, R12
	SUBQ    q<>+0(SB), R9
	SBBQ    q<>+8(SB), R10
	SBBQ    q<>+16(SB), R11
	SBBQ    q<>+24(SB), R12
	CMOVQCC R9, CX
	CMOVQCC R10, DI
	CMOVQCC R11, SI
	CMOVQCC R12, R8
	MOVQ    z+0(FP), AX
	MOVQ    CX, 0(AX)
	MOVQ    DI, 8(AX)
	MOVQ    SI, 16(AX)
	MOVQ    R8, 24(AX)
	RET

// func fpDouble(z, x *Element)
TEXT ·fpDouble(SB), NOSPLIT, $0-16
	MOVQ    x+8(FP), AX
	MOVQ    0(AX), CX
	MOVQ    8(AX), DI
	MOVQ    16(AX), SI
	MOVQ    24(AX), R8
	ADDQ    CX, CX
	ADCQ    DI, DI
	ADCQ    SI, SI
	ADCQ    R8, R8
	MOVQ    CX, R9
	MOVQ    DI, R10
	MOVQ    SI, R11
	MOVQ    R8, R12
	SUBQ    q<>+0(SB), R9
	SBBQ    q<>+8(SB), R10
	SBBQ    q<>+16(SB), R11
	SBBQ    q<>+24(SB), R12
	CMOVQCC R9, CX
	CMOVQCC R10, DI
	CMOVQCC R11, SI
	CMOVQCC R12, R8
	MOVQ    z+0(FP), AX
	MOVQ    CX, 0(AX)
	MOVQ    DI, 8(AX)
	MOVQ    SI, 16(AX)
	MOVQ    R8, 24(AX)
	RET

// func fpSub(z, x, y *Element)
TEXT ·fpSub(SB), NOSPLIT, $0-24
	MOVQ x+8(FP), AX
	MOVQ y+16(FP), BX
	MOVQ 0(AX), CX
	MOVQ 8(AX), DI
	MOVQ 16(AX), SI
	MOVQ 24(AX), R8
	SUBQ 0(BX), CX
	SBBQ 8(BX), DI
	SBBQ 16(BX), SI
	SBBQ 24(BX), R8
	SBBQ AX, AX
	MOVQ q<>+0(SB), R9
	MOVQ q<>+8(SB), R10
	MOVQ q<>+16(SB), R11
	MOVQ q<>+24(SB), R12
	ANDQ AX, R9
	ANDQ AX, R10
	ANDQ AX, R11
	ANDQ AX, R12
	ADDQ R9, CX
	ADCQ R10, DI
	ADCQ R11, SI
	ADCQ R12, R8
	MOVQ z+0(FP), AX
	MOVQ CX, 0(AX)
	MOVQ DI, 8(AX)
	MOVQ SI, 16(AX)
	MOVQ R8, 24(AX)
	RET

// func fpNeg(z, x *Element)
TEXT ·fpNeg(SB), NOSPLIT, $0-16
	MOVQ x+8(FP), AX
	MOVQ 0(AX), CX
	MOVQ 8(AX), DI
	MOVQ 16(AX), SI
	MOVQ 24(AX), R8
	MOVQ CX, R9
	ORQ  DI, R9
	ORQ  SI, R9
	ORQ  R8, R9
	NEGQ R9
	SBBQ R9, R9
	MOVQ q<>+0(SB), R10
	MOVQ q<>+8(SB), R11
	MOVQ q<>+16(SB), R12
	MOVQ q<>+24(SB), R13
	SUBQ CX, R10
	SBBQ DI, R11
	SBBQ SI, R12
	SBBQ R8, R13
	ANDQ R9, R10
	ANDQ R9, R11
	ANDQ R9, R12
	ANDQ R9, R13
	MOVQ z+0(FP), AX
	MOVQ R10, 0(AX)
	MOVQ R11, 8(AX)
	MOVQ R12, 16(AX)
	MOVQ R13, 24(AX)
	RET
