package fp

import "math/bits"

// Wide is an unreduced 512-bit accumulator for lazy-reduction tower
// arithmetic: it holds a sum of full (pre-Montgomery-reduction) limb
// products x·y plus optional q² padding terms, little-endian. Callers
// accumulate several products into one Wide and pay a single Montgomery
// reduction (Reduce) at the end instead of one per product.
//
// Contract: the accumulated value must stay below 4·q·R (≈ 15 q², with
// q ≈ 0.189·R, R = 2^256) — Reduce's REDC output is then < 5q and its
// four fixed conditional-subtract passes land in [0, q). Every lazy
// call site in internal/bn254 documents its slot budget against this
// bound; TestWideAccumulationBounds pins the worst case with all-limbs
// q−1 operands.
//
// All Wide operations are branch-free in the operand values.
type Wide [8]uint64

// qSquaredWide is q² as a Wide, the padding quantum that keeps lazy
// subtractions non-negative: a single product x·y of canonical elements
// is < q², so w + q² − x·y never underflows. Filled in by init below
// from the q limbs (a pure integer multiply, no field semantics).
var qSquaredWide Wide

func init() {
	qLimbs := Element{q0, q1, q2, q3}
	mulWideGeneric(&qSquaredWide, &qLimbs, &qLimbs)
}

// LooseAdd sets z = x + y WITHOUT modular reduction. The sum of two
// canonical elements is < 2q < 2^256, so it fits the four limbs; the
// result is NOT canonical and may only flow into Wide.Mul operands
// (Karatsuba cross terms need the exact integer sum to keep
// s·s' − ac − bd non-negative without padding).
func LooseAdd(z, x, y *Element) *Element {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c)
	return z
}

// Mul sets w to the full 512-bit product x·y (no reduction) and returns
// w. Operands may be canonical (< q, product < q²) or loose sums (< 2q,
// product < 4q²); the caller's slot budget accounts for which.
func (w *Wide) Mul(x, y *Element) *Wide {
	mulWide(w, x, y)
	return w
}

// Add sets w += v and returns w. The caller's budget guarantees the sum
// stays below 4qR, so the top limb never carries out.
func (w *Wide) Add(v *Wide) *Wide {
	var c uint64
	w[0], c = bits.Add64(w[0], v[0], 0)
	w[1], c = bits.Add64(w[1], v[1], c)
	w[2], c = bits.Add64(w[2], v[2], c)
	w[3], c = bits.Add64(w[3], v[3], c)
	w[4], c = bits.Add64(w[4], v[4], c)
	w[5], c = bits.Add64(w[5], v[5], c)
	w[6], c = bits.Add64(w[6], v[6], c)
	w[7], _ = bits.Add64(w[7], v[7], c)
	return w
}

// Sub sets w -= v and returns w. The caller must guarantee w ≥ v as
// integers — either through an exact identity (Karatsuba's
// s·s' ≥ ac + bd) or by adding an AddQSquared pad first.
func (w *Wide) Sub(v *Wide) *Wide {
	var b uint64
	w[0], b = bits.Sub64(w[0], v[0], 0)
	w[1], b = bits.Sub64(w[1], v[1], b)
	w[2], b = bits.Sub64(w[2], v[2], b)
	w[3], b = bits.Sub64(w[3], v[3], b)
	w[4], b = bits.Sub64(w[4], v[4], b)
	w[5], b = bits.Sub64(w[5], v[5], b)
	w[6], b = bits.Sub64(w[6], v[6], b)
	w[7], _ = bits.Sub64(w[7], v[7], b)
	return w
}

// AddQSquared sets w += q² and returns w: one padding quantum per
// subtracted single product. q² ≡ 0 mod q, so padding never changes the
// reduced value.
func (w *Wide) AddQSquared() *Wide { return w.Add(&qSquaredWide) }

// Reduce Montgomery-reduces the accumulator into z (z = w·R⁻¹ mod q,
// canonical) and returns z. Contract: w < 4qR. The REDC quotient adds
// at most qR, keeping the running value below 5qR < 2^512, and the
// output below 5q, which the four masked subtract passes bring into
// [0, q) without branching.
func (w *Wide) Reduce(z *Element) *Element {
	reduceWide(z, w)
	return z
}

// mulWideGeneric is the portable 4×4 schoolbook product: row i of x
// scans y, accumulating into limbs i..i+4. It doubles as the
// differential oracle for the amd64 kernel.
func mulWideGeneric(w *Wide, x, y *Element) {
	var t [8]uint64
	for i := 0; i < 4; i++ {
		v := x[i]
		var c uint64
		c, t[i+0] = madd2(v, y[0], t[i+0], c)
		c, t[i+1] = madd2(v, y[1], t[i+1], c)
		c, t[i+2] = madd2(v, y[2], t[i+2], c)
		c, t[i+3] = madd2(v, y[3], t[i+3], c)
		t[i+4] = c
	}
	*w = Wide(t)
}

// reduceWideGeneric is the portable full-width REDC: four rounds each
// zero the lowest live limb by adding m·q (m = t₀·(−q⁻¹) mod 2^64) and
// ripple the carry to the top, then four masked conditional subtracts
// canonicalise the < 5q result. Fixed flow: loop bounds and the subtract
// passes depend on nothing but the limb width.
func reduceWideGeneric(z *Element, w *Wide) {
	t := *w
	for j := 0; j < 4; j++ {
		m := t[j] * qInvNeg
		c := madd0(m, q0, t[j])
		c, t[j+1] = madd2(m, q1, t[j+1], c)
		c, t[j+2] = madd2(m, q2, t[j+2], c)
		c, t[j+3] = madd2(m, q3, t[j+3], c)
		var cr uint64
		t[j+4], cr = bits.Add64(t[j+4], c, 0)
		for k := j + 5; k < 8; k++ {
			t[k], cr = bits.Add64(t[k], 0, cr)
		}
	}
	*z = Element{t[4], t[5], t[6], t[7]}
	z.reduce()
	z.reduce()
	z.reduce()
	z.reduce()
}
