//go:build !amd64 || purego

package fp

// SupportAdx reports whether the ADX/BMI2 assembly kernels are compiled
// in and selected at runtime. In this build configuration there is no
// assembly, so it is constant false.
const SupportAdx = false

// KernelPath names the active Mul/Square implementation for benchmark
// reports.
func KernelPath() string { return "generic" }

func mul(z, x, y *Element)           { mulGeneric(z, x, y) }
func square(z, x *Element)           { squareGeneric(z, x) }
func add(z, x, y *Element)           { addGeneric(z, x, y) }
func sub(z, x, y *Element)           { subGeneric(z, x, y) }
func neg(z, x *Element)              { negGeneric(z, x) }
func double(z, x *Element)           { doubleGeneric(z, x) }
func mulWide(w *Wide, x, y *Element) { mulWideGeneric(w, x, y) }
func reduceWide(z *Element, w *Wide) { reduceWideGeneric(z, w) }
