//go:build amd64 && !purego

package fp

// SupportAdx reports whether the MULX/ADCX/ADOX kernels are selected at
// runtime. Probed once at startup via CPUID (leaf 7 EBX: BMI2 bit 8,
// ADX bit 19); the branch in mul/square below is on this input-
// independent flag, so dispatch leaks nothing about operand values.
var SupportAdx = cpuHasAdx()

// KernelPath names the active Mul/Square implementation for benchmark
// reports.
func KernelPath() string {
	if SupportAdx {
		return "adx"
	}
	return "generic"
}

// cpuHasAdx reports whether the CPU implements both ADX and BMI2.
func cpuHasAdx() bool

//go:noescape
func fpMul(z, x, y *Element)

//go:noescape
func fpAdd(z, x, y *Element)

//go:noescape
func fpSub(z, x, y *Element)

//go:noescape
func fpNeg(z, x *Element)

//go:noescape
func fpDouble(z, x *Element)

//go:noescape
func fpMulWide(w *Wide, x, y *Element)

//go:noescape
func fpReduceWide(z *Element, w *Wide)

func mul(z, x, y *Element) {
	if SupportAdx {
		fpMul(z, x, y)
		return
	}
	mulGeneric(z, x, y)
}

func square(z, x *Element) {
	// A dedicated 4-limb squaring saves too little over the CIOS
	// multiply to justify a second carry chain (gnark-crypto reached
	// the same conclusion for 4-limb fields).
	if SupportAdx {
		fpMul(z, x, x)
		return
	}
	mulGeneric(z, x, x)
}

// Add/Sub/Neg/Double use only ADD/ADC/SBB/CMOV, available on every
// amd64, so they never fall back.
func add(z, x, y *Element) { fpAdd(z, x, y) }
func sub(z, x, y *Element) { fpSub(z, x, y) }
func neg(z, x *Element)    { fpNeg(z, x) }
func double(z, x *Element) { fpDouble(z, x) }

func mulWide(w *Wide, x, y *Element) {
	if SupportAdx {
		fpMulWide(w, x, y)
		return
	}
	mulWideGeneric(w, x, y)
}

func reduceWide(z *Element, w *Wide) {
	if SupportAdx {
		fpReduceWide(z, w)
		return
	}
	reduceWideGeneric(z, w)
}
