package fp

import (
	"math/big"
	"testing"
)

// This file pins the platform kernels to the portable CIOS oracle. On
// amd64 with ADX the dispatched Mul/Add/... run assembly while the
// *Generic functions run the original Go code, so every comparison is a
// real cross-implementation check; under purego both sides are the same
// code and the tests degenerate to self-consistency (the purego CI leg
// still exercises them against the big.Int oracle in fp_test.go).

// asmEdgeElements returns Montgomery-limb patterns that stress the
// carry chains: 0, 1 (= R mod q), q−1 bits, R² limbs, single maxed
// limbs, and the largest canonical value q−1.
func asmEdgeElements() []Element {
	qm1 := Element{q0 - 1, q1, q2, q3} // q−1 as raw limbs (canonical)
	return []Element{
		{},           // 0
		one,          // Montgomery 1 = R mod q
		rSquare,      // R² mod q
		qm1,          // q−1: every limb near the modulus
		{1, 0, 0, 0}, // smallest nonzero limb pattern
		{0xffffffffffffffff, 0, 0, 0},
		{0, 0xffffffffffffffff, 0, 0},
		{0, 0, 0xffffffffffffffff, 0},
		{0, 0, 0, 0x30644e72e131a028}, // top limb just under q3
		{0xffffffffffffffff, 0xffffffffffffffff, 0xffffffffffffffff, 0x30644e72e131a028},
		{q0, q1, q2, q3 - 1}, // q minus 2^192: mid-range carries
		{0xaaaaaaaaaaaaaaaa, 0x5555555555555555, 0xaaaaaaaaaaaaaaaa, 0x0555555555555555},
	}
}

func TestFpAsmEdgeVectors(t *testing.T) {
	edges := asmEdgeElements()
	for i, x := range edges {
		for j, y := range edges {
			var fast, slow Element
			mul(&fast, &x, &y)
			mulGeneric(&slow, &x, &y)
			if fast != slow {
				t.Fatalf("mul mismatch at edge (%d,%d): asm=%v generic=%v", i, j, fast, slow)
			}
			add(&fast, &x, &y)
			addGeneric(&slow, &x, &y)
			if fast != slow {
				t.Fatalf("add mismatch at edge (%d,%d)", i, j)
			}
			sub(&fast, &x, &y)
			subGeneric(&slow, &x, &y)
			if fast != slow {
				t.Fatalf("sub mismatch at edge (%d,%d)", i, j)
			}
			var wf Wide
			mulWide(&wf, &x, &y)
			var ws Wide
			mulWideGeneric(&ws, &x, &y)
			if wf != ws {
				t.Fatalf("mulWide mismatch at edge (%d,%d): asm=%v generic=%v", i, j, wf, ws)
			}
			var rf, rs Element
			reduceWide(&rf, &wf)
			reduceWideGeneric(&rs, &ws)
			if rf != rs {
				t.Fatalf("reduceWide mismatch at edge (%d,%d)", i, j)
			}
		}
		var fast, slow Element
		square(&fast, &x)
		squareGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("square mismatch at edge %d", i)
		}
		neg(&fast, &x)
		negGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("neg mismatch at edge %d", i)
		}
		double(&fast, &x)
		doubleGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("double mismatch at edge %d", i)
		}
	}
}

// TestWideRoundTrip checks MulWide+Reduce against Mul directly:
// reducing the bare product must equal the CIOS Montgomery product.
func TestWideRoundTrip(t *testing.T) {
	edges := asmEdgeElements()
	for i, x := range edges {
		for j, y := range edges {
			var w Wide
			w.Mul(&x, &y)
			var got, want Element
			w.Reduce(&got)
			want.Mul(&x, &y)
			if got != want {
				t.Fatalf("wide round-trip mismatch at (%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

// TestWideAccumulationBounds drives the Reduce contract to its worst
// case: 12 products of loose (< 2q−ε) maximal operands... a real call
// site never exceeds 12 q²-units plus pads, so we pin 12 single-products
// of (q−1)² plus 3 q² pads ≈ 15 q² < 4qR and check against big.Int.
func TestWideAccumulationBounds(t *testing.T) {
	qm1 := Element{q0 - 1, q1, q2, q3}
	var prod Wide
	prod.Mul(&qm1, &qm1)

	var acc Wide
	accBig := new(big.Int)
	prodBig := new(big.Int).Mul(new(big.Int).Sub(qBig, big.NewInt(1)), new(big.Int).Sub(qBig, big.NewInt(1)))
	for k := 0; k < 12; k++ {
		acc.Add(&prod)
		accBig.Add(accBig, prodBig)
	}
	q2Big := new(big.Int).Mul(qBig, qBig)
	for k := 0; k < 3; k++ {
		acc.AddQSquared()
		accBig.Add(accBig, q2Big)
	}
	// Contract check: the accumulated value must be below 4qR.
	bound := new(big.Int).Mul(qBig, new(big.Int).Lsh(big.NewInt(1), 258)) // 4qR = q·2^258
	if accBig.Cmp(bound) >= 0 {
		t.Fatalf("test accumulation exceeds the 4qR contract")
	}

	var got Element
	acc.Reduce(&got)
	// Reduce performs one REDC, so the result limbs hold acc·R⁻¹ mod q
	// (still in Montgomery form relative to the original operands).
	rInv := new(big.Int).ModInverse(new(big.Int).Lsh(big.NewInt(1), 256), qBig)
	want := new(big.Int).Mul(accBig, rInv)
	want.Mod(want, qBig)
	if got != bigToLimbs(want) {
		t.Fatalf("worst-case Reduce wrong: got %x want %x", got, bigToLimbs(want))
	}

	// Same check through the generic path.
	var gotGeneric Element
	reduceWideGeneric(&gotGeneric, &acc)
	if gotGeneric != got {
		t.Fatalf("generic reduceWide disagrees with dispatched path at worst case")
	}
}

// TestLooseAddExact checks LooseAdd is the plain integer sum (< 2q
// fits four limbs).
func TestLooseAddExact(t *testing.T) {
	qm1 := Element{q0 - 1, q1, q2, q3}
	var l Element
	LooseAdd(&l, &qm1, &qm1)
	want := new(big.Int).Sub(qBig, big.NewInt(1))
	want.Lsh(want, 1)
	var buf [32]byte
	want.FillBytes(buf[:])
	got := bigToLimbs(want)
	_ = buf
	if l != got {
		t.Fatalf("LooseAdd not the integer sum: got %v want %v", l, got)
	}
}

// TestExpFixedVsBigLadder pins the fixed windowed chain against the
// big.Int square-and-multiply ladder on the two runtime exponents.
func TestExpFixedVsBigLadder(t *testing.T) {
	vals := asmEdgeElements()
	for i, x := range vals {
		var chain, ladder Element
		chain.expFixed(&x, &qMinus2Limbs)
		ladder.Exp(&x, qMinus2)
		if chain != ladder {
			t.Fatalf("expFixed(qMinus2) mismatch at %d", i)
		}
		chain.expFixed(&x, &qPlus1Over4Limbs)
		ladder.Exp(&x, qPlus1Over4)
		if chain != ladder {
			t.Fatalf("expFixed(qPlus1Over4) mismatch at %d", i)
		}
	}
}

// TestInverseSqrtAllocFree pins the satellite requirement: the runtime
// Inverse and Sqrt paths allocate nothing (no math/big).
func TestInverseSqrtAllocFree(t *testing.T) {
	x := NewElement(0xdeadbeef12345678)
	var z Element
	if n := testing.AllocsPerRun(10, func() {
		z.Inverse(&x)
	}); n != 0 {
		t.Fatalf("Inverse allocates %v times per op, want 0", n)
	}
	var sq Element
	sq.Square(&x)
	if n := testing.AllocsPerRun(10, func() {
		z.Sqrt(&sq)
	}); n != 0 {
		t.Fatalf("Sqrt allocates %v times per op, want 0", n)
	}
	var y Element
	y.SetUint64(3)
	if n := testing.AllocsPerRun(10, func() {
		z.Mul(&x, &y)
		z.Add(&z, &y)
		z.Sub(&z, &x)
	}); n != 0 {
		t.Fatalf("Mul/Add/Sub allocate %v times per op, want 0", n)
	}
}

// FuzzFpMulAsmVsGeneric differentially fuzzes the dispatched kernels
// (assembly when available) against the portable CIOS oracle over raw
// limb inputs reduced into range.
func FuzzFpMulAsmVsGeneric(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(q0-1), uint64(q1), uint64(q2), uint64(q3), uint64(q0-1), uint64(q1), uint64(q2), uint64(q3))
	f.Add(one[0], one[1], one[2], one[3], rSquare[0], rSquare[1], rSquare[2], rSquare[3])
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(0), uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, x0, x1, x2, x3, y0, y1, y2, y3 uint64) {
		x := Element{x0, x1, x2, x3}
		y := Element{y0, y1, y2, y3}
		// Clamp into canonical range the same way for both paths.
		x.reduce()
		y.reduce()
		var fast, slow Element
		mul(&fast, &x, &y)
		mulGeneric(&slow, &x, &y)
		if fast != slow {
			t.Fatalf("mul mismatch: x=%v y=%v asm=%v generic=%v", x, y, fast, slow)
		}
		square(&fast, &x)
		squareGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("square mismatch: x=%v", x)
		}
		add(&fast, &x, &y)
		addGeneric(&slow, &x, &y)
		if fast != slow {
			t.Fatalf("add mismatch: x=%v y=%v", x, y)
		}
		sub(&fast, &x, &y)
		subGeneric(&slow, &x, &y)
		if fast != slow {
			t.Fatalf("sub mismatch: x=%v y=%v", x, y)
		}
		neg(&fast, &x)
		negGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("neg mismatch: x=%v", x)
		}
		double(&fast, &x)
		doubleGeneric(&slow, &x)
		if fast != slow {
			t.Fatalf("double mismatch: x=%v", x)
		}
	})
}

// FuzzFpWideAsmVsGeneric differentially fuzzes the lazy-reduction
// primitives: the wide product over loose (unreduced 4-limb) operands
// and full-width REDC over arbitrary in-contract accumulators.
func FuzzFpWideAsmVsGeneric(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, x0, x1, x2, x3, y0, y1, y2, y3 uint64) {
		// MulWide is a raw integer product: exercise it on the full
		// 4-limb domain, not just canonical elements.
		x := Element{x0, x1, x2, x3}
		y := Element{y0, y1, y2, y3}
		var wf, ws Wide
		mulWide(&wf, &x, &y)
		mulWideGeneric(&ws, &x, &y)
		if wf != ws {
			t.Fatalf("mulWide mismatch: x=%v y=%v asm=%v generic=%v", x, y, wf, ws)
		}
		// Build an in-contract accumulator (< 4qR) from canonical
		// products and compare REDC paths.
		x.reduce()
		y.reduce()
		var acc Wide
		acc.Mul(&x, &y)
		var p Wide
		p.Mul(&y, &y)
		for k := 0; k < 11; k++ {
			acc.Add(&p)
		}
		acc.AddQSquared()
		var rf, rs Element
		reduceWide(&rf, &acc)
		reduceWideGeneric(&rs, &acc)
		if rf != rs {
			t.Fatalf("reduceWide mismatch on acc=%v", acc)
		}
	})
}
