package fp

import (
	"math/rand"
	"testing"

	"mccls/internal/cttest"
)

// ctThreshold is the deliberately generous |t| ceiling for the timing
// smokes: dudect flags |t| > 10 as a leak under lab conditions, but CI
// runners share cores and the measured kernels sit near the timer's
// resolution, so we only fail on leaks an order of magnitude above the
// noise floor. Reintroducing a data-dependent branch (e.g. an early
// exit in the conditional subtraction) pushes |t| into the hundreds.
const ctThreshold = 25

// ctRandElement returns a uniformly random canonical element.
func ctRandElement(rng *rand.Rand) Element {
	var z Element
	for i := range z {
		z[i] = rng.Uint64()
	}
	z[3] &= (1 << 62) - 1 // below 2^254 > q, then reduce to canonical
	z.reduce()
	z.reduce()
	return z
}

// ctPools builds per-class input pools: pool[0] repeats the fixed
// element, pool[1] holds fresh random elements. Both classes touch the
// same amount of memory in the same pattern; only the values differ.
func ctPools(rng *rand.Rand, batch, rounds int, fixed Element) [2][][]Element {
	var pools [2][][]Element
	for class := 0; class < 2; class++ {
		pools[class] = make([][]Element, rounds)
		for r := 0; r < rounds; r++ {
			xs := make([]Element, batch)
			for i := range xs {
				if class == 0 {
					xs[i] = fixed
				} else {
					xs[i] = ctRandElement(rng)
				}
			}
			pools[class][r] = xs
		}
	}
	return pools
}

// TestConstantTimeMul interleaves fixed-input and random-input batches
// of the dispatched Mul and applies Welch's t-test to the two timing
// populations.
func TestConstantTimeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const batch, rounds = 512, 16
	fixed := ctRandElement(rng)
	xs := ctPools(rng, batch, rounds, fixed)
	ys := ctPools(rng, batch, rounds, fixed)
	var sink Element
	round := 0
	s := cttest.Collect(1500, 1, func(class int) {
		x, y := xs[class][round%rounds], ys[class][round%rounds]
		round++
		for i := 0; i < batch; i++ {
			sink.Mul(&x[i], &y[i])
		}
	})
	if tstat := cttest.MaxT(s); tstat > ctThreshold {
		t.Errorf("Mul timing leak: |t| = %.2f > %d (kernel %s)", tstat, ctThreshold, KernelPath())
	}
	_ = sink
}

// TestConstantTimeInverse does the same for the addition-chain Inverse,
// whose schedule must depend only on the public modulus.
func TestConstantTimeInverse(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Inverse timing smoke in -short mode")
	}
	rng := rand.New(rand.NewSource(43))
	const batch, rounds = 4, 16
	fixed := ctRandElement(rng)
	xs := ctPools(rng, batch, rounds, fixed)
	var sink Element
	round := 0
	s := cttest.Collect(400, 2, func(class int) {
		x := xs[class][round%rounds]
		round++
		for i := 0; i < batch; i++ {
			sink.Inverse(&x[i])
		}
	})
	if tstat := cttest.MaxT(s); tstat > ctThreshold {
		t.Errorf("Inverse timing leak: |t| = %.2f > %d", tstat, ctThreshold)
	}
	_ = sink
}

// TestConstantTimeSign lives in internal/core; the base-field smokes
// here cover the kernels it bottoms out in.
