package bn254

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mccls/internal/bn254/fp"
)

// benchBaselines is the slice of BENCH_bn254.json this test consumes.
type benchBaselines struct {
	FpKernel struct {
		Path string `json:"path"`
		Ops  []struct {
			Op     string  `json:"op"`
			FastNs float64 `json:"fast_ns_per_op"`
		} `json:"ops"`
	} `json:"fp_kernel"`
	Results []struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	} `json:"results"`
}

// TestPerfRegressionVsCheckedInBench is the benchstat-style CI smoke:
// it re-measures BenchmarkFpMul and BenchmarkPairing (best of three,
// which is what benchstat's min-selection approximates) and fails if
// either regressed more than 10% against the checked-in
// BENCH_bn254.json. Wall-clock comparisons across machines are
// meaningless, so the test only arms itself when MCCLS_PERF_REGRESSION=1
// — CI sets it on the leg whose runner class matches the baselines —
// and skips when the build's kernel path differs from the one the
// baselines were recorded with (a purego run against adx numbers would
// always "regress").
func TestPerfRegressionVsCheckedInBench(t *testing.T) {
	if os.Getenv("MCCLS_PERF_REGRESSION") != "1" {
		t.Skip("set MCCLS_PERF_REGRESSION=1 to arm the perf regression smoke")
	}
	blob, err := os.ReadFile("../../BENCH_bn254.json")
	if err != nil {
		t.Fatalf("reading checked-in baselines: %v", err)
	}
	var base benchBaselines
	if err := json.Unmarshal(blob, &base); err != nil {
		t.Fatalf("parsing BENCH_bn254.json: %v", err)
	}
	if base.FpKernel.Path != "" && base.FpKernel.Path != fp.KernelPath() {
		t.Skipf("baselines recorded on kernel path %q, this build runs %q", base.FpKernel.Path, fp.KernelPath())
	}

	var fpMulBase float64
	for _, op := range base.FpKernel.Ops {
		if op.Op == "mul" {
			fpMulBase = op.FastNs
		}
	}
	var pairingBase float64
	for _, r := range base.Results {
		if r.Name == "pairing" {
			pairingBase = float64(r.NsPerOp)
		}
	}
	if fpMulBase == 0 || pairingBase == 0 {
		t.Fatal("BENCH_bn254.json lacks fp_kernel mul or pairing baselines")
	}

	const slack = 1.10
	check := func(name string, baseNs, graceNs float64, bench func(b *testing.B)) {
		best := 1e18
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(bench)
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < best {
				best = ns
			}
		}
		limit := baseNs*slack + graceNs
		status := "ok"
		if best > limit {
			status = "REGRESSION"
			t.Errorf("%s: %.1f ns/op vs baseline %.1f ns/op (limit %.1f, >10%% regression)", name, best, baseNs, limit)
		}
		fmt.Printf("perf-smoke %-10s %10.1f ns/op  baseline %10.1f  limit %10.1f  %s\n", name, best, baseNs, limit, status)
	}
	// BenchmarkFpMul's loop body is a Mul plus a feeding Add; compare it
	// against the sum of the baselines' mul+add fast-path costs is
	// over-precise — the 10% slack dwarfs the Add term, so the mul
	// baseline alone with the Add folded into slack would flap. Instead
	// rebuild the baseline from the same composite the benchmark times.
	var addBase float64
	for _, op := range base.FpKernel.Ops {
		if op.Op == "add" {
			addBase = op.FastNs
		}
	}
	// The fp baseline is mul+add from the fp_kernel report, which times
	// bare calls; BenchmarkFpMul adds a b.N loop and counter on top.
	// Grant a flat 4ns for that harness overhead — a real kernel
	// regression is tens of ns, so the grace cannot mask one.
	check("fp_mul", fpMulBase+addBase, 4, BenchmarkFpMul)
	check("pairing", pairingBase, 0, BenchmarkPairing)
}
