package bn254

import (
	"fmt"
	"math/big"
)

// G2 is a point of the order-r subgroup of the sextic twist
// E'(Fp2): y² = x³ + 3/xi, in affine coordinates with value-type Fp2
// coordinates. Unlike G1, the twist has a large cofactor (2p - r), so
// points from hashing are cofactor-cleared and points from untrusted
// encodings are subgroup-checked.
type G2 struct {
	X, Y Fp2
	// Inf marks the point at infinity; X and Y are ignored when set.
	Inf bool
}

// G2Infinity returns the identity element.
func G2Infinity() *G2 { return &G2{Inf: true} }

// g2Gen holds the canonical generator (the alt_bn128 generator used by
// go-ethereum and gnark); validated by tests against curve and subgroup
// membership.
var g2Gen = &G2{
	X: *fp2FromBig(
		mustBig("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
		mustBig("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
	),
	Y: *fp2FromBig(
		mustBig("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
		mustBig("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
	),
}

// G2Generator returns the canonical generator.
func G2Generator() *G2 { return new(G2).Set(g2Gen) }

// Set copies x into z and returns z.
func (z *G2) Set(x *G2) *G2 {
	*z = *x
	return z
}

// IsInfinity reports whether z is the identity.
func (z *G2) IsInfinity() bool { return z.Inf }

// Equal reports whether z and x are the same point.
func (z *G2) Equal(x *G2) bool {
	if z.Inf || x.Inf {
		return z.Inf == x.Inf
	}
	return z.X.Equal(&x.X) && z.Y.Equal(&x.Y)
}

// IsOnCurve reports whether z satisfies the twist equation y² = x³ + 3/xi
// (the identity counts as on-curve). It does not check subgroup membership;
// see IsInSubgroup.
func (z *G2) IsOnCurve() bool {
	if z.Inf {
		return true
	}
	var lhs, rhs Fp2
	lhs.Square(&z.Y)
	rhs.Square(&z.X)
	rhs.Mul(&rhs, &z.X)
	rhs.Add(&rhs, twistB)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether z lies in the order-r subgroup.
func (z *G2) IsInSubgroup() bool {
	return z.IsOnCurve() && new(G2).scalarMultFull(z, Order).IsInfinity()
}

// Neg sets z = -x.
func (z *G2) Neg(x *G2) *G2 {
	z.X.Set(&x.X)
	z.Y.Neg(&x.Y)
	z.Inf = x.Inf
	return z
}

// Add sets z = a + b by the affine chord-and-tangent rule.
func (z *G2) Add(a, b *G2) *G2 {
	if a.Inf {
		return z.Set(b)
	}
	if b.Inf {
		return z.Set(a)
	}
	if a.X.Equal(&b.X) {
		if !a.Y.Equal(&b.Y) {
			return z.Set(G2Infinity())
		}
		return z.Double(a)
	}
	var lambda, den, x3, y3 Fp2
	lambda.Sub(&b.Y, &a.Y)
	den.Sub(&b.X, &a.X)
	lambda.Mul(&lambda, den.Inverse(&den))
	x3.Square(&lambda)
	x3.Sub(&x3, &a.X)
	x3.Sub(&x3, &b.X)
	y3.Sub(&a.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// Double sets z = 2a.
func (z *G2) Double(a *G2) *G2 {
	if a.Inf || a.Y.IsZero() {
		return z.Set(G2Infinity())
	}
	var lambda, t, den, x3, y3 Fp2
	t.Square(&a.X)
	lambda.Add(&t, &t)
	lambda.Add(&lambda, &t) // 3x²
	den.Add(&a.Y, &a.Y)
	lambda.Mul(&lambda, den.Inverse(&den))
	x3.Square(&lambda)
	x3.Sub(&x3, &a.X)
	x3.Sub(&x3, &a.X)
	y3.Sub(&a.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.Y)
	z.X, z.Y, z.Inf = x3, y3, false
	return z
}

// scalarMultFull computes k·a for an arbitrary-width non-negative k, without
// reducing modulo the group order. It is used for cofactor clearing and
// subgroup checks, where k may legitimately exceed r. The heavy lifting is
// a width-5 wNAF ladder (glv.go); the plain Jacobian ladder
// (g2ScalarMultJac) and the affine ladder g2ScalarMultAffine remain as the
// cross-checked references.
func (z *G2) scalarMultFull(a *G2, k *big.Int) *G2 {
	opCounters.g2Mults.Add(1)
	return z.Set(g2ScalarMultWNAF(a, k))
}

// g2ScalarMultAffine is the affine double-and-add reference ladder,
// retained for differential tests against the Jacobian fast path.
func g2ScalarMultAffine(a *G2, k *big.Int) *G2 {
	acc := G2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Double(acc)
		if k.Bit(i) == 1 {
			acc.Add(acc, a)
		}
	}
	return acc
}

// ScalarMult sets z = k·a for points already in the order-r subgroup.
// Negative k multiplies by -a.
func (z *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	return z.scalarMultFull(a, new(big.Int).Mod(k, Order))
}

// ScalarBaseMult sets z = k·G where G is the canonical generator.
func (z *G2) ScalarBaseMult(k *big.Int) *G2 { return z.ScalarMult(G2Generator(), k) }

// g2MarshalledSize is the byte length of a marshalled G2 point.
const g2MarshalledSize = 128

// Marshal encodes z as X.C0‖X.C1‖Y.C0‖Y.C1, 32 big-endian bytes each. The
// identity encodes as all zeroes.
func (z *G2) Marshal() []byte {
	out := make([]byte, g2MarshalledSize)
	if z.Inf {
		return out
	}
	for i, e := range [...][32]byte{z.X.C0.Bytes(), z.X.C1.Bytes(), z.Y.C0.Bytes(), z.Y.C1.Bytes()} {
		copy(out[32*i:32*(i+1)], e[:])
	}
	return out
}

// Unmarshal decodes a point produced by Marshal, validating both curve and
// subgroup membership (the twist has a large cofactor, so the subgroup check
// is mandatory for untrusted inputs).
func (z *G2) Unmarshal(data []byte) error {
	if len(data) != g2MarshalledSize {
		return fmt.Errorf("%w: G2 wants %d bytes, got %d", ErrInvalidPoint, g2MarshalledSize, len(data))
	}
	coords := make([]*big.Int, 4)
	allZero := true
	for k := 0; k < 4; k++ {
		coords[k] = new(big.Int).SetBytes(data[32*k : 32*(k+1)])
		if coords[k].Sign() != 0 {
			allZero = false
		}
		if coords[k].Cmp(P) >= 0 {
			return fmt.Errorf("%w: G2 coordinate out of range", ErrInvalidPoint)
		}
	}
	if allZero {
		z.Set(G2Infinity())
		return nil
	}
	cand := &G2{X: *fp2FromBig(coords[0], coords[1]), Y: *fp2FromBig(coords[2], coords[3])}
	if !cand.IsInSubgroup() {
		return fmt.Errorf("%w: G2 point not in subgroup", ErrInvalidPoint)
	}
	z.Set(cand)
	return nil
}

// HashToG2 maps an arbitrary message into the order-r subgroup of the twist
// by try-and-increment on the x-coordinate followed by cofactor clearing
// (multiplication by 2p - r).
func HashToG2(domain string, msg []byte) *G2 {
	for counter := uint32(0); ; counter++ {
		b0 := hashBlock(domain+"/x0", msg, counter)
		b1 := hashBlock(domain+"/x1", msg, counter)
		x := fp2FromBig(new(big.Int).SetBytes(b0), new(big.Int).SetBytes(b1))
		var rhs, y Fp2
		rhs.Square(x)
		rhs.Mul(&rhs, x)
		rhs.Add(&rhs, twistB)
		if y.Sqrt(&rhs) == nil {
			continue
		}
		if b0[len(b0)-1]&1 == 1 {
			y.Neg(&y)
		}
		pt := new(G2).scalarMultFull(&G2{X: *x, Y: y}, g2Cofactor)
		if pt.IsInfinity() {
			continue
		}
		return pt
	}
}

// frobeniusTwist applies the untwist-Frobenius-twist endomorphism
// π(x, y) = (x̄·xi^((p-1)/3), ȳ·xi^((p-1)/2)) used by the optimal-ate
// pairing.
func (z *G2) frobeniusTwist(a *G2) *G2 {
	if a.Inf {
		return z.Set(a)
	}
	var x, y Fp2
	x.Conjugate(&a.X)
	x.Mul(&x, xiToPMinus1Over3)
	y.Conjugate(&a.Y)
	y.Mul(&y, xiToPMinus1Over2)
	z.X, z.Y, z.Inf = x, y, false
	return z
}

// String renders the point for debugging.
func (z *G2) String() string {
	if z.Inf {
		return "G2(inf)"
	}
	return fmt.Sprintf("G2(%v, %v)", z.X.String(), z.Y.String())
}
