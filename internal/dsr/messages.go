// Package dsr implements Dynamic Source Routing (Johnson & Maltz), the
// other reactive MANET protocol the paper's cited security work targets
// (Xu, Mu & Susilo [12] secure both AODV and DSR). It exists to show the
// McCLS routing-authentication layer generalizes beyond AODV: the same
// hop-by-hop Authenticator neutralizes the same black hole and rushing
// attacks here.
//
// The implementation covers the DSR core: route discovery with accumulated
// source routes, route caching (including caching of overheard reverse
// paths), route replies traversing the discovered path, source-routed data
// forwarding, and route-error maintenance with cache purging. Promiscuous
// overhearing and packet salvaging are omitted; neither affects the attack
// experiments.
package dsr

import (
	"time"
)

// Message kinds, used in canonical encodings.
const (
	kindRequest = 11
	kindReply   = 12
	kindError   = 13
)

// Wire sizes (protocol header plus IP/MAC framing); the accumulated route
// adds 4 bytes per hop. Authenticated variants add Authenticator.Overhead().
const (
	requestWireSize  = 44
	replyWireSize    = 40
	errorWireSize    = 40
	dataWireOverhead = 52
	perHopWireSize   = 4
)

// RouteRequest floods toward the target, accumulating the traversed path.
type RouteRequest struct {
	ID     uint32
	Origin int
	Target int
	// Route is the path walked so far, Origin first; the transmitting
	// node has already appended itself.
	Route []int
	TTL   int

	Sender int
	Auth   []byte
}

// RouteReply carries the complete discovered route back to the originator.
type RouteReply struct {
	// Route is the full path Origin … Target.
	Route []int

	Sender int
	Auth   []byte
}

// RouteError reports a broken link (From → To) back toward the originator
// of the affected packet.
type RouteError struct {
	From, To int

	Sender int
	Auth   []byte
}

// DataPacket is a source-routed application payload.
type DataPacket struct {
	ID     uint64
	Route  []int // full path, source first
	Idx    int   // index of the current holder within Route
	Bytes  int
	SentAt time.Duration
}

func appendRoute(dst []byte, route []int) []byte {
	dst = appendInt(dst, len(route))
	for _, hop := range route {
		dst = appendInt(dst, hop)
	}
	return dst
}

func appendInt(dst []byte, v int) []byte {
	u := uint32(int32(v))
	return append(dst, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Encode returns the canonical byte encoding of the request (everything
// except Auth); the accumulated route is covered, so an attacker cannot
// splice itself in or out of a path it relays.
func (r *RouteRequest) Encode() []byte {
	out := []byte{kindRequest}
	out = appendInt(out, int(r.ID))
	out = appendInt(out, r.Origin)
	out = appendInt(out, r.Target)
	out = appendRoute(out, r.Route)
	out = appendInt(out, r.TTL)
	out = appendInt(out, r.Sender)
	return out
}

// Encode returns the canonical byte encoding of the reply.
func (r *RouteReply) Encode() []byte {
	out := []byte{kindReply}
	out = appendRoute(out, r.Route)
	out = appendInt(out, r.Sender)
	return out
}

// Encode returns the canonical byte encoding of the error report.
func (r *RouteError) Encode() []byte {
	out := []byte{kindError}
	out = appendInt(out, r.From)
	out = appendInt(out, r.To)
	out = appendInt(out, r.Sender)
	return out
}

// wireSize helpers account for the variable-length route.
func (r *RouteRequest) wireSize(overhead int) int {
	return requestWireSize + perHopWireSize*len(r.Route) + overhead
}

func (r *RouteReply) wireSize(overhead int) int {
	return replyWireSize + perHopWireSize*len(r.Route) + overhead
}
