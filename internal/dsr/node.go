package dsr

import (
	"slices"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// Config holds the DSR protocol parameters. Zero values select defaults.
type Config struct {
	// RequestTTL bounds discovery floods in hops (default 12).
	RequestTTL int
	// Retries is how many times a failed discovery repeats (default 2).
	Retries int
	// DiscoveryTimeout is the wait per attempt (default 1s).
	DiscoveryTimeout time.Duration
	// ForwardJitterMax is the uniform delay before re-flooding a request
	// (default 25ms) — the window the rushing attack exploits, as in AODV.
	ForwardJitterMax time.Duration
	// DataTTL bounds source routes (default 32 hops).
	DataTTL int
	// SendBufferCap bounds buffered packets per destination (default 64).
	SendBufferCap int
}

func (c Config) withDefaults() Config {
	if c.RequestTTL == 0 {
		c.RequestTTL = 12
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = time.Second
	}
	if c.ForwardJitterMax == 0 {
		c.ForwardJitterMax = 25 * time.Millisecond
	}
	if c.DataTTL == 0 {
		c.DataTTL = 32
	}
	if c.SendBufferCap == 0 {
		c.SendBufferCap = 64
	}
	return c
}

// Stats counts per-node protocol events, mirroring the AODV counters so
// the same metrics apply.
type Stats struct {
	DataSent      uint64
	DataDelivered uint64
	DataForwarded uint64

	RequestInitiated uint64
	RequestRetried   uint64
	RequestForwarded uint64
	ReplyOriginated  uint64
	ReplyForwarded   uint64
	ErrorSent        uint64

	AuthRejected uint64
	SignFailures uint64

	DropNoRoute        uint64
	DropBufferOverflow uint64
	DropLinkBreak      uint64
	DropByAttacker     uint64

	DelaySum   time.Duration
	DelayCount uint64
}

// Hooks customize behaviour for attacks and fault injection.
type Hooks struct {
	// OnRequest runs after duplicate suppression and authentication;
	// return false to suppress default processing.
	OnRequest func(n *Node, from int, req *RouteRequest) bool
	// FilterData is consulted before forwarding; return false to absorb.
	FilterData func(n *Node, pkt *DataPacket) bool
	// ForwardJitter overrides the re-flood jitter draw.
	ForwardJitter func(n *Node) time.Duration
	// SkipVerify disables authentication of received control packets.
	SkipVerify bool
}

type seenKey struct {
	origin int
	id     uint32
}

type discovery struct {
	attempts int
	gen      int
}

// Node is one DSR router plus its application endpoint.
type Node struct {
	ID int

	sim    *sim.Simulator
	medium *radio.Medium
	cfg    Config
	auth   aodv.Authenticator

	reqID   uint32
	nextPkt uint64
	cache   map[int][]int // best known source route per destination
	seen    map[seenKey]bool
	pending map[int]*discovery
	buffer  map[int][]*DataPacket

	Hooks     Hooks
	OnDeliver func(*DataPacket)
	Stats     Stats
}

// NewNode creates a DSR agent and registers it with the medium. The
// Authenticator interface is shared with AODV: the same McCLS
// authenticators plug in unchanged.
func NewNode(id int, s *sim.Simulator, medium *radio.Medium, cfg Config, auth aodv.Authenticator) *Node {
	n := &Node{
		ID:      id,
		sim:     s,
		medium:  medium,
		cfg:     cfg.withDefaults(),
		auth:    auth,
		cache:   make(map[int][]int),
		seen:    make(map[seenKey]bool),
		pending: make(map[int]*discovery),
		buffer:  make(map[int][]*DataPacket),
	}
	medium.SetHandler(id, n.handleFrame)
	return n
}

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// CachedRoute returns a copy of the cached route to dest, if any.
func (n *Node) CachedRoute(dest int) ([]int, bool) {
	r, ok := n.cache[dest]
	return slices.Clone(r), ok
}

// cacheRoute keeps the shortest known route per destination. Routes start
// at n.ID.
func (n *Node) cacheRoute(route []int) {
	if len(route) < 2 || route[0] != n.ID {
		return
	}
	dest := route[len(route)-1]
	if cur, ok := n.cache[dest]; ok && len(cur) <= len(route) {
		return
	}
	n.cache[dest] = slices.Clone(route)
}

// purgeLink removes every cached route using the broken link a→b.
func (n *Node) purgeLink(a, b int) {
	for dest, route := range n.cache {
		for i := 0; i+1 < len(route); i++ {
			if route[i] == a && route[i+1] == b {
				delete(n.cache, dest)
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Application interface

// Send originates a data packet toward dst, discovering a route first if
// none is cached.
func (n *Node) Send(dst, bytes int) {
	n.Stats.DataSent++
	pkt := &DataPacket{
		ID:     uint64(n.ID)<<40 | n.nextPkt,
		Bytes:  bytes,
		SentAt: n.sim.Now(),
	}
	n.nextPkt++
	if dst == n.ID {
		n.deliver(pkt)
		return
	}
	if route, ok := n.cache[dst]; ok {
		pkt.Route, pkt.Idx = slices.Clone(route), 0
		n.transmitData(pkt)
		return
	}
	q := n.buffer[dst]
	if len(q) >= n.cfg.SendBufferCap {
		n.Stats.DropBufferOverflow++
		return
	}
	n.buffer[dst] = append(q, pkt)
	n.startDiscovery(dst)
}

func (n *Node) deliver(pkt *DataPacket) {
	n.Stats.DataDelivered++
	n.Stats.DelaySum += n.sim.Now() - pkt.SentAt
	n.Stats.DelayCount++
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
}

// transmitData unicasts the packet to the next hop of its source route. A
// send failure at the originator re-buffers the packet and rediscovers (the
// RFC's send-buffer retransmission); mid-path failures drop the packet and
// report the broken link back toward the source.
func (n *Node) transmitData(pkt *DataPacket) {
	next := pkt.Route[pkt.Idx+1]
	if !n.medium.Unicast(n.ID, next, pkt.Bytes+dataWireOverhead+perHopWireSize*len(pkt.Route), pkt) {
		n.purgeLink(n.ID, next)
		if pkt.Idx == 0 {
			dst := pkt.Route[len(pkt.Route)-1]
			pkt.Route, pkt.Idx = nil, 0
			if len(n.buffer[dst]) >= n.cfg.SendBufferCap {
				n.Stats.DropBufferOverflow++
				return
			}
			n.buffer[dst] = append(n.buffer[dst], pkt)
			n.startDiscovery(dst)
			return
		}
		n.Stats.DropLinkBreak++
		n.reportBrokenLink(pkt, next)
	}
}

// reportBrokenLink sends a RouteError back toward the packet source.
func (n *Node) reportBrokenLink(pkt *DataPacket, next int) {
	if pkt.Idx == 0 {
		return // we are the source; cache already purged
	}
	rerr := &RouteError{From: n.ID, To: next, Sender: n.ID}
	auth, delay, err := n.auth.Sign(n.ID, rerr.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	rerr.Auth = auth
	n.Stats.ErrorSent++
	prev := pkt.Route[pkt.Idx-1]
	n.sim.Schedule(delay, func() {
		n.medium.Unicast(n.ID, prev, errorWireSize+n.auth.Overhead(), rerr)
	})
}

// ---------------------------------------------------------------------------
// Discovery

func (n *Node) startDiscovery(dst int) {
	if _, busy := n.pending[dst]; busy {
		return
	}
	d := &discovery{attempts: 1}
	n.pending[dst] = d
	n.Stats.RequestInitiated++
	n.issueRequest(dst, d)
}

func (n *Node) issueRequest(dst int, d *discovery) {
	n.reqID++
	req := &RouteRequest{
		ID:     n.reqID,
		Origin: n.ID,
		Target: dst,
		Route:  []int{n.ID},
		TTL:    n.cfg.RequestTTL,
	}
	n.seen[seenKey{origin: n.ID, id: req.ID}] = true
	n.broadcastRequest(req)

	gen := d.gen
	n.sim.Schedule(n.cfg.DiscoveryTimeout, func() {
		cur, ok := n.pending[dst]
		if !ok || cur.gen != gen {
			return
		}
		if cur.attempts > n.cfg.Retries {
			n.Stats.DropNoRoute += uint64(len(n.buffer[dst]))
			delete(n.buffer, dst)
			delete(n.pending, dst)
			return
		}
		cur.attempts++
		cur.gen++
		n.Stats.RequestRetried++
		n.issueRequest(dst, cur)
	})
}

func (n *Node) broadcastRequest(req *RouteRequest) {
	req.Sender = n.ID
	auth, delay, err := n.auth.Sign(n.ID, req.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	req.Auth = auth
	n.sim.Schedule(delay, func() {
		n.medium.Broadcast(n.ID, req.wireSize(n.auth.Overhead()), req)
	})
}

// SendReply signs a route reply as this node and unicasts it to the given
// next hop. Exported for attack behaviours.
func (n *Node) SendReply(to int, rep *RouteReply) {
	rep.Sender = n.ID
	auth, delay, err := n.auth.Sign(n.ID, rep.Encode())
	if err != nil {
		n.Stats.SignFailures++
		return
	}
	rep.Auth = auth
	n.sim.Schedule(delay, func() {
		n.medium.Unicast(n.ID, to, rep.wireSize(n.auth.Overhead()), rep)
	})
}

// ---------------------------------------------------------------------------
// Receive path

func (n *Node) handleFrame(from int, payload any) {
	switch msg := payload.(type) {
	case *RouteRequest:
		cp := *msg
		cp.Route = slices.Clone(msg.Route)
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processRequest(from, cp) })
	case *RouteReply:
		cp := *msg
		cp.Route = slices.Clone(msg.Route)
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processReply(from, cp) })
	case *RouteError:
		cp := *msg
		n.receiveControl(from, cp.Encode(), cp.Auth, cp.Sender, func() { n.processError(from, cp) })
	case *DataPacket:
		cp := *msg
		cp.Route = slices.Clone(msg.Route)
		n.processData(&cp)
	}
}

func (n *Node) receiveControl(from int, payload, auth []byte, sender int, process func()) {
	if n.Hooks.SkipVerify {
		process()
		return
	}
	if sender != from {
		n.Stats.AuthRejected++
		return
	}
	ok, delay := n.auth.Verify(sender, payload, auth)
	n.sim.Schedule(delay, func() {
		if !ok {
			n.Stats.AuthRejected++
			return
		}
		process()
	})
}

func (n *Node) processRequest(from int, req RouteRequest) {
	if slices.Contains(req.Route, n.ID) {
		return // loop (or our own flood echoed)
	}
	key := seenKey{origin: req.Origin, id: req.ID}
	if n.seen[key] {
		return
	}
	n.seen[key] = true
	if len(n.seen) > 8192 {
		n.seen = make(map[seenKey]bool) // coarse reset; ids keep growing
	}

	if n.Hooks.OnRequest != nil && !n.Hooks.OnRequest(n, from, &req) {
		return
	}

	walked := append(slices.Clone(req.Route), n.ID)
	// Cache the reverse path this request just demonstrated (self → origin).
	rev := slices.Clone(walked)
	slices.Reverse(rev)
	n.cacheRoute(rev)

	if req.Target == n.ID {
		n.Stats.ReplyOriginated++
		n.SendReply(from, &RouteReply{Route: walked})
		return
	}
	if req.TTL <= 1 {
		return
	}
	fwd := req
	fwd.Route = walked
	fwd.TTL--
	n.Stats.RequestForwarded++
	n.sim.Schedule(n.drawJitter(), func() { n.broadcastRequest(&fwd) })
}

func (n *Node) drawJitter() time.Duration {
	if n.Hooks.ForwardJitter != nil {
		return n.Hooks.ForwardJitter(n)
	}
	if n.cfg.ForwardJitterMax <= 0 {
		return 0
	}
	return time.Duration(n.sim.Rand().Int63n(int64(n.cfg.ForwardJitterMax)))
}

func (n *Node) processReply(from int, rep RouteReply) {
	idx := slices.Index(rep.Route, n.ID)
	if idx < 0 {
		return // not on the path; stray
	}
	// Cache the forward suffix (self → target).
	n.cacheRoute(rep.Route[idx:])
	if idx == 0 {
		// We are the originator: discovery complete.
		dst := rep.Route[len(rep.Route)-1]
		if d, ok := n.pending[dst]; ok {
			d.gen++
			delete(n.pending, dst)
		}
		route, ok := n.cache[dst]
		if !ok {
			return
		}
		for _, pkt := range n.buffer[dst] {
			pkt.Route, pkt.Idx = slices.Clone(route), 0
			n.transmitData(pkt)
		}
		delete(n.buffer, dst)
		return
	}
	n.Stats.ReplyForwarded++
	n.SendReply(rep.Route[idx-1], &rep)
}

func (n *Node) processError(_ int, rerr RouteError) {
	n.purgeLink(rerr.From, rerr.To)
}

func (n *Node) processData(pkt *DataPacket) {
	idx := slices.Index(pkt.Route, n.ID)
	if idx < 0 || idx != pkt.Idx+1 {
		return // misrouted frame
	}
	pkt.Idx = idx
	if idx == len(pkt.Route)-1 {
		n.deliver(pkt)
		return
	}
	if len(pkt.Route) > n.cfg.DataTTL {
		n.Stats.DropNoRoute++
		return
	}
	if n.Hooks.FilterData != nil && !n.Hooks.FilterData(n, pkt) {
		n.Stats.DropByAttacker++
		return
	}
	n.Stats.DataForwarded++
	n.transmitData(pkt)
}
