package dsr

import (
	"testing"
	"time"

	"mccls/internal/aodv"
	"mccls/internal/mobility"
	"mccls/internal/radio"
	"mccls/internal/sim"
)

// lineNet builds DSR nodes on a static line topology with 200m spacing
// (radio range 250m → adjacent-only links).
func lineNet(t *testing.T, nodes int, cfg Config, auth aodv.Authenticator) (*sim.Simulator, []*Node) {
	t.Helper()
	pts := make([]mobility.Point, nodes)
	for i := range pts {
		pts[i] = mobility.Point{X: float64(i) * 200}
	}
	return netAt(t, &mobility.Static{Points: pts}, cfg, auth)
}

func netAt(t *testing.T, mob mobility.Model, cfg Config, auth aodv.Authenticator) (*sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(5)
	m := radio.New(s, mob, radio.Config{})
	if auth == nil {
		auth = aodv.NullAuth{}
	}
	ns := make([]*Node, mob.Nodes())
	for i := range ns {
		ns[i] = NewNode(i, s, m, cfg, auth)
	}
	return s, ns
}

func TestDiscoveryAndSourceRouting(t *testing.T) {
	s, ns := lineNet(t, 4, Config{}, nil)
	var got []*DataPacket
	ns[3].OnDeliver = func(p *DataPacket) { got = append(got, p) }
	ns[0].Send(3, 256)
	s.Run(3 * time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	route, ok := ns[0].CachedRoute(3)
	if !ok {
		t.Fatal("no cached route at source")
	}
	want := []int{0, 1, 2, 3}
	if len(route) != len(want) {
		t.Fatalf("route %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
	// Intermediates forwarded the data exactly once each.
	if ns[1].Stats.DataForwarded != 1 || ns[2].Stats.DataForwarded != 1 {
		t.Fatal("unexpected forwarding counts")
	}
	// Reverse-path caching: the target learned a route back to the origin.
	if _, ok := ns[3].CachedRoute(0); !ok {
		t.Fatal("target did not cache the reverse route")
	}
}

func TestCachedRouteSkipsRediscovery(t *testing.T) {
	s, ns := lineNet(t, 3, Config{}, nil)
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(2 * time.Second)
	reqs := ns[0].Stats.RequestInitiated
	ns[0].Send(2, 64)
	s.Run(4 * time.Second)
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if ns[0].Stats.RequestInitiated != reqs {
		t.Fatal("second send re-discovered despite cache")
	}
}

func TestDiscoveryFailure(t *testing.T) {
	pts := &mobility.Static{Points: []mobility.Point{{X: 0}, {X: 900}}}
	s, ns := netAt(t, pts, Config{}, nil)
	ns[0].Send(1, 64)
	s.Run(20 * time.Second)
	if ns[0].Stats.DropNoRoute != 1 {
		t.Fatalf("DropNoRoute = %d, want 1", ns[0].Stats.DropNoRoute)
	}
	if ns[0].Stats.RequestRetried != uint64(ns[0].Config().Retries) {
		t.Fatalf("RequestRetried = %d", ns[0].Stats.RequestRetried)
	}
}

// dsrBreakable severs the 0-1 link after one second.
type dsrBreakable struct{}

func (*dsrBreakable) Nodes() int { return 3 }

// Leg reports no trajectory information, exercising the radio medium's
// per-instant spatial-index fallback.
func (m *dsrBreakable) Leg(node int, ts time.Duration) (from, to mobility.Point, t0, t1 time.Duration) {
	p := m.Position(node, ts)
	return p, p, ts, ts
}

func (*dsrBreakable) Position(node int, ts time.Duration) mobility.Point {
	switch node {
	case 0:
		return mobility.Point{X: 0}
	case 1:
		x := 200.0
		if ts > time.Second {
			x += 30 * (ts - time.Second).Seconds()
		}
		return mobility.Point{X: x}
	default:
		return mobility.Point{X: 400}
	}
}

func TestLinkBreakPurgesCacheAndReportsError(t *testing.T) {
	s, ns := netAt(t, &dsrBreakable{}, Config{}, nil)
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(time.Second)
	if delivered != 1 {
		t.Fatal("initial delivery failed")
	}
	s.Run(5 * time.Second) // node 1 walks away
	ns[0].Send(2, 64)
	s.Run(15 * time.Second)
	// The stale first hop fails at the source: the packet is re-buffered,
	// rediscovery runs against the now-partitioned field and fails.
	if ns[0].Stats.DropNoRoute == 0 {
		t.Fatalf("stale-route failure not handled: %+v", ns[0].Stats)
	}
	if _, ok := ns[0].CachedRoute(2); ok {
		t.Fatal("stale route still cached")
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want just the pre-break packet", delivered)
	}
}

func TestDSRAuthRejectsUnenrolledRelay(t *testing.T) {
	s, ns := lineNet(t, 3, Config{}, dsrRejectAuth{bad: 1})
	delivered := 0
	ns[2].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(2, 64)
	s.Run(20 * time.Second)
	if delivered != 0 {
		t.Fatal("data crossed an unauthenticated relay")
	}
	if ns[0].Stats.DropNoRoute == 0 {
		t.Fatal("discovery did not fail")
	}
}

// dsrRejectAuth rejects control packets from one node.
type dsrRejectAuth struct{ bad int }

func (a dsrRejectAuth) Sign(node int, _ []byte) ([]byte, time.Duration, error) {
	return []byte{byte(node)}, 0, nil
}
func (a dsrRejectAuth) Verify(node int, _, _ []byte) (bool, time.Duration) {
	return node != a.bad, 0
}
func (dsrRejectAuth) Overhead() int { return 1 }

func TestRouteLoopRejected(t *testing.T) {
	s, ns := lineNet(t, 2, Config{}, nil)
	// A request whose accumulated route already contains the receiver must
	// be dropped (loop prevention).
	req := &RouteRequest{ID: 9, Origin: 0, Target: 5, Route: []int{0, 1}, TTL: 5, Sender: 0}
	ns[1].handleFrame(0, req)
	s.Run(time.Second)
	if ns[1].Stats.RequestForwarded != 0 {
		t.Fatal("looping request forwarded")
	}
}

func TestSelfSend(t *testing.T) {
	s, ns := lineNet(t, 2, Config{}, nil)
	delivered := 0
	ns[0].OnDeliver = func(*DataPacket) { delivered++ }
	ns[0].Send(0, 10)
	s.Run(time.Second)
	if delivered != 1 {
		t.Fatal("loopback delivery failed")
	}
}

func TestEncodeBindsRoute(t *testing.T) {
	a := &RouteRequest{ID: 1, Origin: 0, Target: 3, Route: []int{0, 1}, TTL: 4, Sender: 1}
	b := &RouteRequest{ID: 1, Origin: 0, Target: 3, Route: []int{0, 2}, TTL: 4, Sender: 1}
	if string(a.Encode()) == string(b.Encode()) {
		t.Fatal("route not covered by the canonical encoding")
	}
	r1 := &RouteReply{Route: []int{0, 1, 2}, Sender: 2}
	r2 := &RouteReply{Route: []int{0, 1, 2, 3}, Sender: 2}
	if string(r1.Encode()) == string(r2.Encode()) {
		t.Fatal("reply routes collide")
	}
}
