package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSpeeds(t *testing.T) {
	got, err := parseSpeeds("1, 5,10.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 5, 10.5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseSpeedsRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"malformed":    "1,x",
		"zero":         "0,5",
		"negative":     "-3",
		"duplicate":    "5,10,5",
		"dup-spacing":  "5, 5",
		"empty-item":   "1,,2",
		"all-negative": "-1,-5",
	}
	for name, input := range cases {
		if _, err := parseSpeeds(input); err == nil {
			t.Fatalf("%s: accepted %q", name, input)
		}
	}
}

func TestRunRequiresFigureSelection(t *testing.T) {
	if err := run(nil, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("no -fig/-all accepted")
	}
	if err := run([]string{"-fig", "11"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("out-of-range -fig accepted")
	}
	if err := run([]string{"-fig", "1", "-speeds", "5,5"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("duplicate speeds accepted")
	}
	if err := run([]string{"-fig", "7", "-churn", "0,-1"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("negative churn accepted")
	}
	if err := run([]string{"-fig", "1", "-nodes", "0"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("non-positive -nodes accepted")
	}
	if err := run([]string{"-fig", "1", "-nodes", "-20"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("negative -nodes accepted")
	}
	if err := run([]string{"-fig", "1", "-flows", "0"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("non-positive -flows accepted")
	}
	if err := run([]string{"-fig", "9", "-citynodes", "1,50"}, new(strings.Builder), new(strings.Builder)); err == nil {
		t.Fatal("sub-minimum city node count accepted")
	}
}

func TestParseNodes(t *testing.T) {
	got, err := parseNodes("100, 500,2000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{100, 500, 2000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for name, input := range map[string]string{
		"malformed": "100,x",
		"one-node":  "1",
		"zero":      "0,100",
		"negative":  "-100",
		"duplicate": "100,100",
	} {
		if _, err := parseNodes(input); err == nil {
			t.Fatalf("%s: accepted %q", name, input)
		}
	}
}

// TestRunFig9EndToEnd drives the CLI through a tiny city-scale sweep and
// checks the CSV carries the nodes axis and the JSON dump carries the
// spatial-index and event-queue observability.
func TestRunFig9EndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_manet.json")
	var stdout, stderr strings.Builder
	err := run([]string{
		"-fig", "9",
		"-duration", "10s",
		"-citynodes", "20,30",
		"-repeats", "2",
		"-parallel", "4",
		"-csv",
		"-json", jsonPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "nodes,AODV,AODV ci95,McCLS,McCLS ci95\n") {
		t.Fatalf("unexpected CSV header:\n%s", out)
	}
	if !strings.Contains(out, "\n20,") || !strings.Contains(out, "\n30,") {
		t.Fatalf("nodes axis rows missing:\n%s", out)
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_manet.json malformed: %v", err)
	}
	if rep.Nodes != 20 || len(rep.CityNodes) != 2 || rep.CityNodes[1] != 30 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	fs := rep.Figures[0]
	if fs.Figure != "fig9" || fs.PeakQueue == 0 || fs.GridQueries == 0 ||
		fs.GridRebuilds == 0 || fs.GridCells == 0 || fs.GridMaxOccupancy == 0 {
		t.Fatalf("figure observability missing: %+v", fs)
	}
	ab := rep.MediumAblation
	if ab == nil {
		t.Fatal("city figure report missing medium ablation")
	}
	if ab.Nodes != 500 || ab.Events == 0 || ab.NaiveEventsPerSec <= 0 ||
		ab.GridEventsPerSec <= ab.NaiveEventsPerSec || ab.Speedup <= 1 {
		t.Fatalf("medium ablation implausible: %+v", ab)
	}
}

func TestParseChurn(t *testing.T) {
	got, err := parseChurn("0, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for name, input := range map[string]string{
		"malformed": "1,x",
		"negative":  "-1",
		"duplicate": "2,2",
		"float":     "1.5",
	} {
		if _, err := parseChurn(input); err == nil {
			t.Fatalf("%s: accepted %q", name, input)
		}
	}
}

// TestRunFig7EndToEnd drives the CLI through the resilience figure on a
// tiny churn sweep and checks the CSV carries the churn axis and ci95
// columns.
func TestRunFig7EndToEnd(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{
		"-fig", "7",
		"-duration", "10s",
		"-churn", "0,1",
		"-repeats", "2",
		"-parallel", "4",
		"-csv",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "churn,AODV,AODV ci95,McCLS,McCLS ci95\n") {
		t.Fatalf("unexpected CSV header:\n%s", out)
	}
	if !strings.Contains(out, "\n0,") || !strings.Contains(out, "\n1,") {
		t.Fatalf("churn axis rows missing:\n%s", out)
	}
}

// TestRunFig6EndToEnd drives the CLI through the DSR extension figure on a
// tiny parallel sweep, checking the rendered table, the progress trace and
// the BENCH_manet.json dump.
func TestRunFig6EndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_manet.json")
	var stdout, stderr strings.Builder
	err := run([]string{
		"-fig", "6",
		"-duration", "10s",
		"-speeds", "5",
		"-repeats", "2",
		"-parallel", "4",
		"-progress",
		"-json", jsonPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "figDSR") || !strings.Contains(out, "McCLS-DSR rushing") {
		t.Fatalf("figure table missing:\n%s", out)
	}
	if !strings.Contains(out, "±") {
		t.Fatalf("rendered figure missing confidence intervals:\n%s", out)
	}
	// 4 curves × 1 speed × 2 repeats = 8 trials traced to stderr.
	if !strings.Contains(stderr.String(), "[  8/  8]") {
		t.Fatalf("progress trace incomplete:\n%s", stderr.String())
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_manet.json malformed: %v", err)
	}
	if rep.Workers != 4 || len(rep.Figures) != 1 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	fs := rep.Figures[0]
	if fs.Figure != "figDSR" || fs.Trials != 8 || fs.Events == 0 || fs.WallMs <= 0 {
		t.Fatalf("figure stats wrong: %+v", fs)
	}
	if rep.TotalWallMs < fs.WallMs {
		t.Fatalf("total wall %.1fms below figure wall %.1fms", rep.TotalWallMs, fs.WallMs)
	}
}

// TestRunCSVCarriesCI checks the -csv path emits the ci95 columns.
func TestRunCSVCarriesCI(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{
		"-fig", "1", "-csv",
		"-duration", "10s", "-speeds", "5", "-repeats", "2",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(stdout.String(), "\n", 2)[0]
	if head != "speed,AODV,AODV ci95,McCLS,McCLS ci95" {
		t.Fatalf("csv header = %q", head)
	}
}
