package main

import "testing"

func TestParseSpeeds(t *testing.T) {
	got, err := parseSpeeds("1, 5,10.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 5, 10.5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseSpeeds("1,x"); err == nil {
		t.Fatal("accepted malformed speed list")
	}
}
