// Command manetsim regenerates the paper's simulation figures (Figures
// 1–5 plus the DSR extension): AODV vs McCLS-AODV across node speed, with
// and without 2-node black hole and rushing attacks. Every sweep point and
// repeat of a figure runs concurrently on a bounded worker pool; output is
// bit-identical at any -parallel value.
//
// Usage:
//
//	manetsim -fig 1                     # one figure
//	manetsim -all                       # all five + DSR extension
//	manetsim -fig 5 -csv                # machine-readable output
//	manetsim -fig 3 -duration 900s -repeats 5 -seed 42
//	manetsim -all -parallel 8 -progress # 8 workers, per-trial progress
//	manetsim -all -timeout 2m -json BENCH_manet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}
}

// figStats is one figure's entry in the -json dump: wall-clock for the
// whole figure plus the trial-level observability the runner collected.
type figStats struct {
	Figure       string  `json:"figure"`
	WallMs       float64 `json:"wall_ms"`
	Trials       int     `json:"trials"`
	TrialWallMs  float64 `json:"trial_wall_ms_total"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchReport is the schema of BENCH_manet.json: enough context to compare
// sweep runs across machines and worker counts.
type benchReport struct {
	GoVersion   string     `json:"go_version"`
	GOARCH      string     `json:"goarch"`
	NumCPU      int        `json:"num_cpu"`
	Workers     int        `json:"workers"`
	Timestamp   string     `json:"timestamp"`
	Figures     []figStats `json:"figures"`
	TotalWallMs float64    `json:"total_wall_ms"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("manetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (1-5; 6 = DSR extension)")
	all := fs.Bool("all", false, "regenerate all figures including the DSR extension")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	duration := fs.Duration("duration", 300*time.Second, "simulated time per run")
	repeats := fs.Int("repeats", 3, "seeds averaged per sweep point")
	seed := fs.Int64("seed", 1, "base RNG seed")
	speeds := fs.String("speeds", "1,5,10,15,20", "comma-separated node speeds (m/s)")
	nodes := fs.Int("nodes", 20, "number of nodes")
	flows := fs.Int("flows", 10, "CBR flows")
	parallel := fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "per-trial wall-clock deadline (0 = none)")
	progress := fs.Bool("progress", false, "print one line per finished trial to stderr")
	jsonPath := fs.String("json", "", "write per-figure wall-clock and trial stats to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*all && (*fig < 1 || *fig > 6) {
		fs.Usage()
		return fmt.Errorf("pass -fig 1..6 or -all")
	}
	speedVals, err := parseSpeeds(*speeds)
	if err != nil {
		return err
	}

	// Per-figure trial stats are folded out of the progress stream, which
	// also powers the optional -progress trace.
	var st figStats
	cfg := manet.SweepConfig{
		Base:         manet.Scenario{Duration: *duration, Nodes: *nodes, Flows: *flows},
		Speeds:       speedVals,
		Repeats:      *repeats,
		Seed:         *seed,
		Workers:      *parallel,
		TrialTimeout: *timeout,
		Progress: func(u manet.TrialUpdate) {
			st.Trials++
			st.TrialWallMs += float64(u.Wall) / float64(time.Millisecond)
			st.Events += u.Events
			if *progress {
				status := "ok"
				if u.Err != nil {
					status = u.Err.Error()
				}
				fmt.Fprintf(stderr, "[%3d/%3d] %-36s %8.1fms %9d ev %12.0f ev/s  %s\n",
					u.Done, u.Total, u.Label,
					float64(u.Wall)/float64(time.Millisecond),
					u.Events, u.EventsPerSec, status)
			}
		},
	}

	gens := map[int]func(manet.SweepConfig) (manet.Figure, error){
		1: manet.Figure1, 2: manet.Figure2, 3: manet.Figure3,
		4: manet.Figure4, 5: manet.Figure5,
		6: manet.FigureDSR, // extension: DSR substrate
	}
	which := []int{*fig}
	if *all {
		which = []int{1, 2, 3, 4, 5, 6}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	allStart := time.Now()
	for _, id := range which {
		st = figStats{}
		start := time.Now()
		figure, err := gens[id](cfg)
		if err != nil {
			return fmt.Errorf("figure %d: %w", id, err)
		}
		wall := time.Since(start)
		if *csv {
			fmt.Fprint(stdout, figure.CSV())
		} else {
			fmt.Fprint(stdout, figure.Render())
			fmt.Fprintf(stdout, "(regenerated in %v, %d trials on %d workers)\n\n",
				wall.Round(time.Millisecond), st.Trials, workers)
		}
		st.Figure = figure.ID
		st.WallMs = float64(wall) / float64(time.Millisecond)
		if secs := wall.Seconds(); secs > 0 {
			st.EventsPerSec = float64(st.Events) / secs
		}
		report.Figures = append(report.Figures, st)
	}
	report.TotalWallMs = float64(time.Since(allStart)) / float64(time.Millisecond)

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "manetsim: wrote %s\n", *jsonPath)
	}
	return nil
}

// parseSpeeds parses the -speeds list, rejecting malformed, non-positive
// and duplicate entries — a duplicated speed would silently double-count a
// sweep point, and a non-positive one is not a speed.
func parseSpeeds(s string) ([]float64, error) {
	var out []float64
	seen := map[float64]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("speed %q must be positive", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate speed %g", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}
