// Command manetsim regenerates the paper's simulation figures (Figures
// 1–5 plus the DSR extension): AODV vs McCLS-AODV across node speed, with
// and without 2-node black hole and rushing attacks. Figures 7–8 are the
// resilience extension: delivery and control overhead under node churn,
// with the McCLS curve enrolling online through an in-network KGC. Figures
// 9–10 are the city-scale extension: delivery and overhead versus node
// count on a Manhattan street grid with heterogeneous radio ranges. Every
// sweep point and repeat of a figure runs concurrently on a bounded worker
// pool; output is bit-identical at any -parallel value.
//
// Usage:
//
//	manetsim -fig 1                     # one figure
//	manetsim -all                       # all five + DSR + resilience + city
//	manetsim -fig 5 -csv                # machine-readable output
//	manetsim -fig 3 -duration 900s -repeats 5 -seed 42
//	manetsim -fig 7 -churn 0,2,4        # churn sweep, custom x-axis
//	manetsim -fig 9 -citynodes 100,500,2000  # city sweep, custom x-axis
//	manetsim -all -parallel 8 -progress # 8 workers, per-trial progress
//	manetsim -all -timeout 2m -json BENCH_manet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}
}

// figStats is one figure's entry in the -json dump: wall-clock for the
// whole figure plus the trial-level observability the runner collected.
// PeakQueue, GridCells and GridMaxOccupancy are maxima over the figure's
// trials; GridRebuilds/GridQueries/GridCandidates are sums, so their ratio
// is the effective per-lookup work the spatial index paid.
type figStats struct {
	Figure           string  `json:"figure"`
	WallMs           float64 `json:"wall_ms"`
	Trials           int     `json:"trials"`
	TrialWallMs      float64 `json:"trial_wall_ms_total"`
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	PeakQueue        int     `json:"peak_queue"`
	GridCells        int     `json:"grid_cells"`
	GridMaxOccupancy int     `json:"grid_max_occupancy"`
	GridRebuilds     uint64  `json:"grid_rebuilds"`
	GridQueries      uint64  `json:"grid_queries"`
	GridCandidates   uint64  `json:"grid_candidates"`
}

// mediumAblation records the spatial-index headline number: the same
// 500-node broadcast-wave workload timed through the naive O(n²) medium
// and through the grid index. Both passes process the identical event
// sequence (the index is pinned to the naive oracle), so the speedup is
// purely the neighbor-lookup win.
type mediumAblation struct {
	Nodes             int     `json:"nodes"`
	Waves             int     `json:"waves"`
	Events            uint64  `json:"events"`
	NaiveEventsPerSec float64 `json:"naive_events_per_sec"`
	GridEventsPerSec  float64 `json:"grid_events_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// benchReport is the schema of BENCH_manet.json: enough context to compare
// sweep runs across machines and worker counts.
type benchReport struct {
	GoVersion      string          `json:"go_version"`
	GOARCH         string          `json:"goarch"`
	NumCPU         int             `json:"num_cpu"`
	Workers        int             `json:"workers"`
	Nodes          int             `json:"nodes"`
	CityNodes      []int           `json:"city_nodes,omitempty"`
	Timestamp      string          `json:"timestamp"`
	Figures        []figStats      `json:"figures"`
	MediumAblation *mediumAblation `json:"medium_ablation,omitempty"`
	TotalWallMs    float64         `json:"total_wall_ms"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("manetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (1-5; 6 = DSR extension; 7-8 = churn resilience; 9-10 = city scale)")
	all := fs.Bool("all", false, "regenerate all figures including the DSR, resilience and city-scale extensions")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	duration := fs.Duration("duration", 300*time.Second, "simulated time per run")
	repeats := fs.Int("repeats", 3, "seeds averaged per sweep point")
	seed := fs.Int64("seed", 1, "base RNG seed")
	speeds := fs.String("speeds", "1,5,10,15,20", "comma-separated node speeds (m/s)")
	churn := fs.String("churn", "0,1,2,3,4", "comma-separated crash/restart event counts (figures 7-8)")
	nodes := fs.Int("nodes", 20, "number of nodes")
	cityNodes := fs.String("citynodes", "100,200,500", "comma-separated node counts swept by the city-scale figures 9-10")
	flows := fs.Int("flows", 10, "CBR flows")
	parallel := fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "per-trial wall-clock deadline (0 = none)")
	progress := fs.Bool("progress", false, "print one line per finished trial to stderr")
	jsonPath := fs.String("json", "", "write per-figure wall-clock and trial stats to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*all && (*fig < 1 || *fig > 10) {
		fs.Usage()
		return fmt.Errorf("pass -fig 1..10 or -all")
	}
	if *nodes < 2 {
		return fmt.Errorf("-nodes %d: need at least 2 nodes", *nodes)
	}
	if *flows < 1 {
		return fmt.Errorf("-flows %d: need at least 1 flow", *flows)
	}
	speedVals, err := parseSpeeds(*speeds)
	if err != nil {
		return err
	}
	churnVals, err := parseChurn(*churn)
	if err != nil {
		return err
	}
	cityVals, err := parseNodes(*cityNodes)
	if err != nil {
		return err
	}

	// Per-figure trial stats are folded out of the progress stream, which
	// also powers the optional -progress trace.
	var st figStats
	cfg := manet.SweepConfig{
		Base:         manet.Scenario{Duration: *duration, Nodes: *nodes, Flows: *flows},
		Speeds:       speedVals,
		Repeats:      *repeats,
		Seed:         *seed,
		Workers:      *parallel,
		TrialTimeout: *timeout,
		Progress: func(u manet.TrialUpdate) {
			st.Trials++
			st.TrialWallMs += float64(u.Wall) / float64(time.Millisecond)
			st.Events += u.Events
			st.PeakQueue = max(st.PeakQueue, u.PeakQueue)
			st.GridCells = max(st.GridCells, u.GridCells)
			st.GridMaxOccupancy = max(st.GridMaxOccupancy, u.GridOccupancy)
			st.GridRebuilds += u.GridRebuilds
			st.GridQueries += u.GridQueries
			st.GridCandidates += u.GridCandidates
			if *progress {
				status := "ok"
				if u.Err != nil {
					status = u.Err.Error()
				}
				fmt.Fprintf(stderr, "[%3d/%3d] %-36s %8.1fms %9d ev %12.0f ev/s  %s\n",
					u.Done, u.Total, u.Label,
					float64(u.Wall)/float64(time.Millisecond),
					u.Events, u.EventsPerSec, status)
			}
		},
	}

	// Figures 7–8 sweep churn instead of speed and carry their own config;
	// everything else (base scenario, repeats, pool, progress) is shared.
	rcfg := manet.ResilienceConfig{
		Base:         cfg.Base,
		Churn:        churnVals,
		Repeats:      *repeats,
		Seed:         *seed,
		Workers:      *parallel,
		TrialTimeout: *timeout,
		Progress:     cfg.Progress,
	}

	// Figures 9–10 sweep node count at city scale: Manhattan streets,
	// heterogeneous radio ranges. -nodes does not apply (the axis is the
	// node count); -duration, -flows and the pool options carry over.
	ccfg := manet.CityConfig{
		Base:         manet.Scenario{Duration: *duration, Flows: *flows},
		Nodes:        cityVals,
		Repeats:      *repeats,
		Seed:         *seed,
		Workers:      *parallel,
		TrialTimeout: *timeout,
		Progress:     cfg.Progress,
	}

	gens := map[int]func() (manet.Figure, error){
		1:  func() (manet.Figure, error) { return manet.Figure1(cfg) },
		2:  func() (manet.Figure, error) { return manet.Figure2(cfg) },
		3:  func() (manet.Figure, error) { return manet.Figure3(cfg) },
		4:  func() (manet.Figure, error) { return manet.Figure4(cfg) },
		5:  func() (manet.Figure, error) { return manet.Figure5(cfg) },
		6:  func() (manet.Figure, error) { return manet.FigureDSR(cfg) },                 // extension: DSR substrate
		7:  func() (manet.Figure, error) { return manet.FigureResilience(rcfg) },         // extension: PDR under churn
		8:  func() (manet.Figure, error) { return manet.FigureResilienceOverhead(rcfg) }, // extension: overhead under churn
		9:  func() (manet.Figure, error) { return manet.FigureCityPDR(ccfg) },            // extension: PDR at city scale
		10: func() (manet.Figure, error) { return manet.FigureCityOverhead(ccfg) },       // extension: overhead at city scale
	}
	which := []int{*fig}
	if *all {
		which = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Nodes:     *nodes,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, id := range which {
		if id == 9 || id == 10 {
			report.CityNodes = cityVals
			break
		}
	}
	allStart := time.Now()
	for _, id := range which {
		st = figStats{}
		start := time.Now()
		figure, err := gens[id]()
		if err != nil {
			return fmt.Errorf("figure %d: %w", id, err)
		}
		wall := time.Since(start)
		if *csv {
			fmt.Fprint(stdout, figure.CSV())
		} else {
			fmt.Fprint(stdout, figure.Render())
			fmt.Fprintf(stdout, "(regenerated in %v, %d trials on %d workers)\n\n",
				wall.Round(time.Millisecond), st.Trials, workers)
		}
		st.Figure = figure.ID
		st.WallMs = float64(wall) / float64(time.Millisecond)
		if secs := wall.Seconds(); secs > 0 {
			st.EventsPerSec = float64(st.Events) / secs
		}
		report.Figures = append(report.Figures, st)
	}
	report.TotalWallMs = float64(time.Since(allStart)) / float64(time.Millisecond)

	// The city-scale figures ship with the medium ablation: 500-node
	// broadcast waves, naive scan vs spatial index. The rendered line is
	// suppressed under -csv so serial/parallel CSV diffs stay byte-equal
	// (wall-clock numbers are machine-dependent).
	for _, id := range which {
		if id != 9 && id != 10 {
			continue
		}
		ab, err := manet.RunMediumAblation(500, 20)
		if err != nil {
			return err
		}
		report.MediumAblation = &mediumAblation{
			Nodes:             ab.Nodes,
			Waves:             ab.Waves,
			Events:            ab.Events,
			NaiveEventsPerSec: ab.NaiveEventsPerSec,
			GridEventsPerSec:  ab.GridEventsPerSec,
			Speedup:           ab.Speedup,
		}
		if !*csv {
			fmt.Fprintf(stdout, "medium ablation (%d-node broadcast waves): naive %.0f ev/s, grid %.0f ev/s — %.1fx\n\n",
				ab.Nodes, ab.NaiveEventsPerSec, ab.GridEventsPerSec, ab.Speedup)
		}
		break
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "manetsim: wrote %s\n", *jsonPath)
	}
	return nil
}

// parseSpeeds parses the -speeds list, rejecting malformed, non-positive
// and duplicate entries — a duplicated speed would silently double-count a
// sweep point, and a non-positive one is not a speed.
func parseSpeeds(s string) ([]float64, error) {
	var out []float64
	seen := map[float64]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("speed %q must be positive", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate speed %g", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// parseNodes parses the -citynodes list under the same rules as parseSpeeds:
// a node count below 2 cannot form a network, and a duplicate would silently
// double-count a sweep point.
func parseNodes(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node count %q: %w", part, err)
		}
		if v < 2 {
			return nil, fmt.Errorf("node count %q must be at least 2", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate node count %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// parseChurn parses the -churn list under the same rules as parseSpeeds,
// except that zero is a valid (and important) point: the fault-free
// baseline anchors the churn sweep.
func parseChurn(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad churn count %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("churn count %q must be non-negative", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate churn count %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}
