// Command manetsim regenerates the paper's simulation figures (Figures
// 1–5): AODV vs McCLS-AODV across node speed, with and without 2-node
// black hole and rushing attacks.
//
// Usage:
//
//	manetsim -fig 1            # one figure
//	manetsim -all              # all five
//	manetsim -fig 5 -csv       # machine-readable output
//	manetsim -fig 3 -duration 900s -repeats 5 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure to regenerate (1-5; 6 = DSR extension)")
	all := flag.Bool("all", false, "regenerate all figures including the DSR extension")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	duration := flag.Duration("duration", 300*time.Second, "simulated time per run")
	repeats := flag.Int("repeats", 3, "seeds averaged per sweep point")
	seed := flag.Int64("seed", 1, "base RNG seed")
	speeds := flag.String("speeds", "1,5,10,15,20", "comma-separated node speeds (m/s)")
	nodes := flag.Int("nodes", 20, "number of nodes")
	flows := flag.Int("flows", 10, "CBR flows")
	flag.Parse()

	if !*all && (*fig < 1 || *fig > 6) {
		flag.Usage()
		return fmt.Errorf("pass -fig 1..6 or -all")
	}
	speedVals, err := parseSpeeds(*speeds)
	if err != nil {
		return err
	}

	cfg := manet.SweepConfig{
		Base:    manet.Scenario{Duration: *duration, Nodes: *nodes, Flows: *flows},
		Speeds:  speedVals,
		Repeats: *repeats,
		Seed:    *seed,
	}

	gens := map[int]func(manet.SweepConfig) (manet.Figure, error){
		1: manet.Figure1, 2: manet.Figure2, 3: manet.Figure3,
		4: manet.Figure4, 5: manet.Figure5,
		6: manet.FigureDSR, // extension: DSR substrate
	}
	which := []int{*fig}
	if *all {
		which = []int{1, 2, 3, 4, 5, 6}
	}
	for _, id := range which {
		start := time.Now()
		figure, err := gens[id](cfg)
		if err != nil {
			return fmt.Errorf("figure %d: %w", id, err)
		}
		if *csv {
			fmt.Print(figure.CSV())
		} else {
			fmt.Print(figure.Render())
			fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

func parseSpeeds(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
