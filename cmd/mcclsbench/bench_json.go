package main

import (
	"encoding/json"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/bn254/fp"
	"mccls/internal/core"
)

// benchEntry is one measured primitive in the BENCH_bn254.json dump.
type benchEntry struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp int64   `json:"ns_per_op"`
	MsPerOp float64 `json:"ms_per_op"`
}

// batchSweepEntry is one point of the batch-verification sweep: n
// signatures from min(16, n) signers — an RREQ-flood-shaped workload —
// checked through the multi-signer batch engine.
type batchSweepEntry struct {
	BatchSize  int     `json:"batch_size"`
	Signers    int     `json:"signers"`
	Iters      int     `json:"iters"`
	MsPerSig   float64 `json:"ms_per_sig"`
	SigsPerSec float64 `json:"sigs_per_sec"`
	// Speedup is per-signature throughput relative to the sequential
	// mccls_verify row of the same run.
	Speedup float64 `json:"speedup_vs_sequential"`
}

// fpKernelEntry compares the dispatched base-field kernel (assembly
// where the platform has one) against the portable generic code for one
// operation, on this machine, in this run.
type fpKernelEntry struct {
	Op        string  `json:"op"`
	GenericNs float64 `json:"generic_ns_per_op"`
	FastNs    float64 `json:"fast_ns_per_op"`
	Speedup   float64 `json:"speedup"`
}

// fpKernelReport records which Fp kernel path the build selected
// ("adx" or "generic") and the per-op generic-vs-fast microbenchmarks.
type fpKernelReport struct {
	Path string          `json:"path"`
	Ops  []fpKernelEntry `json:"ops"`
}

// benchReport is the schema of BENCH_bn254.json: enough context to compare
// runs across machines plus the per-primitive timings and the batch sweep.
type benchReport struct {
	GoVersion   string            `json:"go_version"`
	GOARCH      string            `json:"goarch"`
	Curve       string            `json:"curve"`
	Timestamp   string            `json:"timestamp"`
	FpKernel    *fpKernelReport   `json:"fp_kernel,omitempty"`
	Results     []benchEntry      `json:"results"`
	BatchVerify []batchSweepEntry `json:"batch_verify,omitempty"`
}

// timeOp measures fn over iters iterations and returns one entry.
func timeOp(name string, iters int, fn func()) benchEntry {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	ns := elapsed.Nanoseconds() / int64(iters)
	return benchEntry{
		Name:    name,
		Iters:   iters,
		NsPerOp: ns,
		MsPerOp: float64(ns) / float64(time.Millisecond),
	}
}

// timeKernelNs measures fn with sub-nanosecond resolution — the Fp
// kernels run in tens of nanoseconds, so the integer ns/op of timeOp
// would round most of the signal away.
func timeKernelNs(fn func()) float64 {
	const iters = 2_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// benchFpKernel measures the dispatched Mul/Square/Add against the
// portable generic kernels and reports which path the build selected.
func benchFpKernel(r *rand.Rand) *fpKernelReport {
	var x, y, z fp.Element
	x.SetBigInt(new(big.Int).Rand(r, bn254.P))
	y.SetBigInt(new(big.Int).Rand(r, bn254.P))
	rep := &fpKernelReport{Path: fp.KernelPath()}
	for _, op := range []struct {
		name    string
		fast    func()
		generic func()
	}{
		{"mul", func() { z.Mul(&x, &y) }, func() { fp.GenericMul(&z, &x, &y) }},
		{"square", func() { z.Square(&x) }, func() { fp.GenericSquare(&z, &x) }},
		{"add", func() { z.Add(&x, &y) }, func() { fp.GenericAdd(&z, &x, &y) }},
	} {
		e := fpKernelEntry{
			Op:        op.name,
			GenericNs: timeKernelNs(op.generic),
			FastNs:    timeKernelNs(op.fast),
		}
		if e.FastNs > 0 {
			e.Speedup = e.GenericNs / e.FastNs
		}
		rep.Ops = append(rep.Ops, e)
	}
	return rep
}

// benchBatchSweep times the multi-signer batch engine at each batch size.
// The workload models an RREQ flood: every signature covers a distinct
// payload and the signer population is capped at 16 (a receiver hears the
// same neighborhood repeatedly), so the engine's per-identity Q_ID grouping
// and caching are exercised the way the routing layer exercises them.
func benchBatchSweep(vf *core.Verifier, kgc *core.KGC, rng *rand.Rand, sizes []int, seqMs float64) ([]batchSweepEntry, error) {
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return nil, nil
	}
	signers := 16
	if maxN < signers {
		signers = maxN
	}
	sks := make([]*core.PrivateKey, signers)
	for j := range sks {
		var err error
		sks[j], err = core.GenerateKeyPair(kgc.Params(),
			kgc.ExtractPartialPrivateKey(fmt.Sprintf("rreq-%d@manet", j)), rng)
		if err != nil {
			return nil, err
		}
	}
	pks := make([]*core.PublicKey, maxN)
	msgs := make([][]byte, maxN)
	sigs := make([]*core.Signature, maxN)
	for i := 0; i < maxN; i++ {
		sk := sks[i%signers]
		pks[i] = sk.Public()
		msgs[i] = []byte(fmt.Sprintf("RREQ origin=%d id=%d", i%signers, i))
		var err error
		if sigs[i], err = core.Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
			return nil, err
		}
	}
	// Warm the per-identity caches (Q_ID, e(P_pub, Q_ID)) — steady-state
	// flood verification runs against known neighbors.
	if err := vf.VerifyBatchMulti(pks[:signers], msgs[:signers], sigs[:signers], nil); err != nil {
		return nil, err
	}
	var sweep []batchSweepEntry
	for _, n := range sizes {
		if n <= 0 {
			continue
		}
		bv := vf.Batch(core.BatchOptions{})
		reps := 512 / n
		if reps < 2 {
			reps = 2
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := bv.VerifyMulti(pks[:n], msgs[:n], sigs[:n]); err != nil {
				return nil, err
			}
		}
		perSig := time.Since(start) / time.Duration(reps*n)
		msPerSig := float64(perSig.Nanoseconds()) / float64(time.Millisecond)
		entry := batchSweepEntry{
			BatchSize:  n,
			Signers:    min(signers, n),
			Iters:      reps,
			MsPerSig:   msPerSig,
			SigsPerSec: float64(time.Second) / float64(perSig),
		}
		if msPerSig > 0 {
			entry.Speedup = seqMs / msPerSig
		}
		sweep = append(sweep, entry)
	}
	return sweep, nil
}

// writeBenchJSON times the BN254 substrate primitives that dominate McCLS
// sign/verify cost plus the batch-verification sweep, and writes them to
// path as JSON.
func writeBenchJSON(path string, iters int, batchSizes []int) error {
	r := rand.New(rand.NewSource(1))
	k1 := new(big.Int).Rand(r, bn254.Order)
	k2 := new(big.Int).Rand(r, bn254.Order)
	bn254.PrecomputeFixedBase()
	p := new(bn254.G1).ScalarBaseMult(k1)
	q := new(bn254.G2).ScalarBaseMult(k2)
	msg := []byte("mcclsbench probe message")

	// A complete McCLS deployment for the end-to-end sign/verify rows.
	kgc, err := core.Setup(r)
	if err != nil {
		return err
	}
	sk, err := core.GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("bench@manet"), r)
	if err != nil {
		return err
	}
	vf := core.NewVerifier(kgc.Params())
	sig, err := core.Sign(kgc.Params(), sk, msg, r)
	if err != nil {
		return err
	}
	if err := vf.Verify(sk.Public(), msg, sig); err != nil {
		return err
	}

	rep := benchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Curve:     "BN254 (Montgomery fixed-width Fp + platform mul kernels, GLV/wNAF + lockstep multi-pairing + cyclotomic final exp)",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		FpKernel:  benchFpKernel(r),
		Results: []benchEntry{
			timeOp("pairing", iters, func() { bn254.Pair(p, q) }),
			timeOp("g1_scalar_mult", iters, func() { new(bn254.G1).ScalarMult(p, k2) }),
			timeOp("g1_scalar_base_mult", iters, func() { new(bn254.G1).ScalarBaseMult(k2) }),
			timeOp("g2_scalar_mult", iters, func() { new(bn254.G2).ScalarMult(q, k1) }),
			timeOp("hash_to_g1", iters, func() { bn254.HashToG1("bench", msg) }),
			timeOp("hash_to_g2", iters, func() { bn254.HashToG2("bench", msg) }),
			timeOp("gt_exp", iters, func() { new(bn254.GT).Exp(bn254.Pair(p, q), k1) }),
			timeOp("mccls_sign", iters, func() {
				if _, err := core.Sign(kgc.Params(), sk, msg, r); err != nil {
					panic(err)
				}
			}),
			timeOp("mccls_verify", iters, func() {
				if err := vf.Verify(sk.Public(), msg, sig); err != nil {
					panic(err)
				}
			}),
		},
	}
	var seqMs float64
	for _, e := range rep.Results {
		if e.Name == "mccls_verify" {
			seqMs = e.MsPerOp
		}
	}
	if rep.BatchVerify, err = benchBatchSweep(vf, kgc, r, batchSizes, seqMs); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mcclsbench: wrote %s\n", path)
	return nil
}
