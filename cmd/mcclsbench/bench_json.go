package main

import (
	"encoding/json"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
)

// benchEntry is one measured primitive in the BENCH_bn254.json dump.
type benchEntry struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp int64   `json:"ns_per_op"`
	MsPerOp float64 `json:"ms_per_op"`
}

// benchReport is the schema of BENCH_bn254.json: enough context to compare
// runs across machines plus the per-primitive timings.
type benchReport struct {
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Curve     string       `json:"curve"`
	Timestamp string       `json:"timestamp"`
	Results   []benchEntry `json:"results"`
}

// timeOp measures fn over iters iterations and returns one entry.
func timeOp(name string, iters int, fn func()) benchEntry {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	ns := elapsed.Nanoseconds() / int64(iters)
	return benchEntry{
		Name:    name,
		Iters:   iters,
		NsPerOp: ns,
		MsPerOp: float64(ns) / float64(time.Millisecond),
	}
}

// writeBenchJSON times the BN254 substrate primitives that dominate McCLS
// sign/verify cost and writes them to path as JSON.
func writeBenchJSON(path string, iters int) error {
	r := rand.New(rand.NewSource(1))
	k1 := new(big.Int).Rand(r, bn254.Order)
	k2 := new(big.Int).Rand(r, bn254.Order)
	bn254.PrecomputeFixedBase()
	p := new(bn254.G1).ScalarBaseMult(k1)
	q := new(bn254.G2).ScalarBaseMult(k2)
	msg := []byte("mcclsbench probe message")

	// A complete McCLS deployment for the end-to-end sign/verify rows.
	kgc, err := core.Setup(r)
	if err != nil {
		return err
	}
	sk, err := core.GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("bench@manet"), r)
	if err != nil {
		return err
	}
	vf := core.NewVerifier(kgc.Params())
	sig, err := core.Sign(kgc.Params(), sk, msg, r)
	if err != nil {
		return err
	}
	if err := vf.Verify(sk.Public(), msg, sig); err != nil {
		return err
	}

	rep := benchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Curve:     "BN254 (Montgomery fixed-width Fp, GLV/wNAF + sparse Miller + cyclotomic final exp)",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Results: []benchEntry{
			timeOp("pairing", iters, func() { bn254.Pair(p, q) }),
			timeOp("g1_scalar_mult", iters, func() { new(bn254.G1).ScalarMult(p, k2) }),
			timeOp("g1_scalar_base_mult", iters, func() { new(bn254.G1).ScalarBaseMult(k2) }),
			timeOp("g2_scalar_mult", iters, func() { new(bn254.G2).ScalarMult(q, k1) }),
			timeOp("hash_to_g1", iters, func() { bn254.HashToG1("bench", msg) }),
			timeOp("hash_to_g2", iters, func() { bn254.HashToG2("bench", msg) }),
			timeOp("gt_exp", iters, func() { new(bn254.GT).Exp(bn254.Pair(p, q), k1) }),
			timeOp("mccls_sign", iters, func() {
				if _, err := core.Sign(kgc.Params(), sk, msg, r); err != nil {
					panic(err)
				}
			}),
			timeOp("mccls_verify", iters, func() {
				if err := vf.Verify(sk.Public(), msg, sig); err != nil {
					panic(err)
				}
			}),
		},
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mcclsbench: wrote %s\n", path)
	return nil
}
