// Command mcclsbench regenerates the paper's Table 1: the operation-count
// comparison of the AP, ZWXF, YHG and McCLS certificateless signature
// schemes, extended with wall-clock sign/verify timings measured on this
// machine's BN254 substrate.
//
// Usage:
//
//	mcclsbench [-iters N] [-csv] [-json [FILE]] [-batch N1,N2,...]
//
// With -json, the BN254 substrate primitives (pairing, scalar
// multiplications, hashes-to-curve, GT exponentiation) are additionally
// timed and dumped to FILE (default BENCH_bn254.json) for machine-readable
// before/after comparisons, along with a batch-verification sweep over the
// -batch sizes (default 1,8,64,256) reporting per-size sigs/sec and
// speedup versus sequential Verify.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mccls/manet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcclsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	iters := flag.Int("iters", 10, "sign/verify iterations per scheme")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonPath := flag.String("json", "", "also dump BN254 primitive timings to this file (BENCH_bn254.json if empty string is given with -json=)")
	batchList := flag.String("batch", "1,8,64,256", "comma-separated batch sizes for the -json batch-verification sweep")
	jsonSet := false
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json" {
			jsonSet = true
		}
	})

	if *iters < 1 {
		return fmt.Errorf("-iters must be at least 1, got %d", *iters)
	}
	if jsonSet {
		path := *jsonPath
		if path == "" {
			path = "BENCH_bn254.json"
		}
		sizes, err := parseBatchSizes(*batchList)
		if err != nil {
			return err
		}
		if err := writeBenchJSON(path, *iters, sizes); err != nil {
			return err
		}
	}

	rows, err := manet.Table1(*iters, nil)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("scheme,sign_ops,verify_ops,pubkey_len,sign_ms,verify_ms")
		for _, r := range rows {
			fmt.Printf("%s,%s,%s,%s,%.3f,%.3f\n",
				r.Scheme, r.Sign, r.Verify, r.PubKeyLen,
				float64(r.SignTime)/float64(time.Millisecond),
				float64(r.VerifyTime)/float64(time.Millisecond))
		}
		return nil
	}
	fmt.Println("Table 1 — Comparison of the CLS Schemes")
	fmt.Println("(s: scalar multiplication; p: pairing; e: exponentiation)")
	fmt.Println()
	fmt.Print(manet.RenderTable1(rows))
	return nil
}

// parseBatchSizes parses the -batch list ("1,8,64,256").
func parseBatchSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-batch wants positive integers, got %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
