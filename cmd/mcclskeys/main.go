// Command mcclskeys drives the McCLS key lifecycle from the command line,
// exchanging all material as hex-encoded files so the three roles (KGC,
// user, verifier) can run on different machines.
//
//	mcclskeys setup   -out kgc.master -params params.pub
//	mcclskeys extract -master kgc.master -id alice -out alice.ppk
//	mcclskeys keygen  -params params.pub -ppk alice.ppk -out alice.key -pub alice.pub
//	mcclskeys sign    -params params.pub -ppk alice.ppk -key alice.key -in msg.txt -out msg.sig
//	mcclskeys verify  -params params.pub -pub alice.pub -in msg.txt -sig msg.sig
package main

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"os"
	"strings"

	"flag"

	"mccls"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcclskeys:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: mcclskeys <setup|extract|keygen|sign|verify> [flags]")
	}
	switch args[0] {
	case "setup":
		return cmdSetup(args[1:])
	case "extract":
		return cmdExtract(args[1:])
	case "keygen":
		return cmdKeygen(args[1:])
	case "sign":
		return cmdSign(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func writeHex(path string, data []byte) error {
	return os.WriteFile(path, []byte(hex.EncodeToString(data)+"\n"), 0o600)
}

func readHex(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return hex.DecodeString(strings.TrimSpace(string(raw)))
}

func cmdSetup(args []string) error {
	fs := flag.NewFlagSet("setup", flag.ContinueOnError)
	out := fs.String("out", "kgc.master", "master key output file")
	params := fs.String("params", "params.pub", "public parameters output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kgc, err := mccls.Setup(nil)
	if err != nil {
		return err
	}
	if err := writeHex(*out, kgc.MasterKey().Bytes()); err != nil {
		return err
	}
	if err := writeHex(*params, kgc.Params().Marshal()); err != nil {
		return err
	}
	fmt.Printf("KGC initialized: master key → %s, public parameters → %s\n", *out, *params)
	return nil
}

func loadKGC(masterPath string) (*mccls.KGC, error) {
	raw, err := readHex(masterPath)
	if err != nil {
		return nil, err
	}
	return mccls.NewKGCFromMaster(new(big.Int).SetBytes(raw))
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	master := fs.String("master", "kgc.master", "master key file")
	id := fs.String("id", "", "identity to extract a partial private key for")
	out := fs.String("out", "", "partial private key output file (default <id>.ppk)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("extract: -id is required")
	}
	if *out == "" {
		*out = *id + ".ppk"
	}
	kgc, err := loadKGC(*master)
	if err != nil {
		return err
	}
	ppk := kgc.ExtractPartialPrivateKey(*id)
	if err := writeHex(*out, ppk.Marshal()); err != nil {
		return err
	}
	fmt.Printf("partial private key for %q → %s\n", *id, *out)
	return nil
}

func loadParams(path string) (*mccls.Params, error) {
	raw, err := readHex(path)
	if err != nil {
		return nil, err
	}
	return mccls.UnmarshalParams(raw)
}

func loadPPK(path string) (*mccls.PartialPrivateKey, error) {
	raw, err := readHex(path)
	if err != nil {
		return nil, err
	}
	return mccls.UnmarshalPartialPrivateKey(raw)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	params := fs.String("params", "params.pub", "public parameters file")
	ppkPath := fs.String("ppk", "", "partial private key file")
	out := fs.String("out", "user.key", "secret value output file")
	pub := fs.String("pub", "user.pub", "public key output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadParams(*params)
	if err != nil {
		return err
	}
	ppk, err := loadPPK(*ppkPath)
	if err != nil {
		return err
	}
	sk, err := mccls.GenerateKeyPair(p, ppk, nil)
	if err != nil {
		return err
	}
	if err := writeHex(*out, sk.SecretValue().Bytes()); err != nil {
		return err
	}
	if err := writeHex(*pub, sk.Public().Marshal()); err != nil {
		return err
	}
	fmt.Printf("keypair for %q: secret value → %s, public key → %s\n", sk.ID(), *out, *pub)
	return nil
}

func cmdSign(args []string) error {
	fs := flag.NewFlagSet("sign", flag.ContinueOnError)
	params := fs.String("params", "params.pub", "public parameters file")
	ppkPath := fs.String("ppk", "", "partial private key file")
	key := fs.String("key", "user.key", "secret value file")
	in := fs.String("in", "", "message file")
	out := fs.String("out", "", "signature output file (default <in>.sig)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("sign: -in is required")
	}
	if *out == "" {
		*out = *in + ".sig"
	}
	p, err := loadParams(*params)
	if err != nil {
		return err
	}
	ppk, err := loadPPK(*ppkPath)
	if err != nil {
		return err
	}
	xRaw, err := readHex(*key)
	if err != nil {
		return err
	}
	sk, err := mccls.NewPrivateKeyFromSecret(p, ppk, new(big.Int).SetBytes(xRaw))
	if err != nil {
		return err
	}
	msg, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	sig, err := mccls.Sign(p, sk, msg, nil)
	if err != nil {
		return err
	}
	if err := writeHex(*out, sig.Marshal()); err != nil {
		return err
	}
	fmt.Printf("signature over %s (%d bytes) → %s\n", *in, len(msg), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	params := fs.String("params", "params.pub", "public parameters file")
	pub := fs.String("pub", "user.pub", "public key file")
	in := fs.String("in", "", "message file")
	sigPath := fs.String("sig", "", "signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *sigPath == "" {
		return fmt.Errorf("verify: -in and -sig are required")
	}
	p, err := loadParams(*params)
	if err != nil {
		return err
	}
	pkRaw, err := readHex(*pub)
	if err != nil {
		return err
	}
	pk, err := mccls.UnmarshalPublicKey(pkRaw)
	if err != nil {
		return err
	}
	msg, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	sigRaw, err := readHex(*sigPath)
	if err != nil {
		return err
	}
	sig, err := mccls.UnmarshalSignature(sigRaw)
	if err != nil {
		return err
	}
	if err := mccls.NewVerifier(p).Verify(pk, msg, sig); err != nil {
		return fmt.Errorf("verification FAILED for identity %q: %w", pk.ID, err)
	}
	fmt.Printf("OK: valid signature by %q over %s\n", pk.ID, *in)
	return nil
}
