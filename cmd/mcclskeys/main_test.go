package main

import (
	"bytes"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mccls"
)

// TestKeyLifecycle drives the full CLI flow — setup, extract, keygen, sign,
// verify — through temporary files, then checks that tampering is caught.
func TestKeyLifecycle(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	if err := run([]string{"setup", "-out", p("kgc.master"), "-params", p("params.pub")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"extract", "-master", p("kgc.master"), "-id", "alice", "-out", p("alice.ppk")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"keygen", "-params", p("params.pub"), "-ppk", p("alice.ppk"),
		"-out", p("alice.key"), "-pub", p("alice.pub")}); err != nil {
		t.Fatal(err)
	}

	msg := p("msg.txt")
	if err := os.WriteFile(msg, []byte("hello MANET"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sign", "-params", p("params.pub"), "-ppk", p("alice.ppk"),
		"-key", p("alice.key"), "-in", msg, "-out", p("msg.sig")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-params", p("params.pub"), "-pub", p("alice.pub"),
		"-in", msg, "-sig", p("msg.sig")}); err != nil {
		t.Fatal(err)
	}

	// Tampered message must fail verification.
	if err := os.WriteFile(msg, []byte("hello MANET!"), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"verify", "-params", p("params.pub"), "-pub", p("alice.pub"),
		"-in", msg, "-sig", p("msg.sig")})
	if err == nil || !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("tampered message verified: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"extract"}); err == nil {
		t.Fatal("extract without -id accepted")
	}
	if err := run([]string{"sign"}); err == nil {
		t.Fatal("sign without -in accepted")
	}
	if err := run([]string{"verify"}); err == nil {
		t.Fatal("verify without inputs accepted")
	}
}

// TestGoldenKeyRoundTrip pins the on-disk hex encodings: every generated
// artifact, re-read from disk and re-derived, reproduces byte-identical
// output. This is what lets the three roles run on different machines.
func TestGoldenKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	if err := run([]string{"setup", "-out", p("kgc.master"), "-params", p("params.pub")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"extract", "-master", p("kgc.master"), "-id", "bob", "-out", p("bob.ppk")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"keygen", "-params", p("params.pub"), "-ppk", p("bob.ppk"),
		"-out", p("bob.key"), "-pub", p("bob.pub")}); err != nil {
		t.Fatal(err)
	}

	read := func(name string) []byte {
		t.Helper()
		raw, err := os.ReadFile(p(name))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	// Re-extracting under the reloaded master key reproduces the partial
	// key file byte for byte (extraction is deterministic).
	if err := run([]string{"extract", "-master", p("kgc.master"), "-id", "bob", "-out", p("bob2.ppk")}); err != nil {
		t.Fatal(err)
	}
	if string(read("bob.ppk")) != string(read("bob2.ppk")) {
		t.Fatal("re-extraction changed the partial key bytes")
	}

	// Rebuilding the private key from the stored secret value reproduces
	// the public key: the hex files are a complete, faithful encoding.
	params, err := loadParams(p("params.pub"))
	if err != nil {
		t.Fatal(err)
	}
	ppk, err := loadPPK(p("bob.ppk"))
	if err != nil {
		t.Fatal(err)
	}
	xRaw, err := readHex(p("bob.key"))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := mccls.NewPrivateKeyFromSecret(params, ppk, new(big.Int).SetBytes(xRaw))
	if err != nil {
		t.Fatal(err)
	}
	pubRaw, err := readHex(p("bob.pub"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sk.Public().Marshal(), pubRaw) {
		t.Fatal("rebuilt public key differs from the golden bob.pub")
	}
}

// TestCorruptInputValidation: every consumer of an on-disk artifact must
// reject bad hex, truncated material and out-of-range scalars with an
// error instead of garbage output.
func TestCorruptInputValidation(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	if err := run([]string{"setup", "-out", p("kgc.master"), "-params", p("params.pub")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"extract", "-master", p("kgc.master"), "-id", "carol", "-out", p("carol.ppk")}); err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) string {
		t.Helper()
		if err := os.WriteFile(p(name), []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return p(name)
	}
	notHex := write("nothex", "zzzz\n")
	truncated := write("trunc.ppk", "deadbeef\n")
	zeroMaster := write("zero.master", "00\n")

	if err := run([]string{"extract", "-master", notHex, "-id", "x"}); err == nil {
		t.Error("extract with non-hex master accepted")
	}
	if err := run([]string{"extract", "-master", zeroMaster, "-id", "x"}); err == nil {
		t.Error("extract with zero master accepted")
	}
	if err := run([]string{"extract", "-master", p("missing"), "-id", "x"}); err == nil {
		t.Error("extract with missing master file accepted")
	}
	if err := run([]string{"keygen", "-params", p("params.pub"), "-ppk", truncated}); err == nil {
		t.Error("keygen with truncated partial key accepted")
	}
	if err := run([]string{"keygen", "-params", notHex, "-ppk", p("carol.ppk")}); err == nil {
		t.Error("keygen with non-hex params accepted")
	}
	if err := run([]string{"verify", "-params", p("params.pub"), "-pub", truncated,
		"-in", p("params.pub"), "-sig", p("params.pub")}); err == nil {
		t.Error("verify with truncated public key accepted")
	}
	// Unknown flags are rejected by the flag parser, not silently eaten.
	if err := run([]string{"setup", "-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
