package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKeyLifecycle drives the full CLI flow — setup, extract, keygen, sign,
// verify — through temporary files, then checks that tampering is caught.
func TestKeyLifecycle(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	if err := run([]string{"setup", "-out", p("kgc.master"), "-params", p("params.pub")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"extract", "-master", p("kgc.master"), "-id", "alice", "-out", p("alice.ppk")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"keygen", "-params", p("params.pub"), "-ppk", p("alice.ppk"),
		"-out", p("alice.key"), "-pub", p("alice.pub")}); err != nil {
		t.Fatal(err)
	}

	msg := p("msg.txt")
	if err := os.WriteFile(msg, []byte("hello MANET"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sign", "-params", p("params.pub"), "-ppk", p("alice.ppk"),
		"-key", p("alice.key"), "-in", msg, "-out", p("msg.sig")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-params", p("params.pub"), "-pub", p("alice.pub"),
		"-in", msg, "-sig", p("msg.sig")}); err != nil {
		t.Fatal(err)
	}

	// Tampered message must fail verification.
	if err := os.WriteFile(msg, []byte("hello MANET!"), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"verify", "-params", p("params.pub"), "-pub", p("alice.pub"),
		"-in", msg, "-sig", p("msg.sig")})
	if err == nil || !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("tampered message verified: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"extract"}); err == nil {
		t.Fatal("extract without -id accepted")
	}
	if err := run([]string{"sign"}); err == nil {
		t.Fatal("sign without -in accepted")
	}
	if err := run([]string{"verify"}); err == nil {
		t.Fatal("verify without inputs accepted")
	}
}
