package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSmoke drives a tiny self-hosted 2-of-3 run end to end and checks
// the report shape: both phases present, everything succeeded, warm phase
// hit the cache.
func TestLoadSmoke(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-t", "2", "-n", "3",
		"-requests", "40", "-cold", "10", "-warmids", "5",
		"-concurrency", "4", "-validate", "2",
		"-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TotalSuccess != 40 {
		t.Fatalf("total_success = %d, want 40", rep.TotalSuccess)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "cold" || rep.Phases[1].Name != "warm" {
		t.Fatalf("unexpected phases: %+v", rep.Phases)
	}
	if rep.Phases[0].CacheHitRate != 0 {
		t.Errorf("cold phase hit rate = %v, want 0", rep.Phases[0].CacheHitRate)
	}
	// 30 warm draws over a 5-identity pool: ≥25 must be hits even if every
	// pool entry missed once.
	if rep.Phases[1].CacheHitRate < 0.8 {
		t.Errorf("warm phase hit rate = %v, want ≥ 0.8", rep.Phases[1].CacheHitRate)
	}
	if rep.Validated != 2 {
		t.Errorf("validated = %d, want 2", rep.Validated)
	}
	if rep.ServerMetrics["kgcd_enroll_total"] == 0 {
		t.Error("server metrics not scraped")
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-requests", "10", "-cold", "20"},
		{"-concurrency", "0"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
