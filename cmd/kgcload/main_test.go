package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSmoke drives a tiny self-hosted 2-of-3 run end to end and checks
// the report shape: both phases present, everything succeeded, warm phase
// hit the cache.
func TestLoadSmoke(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-t", "2", "-n", "3",
		"-requests", "40", "-cold", "10", "-warmids", "5",
		"-concurrency", "4", "-validate", "2",
		"-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TotalSuccess != 40 {
		t.Fatalf("total_success = %d, want 40", rep.TotalSuccess)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "cold" || rep.Phases[1].Name != "warm" {
		t.Fatalf("unexpected phases: %+v", rep.Phases)
	}
	if rep.Phases[0].CacheHitRate != 0 {
		t.Errorf("cold phase hit rate = %v, want 0", rep.Phases[0].CacheHitRate)
	}
	// 30 warm draws over a 5-identity pool: ≥25 must be hits even if every
	// pool entry missed once.
	if rep.Phases[1].CacheHitRate < 0.8 {
		t.Errorf("warm phase hit rate = %v, want ≥ 0.8", rep.Phases[1].CacheHitRate)
	}
	if rep.Validated != 2 {
		t.Errorf("validated = %d, want 2", rep.Validated)
	}
	if rep.ServerMetrics["kgcd_enroll_total"] == 0 {
		t.Error("server metrics not scraped")
	}
}

// TestChaosSmoke runs a compressed churn phase — one replica of three
// killed every second, a share refresh at half-time — and requires zero
// failed enrollments: every kill leaves the 2-of-3 quorum intact, so the
// combiner must absorb the churn invisibly.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos phase runs wall-clock seconds")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-t", "2", "-n", "3",
		"-requests", "10", "-cold", "5", "-warmids", "5",
		"-concurrency", "4", "-validate", "2",
		"-chaos", "-chaosfor", "4s", "-chaosperiod", "1s",
		"-chaosdown", "400ms", "-chaosids", "20",
		"-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Chaos
	if c == nil {
		t.Fatal("report has no chaos section")
	}
	if c.Errors != 0 {
		t.Errorf("chaos errors = %d, want 0 (faults never broke quorum)", c.Errors)
	}
	if c.Kills < 3 {
		t.Errorf("kills = %d, want ≥ 3 over 4s at 1s period", c.Kills)
	}
	if c.Refreshes != 1 || c.Epoch != 1 {
		t.Errorf("refreshes %d epoch %d, want 1/1", c.Refreshes, c.Epoch)
	}
	if c.Requests == 0 || c.Availability != 1 {
		t.Errorf("requests %d availability %v, want closed-loop traffic at 1.0", c.Requests, c.Availability)
	}
	if c.OracleChecked != 2 {
		t.Errorf("oracle_checked = %d, want 2", c.OracleChecked)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-requests", "10", "-cold", "20"},
		{"-concurrency", "0"},
		{"-chaos", "-addr", "http://example.invalid"},
		{"-chaos", "-chaosperiod", "1s", "-chaosdown", "2s"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
