// Command kgcload is a closed-loop load generator for the kgcd enrollment
// service: C workers keep one enrollment in flight each, driving the
// combiner through two phases — a *cold* phase of unique identities (every
// request pays t-of-n signer fan-out and Lagrange combination) and a
// *warm* phase drawing identities from a bounded pool (mostly LRU cache
// hits, the re-enrolling-fleet steady state). It reports p50/p95/p99
// latency, throughput and cache-hit rate per phase, plus the server's own
// counters scraped from /metrics, into a BENCH_kgc.json.
//
//	kgcload -t 2 -n 3 -requests 100000 -cold 10000 -concurrency 32 -json BENCH_kgc.json
//	kgcload -addr http://10.0.0.1:7600 -requests 50000
//
// With no -addr it self-hosts an all-in-one t-of-n deployment on loopback
// (rate limiting disabled so the bench measures issuance and caching, not
// the limiter). Exits nonzero if no enrollment succeeds.
//
// -chaos appends a churn phase (self-host only): a deterministic
// faulthttp schedule kills one of the n replicas every -chaosperiod for
// -chaosdown (always below quorum loss for t ≤ n−1), a proactive share
// refresh runs at half-time, and closed-loop workers keep enrolling
// throughout. The run records availability, latency under churn, kill and
// refresh counts, and byte-compares post-churn issuance against the
// single-master oracle. Any failed enrollment under below-quorum faults
// exits nonzero.
//
//	kgcload -chaos -chaosfor 30s -chaosperiod 5s -chaosdown 2500ms -json BENCH_kgc.json
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
	"mccls/internal/faulthttp"
	"mccls/internal/kgcd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kgcload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	t, n        int
	requests    int
	cold        int
	warmIDs     int
	concurrency int
	validate    int
	seed        int64
	jsonPath    string
	timeout     time.Duration

	chaos       bool
	chaosFor    time.Duration
	chaosPeriod time.Duration
	chaosDown   time.Duration
	chaosIDs    int
}

func parseOptions(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("kgcload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "", "kgcd combiner base URL (empty self-hosts a loopback deployment)")
	fs.IntVar(&o.t, "t", 2, "self-host quorum")
	fs.IntVar(&o.n, "n", 3, "self-host replica count")
	fs.IntVar(&o.requests, "requests", 100000, "total enrollment requests across both phases")
	fs.IntVar(&o.cold, "cold", 10000, "cold-phase requests (unique identities)")
	fs.IntVar(&o.warmIDs, "warmids", 1000, "identity pool size for the warm phase")
	fs.IntVar(&o.concurrency, "concurrency", 32, "concurrent workers")
	fs.IntVar(&o.validate, "validate", 4, "sampled enrollments to pairing-check after the run")
	fs.Int64Var(&o.seed, "seed", 1, "seed for warm-phase identity draws")
	fs.StringVar(&o.jsonPath, "json", "", "write the report to this file")
	fs.DurationVar(&o.timeout, "reqtimeout", 10*time.Second, "per-request client timeout")
	fs.BoolVar(&o.chaos, "chaos", false, "append a replica-churn phase (self-host only)")
	fs.DurationVar(&o.chaosFor, "chaosfor", 30*time.Second, "chaos phase duration")
	fs.DurationVar(&o.chaosPeriod, "chaosperiod", 5*time.Second, "interval between replica kills")
	fs.DurationVar(&o.chaosDown, "chaosdown", 2500*time.Millisecond, "how long each killed replica stays down")
	fs.IntVar(&o.chaosIDs, "chaosids", 200, "identity pool size for the chaos phase")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.requests < 1 || o.cold < 0 || o.cold > o.requests {
		return o, fmt.Errorf("need 0 ≤ cold ≤ requests and requests ≥ 1")
	}
	if o.concurrency < 1 {
		return o, fmt.Errorf("concurrency must be ≥ 1")
	}
	if o.warmIDs < 1 {
		o.warmIDs = 1
	}
	if o.chaos {
		if o.addr != "" {
			return o, fmt.Errorf("-chaos needs the self-hosted deployment (drop -addr)")
		}
		if o.chaosDown >= o.chaosPeriod {
			return o, fmt.Errorf("-chaosdown must be < -chaosperiod (one dark replica at a time)")
		}
		if o.chaosIDs < 1 {
			o.chaosIDs = 1
		}
	}
	return o, nil
}

// latencySummary is percentile statistics over one phase, in microseconds.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// phaseReport is one phase's results.
type phaseReport struct {
	Name          string         `json:"name"`
	Requests      int            `json:"requests"`
	Success       int            `json:"success"`
	Errors        int            `json:"errors"`
	WallSeconds   float64        `json:"wall_seconds"`
	ThroughputRPS float64        `json:"throughput_rps"`
	CacheHitRate  float64        `json:"cache_hit_rate"`
	LatencyMicros latencySummary `json:"latency_us"`
}

// chaosReport is the churn phase's results.
type chaosReport struct {
	DurationSeconds float64        `json:"duration_seconds"`
	PeriodSeconds   float64        `json:"kill_period_seconds"`
	DownSeconds     float64        `json:"kill_down_seconds"`
	Kills           int            `json:"kills"`
	Refreshes       int            `json:"refreshes"`
	Epoch           uint32         `json:"epoch"`
	Requests        int            `json:"requests"`
	Success         int            `json:"success"`
	Errors          int            `json:"errors"`
	Availability    float64        `json:"availability"`
	ThroughputRPS   float64        `json:"throughput_rps"`
	LatencyMicros   latencySummary `json:"latency_us"`
	OracleChecked   int            `json:"oracle_checked"`
}

// report is the full BENCH_kgc.json payload.
type report struct {
	GeneratedUnix int64             `json:"generated_unix"`
	Target        string            `json:"target"`
	SelfHost      bool              `json:"selfhost"`
	T             int               `json:"t"`
	N             int               `json:"n"`
	Concurrency   int               `json:"concurrency"`
	Requests      int               `json:"requests"`
	Phases        []phaseReport     `json:"phases"`
	TotalSuccess  int               `json:"total_success"`
	Validated     int               `json:"validated"`
	Chaos         *chaosReport      `json:"chaos,omitempty"`
	ServerMetrics map[string]uint64 `json:"server_metrics,omitempty"`
}

func run(args []string, out *os.File) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}

	target := o.addr
	selfHost := target == ""
	var (
		cluster  *kgcd.Cluster
		injector *faulthttp.Injector
		oracle   *core.KGC
		kills    int
	)
	if selfHost {
		clusterCfg := kgcd.ClusterConfig{
			T: o.t, N: o.n,
			Combiner: kgcd.Config{RatePerSec: -1},
		}
		if o.chaos {
			// A deterministic master makes the single-master oracle
			// reproducible, so post-churn issuance can be byte-compared.
			var seedBytes [8]byte
			binary.BigEndian.PutUint64(seedBytes[:], uint64(o.seed))
			master := bn254.HashToScalar("kgcload/chaos", seedBytes[:])
			var err error
			if oracle, err = core.NewKGCFromMaster(master); err != nil {
				return err
			}
			clusterCfg.Master = master
			// One rotating kill per period; the injector stays unstarted
			// (injecting nothing) until the chaos phase begins, so the cold
			// and warm phases in the same invocation run clean.
			targets := make([]string, o.n)
			for i := range targets {
				targets[i] = fmt.Sprintf("replica-%d", i)
			}
			crashes := faulthttp.RotatingCrashes(targets, o.chaosPeriod, o.chaosDown, o.chaosFor)
			kills = len(crashes)
			injector = faulthttp.New(faulthttp.Schedule{Crashes: crashes})
			clusterCfg.SignerMiddleware = func(i int, h http.Handler) http.Handler {
				return faulthttp.Middleware(injector, fmt.Sprintf("replica-%d", i), h)
			}
		}
		cl, err := kgcd.StartCluster(clusterCfg)
		if err != nil {
			return fmt.Errorf("self-host: %w", err)
		}
		defer cl.Close()
		cluster = cl
		target = cl.URL
		fmt.Fprintf(out, "kgcload: self-hosted %d-of-%d kgcd on %s\n", o.t, o.n, target)
	}

	// One shared client; enough idle conns that workers reuse connections
	// instead of churning through TIME_WAIT sockets.
	hc := &http.Client{
		Timeout: o.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        o.concurrency * 2,
			MaxIdleConnsPerHost: o.concurrency * 2,
		},
	}
	client := kgcd.NewClient(target, hc)
	ctx := context.Background()

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		Target:        target,
		SelfHost:      selfHost,
		T:             o.t,
		N:             o.n,
		Concurrency:   o.concurrency,
		Requests:      o.requests,
	}

	coldID := func(i int) string { return fmt.Sprintf("load-node-%08d", i) }

	// Cold phase: every identity fresh.
	if o.cold > 0 {
		ids := make([]string, o.cold)
		for i := range ids {
			ids[i] = coldID(i)
		}
		rep.Phases = append(rep.Phases, runPhase(ctx, "cold", client, ids, o.concurrency, out))
	}

	// Warm phase: identities drawn (seeded, so runs are comparable) from a
	// pool that overlaps the cold set, so the first touch of each pool
	// entry may miss and everything after hits the LRU.
	if warm := o.requests - o.cold; warm > 0 {
		rng := rand.New(rand.NewSource(o.seed))
		ids := make([]string, warm)
		for i := range ids {
			ids[i] = coldID(rng.Intn(o.warmIDs))
		}
		rep.Phases = append(rep.Phases, runPhase(ctx, "warm", client, ids, o.concurrency, out))
	}

	for _, ph := range rep.Phases {
		rep.TotalSuccess += ph.Success
	}

	// Spot-check the cryptography end to end: re-enroll a few identities
	// and run the full pairing validation against the served parameters.
	if o.validate > 0 && rep.TotalSuccess > 0 {
		params, err := client.Params(ctx)
		if err != nil {
			return fmt.Errorf("fetch params for validation: %w", err)
		}
		for i := 0; i < o.validate; i++ {
			res, err := client.Enroll(ctx, coldID(i))
			if err != nil {
				return fmt.Errorf("validation enroll %d: %w", i, err)
			}
			if err := res.PartialKey.Validate(params); err != nil {
				return fmt.Errorf("validation %d: served partial key invalid: %w", i, err)
			}
			rep.Validated++
		}
	}

	if o.chaos {
		cr, err := runChaos(ctx, o, client, cluster, oracle, injector, kills, out)
		if err != nil {
			return err
		}
		rep.Chaos = cr
	}

	if metricsText, err := client.RawMetrics(ctx); err == nil {
		rep.ServerMetrics = scrapeCounters(metricsText)
	}

	for _, ph := range rep.Phases {
		fmt.Fprintf(out,
			"kgcload: %-4s %7d reqs %6.0f req/s  p50 %6.0fµs  p95 %6.0fµs  p99 %6.0fµs  hit %4.1f%%  errors %d\n",
			ph.Name, ph.Requests, ph.ThroughputRPS,
			ph.LatencyMicros.P50, ph.LatencyMicros.P95, ph.LatencyMicros.P99,
			100*ph.CacheHitRate, ph.Errors)
	}
	if rep.Chaos != nil {
		c := rep.Chaos
		fmt.Fprintf(out,
			"kgcload: chaos %6d reqs %6.0f req/s  p99 %6.0fµs  kills %d  epoch %d  avail %.4f  oracle %d  errors %d\n",
			c.Requests, c.ThroughputRPS, c.LatencyMicros.P99,
			c.Kills, c.Epoch, c.Availability, c.OracleChecked, c.Errors)
	}

	if o.jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "kgcload: report → %s\n", o.jsonPath)
	}
	if rep.TotalSuccess == 0 {
		return fmt.Errorf("no enrollment succeeded")
	}
	if rep.Chaos != nil && rep.Chaos.Errors > 0 {
		return fmt.Errorf("chaos: %d enrollments failed under below-quorum faults", rep.Chaos.Errors)
	}
	return nil
}

// runChaos drives the churn phase: the fault schedule starts, closed-loop
// workers keep enrolling from a bounded identity pool, a proactive share
// refresh fires at half-time, and afterwards fresh identities are enrolled
// and byte-compared against the single-master oracle. Every kill leaves
// t-of-n replicas up, so a failed enrollment is a robustness bug, not an
// expected casualty.
func runChaos(ctx context.Context, o options, client *kgcd.Client, cl *kgcd.Cluster, oracle *core.KGC, in *faulthttp.Injector, kills int, out *os.File) (*chaosReport, error) {
	cr := &chaosReport{
		DurationSeconds: o.chaosFor.Seconds(),
		PeriodSeconds:   o.chaosPeriod.Seconds(),
		DownSeconds:     o.chaosDown.Seconds(),
		Kills:           kills,
	}
	fmt.Fprintf(out, "kgcload: chaos — 1 of %d replicas down %v in every %v, for %v, share refresh at half-time\n",
		o.n, o.chaosDown, o.chaosPeriod, o.chaosFor)
	in.Start()
	deadline := time.Now().Add(o.chaosFor)

	// The refresh's internal per-replica retry budget is shorter than a
	// down window, so an outer loop keeps re-posting the pinned deltas
	// until the killed replica comes back and the epoch commits.
	var refreshOK atomic.Bool
	var refreshErr error
	var refreshWG sync.WaitGroup
	refreshWG.Add(1)
	go func() {
		defer refreshWG.Done()
		timer := time.NewTimer(o.chaosFor / 2)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		for attempt := 0; attempt < 8; attempt++ {
			epoch, err := cl.Refresh(ctx)
			if err == nil {
				refreshOK.Store(true)
				fmt.Fprintf(out, "kgcload: chaos — refreshed shares to epoch %d mid-churn\n", epoch)
				return
			}
			refreshErr = err
			time.Sleep(time.Second)
		}
	}()

	var latMu sync.Mutex
	lats := make([]int64, 0, 4096)
	var reqs, errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed ^ int64(w+1)))
			for time.Now().Before(deadline) {
				id := fmt.Sprintf("chaos-node-%08d", rng.Intn(o.chaosIDs))
				t0 := time.Now()
				_, err := client.Enroll(ctx, id)
				reqs.Add(1)
				if err != nil {
					errs.Add(1)
					continue
				}
				latMu.Lock()
				lats = append(lats, time.Since(t0).Nanoseconds())
				latMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	refreshWG.Wait()
	if !refreshOK.Load() {
		return nil, fmt.Errorf("chaos: share refresh never committed: %w", refreshErr)
	}

	cr.Refreshes = 1
	cr.Epoch = cl.Epoch()
	cr.Requests = int(reqs.Load())
	cr.Success = cr.Requests - int(errs.Load())
	cr.Errors = int(errs.Load())
	if cr.Requests > 0 {
		cr.Availability = float64(cr.Success) / float64(cr.Requests)
	}
	if wall > 0 {
		cr.ThroughputRPS = float64(cr.Success) / wall.Seconds()
	}
	cr.LatencyMicros = summarize(lats)

	// Post-churn oracle: fresh identities must combine to exactly the bytes
	// a single-master KGC would issue — the refresh moved shares, never keys.
	for i := 0; i < o.validate; i++ {
		id := fmt.Sprintf("chaos-oracle-%d", i)
		res, err := client.Enroll(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("chaos oracle enroll %q: %w", id, err)
		}
		want := oracle.ExtractPartialPrivateKey(id)
		if !bytes.Equal(res.PartialKey.Marshal(), want.Marshal()) {
			return nil, fmt.Errorf("chaos oracle %q: issued bytes diverge from single-master issuance", id)
		}
		cr.OracleChecked++
	}
	return cr, nil
}

// runPhase drives len(ids) enrollments through the workers and summarizes.
func runPhase(ctx context.Context, name string, client *kgcd.Client, ids []string, concurrency int, out *os.File) phaseReport {
	latencies := make([]int64, len(ids)) // nanoseconds; 0 = failed
	var hits, errs, next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				t0 := time.Now()
				res, err := client.Enroll(ctx, ids[i])
				if err != nil {
					errs.Add(1)
					continue
				}
				latencies[i] = time.Since(t0).Nanoseconds()
				if res.Cached {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	ok := make([]int64, 0, len(ids))
	for _, l := range latencies {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	ph := phaseReport{
		Name:          name,
		Requests:      len(ids),
		Success:       len(ok),
		Errors:        int(errs.Load()),
		WallSeconds:   wall.Seconds(),
		LatencyMicros: summarize(ok),
	}
	if wall > 0 {
		ph.ThroughputRPS = float64(len(ok)) / wall.Seconds()
	}
	if len(ok) > 0 {
		ph.CacheHitRate = float64(hits.Load()) / float64(len(ok))
	}
	return ph
}

// summarize computes percentile statistics in microseconds.
func summarize(nanos []int64) latencySummary {
	if len(nanos) == 0 {
		return latencySummary{}
	}
	sorted := make([]int64, len(nanos))
	copy(sorted, nanos)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / 1e3
	}
	sum := int64(0)
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		P50:  pct(0.50),
		P90:  pct(0.90),
		P95:  pct(0.95),
		P99:  pct(0.99),
		Mean: float64(sum) / float64(len(sorted)) / 1e3,
		Max:  float64(sorted[len(sorted)-1]) / 1e3,
	}
}

var counterLine = regexp.MustCompile(`(?m)^(kgcd_[a-z_]+_total) (\d+)$`)

// scrapeCounters pulls the kgcd counters out of the Prometheus text.
func scrapeCounters(text string) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range counterLine.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseUint(m[2], 10, 64)
		if err == nil {
			out[m[1]] = v
		}
	}
	return out
}
